module hyades

go 1.22
