// Zero require directives, deliberately: the build must stay hermetic
// on an offline machine with an empty module cache.  In particular the
// hyadeslint analyzer suite (internal/lint) re-implements the slice of
// golang.org/x/tools/go/analysis it needs on the standard library
// instead of depending on x/tools; see "Toolchain hermeticity" in
// DESIGN.md before adding any external module here.
module hyades

go 1.22
