package hyades

// The runtime complement to the hyadeslint static checks: the des
// package's contract says a simulation run is a deterministic function
// of its inputs.  This test runs the coupled ocean–atmosphere
// simulation twice with identical configuration and requires the final
// model state, the total event count and the final virtual clock to be
// bit-for-bit identical.  Any wall-clock read, unseeded randomness,
// raw-goroutine race or map-iteration dependence in the event path
// shows up here as a digest mismatch.

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/des"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/units"
)

// coupledFingerprint runs a small coupled configuration to completion
// and fingerprints everything observable: a SHA-256 over every
// worker's checkpointed state in rank order, the kernel's event count,
// and the final virtual time.  workers sizes the host worker pool
// (cluster.Config.Workers: 0 = GOMAXPROCS, negative = inline).
func coupledFingerprint(t testing.TB, steps, workers int) (digest [32]byte, events uint64, now units.Time) {
	t.Helper()
	return coupledFingerprintSched(t, steps, workers, des.SchedLadder)
}

// coupledFingerprintSched is coupledFingerprint with an explicit event
// scheduler, for the heap-vs-ladder equivalence matrix.
func coupledFingerprintSched(t testing.TB, steps, workers int, sched des.SchedulerKind) (digest [32]byte, events uint64, now units.Time) {
	t.Helper()
	d := tile.Decomp{NXg: 16, NYg: 8, Px: 2, Py: 1, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 16, 8
	cfg.Ocean.Grid.NZ = 4
	cfg.Ocean.Grid.DZ = []float64{250, 500, 1000, 2250}
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 16, 8
	cfg.CoupleEvery = 5

	tiles := cfg.Ocean.Decomp.Tiles()
	nWorkers := 2 * tiles
	ccfg := cluster.DefaultConfig(nWorkers, 1)
	ccfg.Workers = workers
	ccfg.Scheduler = sched
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	coupled := make([]*gcm.Coupled, nWorkers)
	var buildErr error
	cl.Start(func(w *cluster.Worker) {
		// Each worker needs its own physics instance (per-tile SST).
		c := cfg
		if w.Rank < tiles {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		coupled[w.Rank] = cp
		cp.Run(steps)
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}

	h := sha256.New()
	for r, cp := range coupled {
		if cp == nil {
			t.Fatalf("worker %d did not build", r)
		}
		if err := cp.M.Checkpoint(h); err != nil {
			t.Fatalf("worker %d: checkpoint: %v", r, err)
		}
	}
	events, now = cl.Eng.Events(), cl.Eng.Now()
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], events)
	h.Write(word[:])
	binary.LittleEndian.PutUint64(word[:], uint64(now))
	h.Write(word[:])
	copy(digest[:], h.Sum(nil))
	return digest, events, now
}

// TestCoupledRunIsDeterministic is the double-run regression: two
// identical coupled runs must agree bit for bit.
func TestCoupledRunIsDeterministic(t *testing.T) {
	const steps = 12
	d1, e1, t1 := coupledFingerprint(t, steps, 0)
	d2, e2, t2 := coupledFingerprint(t, steps, 0)
	if e1 == 0 {
		t.Fatal("no events were scheduled; the simulation did not run")
	}
	if e1 != e2 {
		t.Errorf("event counts differ between identical runs: %d vs %d", e1, e2)
	}
	if t1 != t2 {
		t.Errorf("final virtual times differ between identical runs: %v vs %v", t1, t2)
	}
	if d1 != d2 {
		t.Errorf("state digests differ between identical runs: %x vs %x", d1, d2)
	}
}

// TestDeterminismAcrossWorkerCounts is the acceptance test for the
// parallel execution layer: the host worker pool is a wall-clock
// optimization only, so runs with no pool, one worker, two workers and
// GOMAXPROCS workers must agree bit for bit — same state digest, same
// event count, same final virtual clock.  Because the digest folds in
// the event count and clock, equality also proves the pool adds zero
// simulated events and zero simulated time.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const steps = 12
	base, be, bt := coupledFingerprint(t, steps, -1) // inline, no pool
	if be == 0 {
		t.Fatal("no events were scheduled; the simulation did not run")
	}
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, w := range counts {
		d, e, now := coupledFingerprint(t, steps, w)
		if e != be {
			t.Errorf("workers=%d: event count %d differs from inline %d", w, e, be)
		}
		if now != bt {
			t.Errorf("workers=%d: final clock %v differs from inline %v", w, now, bt)
		}
		if d != base {
			t.Errorf("workers=%d: state digest %x differs from inline %x", w, d, base)
		}
	}
}

// TestSchedulerEquivalence is the acceptance test for the ladder-queue
// scheduler swap: the kernel's contract is a strict (at, seq) execution
// order, so the coupled run must produce a bit-identical state digest,
// event count and final clock whether the pending-event set is the
// original binary heap or the ladder queue — and for the ladder, across
// worker-pool sizes too.
func TestSchedulerEquivalence(t *testing.T) {
	const steps = 12
	heapD, heapE, heapT := coupledFingerprintSched(t, steps, -1, des.SchedHeap)
	if heapE == 0 {
		t.Fatal("no events were scheduled; the simulation did not run")
	}
	for _, w := range []int{-1, 1, runtime.GOMAXPROCS(0)} {
		d, e, now := coupledFingerprintSched(t, steps, w, des.SchedLadder)
		if e != heapE {
			t.Errorf("ladder workers=%d: event count %d differs from heap %d", w, e, heapE)
		}
		if now != heapT {
			t.Errorf("ladder workers=%d: final clock %v differs from heap %v", w, now, heapT)
		}
		if d != heapD {
			t.Errorf("ladder workers=%d: state digest %x differs from heap %x", w, d, heapD)
		}
	}
}
