// Command validate regenerates the §5.3 validation of the performance
// model: a one-year 2.8125-degree atmospheric simulation (Nt = 77760,
// Ni ~ 60) on sixteen processors over eight SMPs.
//
// Three quantities are compared:
//
//  1. the paper's published prediction (Tcomm 30.1 min + Tcomp 151 min
//     vs 183 min observed), recomputed from eqs. (11)-(13);
//  2. the same prediction built from primitives and operation counts
//     measured on THIS reproduction;
//  3. the "observed" runtime of the simulated cluster: the virtual
//     wall-clock of a short run extrapolated to the full year (pass
//     -steps to lengthen the sample, or run all 77760 if you have the
//     patience).
package main

import (
	"flag"
	"fmt"
	"log"

	"hyades/internal/bench"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/perfmodel"
	"hyades/internal/report"
	"hyades/internal/units"
)

func main() {
	steps := flag.Int("steps", 8, "timed steps to sample (the per-step cost is steady)")
	full := flag.Bool("full", false, "run all 77760 steps instead of extrapolating")
	flag.Parse()

	// 1. The paper's own numbers through our implementation of the model.
	exp, observed := perfmodel.PaperValidation()
	t := report.NewTable("Section 5.3: performance-model validation (one-year atmosphere run)",
		"quantity", "paper", "this reproduction")

	// 2. Reproduction-measured parameters, on the same decomposition
	// and mix-mode machine the timed run uses.
	hr := bench.HyadesRunner{PPN: 2}
	prim, err := bench.MeasureConfig(hr, hr, bench.ScalingDecomp(), 16, 5, 15)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gcm.CoarseAtmosphereConfig(bench.ScalingDecomp())
	cfg.Forcing = physics.New(physics.Default())
	timed := *steps
	if *full {
		timed = exp.Nt
	}
	res, err := gcm.RunParallel(8, 2, cfg, 2, timed)
	if err != nil {
		log.Fatal(err)
	}
	nxyz := 128 * 64 * 5 / 16
	nps := float64(res.TotalPS) / float64(res.Steps) / float64(128*64*5)
	nds := float64(res.TotalDS) / (res.MeanNi * float64(res.Steps)) / float64(128*64)
	ourExp := perfmodel.Experiment{
		PS: perfmodel.PS{Nps: nps, Nxyz: nxyz, Texchxyz: prim.Texchxyz, FpsMFlops: gcm.PaperFpsMFlops},
		DS: perfmodel.DS{Nds: nds, Nxy: 128 * 64 / 16, Tgsum: prim.Tgsum, Texchxy: prim.Texchxy, FdsMFlops: gcm.PaperFdsMFlops},
		Nt: exp.Nt, Ni: res.MeanNi,
	}

	// 3. Observed: extrapolate the simulated virtual wall clock.
	perStep := res.PerStep()
	simYear := units.Time(int64(perStep) * int64(exp.Nt))
	if *full {
		simYear = res.Elapsed
	}
	commPerStep := (res.ExchangeTime + res.GsumTime) / units.Time(res.Steps) / 16
	commYear := units.Time(int64(commPerStep) * int64(exp.Nt))

	t.Addf("Nt (steps)|%d|%d", exp.Nt, ourExp.Nt)
	t.Addf("Ni (mean CG iterations)|%.0f|%.0f", exp.Ni, ourExp.Ni)
	t.Addf("predicted Tcomm (min)|%.1f|%.1f", exp.Tcomm().Minutes(), ourExp.Tcomm().Minutes())
	t.Addf("predicted Tcomp (min)|%.1f|%.1f", exp.Tcomp().Minutes(), ourExp.Tcomp().Minutes())
	t.Addf("predicted total (min)|%.1f|%.1f", exp.Trun().Minutes(), ourExp.Trun().Minutes())
	t.Addf("observed wall clock (min)|%.0f|%.1f", observed.Minutes(), simYear.Minutes())
	t.Addf("observed comm time (min)|-|%.1f", commYear.Minutes())
	// The paper's §6 closing claim: a century-long coupled simulation
	// completes "within a two week period" on the dedicated cluster.
	// Our coupled per-step cost is bounded by the slower (ocean)
	// component; project a century from the measured ocean step.
	oceanCfg := gcm.CoarseOceanConfig(bench.ScalingDecomp())
	oceanRes, err := gcm.RunParallel(8, 2, oceanCfg, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	century := units.Time(int64(oceanRes.PerStep()) * int64(exp.Nt) * 100)
	t.Addf("coupled century projection (days)|~14 (paper §6)|%.1f", century.Seconds()/86400)
	t.Note = fmt.Sprintf("reproduction observation from %d simulated steps (%v/step), extrapolated to the year; "+
		"model-vs-observed agreement within %.1f%%",
		res.Steps, perStep, 100*(ourExp.Trun().Minutes()-simYear.Minutes())/simYear.Minutes())
	fmt.Print(t)
}
