package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyades/internal/lint/load"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// captureStderr runs fn with os.Stderr redirected and returns what it
// wrote (vet mode reports findings on stderr, matching vet).
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	defer func() {
		os.Stderr = old
	}()
	fn()
	w.Close()
	os.Stderr = old
	return <-done
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := load.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestScratchStandalone: the seeded rank-conditional GlobalSum is
// flagged in standalone mode with exit status 1.
func TestScratchStandalone(t *testing.T) {
	var status int
	out := capture(t, func() {
		status = run([]string{"./cmd/hyadeslint/testdata/scratch"})
	})
	if status != 1 {
		t.Fatalf("exit status = %d, want 1\noutput:\n%s", status, out)
	}
	if !strings.Contains(out, "commlock") || !strings.Contains(out, "GlobalSum") {
		t.Errorf("missing commlock finding in output:\n%s", out)
	}
}

// TestScratchVetUnit drives the cmd/go unit-checking protocol in
// process: a crafted .cfg file naming the scratch package must produce
// the same commlock finding and exit status 1.
func TestScratchVetUnit(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "cmd", "hyadeslint", "testdata", "scratch")
	cfg := map[string]interface{}{
		"ID":         "hyades/cmd/hyadeslint/testdata/scratch",
		"Compiler":   "source",
		"Dir":        dir,
		"ImportPath": "hyades/cmd/hyadeslint/testdata/scratch",
		"GoVersion":  "go1.22",
		"GoFiles":    []string{filepath.Join(dir, "scratch.go")},
		"VetxOutput": filepath.Join(t.TempDir(), "scratch.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if status := run([]string{cfgPath}); status != 1 {
		t.Fatalf("vet-unit exit status = %d, want 1", status)
	}
}

// TestCrossModeAgreement is the acceptance test for the
// interprocedural upgrade: the seeded fixture (a wall-clock read two
// helper frames below an event-path function, and a Proc.Exec closure
// that sends) must be flagged with its full call chain, and the
// standalone driver and the go-vet unit protocol must produce the
// identical ordered finding list for it.
func TestCrossModeAgreement(t *testing.T) {
	root := moduleRoot(t)

	var standaloneStatus int
	standalone := capture(t, func() {
		standaloneStatus = run([]string{"./internal/des/testdata/ipa"})
	})
	if standaloneStatus != 1 {
		t.Fatalf("standalone status = %d, want 1\n%s", standaloneStatus, standalone)
	}

	dir := filepath.Join(root, "internal", "des", "testdata", "ipa")
	cfg := map[string]interface{}{
		"ID":         "hyades/internal/des/testdata/ipa",
		"Compiler":   "source",
		"Dir":        dir,
		"ImportPath": "hyades/internal/des/testdata/ipa",
		"GoVersion":  "go1.22",
		"GoFiles":    []string{filepath.Join(dir, "ipa.go")},
		"VetxOutput": filepath.Join(t.TempDir(), "ipa.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	var vetStatus int
	vet := captureStderr(t, func() {
		vetStatus = run([]string{cfgPath})
	})
	if vetStatus != 1 {
		t.Fatalf("vet-unit status = %d, want 1\n%s", vetStatus, vet)
	}

	// Vet mode keeps absolute paths (cmd/go rewrites them); relativize
	// to the module root, after which the two outputs must be
	// byte-identical — same findings, same order, same dedup.
	vet = strings.ReplaceAll(vet, root+string(filepath.Separator), "")
	if standalone != vet {
		t.Errorf("modes disagree\nstandalone:\n%s\nvet:\n%s", standalone, vet)
	}

	// The seeded violations, with their full chains.
	for _, want := range []string{
		"wallutil.Stamp (wallutil.go:11) -> wallutil.helperA (wallutil.go:13) -> wallutil.helperB (wallutil.go:15) -> time.Now",
		"call reaches a wall-clock/randomness source outside the simulation core",
		"offloaded Exec phase is not engine-pure: it reaches a message send",
		"(detsource)",
		"(execpure)",
	} {
		if !strings.Contains(standalone, want) {
			t.Errorf("missing %q in findings:\n%s", want, standalone)
		}
	}
}

// TestCrossModePointsTo is the acceptance test for the points-to
// upgrade at the driver level: the seeded fixture offloads func values
// drawn from locally-built tables (resolvable only through points-to),
// and the standalone driver and the go-vet unit protocol must produce
// the identical ordered finding list for it — the impure candidate
// with its witness chain, no unresolvable finding, and nothing for the
// all-pure site.
func TestCrossModePointsTo(t *testing.T) {
	root := moduleRoot(t)

	var standaloneStatus int
	standalone := capture(t, func() {
		standaloneStatus = run([]string{"./internal/des/testdata/ptsphase"})
	})
	if standaloneStatus != 1 {
		t.Fatalf("standalone status = %d, want 1\n%s", standaloneStatus, standalone)
	}

	dir := filepath.Join(root, "internal", "des", "testdata", "ptsphase")
	cfg := map[string]interface{}{
		"ID":         "hyades/internal/des/testdata/ptsphase",
		"Compiler":   "source",
		"Dir":        dir,
		"ImportPath": "hyades/internal/des/testdata/ptsphase",
		"GoVersion":  "go1.22",
		"GoFiles":    []string{filepath.Join(dir, "ptsphase.go")},
		"VetxOutput": filepath.Join(t.TempDir(), "ptsphase.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	var vetStatus int
	vet := captureStderr(t, func() {
		vetStatus = run([]string{cfgPath})
	})
	if vetStatus != 1 {
		t.Fatalf("vet-unit status = %d, want 1\n%s", vetStatus, vet)
	}

	vet = strings.ReplaceAll(vet, root+string(filepath.Separator), "")
	if standalone != vet {
		t.Errorf("modes disagree\nstandalone:\n%s\nvet:\n%s", standalone, vet)
	}

	if !strings.Contains(standalone, "ptsphase.record (ptsphase.go:22) -> write to count") {
		t.Errorf("missing resolved witness chain in findings:\n%s", standalone)
	}
	if strings.Contains(standalone, "cannot statically resolve") {
		t.Errorf("points-to-resolvable site reported as unresolvable:\n%s", standalone)
	}
	if strings.Count(standalone, "\n") != 1 {
		t.Errorf("want exactly one finding, got:\n%s", standalone)
	}
}

// TestExitCodes: clean package -> 0, findings -> 1, parse errors -> 2
// (on stderr, not as diagnostics), and a bad package does not abort
// the rest of the run.
func TestExitCodes(t *testing.T) {
	var status int
	out := capture(t, func() {
		status = run([]string{"./internal/units"})
	})
	if status != 0 || out != "" {
		t.Errorf("clean package: status %d output %q, want 0 and empty", status, out)
	}

	root := moduleRoot(t)
	bad, err := os.MkdirTemp(filepath.Join(root, "cmd", "hyadeslint", "testdata"), "bad")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(bad)
	if err := os.WriteFile(filepath.Join(bad, "bad.go"), []byte("package bad\nfunc (\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(root, bad)
	if err != nil {
		t.Fatal(err)
	}
	// The broken package reports status 2, and the scratch findings
	// after it are still emitted.
	out = capture(t, func() {
		status = run([]string{"./" + filepath.ToSlash(rel), "./cmd/hyadeslint/testdata/scratch"})
	})
	if status != 2 {
		t.Errorf("parse error: status = %d, want 2", status)
	}
	if !strings.Contains(out, "commlock") {
		t.Errorf("bad package aborted the run; missing scratch finding:\n%s", out)
	}
}

// fixtureCopy creates a throwaway package inside the module tree (the
// loader refuses directories outside it) with one fixable finding.
// It returns a loader pattern and the fixture file's absolute path.
func fixtureCopy(t *testing.T) (pattern, file string) {
	t.Helper()
	root := moduleRoot(t)
	dir, err := os.MkdirTemp(filepath.Join(root, "cmd", "hyadeslint", "testdata"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.RemoveAll(dir); err != nil {
			t.Errorf("cleanup: %v", err)
		}
	})
	file = filepath.Join(dir, "fixme.go")
	src := "package fixme\n\nimport \"hyades/internal/units\"\n\nconst grain = units.Time(500)\n"
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	return "./" + filepath.ToSlash(rel), file
}

// TestFixApplies: -fix rewrites units.Time(500) into the
// value-preserving 500 * units.Picosecond form, after which the
// package is clean.
func TestFixApplies(t *testing.T) {
	pattern, file := fixtureCopy(t)
	var status int
	capture(t, func() { status = run([]string{"-fix", pattern}) })
	if status != 1 {
		t.Fatalf("fix run status = %d, want 1 (findings were present)", status)
	}
	got, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "500 * units.Picosecond") {
		t.Fatalf("fix not applied:\n%s", got)
	}
	capture(t, func() { status = run([]string{pattern}) })
	if status != 0 {
		t.Errorf("fixed package still flagged (status %d):\n%s", status, got)
	}
}

// TestFixDryRun: -fix -n reports but modifies nothing.
func TestFixDryRun(t *testing.T) {
	pattern, file := fixtureCopy(t)
	before, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var status int
	capture(t, func() { status = run([]string{"-fix", "-n", pattern}) })
	if status != 1 {
		t.Fatalf("dry-run status = %d, want 1", status)
	}
	after, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("dry run modified the file:\n%s", after)
	}
}

// TestAnalyzerSubset: -analyzers narrows both driver modes to the
// same subset, and an unknown name is a usage error that names the
// valid set instead of leaving the user to guess.
func TestAnalyzerSubset(t *testing.T) {
	// Unknown name: exit 2 with the full valid-name list on stderr.
	var status int
	msg := captureStderr(t, func() {
		status = run([]string{"-analyzers", "nosuch", "./internal/units"})
	})
	if status != 2 {
		t.Fatalf("unknown analyzer: status = %d, want 2\n%s", status, msg)
	}
	if !strings.Contains(msg, `unknown analyzer "nosuch"`) || !strings.Contains(msg, "valid names:") {
		t.Errorf("error does not name the problem:\n%s", msg)
	}
	for _, name := range []string{"detsource", "commlock", "execpure", "shareheap", "capturealias"} {
		if !strings.Contains(msg, name) {
			t.Errorf("valid-name list missing %s:\n%s", name, msg)
		}
	}

	// Standalone: a subset that excludes the scratch fixture's rule
	// turns the run clean; selecting the rule keeps the finding.
	out := capture(t, func() {
		status = run([]string{"-analyzers", "detsource", "./cmd/hyadeslint/testdata/scratch"})
	})
	if status != 0 || out != "" {
		t.Errorf("subset without commlock: status %d output %q, want 0 and empty", status, out)
	}
	out = capture(t, func() {
		status = run([]string{"-analyzers=commlock", "./cmd/hyadeslint/testdata/scratch"})
	})
	if status != 1 || !strings.Contains(out, "commlock") {
		t.Errorf("subset with commlock: status %d\n%s", status, out)
	}

	// Vet-unit mode must honor the same subset: the ipa fixture trips
	// detsource, execpure and capturealias; selecting only detsource
	// drops the others and stays byte-identical with standalone.
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "des", "testdata", "ipa")
	cfg := map[string]interface{}{
		"ID":         "hyades/internal/des/testdata/ipa",
		"Compiler":   "source",
		"Dir":        dir,
		"ImportPath": "hyades/internal/des/testdata/ipa",
		"GoVersion":  "go1.22",
		"GoFiles":    []string{filepath.Join(dir, "ipa.go")},
		"VetxOutput": filepath.Join(t.TempDir(), "ipa.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	var vetStatus int
	vet := captureStderr(t, func() {
		vetStatus = run([]string{"-analyzers=detsource", cfgPath})
	})
	if vetStatus != 1 {
		t.Fatalf("vet-unit subset status = %d, want 1\n%s", vetStatus, vet)
	}
	standalone := capture(t, func() {
		status = run([]string{"-analyzers=detsource", "./internal/des/testdata/ipa"})
	})
	if status != 1 {
		t.Fatalf("standalone subset status = %d, want 1\n%s", status, standalone)
	}
	vet = strings.ReplaceAll(vet, root+string(filepath.Separator), "")
	if standalone != vet {
		t.Errorf("modes disagree under -analyzers\nstandalone:\n%s\nvet:\n%s", standalone, vet)
	}
	if !strings.Contains(vet, "detsource") {
		t.Errorf("selected analyzer missing from vet-unit output:\n%s", vet)
	}
	if strings.Contains(vet, "execpure") || strings.Contains(vet, "capturealias") {
		t.Errorf("vet-unit mode ignored the -analyzers subset:\n%s", vet)
	}
}

// TestBaseline: -writebaseline records the scratch findings, after
// which -baseline suppresses exactly them — the run is clean, new
// findings elsewhere still fail, and the flag pair is validated.
func TestBaseline(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")

	// Regenerate: records the current findings and exits 0.
	var status int
	out := capture(t, func() {
		status = run([]string{"-baseline", base, "-writebaseline", "./cmd/hyadeslint/testdata/scratch"})
	})
	if status != 0 || out != "" {
		t.Fatalf("writebaseline: status %d output %q, want 0 and empty", status, out)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "commlock") {
		t.Fatalf("baseline missing the scratch finding:\n%s", data)
	}

	// Filtered run: the recorded finding is suppressed, status clean.
	var note string
	note = captureStderr(t, func() {
		out = capture(t, func() {
			status = run([]string{"-baseline", base, "./cmd/hyadeslint/testdata/scratch"})
		})
	})
	if status != 0 || out != "" {
		t.Errorf("baselined run: status %d output %q, want 0 and empty", status, out)
	}
	if !strings.Contains(note, "baselined finding(s) suppressed") {
		t.Errorf("missing suppression note on stderr:\n%s", note)
	}

	// A finding the baseline does not cover still fails the run.
	out = capture(t, func() {
		status = run([]string{"-baseline", base, "./internal/des/testdata/ipa", "./cmd/hyadeslint/testdata/scratch"})
	})
	if status != 1 {
		t.Errorf("new findings under baseline: status = %d, want 1", status)
	}
	if !strings.Contains(out, "detsource") || strings.Contains(out, "commlock") {
		t.Errorf("baseline filtered the wrong findings:\n%s", out)
	}

	// Regeneration is byte-stable.
	capture(t, func() {
		status = run([]string{"-baseline", base, "-writebaseline", "./cmd/hyadeslint/testdata/scratch"})
	})
	again, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Errorf("baseline regeneration not byte-stable:\n%s\nvs\n%s", data, again)
	}

	// -writebaseline without -baseline is a usage error.
	if status = run([]string{"-writebaseline", "./cmd/hyadeslint/testdata/scratch"}); status != 2 {
		t.Errorf("-writebaseline without -baseline: status = %d, want 2", status)
	}
}

// TestSARIFOutput: -sarif emits a SARIF 2.1.0 document carrying the
// scratch finding.
func TestSARIFOutput(t *testing.T) {
	var status int
	out := capture(t, func() {
		status = run([]string{"-sarif", "./cmd/hyadeslint/testdata/scratch"})
	})
	if status != 1 {
		t.Fatalf("sarif run status = %d, want 1", status)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid SARIF JSON: %v\n%s", err, out)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape:\n%s", out)
	}
	found := false
	for _, r := range doc.Runs[0].Results {
		if r.RuleID == "commlock" {
			found = true
		}
	}
	if !found {
		t.Errorf("no commlock result in SARIF:\n%s", out)
	}
}
