// Package scratch is a deliberately broken fixture: main_test.go (and
// the acceptance checklist) verify that hyadeslint flags the
// rank-conditional global sum below in both standalone and
// `go vet -vettool` modes.  It lives under testdata, so `./...`
// patterns and the repository lint-clean gate never include it — it is
// only reachable by naming the directory explicitly.
package scratch

import "hyades/internal/comm"

// PartialSum deadlocks: only rank 0 enters the butterfly.
func PartialSum(ep comm.Endpoint, x float64) float64 {
	if ep.Rank() == 0 {
		return ep.GlobalSum(x)
	}
	return x
}
