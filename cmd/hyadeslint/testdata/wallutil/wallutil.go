// Package wallutil is the helper half of the interprocedural
// acceptance fixture (see internal/des/testdata/ipa): a wall-clock
// read two call frames below the exported entry point, in a package
// outside the simulation core.  Nothing under testdata is walked by
// ./... patterns; the fixture is loaded only by explicit dir.
package wallutil

import "time"

// Stamp is what event-path code calls; the clock is two frames down.
func Stamp() int64 { return helperA() }

func helperA() int64 { return helperB() }

func helperB() int64 { return time.Now().UnixNano() }
