// Command hyadeslint is the multichecker for the project's determinism
// analyzers (see internal/lint).  It runs in two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/hyadeslint ./...
//	go run ./cmd/hyadeslint ./internal/comm ./internal/des
//
// As a vet tool, speaking cmd/go's unit-checking protocol (-V=full,
// -flags, and a JSON *.cfg unit file):
//
//	go build -o /tmp/hyadeslint ./cmd/hyadeslint
//	go vet -vettool=/tmp/hyadeslint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/parser"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hyades/internal/lint"
	"hyades/internal/lint/analysis"
	"hyades/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var patterns []string
	var cfgFile string
	jsonOut := false
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion()
		case arg == "-flags" || arg == "--flags":
			// Protocol: report our flag set so cmd/go knows what it
			// may pass.  We accept none beyond the built-ins.
			fmt.Println("[]")
			return 0
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case arg == "-h" || arg == "-help" || arg == "--help":
			usage()
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			// Tolerate unknown single flags from cmd/go (e.g. -c=N).
		default:
			patterns = append(patterns, arg)
		}
	}
	if cfgFile != "" {
		return runVetUnit(cfgFile, jsonOut)
	}
	if len(patterns) == 0 {
		usage()
		return 2
	}
	return runStandalone(patterns)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hyadeslint <package patterns>   (e.g. hyadeslint ./...)\n")
	fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(which hyadeslint) <packages>\n\nanalyzers:\n")
	for _, a := range lint.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// printVersion implements the -V=full handshake cmd/go uses to key the
// vet cache: the reported ID must change when the tool's code changes,
// so it embeds a digest of the executable.
func printVersion() int {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:12])
	return 0
}

// runStandalone loads the matched packages and reports every finding.
func runStandalone(patterns []string) int {
	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	dirs, err := loader.Patterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	status := 0
	for _, dir := range dirs {
		path, err := loader.ImportPathFor(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "hyadeslint: %s: %v\n", path, e)
			}
			return 2
		}
		diags, err := lint.Check(pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		if len(diags) > 0 && status == 0 {
			status = 1
		}
		printDiags(loader.ModuleRoot, pkg, diags)
	}
	return status
}

// printDiags writes findings one per line, with paths relative to the
// module root when possible.
func printDiags(root string, pkg *load.Package, diags []analysis.Diagnostic) {
	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		file := pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
}

// vetConfig is the unit-file schema cmd/go hands a -vettool (the same
// JSON x/tools' unitchecker consumes).  Fields we do not need are kept
// so unmarshalling stays strict about nothing and forward-compatible.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a cfg file.
// Imports are re-resolved from source (module tree + $GOROOT/src)
// rather than from the export data cmd/go supplies, so the tool stays
// independent of export-data format details.
func runVetUnit(cfgFile string, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hyadeslint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// Always satisfy the facts side of the protocol first: downstream
	// units ask for our (empty) facts file even when this unit is
	// skipped.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hyadeslint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The determinism contract governs simulation code, not tests:
	// skip test variants ("pkg [pkg.test]", "pkg.test", "pkg_test").
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	loader, err := load.NewLoader(cfg.Dir)
	if err != nil {
		// Outside any module (e.g. vetting GOROOT): nothing of ours
		// applies.
		return 0
	}
	pkg := &load.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: loader.Fset}
	for _, fname := range cfg.GoFiles {
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(loader.Fset, fname, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fname)
	}
	if len(pkg.Files) == 0 {
		return 0
	}
	if err := loader.CheckFiles(pkg); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hyadeslint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags, err := lint.Check(pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	if jsonOut {
		return printVetJSON(cfg, pkg, diags)
	}
	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetJSONDiag mirrors the diagnostic shape `go vet -json` consumers
// expect from a unit-checking tool.
type vetJSONDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// printVetJSON emits {"pkg": {"analyzer": [diag...]}} on stdout.
func printVetJSON(cfg vetConfig, pkg *load.Package, diags []analysis.Diagnostic) int {
	byAnalyzer := map[string][]vetJSONDiag{}
	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], vetJSONDiag{
			Posn:    fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]vetJSONDiag{cfg.ImportPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	return 0
}
