// Command hyadeslint is the multichecker for the project's determinism
// and communication-discipline analyzers (see internal/lint).  It runs
// in two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/hyadeslint ./...
//	go run ./cmd/hyadeslint -json ./internal/comm
//	go run ./cmd/hyadeslint -sarif ./... > findings.sarif
//	go run ./cmd/hyadeslint -fix ./...      # apply suggested fixes
//	go run ./cmd/hyadeslint -fix -n ./...   # dry run: report, touch nothing
//	go run ./cmd/hyadeslint -baseline lint/baseline.json ./...  # only new findings fail
//	go run ./cmd/hyadeslint -baseline lint/baseline.json -writebaseline ./...
//
// As a vet tool, speaking cmd/go's unit-checking protocol (-V=full,
// -flags, and a JSON *.cfg unit file):
//
//	go build -o /tmp/hyadeslint ./cmd/hyadeslint
//	go vet -vettool=/tmp/hyadeslint ./...
//
// Exit status: 0 clean, 1 findings, 2 load/parse/type-check errors.
// Findings go to stdout (stderr in vet mode, matching vet convention);
// operational errors always go to stderr and never masquerade as
// diagnostics.  A bad package does not abort the run: the remaining
// patterns are still checked and the exit status is 2.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hyades/internal/lint"
	"hyades/internal/lint/allocbudget"
	"hyades/internal/lint/analysis"
	"hyades/internal/lint/baseline"
	"hyades/internal/lint/emit"
	"hyades/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// options are the standalone-mode switches.
type options struct {
	jsonOut       bool
	sarifOut      bool
	fix           bool
	dryRun        bool
	writeBudget   bool
	baseline      string // committed-findings file; entries there are suppressed
	writeBaseline bool
	analyzers     map[string]bool // nil: the full applicable suite
}

func run(args []string) int {
	var patterns []string
	var cfgFile string
	var opt options
	for i := 0; i < len(args); i++ {
		arg := args[i]
		// Value flags accept both "-flag value" and "-flag=value".
		value := func() (string, bool) {
			if j := strings.IndexByte(arg, '='); j >= 0 {
				return arg[j+1:], true
			}
			if i+1 < len(args) {
				i++
				return args[i], true
			}
			return "", false
		}
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion()
		case arg == "-flags" || arg == "--flags":
			// Protocol: report our flag set so cmd/go knows what it
			// may pass.  We accept none beyond the built-ins.
			fmt.Println("[]")
			return 0
		case arg == "-json" || arg == "--json":
			opt.jsonOut = true
		case arg == "-sarif" || arg == "--sarif":
			opt.sarifOut = true
		case arg == "-fix" || arg == "--fix":
			opt.fix = true
		case arg == "-n" || arg == "--n":
			opt.dryRun = true
		case arg == "-list" || arg == "--list":
			for _, a := range lint.Analyzers {
				fmt.Println(a.Name)
			}
			return 0
		case arg == "-writebudget" || arg == "--writebudget":
			opt.writeBudget = true
		case arg == "-writebaseline" || arg == "--writebaseline":
			opt.writeBaseline = true
		case strings.HasPrefix(arg, "-baseline") || strings.HasPrefix(arg, "--baseline"):
			v, ok := value()
			if !ok || v == "" {
				fmt.Fprintln(os.Stderr, "hyadeslint: -baseline needs a file path")
				return 2
			}
			opt.baseline = v
		case strings.HasPrefix(arg, "-analyzers") || strings.HasPrefix(arg, "--analyzers"):
			v, ok := value()
			if !ok {
				fmt.Fprintln(os.Stderr, "hyadeslint: -analyzers needs a comma-separated list (see -list)")
				return 2
			}
			byName := map[string]bool{}
			valid := make([]string, 0, len(lint.Analyzers))
			for _, a := range lint.Analyzers {
				byName[a.Name] = true
				valid = append(valid, a.Name)
			}
			opt.analyzers = map[string]bool{}
			for _, name := range strings.Split(v, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if !byName[name] {
					fmt.Fprintf(os.Stderr, "hyadeslint: unknown analyzer %q; valid names: %s\n",
						name, strings.Join(valid, ", "))
					return 2
				}
				opt.analyzers[name] = true
			}
			if len(opt.analyzers) == 0 {
				fmt.Fprintln(os.Stderr, "hyadeslint: -analyzers selected nothing")
				return 2
			}
		case arg == "-h" || arg == "-help" || arg == "--help":
			usage()
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			// Tolerate unknown single flags from cmd/go (e.g. -c=N).
		default:
			patterns = append(patterns, arg)
		}
	}
	if opt.writeBaseline && opt.baseline == "" {
		fmt.Fprintln(os.Stderr, "hyadeslint: -writebaseline needs -baseline <file> to say where")
		return 2
	}
	if cfgFile != "" {
		return runVetUnit(cfgFile, opt)
	}
	if len(patterns) == 0 {
		usage()
		return 2
	}
	return runStandalone(patterns, opt)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hyadeslint [-json|-sarif] [-fix [-n]] [-analyzers a,b] [-baseline file [-writebaseline]] [-writebudget] <package patterns>\n")
	fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(which hyadeslint) <packages>\n\nflags:\n")
	fmt.Fprintf(os.Stderr, "  -json         emit findings as JSON\n")
	fmt.Fprintf(os.Stderr, "  -sarif        emit findings as SARIF 2.1.0\n")
	fmt.Fprintf(os.Stderr, "  -fix          apply suggested fixes in place\n")
	fmt.Fprintf(os.Stderr, "  -n            with -fix: dry run, modify nothing\n")
	fmt.Fprintf(os.Stderr, "  -analyzers    run only this comma-separated subset\n")
	fmt.Fprintf(os.Stderr, "  -list         print the analyzer names and exit\n")
	fmt.Fprintf(os.Stderr, "  -baseline     suppress findings recorded in this committed file; only new ones fail\n")
	fmt.Fprintf(os.Stderr, "  -writebaseline  rewrite the -baseline file with the current findings\n")
	fmt.Fprintf(os.Stderr, "  -writebudget  rewrite lint/allocbudget.json with measured counts\n\nanalyzers:\n")
	for _, a := range lint.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// printVersion implements the -V=full handshake cmd/go uses to key the
// vet cache: the reported ID must change when the tool's code changes,
// so it embeds a digest of the executable.
func printVersion() int {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:12])
	return 0
}

// runStandalone loads the matched packages, collects every finding,
// and emits them once, globally normalized, in the selected format.
func runStandalone(patterns []string, opt options) int {
	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	dirs, err := loader.Patterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	status := 0
	var all []analysis.Diagnostic
	budget := &allocbudget.Budget{Packages: map[string]int{}}
	for _, dir := range dirs {
		path, err := loader.ImportPathFor(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			status = 2
			continue
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			status = 2
			continue
		}
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "hyadeslint: %s: %v\n", path, e)
			}
			status = 2
			continue
		}
		as := lint.AnalyzersFor(path)
		ratcheted := false
		for _, a := range as {
			if a == lint.Hotalloc {
				ratcheted = true
			}
		}
		if opt.analyzers != nil {
			kept := as[:0:0]
			for _, a := range as {
				if opt.analyzers[a.Name] {
					kept = append(kept, a)
				}
			}
			as = kept
		}
		// The module context (call graph + summaries over the import
		// closure) is built only when a selected analyzer consults it.
		var m *lint.Module
		for _, a := range as {
			if lint.Interprocedural[a] {
				m = lint.ModuleFor(pkg)
				break
			}
		}
		if opt.writeBudget && ratcheted {
			if m == nil {
				m = lint.ModuleFor(pkg)
			}
			budget.Packages[path] = lint.MeasureAlloc(pkg, m)
		}
		diags, err := lint.CheckWith(pkg, as, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			status = 2
			continue
		}
		all = append(all, diags...)
	}
	if opt.writeBudget && status == 0 {
		path := filepath.Join(loader.ModuleRoot, "lint", "allocbudget.json")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		if err := budget.Write(path); err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "hyadeslint: wrote %s (%d packages)\n", path, len(budget.Packages))
	}
	findings := emit.Normalize(emit.Findings(loader.Fset, loader.ModuleRoot, all))
	if opt.writeBaseline {
		if status != 0 {
			fmt.Fprintln(os.Stderr, "hyadeslint: not writing baseline: some packages failed to load")
			return status
		}
		b := baseline.New(findings)
		if err := b.Write(opt.baseline); err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "hyadeslint: wrote %s (%d entries covering %d findings)\n",
			opt.baseline, len(b.Entries), len(findings))
		return 0
	}
	if opt.baseline != "" {
		b, err := baseline.Load(opt.baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		var suppressed int
		findings, suppressed = b.Filter(findings)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "hyadeslint: %d baselined finding(s) suppressed (%s)\n", suppressed, opt.baseline)
		}
	}
	if opt.fix {
		if err := applyFixes(loader.Fset, all, opt.dryRun); err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			status = 2
		}
	}
	var emitErr error
	switch {
	case opt.sarifOut:
		emitErr = emit.SARIF(os.Stdout, findings, lint.Analyzers)
	case opt.jsonOut:
		emitErr = emit.JSON(os.Stdout, findings)
	default:
		emitErr = emit.Text(os.Stdout, findings)
	}
	if emitErr != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", emitErr)
		return 2
	}
	if status == 0 && len(findings) > 0 {
		status = 1
	}
	return status
}

// applyFixes gathers every suggested edit, groups them by file, and
// rewrites the files (unless dryRun).  Overlapping edits are skipped:
// edits are applied back to front so earlier offsets stay valid.
func applyFixes(fset *token.FileSet, diags []analysis.Diagnostic, dryRun bool) error {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = fset.Position(te.End)
				}
				if end.Filename != start.Filename || end.Offset < start.Offset {
					return fmt.Errorf("fix for %s: invalid edit range", start.Filename)
				}
				byFile[start.Filename] = append(byFile[start.Filename],
					edit{start: start.Offset, end: end.Offset, text: te.NewText})
			}
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, fname := range files {
		edits := byFile[fname]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start > edits[j].start // back to front
			}
			return edits[i].end > edits[j].end
		})
		src, err := os.ReadFile(fname)
		if err != nil {
			return err
		}
		out := src
		applied := 0
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.end > lastStart || e.end > len(out) {
				continue // overlaps a previously applied edit, or stale
			}
			out = append(out[:e.start:e.start], append(append([]byte(nil), e.text...), out[e.end:]...)...)
			lastStart = e.start
			applied++
		}
		if applied == 0 {
			continue
		}
		if dryRun {
			fmt.Fprintf(os.Stderr, "hyadeslint: would rewrite %s (%d edits)\n", fname, applied)
			continue
		}
		if err := os.WriteFile(fname, out, 0o666); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hyadeslint: rewrote %s (%d edits)\n", fname, applied)
	}
	return nil
}

// vetConfig is the unit-file schema cmd/go hands a -vettool (the same
// JSON x/tools' unitchecker consumes).  Fields we do not need are kept
// so unmarshalling stays strict about nothing and forward-compatible.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a cfg file.
// Imports are re-resolved from source (module tree + $GOROOT/src)
// rather than from the export data cmd/go supplies, so the tool stays
// independent of export-data format details.  An -analyzers subset is
// honored exactly as in standalone mode, so the two modes stay
// byte-identical under the same selection.
func runVetUnit(cfgFile string, opt options) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hyadeslint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// Always satisfy the facts side of the protocol first: downstream
	// units ask for our (empty) facts file even when this unit is
	// skipped.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hyadeslint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The determinism contract governs simulation code, not tests:
	// skip test variants ("pkg [pkg.test]", "pkg.test", "pkg_test").
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	loader, err := load.NewLoader(cfg.Dir)
	if err != nil {
		// Outside any module (e.g. vetting GOROOT): nothing of ours
		// applies.
		return 0
	}
	pkg := &load.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: loader.Fset}
	for _, fname := range cfg.GoFiles {
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(loader.Fset, fname, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyadeslint:", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fname)
	}
	if len(pkg.Files) == 0 {
		return 0
	}
	if err := loader.CheckFiles(pkg); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hyadeslint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	as := lint.AnalyzersFor(pkg.Path)
	if opt.analyzers != nil {
		kept := as[:0:0]
		for _, a := range as {
			if opt.analyzers[a.Name] {
				kept = append(kept, a)
			}
		}
		as = kept
	}
	var m *lint.Module
	for _, a := range as {
		if lint.Interprocedural[a] {
			m = lint.ModuleFor(pkg)
			break
		}
	}
	diags, err := lint.CheckWith(pkg, as, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	// Vet mode keeps absolute paths (cmd/go rewrites them) but shares
	// the standalone normalization, so both modes are byte-stable.
	findings := emit.Normalize(emit.Findings(pkg.Fset, "", diags))
	if opt.jsonOut {
		return printVetJSON(cfg, findings)
	}
	if err := emit.Text(os.Stderr, findings); err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetJSONDiag mirrors the diagnostic shape `go vet -json` consumers
// expect from a unit-checking tool.
type vetJSONDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// printVetJSON emits {"pkg": {"analyzer": [diag...]}} on stdout.
func printVetJSON(cfg vetConfig, findings []emit.Finding) int {
	byAnalyzer := map[string][]vetJSONDiag{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], vetJSONDiag{
			Posn:    fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col),
			Message: f.Message,
		})
	}
	out := map[string]map[string][]vetJSONDiag{cfg.ImportPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "hyadeslint:", err)
		return 2
	}
	return 0
}
