// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for committing as a benchmark artifact.
//
// It reads the benchmark output on stdin and writes JSON to stdout:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson > BENCH.json
//
// Each benchmark line becomes an entry with its iteration count and a
// metrics map keyed by unit (ns/op, B/op, allocs/op, plus any custom
// units reported via b.ReportMetric, e.g. simulated_us).  The document
// also records the host's core count and GOMAXPROCS so that readers can
// judge whether parallel-speedup numbers are meaningful on the machine
// that produced them.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document is the full artifact written to stdout.
type document struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	HostCores  int      `json:"host_cores"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		HostCores:  runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: []result{},
	}
	if len(os.Args) > 1 {
		doc.Note = strings.Join(os.Args[1:], " ")
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `go test -bench` result line of the form
//
//	BenchmarkName-8   100   43122 ns/op   37.26 simulated_us   165 allocs/op
//
// Lines that are not benchmark results (headers, PASS, ok ...) are
// rejected with ok=false.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
