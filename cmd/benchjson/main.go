// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for committing as a benchmark artifact.
//
// It reads the benchmark output on stdin and writes JSON to stdout:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson > BENCH.json
//
// Each benchmark line becomes an entry with its iteration count and a
// metrics map keyed by unit (ns/op, B/op, allocs/op, plus any custom
// units reported via b.ReportMetric, e.g. simulated_us).  The document
// also records the host's core count and GOMAXPROCS so that readers can
// judge whether parallel-speedup numbers are meaningful on the machine
// that produced them.
//
// With -compare it diffs two committed artifacts instead:
//
//	go run ./cmd/benchjson -compare BENCH_pr8.json BENCH_pr9.json
//
// printing per-benchmark deltas for ns/op, allocs/op and events/sec
// over the benchmarks the two documents share (GOMAXPROCS name
// suffixes are normalized away).  The exit status is the regression
// gate: nonzero iff any shared benchmark's allocs/op grew by more
// than 10% — wall-clock deltas never gate, since they are host-noise
// on shared CI machines while allocation counts are deterministic.
// An ns/op growth past 25% is flagged SLOW in the table as a soft
// warning, visible but never failing.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document is the full artifact written to stdout.
type document struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	HostCores  int      `json:"host_cores"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-compare" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(compare(os.Args[2], os.Args[3]))
	}
	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		HostCores:  runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: []result{},
	}
	if len(os.Args) > 1 {
		doc.Note = strings.Join(os.Args[1:], " ")
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compareMetrics are the units -compare reports, in print order.
// events_per_sec is the custom throughput metric BenchmarkSchedule and
// cmd/scaling emit; higher is better, so its delta sign reads opposite
// to the cost metrics.
var compareMetrics = []string{"ns/op", "allocs/op", "events_per_sec"}

// allocRegressionLimit is the fractional allocs/op growth -compare
// tolerates before failing.  Allocation counts are deterministic, so
// anything past the slack is a real regression, not noise; the slack
// exists only for benchmarks whose per-op amortization of one-time
// setup shifts with the iteration count.
const allocRegressionLimit = 0.10

// nsRegressionLimit is the fractional ns/op growth past which -compare
// prints a SLOW warning.  Wall clock is host noise on shared CI
// machines, so the warning never fails the run — it exists to make a
// large slowdown impossible to merge unread, while leaving the hard
// gate to the deterministic allocation counts.
const nsRegressionLimit = 0.25

// compare diffs two benchmark artifacts and returns the process exit
// code: 1 if any shared benchmark's allocs/op regressed beyond
// allocRegressionLimit, else 0.
func compare(oldPath, newPath string) int {
	oldDoc, err := readDoc(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := readDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	old := map[string]result{}
	for _, r := range oldDoc.Benchmarks {
		old[normalizeName(r.Name)] = r
	}

	fmt.Printf("%-44s %-14s %14s %14s %9s\n", "benchmark", "metric", oldPath, newPath, "delta")
	regressions := 0
	slowdowns := 0
	shared := 0
	for _, nr := range newDoc.Benchmarks {
		or, ok := old[normalizeName(nr.Name)]
		if !ok {
			continue
		}
		shared++
		for _, m := range compareMetrics {
			nv, nok := nr.Metrics[m]
			ov, ook := or.Metrics[m]
			if !nok || !ook {
				continue
			}
			delta := "n/a"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
			}
			flag := ""
			if m == "allocs/op" && allocRegressed(ov, nv) {
				flag = "  REGRESSION"
				regressions++
			}
			if m == "ns/op" && ov > 0 && (nv-ov)/ov > nsRegressionLimit {
				flag = "  SLOW"
				slowdowns++
			}
			fmt.Printf("%-44s %-14s %14.4g %14.4g %9s%s\n", normalizeName(nr.Name), m, ov, nv, delta, flag)
		}
	}
	fmt.Printf("%d shared benchmarks compared; %d allocs/op regression(s) over the %.0f%% gate; %d ns/op slowdown(s) over the %.0f%% warning line (non-failing)\n",
		shared, regressions, 100*allocRegressionLimit, slowdowns, 100*nsRegressionLimit)
	if regressions > 0 {
		return 1
	}
	return 0
}

// allocRegressed reports whether an allocs/op move from ov to nv
// trips the gate.  Growth from zero is always a regression — a
// zero-alloc path is a ratchet, not a baseline with slack.
func allocRegressed(ov, nv float64) bool {
	if nv <= ov {
		return false
	}
	if ov == 0 {
		return true
	}
	return (nv-ov)/ov > allocRegressionLimit
}

// readDoc loads one committed artifact.
func readDoc(path string) (document, error) {
	var doc document
	b, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// normalizeName strips the -N GOMAXPROCS suffix go test appends, so
// artifacts from hosts with different core counts still line up.
func normalizeName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine parses one `go test -bench` result line of the form
//
//	BenchmarkName-8   100   43122 ns/op   37.26 simulated_us   165 allocs/op
//
// Lines that are not benchmark results (headers, PASS, ok ...) are
// rejected with ok=false.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
