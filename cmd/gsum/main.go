// Command gsum regenerates the global-sum latency measurements of
// §4.2: N-way butterfly sums for one processor per SMP, the 2xN-way
// mix-mode variants, and the least-squares fit tgsum = C*log2(N) + b
// (paper: 4.67*log2(N) - 0.95 us).
package main

import (
	"fmt"
	"log"
	"math"

	"hyades/internal/bench"
	"hyades/internal/report"
)

func main() {
	t := report.NewTable("Section 4.2: global-sum latency",
		"configuration", "measured (us)", "paper (us)")
	paper1 := map[int]float64{2: 4.0, 4: 8.3, 8: 12.8, 16: 18.2}
	paper2 := map[int]float64{2: 4.8, 4: 9.1, 8: 13.5, 16: 19.5}

	var xs, ys []float64
	for _, n := range []int{2, 4, 8, 16} {
		lat, err := bench.Gsum(bench.HyadesRunner{PPN: 1}, n, 8)
		if err != nil {
			log.Fatal(err)
		}
		t.Addf("%d-way|%.2f|%.1f", n, lat.Micros(), paper1[n])
		xs = append(xs, math.Log2(float64(n)))
		ys = append(ys, lat.Micros())
	}
	for _, n := range []int{2, 4, 8, 16} {
		lat, err := bench.Gsum(bench.HyadesRunner{PPN: 2}, 2*n, 8)
		if err != nil {
			log.Fatal(err)
		}
		t.Addf("2x%d-way|%.2f|%.1f", n, lat.Micros(), paper2[n])
	}
	fmt.Print(t)

	c, b := fit(xs, ys)
	fmt.Printf("\nleast-squares fit: tgsum = %.2f * log2(N) %+.2f us\n", c, b)
	fmt.Printf("paper fit:         tgsum = 4.67 * log2(N) - 0.95 us\n")
}

func fit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept = (sy - slope*sx) / n
	return slope, intercept
}
