// Command perftable regenerates the performance tables of §5:
//
//   - Fig. 10: sustained floating-point performance of the ocean
//     isomorph on 1 and 16 Hyades processors, alongside the vector
//     supercomputers (roofline model + published values);
//   - Fig. 11 (with -params): the performance-model parameters of the
//     coupled 2.8125-degree simulation, measured on the simulated
//     machine, next to the paper's published values.
package main

import (
	"flag"
	"fmt"
	"log"

	"hyades/internal/bench"
	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/report"
	"hyades/internal/vector"
)

func main() {
	params := flag.Bool("params", false, "print the Fig. 11 performance-model parameters")
	steps := flag.Int("steps", 4, "timed model steps per measurement")
	flag.Parse()

	if *params {
		printFig11(*steps)
		return
	}
	printFig10(*steps)
}

func printFig10(steps int) {
	t := report.NewTable("Figure 10: sustained performance of the coarse-resolution ocean isomorph",
		"processors", "machine", "sustained (GFlop/s)", "paper (GFlop/s)")
	for _, m := range vector.Fig10Machines() {
		t.Addf("%d|%s|%.2f|%.1f", m.CPUs, m.Name, m.SustainedGFlops(), m.PaperSustainedGFlops)
	}

	// One simulated Hyades processor: the serial ocean tile.
	serialCfg := gcm.CoarseOceanConfig(serial128x64())
	m1, elapsed, err := gcm.RunSerial(serialCfg, steps)
	if err != nil {
		log.Fatal(err)
	}
	oneProc := float64(m1.C.PS+m1.C.DS) / elapsed.Seconds() / 1e9
	t.Addf("1|Hyades|%.3f|%.3f", oneProc, 0.054)

	// Sixteen processors on eight SMPs.
	cfg16 := gcm.CoarseOceanConfig(bench.ScalingDecomp())
	res, err := gcm.RunParallel(8, 2, cfg16, 1, steps)
	if err != nil {
		log.Fatal(err)
	}
	sixteen := res.SustainedMFlops() / 1000
	t.Addf("16|Hyades|%.2f|%.1f", sixteen, 0.8)
	t.Note = fmt.Sprintf("Hyades 16-processor speedup over 1: %.1fx (paper: ~15x); mean CG iterations Ni = %.0f",
		sixteen/oneProc, res.MeanNi)
	fmt.Print(t)
}

func printFig11(steps int) {
	// Communication primitives from the stand-alone benchmarks.
	prim, err := bench.MeasureHyades()
	if err != nil {
		log.Fatal(err)
	}

	// Operation counts from instrumented serial kernels.
	atm := gcm.CoarseAtmosphereConfig(serial128x64())
	atm.Forcing = physics.New(physics.Default())
	atm.FpsMFlops, atm.FdsMFlops = 0, 0
	mAtm, _, err := gcm.RunSerial(atm, steps)
	if err != nil {
		log.Fatal(err)
	}
	oc := gcm.CoarseOceanConfig(serial128x64())
	oc.FpsMFlops, oc.FdsMFlops = 0, 0
	mOc, _, err := gcm.RunSerial(oc, steps)
	if err != nil {
		log.Fatal(err)
	}

	cells := 128 * 64
	npsAtm := float64(mAtm.C.PS) / float64(steps*cells*5)
	npsOc := float64(mOc.C.PS) / float64(steps*cells*15)
	ndsAtm := float64(mAtm.C.DS) / (float64(mAtm.Solver.TotalIters) * float64(cells))

	t := report.NewTable("Figure 11: performance-model parameters (16 processors, 8 SMPs)",
		"parameter", "measured", "paper")
	t.Addf("Nps (atmosphere, flops/cell)|%.0f|781", npsAtm)
	t.Addf("Nps (ocean, flops/cell)|%.0f|751", npsOc)
	t.Addf("Nds (flops/column/iter)|%.0f|36", ndsAtm)
	t.Addf("texchxyz atm (us)|%.0f|1640", prim.Texchxyz.Micros())
	t.Addf("texchxyz ocean (us)|%.0f|4573", prim.Ocean3D.Micros())
	t.Addf("texchxy (us)|%.0f|115", prim.Texchxy.Micros())
	t.Addf("tgsum 2x8-way (us)|%.1f|13.5", prim.Tgsum.Micros())
	t.Addf("Ni (mean CG iters)|%.0f|60", mAtm.Solver.MeanIters())
	t.Note = "Nps/Nds are measured from this implementation's instrumented kernels; " +
		"the paper's counts come from the Fortran code, so magnitudes (hundreds per cell, tens per column) are the comparison"
	fmt.Print(t)
}

// serial128x64 is the single-tile production grid decomposition used
// for serial baseline measurements.
func serial128x64() tile.Decomp {
	return tile.Decomp{NXg: 128, NYg: 64, Px: 1, Py: 1, PeriodicX: true}
}
