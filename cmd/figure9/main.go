// Command figure9 regenerates the science plates of the paper's
// Fig. 9: the coupled ocean-atmosphere simulation's ocean currents at
// ~25 m depth and the atmospheric zonal velocity in the upper
// troposphere.  Output is written as CSV and PGM files plus an ASCII
// quick-look; longer runs (-days) give a better-developed circulation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"math"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm"
	"hyades/internal/gcm/diag"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/report"
)

func main() {
	days := flag.Float64("days", 10, "model days to integrate")
	outDir := flag.String("out", "fig9_out", "output directory")
	flag.Parse()

	d := tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 2, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	steps := int(*days * 86400 / cfg.Ocean.Kernel.Dt)
	nWorkers := 2 * d.Tiles()

	cl, err := cluster.New(cluster.DefaultConfig(8, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		log.Fatal(err)
	}
	coupled := make([]*gcm.Coupled, nWorkers)
	fields := map[string]*field.F2{}
	var oceanDiag *diag.State
	var buildErr error
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < d.Tiles() {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		coupled[w.Rank] = cp
		cp.Run(steps)
		// Gather the figure fields on each component's root.
		m := cp.M
		if cp.IsOcean {
			if g := m.Halo.Gather3Level(m.S.U, 1); g != nil {
				fields["ocean_u_25m"] = g
			}
			if g := m.Halo.Gather3Level(m.S.V, 1); g != nil {
				fields["ocean_v_25m"] = g
			}
			if g := m.Halo.Gather3Level(m.S.Theta, 0); g != nil {
				fields["ocean_sst"] = g
			}
			// Gather the full 3-D circulation for diagnostics on the
			// ocean root.
			var us, vs, ths []*field.F2
			for k := 0; k < m.G.NZ; k++ {
				us = append(us, m.Halo.Gather3Level(m.S.U, k))
				vs = append(vs, m.Halo.Gather3Level(m.S.V, k))
				ths = append(ths, m.Halo.Gather3Level(m.S.Theta, k))
			}
			if us[0] != nil {
				gg, err := grid.NewLocal(m.Cfg.Grid, 0, 0, m.Cfg.Grid.NX, m.Cfg.Grid.NY, 1)
				if err == nil {
					oceanDiag = &diag.State{G: gg, U: us, V: vs, Theta: ths}
				}
			}
		} else {
			if g := m.Halo.Gather3Level(m.S.U, 1); g != nil {
				fields["atmos_u_250mb"] = g
			}
			if g := m.Halo.Gather3Level(m.S.Theta, m.G.NZ-1); g != nil {
				fields["atmos_theta_surface"] = g
			}
		}
	})
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	if buildErr != nil {
		log.Fatal(buildErr)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, f := range fields {
		if err := os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(report.FieldCSV(f)), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".pgm"), []byte(report.FieldPGM(f)), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("Figure 9 after %.0f coupled model days (%d steps); files in %s/\n\n", *days, steps, *outDir)
	if f, ok := fields["atmos_u_250mb"]; ok {
		fmt.Println("ATMOSPHERE: zonal velocity, upper troposphere (north up):")
		fmt.Print(report.FieldASCII(f, 96))
	}
	if f, ok := fields["ocean_u_25m"]; ok {
		fmt.Println("\nOCEAN: zonal current at ~25 m (north up; '#' = land):")
		maskLand(coupled, f)
		fmt.Print(report.FieldASCII(f, 96))
	}
	if oceanDiag != nil && oceanDiag.Validate() == nil {
		psi := oceanDiag.Overturning()
		maxPsi, minPsi := 0.0, 0.0
		for k := 0; k < psi.NY; k++ {
			for j := 0; j < psi.NX; j++ {
				v := psi.At(j, k)
				if v > maxPsi {
					maxPsi = v
				}
				if v < minPsi {
					minPsi = v
				}
			}
		}
		ht := oceanDiag.HeatTransport()
		peak := 0.0
		for _, v := range ht {
			if math.Abs(v) > math.Abs(peak) {
				peak = v
			}
		}
		bt := oceanDiag.BarotropicStreamfunction()
		os.WriteFile(filepath.Join(*outDir, "ocean_barotropic_psi.csv"), []byte(report.FieldCSV(bt)), 0o644)
		fmt.Printf("\nOCEAN diagnostics: overturning psi in [%.1f, %.1f] Sv; peak meridional heat transport %.3f PW\n",
			minPsi, maxPsi, peak)
	}
}

// maskLand marks land columns as NaN for the quick-look renderer.
func maskLand(coupled []*gcm.Coupled, f *field.F2) {
	// Rebuild the global land mask from any ocean tile's grid config.
	var oc *gcm.Coupled
	for _, c := range coupled {
		if c != nil && c.IsOcean {
			oc = c
			break
		}
	}
	if oc == nil {
		return
	}
	depth := oc.M.Cfg.Grid.DepthFrac
	if depth == nil {
		return
	}
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			x := (float64(i) + 0.5) / float64(f.NX)
			y := (float64(j) + 0.5) / float64(f.NY)
			if depth(x, y) == 0 {
				f.Set(i, j, nan())
			}
		}
	}
}

func nan() float64 { return math.NaN() }
