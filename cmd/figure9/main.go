// Command figure9 regenerates the science plates of the paper's
// Fig. 9: the coupled ocean-atmosphere simulation's ocean currents at
// ~25 m depth and the atmospheric zonal velocity in the upper
// troposphere.  Output is written as CSV and PGM files plus an ASCII
// quick-look; longer runs (-days) give a better-developed circulation.
//
// Long climate integrations run through -years (360-day model years)
// with periodic checkpoint plates: -checkpoint-every Y writes one
// plate file per rank under <out>/plates every Y model years, and
// -resume restarts from the newest complete plate set, reaching a
// state digest bit-identical to the uninterrupted run.  The final
// line reports model-years-per-wall-hour, the metric a real science
// run is provisioned by.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"math"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm"
	"hyades/internal/gcm/diag"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/report"
)

// yearSeconds is one 360-day model year, the climate-model calendar
// convention (12 equal 30-day months).
const yearSeconds = 360 * 86400

func main() {
	days := flag.Float64("days", 10, "model days to integrate")
	years := flag.Float64("years", 0, "model years to integrate (360-day years; overrides -days)")
	ckEvery := flag.Float64("checkpoint-every", 0, "model years between checkpoint plates (0 = none)")
	resume := flag.Bool("resume", false, "resume from the newest complete plate set in <out>/plates")
	nx := flag.Int("nx", 128, "global grid points in x")
	ny := flag.Int("ny", 64, "global grid points in y")
	outDir := flag.String("out", "fig9_out", "output directory")
	flag.Parse()

	d := tile.Decomp{NXg: *nx, NYg: *ny, Px: 4, Py: 2, PeriodicX: true}
	cfg := gcm.DefaultCoupledConfig(d)
	var steps int
	if *years > 0 {
		steps = int(*years * yearSeconds / cfg.Ocean.Kernel.Dt)
	} else {
		steps = int(*days * 86400 / cfg.Ocean.Kernel.Dt)
	}
	chunk := 0
	if *ckEvery > 0 {
		chunk = int(*ckEvery * yearSeconds / cfg.Ocean.Kernel.Dt)
		if chunk < 1 {
			chunk = 1
		}
	}
	nWorkers := 2 * d.Tiles()

	plateDir := filepath.Join(*outDir, "plates")
	startStep := 0
	if *resume {
		s, err := newestPlateStep(plateDir, nWorkers)
		if err != nil {
			log.Fatal(err)
		}
		startStep = s
	}
	if chunk > 0 || *resume {
		if err := os.MkdirAll(plateDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	cl, err := cluster.New(cluster.DefaultConfig(8, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		log.Fatal(err)
	}
	coupled := make([]*gcm.Coupled, nWorkers)
	fields := map[string]*field.F2{}
	var oceanDiag *diag.State
	var buildErr error
	wall0 := time.Now()
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < d.Tiles() {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := gcm.NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		coupled[w.Rank] = cp
		if startStep > 0 {
			if err := restorePlate(plateDir, startStep, w.Rank, cp); err != nil {
				buildErr = err
				return
			}
		}
		for s := startStep; s < steps; {
			next := steps
			if chunk > 0 {
				if b := (s/chunk + 1) * chunk; b < next {
					next = b
				}
			}
			cp.Run(next - s)
			s = next
			if chunk > 0 && s%chunk == 0 {
				if err := writePlate(plateDir, s, w.Rank, cp); err != nil {
					buildErr = err
					return
				}
			}
		}
		// Gather the figure fields on each component's root.
		m := cp.M
		if cp.IsOcean {
			if g := m.Halo.Gather3Level(m.S.U, 1); g != nil {
				fields["ocean_u_25m"] = g
			}
			if g := m.Halo.Gather3Level(m.S.V, 1); g != nil {
				fields["ocean_v_25m"] = g
			}
			if g := m.Halo.Gather3Level(m.S.Theta, 0); g != nil {
				fields["ocean_sst"] = g
			}
			// Gather the full 3-D circulation for diagnostics on the
			// ocean root.
			var us, vs, ths []*field.F2
			for k := 0; k < m.G.NZ; k++ {
				us = append(us, m.Halo.Gather3Level(m.S.U, k))
				vs = append(vs, m.Halo.Gather3Level(m.S.V, k))
				ths = append(ths, m.Halo.Gather3Level(m.S.Theta, k))
			}
			if us[0] != nil {
				gg, err := grid.NewLocal(m.Cfg.Grid, 0, 0, m.Cfg.Grid.NX, m.Cfg.Grid.NY, 1)
				if err == nil {
					oceanDiag = &diag.State{G: gg, U: us, V: vs, Theta: ths}
				}
			}
		} else {
			if g := m.Halo.Gather3Level(m.S.U, 1); g != nil {
				fields["atmos_u_250mb"] = g
			}
			if g := m.Halo.Gather3Level(m.S.Theta, m.G.NZ-1); g != nil {
				fields["atmos_theta_surface"] = g
			}
		}
	})
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	if buildErr != nil {
		log.Fatal(buildErr)
	}
	wall := time.Since(wall0)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, f := range fields {
		if err := os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(report.FieldCSV(f)), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".pgm"), []byte(report.FieldPGM(f)), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	modelDays := float64(steps) * cfg.Ocean.Kernel.Dt / 86400
	fmt.Printf("Figure 9 after %.1f coupled model days (%d steps); files in %s/\n", modelDays, steps, *outDir)
	integratedYears := float64(steps-startStep) * cfg.Ocean.Kernel.Dt / yearSeconds
	fmt.Printf("integrated %.4f model years in %v: %.2f model years per wall hour\n",
		integratedYears, wall.Round(time.Millisecond), integratedYears/wall.Hours())
	h := sha256.New()
	for r, cp := range coupled {
		if cp == nil {
			log.Fatalf("worker %d did not build", r)
		}
		if err := cp.Checkpoint(h); err != nil {
			log.Fatalf("worker %d: digest: %v", r, err)
		}
	}
	fmt.Printf("state digest: %x\n\n", h.Sum(nil))
	if f, ok := fields["atmos_u_250mb"]; ok {
		fmt.Println("ATMOSPHERE: zonal velocity, upper troposphere (north up):")
		fmt.Print(report.FieldASCII(f, 96))
	}
	if f, ok := fields["ocean_u_25m"]; ok {
		fmt.Println("\nOCEAN: zonal current at ~25 m (north up; '#' = land):")
		maskLand(coupled, f)
		fmt.Print(report.FieldASCII(f, 96))
	}
	if oceanDiag != nil && oceanDiag.Validate() == nil {
		psi := oceanDiag.Overturning()
		maxPsi, minPsi := 0.0, 0.0
		for k := 0; k < psi.NY; k++ {
			for j := 0; j < psi.NX; j++ {
				v := psi.At(j, k)
				if v > maxPsi {
					maxPsi = v
				}
				if v < minPsi {
					minPsi = v
				}
			}
		}
		ht := oceanDiag.HeatTransport()
		peak := 0.0
		for _, v := range ht {
			if math.Abs(v) > math.Abs(peak) {
				peak = v
			}
		}
		bt := oceanDiag.BarotropicStreamfunction()
		os.WriteFile(filepath.Join(*outDir, "ocean_barotropic_psi.csv"), []byte(report.FieldCSV(bt)), 0o644)
		fmt.Printf("\nOCEAN diagnostics: overturning psi in [%.1f, %.1f] Sv; peak meridional heat transport %.3f PW\n",
			minPsi, maxPsi, peak)
	}
}

// maskLand marks land columns as NaN for the quick-look renderer.
func maskLand(coupled []*gcm.Coupled, f *field.F2) {
	// Rebuild the global land mask from any ocean tile's grid config.
	var oc *gcm.Coupled
	for _, c := range coupled {
		if c != nil && c.IsOcean {
			oc = c
			break
		}
	}
	if oc == nil {
		return
	}
	depth := oc.M.Cfg.Grid.DepthFrac
	if depth == nil {
		return
	}
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			x := (float64(i) + 0.5) / float64(f.NX)
			y := (float64(j) + 0.5) / float64(f.NY)
			if depth(x, y) == 0 {
				f.Set(i, j, nan())
			}
		}
	}
}

func nan() float64 { return math.NaN() }

// platePath names one rank's plate file for a given step count.
func platePath(dir string, step, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("plate_step%08d_rank%03d.ck", step, rank))
}

// writePlate atomically writes one rank's checkpoint plate: the plate
// appears under its final name only once fully written, so a crashed
// run never leaves a truncated plate that a -resume would trip over.
func writePlate(dir string, step, rank int, cp *gcm.Coupled) error {
	tmp := platePath(dir, step, rank) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cp.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, platePath(dir, step, rank))
}

// restorePlate loads one rank's plate for the given step.
func restorePlate(dir string, step, rank int, cp *gcm.Coupled) error {
	f, err := os.Open(platePath(dir, step, rank))
	if err != nil {
		return err
	}
	defer f.Close()
	return cp.Restore(f)
}

// newestPlateStep scans dir for the highest step count at which every
// rank's plate is present, so -resume never starts from a partially
// written set.
func newestPlateStep(dir string, nWorkers int) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("figure9: -resume: %w", err)
	}
	count := map[int]int{}
	for _, e := range ents {
		var step, rank int
		if _, err := fmt.Sscanf(e.Name(), "plate_step%d_rank%d.ck", &step, &rank); err == nil {
			count[step]++
		}
	}
	best := 0
	for step, n := range count {
		if n == nWorkers && step > best {
			best = step
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("figure9: -resume: no complete plate set (all %d ranks) in %s", nWorkers, dir)
	}
	return best, nil
}
