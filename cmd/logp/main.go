// Command logp regenerates Fig. 2 of the paper: the LogP performance
// characteristics of StarT-X PIO message passing for 8-byte and
// 64-byte payloads, plus (with -pio) the §2.3 overhead estimates
// derived from the host's mmap access costs.
package main

import (
	"flag"
	"fmt"
	"log"

	"hyades/internal/logp"
	"hyades/internal/report"
)

func main() {
	pio := flag.Bool("pio", false, "also print the section 2.3 mmap cost estimates")
	flag.Parse()

	rows, err := logp.Fig2()
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Figure 2: LogP characteristics of PIO message passing",
		"size (byte)", "Os (us)", "Or (us)", "Tround-trip/2 (us)", "Lnetwork (us)")
	paper := map[int][4]float64{8: {0.4, 2.0, 3.7, 1.3}, 64: {1.7, 8.6, 11.7, 1.4}}
	for _, r := range rows {
		t.Addf("%d|%.2f|%.2f|%.2f|%.2f", r.PayloadBytes,
			r.Os.Micros(), r.Or.Micros(), r.HalfRTT.Micros(), r.L.Micros())
		p := paper[r.PayloadBytes]
		t.Addf("  (paper)|%.1f|%.1f|%.1f|%.1f", p[0], p[1], p[2], p[3])
	}
	fmt.Print(t)

	if *pio {
		fmt.Println()
		fmt.Println("Section 2.3 estimate for an 8-byte message:")
		fmt.Println("  send    = 2 x 0.18 us mmap writes = 0.36 us")
		fmt.Println("  receive = 2 x 0.93 us mmap reads  = 1.86 us")
	}
}
