// Command pfpp regenerates Fig. 12 of the paper: the Potential
// Floating-Point Performance of the 2.8125-degree atmospheric
// simulation on a sixteen-processor, eight-SMP cluster joined by Fast
// Ethernet, Gigabit Ethernet and the Arctic Switch Fabric — in two
// forms: from the paper's published primitive costs (the formulas of
// eqs. 14-15 on Fig. 12's inputs) and from primitives measured on the
// simulated/modelled machines.  With -hpvm it adds the §6 comparison
// against a Myrinet/HPVM cluster.
package main

import (
	"flag"
	"fmt"
	"log"

	"hyades/internal/bench"
	"hyades/internal/netmodel"
	"hyades/internal/perfmodel"
	"hyades/internal/report"
	"hyades/internal/units"
)

func main() {
	hpvm := flag.Bool("hpvm", false, "add the section 6 Myrinet/HPVM comparison")
	flag.Parse()

	fmt.Println("Evaluated from the paper's published primitive costs:")
	printRows(perfmodel.PaperFig12())

	fmt.Println("\nEvaluated from primitives measured on this reproduction's machines:")
	var rows []perfmodel.InterconnectRow
	fe, err := bench.MeasureNet(netmodel.FastEthernet())
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, perfmodel.Fig12Row("F.E.", fe.Tgsum, fe.Texchxy, fe.Texchxyz))
	ge, err := bench.MeasureNet(netmodel.GigabitEthernet())
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, perfmodel.Fig12Row("G.E.", ge.Tgsum, ge.Texchxy, ge.Texchxyz))
	arctic, err := bench.MeasureHyades()
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, perfmodel.Fig12Row("Arctic", arctic.Tgsum, arctic.Texchxy, arctic.Texchxyz))
	if *hpvm {
		my, err := bench.MeasureNet(netmodel.MyrinetHPVM())
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, perfmodel.Fig12Row("Myrinet/HPVM", my.Tgsum, my.Texchxy, my.Texchxyz))
	}
	printRows(rows)

	thr := perfmodel.DSThreshold(60)
	fmt.Printf("\nTo reach Pfpp,ds = 60 MFlop/s, tgsum + texchxy must not exceed %.0f us (paper: 306 us).\n", thr.Micros())
	fmt.Printf("Gigabit Ethernet sits %.1fx beyond that threshold (paper: nearly a factor of ten).\n",
		(ge.Tgsum+ge.Texchxy).Seconds()/thr.Seconds())

	if *hpvm {
		barrier, err := bench.Gsum(bench.NetRunner{Prm: netmodel.MyrinetHPVM()}, 16, 8)
		if err != nil {
			log.Fatal(err)
		}
		ours, err := bench.Gsum(bench.HyadesRunner{PPN: 1}, 16, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nSection 6: a 16-way HPVM barrier takes %v vs Hyades' %v (paper: >50 us, more than 2.5x longer).\n",
			barrier, ours)
	}
}

func printRows(rows []perfmodel.InterconnectRow) {
	t := report.NewTable("",
		"network", "tgsum (us)", "texchxy (us)", "texchxyz (us)",
		"Pfpp,ps (MF/s)", "Pfpp,ds (MF/s)", "Fps", "Fds")
	for _, r := range rows {
		t.Addf("%s|%.1f|%.0f|%.0f|%.1f|%.1f|%.0f|%.0f",
			r.Name, r.Tgsum.Micros(), r.Texchxy.Micros(), r.Texchxyz.Micros(),
			r.PfppPS, r.PfppDS, r.Fps, r.Fds)
	}
	fmt.Print(t)
	_ = units.Microsecond
}
