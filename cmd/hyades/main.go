// Command hyades is the general driver for the simulated cluster: it
// runs the ocean or atmosphere isomorph (or the small gyre case) on a
// chosen machine configuration and reports timing, sustained rate and
// solver statistics.
//
//	hyades -model ocean -nodes 8 -ppn 2 -steps 20
//	hyades -model atmosphere -net ge -steps 10   (modelled Gigabit Ethernet)
//	hyades -model gyre -serial -steps 200
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hyades/internal/comm"
	"hyades/internal/fault"

	"hyades/internal/gcm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
	"hyades/internal/netmodel"
	"hyades/internal/report"
	"hyades/internal/units"
)

func main() {
	model := flag.String("model", "ocean", "ocean | atmosphere | gyre")
	nodes := flag.Int("nodes", 8, "SMP count (Hyades machine)")
	ppn := flag.Int("ppn", 2, "processors per SMP")
	netName := flag.String("net", "", "run over a modelled interconnect instead: fe | ge | hpvm")
	serial := flag.Bool("serial", false, "single-processor serial run")
	steps := flag.Int("steps", 10, "timed steps")
	warmup := flag.Int("warmup", 2, "untimed warm-up steps")
	px := flag.Int("px", 0, "tiles in x (default: fit the worker count)")
	py := flag.Int("py", 0, "tiles in y")
	saveTo := flag.String("checkpoint", "", "write a checkpoint here after a -serial run")
	restoreFrom := flag.String("restore", "", "restore a -serial run from this checkpoint before stepping")
	poolWorkers := flag.Int("workers", 0, "host worker pool size for parallel compute phases (0 = GOMAXPROCS, negative = inline)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault plan")
	dropRate := flag.Float64("drop-rate", 0, "per-packet silent drop probability on every fabric link")
	corruptRate := flag.Float64("corrupt-rate", 0, "per-packet corruption probability on every fabric link")
	linkOutage := flag.String("link-outage", "", "comma-separated LINK[:FROM_US[-UNTIL_US]] outage windows (LINK may end in * as a prefix wildcard)")
	nodeOutage := flag.String("node-outage", "", "comma-separated NODE[:FROM_US[-UNTIL_US]] whole-node crash windows (NODE may end in * or be *; no UNTIL means permanent)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "save a coordinated checkpoint every N model steps (0 = never; required to survive node crashes)")
	maxRestarts := flag.Int("max-restarts", 0, "abort after this many node crashes (0 = controller default)")
	digest := flag.Bool("digest", false, "print a SHA-256 over the final model state (the survival-contract observable)")
	flag.Parse()

	fcfg := fault.Config{Seed: *faultSeed, DropRate: *dropRate, CorruptRate: *corruptRate}
	if *linkOutage != "" {
		outages, err := fault.ParseOutages(*linkOutage)
		if err != nil {
			log.Fatal(err)
		}
		fcfg.Outages = outages
	}
	if *nodeOutage != "" {
		outages, err := fault.ParseNodeOutages(*nodeOutage)
		if err != nil {
			log.Fatal(err)
		}
		fcfg.NodeOutages = outages
	}
	if fcfg.Enabled() && (*serial || *netName != "") {
		log.Fatal("fault injection models the Arctic fabric: drop -serial / -net to use it")
	}

	workers := *nodes * *ppn
	if *serial {
		workers = 1
	}
	d := decompFor(*model, workers, *px, *py)
	cfg := configFor(*model, d)

	if *serial {
		ep := &comm.Serial{}
		m, err := gcm.New(cfg, ep)
		if err != nil {
			log.Fatal(err)
		}
		if *restoreFrom != "" {
			f, err := os.Open(*restoreFrom)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.Restore(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("restored from %s at step %d\n", *restoreFrom, m.Steps)
		}
		start := ep.Now()
		m.Run(*steps)
		elapsed := ep.Now() - start
		fmt.Printf("%s: %d serial steps in %v of simulated time (%v/step)\n",
			cfg.Name, *steps, elapsed, elapsed/units.Time(*steps))
		fmt.Printf("sustained: %.1f MFlop/s; mean Ni = %.0f; flops: PS=%d DS=%d\n",
			float64(m.C.PS+m.C.DS)/elapsed.Seconds()/1e6, m.Solver.MeanIters(), m.C.PS, m.C.DS)
		if *saveTo != "" {
			f, err := os.Create(*saveTo)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.Checkpoint(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint written to %s (step %d)\n", *saveTo, m.Steps)
		}
		if *digest {
			h := sha256.New()
			if err := m.Checkpoint(h); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("state digest: %x\n", h.Sum(nil))
		}
		return
	}

	var res *gcm.Result
	var err error
	machine := fmt.Sprintf("Hyades %dx%d", *nodes, *ppn)
	if *netName != "" {
		prm, perr := netParams(*netName)
		if perr != nil {
			log.Fatal(perr)
		}
		machine = prm.Name
		res, err = gcm.RunParallelNet(prm, cfg, *warmup, *steps)
	} else {
		res, err = gcm.RunParallelOpts(*nodes, *ppn, cfg, *warmup, *steps,
			gcm.ParallelOpts{Fault: fcfg, Workers: *poolWorkers,
				CheckpointEvery: *checkpointEvery, MaxRestarts: *maxRestarts})
	}
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(fmt.Sprintf("%s on %s (%d workers)", cfg.Name, machine, d.Tiles()),
		"metric", "value")
	t.Addf("steps|%d", res.Steps)
	t.Addf("simulated time/step|%v", res.PerStep())
	t.Addf("sustained rate|%.1f MFlop/s", res.SustainedMFlops())
	t.Addf("mean CG iterations Ni|%.0f", res.MeanNi)
	t.Addf("compute time (all workers)|%v", res.ComputeTime)
	t.Addf("exchange time (all workers)|%v", res.ExchangeTime)
	t.Addf("global-sum time (all workers)|%v", res.GsumTime)
	comm := res.ExchangeTime + res.GsumTime
	t.Addf("communication fraction|%.1f%%", 100*float64(comm)/float64(comm+res.ComputeTime))
	if fcfg.Enabled() {
		fs := res.Fault
		t.Addf("fault drops / corruptions / outage drops|%d / %d / %d",
			fs.FaultDropped, fs.FaultCorrupted, fs.OutageDropped)
		t.Addf("retransmits / timeouts|%d / %d", fs.Retransmits, fs.Timeouts)
		t.Addf("dup suppressed / gap dropped|%d / %d", fs.DupSuppressed, fs.GapDropped)
		t.Addf("adaptive fail-overs|%d", fs.FailedOver)
		t.Addf("goodput|%.1f%% of %d wire bytes",
			report.Goodput(res.Net.PayloadBytes, res.Net.WireBytes), res.Net.WireBytes)
	}
	if res.Recovery.Enabled {
		t.AddAvailability(report.Availability{
			Restarts:         res.Recovery.Restarts,
			RecoveryTime:     res.Recovery.RecoveryTime.Micros(),
			LostVirtual:      res.Recovery.LostVirtual.Micros(),
			LostFlops:        res.Recovery.LostFlops,
			Checkpoints:      res.Recovery.Checkpoints,
			CheckpointBytes:  res.Recovery.CheckpointBytes,
			PendingDiscarded: res.Recovery.PendingDiscarded,
		})
	}
	fmt.Print(t)
	if *digest {
		h := sha256.New()
		for r, m := range res.Models {
			if err := m.Checkpoint(h); err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
		}
		fmt.Printf("state digest: %x\n", h.Sum(nil))
	}
}

func decompFor(model string, workers, px, py int) tile.Decomp {
	nx, ny := 128, 64
	if model == "gyre" {
		nx, ny = 64, 64
	}
	if px == 0 || py == 0 {
		px, py = bestSplit(workers)
	}
	return tile.Decomp{NXg: nx, NYg: ny, Px: px, Py: py, PeriodicX: model != "gyre"}
}

// bestSplit factors the worker count into a near-square tile grid with
// even periodic rings.
func bestSplit(n int) (px, py int) {
	px, py = n, 1
	for p := 1; p*p <= n; p++ {
		if n%p == 0 {
			q := n / p
			if q%2 == 0 || q == 1 {
				px, py = q, p
			}
		}
	}
	return px, py
}

func configFor(model string, d tile.Decomp) gcm.Config {
	switch strings.ToLower(model) {
	case "ocean":
		return gcm.CoarseOceanConfig(d)
	case "atmosphere", "atm":
		cfg := gcm.CoarseAtmosphereConfig(d)
		cfg.Forcing = physics.New(physics.Default())
		return cfg
	case "gyre":
		return gcm.GyreConfig(d.NXg, d.NYg, 4, d)
	default:
		log.Fatalf("unknown model %q", model)
		return gcm.Config{}
	}
}

func netParams(name string) (netmodel.Params, error) {
	switch strings.ToLower(name) {
	case "fe", "fastethernet":
		return netmodel.FastEthernet(), nil
	case "ge", "gigabit":
		return netmodel.GigabitEthernet(), nil
	case "hpvm", "myrinet":
		return netmodel.MyrinetHPVM(), nil
	default:
		return netmodel.Params{}, fmt.Errorf("unknown network %q (want fe, ge or hpvm)", name)
	}
}
