// Command scaling extends the paper's analysis in the direction its
// §5.4 points: if Pfpp is well above the processor's compute rate,
// "straight-forward investments in faster or more processors are a
// viable route" — so how far does the 2.8125-degree ocean actually
// scale on the Arctic fabric?
//
// The study runs the same global problem over 1..1024 workers (strong
// scaling; 32 nodes exercises a three-level fat tree, 1,024 a
// five-level radix-4 tree — the fabric's architectural maximum) and,
// for each machine size, compares the simulated sustained rate against
// the performance model's prediction built from primitives measured at
// that size — eqs. (4)-(11) applied beyond the configurations the
// paper tabulates.
//
// Flags:
//
//	-steps N    timed model steps per point (default 3)
//	-max N      largest machine size to run (default 1024); points
//	            above it are skipped, so -max 32 reproduces the
//	            original E11 table quickly
//	-json PATH  also append the rows as JSON benchmark entries
//	            (events/sec, ns/op-style metrics) to PATH, for
//	            inclusion in the committed BENCH artifacts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hyades/internal/bench"
	"hyades/internal/gcm"
	"hyades/internal/gcm/tile"
	"hyades/internal/perfmodel"
	"hyades/internal/report"
	"hyades/internal/units"
)

type point struct {
	workers  int
	px, py   int
	nxg, nyg int
}

// The ladder of machine sizes.  The 2.8125-degree (128x64) ocean
// strong-scales to 512 workers — its 4x4-cell tiles there are the
// smallest the halo width admits, so 512 is that problem's hard
// decomposition ceiling, not a fabric limit.  The five-level radix-4
// tree's full 1,024 endpoints therefore run the next-finer
// 1.40625-degree (256x128) ocean, with 256- and 512-worker points on
// the same grid so the panel has its own strong-scaling baseline.
// Speedup and efficiency are always relative to the one-worker run of
// the same grid.
var points = []point{
	{1, 1, 1, 128, 64}, {4, 2, 2, 128, 64}, {8, 4, 2, 128, 64},
	{16, 4, 4, 128, 64}, {32, 8, 4, 128, 64}, {64, 8, 8, 128, 64},
	{128, 16, 8, 128, 64}, {256, 16, 16, 128, 64}, {512, 32, 16, 128, 64},
	{1, 1, 1, 256, 128}, {256, 16, 16, 256, 128}, {512, 32, 16, 256, 128},
	{1024, 32, 32, 256, 128},
}

// jsonRow mirrors cmd/benchjson's per-benchmark entry so scaling rows
// can ride in the same artifact format.
type jsonRow struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	steps := flag.Int("steps", 3, "timed steps per point")
	max := flag.Int("max", 1024, "largest worker count to run")
	jsonPath := flag.String("json", "", "append rows as JSON benchmark entries to this file")
	flag.Parse()

	t := report.NewTable("Strong scaling of the ocean isomorph on Arctic (one worker per node)",
		"grid", "workers", "time/step", "sustained MF/s", "speedup", "efficiency", "model MF/s", "comm %", "events/s (host)")
	base := map[int]float64{} // serial sustained rate, keyed by grid NXg
	var rows []jsonRow
	for _, pt := range points {
		if pt.workers > *max {
			continue
		}
		d := tile.Decomp{NXg: pt.nxg, NYg: pt.nyg, Px: pt.px, Py: pt.py, PeriodicX: true}
		cfg := gcm.CoarseOceanConfig(d)
		var sustained float64
		var perStep units.Time
		var commFrac float64
		var ni float64
		var eventsPerSec float64
		if pt.workers == 1 {
			m, elapsed, err := gcm.RunSerial(cfg, *steps)
			if err != nil {
				log.Fatal(err)
			}
			sustained = float64(m.C.PS+m.C.DS) / elapsed.Seconds() / 1e6
			perStep = elapsed / units.Time(*steps)
			ni = m.Solver.MeanIters()
		} else {
			wall0 := time.Now()
			res, err := gcm.RunParallel(pt.workers, 1, cfg, 1, *steps)
			if err != nil {
				log.Fatal(err)
			}
			wall := time.Since(wall0).Seconds()
			sustained = res.SustainedMFlops()
			perStep = res.PerStep()
			comm := res.ExchangeTime + res.GsumTime
			commFrac = 100 * float64(comm) / float64(comm+res.ComputeTime)
			ni = res.MeanNi
			eventsPerSec = float64(res.Events) / wall
		}
		if pt.workers == 1 {
			base[pt.nxg] = sustained
		}

		model := modelPrediction(pt.workers, d, ni)
		eff := 100 * sustained / (base[pt.nxg] * float64(pt.workers))
		t.Addf("%dx%d|%d|%v|%.0f|%.1fx|%.0f%%|%.0f|%.0f%%|%.2g",
			pt.nxg, pt.nyg, pt.workers, perStep, sustained, sustained/base[pt.nxg], eff, model, commFrac, eventsPerSec)
		rows = append(rows, jsonRow{
			Name:       fmt.Sprintf("ScalingOcean/%dx%d/%dworkers", pt.nxg, pt.nyg, pt.workers),
			Iterations: int64(*steps),
			Metrics: map[string]float64{
				"simulated_us_per_step": perStep.Micros(),
				"sustained_MFs":         sustained,
				"model_MFs":             model,
				"efficiency_pct":        eff,
				"comm_pct":              commFrac,
				"events_per_sec":        eventsPerSec,
			},
		})
	}
	t.Note = "model: eqs. (4)-(11) with primitives measured at each machine size and " +
		"this implementation's counted Nps/Nds; 32 workers route through a 3-level " +
		"fat tree, 1024 through the 5-level radix-4 maximum; speedup/efficiency are " +
		"relative to the serial run of the same grid (the 128x64 grid's halo caps " +
		"its decomposition at 512 tiles, so the 1,024-endpoint point runs 256x128); " +
		"events/s is host wall-clock event throughput of the whole run"
	fmt.Print(t)

	if *jsonPath != "" {
		writeJSON(*jsonPath, rows)
	}
}

// writeJSON appends the scaling rows to the artifact at path: if the
// file already holds a cmd/benchjson document the rows join its
// "benchmarks" array, otherwise a bare rows document is written.
func writeJSON(path string, rows []jsonRow) {
	var doc map[string]any
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			log.Fatalf("scaling: %s is not a JSON benchmark artifact: %v", path, err)
		}
	} else {
		doc = map[string]any{}
	}
	var existing []any
	if v, ok := doc["benchmarks"].([]any); ok {
		existing = v
	}
	for _, r := range rows {
		existing = append(existing, r)
	}
	doc["benchmarks"] = existing
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d scaling rows to %s\n", len(rows), path)
}

// modelPrediction evaluates the aggregate sustained rate the paper's
// performance model implies for the given machine size.
func modelPrediction(workers int, d tile.Decomp, ni float64) float64 {
	const npsOcean, ndsOcean = 283, 37 // measured from this implementation
	nxy := d.NXg * d.NYg / workers
	nxyz := nxy * 15
	ps := perfmodel.PS{Nps: npsOcean, Nxyz: nxyz, FpsMFlops: gcm.PaperFpsMFlops}
	ds := perfmodel.DS{Nds: ndsOcean, Nxy: nxy, FdsMFlops: gcm.PaperFdsMFlops}
	if workers == 1 {
		ps.Texchxyz, ds.Texchxy, ds.Tgsum = 0, 0, 0
	} else {
		r := bench.HyadesRunner{PPN: 1}
		var err error
		if ds.Tgsum, err = bench.Gsum(r, workers, 4); err != nil {
			log.Fatal(err)
		}
		if ds.Texchxy, err = bench.Exchange2(r, d, 2); err != nil {
			log.Fatal(err)
		}
		if ps.Texchxyz, err = bench.Exchange3(r, d, 15, 3, 1); err != nil {
			log.Fatal(err)
		}
	}
	e := perfmodel.Experiment{PS: ps, DS: ds, Nt: 1, Ni: ni}
	flops := ps.Nps*float64(nxyz) + ni*ds.Nds*float64(nxy)
	return flops * float64(workers) / e.Trun().Seconds() / 1e6
}
