// Command scaling extends the paper's analysis in the direction its
// §5.4 points: if Pfpp is well above the processor's compute rate,
// "straight-forward investments in faster or more processors are a
// viable route" — so how far does the 2.8125-degree ocean actually
// scale on the Arctic fabric?
//
// The study runs the same global problem over 1..32 workers (strong
// scaling; 32 nodes exercises a three-level fat tree) and, for each
// machine size, compares the simulated sustained rate against the
// performance model's prediction built from primitives measured at
// that size — eqs. (4)-(11) applied beyond the configurations the
// paper tabulates.
package main

import (
	"flag"
	"fmt"
	"log"

	"hyades/internal/bench"
	"hyades/internal/gcm"
	"hyades/internal/gcm/tile"
	"hyades/internal/perfmodel"
	"hyades/internal/report"
	"hyades/internal/units"
)

func main() {
	steps := flag.Int("steps", 3, "timed steps per point")
	flag.Parse()

	type point struct {
		workers int
		px, py  int
	}
	points := []point{{1, 1, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {32, 8, 4}}

	t := report.NewTable("Strong scaling of the 2.8125-degree ocean isomorph on Arctic (one worker per node)",
		"workers", "time/step", "sustained MF/s", "speedup", "model MF/s", "comm %")
	var base float64
	for _, pt := range points {
		d := tile.Decomp{NXg: 128, NYg: 64, Px: pt.px, Py: pt.py, PeriodicX: true}
		cfg := gcm.CoarseOceanConfig(d)
		var sustained float64
		var perStep units.Time
		var commFrac float64
		var ni float64
		if pt.workers == 1 {
			m, elapsed, err := gcm.RunSerial(cfg, *steps)
			if err != nil {
				log.Fatal(err)
			}
			sustained = float64(m.C.PS+m.C.DS) / elapsed.Seconds() / 1e6
			perStep = elapsed / units.Time(*steps)
			ni = m.Solver.MeanIters()
		} else {
			res, err := gcm.RunParallel(pt.workers, 1, cfg, 1, *steps)
			if err != nil {
				log.Fatal(err)
			}
			sustained = res.SustainedMFlops()
			perStep = res.PerStep()
			comm := res.ExchangeTime + res.GsumTime
			commFrac = 100 * float64(comm) / float64(comm+res.ComputeTime)
			ni = res.MeanNi
		}
		if pt.workers == 1 {
			base = sustained
		}

		model := modelPrediction(pt.workers, d, ni)
		t.Addf("%d|%v|%.0f|%.1fx|%.0f|%.0f%%",
			pt.workers, perStep, sustained, sustained/base, model, commFrac)
	}
	t.Note = "model: eqs. (4)-(11) with primitives measured at each machine size and " +
		"this implementation's counted Nps/Nds; 32 workers route through a 3-level fat tree"
	fmt.Print(t)
}

// modelPrediction evaluates the aggregate sustained rate the paper's
// performance model implies for the given machine size.
func modelPrediction(workers int, d tile.Decomp, ni float64) float64 {
	const npsOcean, ndsOcean = 283, 37 // measured from this implementation
	nxy := 128 * 64 / workers
	nxyz := nxy * 15
	ps := perfmodel.PS{Nps: npsOcean, Nxyz: nxyz, FpsMFlops: gcm.PaperFpsMFlops}
	ds := perfmodel.DS{Nds: ndsOcean, Nxy: nxy, FdsMFlops: gcm.PaperFdsMFlops}
	if workers == 1 {
		ps.Texchxyz, ds.Texchxy, ds.Tgsum = 0, 0, 0
	} else {
		r := bench.HyadesRunner{PPN: 1}
		var err error
		if ds.Tgsum, err = bench.Gsum(r, workers, 4); err != nil {
			log.Fatal(err)
		}
		if ds.Texchxy, err = bench.Exchange2(r, d, 2); err != nil {
			log.Fatal(err)
		}
		if ps.Texchxyz, err = bench.Exchange3(r, d, 15, 3, 1); err != nil {
			log.Fatal(err)
		}
	}
	e := perfmodel.Experiment{PS: ps, DS: ds, Nt: 1, Ni: ni}
	flops := ps.Nps*float64(nxyz) + ni*ds.Nds*float64(nxy)
	return flops * float64(workers) / e.Trun().Seconds() / 1e6
}
