// Command bandwidth regenerates Fig. 7 of the paper: perceived VI-mode
// transfer bandwidth as a function of block size on the simulated
// Hyades cluster, annotated with the paper's anchor points (56.8 MB/s
// at 1 KByte, 90% of the 110 MB/s peak at 9 KByte).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hyades/internal/bench"
	"hyades/internal/report"
	"hyades/internal/units"
)

func main() {
	plot := flag.Bool("plot", true, "print an ASCII rendition of the curve")
	flag.Parse()

	pts, err := bench.Fig7Curve(bench.HyadesRunner{PPN: 1})
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Figure 7: transfer bandwidth as a function of block size",
		"block size", "bandwidth (MB/s)")
	for _, p := range pts {
		t.Addf("%v|%.1f", units.Size(p.Bytes), p.Perceived.MBperSec())
	}
	t.Note = "paper anchors: ~56.8 MB/s at 1 KiB, >=90% of the 110 MB/s peak at 9 KiB"
	fmt.Print(t)

	if *plot {
		fmt.Println()
		peak := 0.0
		for _, p := range pts {
			if bw := p.Perceived.MBperSec(); bw > peak {
				peak = bw
			}
		}
		for _, p := range pts {
			bar := int(p.Perceived.MBperSec() / peak * 60)
			fmt.Printf("%9v |%s %.1f\n", units.Size(p.Bytes), strings.Repeat("#", bar), p.Perceived.MBperSec())
		}
	}
}
