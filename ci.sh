#!/usr/bin/env bash
# ci.sh — the repository's verification gate.
#
# Runs formatting, the standard vet suite, the project's own
# determinism analyzers (hyadeslint), a full build, and the tests under
# the race detector.  Everything is offline and stdlib-only.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== hyadeslint (determinism + communication contract)"
# The canonical findings gate, baseline-aware: findings recorded in
# lint/baseline.json (committed, currently empty) are suppressed, so
# only new findings fail.  The run is also on a wall-clock budget —
# the analyzer suite carries a whole-module points-to solve, and a
# pathological blowup should fail CI loudly, not slow every later
# stage quietly.  The binary is prebuilt so the budget measures
# analysis, not compilation; the measured time is archived in the
# bench artifact below.
go build -o /tmp/hyadeslint.ci ./cmd/hyadeslint
lint_budget_s="${HYADESLINT_BUDGET_S:-30}"
lint_start=$(date +%s%N)
/tmp/hyadeslint.ci -baseline lint/baseline.json ./...
lint_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
echo "hyadeslint full tree: ${lint_ms} ms (budget ${lint_budget_s} s)"
if [ "$lint_ms" -gt $(( lint_budget_s * 1000 )) ]; then
    echo "hyadeslint wall-clock budget exceeded: ${lint_ms} ms > ${lint_budget_s} s" >&2
    exit 1
fi

echo "== hyadeslint -fix fixed point"
# A clean tree must be a fixed point of the autofixer (no "would
# rewrite" lines on stderr).  Exit status 1 (findings) is judged by
# the baseline-aware gate above, not here; 2+ is a load error.
fixstatus=0
fixlog=$(go run ./cmd/hyadeslint -fix -n ./... 2>&1 >/dev/null) || fixstatus=$?
if [ "$fixstatus" -ge 2 ]; then
    echo "$fixlog" >&2
    exit 1
fi
if [ -n "$fixlog" ]; then
    echo "hyadeslint -fix would modify a clean tree:" >&2
    echo "$fixlog" >&2
    exit 1
fi

echo "== hotalloc budget ratchet"
# The committed lint/allocbudget.json is a ceiling on statically
# visible event-path allocation sites.  An over-budget package fails
# here with one line per unwaived site, each carrying its
# measured-vs-budget accounting.  After a deliberate optimization,
# regenerate with `go run ./cmd/hyadeslint -writebudget ./...` and
# commit the lowered file to lock it in.
if ! ratchet=$(go run ./cmd/hyadeslint -analyzers hotalloc ./...); then
    echo "$ratchet" >&2
    echo "allocation ratchet violated: measured sites exceed lint/allocbudget.json" >&2
    exit 1
fi

echo "== hyadeslint -sarif (artifact)"
sarif_out="${HYADESLINT_SARIF:-/tmp/hyadeslint.sarif}"
go run ./cmd/hyadeslint -sarif ./... > "$sarif_out"
echo "wrote $sarif_out"

echo "== go build"
go build ./...

echo "== go test -race -short"
go test -race -short ./...

echo "== chaos (fault injection + reliable delivery)"
# The chaos determinism test under the race detector, then a driver
# smoke run with a 1% packet-drop rate: it must exit cleanly and
# report a nonzero retransmit count (the reliable channel is working,
# not just lucky).
go test -race -run 'TestChaosRunIsDeterministic|TestPeerUnreachableSurfaces|TestCrashWithoutCheckpointFailsLoudly' .

echo "== determinism across worker counts (race)"
# The worker-pool determinism matrix under the race detector: digests,
# event counts and virtual clocks must be bit-identical for inline,
# single-worker and GOMAXPROCS pools, with and without fault injection
# — including the node-crash recovery matrix (two crashes exercising
# both dead-peer detection paths, digest equal to the fault-free run).
go test -race -run 'TestDeterminismAcrossWorkerCounts|TestChaosDeterminismAcrossWorkerCounts|TestNodeCrashRecoveryDeterministic' .
chaos_out=$(go run ./cmd/hyades -model gyre -nodes 2 -ppn 1 -steps 2 -warmup 1 -drop-rate 1e-2)
echo "$chaos_out" | tail -n 5
retx=$(echo "$chaos_out" | awk '/^retransmits/ {print $(NF-2)}')
retx=${retx:-0}
if [ "$retx" -eq 0 ]; then
    echo "chaos smoke: drop-rate 1e-2 produced zero retransmits" >&2
    exit 1
fi

echo "== node-failure smoke (crash, recover, bit-identical digest)"
# Lose a whole node mid-run with checkpointing on: the driver must
# survive a nonzero number of restarts and end with the same state
# digest as the fault-free run.  This is the survival contract on the
# CLI surface; the in-depth matrix ran under -race above.
crash_args=(-model gyre -nodes 4 -ppn 1 -steps 6 -warmup 0 -px 2 -py 2 -digest)
crash_out=$(go run ./cmd/hyades "${crash_args[@]}" \
    -node-outage '1:500000-501000' -checkpoint-every 2)
echo "$crash_out" | tail -n 6
restarts=$(echo "$crash_out" | awk '/^node restarts survived/ {print $NF}')
restarts=${restarts:-0}
if [ "$restarts" -eq 0 ]; then
    echo "node-failure smoke: staged crash produced zero restarts" >&2
    exit 1
fi
crash_digest=$(echo "$crash_out" | awk '/^state digest/ {print $NF}')
clean_digest=$(go run ./cmd/hyades "${crash_args[@]}" | awk '/^state digest/ {print $NF}')
if [ -z "$crash_digest" ] || [ "$crash_digest" != "$clean_digest" ]; then
    echo "node-failure smoke: recovered digest $crash_digest != fault-free digest $clean_digest" >&2
    exit 1
fi

echo "== figure9 long-run smoke (checkpoint plates + digest-stable resume)"
# The -years mode on a reduced grid: a run with periodic plates, then a
# -resume from the newest plate set re-integrating the tail.  The two
# must report the same state digest — the restart path is bit-exact or
# the 1000-year science run cannot be trusted across job boundaries.
fig_dir=$(mktemp -d)
fig_args=(-years 0.05 -checkpoint-every 0.02 -nx 32 -ny 16 -out "$fig_dir")
full_digest=$(go run ./cmd/figure9 "${fig_args[@]}" | awk '/^state digest/ {print $NF}')
plates=$(ls "$fig_dir"/plates/plate_step*_rank*.ck 2>/dev/null | wc -l)
if [ "$plates" -eq 0 ]; then
    echo "figure9 smoke: no checkpoint plates written" >&2
    exit 1
fi
resumed_digest=$(go run ./cmd/figure9 "${fig_args[@]}" -resume | awk '/^state digest/ {print $NF}')
if [ -z "$full_digest" ] || [ "$full_digest" != "$resumed_digest" ]; then
    echo "figure9 smoke: resumed digest $resumed_digest != full-run digest $full_digest" >&2
    exit 1
fi
rm -rf "$fig_dir"
echo "figure9 smoke: $plates plates, resume digest matches"

echo "== bench (hot-path benchmarks, artifact)"
# Short-benchtime run of the hot-path microbenchmarks, converted to a
# JSON artifact.  benchtime is kept tiny so the gate stays fast; the
# artifact records allocs/op and the simulated-time metrics plus the
# core count of the machine that produced them, giving future changes
# a perf trajectory to compare against.
# The hyadeslint wall-clock measurement rides along as a synthetic
# benchmark line, so the lint suite's cost has a committed trajectory
# too.
bench_out="${HYADES_BENCH_JSON:-BENCH_pr10.json}"
{
    # The hot-path microbenchmarks run long enough to amortize one-time
    # setup (cluster construction, freelist warm-up): at 1x their
    # allocs/op is all setup and the zero-alloc event path is invisible.
    go test -run '^$' -bench '^(BenchmarkExchange|BenchmarkGlobalSum)$' \
        -benchmem -benchtime 100x .
    # Scheduler throughput: ladder vs heap at three backlog depths.
    # Iterations are bounded so the 1e7-pending prefill dominates once,
    # not per-measurement, but high enough (200k ops is ~tens of ms)
    # that rung-refill spikes amortize instead of landing whole in a
    # tiny measurement window.
    go test -run '^$' -bench '^BenchmarkSchedule$' \
        -benchmem -benchtime 200000x .
    # The coupled step runs at a fixed 10x for the same reason as the
    # 100x hot path: at 1x its allocs/op is all cluster construction
    # and the zero-steady-state-alloc kernels are invisible.
    go test -run '^$' -bench '^BenchmarkCoupledStep$' \
        -benchmem -benchtime 10x .
    go test -run '^$' -bench '^(BenchmarkCheckpointWrite|BenchmarkCheckpointRestore|BenchmarkRecoveryOverhead)$' \
        -benchmem -benchtime 1x .
    printf 'BenchmarkHyadeslintFullTree 1 %d lint_wall_ms\n' "$lint_ms"
} | go run ./cmd/benchjson "gate run: 100x hot path, 200000x scheduler, 10x coupled step, 1x heavies" > "$bench_out"
echo "wrote $bench_out"

echo "== bench compare (soft gate vs previous committed artifact)"
# Diff the fresh artifact against the newest committed BENCH_pr*.json
# from an earlier PR.  Allocation regressions over 10% print loudly but
# do not fail the build: cross-PR artifacts were produced at different
# benchtimes, so the hard gate is the hotalloc ratchet above — this
# stage is the early-warning trajectory.  ns/op growth past 25% on a
# shared benchmark is flagged SLOW in the same table (soft, never
# failing: wall clock is host noise on shared machines).
prev=$(ls BENCH_pr*.json 2>/dev/null | grep -vx "$bench_out" | sort -V | tail -n 1 || true)
if [ -n "$prev" ]; then
    go run ./cmd/benchjson -compare "$prev" "$bench_out" ||
        echo "bench compare: allocs/op regression vs $prev (soft gate — investigate before merging)" >&2
else
    echo "no previous BENCH_pr*.json to compare against"
fi

echo "CI OK"
