#!/usr/bin/env bash
# ci.sh — the repository's verification gate.
#
# Runs formatting, the standard vet suite, the project's own
# determinism analyzers (hyadeslint), a full build, and the tests under
# the race detector.  Everything is offline and stdlib-only.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== hyadeslint (determinism + communication contract)"
# One pass with fixes in dry-run mode: findings fail the gate, and a
# clean tree must also be a fixed point of the autofixer (no "would
# rewrite" lines on stderr).
fixlog=$(go run ./cmd/hyadeslint -fix -n ./... 2>&1 >/dev/null) || {
    echo "$fixlog" >&2
    exit 1
}
if [ -n "$fixlog" ]; then
    echo "hyadeslint -fix would modify a clean tree:" >&2
    echo "$fixlog" >&2
    exit 1
fi

echo "== hyadeslint -sarif (artifact)"
sarif_out="${HYADESLINT_SARIF:-/tmp/hyadeslint.sarif}"
go run ./cmd/hyadeslint -sarif ./... > "$sarif_out"
echo "wrote $sarif_out"

echo "== go build"
go build ./...

echo "== go test -race -short"
go test -race -short ./...

echo "CI OK"
