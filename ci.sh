#!/usr/bin/env bash
# ci.sh — the repository's verification gate.
#
# Runs formatting, the standard vet suite, the project's own
# determinism analyzers (hyadeslint), a full build, and the tests under
# the race detector.  Everything is offline and stdlib-only.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== hyadeslint (determinism contract)"
go run ./cmd/hyadeslint ./...

echo "== go build"
go build ./...

echo "== go test -race -short"
go test -race -short ./...

echo "CI OK"
