// Package units defines the virtual-time, bandwidth and data-size types
// used throughout the Hyades cluster simulation.
//
// Virtual time is an integer count of picoseconds.  The picosecond grain is
// fine enough to represent every hardware constant in the paper exactly
// (the smallest is the 0.15 us Arctic router stage) while the int64 range
// still covers about 106 days of simulated time, far beyond the 183-minute
// production run analysed in Section 5.3.
package units

import (
	"fmt"
	"math"
)

// Time is a point in (or span of) virtual time, in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Never is a sentinel far beyond any reachable simulation time.
const Never Time = math.MaxInt64

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Minutes returns t expressed in minutes.
func (t Time) Minutes() float64 { return float64(t) / float64(Minute) }

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch abs := t.Abs(); {
	case abs < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case abs < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case abs < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case abs < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	case abs < Minute:
		return fmt.Sprintf("%.4gs", t.Seconds())
	default:
		return fmt.Sprintf("%.4gmin", t.Minutes())
	}
}

// Abs returns the magnitude of t.
func (t Time) Abs() Time {
	if t < 0 {
		return -t
	}
	return t
}

// Micros converts a floating-point microsecond count to a Time.
func Micros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// Nanos converts a floating-point nanosecond count to a Time.
func Nanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// Seconds converts a floating-point second count to a Time.
func Seconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Bandwidth is a data rate in bytes per second.
//
// The paper quotes all rates in decimal megabytes per second (e.g. the
// 150 MByte/sec Arctic link, the 110 MByte/sec peak VI payload rate), so
// MBps uses the decimal convention.
type Bandwidth float64

// MBps is one decimal megabyte (1e6 bytes) per second.
const MBps Bandwidth = 1e6

// Bps is one byte per second, Bandwidth's base grain — the named unit
// for making small literal rates explicit.
const Bps Bandwidth = 1

// Transfer returns the time needed to move n bytes at rate bw.
func (bw Bandwidth) Transfer(n int) Time {
	if n <= 0 {
		return 0
	}
	if bw <= 0 {
		return Never
	}
	return Time(math.Round(float64(n) / float64(bw) * float64(Second)))
}

// MBperSec reports the bandwidth in decimal MByte/sec.
func (bw Bandwidth) MBperSec() float64 { return float64(bw) / float64(MBps) }

// Rate computes the effective bandwidth of moving n bytes in d.
func Rate(n int, d Time) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(n) / d.Seconds())
}

// Size is a byte count.  It exists mostly for self-describing formatting
// in reports and benchmarks.
type Size int

// Common sizes.  KiB follows the binary convention used by the paper's
// Figure 7 x-axis (4, 8, ... 131072 bytes).
const (
	Byte Size = 1
	KiB  Size = 1024
	MiB  Size = 1024 * KiB
)

// String renders the size with an auto-selected unit.
func (s Size) String() string {
	switch {
	case s < KiB:
		return fmt.Sprintf("%dB", int(s))
	case s < MiB:
		return fmt.Sprintf("%.4gKiB", float64(s)/float64(KiB))
	default:
		return fmt.Sprintf("%.4gMiB", float64(s)/float64(MiB))
	}
}
