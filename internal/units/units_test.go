package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Microsecond != 1_000_000*Picosecond {
		t.Fatal("microsecond scale")
	}
	if got := (150 * Nanosecond).Micros(); got != 0.15 {
		t.Fatalf("150ns = %g us", got)
	}
	if got := (90 * Second).Minutes(); got != 1.5 {
		t.Fatalf("90s = %g min", got)
	}
	if got := Micros(8.6); got != 8600*Nanosecond {
		t.Fatalf("Micros(8.6) = %d ps", int64(got))
	}
	if got := Seconds(0.5); got != 500*Millisecond {
		t.Fatalf("Seconds(0.5) = %v", got)
	}
	if Nanos(0.5) != Time(500) {
		t.Fatalf("Nanos(0.5) = %v", Nanos(0.5))
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:            "500ps",
		150 * Nanosecond:            "150ns",
		Micros(8.6):                 "8.6us",
		3 * Millisecond:             "3ms",
		2 * Second:                  "2s",
		183 * Minute:                "183min",
		45*Second + 500*Millisecond: "45.5s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d ps -> %q, want %q", int64(in), got, want)
		}
	}
}

func TestBandwidthTransfer(t *testing.T) {
	bw := 110 * MBps
	if got := bw.Transfer(110_000_000); got != Second {
		t.Fatalf("110MB at 110MB/s = %v", got)
	}
	if got := bw.Transfer(0); got != 0 {
		t.Fatalf("0 bytes = %v", got)
	}
	if got := bw.Transfer(-5); got != 0 {
		t.Fatalf("negative bytes = %v", got)
	}
	if got := Bandwidth(0).Transfer(1); got != Never {
		t.Fatalf("zero bandwidth = %v", got)
	}
	if got := (150 * MBps).MBperSec(); got != 150 {
		t.Fatalf("MBperSec = %g", got)
	}
}

func TestRateInvertsTransfer(t *testing.T) {
	f := func(bytesRaw uint32, mbRaw uint8) bool {
		n := int(bytesRaw%100_000_000) + 1
		bw := Bandwidth(int(mbRaw)+1) * MBps
		d := bw.Transfer(n)
		back := Rate(n, d)
		return math.Abs(float64(back-bw))/float64(bw) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBpsGrain(t *testing.T) {
	if MBps != 1_000_000*Bps {
		t.Fatal("MBps must be one million base grains")
	}
	if got := (150 * Bps).Transfer(300); got != 2*Second {
		t.Fatalf("300B at 150B/s = %v", got)
	}
}

func TestRateDegenerate(t *testing.T) {
	if Rate(100, 0) != 0 {
		t.Fatal("rate over zero time")
	}
}

func TestSizeString(t *testing.T) {
	cases := map[Size]string{
		512:     "512B",
		KiB:     "1KiB",
		9 * KiB: "9KiB",
		2 * MiB: "2MiB",
		1536:    "1.5KiB",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d -> %q, want %q", int(in), got, want)
		}
	}
}

func TestAbs(t *testing.T) {
	if (-5*Second).Abs() != 5*Second || (5*Second).Abs() != 5*Second {
		t.Fatal("Abs broken")
	}
}
