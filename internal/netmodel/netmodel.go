// Package netmodel provides modelled commodity interconnects — Fast
// Ethernet, Gigabit Ethernet and Myrinet/HPVM — implementing the same
// comm.Endpoint interface as the Hyades library, so the unmodified GCM
// runs over each and the Pfpp comparison of the paper's Fig. 12 (and
// the HPVM discussion of §6) can be regenerated.
//
// Unlike the Arctic/StarT-X stack, which is simulated from published
// hardware constants, the paper gives no MPI-stack parameters for the
// Ethernet clusters — only the measured primitive costs (tgsum,
// texchxy, texchxyz).  Each model is therefore an analytic
// per-message cost law
//
//	t(message of b bytes) = PerMessage + b/Bandwidth (+ Latency in
//	flight)
//
// with the MPI-on-Ethernet exchange following the portable code path
// the paper describes: strided halo slabs travel as one message per
// contiguous run (MPI derived-datatype behaviour), which is what makes
// the Ethernet texchxyz two orders of magnitude worse than the wire
// time.  Calibrate fits (PerMessage, Bandwidth) to the paper's
// measured triple; see the tests for the residuals.
package netmodel

import (
	"fmt"
	"math"

	"hyades/internal/comm"
	"hyades/internal/des"
	"hyades/internal/units"
)

// Params is one modelled interconnect.
type Params struct {
	Name string

	// PerMessage is the software overhead charged to each side of
	// every message (MPI stack, interrupt, TCP in 1999).
	PerMessage units.Time
	// SmallMessage, when non-zero, replaces PerMessage for messages of
	// at most 16 bytes (the eager small-message path that reductions
	// ride; bulk halo rows see the full per-message cost).
	SmallMessage units.Time
	// Latency is the in-flight wire/switch latency.
	Latency units.Time
	// Bandwidth is the effective per-link data rate.
	Bandwidth units.Bandwidth
	// FrameOverhead is added to every message's wire size.
	FrameOverhead int

	// RowMessages selects the portable MPI path for strided slabs: one
	// message per contiguous run.  The low-overhead Myrinet/HPVM layer
	// packs instead (single message per slab).
	RowMessages bool
	// ElementMessages additionally splits narrow strided runs (at most
	// 32 bytes) into 8-byte element messages — the behaviour of the
	// era's TCP MPI stacks shipping non-contiguous derived datatypes
	// element-wise, which is what pushes the paper's Fast-Ethernet
	// texchxyz to a tenth of a second.
	ElementMessages bool
}

// FastEthernet returns the calibrated switched 100-Mb/s model.
func FastEthernet() Params {
	return Params{
		Name:            "Fast Ethernet",
		PerMessage:      48 * units.Microsecond,
		Latency:         16 * units.Microsecond,
		Bandwidth:       11 * units.MBps,
		FrameOverhead:   58,
		RowMessages:     true,
		ElementMessages: true,
	}
}

// GigabitEthernet returns the calibrated 1-Gb/s model; early GE NICs
// had *higher* per-message costs than Fast Ethernet, which is why the
// paper's GE global sum (1193 us) is slower than its FE one (942 us).
func GigabitEthernet() Params {
	return Params{
		Name:          "Gigabit Ethernet",
		PerMessage:    9 * units.Microsecond,
		Latency:       131 * units.Microsecond,
		Bandwidth:     65 * units.MBps,
		FrameOverhead: 58,
		RowMessages:   true,
	}
}

// MyrinetHPVM returns the HPVM-over-Myrinet model of §6: a 16-way
// barrier above 50 us and about 42 MB/s for 1-KByte transfers.
func MyrinetHPVM() Params {
	return Params{
		Name:          "Myrinet/HPVM",
		PerMessage:    5 * units.Microsecond,
		SmallMessage:  2500 * units.Nanosecond,
		Latency:       3500 * units.Nanosecond,
		Bandwidth:     65 * units.MBps,
		FrameOverhead: 8,
		RowMessages:   false, // Fast Messages pack small slabs
	}
}

// Cluster is a set of workers joined by the modelled interconnect.
type Cluster struct {
	Eng *des.Engine
	N   int
	Prm Params

	nics  []des.Resource // per-node transmit serialization
	boxes map[boxKey]*des.Mailbox[[]byte]
}

type boxKey struct{ src, dst int }

// New builds an n-worker modelled cluster.
func New(n int, prm Params) *Cluster {
	return &Cluster{
		Eng:   des.NewEngine(),
		N:     n,
		Prm:   prm,
		nics:  make([]des.Resource, n),
		boxes: make(map[boxKey]*des.Mailbox[[]byte]),
	}
}

func (c *Cluster) box(src, dst int) *des.Mailbox[[]byte] {
	k := boxKey{src, dst}
	mb, ok := c.boxes[k]
	if !ok {
		mb = des.NewMailbox[[]byte](c.Eng, "netmsg")
		c.boxes[k] = mb
	}
	return mb
}

// Start spawns worker processes.
func (c *Cluster) Start(body func(ep *Endpoint)) []*Endpoint {
	eps := make([]*Endpoint, c.N)
	for r := 0; r < c.N; r++ {
		ep := &Endpoint{c: c, rank: r}
		eps[r] = ep
		c.Eng.Spawn(fmt.Sprintf("net%d", r), func(p *des.Proc) {
			ep.proc = p
			body(ep)
		})
	}
	return eps
}

// Run drains the simulation.
func (c *Cluster) Run() error {
	c.Eng.Run()
	if n := c.Eng.Blocked(); n != 0 {
		return fmt.Errorf("netmodel: deadlock, %d workers blocked", n)
	}
	return nil
}

// Close releases worker goroutines.
func (c *Cluster) Close() { c.Eng.Close() }

// Endpoint implements comm.Endpoint over the message-cost model.
type Endpoint struct {
	c     *Cluster
	rank  int
	proc  *des.Proc
	stats comm.Stats
}

var _ comm.Endpoint = (*Endpoint)(nil)

// Rank implements comm.Endpoint.
func (ep *Endpoint) Rank() int { return ep.rank }

// N implements comm.Endpoint.
func (ep *Endpoint) N() int { return ep.c.N }

// Now implements comm.Endpoint.
func (ep *Endpoint) Now() units.Time { return ep.proc.Now() }

// Stats implements comm.Endpoint.
func (ep *Endpoint) Stats() *comm.Stats { return &ep.stats }

// Busy implements comm.Endpoint.
func (ep *Endpoint) Busy(d units.Time) {
	if d <= 0 {
		return
	}
	ep.proc.Delay(d)
	ep.stats.ComputeTime += d
}

// Exec implements comm.Endpoint.  The commodity-interconnect clusters
// attach no worker pool, so the phase runs inline with the same
// virtual footprint as Busy.
func (ep *Endpoint) Exec(d units.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	ep.proc.Exec(d, fn)
	ep.stats.ComputeTime += d
}

// msgCost returns the per-side software cost for a message size.
func (c *Cluster) msgCost(n int) units.Time {
	if n <= 16 && c.Prm.SmallMessage > 0 {
		return c.Prm.SmallMessage
	}
	return c.Prm.PerMessage
}

// sendMsg charges the sender and schedules delivery of one message.
func (ep *Endpoint) sendMsg(dst int, data []byte) {
	prm := ep.c.Prm
	ep.proc.Delay(ep.c.msgCost(len(data)))
	wire := len(data) + prm.FrameOverhead
	_, end := ep.c.nics[ep.rank].Claim(ep.proc.Now(), prm.Bandwidth.Transfer(wire))
	box := ep.c.box(ep.rank, dst)
	ep.c.Eng.ScheduleAt(end+prm.Latency, func() { box.Send(data) })
}

// recvMsg blocks for one message and charges the receiver.
func (ep *Endpoint) recvMsg(src int) []byte {
	data := ep.c.box(src, ep.rank).Recv(ep.proc)
	ep.proc.Delay(ep.c.msgCost(len(data)))
	return data
}

// grainFor returns the wire-message granularity for a slab under the
// model's strided-data policy: whole slab, per contiguous run, or per
// 8-byte element for narrow runs on element-wise stacks.
func (c *Cluster) grainFor(layout comm.Block, total int) int {
	if !c.Prm.RowMessages || layout.Rows <= 1 {
		return total
	}
	if c.Prm.ElementMessages && layout.RowBytes <= 32 {
		return 8
	}
	return layout.RowBytes
}

// messagesFor splits a slab into wire messages.
func (ep *Endpoint) messagesFor(send []byte, layout comm.Block) [][]byte {
	grain := ep.c.grainFor(layout, len(send))
	if grain >= len(send) {
		return [][]byte{send}
	}
	msgs := make([][]byte, 0, (len(send)+grain-1)/grain)
	for off := 0; off < len(send); off += grain {
		endOff := off + grain
		if endOff > len(send) {
			endOff = len(send)
		}
		msgs = append(msgs, send[off:endOff])
	}
	return msgs
}

// Exchange implements comm.Endpoint with the same pairwise ordering as
// the Hyades library: the lower rank transmits first, then the roles
// reverse.
func (ep *Endpoint) Exchange(peer int, send []byte, layout comm.Block) []byte {
	t0 := ep.Now()
	var recv []byte
	switch {
	case peer == ep.rank:
		recv = append([]byte(nil), send...)
	case ep.rank < peer:
		ep.transmit(peer, send, layout)
		recv = ep.receive(peer, len(send), layout)
	default:
		recv = ep.receive(peer, len(send), layout)
		ep.transmit(peer, send, layout)
	}
	ep.stats.Exchanges++
	ep.stats.BytesSent += int64(len(send))
	ep.stats.ExchangeTime += ep.Now() - t0
	return recv
}

func (ep *Endpoint) transmit(peer int, send []byte, layout comm.Block) {
	for _, m := range ep.messagesFor(send, layout) {
		ep.sendMsg(peer, m)
	}
}

func (ep *Endpoint) receive(peer, total int, layout comm.Block) []byte {
	// The receiver knows its own halo shape; message count mirrors the
	// sender's policy (symmetric slabs).
	grain := ep.c.grainFor(layout, total)
	n := 1
	if grain < total {
		n = (total + grain - 1) / grain
	}
	buf := make([]byte, 0, total)
	for i := 0; i < n; i++ {
		buf = append(buf, ep.recvMsg(peer)...)
	}
	return buf
}

// GlobalSum implements comm.Endpoint as an MPI-style binomial
// reduce-and-broadcast over 8-byte messages.
func (ep *Endpoint) GlobalSum(x float64) float64 {
	t0 := ep.Now()
	v := ep.allReduce(x)
	ep.stats.GlobalSums++
	ep.stats.GsumTime += ep.Now() - t0
	return v
}

// Barrier implements comm.Endpoint.
func (ep *Endpoint) Barrier() {
	t0 := ep.Now()
	ep.allReduce(0)
	ep.stats.BarrierTime += ep.Now() - t0
}

func (ep *Endpoint) allReduce(x float64) float64 {
	n := ep.c.N
	if n == 1 {
		return x
	}
	me := ep.rank
	sum := x
	enc := func(v float64) []byte {
		bits := math.Float64bits(v)
		var b [8]byte
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		return b[:]
	}
	dec := func(b []byte) float64 {
		var bits uint64
		for i := 0; i < 8; i++ {
			bits |= uint64(b[i]) << (8 * i)
		}
		return math.Float64frombits(bits)
	}
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			ep.sendMsg(me&^mask, enc(sum))
			break
		}
		if me|mask < n {
			sum += dec(ep.recvMsg(me | mask))
		}
	}
	highest := 1
	for highest < n {
		highest <<= 1
	}
	start := highest
	if me != 0 {
		low := me & -me
		sum = dec(ep.recvMsg(me &^ low))
		start = low
	}
	for mask := start >> 1; mask >= 1; mask >>= 1 {
		if me|mask < n && me&mask == 0 {
			ep.sendMsg(me|mask, enc(sum))
		}
	}
	return sum
}
