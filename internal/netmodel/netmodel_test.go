package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"hyades/internal/comm"
	"hyades/internal/units"
)

func run(t *testing.T, n int, prm Params, body func(ep *Endpoint)) {
	t.Helper()
	c := New(n, prm)
	defer c.Close()
	c.Start(body)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeSwapsData(t *testing.T) {
	for _, prm := range []Params{FastEthernet(), GigabitEthernet(), MyrinetHPVM()} {
		run(t, 2, prm, func(ep *Endpoint) {
			peer := 1 - ep.Rank()
			send := make([]byte, 300)
			for i := range send {
				send[i] = byte(ep.Rank()*100 + i%50)
			}
			got := ep.Exchange(peer, send, comm.Block{Rows: 10, RowBytes: 30})
			for i := range got {
				if got[i] != byte(peer*100+i%50) {
					t.Errorf("%s: byte %d = %d", prm.Name, i, got[i])
					return
				}
			}
		})
	}
}

func TestGlobalSumCorrectAnySize(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%13 + 1
		want := float64(n*(n+1)) / 2
		ok := true
		c := New(n, GigabitEthernet())
		defer c.Close()
		c.Start(func(ep *Endpoint) {
			if got := ep.GlobalSum(float64(ep.Rank() + 1)); math.Abs(got-want) > 1e-12 {
				ok = false
			}
		})
		if err := c.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageGrainPolicy(t *testing.T) {
	fe := New(2, FastEthernet())
	// Narrow strided rows split to 8-byte elements on FE.
	if g := fe.grainFor(comm.Block{Rows: 10, RowBytes: 24}, 240); g != 8 {
		t.Fatalf("FE narrow strided grain = %d, want 8", g)
	}
	// Wide contiguous runs stay whole rows.
	if g := fe.grainFor(comm.Block{Rows: 5, RowBytes: 912}, 4560); g != 912 {
		t.Fatalf("FE wide-run grain = %d, want 912", g)
	}
	// Contiguous slabs are one message.
	if g := fe.grainFor(comm.Block{Rows: 1, RowBytes: 4096}, 4096); g != 4096 {
		t.Fatalf("FE contiguous grain = %d", g)
	}
	// HPVM packs everything.
	my := New(2, MyrinetHPVM())
	if g := my.grainFor(comm.Block{Rows: 10, RowBytes: 24}, 240); g != 240 {
		t.Fatalf("HPVM grain = %d, want whole slab", g)
	}
}

func TestStridedCostsMoreThanPacked(t *testing.T) {
	elapsed := func(rows int) units.Time {
		var d units.Time
		run(t, 2, GigabitEthernet(), func(ep *Endpoint) {
			layout := comm.Block{Rows: rows, RowBytes: 2400 / rows}
			t0 := ep.Now()
			ep.Exchange(1-ep.Rank(), make([]byte, 2400), layout)
			if ep.Rank() == 0 {
				d = ep.Now() - t0
			}
		})
		return d
	}
	packed := elapsed(1)
	strided := elapsed(100)
	if strided <= 2*packed {
		t.Fatalf("100-row strided exchange (%v) should cost far more than packed (%v)", strided, packed)
	}
}

func TestSmallMessageFastPath(t *testing.T) {
	prm := MyrinetHPVM()
	if prm.SmallMessage >= prm.PerMessage {
		t.Skip("model has no fast path")
	}
	c := New(2, prm)
	if got := c.msgCost(8); got != prm.SmallMessage {
		t.Fatalf("8-byte message cost %v", got)
	}
	if got := c.msgCost(100); got != prm.PerMessage {
		t.Fatalf("100-byte message cost %v", got)
	}
}

func TestNICSerialization(t *testing.T) {
	// Two transfers from the same node share its NIC: back-to-back
	// sends to different peers serialize on the wire.
	prm := GigabitEthernet()
	var t1, t2 units.Time
	run(t, 3, prm, func(ep *Endpoint) {
		switch ep.Rank() {
		case 0:
			ep.sendMsg(1, make([]byte, 65000))
			ep.sendMsg(2, make([]byte, 65000))
		case 1:
			ep.recvMsg(0)
			t1 = ep.Now()
		case 2:
			ep.recvMsg(0)
			t2 = ep.Now()
		}
	})
	wire := prm.Bandwidth.Transfer(65000 + prm.FrameOverhead)
	if t2-t1 < wire/2 {
		t.Fatalf("second transfer arrived %v after the first; NIC not serializing (wire=%v)", t2-t1, wire)
	}
}

func TestDeadlockReported(t *testing.T) {
	c := New(2, FastEthernet())
	defer c.Close()
	c.Start(func(ep *Endpoint) {
		ep.recvMsg(1 - ep.Rank()) // both receive, nobody sends
	})
	if err := c.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestStatsAccounting(t *testing.T) {
	run(t, 2, GigabitEthernet(), func(ep *Endpoint) {
		ep.Busy(5 * units.Microsecond)
		ep.Exchange(1-ep.Rank(), make([]byte, 100), comm.Contiguous(100, true))
		ep.GlobalSum(1)
		s := ep.Stats()
		if s.ComputeTime != 5*units.Microsecond || s.Exchanges != 1 || s.GlobalSums != 1 {
			t.Errorf("stats: %+v", *s)
		}
		if s.ExchangeTime <= 0 || s.GsumTime <= 0 {
			t.Errorf("times not recorded: %+v", *s)
		}
	})
}
