package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestF2Indexing(t *testing.T) {
	f := NewF2(4, 3, 2)
	f.Set(-2, -2, 1)
	f.Set(5, 4, 2)
	f.Set(0, 0, 3)
	f.Set(3, 2, 4)
	if f.At(-2, -2) != 1 || f.At(5, 4) != 2 || f.At(0, 0) != 3 || f.At(3, 2) != 4 {
		t.Fatal("corner values lost")
	}
	f.Add(0, 0, 10)
	if f.At(0, 0) != 13 {
		t.Fatal("Add failed")
	}
}

func TestF3Indexing(t *testing.T) {
	f := NewF3(4, 3, 5, 1)
	n := 0.0
	for k := 0; k < 5; k++ {
		for j := -1; j < 4; j++ {
			for i := -1; i < 5; i++ {
				f.Set(i, j, k, n)
				n++
			}
		}
	}
	n = 0
	for k := 0; k < 5; k++ {
		for j := -1; j < 4; j++ {
			for i := -1; i < 5; i++ {
				if f.At(i, j, k) != n {
					t.Fatalf("At(%d,%d,%d) = %g, want %g", i, j, k, f.At(i, j, k), n)
				}
				n++
			}
		}
	}
}

func TestPackUnpackRoundTripF2(t *testing.T) {
	for _, s := range []Slab{
		{West, 1, false}, {East, 1, true}, {South, 2, false}, {North, 2, true},
	} {
		f := NewF2(6, 5, 2)
		rng := rand.New(rand.NewSource(1))
		for j := -2; j < 7; j++ {
			for i := -2; i < 8; i++ {
				f.Set(i, j, rng.Float64())
			}
		}
		g := NewF2(6, 5, 2)
		g.UnpackSlab(s, f.PackSlab(s))
		i0, i1, j0, j1 := s.bounds(6, 5, 2)
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				if g.At(i, j) != f.At(i, j) {
					t.Fatalf("slab %v cell (%d,%d) mismatch", s, i, j)
				}
			}
		}
	}
}

// Property: sending an interior edge into a matching halo reproduces
// the edge exactly, for any geometry.
func TestPackUnpackPropertyF3(t *testing.T) {
	f := func(nxR, nyR, nzR, wR uint8, seed int64) bool {
		nx := int(nxR)%6 + 3
		ny := int(nyR)%6 + 3
		nz := int(nzR)%4 + 1
		h := 3
		w := int(wR)%h + 1
		src := NewF3(nx, ny, nz, h)
		rng := rand.New(rand.NewSource(seed))
		for n, raw := 0, src.Raw(); n < len(raw); n++ {
			raw[n] = rng.NormFloat64()
		}
		dst := NewF3(nx, ny, nz, h)
		for _, side := range []Side{West, East, South, North} {
			edge := Slab{Side: side, Width: w}
			halo := Slab{Side: side.Opposite(), Width: w, Halo: true}
			dst.UnpackSlab(halo, src.PackSlab(edge))
			// The receive halo must equal the source edge cell-for-cell.
			ei0, ei1, ej0, ej1 := edge.bounds(nx, ny, h)
			hi0, _, hj0, _ := halo.bounds(nx, ny, h)
			for k := 0; k < nz; k++ {
				for dj := 0; dj < ej1-ej0; dj++ {
					for di := 0; di < ei1-ei0; di++ {
						if dst.At(hi0+di, hj0+dj, k) != src.At(ei0+di, ej0+dj, k) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabShapes(t *testing.T) {
	f3 := NewF3(32, 32, 5, 3)
	rows, rb := f3.SlabShape(Slab{Side: West, Width: 3})
	if rows != 32*5 || rb != 3*8 {
		t.Fatalf("west 3D slab = %d rows x %d B", rows, rb)
	}
	rows, rb = f3.SlabShape(Slab{Side: North, Width: 3})
	if rows != 5 || rb != 3*38*8 {
		t.Fatalf("north 3D slab = %d rows x %d B", rows, rb)
	}
	f2 := NewF2(32, 32, 1)
	rows, rb = f2.SlabShape(Slab{Side: East, Width: 1})
	if rows != 32 || rb != 8 {
		t.Fatalf("east 2D slab = %d rows x %d B", rows, rb)
	}
	rows, rb = f2.SlabShape(Slab{Side: South, Width: 1})
	if rows != 1 || rb != 34*8 {
		t.Fatalf("south 2D slab = %d rows x %d B", rows, rb)
	}
}

func TestSlabCornersCoveredByTwoPhase(t *testing.T) {
	// After a West/East exchange of interior edges followed by a
	// North/South exchange whose i-range spans the halo, the diagonal
	// corner halo must carry data that originated in the diagonal
	// neighbour's interior.  On a single field, simulate with wraps.
	f := NewF3(4, 4, 1, 2)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			f.Set(i, j, 0, float64(10*i+j))
		}
	}
	f.LocalWrap(true, 2)  // x-direction first
	f.LocalWrap(false, 2) // then y spans corners
	// Corner (-1,-1) should hold the wrapped value from (3,3).
	if got := f.At(-1, -1, 0); got != f.At(3, 3, 0) {
		t.Fatalf("corner halo = %g, want %g", got, f.At(3, 3, 0))
	}
	if got := f.At(5, 5, 0); got != f.At(1, 1, 0) {
		t.Fatalf("corner halo = %g, want %g", got, f.At(1, 1, 0))
	}
}

func TestLevelViews(t *testing.T) {
	f := NewF3(3, 3, 4, 1)
	f.Set(1, 1, 2, 42)
	l := f.Level(2)
	if l.At(1, 1) != 42 {
		t.Fatal("Level copy wrong")
	}
	l.Set(0, 0, 7)
	f.SetLevel(2, l)
	if f.At(0, 0, 2) != 7 {
		t.Fatal("SetLevel wrong")
	}
}

func TestCopySemantics(t *testing.T) {
	f := NewF2(3, 3, 1)
	f.Set(1, 1, 5)
	g := f.Copy()
	g.Set(1, 1, 9)
	if f.At(1, 1) != 5 {
		t.Fatal("Copy aliases storage")
	}
	f.CopyFrom(g)
	if f.At(1, 1) != 9 {
		t.Fatal("CopyFrom failed")
	}
}

func TestFill(t *testing.T) {
	f := NewF3(2, 2, 2, 1)
	f.Fill(3)
	if f.At(-1, -1, 0) != 3 || f.At(2, 2, 1) != 3 {
		t.Fatal("Fill missed halo")
	}
}
