// Package field provides the tile-local storage of the MIT GCM port:
// two- and three-dimensional arrays of cell values surrounded by a
// lateral halo ("overlap") region, as in Fig. 5 of the paper.
//
// Indexing follows the model convention: interior cells run over
// [0, NX) x [0, NY); halo cells extend the range to [-H, NX+H) etc.
// The vertical dimension of a 3-D field has no halo — the paper's
// decomposition is horizontal only ("the vertical dimension stays
// within a single node", Fig. 4).
//
// Storage is a single allocation in [k][j][i] order with i fastest,
// matching the Fortran kernel's column-innermost sweeps, so west/east
// halo slabs are strided (many short runs) while north/south slabs are
// contiguous per level — the distinction the communication library's
// cost model cares about.
package field

import (
	"encoding/binary"
	"fmt"
	"math"
)

// F2 is a two-dimensional field with halo.
type F2 struct {
	NX, NY, H int
	stride    int
	data      []float64
}

// NewF2 allocates a zero field.
func NewF2(nx, ny, halo int) *F2 {
	if nx < 1 || ny < 1 || halo < 0 {
		panic(fmt.Sprintf("field: bad F2 dims %dx%d halo %d", nx, ny, halo))
	}
	stride := nx + 2*halo
	return &F2{NX: nx, NY: ny, H: halo, stride: stride, data: make([]float64, stride*(ny+2*halo))}
}

// idx maps (i,j) in [-H, NX+H) x [-H, NY+H) to the flat offset.
func (f *F2) idx(i, j int) int { return (j+f.H)*f.stride + (i + f.H) }

// At returns the value at (i,j); halo indices are valid.
func (f *F2) At(i, j int) float64 { return f.data[f.idx(i, j)] }

// Set stores v at (i,j).
func (f *F2) Set(i, j int, v float64) { f.data[f.idx(i, j)] = v }

// Add increments (i,j) by v.
func (f *F2) Add(i, j int, v float64) { f.data[f.idx(i, j)] += v }

// Fill sets every element (halo included) to v.
func (f *F2) Fill(v float64) {
	for n := range f.data {
		f.data[n] = v
	}
}

// Copy duplicates the field.
func (f *F2) Copy() *F2 {
	g := NewF2(f.NX, f.NY, f.H)
	copy(g.data, f.data)
	return g
}

// CopyFrom copies src (same shape) into f.
func (f *F2) CopyFrom(src *F2) {
	if f.NX != src.NX || f.NY != src.NY || f.H != src.H {
		panic("field: CopyFrom shape mismatch")
	}
	copy(f.data, src.data)
}

// Raw exposes the backing slice for kernel sweeps.
func (f *F2) Raw() []float64 { return f.data }

// Stride returns the row length of the backing slice.
func (f *F2) Stride() int { return f.stride }

// Idx exposes the flat offset computation for kernel sweeps.
func (f *F2) Idx(i, j int) int { return f.idx(i, j) }

// Row returns the full backing row of j (halo included): element
// [i+H] is cell i for i in [-H, NX+H).  The slice has exactly
// Stride() elements so bounds checks hoist out of i-loops.
func (f *F2) Row(j int) []float64 {
	off := (j + f.H) * f.stride
	return f.data[off : off+f.stride : off+f.stride]
}

// F3 is a three-dimensional field with lateral halo.
type F3 struct {
	NX, NY, NZ, H int
	stride, plane int
	data          []float64
}

// NewF3 allocates a zero field.
func NewF3(nx, ny, nz, halo int) *F3 {
	if nx < 1 || ny < 1 || nz < 1 || halo < 0 {
		panic(fmt.Sprintf("field: bad F3 dims %dx%dx%d halo %d", nx, ny, nz, halo))
	}
	stride := nx + 2*halo
	plane := stride * (ny + 2*halo)
	return &F3{NX: nx, NY: ny, NZ: nz, H: halo, stride: stride, plane: plane, data: make([]float64, plane*nz)}
}

// idx maps (i,j,k); k has no halo.
func (f *F3) idx(i, j, k int) int { return k*f.plane + (j+f.H)*f.stride + (i + f.H) }

// At returns the value at (i,j,k).
func (f *F3) At(i, j, k int) float64 { return f.data[f.idx(i, j, k)] }

// Set stores v at (i,j,k).
func (f *F3) Set(i, j, k int, v float64) { f.data[f.idx(i, j, k)] = v }

// Add increments (i,j,k) by v.
func (f *F3) Add(i, j, k int, v float64) { f.data[f.idx(i, j, k)] += v }

// Fill sets every element to v.
func (f *F3) Fill(v float64) {
	for n := range f.data {
		f.data[n] = v
	}
}

// Copy duplicates the field.
func (f *F3) Copy() *F3 {
	g := NewF3(f.NX, f.NY, f.NZ, f.H)
	copy(g.data, f.data)
	return g
}

// CopyFrom copies src (same shape) into f.
func (f *F3) CopyFrom(src *F3) {
	if f.NX != src.NX || f.NY != src.NY || f.NZ != src.NZ || f.H != src.H {
		panic("field: CopyFrom shape mismatch")
	}
	copy(f.data, src.data)
}

// Raw exposes the backing slice for kernel sweeps.
func (f *F3) Raw() []float64 { return f.data }

// Stride returns the i-run length; Plane the level size.
func (f *F3) Stride() int { return f.stride }

// Plane returns the number of elements per level.
func (f *F3) Plane() int { return f.plane }

// Idx exposes the flat offset computation for kernel sweeps.
func (f *F3) Idx(i, j, k int) int { return f.idx(i, j, k) }

// Row returns the full backing row of (j,k) (lateral halo included):
// element [i+H] is cell (i,j,k) for i in [-H, NX+H).  The slice has
// exactly Stride() elements so bounds checks hoist out of i-loops.
func (f *F3) Row(j, k int) []float64 {
	off := k*f.plane + (j+f.H)*f.stride
	return f.data[off : off+f.stride : off+f.stride]
}

// Level returns an F2 view-copy of level k including halos.
func (f *F3) Level(k int) *F2 {
	g := NewF2(f.NX, f.NY, f.H)
	copy(g.data, f.data[k*f.plane:(k+1)*f.plane])
	return g
}

// LevelInto copies level k into an existing 2-D field (same lateral
// shape), the allocation-free counterpart of Level.
func (f *F3) LevelInto(k int, g *F2) {
	if g.NX != f.NX || g.NY != f.NY || g.H != f.H {
		panic("field: LevelInto shape mismatch")
	}
	copy(g.data, f.data[k*f.plane:(k+1)*f.plane])
}

// SetLevel copies a 2-D field (same lateral shape) into level k.
func (f *F3) SetLevel(k int, g *F2) {
	if g.NX != f.NX || g.NY != f.NY || g.H != f.H {
		panic("field: SetLevel shape mismatch")
	}
	copy(f.data[k*f.plane:(k+1)*f.plane], g.data)
}

// Side identifies a halo face.
type Side int

// The four lateral faces.
const (
	West Side = iota
	East
	South
	North
)

func (s Side) String() string {
	return [...]string{"west", "east", "south", "north"}[s]
}

// Opposite returns the facing side.
func (s Side) Opposite() Side { return [...]Side{East, West, North, South}[s] }

// Slab describes a packed halo region: the edge of width w cells on a
// side, either the interior edge (for sending) or the halo itself (for
// receiving).  For West/East slabs the full interior j-range [0, NY) is
// covered; for South/North slabs the i-range includes the halo corners
// [-H, NX+H), so a West/East-then-South/North exchange sequence fills
// the diagonal corners needed by wide-stencil overcomputation.
type Slab struct {
	Side  Side
	Width int
	Halo  bool // true: the halo region; false: the interior edge
}

// bounds returns the (i0,i1,j0,j1) half-open cell range of the slab on
// a field with the given dims.
func (s Slab) bounds(nx, ny, h int) (i0, i1, j0, j1 int) {
	switch s.Side {
	case West:
		j0, j1 = 0, ny
		if s.Halo {
			i0, i1 = -s.Width, 0
		} else {
			i0, i1 = 0, s.Width
		}
	case East:
		j0, j1 = 0, ny
		if s.Halo {
			i0, i1 = nx, nx+s.Width
		} else {
			i0, i1 = nx-s.Width, nx
		}
	case South:
		i0, i1 = -h, nx+h
		if s.Halo {
			j0, j1 = -s.Width, 0
		} else {
			j0, j1 = 0, s.Width
		}
	case North:
		i0, i1 = -h, nx+h
		if s.Halo {
			j0, j1 = ny, ny+s.Width
		} else {
			j0, j1 = ny-s.Width, ny
		}
	}
	return i0, i1, j0, j1
}

// SlabShape returns the number of contiguous runs and bytes per run of
// the slab on a 2-D field — the layout information the communication
// cost model consumes.
func (f *F2) SlabShape(s Slab) (rows, rowBytes int) {
	i0, i1, j0, j1 := s.bounds(f.NX, f.NY, f.H)
	return j1 - j0, (i1 - i0) * 8
}

// SlabShape returns the run structure of the slab on a 3-D field.
func (f *F3) SlabShape(s Slab) (rows, rowBytes int) {
	i0, i1, j0, j1 := s.bounds(f.NX, f.NY, f.H)
	if s.Side == South || s.Side == North {
		// Adjacent j-rows are contiguous within a level.
		return f.NZ, (j1 - j0) * (i1 - i0) * 8
	}
	return f.NZ * (j1 - j0), (i1 - i0) * 8
}

// PackSlab serializes the slab's values.
func (f *F2) PackSlab(s Slab) []byte { return f.PackSlabInto(s, nil) }

// PackSlabInto serializes the slab's values into buf's backing array,
// growing it only if the capacity is insufficient, and returns the
// filled buffer.  Steady-state halo exchange recycles received payloads
// through here so the pack path allocates nothing.
func (f *F2) PackSlabInto(s Slab, buf []byte) []byte {
	i0, i1, j0, j1 := s.bounds(f.NX, f.NY, f.H)
	if need := (i1 - i0) * (j1 - j0) * 8; cap(buf) < need {
		buf = make([]byte, 0, need)
	} else {
		buf = buf[:0]
	}
	for j := j0; j < j1; j++ {
		row := f.Row(j)
		for i := i0; i < i1; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(row[i+f.H]))
		}
	}
	return buf
}

// UnpackSlab deserializes into the slab's cells.
func (f *F2) UnpackSlab(s Slab, buf []byte) {
	i0, i1, j0, j1 := s.bounds(f.NX, f.NY, f.H)
	if want := (i1 - i0) * (j1 - j0) * 8; len(buf) != want {
		panic(fmt.Sprintf("field: slab %v size %d, want %d", s, len(buf), want))
	}
	n := 0
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			f.Set(i, j, math.Float64frombits(binary.LittleEndian.Uint64(buf[n:])))
			n += 8
		}
	}
}

// PackSlab serializes the slab's values over all levels.
func (f *F3) PackSlab(s Slab) []byte { return f.PackSlabInto(s, nil) }

// PackSlabInto serializes the slab's values over all levels into buf's
// backing array, growing it only if the capacity is insufficient.
func (f *F3) PackSlabInto(s Slab, buf []byte) []byte {
	i0, i1, j0, j1 := s.bounds(f.NX, f.NY, f.H)
	if need := (i1 - i0) * (j1 - j0) * f.NZ * 8; cap(buf) < need {
		buf = make([]byte, 0, need)
	} else {
		buf = buf[:0]
	}
	for k := 0; k < f.NZ; k++ {
		for j := j0; j < j1; j++ {
			row := f.Row(j, k)
			for i := i0; i < i1; i++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(row[i+f.H]))
			}
		}
	}
	return buf
}

// UnpackSlab deserializes into the slab's cells over all levels.
func (f *F3) UnpackSlab(s Slab, buf []byte) {
	i0, i1, j0, j1 := s.bounds(f.NX, f.NY, f.H)
	if want := (i1 - i0) * (j1 - j0) * f.NZ * 8; len(buf) != want {
		panic(fmt.Sprintf("field: slab %v size %d, want %d", s, len(buf), want))
	}
	n := 0
	for k := 0; k < f.NZ; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				f.Set(i, j, k, math.Float64frombits(binary.LittleEndian.Uint64(buf[n:])))
				n += 8
			}
		}
	}
}

// wrapCopy copies the `from` slab of one level-shaped region into the
// `to` slab: a direct float64 move with no byte serialization.  The
// slabs never overlap (interior edge vs halo), so plain copy order is
// safe.
func wrapCopy(data []float64, stride, h, nx, ny int, from, to Slab) {
	si0, si1, sj0, sj1 := from.bounds(nx, ny, h)
	di0, _, dj0, _ := to.bounds(nx, ny, h)
	w := si1 - si0
	for j := sj0; j < sj1; j++ {
		srow := data[(j+h)*stride:]
		drow := data[(j-sj0+dj0+h)*stride:]
		copy(drow[di0+h:di0+h+w], srow[si0+h:si0+h+w])
	}
}

// LocalWrap copies the interior edge straight into the opposite halo,
// for periodic directions collapsed onto a single tile.
func (f *F2) LocalWrap(axisX bool, width int) {
	if axisX {
		wrapCopy(f.data, f.stride, f.H, f.NX, f.NY, Slab{Side: East, Width: width}, Slab{Side: West, Width: width, Halo: true})
		wrapCopy(f.data, f.stride, f.H, f.NX, f.NY, Slab{Side: West, Width: width}, Slab{Side: East, Width: width, Halo: true})
		return
	}
	wrapCopy(f.data, f.stride, f.H, f.NX, f.NY, Slab{Side: North, Width: width}, Slab{Side: South, Width: width, Halo: true})
	wrapCopy(f.data, f.stride, f.H, f.NX, f.NY, Slab{Side: South, Width: width}, Slab{Side: North, Width: width, Halo: true})
}

// LocalWrap for 3-D fields.
func (f *F3) LocalWrap(axisX bool, width int) {
	for k := 0; k < f.NZ; k++ {
		level := f.data[k*f.plane : (k+1)*f.plane]
		if axisX {
			wrapCopy(level, f.stride, f.H, f.NX, f.NY, Slab{Side: East, Width: width}, Slab{Side: West, Width: width, Halo: true})
			wrapCopy(level, f.stride, f.H, f.NX, f.NY, Slab{Side: West, Width: width}, Slab{Side: East, Width: width, Halo: true})
			continue
		}
		wrapCopy(level, f.stride, f.H, f.NX, f.NY, Slab{Side: North, Width: width}, Slab{Side: South, Width: width, Halo: true})
		wrapCopy(level, f.stride, f.H, f.NX, f.NY, Slab{Side: South, Width: width}, Slab{Side: North, Width: width, Halo: true})
	}
}
