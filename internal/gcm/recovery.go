package gcm

import (
	"bytes"
	"fmt"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/des"
	"hyades/internal/units"
)

// Crash-surviving parallel runner.  Where runOn assumes every rank
// process lives from launch to completion, this runner assumes any
// node can die mid-step: each rank executes a loop of *attempts*, one
// per recovery generation.  An attempt passes the controller's
// rendezvous, builds a fresh model, restores the committed checkpoint
// (if one exists), and integrates step by step, depositing coordinated
// checkpoints into the controller's two-phase store.  A node crash
// unwinds every surviving rank with a *des.Interrupt; the rank falls
// back into the loop and retries from the next released generation.
// The survival contract — same digest as the fault-free run, bit for
// bit — holds because the checkpoint captures the complete prognostic
// state and the replay is the same deterministic integration.

// RecoveryResult summarizes the availability behaviour of a run.
type RecoveryResult struct {
	Enabled          bool
	Restarts         int        // node crashes survived
	RecoveryTime     units.Time // summed crash-to-release virtual time
	LostVirtual      units.Time // virtual integration time rolled back
	LostFlops        int64      // flops of abandoned attempts (work redone)
	Checkpoints      int        // committed checkpoint rounds
	CheckpointBytes  int64      // bytes across all committed rounds
	PendingDiscarded int        // checkpoint rounds spoiled by a crash
}

// runRecovery executes cfg under the comm layer's crash-recovery
// controller.  every is the checkpoint interval in steps (0 saves no
// checkpoints: a crash then fails loudly at restore time).
//
// Flop accounting differs from runOn: TotalPS/TotalDS count the
// timed-region work actually executed, including work that a rollback
// later repeated; the rolled-back portion is also reported separately
// as Recovery.LostFlops.  Elapsed spans the first warmup-boundary
// crossing to final completion on rank 0, so recovery stalls and
// replays lengthen it — that is the availability cost the report's
// recovery rows quantify.
func runRecovery(cl *cluster.Cluster, lib *comm.Hyades, cfg Config, warmup, steps, every int) (*Result, error) {
	n := cl.Processors()
	if cfg.Decomp.Tiles() != n {
		return nil, fmt.Errorf("gcm: %d tiles for %d workers", cfg.Decomp.Tiles(), n)
	}
	rec := lib.Recovery()
	total := warmup + steps
	// Rank-partitioned launcher-frame state (one slot per rank, as in
	// runOn) plus per-rank accumulators that survive incarnations.
	res := &Result{Models: make([]*Model, n), Steps: steps}
	eps := make([]comm.Endpoint, n)
	retired := make([]comm.Stats, n) // stats of dead incarnations' endpoints
	buildErrs := make([]error, n)
	t0s := make([]units.Time, n)
	t1s := make([]units.Time, n)
	t0set := make([]bool, n)
	ps := make([]int64, n) // timed-region flops executed (incl. replays)
	ds := make([]int64, n)
	lost := make([]int64, n) // flops of abandoned attempts

	// attempt runs one generation's worth of work for a rank.  It
	// returns true when the rank is finished (job complete or a fatal
	// error already reported); false means the attempt was unwound by
	// a crash interrupt and the rank must re-enter the rendezvous.
	// rank is threaded as a parameter into every writing closure so the
	// shareheap partition analysis certifies the rank-indexed stores.
	attempt := func(rank int, w *cluster.Worker, ep comm.Endpoint) (finished bool) {
		var m *Model
		var psBase, dsBase int64
		timed := false // this attempt has entered the timed region
		defer func(rank int) {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(*des.Interrupt); !ok {
				panic(r)
			}
			// Crash collateral: everything this attempt computed will
			// be recomputed after the rollback.
			if m != nil {
				lost[rank] += m.C.PS + m.C.DS
				if timed {
					ps[rank] += m.C.PS - psBase
					ds[rank] += m.C.DS - dsBase
				}
			}
			finished = false
		}(rank)
		if rec.Enter(w) {
			return true
		}
		var err error
		m, err = New(cfg, ep)
		if err != nil {
			buildErrs[rank] = err
			return true
		}
		res.Models[rank] = m
		if step, blob, ok := rec.Checkpoint(rank); ok {
			if err := m.Restore(bytes.NewReader(blob)); err != nil {
				cl.Eng.Fail(fmt.Errorf("gcm: rank %d restore from step-%d checkpoint: %w", rank, step, err))
				return true
			}
			// Reading the checkpoint back through memory costs what the
			// write did.
			ep.Busy(w.Node.Cfg.MemcpyBandwidth.Transfer(len(blob)))
			if m.Steps >= warmup {
				timed = true
				psBase, dsBase = m.C.PS, m.C.DS
			}
		} else if rec.Restarts() > 0 {
			cl.Eng.Fail(fmt.Errorf("gcm: node crash #%d with no surviving checkpoint: nothing to restore; run with a checkpoint interval (-checkpoint-every) to make crashes survivable", rec.Restarts()))
			return true
		}
		for m.Steps < total {
			if !timed && m.Steps >= warmup {
				// First crossing of the warmup boundary brackets the
				// timed region exactly as runOn does.
				ep.Barrier()
				if !t0set[rank] {
					t0set[rank] = true
					t0s[rank] = ep.Now()
				}
				timed = true
				psBase, dsBase = m.C.PS, m.C.DS
			}
			m.Run(1)
			if every > 0 && m.Steps%every == 0 && m.Steps > rec.CommittedStep() && m.Steps < total {
				var buf bytes.Buffer
				if err := m.Checkpoint(&buf); err != nil {
					cl.Eng.Fail(fmt.Errorf("gcm: rank %d checkpoint at step %d: %w", rank, m.Steps, err))
					return true
				}
				// Serializing the state is a memory-bandwidth copy on the
				// rank's processor; it is charged in virtual time so the
				// recovery-overhead rows price checkpointing honestly.
				ep.Busy(w.Node.Cfg.MemcpyBandwidth.Transfer(buf.Len()))
				rec.SaveCheckpoint(rank, m.Steps, buf.Bytes())
			}
		}
		ep.Barrier()
		t1s[rank] = ep.Now()
		if timed {
			ps[rank] += m.C.PS - psBase
			ds[rank] += m.C.DS - dsBase
		}
		rec.Done(w)
		return true
	}

	runRank := func(rank int, w *cluster.Worker) {
		// A respawned incarnation gets a fresh endpoint; bank the dead
		// one's accounting first.
		if prev := eps[rank]; prev != nil {
			s := prev.Stats()
			bank := retired[rank]
			bank.ComputeTime += s.ComputeTime
			bank.ExchangeTime += s.ExchangeTime
			bank.GsumTime += s.GsumTime
			retired[rank] = bank
		}
		ep := lib.Bind(w)
		eps[rank] = ep
		for !attempt(rank, w, ep) {
		}
	}
	cl.Start(func(w *cluster.Worker) { runRank(w.Rank, w) })
	if err := cl.Run(); err != nil {
		return nil, err
	}
	for _, e := range buildErrs {
		if e != nil {
			return nil, e
		}
	}
	for r := range ps {
		res.TotalPS += ps[r]
		res.TotalDS += ds[r]
	}
	res.Elapsed = t1s[0] - t0s[0]
	for r, ep := range eps {
		if ep == nil {
			continue
		}
		s := ep.Stats()
		res.ComputeTime += retired[r].ComputeTime + s.ComputeTime
		res.ExchangeTime += retired[r].ExchangeTime + s.ExchangeTime
		res.GsumTime += retired[r].GsumTime + s.GsumTime
	}
	var iters, solves int64
	for _, m := range res.Models {
		iters += m.Solver.TotalIters
		solves += m.Solver.Solves
	}
	if solves > 0 {
		res.MeanNi = float64(iters) / float64(solves)
	}
	st := rec.Stats()
	res.Recovery = RecoveryResult{
		Enabled:          true,
		Restarts:         st.Restarts,
		RecoveryTime:     st.RecoveryTime,
		LostVirtual:      st.LostVirtual,
		Checkpoints:      st.Checkpoints,
		CheckpointBytes:  st.CheckpointBytes,
		PendingDiscarded: st.PendingDiscarded,
	}
	for _, l := range lost {
		res.Recovery.LostFlops += l
	}
	return res, nil
}
