package gcm

import (
	"bytes"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm/physics"
)

// runCoupledSegment builds a fresh coupled cluster, optionally restores
// every worker from plates, runs extra steps, and returns one full
// Coupled.Checkpoint stream per rank.
func runCoupledSegment(t *testing.T, plates [][]byte, steps int) [][]byte {
	t.Helper()
	cfg := miniCoupled(2, 1)
	tiles := cfg.Ocean.Decomp.Tiles()
	nWorkers := 2 * tiles
	cl, err := cluster.New(cluster.DefaultConfig(nWorkers, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, nWorkers)
	var bodyErr error
	cl.Start(func(w *cluster.Worker) {
		c := cfg
		if w.Rank < tiles {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := NewCoupled(c, lib.Bind(w))
		if err != nil {
			bodyErr = err
			return
		}
		if plates != nil {
			if err := cp.Restore(bytes.NewReader(plates[w.Rank])); err != nil {
				bodyErr = err
				return
			}
		}
		cp.Run(steps)
		var buf bytes.Buffer
		if err := cp.Checkpoint(&buf); err != nil {
			bodyErr = err
			return
		}
		out[w.Rank] = buf.Bytes()
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if bodyErr != nil {
		t.Fatal(bodyErr)
	}
	return out
}

// TestCoupledCheckpointRestartBitExact pins the coupled restart
// contract figure9's -resume relies on: a run checkpointed at an
// arbitrary step — deliberately NOT a coupling boundary, so the
// atmosphere's SST estimate and the ocean's forcing fields are
// mid-interval state — and resumed in a fresh cluster reaches a state
// stream bit-identical to the uninterrupted run.
func TestCoupledCheckpointRestartBitExact(t *testing.T) {
	const n1, n2 = 7, 6 // CoupleEvery is 5: the split straddles a coupling exchange
	full := runCoupledSegment(t, nil, n1+n2)
	plates := runCoupledSegment(t, nil, n1)
	resumed := runCoupledSegment(t, plates, n2)
	for r := range full {
		if !bytes.Equal(full[r], resumed[r]) {
			t.Fatalf("rank %d: resumed state stream differs from uninterrupted run", r)
		}
	}
}
