package gcm

import (
	"encoding/binary"
	"fmt"
	"io"

	"hyades/internal/gcm/field"
)

// Coupled checkpointing: the tile checkpoint (Model.Checkpoint) plus
// the cross-component coupling state, so a coupled run restarts
// bit-for-bit from ANY step, not just coupling boundaries.  The extra
// state is exactly what the next couple() or AddTendencies reads
// before the coupler refreshes it: the atmosphere's current SST
// estimate (flux formulas read it before receiving the update), and
// the ocean's wind-stress/heating fields (applied every step between
// exchanges).

// coupledFlagHasField marks an optional field section as present.
const coupledFlagHasField = 1

// coupledFlagActive marks the ocean forcing as switched over from the
// climatological base to coupler-supplied fields.
const coupledFlagActive = 2

// Checkpoint writes the worker's full coupled state to w.
func (c *Coupled) Checkpoint(w io.Writer) error {
	if err := c.M.Checkpoint(w); err != nil {
		return err
	}
	var flags uint64
	if c.IsOcean {
		if c.oceanF.active {
			flags |= coupledFlagActive
		}
		flags |= coupledFlagHasField
		if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
			return fmt.Errorf("gcm: coupled checkpoint flags: %w", err)
		}
		for _, f := range []*field.F2{c.oceanF.TauX, c.oceanF.TauY, c.oceanF.Q} {
			if err := writeF2(w, f); err != nil {
				return fmt.Errorf("gcm: coupled checkpoint ocean forcing: %w", err)
			}
		}
		return nil
	}
	if c.phys != nil && c.phys.SST != nil {
		flags |= coupledFlagHasField
	}
	if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
		return fmt.Errorf("gcm: coupled checkpoint flags: %w", err)
	}
	if flags&coupledFlagHasField != 0 {
		if err := writeF2(w, c.phys.SST); err != nil {
			return fmt.Errorf("gcm: coupled checkpoint SST: %w", err)
		}
	}
	return nil
}

// Restore loads a stream written by Checkpoint on a worker of the same
// configuration, rank and component, replacing the coupled state in
// place.  The coupling cadence resumes from the restored step count.
func (c *Coupled) Restore(r io.Reader) error {
	if err := c.M.Restore(r); err != nil {
		return err
	}
	c.steps = c.M.Steps
	var flags uint64
	if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
		return fmt.Errorf("gcm: coupled checkpoint flags: %w", err)
	}
	if c.IsOcean {
		if flags&coupledFlagHasField == 0 {
			return fmt.Errorf("gcm: coupled checkpoint missing ocean forcing section")
		}
		c.oceanF.active = flags&coupledFlagActive != 0
		for _, f := range []*field.F2{c.oceanF.TauX, c.oceanF.TauY, c.oceanF.Q} {
			if err := readF2(r, f); err != nil {
				return fmt.Errorf("gcm: coupled restore ocean forcing: %w", err)
			}
		}
		return nil
	}
	if flags&coupledFlagHasField != 0 {
		if c.phys == nil {
			return fmt.Errorf("gcm: coupled checkpoint has SST but worker has no physics")
		}
		if c.phys.SST == nil {
			c.phys.SST = field.NewF2(c.M.G.NX, c.M.G.NY, 2)
		}
		if err := readF2(r, c.phys.SST); err != nil {
			return fmt.Errorf("gcm: coupled restore SST: %w", err)
		}
	}
	return nil
}
