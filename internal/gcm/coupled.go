package gcm

import (
	"encoding/binary"
	"fmt"
	"math"

	"hyades/internal/comm"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
)

// CoupledConfig describes a synchronous coupled ocean-atmosphere run
// (paper §5.1): the two isomorphs run concurrently, each on half of
// the cluster's workers, periodically exchanging boundary conditions.
// Both components must use the same lateral grid and decomposition so
// that tile r of the ocean pairs with tile r of the atmosphere.
type CoupledConfig struct {
	Ocean, Atmos Config
	// CoupleEvery is the number of model steps between boundary
	// exchanges.
	CoupleEvery int
	// Physics is the atmospheric physics package (receives the SST).
	Physics *physics.Physics
}

// Validate checks the pairing constraints.
func (c *CoupledConfig) Validate() error {
	if c.Ocean.Decomp != c.Atmos.Decomp {
		return fmt.Errorf("gcm: coupled components need identical decompositions")
	}
	if c.CoupleEvery < 1 {
		return fmt.Errorf("gcm: CoupleEvery = %d", c.CoupleEvery)
	}
	if c.Ocean.Kernel.Dt != c.Atmos.Kernel.Dt {
		return fmt.Errorf("gcm: synchronous coupling needs equal time steps")
	}
	if c.Physics == nil {
		return fmt.Errorf("gcm: coupled run needs an atmospheric physics package")
	}
	return nil
}

// DefaultCoupledConfig returns the paper's production configuration:
// the 2.8125-degree ocean and atmosphere isomorphs coupled once per
// model day.
func DefaultCoupledConfig(d tile.Decomp) CoupledConfig {
	oc := CoarseOceanConfig(d)
	at := CoarseAtmosphereConfig(d)
	ph := physics.New(physics.Default())
	at.Forcing = ph
	return CoupledConfig{
		Ocean:       oc,
		Atmos:       at,
		CoupleEvery: 213, // ~1 model day at dt = 405 s
		Physics:     ph,
	}
}

// CoupledOceanForcing carries the atmosphere-supplied surface boundary
// conditions into the ocean's tendencies, combined with the standalone
// wind-stress climatology before the first coupling exchange.
type CoupledOceanForcing struct {
	Base kernel.Forcing // pre-coupling climatological forcing (may be nil)

	// TauX/TauY are kinematic wind stresses (m^2/s^2) at cell centres;
	// Q is the surface heating rate (K/s) for the top level.  All have
	// halo >= 2 and are refreshed by the coupler.
	TauX, TauY, Q *field.F2
	active        bool
}

// AddTendencies implements kernel.Forcing.
func (f *CoupledOceanForcing) AddTendencies(g *grid.Local, s *kernel.State, p *kernel.Params, c *kernel.Counters) {
	if !f.active {
		if f.Base != nil {
			f.Base.AddTendencies(g, s, p, c)
		}
		return
	}
	m := kernel.Halo - 1
	dz0 := g.DZ[0]
	gu, gv, gth := s.GU(), s.GV(), s.GTh()
	for j := -m; j < g.NY+m; j++ {
		for i := -m; i < g.NX+m; i++ {
			if g.HFacW.At(i, j, 0) > 0 && i > -m {
				tau := 0.5 * (f.TauX.At(i-1, j) + f.TauX.At(i, j))
				gu.Add(i, j, 0, tau/(dz0*g.HFacW.At(i, j, 0)))
			}
			if g.HFacS.At(i, j, 0) > 0 && j > -m {
				tau := 0.5 * (f.TauY.At(i, j-1) + f.TauY.At(i, j))
				gv.Add(i, j, 0, tau/(dz0*g.HFacS.At(i, j, 0)))
			}
			if g.HFacC.At(i, j, 0) > 0 {
				gth.Add(i, j, 0, f.Q.At(i, j))
			}
		}
	}
	c.AddPS(int64((g.NY + 2*m) * (g.NX + 2*m) * 10))
}

// Coupled is one worker's half of a coupled simulation.
type Coupled struct {
	Cfg      CoupledConfig
	IsOcean  bool
	M        *Model
	PeerRank int // the paired tile's rank in the GLOBAL rank space

	// ep is the raw (global) endpoint used for the cross-component
	// boundary exchange; the Model inside runs on an offset endpoint
	// confined to its own component's worker group.
	ep comm.Endpoint

	oceanF *CoupledOceanForcing // ocean side
	phys   *physics.Physics     // atmosphere side
	steps  int

	// Per-coupling scratch: sst receives the surface level on the ocean
	// side; xspare recycles the received cross-component payload as the
	// next send buffer (same ownership argument as tile.Halo).
	sst    *field.F2
	xspare []byte
}

// NewCoupled builds the component model for the calling worker.  The
// first half of the ranks run the atmosphere, the second half the
// ocean, mirroring the paper's "each isomorph occupies half of the
// cluster".
func NewCoupled(cfg CoupledConfig, ep comm.Endpoint) (*Coupled, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tiles := cfg.Ocean.Decomp.Tiles()
	if ep.N() != 2*tiles {
		return nil, fmt.Errorf("gcm: coupled run needs %d workers, have %d", 2*tiles, ep.N())
	}
	c := &Coupled{Cfg: cfg, ep: ep}
	c.IsOcean = ep.Rank() >= tiles
	if c.IsOcean {
		c.PeerRank = ep.Rank() - tiles
		mcfg := cfg.Ocean
		nx, ny := mcfg.Decomp.TileSize()
		c.oceanF = &CoupledOceanForcing{
			Base: mcfg.Forcing,
			TauX: field.NewF2(nx, ny, 2),
			TauY: field.NewF2(nx, ny, 2),
			Q:    field.NewF2(nx, ny, 2),
		}
		mcfg.Forcing = c.oceanF
		m, err := newOffset(mcfg, ep, tiles)
		if err != nil {
			return nil, err
		}
		c.M = m
		return c, nil
	}
	c.PeerRank = ep.Rank() + tiles
	mcfg := cfg.Atmos
	c.phys = cfg.Physics
	m, err := newOffset(mcfg, ep, 0)
	if err != nil {
		return nil, err
	}
	c.M = m
	return c, nil
}

// newOffset builds a Model whose tile index is the worker rank minus
// the component's base rank, over the component's private worker group.
func newOffset(cfg Config, ep comm.Endpoint, base int) (*Model, error) {
	return New(cfg, &offsetEndpoint{Endpoint: ep, base: base, n: cfg.Decomp.Tiles()})
}

// offsetEndpoint presents a contiguous sub-range of ranks as a
// self-contained worker group, translating ranks for the tile layer.
// Global sums and barriers stay component-local by spanning only the
// group... which the underlying butterfly cannot do, so they are
// implemented pairwise via the component's rank-0 tree through
// Exchange.  For the coupled configurations used here the group is a
// contiguous block, and the communication costs remain representative.
type offsetEndpoint struct {
	comm.Endpoint
	base int
	n    int

	// spare recycles the 8-byte payload received by the previous
	// pairwise exchange as the next send buffer; a received payload is
	// exclusively ours, and the comm layer's sequence-number dup-drop
	// makes rewriting a retransmit-retained buffer safe.
	spare []byte
}

func (o *offsetEndpoint) Rank() int { return o.Endpoint.Rank() - o.base }
func (o *offsetEndpoint) N() int    { return o.n }

func (o *offsetEndpoint) Exchange(peer int, send []byte, layout comm.Block) []byte {
	return o.Endpoint.Exchange(peer+o.base, send, layout)
}

// encF64 serializes v little-endian into the recycled spare buffer (or
// a fresh one on the first call), transferring its ownership to the
// returned slice.
func (o *offsetEndpoint) encF64(v float64) []byte {
	b := o.spare
	o.spare = nil
	if cap(b) < 8 {
		b = make([]byte, 8)
	} else {
		b = b[:8]
	}
	bits := math.Float64bits(v)
	for i := range b {
		b[i] = byte(bits >> (8 * i))
	}
	return b
}

// decF64 deserializes a little-endian float64.
func decF64(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(bits)
}

// gsumExchange is Exchange plus payload recycling: the received 8-byte
// buffer becomes the next encF64 target.
func (o *offsetEndpoint) gsumExchange(peer int, v float64, layout comm.Block) []byte {
	got := o.Exchange(peer, o.encF64(v), layout)
	o.spare = got
	return got
}

// GlobalSum reduces over the component's worker group only, using a
// binomial tree of pairwise exchanges (8-byte payloads).
func (o *offsetEndpoint) GlobalSum(x float64) float64 {
	me := o.Rank()
	layout := comm.Block{Rows: 1, RowBytes: 8, Cached: true}
	sum := x
	// Reduce to group rank 0.
	for mask := 1; mask < o.n; mask <<= 1 {
		if me&mask != 0 {
			o.gsumExchange(me&^mask, sum, layout)
			break
		}
		if me|mask < o.n {
			sum += decF64(o.gsumExchange(me|mask, sum, layout))
		}
	}
	// Broadcast back down the same tree.
	highest := 1
	for highest < o.n {
		highest <<= 1
	}
	start := highest
	if me != 0 {
		low := me & -me
		sum = decF64(o.gsumExchange(me&^low, 0, layout))
		start = low
	}
	for mask := start >> 1; mask >= 1; mask >>= 1 {
		if me|mask < o.n && me&mask == 0 {
			o.gsumExchange(me|mask, sum, layout)
		}
	}
	return sum
}

func (o *offsetEndpoint) Barrier() { o.GlobalSum(0) }

// couple performs one boundary-condition exchange with the paired tile
// of the other component.
func (c *Coupled) couple() {
	nx, ny := c.M.G.NX, c.M.G.NY
	layout := comm.Block{Rows: 1, RowBytes: nx * ny * 8, Cached: false}
	if c.IsOcean {
		// Send SST (surface theta, level 0), receive (tauX, tauY, Q).
		if c.sst == nil {
			c.sst = field.NewF2(nx, ny, kernel.Halo)
		}
		c.M.S.Theta.LevelInto(0, c.sst)
		got := c.ep.Exchange(c.PeerRank, packF2Into(c.sst, nx, c.takeSpare()), layout)
		unpackInto(c.oceanF.TauX, got[:nx*ny*8], nx, ny)
		unpackInto(c.oceanF.TauY, got[nx*ny*8:2*nx*ny*8], nx, ny)
		unpackInto(c.oceanF.Q, got[2*nx*ny*8:], nx, ny)
		c.xspare = got
		c.M.Halo.Update2(c.oceanF.TauX, 2)
		c.M.Halo.Update2(c.oceanF.TauY, 2)
		c.M.Halo.Update2(c.oceanF.Q, 2)
		c.oceanF.active = true
		return
	}
	// Atmosphere: compute surface fluxes from the lowest level and the
	// current SST estimate, send them, receive the new SST.
	g, s := c.M.G, c.M.S
	k := g.NZ - 1
	p := c.phys.P
	buf := c.takeSpare()
	if cap(buf) < 3*nx*ny*8 {
		buf = make([]byte, 0, 3*nx*ny*8)
	} else {
		buf = buf[:0]
	}
	// tauX at centres.
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			u := 0.5 * (s.U.At(i, j, k) + s.U.At(i+1, j, k))
			v := 0.5 * (s.V.At(i, j, k) + s.V.At(i, j+1, k))
			speed := math.Hypot(u, v)
			buf = appendF64(buf, p.CDrag*speed*u*1e-3) // air/water density ratio
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			u := 0.5 * (s.U.At(i, j, k) + s.U.At(i+1, j, k))
			v := 0.5 * (s.V.At(i, j, k) + s.V.At(i, j+1, k))
			speed := math.Hypot(u, v)
			buf = appendF64(buf, p.CDrag*speed*v*1e-3)
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			sst := 15.0
			if c.phys.SST != nil {
				sst = c.phys.SST.At(i, j)
			}
			airT := s.Theta.At(i, j, k) - 273.15
			// Ocean surface heating (K/s): drives the SST towards the
			// overlying air temperature.
			buf = appendF64(buf, p.CHeat*(airT-sst)*10)
		}
	}
	got := c.ep.Exchange(c.PeerRank, buf, layout)
	if c.phys.SST == nil {
		c.phys.SST = field.NewF2(nx, ny, 2)
	}
	unpackInto(c.phys.SST, got, nx, ny)
	c.xspare = got
	c.M.Halo.Update2(c.phys.SST, 2)
}

// takeSpare transfers ownership of the recycled coupling payload.
func (c *Coupled) takeSpare() []byte {
	b := c.xspare
	c.xspare = nil
	return b
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func packF2Into(f *field.F2, nx int, buf []byte) []byte {
	return f.PackSlabInto(field.Slab{Side: field.West, Width: nx}, buf)
}

func unpackInto(dst *field.F2, buf []byte, nx, ny int) {
	dst.UnpackSlab(field.Slab{Side: field.West, Width: nx}, buf)
}

// Run advances the coupled component, exchanging boundary conditions
// every CoupleEvery steps (both components step in lock-step virtual
// time, so the exchanges rendezvous naturally).
func (c *Coupled) Run(steps int) {
	for i := 0; i < steps; i++ {
		if c.steps%c.Cfg.CoupleEvery == 0 {
			c.couple()
		}
		c.M.Step()
		c.steps++
	}
}
