package gcm

import (
	"math"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
)

// miniCoupled builds a small, fast coupled configuration.
func miniCoupled(px, py int) CoupledConfig {
	d := tile.Decomp{NXg: 16, NYg: 8, Px: px, Py: py, PeriodicX: true}
	cfg := DefaultCoupledConfig(d)
	cfg.Ocean.Grid.NX, cfg.Ocean.Grid.NY = 16, 8
	cfg.Ocean.Grid.NZ = 4
	cfg.Ocean.Grid.DZ = defaultDZ(4, 4000)
	cfg.Atmos.Grid.NX, cfg.Atmos.Grid.NY = 16, 8
	cfg.Ocean.FpsMFlops, cfg.Ocean.FdsMFlops = 0, 0
	cfg.Atmos.FpsMFlops, cfg.Atmos.FdsMFlops = 0, 0
	cfg.CoupleEvery = 5
	return cfg
}

func TestCoupledRunsAndExchangesBoundaries(t *testing.T) {
	cfg := miniCoupled(2, 1)
	nWorkers := 2 * cfg.Ocean.Decomp.Tiles()
	cl, err := cluster.New(cluster.DefaultConfig(nWorkers, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	coupled := make([]*Coupled, nWorkers)
	var buildErr error
	cl.Start(func(w *cluster.Worker) {
		// Each worker needs its own physics instance (per-tile SST).
		c := cfg
		if w.Rank < cfg.Ocean.Decomp.Tiles() {
			ph := physics.New(physics.Default())
			c.Atmos.Forcing = ph
			c.Physics = ph
		}
		cp, err := NewCoupled(c, lib.Bind(w))
		if err != nil {
			buildErr = err
			return
		}
		coupled[w.Rank] = cp
		cp.Run(12)
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	for r, cp := range coupled {
		if cp == nil {
			t.Fatalf("worker %d did not build", r)
		}
		ke := 0.0
		for k := 0; k < cp.M.G.NZ; k++ {
			for j := 0; j < cp.M.G.NY; j++ {
				for i := 0; i < cp.M.G.NX; i++ {
					u := cp.M.S.U.At(i, j, k)
					ke += u * u
				}
			}
		}
		if math.IsNaN(ke) {
			t.Fatalf("worker %d (%v) went NaN", r, cp.IsOcean)
		}
		if cp.IsOcean {
			if !cp.oceanF.active {
				t.Fatalf("ocean worker %d never received atmosphere fluxes", r)
			}
		} else if cp.phys.SST == nil {
			t.Fatalf("atmosphere worker %d never received an SST", r)
		}
	}
	// The received SST must reflect the ocean surface temperature (C
	// range), not the uninitialised zero field.
	for _, cp := range coupled {
		if cp.IsOcean {
			continue
		}
		var sum float64
		n := 0
		for j := 0; j < cp.M.G.NY; j++ {
			for i := 0; i < cp.M.G.NX; i++ {
				sum += cp.phys.SST.At(i, j)
				n++
			}
		}
		mean := sum / float64(n)
		if mean < -5 || mean > 40 {
			t.Fatalf("implausible mean SST %g C on the atmosphere side", mean)
		}
	}
}

func TestCoupledValidation(t *testing.T) {
	cfg := miniCoupled(2, 1)
	cfg.CoupleEvery = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("CoupleEvery=0 accepted")
	}
	cfg = miniCoupled(2, 1)
	cfg.Atmos.Kernel.Dt = 999
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched time steps accepted")
	}
	cfg = miniCoupled(2, 1)
	if _, err := NewCoupled(cfg, &comm.Serial{}); err == nil {
		t.Fatal("coupled run on one worker accepted")
	}
}

func TestOffsetEndpointGlobalSum(t *testing.T) {
	// Component-local sums must span only the component's workers.
	cfg := miniCoupled(2, 1)
	nWorkers := 2 * cfg.Ocean.Decomp.Tiles()
	cl, err := cluster.New(cluster.DefaultConfig(nWorkers, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	tiles := cfg.Ocean.Decomp.Tiles()
	cl.Start(func(w *cluster.Worker) {
		ep := lib.Bind(w)
		base := 0
		if w.Rank >= tiles {
			base = tiles
		}
		oe := &offsetEndpoint{Endpoint: ep, base: base, n: tiles}
		got := oe.GlobalSum(float64(oe.Rank() + 1))
		want := 0.0
		for r := 0; r < tiles; r++ {
			want += float64(r + 1)
		}
		if math.Abs(got-want) > 1e-12 {
			bad++
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d workers computed a wrong component-local sum", bad)
	}
}
