package solver

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hyades/internal/comm"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
	"hyades/internal/gcm/tile"
)

// Golden-checksum regression suite for the DS solver: fixtures recorded
// from the pre-flat-row sweeps pin BuildRHS, the operator, both
// preconditioners, full CG solves and the velocity correction
// bit-for-bit.  Regenerate (only for a deliberate numerics change) with:
//
//	go test ./internal/gcm/solver -run TestGoldenChecksums -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current solver")

func hashField(f interface{ Raw() []float64 }) string {
	h := sha256.New()
	var w [8]byte
	for _, v := range f.Raw() {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		h.Write(w[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenRig builds a serial solver over a 12x10 tile with topography:
// a coastal shelf, an island and shaved cells.
func goldenRig(t *testing.T) (*Solver, *grid.Local) {
	t.Helper()
	cfg := grid.Config{
		NX: 12, NY: 10, NZ: 3, DX: 1.1e4, DY: 1.4e4, Lat0: 38,
		DZ: []float64{120, 260, 520},
		DepthFrac: func(x, y float64) float64 {
			if x > 0.5 && x < 0.7 && y > 0.4 && y < 0.6 {
				return 0
			}
			return 0.3 + 0.7*x*(1-0.25*y)
		},
	}
	g, err := grid.NewLocal(cfg, 0, 0, 12, 10, kernel.Halo)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tile.NewHalo(&comm.Serial{}, tile.Decomp{NXg: 12, NYg: 10, Px: 1, Py: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(g, h, 1e-9, 500), g
}

// goldenRHS is a deterministic, roughly zero-mean right-hand side.
func goldenRHS(g *grid.Local) *field.F2 {
	b := field.NewF2(g.NX, g.NY, 1)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if g.Depth.At(i, j) == 0 {
				continue
			}
			b.Set(i, j, math.Sin(0.9*float64(i))*math.Cos(0.7*float64(j)))
		}
	}
	return b
}

func TestGoldenChecksums(t *testing.T) {
	got := map[string]string{}

	// BuildRHS from a deterministic provisional velocity state.
	{
		sv, g := goldenRig(t)
		s := kernel.NewState(g.NX, g.NY, g.NZ)
		for k := 0; k < g.NZ; k++ {
			for j := -kernel.Halo; j < g.NY+kernel.Halo; j++ {
				for i := -kernel.Halo; i < g.NX+kernel.Halo; i++ {
					s.U.Set(i, j, k, 0.03*math.Sin(0.5*float64(i)+0.3*float64(j)+0.2*float64(k)))
					s.V.Set(i, j, k, 0.02*math.Cos(0.4*float64(i)-0.6*float64(j)+0.1*float64(k)))
				}
			}
		}
		var c kernel.Counters
		rhs := sv.BuildRHS(s, 600, &c)
		got["buildrhs"] = hashField(rhs)
	}

	// The operator and both preconditioners on a deterministic input.
	{
		sv, g := goldenRig(t)
		p := goldenRHS(g)
		sv.H.Update2(p, 1)
		q := field.NewF2(g.NX, g.NY, 1)
		var c kernel.Counters
		sv.Apply(p, q, &c)
		got["apply"] = hashField(q)

		z := field.NewF2(g.NX, g.NY, 1)
		sv.Pre = PrecondSSOR
		sv.precondition(p, z, &c)
		got["precond/ssor"] = hashField(z)
		sv.Pre = PrecondJacobi
		sv.precondition(p, z, &c)
		got["precond/jacobi"] = hashField(z)
	}

	// Full CG solves under both preconditioners, then a warm-started
	// second solve (the production pattern: x carries the previous
	// step's pressure).
	for _, pre := range []struct {
		name string
		kind Precond
	}{{"ssor", PrecondSSOR}, {"jacobi", PrecondJacobi}} {
		sv, g := goldenRig(t)
		sv.Pre = pre.kind
		b := goldenRHS(g)
		x := field.NewF2(g.NX, g.NY, 1)
		var c kernel.Counters
		it1 := sv.Solve(x, b, &c)
		it2 := sv.Solve(x, b, &c) // warm start
		got["solve/"+pre.name] = hashField(x)
		got["solve/"+pre.name+"/iters"] = strconv.Itoa(it1) + "," + strconv.Itoa(it2)
	}

	// CorrectVelocities from a solved pressure.
	{
		sv, g := goldenRig(t)
		s := kernel.NewState(g.NX, g.NY, g.NZ)
		for k := 0; k < g.NZ; k++ {
			for j := -kernel.Halo; j < g.NY+kernel.Halo; j++ {
				for i := -kernel.Halo; i < g.NX+kernel.Halo; i++ {
					s.U.Set(i, j, k, 0.05*math.Sin(0.8*float64(i)+0.2*float64(j)))
					s.V.Set(i, j, k, 0.04*math.Cos(0.3*float64(i)+0.9*float64(j)))
				}
			}
		}
		b := goldenRHS(g)
		var c kernel.Counters
		sv.Solve(s.Ps, b, &c)
		CorrectVelocities(g, s, 600, &c)
		got["correct/u"] = hashField(s.U)
		got["correct/v"] = hashField(s.V)
		got["correct/ps"] = hashField(s.Ps)
	}

	checkGolden(t, filepath.Join("testdata", "golden.json"), got, *updateGolden)
}

func checkGolden(t *testing.T, path string, got map[string]string, update bool) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to record): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: fixture entry %q not produced by the test", path, k)
		} else if g != w {
			t.Errorf("%s: %q = %s, want %s (bit-exact regression)", path, k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new entry %q not in fixture (run -update after a deliberate change)", path, k)
		}
	}
}
