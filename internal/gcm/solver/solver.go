// Package solver implements the Diagnostic Step (DS) of the GCM
// algorithm (paper Fig. 6): the two-dimensional elliptic equation for
// the surface pressure,
//
//	div_h( H grad_h ps ) = div_h( U* ) / dt,
//
// solved with a preconditioned conjugate-gradient iteration as in
// Marshall et al. (1997).  Each iteration performs exactly two halo
// exchanges on 2-D fields and two global sums — the communication
// pattern whose costs (texchxy, tgsum) dominate the fine-grain DS phase
// in the paper's performance model (eqs. 7-10).
//
// The operator's transmissibilities use the face-integrated fluid
// depths of package grid, so the projection is exactly consistent with
// the finite-volume divergence: after the velocity correction the
// depth-integrated flow is non-divergent to solver tolerance.
package solver

import (
	"math"

	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
	"hyades/internal/gcm/reduce"
	"hyades/internal/gcm/tile"
)

// Precond selects the preconditioner.
type Precond int

// The available preconditioners.
const (
	// PrecondSSOR is the default: one symmetric Gauss-Seidel sweep over
	// the tile (block-Jacobi across tiles, so no halo traffic).  It
	// brings the iteration count of the production grid near the
	// paper's Ni ~ 60.
	PrecondSSOR Precond = iota
	// PrecondJacobi is plain diagonal scaling.
	PrecondJacobi
)

// Solver holds the operator and work arrays for one tile.
type Solver struct {
	G *grid.Local
	H *tile.Halo

	Tol     float64 // relative residual-norm reduction target
	MaxIter int
	Pre     Precond

	// tW/tS are the west/south face transmissibilities; diag is the
	// operator diagonal (also the Jacobi preconditioner).
	tW, tS, diag *field.F2
	r, z, p, q   *field.F2
	// rhs is the reusable right-hand-side buffer BuildRHS returns —
	// scratch, not state, so one allocation serves every step.
	rhs *field.F2

	// LastIters and LastResidual report the most recent solve.
	LastIters    int
	LastResidual float64
	// TotalIters accumulates across solves (mean Ni diagnostics).
	TotalIters int64
	Solves     int64

	// Pre-bound phase closures for the CG loop, created once so the
	// steady-state Solve path allocates nothing.  Their free variables
	// (the solve target, right-hand side, counters and the scalar CG
	// coefficients) are threaded through the fields below.
	sx, sb      *field.F2
	sc          *kernel.Counters
	alpha, beta float64
	fnInit      func()
	fnApplyP    func()
	fnAxpy      func()
	fnPUpd      func()

	// Per-row column-integral accumulators for BuildRHS.
	uw, ue, vs, vn []float64
}

// New builds the solver for a tile.
func New(g *grid.Local, h *tile.Halo, tol float64, maxIter int) *Solver {
	sv := &Solver{G: g, H: h, Tol: tol, MaxIter: maxIter}
	nx, ny := g.NX, g.NY
	sv.tW = field.NewF2(nx, ny, 1)
	sv.tS = field.NewF2(nx, ny, 1)
	sv.diag = field.NewF2(nx, ny, 1)
	sv.r = field.NewF2(nx, ny, 1)
	sv.z = field.NewF2(nx, ny, 1)
	sv.p = field.NewF2(nx, ny, 1)
	sv.q = field.NewF2(nx, ny, 1)
	sv.rhs = field.NewF2(nx, ny, 1)
	// Transmissibilities on faces [0..nx] x [0..ny] (one halo row).
	for j := -1; j <= ny; j++ {
		dx, dy := g.DXC(j), g.DYC(j)
		for i := -1; i <= nx; i++ {
			sv.tW.Set(i, j, g.DepthW.At(i, j)*dy/dx)
			sv.tS.Set(i, j, g.DepthS.At(i, j)*g.DXS(j)/dy)
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			d := sv.tW.At(i, j) + sv.tW.At(i+1, j) + sv.tS.At(i, j) + sv.tS.At(i, j+1)
			sv.diag.Set(i, j, d)
		}
	}
	sv.uw = make([]float64, nx)
	sv.ue = make([]float64, nx)
	sv.vs = make([]float64, nx)
	sv.vn = make([]float64, nx)
	sv.bindPhases()
	return sv
}

// bindPhases builds the CG loop's Exec closures once.  Each captures
// only sv; the per-solve operands arrive through the sx/sb/sc/alpha/
// beta fields.
func (sv *Solver) bindPhases() {
	sv.fnInit = func() {
		g, x, b, c := sv.G, sv.sx, sv.sb, sv.sc
		sv.Apply(x, sv.q, c)
		hb := b.H
		for j := 0; j < g.NY; j++ {
			dr := sv.diag.Row(j)
			rr := sv.r.Row(j)
			br := b.Row(j)
			qr := sv.q.Row(j)
			for i := 0; i < g.NX; i++ {
				if dr[i+1] == 0 {
					rr[i+1] = 0
					continue
				}
				rr[i+1] = br[i+hb] - qr[i+1]
			}
		}
		c.AddDS(int64(g.NX * g.NY))
		sv.precondition(sv.r, sv.z, c)
		sv.p.CopyFrom(sv.z)
	}
	sv.fnApplyP = func() { sv.Apply(sv.p, sv.q, sv.sc) }
	sv.fnAxpy = func() {
		g, x, c, alpha := sv.G, sv.sx, sv.sc, sv.alpha
		hx := x.H
		for j := 0; j < g.NY; j++ {
			xr := x.Row(j)
			pr := sv.p.Row(j)
			rr := sv.r.Row(j)
			qr := sv.q.Row(j)
			for i := 0; i < g.NX; i++ {
				xr[i+hx] += alpha * pr[i+1]
				rr[i+1] += -alpha * qr[i+1]
			}
		}
		c.AddDS(int64(g.NX*g.NY) * 4)
		sv.precondition(sv.r, sv.z, c)
	}
	sv.fnPUpd = func() {
		g, c, beta := sv.G, sv.sc, sv.beta
		for j := 0; j < g.NY; j++ {
			pr := sv.p.Row(j)
			zr := sv.z.Row(j)
			for i := 0; i < g.NX; i++ {
				pr[i+1] = zr[i+1] + beta*pr[i+1]
			}
		}
		c.AddDS(int64(g.NX*g.NY) * 2)
	}
}

// The *Ops helpers mirror each local routine's exact flop accounting;
// the parallel driver uses them to fix an offloaded segment's modeled
// duration at submission time (see exec).

// BuildRHSOps returns BuildRHS's flop count.
func BuildRHSOps(g *grid.Local) int64 {
	return int64(g.NX*g.NY) * int64(12*g.NZ+6)
}

// ApplyOps returns Apply's flop count.
func ApplyOps(g *grid.Local) int64 {
	return int64(g.NX*g.NY) * 12
}

// CorrectVelocitiesOps returns CorrectVelocities' flop count.
func CorrectVelocitiesOps(g *grid.Local) int64 {
	return int64(g.NZ*(g.NY+1)*(g.NX+1)) * 8
}

// precondOps returns the selected preconditioner's flop count.
func (sv *Solver) precondOps() int64 {
	if sv.Pre == PrecondJacobi {
		return int64(sv.G.NX * sv.G.NY)
	}
	return int64(sv.G.NX*sv.G.NY) * 10
}

// exec runs a local solver segment — pure per-tile compute of known
// flop count — off the DES baton through the endpoint's Exec, with the
// charge hooks suspended (the time is charged up front instead).
// Without a time converter (pure numerics runs) the segment runs
// inline under whatever hooks are installed.
func (sv *Solver) exec(c *kernel.Counters, flops int64, fn func()) {
	if c.TimeDS == nil {
		fn()
		return
	}
	ps, ds := c.SuspendCharges()
	sv.H.EP.Exec(c.TimeDS(flops), fn)
	c.RestoreCharges(ps, ds)
}

// BuildRHS computes div(U*)/dt from the provisional velocities into a
// reused scratch field (valid until the next BuildRHS call).  Land
// columns get zero.
func (sv *Solver) BuildRHS(s *kernel.State, dt float64, c *kernel.Counters) *field.F2 {
	g := sv.G
	b := sv.rhs
	b.Fill(0)
	hu := s.U.H
	for j := 0; j < g.NY; j++ {
		dy := g.DYC(j)
		uw, ue, vs, vn := sv.uw, sv.ue, sv.vs, sv.vn
		for i := 0; i < g.NX; i++ {
			uw[i], ue[i], vs[i], vn[i] = 0, 0, 0, 0
		}
		// Column integrals with the k-loop hoisted outward: each cell
		// still accumulates its terms in ascending-k order, so the sums
		// are bit-identical to the per-cell loop.  Dry columns are
		// overcomputed and discarded below.
		for k := 0; k < g.NZ; k++ {
			dz := g.DZ[k]
			ur := s.U.Row(j, k)
			hw := g.HFacW.Row(j, k)
			vr := s.V.Row(j, k)
			vrN := s.V.Row(j+1, k)
			hs := g.HFacS.Row(j, k)
			hsN := g.HFacS.Row(j+1, k)
			for i := 0; i < g.NX; i++ {
				uw[i] += ur[i+hu] * hw[i+hu] * dz
				ue[i] += ur[i+1+hu] * hw[i+1+hu] * dz
				vs[i] += vr[i+hu] * hs[i+hu] * dz
				vn[i] += vrN[i+hu] * hsN[i+hu] * dz
			}
		}
		br := b.Row(j)
		dp := sv.G.Depth.Row(j)
		hd := sv.G.Depth.H
		dxsN, dxs := g.DXS(j+1), g.DXS(j)
		for i := 0; i < g.NX; i++ {
			if dp[i+hd] == 0 {
				continue
			}
			br[i+1] = (dy*(ue[i]-uw[i]) + dxsN*vn[i] - dxs*vs[i]) / dt
		}
	}
	c.AddDS(int64(g.NX*g.NY) * int64(12*g.NZ+6))
	return b
}

// Apply computes q = A(p) on the interior; p's halo must be current.
// Exposed for verification against manufactured solutions.
func (sv *Solver) Apply(p, q *field.F2, c *kernel.Counters) {
	g := sv.G
	hp, hq := p.H, q.H
	for j := 0; j < g.NY; j++ {
		tw := sv.tW.Row(j)
		ts := sv.tS.Row(j)
		tsN := sv.tS.Row(j + 1)
		pS := p.Row(j - 1)
		pr := p.Row(j)
		pN := p.Row(j + 1)
		qr := q.Row(j)
		for i := 0; i < g.NX; i++ {
			pc := pr[i+hp]
			v := tw[i+1]*(pr[i-1+hp]-pc) +
				tw[i+2]*(pr[i+1+hp]-pc) +
				ts[i+1]*(pS[i+hp]-pc) +
				tsN[i+1]*(pN[i+hp]-pc)
			qr[i+hq] = v
		}
	}
	c.AddDS(int64(g.NX*g.NY) * 12)
}

// dot returns the global inner product of two fields over wet columns.
func (sv *Solver) dot(a, b *field.F2, c *kernel.Counters) float64 {
	g := sv.G
	local := reduce.Dot2(a, b)
	c.AddDS(int64(g.NX*g.NY) * 2)
	return sv.H.EP.GlobalSum(local)
}

// Solve runs preconditioned CG for A(x) = b, warm-starting from the
// incoming x (the previous step's pressure), and leaves the solution in
// x with a current halo.  It returns the iteration count.
func (sv *Solver) Solve(x, b *field.F2, c *kernel.Counters) int {
	g := sv.G
	sv.sx, sv.sb, sv.sc = x, b, c
	// r = b - A(x)
	sv.H.Update2(x, 1)
	sv.exec(c, ApplyOps(g)+int64(g.NX*g.NY)+sv.precondOps(), sv.fnInit)
	rz := sv.dot(sv.r, sv.z, c)
	rz0 := rz
	iters := 0
	for ; iters < sv.MaxIter; iters++ {
		if rz == 0 || math.Abs(rz) <= sv.Tol*sv.Tol*math.Abs(rz0) {
			break
		}
		// The paper's DS phase applies the exchange primitive to two
		// fields per iteration (§4): the search direction ahead of the
		// operator, and the residual ahead of the (stencil-capable)
		// preconditioner slot.
		sv.H.Update2(sv.p, 1)
		sv.H.Update2(sv.r, 1)
		sv.exec(c, ApplyOps(g), sv.fnApplyP)
		pq := sv.dot(sv.p, sv.q, c) // global sum 1
		if pq == 0 {
			break
		}
		sv.alpha = rz / pq
		sv.exec(c, int64(g.NX*g.NY)*4+sv.precondOps(), sv.fnAxpy)
		rzNew := sv.dot(sv.r, sv.z, c) // global sum 2
		sv.beta = rzNew / rz
		rz = rzNew
		sv.exec(c, int64(g.NX*g.NY)*2, sv.fnPUpd)
	}
	sv.H.Update2(x, 1)
	sv.sx, sv.sb, sv.sc = nil, nil, nil
	sv.LastIters = iters
	sv.LastResidual = math.Sqrt(math.Abs(rz))
	sv.TotalIters += int64(iters)
	sv.Solves++
	return iters
}

// precondition applies the selected preconditioner z = M^-1 r.
func (sv *Solver) precondition(r, z *field.F2, c *kernel.Counters) {
	g := sv.G
	hr, hz := r.H, z.H
	if sv.Pre == PrecondJacobi {
		for j := 0; j < g.NY; j++ {
			dr := sv.diag.Row(j)
			rr := r.Row(j)
			zr := z.Row(j)
			for i := 0; i < g.NX; i++ {
				d := dr[i+1]
				if d == 0 {
					zr[i+hz] = 0
					continue
				}
				zr[i+hz] = rr[i+hr] / d
			}
		}
		c.AddDS(int64(g.NX * g.NY))
		return
	}
	// Symmetric Gauss-Seidel sweep of the positive-definite mirror
	// operator D - L - U, with off-tile couplings dropped:
	// M = (D-L) D^-1 (D-U).  Forward solve, diagonal scale, backward
	// solve; z stays zero on land (d == 0).
	for j := 0; j < g.NY; j++ {
		dr := sv.diag.Row(j)
		tw := sv.tW.Row(j)
		ts := sv.tS.Row(j)
		rr := r.Row(j)
		zr := z.Row(j)
		var zS []float64
		if j > 0 {
			zS = z.Row(j - 1)
		}
		for i := 0; i < g.NX; i++ {
			d := dr[i+1]
			if d == 0 {
				zr[i+hz] = 0
				continue
			}
			v := rr[i+hr]
			if i > 0 {
				v += tw[i+1] * zr[i-1+hz]
			}
			if j > 0 {
				v += ts[i+1] * zS[i+hz]
			}
			zr[i+hz] = v / d
		}
	}
	for j := g.NY - 1; j >= 0; j-- {
		dr := sv.diag.Row(j)
		tw := sv.tW.Row(j)
		tsN := sv.tS.Row(j + 1)
		zr := z.Row(j)
		var zN []float64
		if j < g.NY-1 {
			zN = z.Row(j + 1)
		}
		for i := g.NX - 1; i >= 0; i-- {
			d := dr[i+1]
			if d == 0 {
				continue
			}
			v := 0.0
			if i < g.NX-1 {
				v += tw[i+2] * zr[i+1+hz]
			}
			if j < g.NY-1 {
				v += tsN[i+1] * zN[i+hz]
			}
			zr[i+hz] += v / d
		}
	}
	c.AddDS(int64(g.NX*g.NY) * 10)
}

// CorrectVelocities subtracts the surface-pressure gradient from the
// provisional velocities on all faces up to index n, completing the
// projection (paper eq. 1's grad ps term).  ps must have a current
// halo (Solve leaves it so).
func CorrectVelocities(g *grid.Local, s *kernel.State, dt float64, c *kernel.Counters) {
	h := s.U.H
	hp := s.Ps.H
	for k := 0; k < g.NZ; k++ {
		for j := 0; j <= g.NY; j++ {
			dx, dy := g.DXC(j), g.DYC(j)
			hw := g.HFacW.Row(j, k)
			hs := g.HFacS.Row(j, k)
			ur := s.U.Row(j, k)
			vr := s.V.Row(j, k)
			ps := s.Ps.Row(j)
			psS := s.Ps.Row(j - 1)
			for i := 0; i <= g.NX; i++ {
				if hw[i+h] > 0 {
					ur[i+h] += -dt * (ps[i+hp] - ps[i-1+hp]) / dx
				}
				if hs[i+h] > 0 {
					vr[i+h] += -dt * (ps[i+hp] - psS[i+hp]) / dy
				}
			}
		}
	}
	c.AddDS(int64(g.NZ*(g.NY+1)*(g.NX+1)) * 8)
}

// MeanIters returns the average CG iteration count per solve (the
// paper's Ni).
func (sv *Solver) MeanIters() float64 {
	if sv.Solves == 0 {
		return 0
	}
	return float64(sv.TotalIters) / float64(sv.Solves)
}
