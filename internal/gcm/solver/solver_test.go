package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyades/internal/comm"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
	"hyades/internal/gcm/tile"
)

// rig builds a serial solver over an nx x ny flat or ramped domain.
func rig(t *testing.T, nx, ny int, depthFrac func(x, y float64) float64) *Solver {
	t.Helper()
	cfg := grid.Config{
		NX: nx, NY: ny, NZ: 3, DX: 1e4, DY: 1.3e4, Lat0: 40,
		DZ: []float64{100, 150, 250}, DepthFrac: depthFrac,
	}
	g, err := grid.NewLocal(cfg, 0, 0, nx, ny, kernel.Halo)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tile.NewHalo(&comm.Serial{}, tile.Decomp{NXg: nx, NYg: ny, Px: 1, Py: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(g, h, 1e-10, 2000)
}

func TestOperatorSymmetry(t *testing.T) {
	// <Au, v> == <u, Av> over wet cells, for random fields — required
	// for CG convergence.
	sv := rig(t, 10, 8, func(x, y float64) float64 {
		if x > 0.4 && x < 0.6 && y < 0.5 {
			return 0 // a land block
		}
		return 0.4 + 0.6*x
	})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := field.NewF2(10, 8, 1)
		v := field.NewF2(10, 8, 1)
		for j := 0; j < 8; j++ {
			for i := 0; i < 10; i++ {
				u.Set(i, j, rng.NormFloat64())
				v.Set(i, j, rng.NormFloat64())
			}
		}
		sv.H.Update2(u, 1)
		sv.H.Update2(v, 1)
		au := field.NewF2(10, 8, 1)
		av := field.NewF2(10, 8, 1)
		var c kernel.Counters
		sv.Apply(u, au, &c)
		sv.Apply(v, av, &c)
		var uav, vau, scale float64
		for j := 0; j < 8; j++ {
			for i := 0; i < 10; i++ {
				uav += u.At(i, j) * av.At(i, j)
				vau += v.At(i, j) * au.At(i, j)
				scale += math.Abs(u.At(i, j) * av.At(i, j))
			}
		}
		return math.Abs(uav-vau) <= 1e-9*(scale+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorNullSpaceIsConstant(t *testing.T) {
	sv := rig(t, 8, 8, nil)
	u := field.NewF2(8, 8, 1)
	u.Fill(3.7)
	sv.H.Update2(u, 1)
	out := field.NewF2(8, 8, 1)
	var c kernel.Counters
	sv.Apply(u, out, &c)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			if math.Abs(out.At(i, j)) > 1e-9 {
				t.Fatalf("A(const) != 0 at (%d,%d): %g", i, j, out.At(i, j))
			}
		}
	}
}

func TestSolveRandomCompatibleRHS(t *testing.T) {
	// For any zero-mean RHS the solve must drive the residual down by
	// the requested factor.
	sv := rig(t, 12, 10, nil)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := field.NewF2(12, 10, 1)
		mean := 0.0
		for j := 0; j < 10; j++ {
			for i := 0; i < 12; i++ {
				v := rng.NormFloat64()
				b.Set(i, j, v)
				mean += v
			}
		}
		mean /= 120
		for j := 0; j < 10; j++ {
			for i := 0; i < 12; i++ {
				b.Add(i, j, -mean)
			}
		}
		x := field.NewF2(12, 10, 1)
		var c kernel.Counters
		iters := sv.Solve(x, b, &c)
		if iters == 0 || iters >= sv.MaxIter {
			return false
		}
		// Verify the residual directly.
		ax := field.NewF2(12, 10, 1)
		sv.Apply(x, ax, &c)
		var rr, bb float64
		for j := 0; j < 10; j++ {
			for i := 0; i < 12; i++ {
				d := b.At(i, j) - ax.At(i, j)
				rr += d * d
				bb += b.At(i, j) * b.At(i, j)
			}
		}
		return rr <= 1e-10*bb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecondPositiveAndSymmetricEffect(t *testing.T) {
	// SSOR must not break CG: identical solves with both
	// preconditioners reach the same solution (up to tolerance).
	mk := func(pre Precond) *field.F2 {
		sv := rig(t, 10, 10, nil)
		sv.Pre = pre
		b := field.NewF2(10, 10, 1)
		for j := 0; j < 10; j++ {
			for i := 0; i < 10; i++ {
				b.Set(i, j, math.Sin(float64(i+3*j)))
			}
		}
		// Remove the mean for compatibility.
		mean := 0.0
		for j := 0; j < 10; j++ {
			for i := 0; i < 10; i++ {
				mean += b.At(i, j)
			}
		}
		mean /= 100
		for j := 0; j < 10; j++ {
			for i := 0; i < 10; i++ {
				b.Add(i, j, -mean)
			}
		}
		x := field.NewF2(10, 10, 1)
		var c kernel.Counters
		sv.Solve(x, b, &c)
		return x
	}
	a := mk(PrecondSSOR)
	bf := mk(PrecondJacobi)
	// Solutions may differ by a constant (null space); compare after
	// removing means.
	meanA, meanB := 0.0, 0.0
	for j := 0; j < 10; j++ {
		for i := 0; i < 10; i++ {
			meanA += a.At(i, j)
			meanB += bf.At(i, j)
		}
	}
	meanA /= 100
	meanB /= 100
	for j := 0; j < 10; j++ {
		for i := 0; i < 10; i++ {
			d := (a.At(i, j) - meanA) - (bf.At(i, j) - meanB)
			if math.Abs(d) > 1e-6 {
				t.Fatalf("preconditioners disagree at (%d,%d) by %g", i, j, d)
			}
		}
	}
}

func TestSSORConvergesFaster(t *testing.T) {
	iters := func(pre Precond) int {
		sv := rig(t, 16, 16, nil)
		sv.Pre = pre
		sv.Tol = 1e-8
		b := field.NewF2(16, 16, 1)
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				b.Set(i, j, math.Sin(float64(i))*math.Cos(float64(j)))
			}
		}
		x := field.NewF2(16, 16, 1)
		var c kernel.Counters
		return sv.Solve(x, b, &c)
	}
	ssor, jac := iters(PrecondSSOR), iters(PrecondJacobi)
	t.Logf("iterations: SSOR=%d Jacobi=%d", ssor, jac)
	if ssor >= jac {
		t.Fatalf("SSOR (%d iters) not faster than Jacobi (%d)", ssor, jac)
	}
}

func TestLandStaysZero(t *testing.T) {
	sv := rig(t, 10, 10, func(x, y float64) float64 {
		if x < 0.3 {
			return 0
		}
		return 1
	})
	b := field.NewF2(10, 10, 1)
	for j := 0; j < 10; j++ {
		for i := 3; i < 10; i++ {
			b.Set(i, j, math.Cos(float64(i*j)))
		}
	}
	// Zero-mean over wet cells.
	mean, n := 0.0, 0
	for j := 0; j < 10; j++ {
		for i := 3; i < 10; i++ {
			mean += b.At(i, j)
			n++
		}
	}
	mean /= float64(n)
	for j := 0; j < 10; j++ {
		for i := 3; i < 10; i++ {
			b.Add(i, j, -mean)
		}
	}
	x := field.NewF2(10, 10, 1)
	var c kernel.Counters
	sv.Solve(x, b, &c)
	for j := 0; j < 10; j++ {
		for i := 0; i < 3; i++ {
			if x.At(i, j) != 0 {
				t.Fatalf("pressure on land at (%d,%d): %g", i, j, x.At(i, j))
			}
		}
	}
}

func TestMeanItersBookkeeping(t *testing.T) {
	sv := rig(t, 8, 8, nil)
	if sv.MeanIters() != 0 {
		t.Fatal("MeanIters before any solve")
	}
	b := field.NewF2(8, 8, 1)
	b.Set(1, 1, 1)
	b.Set(2, 2, -1)
	x := field.NewF2(8, 8, 1)
	var c kernel.Counters
	sv.Solve(x, b, &c)
	sv.Solve(x, b, &c)
	if sv.Solves != 2 || sv.MeanIters() <= 0 {
		t.Fatalf("bookkeeping: %d solves, mean %g", sv.Solves, sv.MeanIters())
	}
}
