package gcm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hyades/internal/gcm/field"
)

// Checkpointing: a tile's full prognostic state (including the
// Adams-Bashforth history, so a restart continues the integration
// bit-for-bit) serialized to a compact binary stream.  Long climate
// integrations are restart-driven in practice — the paper's century
// runs would span many job submissions even on a dedicated cluster.

// checkpointMagic identifies the stream format.
const checkpointMagic = 0x48594144 // "HYAD"

// checkpointVersion is bumped on incompatible layout changes.
const checkpointVersion = 1

// Checkpoint writes the tile's state to w.
func (m *Model) Checkpoint(w io.Writer) error {
	h := []uint64{
		checkpointMagic, checkpointVersion,
		uint64(m.Cfg.Grid.NX), uint64(m.Cfg.Grid.NY), uint64(m.Cfg.Grid.NZ),
		uint64(m.EP.Rank()), uint64(m.Steps), uint64(m.S.ABCursor()),
	}
	for _, v := range h {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("gcm: checkpoint header: %w", err)
		}
	}
	for _, sec := range m.checkpointSections() {
		if err := writeF3(w, sec.f); err != nil {
			return fmt.Errorf("gcm: checkpoint section %s: %w", sec.name, err)
		}
	}
	if err := writeF2(w, m.S.Ps); err != nil {
		return fmt.Errorf("gcm: checkpoint section Ps: %w", err)
	}
	return nil
}

// Restore loads a checkpoint written by a model with the same
// configuration and rank, replacing the state in place.
func (m *Model) Restore(r io.Reader) error {
	h := make([]uint64, 8)
	for i := range h {
		if err := binary.Read(r, binary.LittleEndian, &h[i]); err != nil {
			return fmt.Errorf("gcm: checkpoint header: %w", err)
		}
	}
	if h[0] != checkpointMagic {
		return fmt.Errorf("gcm: not a checkpoint stream")
	}
	if h[1] != checkpointVersion {
		return fmt.Errorf("gcm: checkpoint version %d, want %d", h[1], checkpointVersion)
	}
	if int(h[2]) != m.Cfg.Grid.NX || int(h[3]) != m.Cfg.Grid.NY || int(h[4]) != m.Cfg.Grid.NZ {
		return fmt.Errorf("gcm: checkpoint grid %dx%dx%d does not match model %dx%dx%d",
			h[2], h[3], h[4], m.Cfg.Grid.NX, m.Cfg.Grid.NY, m.Cfg.Grid.NZ)
	}
	if int(h[5]) != m.EP.Rank() {
		return fmt.Errorf("gcm: checkpoint for rank %d restored on rank %d", h[5], m.EP.Rank())
	}
	for _, sec := range m.checkpointSections() {
		if err := readF3(r, sec.f); err != nil {
			return fmt.Errorf("gcm: restore section %s: %w", sec.name, err)
		}
	}
	if err := readF2(r, m.S.Ps); err != nil {
		return fmt.Errorf("gcm: restore section Ps: %w", err)
	}
	m.Steps = int(h[6])
	m.S.SetABCursor(int(h[7]), m.Steps > 0)
	// Halos are not stored; bring them current so the next step sees a
	// consistent overlap region.  A header-validation error (including
	// the rank check) aborts the whole restart; ranks cannot diverge
	// into the exchange.
	//lint:allow commlock restore errors abort the run, ranks cannot diverge here
	m.exchangeState()
	return nil
}

// checkpointSection names one 3-D array of the stream so a read or
// write failure reports exactly which part of the state it lost.
type checkpointSection struct {
	name string
	f    *field.F3
}

// checkpointSections lists every 3-D array a bit-exact restart needs,
// in stream order.
func (m *Model) checkpointSections() []checkpointSection {
	s := m.S
	secs := []checkpointSection{
		{"U", s.U}, {"V", s.V}, {"W", s.W},
		{"Theta", s.Theta}, {"Salt", s.Salt}, {"Phy", s.Phy},
	}
	for i, f := range s.ABBuffers() {
		secs = append(secs, checkpointSection{fmt.Sprintf("AB%d", i), f})
	}
	return secs
}

func writeF3(w io.Writer, f *field.F3) error {
	return writeFloats(w, f.Raw())
}

func readF3(r io.Reader, f *field.F3) error {
	return readFloats(r, f.Raw())
}

func writeF2(w io.Writer, f *field.F2) error {
	return writeFloats(w, f.Raw())
}

func readF2(r io.Reader, f *field.F2) error {
	return readFloats(r, f.Raw())
}

func writeFloats(w io.Writer, data []float64) error {
	buf := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, data []float64) error {
	buf := make([]byte, 8*len(data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("gcm: checkpoint field: %w", err)
	}
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}
