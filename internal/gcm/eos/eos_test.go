package eos

import (
	"math"
	"testing"
	"testing/quick"

	"hyades/internal/gcm/grid"
)

func TestOceanBuoyancySigns(t *testing.T) {
	e := DefaultOcean()
	if b := e.Buoyancy(e.T0, e.S0, 0); b != 0 {
		t.Fatalf("reference state buoyancy = %g", b)
	}
	if b := e.Buoyancy(e.T0+5, e.S0, 0); b <= 0 {
		t.Fatal("warm water must be buoyant")
	}
	if b := e.Buoyancy(e.T0, e.S0+2, 0); b >= 0 {
		t.Fatal("salty water must be dense")
	}
}

func TestOceanLinearity(t *testing.T) {
	e := DefaultOcean()
	f := func(dt1, dt2, ds float64) bool {
		dt1, dt2, ds = math.Mod(dt1, 30), math.Mod(dt2, 30), math.Mod(ds, 5)
		b1 := e.Buoyancy(e.T0+dt1, e.S0+ds, 0)
		b2 := e.Buoyancy(e.T0+dt2, e.S0+ds, 0)
		bm := e.Buoyancy(e.T0+(dt1+dt2)/2, e.S0+ds, 0)
		return math.Abs((b1+b2)/2-bm) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOceanExpansionCoefficient(t *testing.T) {
	e := DefaultOcean()
	db := e.Buoyancy(e.T0+1, e.S0, 0) - e.Buoyancy(e.T0, e.S0, 0)
	if math.Abs(db-grid.Gravity*e.Alpha) > 1e-12 {
		t.Fatalf("db/dT = %g, want g*alpha = %g", db, grid.Gravity*e.Alpha)
	}
}

func TestAtmosphereBuoyancy(t *testing.T) {
	e := DefaultAtmosphere()
	if b := e.Buoyancy(e.Theta0, e.Q0, 0); b != 0 {
		t.Fatalf("reference buoyancy = %g", b)
	}
	if b := e.Buoyancy(e.Theta0+10, e.Q0, 0); b <= 0 {
		t.Fatal("warm air must rise")
	}
	// Virtual effect: moist air is buoyant at equal theta.
	if b := e.Buoyancy(e.Theta0, e.Q0+0.01, 0); b <= 0 {
		t.Fatal("moist air must be buoyant (virtual temperature)")
	}
	// 1 K of warmth ~ g/theta0 of buoyancy.
	db := e.Buoyancy(e.Theta0+1, e.Q0, 0)
	if math.Abs(db-grid.Gravity/e.Theta0) > 1e-12 {
		t.Fatalf("db/dtheta = %g", db)
	}
}

func TestFlopCountsPositive(t *testing.T) {
	if DefaultOcean().FlopsPerCell() <= 0 || DefaultAtmosphere().FlopsPerCell() <= 0 {
		t.Fatal("flop counts must be positive")
	}
}
