// Package eos provides the equations of state that close the GCM's
// thermodynamics (paper §3.1): buoyancy b as a function of the two
// tracer fields.
//
// The model exploits the isomorphism between the incompressible ocean
// and the compressible atmosphere (paper §3): the same kernel steps
// both fluids, and the only isomorph-specific physics is the buoyancy
// law — a linear seawater EOS for the ocean (tracers: potential
// temperature and salinity) and a dry/virtual potential-temperature law
// for the atmosphere (tracers: potential temperature and specific
// humidity, which reuses the salinity slot).
package eos

import "hyades/internal/gcm/grid"

// EOS maps the two tracer values of a cell to buoyancy (m/s^2),
// positive upward.
type EOS interface {
	// Buoyancy returns b given tracer1 (temperature-like) and tracer2
	// (salinity- or humidity-like) at level k.
	Buoyancy(t1, t2 float64, k int) float64
	// FlopsPerCell reports the arithmetic cost of one evaluation, for
	// the kernel's operation counting.
	FlopsPerCell() int
}

// LinearOcean is the linear seawater EOS
// b = g * (alpha*(theta - T0) - beta*(S - S0)).
type LinearOcean struct {
	Alpha float64 // thermal expansion (1/K)
	Beta  float64 // haline contraction (1/psu)
	T0    float64 // reference temperature (C)
	S0    float64 // reference salinity (psu)
}

// DefaultOcean returns standard coarse-model coefficients.
func DefaultOcean() LinearOcean {
	return LinearOcean{Alpha: 2e-4, Beta: 7.4e-4, T0: 10, S0: 35}
}

// Buoyancy implements EOS.
func (e LinearOcean) Buoyancy(theta, salt float64, k int) float64 {
	return grid.Gravity * (e.Alpha*(theta-e.T0) - e.Beta*(salt-e.S0))
}

// FlopsPerCell implements EOS (2 subs, 2 muls, 1 sub, 1 mul).
func (e LinearOcean) FlopsPerCell() int { return 6 }

// IdealAtmosphere is the potential-temperature buoyancy law
// b = g * ((theta - Theta0)/Theta0 + 0.61*(q - Q0)),
// with the virtual-temperature effect of moisture.
type IdealAtmosphere struct {
	Theta0 float64 // reference potential temperature (K)
	Q0     float64 // reference specific humidity (kg/kg)
}

// DefaultAtmosphere returns standard reference values.
func DefaultAtmosphere() IdealAtmosphere {
	return IdealAtmosphere{Theta0: 290, Q0: 0}
}

// Buoyancy implements EOS.
func (e IdealAtmosphere) Buoyancy(theta, q float64, k int) float64 {
	return grid.Gravity * ((theta-e.Theta0)/e.Theta0 + 0.61*(q-e.Q0))
}

// FlopsPerCell implements EOS.
func (e IdealAtmosphere) FlopsPerCell() int { return 6 }
