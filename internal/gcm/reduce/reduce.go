// Package reduce owns the canonical accumulation order for the
// floating-point reductions that feed the model's global sums.
//
// Floating-point addition is not associative, so the order of a local
// accumulation is part of the answer: reordering a loop nest around a
// `sum +=` silently changes the bits that go into GlobalSum, and with
// them every digest the determinism regression test pins.  Centralising
// the order here means a refactor of model code cannot reorder a
// reduction without editing this package — which the redorder analyzer
// (internal/lint) enforces by flagging manual accumulation loops in any
// function that calls GlobalSum.
//
// The canonical order is storage order: i fastest, then j, then k —
// exactly the nesting the original hand-written loops used, so routing
// through these helpers is bit-identical to the code they replaced.
package reduce

import "hyades/internal/gcm/field"

// Over2 sums term(i, j) over the interior [0, nx) x [0, ny) in
// canonical order: j outer, i inner.
func Over2(nx, ny int, term func(i, j int) float64) float64 {
	s := 0.0
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			s += term(i, j)
		}
	}
	return s
}

// Over3 sums term(i, j, k) over [0, nx) x [0, ny) x [0, nz) in
// canonical order: k outer, then j, then i.
func Over3(nx, ny, nz int, term func(i, j, k int) float64) float64 {
	s := 0.0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				s += term(i, j, k)
			}
		}
	}
	return s
}

// Dot2 returns the interior inner product of two same-shape fields in
// canonical order.
func Dot2(a, b *field.F2) float64 {
	if a.NX != b.NX || a.NY != b.NY {
		panic("reduce: Dot2 shape mismatch")
	}
	s := 0.0
	for j := 0; j < a.NY; j++ {
		for i := 0; i < a.NX; i++ {
			s += a.At(i, j) * b.At(i, j)
		}
	}
	return s
}

// Slice sums xs left to right.
func Slice(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
