package reduce

import (
	"testing"

	"hyades/internal/gcm/field"
)

// TestCanonicalOrder pins the exact addition order: the helpers must be
// bit-identical to the hand-written nests they replaced (i fastest,
// then j, then k), not merely close.
func TestCanonicalOrder(t *testing.T) {
	term2 := func(i, j int) float64 { return 1.0 / float64(1+i+7*j) }
	want2 := 0.0
	for j := 0; j < 5; j++ {
		for i := 0; i < 4; i++ {
			want2 += term2(i, j)
		}
	}
	if got := Over2(4, 5, term2); got != want2 {
		t.Errorf("Over2 = %x, want %x", got, want2)
	}

	term3 := func(i, j, k int) float64 { return 1.0 / float64(1+i+7*j+31*k) }
	want3 := 0.0
	for k := 0; k < 3; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 4; i++ {
				want3 += term3(i, j, k)
			}
		}
	}
	if got := Over3(4, 5, 3, term3); got != want3 {
		t.Errorf("Over3 = %x, want %x", got, want3)
	}
}

func TestDot2(t *testing.T) {
	a := field.NewF2(3, 2, 1)
	b := field.NewF2(3, 2, 1)
	want := 0.0
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			a.Set(i, j, float64(1+i)*0.1)
			b.Set(i, j, float64(1+j)*0.3)
			want += a.At(i, j) * b.At(i, j)
		}
	}
	// Halo cells must not contribute.
	a.Set(-1, -1, 999)
	b.Set(-1, -1, 999)
	if got := Dot2(a, b); got != want {
		t.Errorf("Dot2 = %x, want %x", got, want)
	}

	defer func() {
		if recover() == nil {
			t.Error("Dot2 did not panic on shape mismatch")
		}
	}()
	Dot2(a, field.NewF2(2, 2, 1))
}

func TestSlice(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, -0.05}
	want := ((0.1 + 0.2) + 0.3) + -0.05
	if got := Slice(xs); got != want {
		t.Errorf("Slice = %x, want %x", got, want)
	}
	if Slice(nil) != 0 {
		t.Error("Slice(nil) != 0")
	}
}
