package gcm

import (
	"fmt"

	"hyades/internal/arctic"
	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/fault"
	"hyades/internal/gcm/solver"
	"hyades/internal/netmodel"
	"hyades/internal/units"
)

// Result summarizes a timed parallel run.
type Result struct {
	Models  []*Model
	Elapsed units.Time // virtual wall-clock of the timed steps
	Steps   int

	TotalPS, TotalDS int64 // flops across all workers

	// Aggregated endpoint accounting over the timed region.
	ComputeTime, ExchangeTime, GsumTime units.Time // summed over workers

	MeanNi float64 // mean CG iterations per step

	// Fault/recovery accounting (Hyades runs only; whole run, not just
	// the timed region — retransmission counters are not resettable).
	Fault comm.FaultStats
	Net   arctic.Stats

	// Recovery reports availability behaviour when the run used the
	// crash-recovery controller (node faults or a checkpoint interval).
	Recovery RecoveryResult

	// Engine observables of the whole simulation (Hyades runs only):
	// determinism tests compare them bit for bit across worker counts.
	Events    uint64
	FinalTime units.Time
}

// TotalFlops returns all floating-point work in the timed region.
func (r *Result) TotalFlops() int64 { return r.TotalPS + r.TotalDS }

// SustainedMFlops returns the aggregate sustained floating-point rate
// (the Fig. 10 metric).
func (r *Result) SustainedMFlops() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalFlops()) / r.Elapsed.Seconds() / 1e6
}

// PerStep returns the mean virtual time per model step.
func (r *Result) PerStep() units.Time {
	if r.Steps == 0 {
		return 0
	}
	return r.Elapsed / units.Time(r.Steps)
}

// ParallelOpts tunes a Hyades cluster run beyond the machine shape.
type ParallelOpts struct {
	// Fault selects the deterministic fault plan.  Enabling any fault
	// also switches on the NIUs' reliable channel (see cluster.Config).
	Fault fault.Config

	// Watchdog overrides the cluster's virtual-time wait limit when
	// nonzero (zero keeps the cluster default).
	Watchdog units.Time

	// Workers sizes the host worker pool running the ranks' offloaded
	// compute phases: 0 means GOMAXPROCS, 1 a single pool worker,
	// negative runs everything inline on the DES baton.  Every value
	// produces the identical virtual schedule (see cluster.Config).
	Workers int

	// CheckpointEvery saves a coordinated checkpoint every so many
	// model steps (0 disables).  With node faults enabled it bounds
	// the work a crash can destroy; without them it still exercises
	// the checkpoint machinery (the state digest is unaffected).
	CheckpointEvery int

	// MaxRestarts overrides the recovery controller's crash budget
	// when positive.
	MaxRestarts int

	// RecoveryBackoff overrides the controller's base release backoff
	// when positive.
	RecoveryBackoff units.Time
}

// RunParallel executes cfg for the given number of timed steps (plus
// warm-up steps excluded from the timing) on a simulated Hyades
// cluster with the given SMP count and processors per SMP.  The
// decomposition must produce exactly nodes*ppn tiles.
func RunParallel(nodes, ppn int, cfg Config, warmup, steps int) (*Result, error) {
	return RunParallelOpts(nodes, ppn, cfg, warmup, steps, ParallelOpts{})
}

// RunParallelOpts is RunParallel with fault injection and watchdog
// control.  The returned Result carries the fault/recovery counters.
func RunParallelOpts(nodes, ppn int, cfg Config, warmup, steps int, opts ParallelOpts) (*Result, error) {
	ccfg := cluster.DefaultConfig(nodes, ppn)
	ccfg.Fault = opts.Fault
	ccfg.Workers = opts.Workers
	if opts.Watchdog != 0 {
		ccfg.Watchdog = opts.Watchdog
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		return nil, err
	}
	rec := lib.Recovery()
	if rec == nil && opts.CheckpointEvery > 0 {
		rec = lib.EnableRecovery()
	}
	var res *Result
	if rec != nil {
		if opts.MaxRestarts > 0 {
			rec.MaxRestarts = opts.MaxRestarts
		}
		if opts.RecoveryBackoff > 0 {
			rec.Backoff = opts.RecoveryBackoff
		}
		res, err = runRecovery(cl, lib, cfg, warmup, steps, opts.CheckpointEvery)
	} else {
		launch := func(body func(rank int, ep comm.Endpoint)) error {
			cl.Start(func(w *cluster.Worker) { body(w.Rank, lib.Bind(w)) })
			return cl.Run()
		}
		res, err = runOn(cl.Processors(), launch, cfg, warmup, steps)
	}
	if err != nil {
		return nil, err
	}
	res.Fault = lib.FaultStats()
	res.Net = cl.Fabric.Stats()
	res.Events = cl.Eng.Events()
	res.FinalTime = cl.Eng.Now()
	return res, nil
}

// RunParallelNet executes cfg over a modelled commodity interconnect
// (Fast Ethernet, Gigabit Ethernet, Myrinet/HPVM) with one worker per
// node — the "portable MPI" configurations of Fig. 12.
func RunParallelNet(prm netmodel.Params, cfg Config, warmup, steps int) (*Result, error) {
	n := cfg.Decomp.Tiles()
	nc := netmodel.New(n, prm)
	defer nc.Close()
	launch := func(body func(rank int, ep comm.Endpoint)) error {
		nc.Start(func(ep *netmodel.Endpoint) { body(ep.Rank(), ep) })
		return nc.Run()
	}
	return runOn(n, launch, cfg, warmup, steps)
}

// runOn is the machine-agnostic core of the parallel runners: launch
// must start nWorkers processes running body and drain the simulation.
func runOn(nWorkers int, launch func(body func(rank int, ep comm.Endpoint)) error, cfg Config, warmup, steps int) (*Result, error) {
	if cfg.Decomp.Tiles() != nWorkers {
		return nil, fmt.Errorf("gcm: %d tiles for %d workers", cfg.Decomp.Tiles(), nWorkers)
	}
	// Every slot the rank bodies write is rank-indexed: the shareheap
	// partition-safety rule certifies the closure writes no cross-rank
	// shared state, so the result is independent of how the engine
	// interleaves the rank coroutines.  Aggregation happens below, on
	// the launcher frame, after the simulation drains.
	res := &Result{Models: make([]*Model, nWorkers), Steps: steps}
	t0s := make([]units.Time, nWorkers)
	t1s := make([]units.Time, nWorkers)
	buildErrs := make([]error, nWorkers)
	ps := make([]int64, nWorkers)
	ds := make([]int64, nWorkers)
	baseline := make([]comm.Stats, nWorkers)
	eps := make([]comm.Endpoint, nWorkers)
	err := launch(func(rank int, ep comm.Endpoint) {
		eps[rank] = ep
		m, err := New(cfg, ep)
		if err != nil {
			buildErrs[rank] = err
			return
		}
		res.Models[rank] = m
		m.Run(warmup)
		ep.Barrier()
		baseline[rank] = *ep.Stats()
		t0s[rank] = ep.Now()
		psBase, dsBase := m.C.PS, m.C.DS
		m.Run(steps)
		ep.Barrier()
		t1s[rank] = ep.Now()
		ps[rank] = m.C.PS - psBase
		ds[rank] = m.C.DS - dsBase
	})
	if err != nil {
		return nil, err
	}
	for _, e := range buildErrs {
		if e != nil {
			return nil, e
		}
	}
	for r := range ps {
		res.TotalPS += ps[r]
		res.TotalDS += ds[r]
	}
	// Rank 0's barrier-exit times bracket the timed region.
	res.Elapsed = t1s[0] - t0s[0]
	for r, ep := range eps {
		if ep == nil {
			continue
		}
		s := ep.Stats()
		res.ComputeTime += s.ComputeTime - baseline[r].ComputeTime
		res.ExchangeTime += s.ExchangeTime - baseline[r].ExchangeTime
		res.GsumTime += s.GsumTime - baseline[r].GsumTime
	}
	var iters, solves int64
	for _, m := range res.Models {
		iters += m.Solver.TotalIters
		solves += m.Solver.Solves
	}
	if solves > 0 {
		res.MeanNi = float64(iters) / float64(solves)
	}
	return res, nil
}

// RunSerial executes cfg on the serial endpoint (single tile) and
// returns the model plus the charged single-processor time.
func RunSerial(cfg Config, steps int) (*Model, units.Time, error) {
	return RunSerialWithPrecond(cfg, steps, solver.PrecondSSOR)
}

// RunSerialWithPrecond is RunSerial with an explicit solver
// preconditioner — used by the preconditioner ablation benchmark.
func RunSerialWithPrecond(cfg Config, steps int, pre solver.Precond) (*Model, units.Time, error) {
	if cfg.Decomp.Tiles() != 1 {
		return nil, 0, fmt.Errorf("gcm: serial run needs a 1x1 decomposition")
	}
	ep := &comm.Serial{}
	m, err := New(cfg, ep)
	if err != nil {
		return nil, 0, err
	}
	m.Solver.Pre = pre
	start := ep.Now()
	m.Run(steps)
	return m, ep.Now() - start, nil
}
