// Package tile implements the flexible tiled domain decomposition of
// the MIT GCM (paper §4, Fig. 5): the global lateral domain is split
// into Px x Py rectangular tiles, each owned by one worker, with halo
// regions kept consistent by the exchange primitive.
//
// Halo updates run in two phases — west/east first, then north/south
// spanning the corner columns — so diagonal halo cells are filled
// without explicit corner exchanges, as wide-stencil overcomputation
// requires.  Within each phase, pairwise exchanges are ordered red-black
// by tile coordinate, which keeps the rendezvous protocol deadlock-free.
package tile

import (
	"fmt"

	"hyades/internal/comm"
	"hyades/internal/gcm/field"
)

// Decomp describes the global tiling.
type Decomp struct {
	NXg, NYg             int // global lateral grid
	Px, Py               int // tiles in x and y
	PeriodicX, PeriodicY bool
}

// Validate checks divisibility and the deadlock-freedom constraint on
// periodic rings (even tile count, or a single tile).
func (d Decomp) Validate() error {
	if d.Px < 1 || d.Py < 1 {
		return fmt.Errorf("tile: bad decomposition %dx%d", d.Px, d.Py)
	}
	if d.NXg%d.Px != 0 || d.NYg%d.Py != 0 {
		return fmt.Errorf("tile: %dx%d grid not divisible by %dx%d tiles", d.NXg, d.NYg, d.Px, d.Py)
	}
	if d.PeriodicX && d.Px > 1 && d.Px%2 != 0 {
		return fmt.Errorf("tile: periodic x ring of %d tiles must be even", d.Px)
	}
	if d.PeriodicY && d.Py > 1 && d.Py%2 != 0 {
		return fmt.Errorf("tile: periodic y ring of %d tiles must be even", d.Py)
	}
	return nil
}

// Tiles returns the worker count.
func (d Decomp) Tiles() int { return d.Px * d.Py }

// TileSize returns the per-tile interior dimensions.
func (d Decomp) TileSize() (nx, ny int) { return d.NXg / d.Px, d.NYg / d.Py }

// CoordOf maps a rank to tile coordinates.
func (d Decomp) CoordOf(rank int) (tx, ty int) { return rank % d.Px, rank / d.Px }

// RankOf maps tile coordinates to a rank.
func (d Decomp) RankOf(tx, ty int) int { return ty*d.Px + tx }

// Origin returns the global cell offset of a tile.
func (d Decomp) Origin(rank int) (i0, j0 int) {
	nx, ny := d.TileSize()
	tx, ty := d.CoordOf(rank)
	return tx * nx, ty * ny
}

// Halo binds a worker's endpoint to its tile position and performs
// halo updates.
type Halo struct {
	EP     comm.Endpoint
	D      Decomp
	tx, ty int

	// scratch recycles received exchange payloads as future pack
	// targets.  Send-buffer ownership transfers to the comm layer
	// (reliable-mode retransmission may retain it), but a received
	// payload is exclusively ours once Exchange returns, and the comm
	// layer's sequence-number dup-drop makes rewriting a retained
	// retransmit payload safe — so steady-state halo traffic packs
	// into recycled buffers and allocates nothing.
	scratch [][]byte
}

// grab pops a recycled buffer with capacity ≥ need, or returns nil.
func (h *Halo) grab(need int) []byte {
	for i, b := range h.scratch {
		if cap(b) >= need {
			last := len(h.scratch) - 1
			h.scratch[i] = h.scratch[last]
			h.scratch[last] = nil
			h.scratch = h.scratch[:last]
			return b
		}
	}
	return nil
}

// keep retains a consumed receive payload for later packing.  The list
// stays small: steady state circulates one buffer per slab size class.
func (h *Halo) keep(b []byte) {
	if len(h.scratch) < 8 {
		h.scratch = append(h.scratch, b)
	}
}

// NewHalo builds the halo updater for the endpoint's rank.
func NewHalo(ep comm.Endpoint, d Decomp) (*Halo, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if ep.N() != d.Tiles() {
		return nil, fmt.Errorf("tile: %d workers for %d tiles", ep.N(), d.Tiles())
	}
	tx, ty := d.CoordOf(ep.Rank())
	return &Halo{EP: ep, D: d, tx: tx, ty: ty}, nil
}

// neighbour returns the rank across the given side, or -1 at a wall.
// A periodic single-tile axis returns the tile's own rank.
func (h *Halo) neighbour(s field.Side) int {
	tx, ty := h.tx, h.ty
	switch s {
	case field.West:
		tx--
	case field.East:
		tx++
	case field.South:
		ty--
	case field.North:
		ty++
	}
	if tx < 0 || tx >= h.D.Px {
		if !h.D.PeriodicX {
			return -1
		}
		tx = (tx + h.D.Px) % h.D.Px
	}
	if ty < 0 || ty >= h.D.Py {
		if !h.D.PeriodicY {
			return -1
		}
		ty = (ty + h.D.Py) % h.D.Py
	}
	return h.D.RankOf(tx, ty)
}

// exchanger abstracts F2/F3 slab packing so one update routine serves
// both field ranks.
type exchanger interface {
	PackSlabInto(s field.Slab, buf []byte) []byte
	UnpackSlab(s field.Slab, buf []byte)
	SlabShape(s field.Slab) (rows, rowBytes int)
	LocalWrap(axisX bool, width int)
}

// Update2 refreshes a 2-D field's halo to the given width.  DS-phase
// slabs are small and cache-resident.
func (h *Halo) Update2(f *field.F2, width int) {
	h.update(f, width, true)
}

// Update3 refreshes a 3-D field's halo.  PS-phase slabs sweep large
// arrays, so pack copies run at miss rates.
func (h *Halo) Update3(f *field.F3, width int) {
	h.update(f, width, false)
}

func (h *Halo) update(f exchanger, width int, cached bool) {
	h.axis(f, width, cached, true)  // west/east first
	h.axis(f, width, cached, false) // then north/south spans the corners
}

// axis performs the two pairwise exchanges of one direction phase.
func (h *Halo) axis(f exchanger, width int, cached, xAxis bool) {
	var lo, hi field.Side
	var coord int
	if xAxis {
		lo, hi, coord = field.West, field.East, h.tx
	} else {
		lo, hi, coord = field.South, field.North, h.ty
	}
	nLo, nHi := h.neighbour(lo), h.neighbour(hi)
	self := h.EP.Rank()
	if nLo == self && nHi == self {
		f.LocalWrap(xAxis, width)
		return
	}
	// Red-black pairing: even tiles talk high-side first.
	order := []field.Side{hi, lo}
	if coord%2 == 1 {
		order = []field.Side{lo, hi}
	}
	for _, side := range order {
		peer := h.neighbour(side)
		if peer < 0 {
			continue
		}
		edge := field.Slab{Side: side, Width: width}
		halo := field.Slab{Side: side, Width: width, Halo: true}
		rows, rowBytes := f.SlabShape(edge)
		layout := comm.Block{Rows: rows, RowBytes: rowBytes, Cached: cached}
		// Exchange pairs point-to-point by topology: a tile that wraps
		// onto itself has no peer waiting, so skipping it cannot strand
		// another rank.
		//lint:allow commlock self-neighbour wrap has no remote partner
		got := h.EP.Exchange(peer, f.PackSlabInto(edge, h.grab(rows*rowBytes)), layout)
		f.UnpackSlab(halo, got)
		h.keep(got)
	}
}

// Gather2 assembles a global 2-D field (interior only, halo 0) on rank
// 0; other ranks return nil.  Used by diagnostics and figure output.
func (h *Halo) Gather2(f *field.F2) *field.F2 {
	nx, ny := h.D.TileSize()
	layout := comm.Block{Rows: 1, RowBytes: nx * ny * 8, Cached: false}
	mine := f.PackSlab(field.Slab{Side: field.West, Width: nx}) // whole interior
	if h.EP.Rank() != 0 {
		h.EP.Exchange(0, mine, layout)
		return nil
	}
	global := field.NewF2(h.D.NXg, h.D.NYg, 0)
	place := func(rank int, buf []byte) {
		i0, j0 := h.D.Origin(rank)
		t := field.NewF2(nx, ny, 0)
		t.UnpackSlab(field.Slab{Side: field.West, Width: nx}, buf)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				global.Set(i0+i, j0+j, t.At(i, j))
			}
		}
	}
	place(0, mine)
	for r := 1; r < h.EP.N(); r++ {
		place(r, h.EP.Exchange(r, mine, layout))
	}
	return global
}

// Gather3Level gathers one level of a 3-D field on rank 0.
func (h *Halo) Gather3Level(f *field.F3, k int) *field.F2 {
	return h.Gather2(f.Level(k))
}
