package tile

import (
	"fmt"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm/field"
)

func runHyades(t *testing.T, nodes, ppn int, body func(ep comm.Endpoint)) {
	t.Helper()
	cl, err := cluster.New(cluster.DefaultConfig(nodes, ppn))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(func(w *cluster.Worker) { body(h.Bind(w)) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDecompValidate(t *testing.T) {
	good := Decomp{NXg: 32, NYg: 16, Px: 4, Py: 2, PeriodicX: true}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Decomp{
		{NXg: 33, NYg: 16, Px: 4, Py: 2},                  // not divisible
		{NXg: 30, NYg: 16, Px: 3, Py: 2, PeriodicX: true}, // odd periodic ring
		{NXg: 32, NYg: 16, Px: 0, Py: 2},                  // degenerate
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, d)
		}
	}
}

func TestCoordRankRoundTrip(t *testing.T) {
	d := Decomp{NXg: 32, NYg: 32, Px: 4, Py: 2}
	for r := 0; r < d.Tiles(); r++ {
		tx, ty := d.CoordOf(r)
		if d.RankOf(tx, ty) != r {
			t.Fatalf("rank %d -> (%d,%d) -> %d", r, tx, ty, d.RankOf(tx, ty))
		}
	}
}

// globalRef gives the test pattern value at a global cell.
func globalRef(gi, gj, k int) float64 {
	return float64(k*100000 + gj*1000 + gi + 7)
}

// checkHaloConsistency fills every tile's interior with the global
// pattern, updates halos, and verifies halo cells carry the correct
// neighbouring global values (with wrap where periodic).
func checkHaloConsistency(t *testing.T, d Decomp, width, nz int, nodes, ppn int) {
	t.Helper()
	nx, ny := d.TileSize()
	bad := 0
	runHyades(t, nodes, ppn, func(ep comm.Endpoint) {
		h, err := NewHalo(ep, d)
		if err != nil {
			t.Error(err)
			return
		}
		i0, j0 := d.Origin(ep.Rank())
		f := field.NewF3(nx, ny, nz, width)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					f.Set(i, j, k, globalRef(i0+i, j0+j, k))
				}
			}
		}
		h.Update3(f, width)
		for k := 0; k < nz; k++ {
			for j := -width; j < ny+width; j++ {
				for i := -width; i < nx+width; i++ {
					gi, gj := i0+i, j0+j
					inX, inY := true, true
					if gi < 0 || gi >= d.NXg {
						if !d.PeriodicX {
							inX = false
						}
						gi = ((gi % d.NXg) + d.NXg) % d.NXg
					}
					if gj < 0 || gj >= d.NYg {
						if !d.PeriodicY {
							inY = false
						}
						gj = ((gj % d.NYg) + d.NYg) % d.NYg
					}
					if !inX || !inY {
						continue // wall halo: undefined, kernels mask it
					}
					if got, want := f.At(i, j, k), globalRef(gi, gj, k); got != want {
						bad++
						if bad < 5 {
							t.Errorf("rank %d cell (%d,%d,%d): got %g want %g", ep.Rank(), i, j, k, got, want)
						}
					}
				}
			}
		}
	})
	if bad > 0 {
		t.Fatalf("%d inconsistent halo cells", bad)
	}
}

func TestHaloConsistency(t *testing.T) {
	cases := []struct {
		d          Decomp
		width, nz  int
		nodes, ppn int
	}{
		{Decomp{NXg: 16, NYg: 8, Px: 4, Py: 2, PeriodicX: true}, 3, 2, 8, 1},
		{Decomp{NXg: 16, NYg: 8, Px: 4, Py: 2, PeriodicX: true}, 1, 1, 8, 1},
		{Decomp{NXg: 16, NYg: 16, Px: 2, Py: 2, PeriodicX: true, PeriodicY: true}, 2, 1, 4, 1},
		{Decomp{NXg: 8, NYg: 8, Px: 1, Py: 4}, 2, 1, 4, 1},
		{Decomp{NXg: 8, NYg: 8, Px: 2, Py: 4, PeriodicX: true}, 1, 1, 4, 2},
		{Decomp{NXg: 12, NYg: 12, Px: 1, Py: 1, PeriodicX: true, PeriodicY: true}, 2, 2, 1, 1},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%dx%d_w%d", tc.d.Px, tc.d.Py, tc.width)
		t.Run(name, func(t *testing.T) {
			checkHaloConsistency(t, tc.d, tc.width, tc.nz, tc.nodes, tc.ppn)
		})
	}
}

func TestHalo2DConsistency(t *testing.T) {
	d := Decomp{NXg: 16, NYg: 8, Px: 4, Py: 2, PeriodicX: true}
	nx, ny := d.TileSize()
	bad := 0
	runHyades(t, 8, 1, func(ep comm.Endpoint) {
		h, _ := NewHalo(ep, d)
		i0, j0 := d.Origin(ep.Rank())
		f := field.NewF2(nx, ny, 1)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				f.Set(i, j, globalRef(i0+i, j0+j, 0))
			}
		}
		h.Update2(f, 1)
		for _, probe := range [][2]int{{-1, 0}, {nx, 0}, {0, -1}, {0, ny}} {
			i, j := probe[0], probe[1]
			gi, gj := i0+i, j0+j
			if gj < 0 || gj >= d.NYg {
				continue
			}
			gi = ((gi % d.NXg) + d.NXg) % d.NXg
			if f.At(i, j) != globalRef(gi, gj, 0) {
				bad++
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d bad 2-D halo cells", bad)
	}
}

func TestGather2(t *testing.T) {
	d := Decomp{NXg: 8, NYg: 8, Px: 2, Py: 2}
	nx, ny := d.TileSize()
	runHyades(t, 4, 1, func(ep comm.Endpoint) {
		h, _ := NewHalo(ep, d)
		i0, j0 := d.Origin(ep.Rank())
		f := field.NewF2(nx, ny, 1)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				f.Set(i, j, globalRef(i0+i, j0+j, 0))
			}
		}
		g := h.Gather2(f)
		if ep.Rank() == 0 {
			if g == nil {
				t.Error("rank 0 got nil gather")
				return
			}
			for j := 0; j < d.NYg; j++ {
				for i := 0; i < d.NXg; i++ {
					if g.At(i, j) != globalRef(i, j, 0) {
						t.Errorf("gathered (%d,%d) = %g", i, j, g.At(i, j))
						return
					}
				}
			}
		} else if g != nil {
			t.Error("non-root got a gather result")
		}
	})
}

func TestSerialEndpointHalo(t *testing.T) {
	// A single periodic tile on the serial endpoint wraps locally and
	// never touches the network.
	d := Decomp{NXg: 8, NYg: 8, Px: 1, Py: 1, PeriodicX: true, PeriodicY: true}
	ep := &comm.Serial{}
	h, err := NewHalo(ep, d)
	if err != nil {
		t.Fatal(err)
	}
	f := field.NewF2(8, 8, 2)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			f.Set(i, j, globalRef(i, j, 0))
		}
	}
	h.Update2(f, 2)
	if f.At(-1, 3) != globalRef(7, 3, 0) {
		t.Fatalf("west wrap = %g", f.At(-1, 3))
	}
	if f.At(3, 9) != globalRef(3, 1, 0) {
		t.Fatalf("north wrap = %g", f.At(3, 9))
	}
	if f.At(-2, -1) != globalRef(6, 7, 0) {
		t.Fatalf("corner wrap = %g", f.At(-2, -1))
	}
}
