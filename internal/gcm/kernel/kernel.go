// Package kernel implements the Prognostic Step (PS) of the GCM
// algorithm (paper Fig. 6): evaluation of the time tendencies G for
// momentum and tracers, Adams-Bashforth extrapolation, the hydrostatic
// pressure integral, and the continuity diagnosis of vertical velocity.
//
// The numerics are a finite-volume Arakawa-C discretisation of the
// incompressible primitive equations in the style of Marshall et al.
// (1997), the paper's references [20][21]: flux-form tracer advection,
// advective-form momentum transport, Coriolis, Laplacian friction and
// diffusion, and shaved-cell volume factors from package grid.
//
// All terms at a cell are computable from a 3x3 lateral stencil, so —
// exactly as §4 describes — one halo exchange per time step suffices:
// tendencies are "overcomputed" into the halo region at a margin wide
// enough to feed every downstream stage of the step.
//
// Every routine counts the floating-point operations it performs; the
// performance model of §5.2 consumes these counts as Nps.
package kernel

import (
	"fmt"

	"hyades/internal/gcm/eos"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/units"
)

// Halo is the lateral overlap width required for single-exchange
// overcomputation.
const Halo = 3

// StateFields is the number of 3-D state variables exchanged per step
// (u, v, w, theta, salt) — the "5" in tps_exch = 5*texchxyz.
const StateFields = 5

// State holds one tile's prognostic and diagnostic fields.
type State struct {
	U, V, W     *field.F3 // velocities; W diagnosed, positive with k
	Theta, Salt *field.F3 // tracer pair (theta/salt or theta/humidity)
	Phy         *field.F3 // hydrostatic pressure potential (p'/rho0)
	Ps          *field.F2 // surface pressure potential

	// Tendency buffers at time levels n and n-1 (toggled by cur).
	gu, gv, gth, gs [2]*field.F3
	cur             int
	firstStep       bool

	// accRow is per-column accumulator scratch for the flat-row
	// Hydrostatic and Continuity sweeps (k-outer loop order).  Not
	// state: never checkpointed.
	accRow []float64
}

// NewState allocates the state for a tile of the given interior size.
func NewState(nx, ny, nz int) *State {
	f3 := func() *field.F3 { return field.NewF3(nx, ny, nz, Halo) }
	s := &State{
		U: f3(), V: f3(), W: f3(), Theta: f3(), Salt: f3(), Phy: f3(),
		Ps:        field.NewF2(nx, ny, 1),
		firstStep: true,
		accRow:    make([]float64, nx+2*Halo),
	}
	for lv := 0; lv < 2; lv++ {
		s.gu[lv], s.gv[lv], s.gth[lv], s.gs[lv] = f3(), f3(), f3(), f3()
	}
	return s
}

// GU returns the current zonal-momentum tendency buffer.  Forcing
// implementations add their terms into these buffers before the
// Adams-Bashforth step.
func (s *State) GU() *field.F3 { return s.gu[s.cur] }

// GV returns the current meridional-momentum tendency buffer.
func (s *State) GV() *field.F3 { return s.gv[s.cur] }

// GTh returns the current theta tendency buffer.
func (s *State) GTh() *field.F3 { return s.gth[s.cur] }

// GS returns the current salinity/humidity tendency buffer.
func (s *State) GS() *field.F3 { return s.gs[s.cur] }

// Rotate flips the Adams-Bashforth buffers at the end of a step.
func (s *State) Rotate() {
	s.cur = 1 - s.cur
	s.firstStep = false
}

// ABCursor exposes the Adams-Bashforth buffer toggle for checkpointing.
func (s *State) ABCursor() int { return s.cur }

// SetABCursor restores the toggle and first-step flag from a
// checkpoint (started reports whether any step has completed).
func (s *State) SetABCursor(cur int, started bool) {
	s.cur = cur & 1
	s.firstStep = !started
}

// ABBuffers exposes both time levels of every tendency array, in a
// stable order, for checkpointing.
func (s *State) ABBuffers() []*field.F3 {
	return []*field.F3{
		s.gu[0], s.gu[1], s.gv[0], s.gv[1],
		s.gth[0], s.gth[1], s.gs[0], s.gs[1],
	}
}

// Params collects the kernel's physical and numerical parameters.
type Params struct {
	Dt       float64 // time step (s)
	AhMom    float64 // lateral viscosity (m^2/s)
	AvMom    float64 // vertical viscosity (m^2/s)
	KhTracer float64 // lateral diffusivity (m^2/s)
	KvTracer float64 // vertical diffusivity (m^2/s)
	BotDrag  float64 // linear bottom drag (1/s) on the deepest wet level
	ABEps    float64 // Adams-Bashforth stabilising offset
	EOS      eos.EOS
	// ImplicitConvection enables the convective-adjustment mixing pass.
	ImplicitConvection bool
}

// Validate sanity-checks the parameters.
func (p *Params) Validate() error {
	if p.Dt <= 0 {
		return fmt.Errorf("kernel: Dt = %g", p.Dt)
	}
	if p.EOS == nil {
		return fmt.Errorf("kernel: nil EOS")
	}
	if p.AhMom < 0 || p.KhTracer < 0 || p.AvMom < 0 || p.KvTracer < 0 {
		return fmt.Errorf("kernel: negative mixing coefficient")
	}
	return nil
}

// Counters accumulates floating-point operation counts, split by model
// phase as the performance model requires.  The optional charge hooks
// let a driver convert flops to simulated processor time at the
// measured phase rates (Fps, Fds of Fig. 11) at the same granularity
// as the real machine — between communication points.
type Counters struct {
	PS int64 // flops in the prognostic step
	DS int64 // flops in the diagnostic (solver) step

	ChargePS func(flops int64)
	ChargeDS func(flops int64)

	// TimePS/TimeDS convert a flop count into modeled processor time
	// at the phase rates (the same conversion the charge hooks use).
	// The parallel driver needs them to charge an offloaded phase's
	// cost *up front*: a phase handed to the worker pool must advance
	// the virtual clock by a duration fixed at submission time.
	TimePS func(flops int64) units.Time
	TimeDS func(flops int64) units.Time
}

// AddPS records prognostic-step work.
func (c *Counters) AddPS(f int64) {
	c.PS += f
	if c.ChargePS != nil {
		c.ChargePS(f)
	}
}

// AddDS records diagnostic-step work.
func (c *Counters) AddDS(f int64) {
	c.DS += f
	if c.ChargeDS != nil {
		c.ChargeDS(f)
	}
}

// SuspendCharges detaches the charge hooks around an offloaded compute
// phase whose time is charged up front (comm.Endpoint.Exec): charging
// from inside the phase would advance virtual time off the baton.
// Flop accumulation continues unchanged.  Returns the hooks for
// RestoreCharges.
func (c *Counters) SuspendCharges() (ps, ds func(int64)) {
	ps, ds = c.ChargePS, c.ChargeDS
	c.ChargePS, c.ChargeDS = nil, nil
	return ps, ds
}

// RestoreCharges reattaches hooks detached by SuspendCharges.
func (c *Counters) RestoreCharges(ps, ds func(int64)) {
	c.ChargePS, c.ChargeDS = ps, ds
}

// Forcing adds external tendencies (wind stress, heating, the
// atmospheric physics package) into the current G buffers.  AddingNil
// is allowed: a nil Forcing means an unforced fluid.
type Forcing interface {
	AddTendencies(g *grid.Local, s *State, p *Params, c *Counters)
}

// The *Ops helpers below are the analytic flop counts of the
// state-independent sweeps.  Each kernel accounts exactly its helper's
// value, and the parallel driver evaluates the same helper *before*
// running the kernel to fix the phase's modeled duration at submission
// time.  Data-dependent routines (ConvectiveAdjust, Forcing
// implementations with conditional terms) deliberately have no helper:
// their cost is only known after execution, so they stay on the baton.

// ComputeGTracersOps returns ComputeGTracers' flop count:
// ~96 flops per swept cell for the twelve face-flux evaluations plus
// the volume divisions (hand count of the loop body).
func ComputeGTracersOps(g *grid.Local) int64 {
	m := Halo - 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m)) * 96
}

// StepTracersOps returns StepTracers' flop count.
func StepTracersOps(g *grid.Local) int64 {
	m := Halo - 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m)) * 10
}

// HydrostaticOps returns Hydrostatic's flop count.
func HydrostaticOps(g *grid.Local, p *Params) int64 {
	m := Halo - 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m)) * int64(4+p.EOS.FlopsPerCell())
}

// ComputeGMomentumOps returns ComputeGMomentum's flop count.
func ComputeGMomentumOps(g *grid.Local) int64 {
	m := 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m+1)) * 110
}

// StepMomentumOps returns StepMomentum's flop count.
func StepMomentumOps(g *grid.Local) int64 {
	m := 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m+1)) * 16
}

// ContinuityOps returns Continuity's flop count.
func ContinuityOps(g *grid.Local) int64 {
	return int64(g.NZ*g.NY*g.NX) * 12
}

// abCoeffs returns the Adams-Bashforth-2 weights; the first step falls
// back to forward Euler.
func (s *State) abCoeffs(eps float64) (aNow, aPrev float64) {
	if s.firstStep {
		return 1, 0
	}
	return 1.5 + eps, -(0.5 + eps)
}

// ComputeGTracers evaluates advective and diffusive tendencies for
// theta and salt on the overcomputation margin [-2, n+2).
//
// The sweep is written flat-row style: every field row the 3x3x3
// stencil touches is hoisted out of the i-loop as a plain []float64
// (index i+Halo), and the four side faces are straight-line code.  The
// arithmetic — each term's expression tree and the accumulation order
// west, east, south, north, top, bottom — is exactly the seed
// kernel's, so results are bit-identical (pinned by golden_test.go).
func ComputeGTracers(g *grid.Local, s *State, p *Params, c *Counters) {
	const h = Halo
	m := Halo - 1 // stencil reaches one further; halo is 3
	gth, gs := s.gth[s.cur], s.gs[s.cur]
	nz := g.NZ
	kh, kv := p.KhTracer, p.KvTracer
	for k := 0; k < nz; k++ {
		dz := g.DZ[k]
		var dzFUp, dzFDn float64
		if k > 0 {
			dzFUp = 0.5 * (g.DZ[k-1] + g.DZ[k])
		}
		if k < nz-1 {
			dzFDn = 0.5 * (g.DZ[k] + g.DZ[k+1])
		}
		for j := -m; j < g.NY+m; j++ {
			dx, dy := g.DXC(j), g.DYC(j)
			area := dx * dy
			dxsS, dxsN := g.DXS(j), g.DXS(j+1)
			hcr := g.HFacC.Row(j, k)
			hwr := g.HFacW.Row(j, k)
			hsr := g.HFacS.Row(j, k)
			hsrN := g.HFacS.Row(j+1, k)
			ur := s.U.Row(j, k)
			vr := s.V.Row(j, k)
			vrN := s.V.Row(j+1, k)
			thr := s.Theta.Row(j, k)
			thrS := s.Theta.Row(j-1, k)
			thrN := s.Theta.Row(j+1, k)
			sar := s.Salt.Row(j, k)
			sarS := s.Salt.Row(j-1, k)
			sarN := s.Salt.Row(j+1, k)
			gthr := gth.Row(j, k)
			gsr := gs.Row(j, k)
			var hcrUp, thrUp, sarUp, wr []float64
			if k > 0 {
				hcrUp = g.HFacC.Row(j, k-1)
				thrUp = s.Theta.Row(j, k-1)
				sarUp = s.Salt.Row(j, k-1)
				wr = s.W.Row(j, k)
			}
			var hcrDn, thrDn, sarDn, wrDn []float64
			if k < nz-1 {
				hcrDn = g.HFacC.Row(j, k+1)
				thrDn = s.Theta.Row(j, k+1)
				sarDn = s.Salt.Row(j, k+1)
				wrDn = s.W.Row(j, k+1)
			}
			for i := -m; i < g.NX+m; i++ {
				n := i + h
				hc := hcr[n]
				if hc == 0 {
					gthr[n] = 0
					gsr[n] = 0
					continue
				}
				vol := area * dz * hc
				// Horizontal advective + diffusive fluxes on the four
				// side faces (flux form: conservative).
				conv := 0.0
				convS := 0.0
				{ // west face
					u := ur[n]
					fa := dy * dz * hwr[n]
					thFace := 0.5 * (thr[n-1] + thr[n])
					sFace := 0.5 * (sar[n-1] + sar[n])
					dTh := (thr[n] - thr[n-1]) / dx
					dS := (sar[n] - sar[n-1]) / dx
					conv += fa * (u*thFace - kh*dTh)
					convS += fa * (u*sFace - kh*dS)
				}
				{ // east face
					u := ur[n+1]
					fa := dy * dz * hwr[n+1]
					thFace := 0.5 * (thr[n] + thr[n+1])
					sFace := 0.5 * (sar[n] + sar[n+1])
					dTh := (thr[n+1] - thr[n]) / dx
					dS := (sar[n+1] - sar[n]) / dx
					conv -= fa * (u*thFace - kh*dTh)
					convS -= fa * (u*sFace - kh*dS)
				}
				{ // south face
					v := vr[n]
					fa := dxsS * dz * hsr[n]
					thFace := 0.5 * (thrS[n] + thr[n])
					sFace := 0.5 * (sarS[n] + sar[n])
					dTh := (thr[n] - thrS[n]) / dy
					dS := (sar[n] - sarS[n]) / dy
					conv += fa * (v*thFace - kh*dTh)
					convS += fa * (v*sFace - kh*dS)
				}
				{ // north face
					v := vrN[n]
					fa := dxsN * dz * hsrN[n]
					thFace := 0.5 * (thr[n] + thrN[n])
					sFace := 0.5 * (sar[n] + sarN[n])
					dTh := (thrN[n] - thr[n]) / dy
					dS := (sarN[n] - sar[n]) / dy
					conv -= fa * (v*thFace - kh*dTh)
					convS -= fa * (v*sFace - kh*dS)
				}
				// Vertical advection + diffusion across the top and
				// bottom faces; w lives on top faces, w(k=0) = 0.
				if k > 0 && hcrUp[n] > 0 {
					w := wr[n]
					thF := 0.5 * (thrUp[n] + thr[n])
					sF := 0.5 * (sarUp[n] + sar[n])
					dTh := (thr[n] - thrUp[n]) / dzFUp
					dS := (sar[n] - sarUp[n]) / dzFUp
					conv += area * (w*thF - kv*dTh)
					convS += area * (w*sF - kv*dS)
				}
				if k < nz-1 && hcrDn[n] > 0 {
					w := wrDn[n]
					thF := 0.5 * (thr[n] + thrDn[n])
					sF := 0.5 * (sar[n] + sarDn[n])
					dTh := (thrDn[n] - thr[n]) / dzFDn
					dS := (sarDn[n] - sar[n]) / dzFDn
					conv -= area * (w*thF - kv*dTh)
					convS -= area * (w*sF - kv*dS)
				}
				gthr[n] = conv / vol
				gsr[n] = convS / vol
			}
		}
	}
	c.AddPS(ComputeGTracersOps(g))
}

// StepTracers applies AB2 extrapolation and advances theta and salt on
// the margin [-2, n+2).
func StepTracers(g *grid.Local, s *State, p *Params, c *Counters) {
	const h = Halo
	m := Halo - 1
	aNow, aPrev := s.abCoeffs(p.ABEps)
	now, prev := s.cur, 1-s.cur
	dt := p.Dt
	for k := 0; k < g.NZ; k++ {
		for j := -m; j < g.NY+m; j++ {
			hcr := g.HFacC.Row(j, k)
			thr := s.Theta.Row(j, k)
			sar := s.Salt.Row(j, k)
			gthN := s.gth[now].Row(j, k)
			gthP := s.gth[prev].Row(j, k)
			gsN := s.gs[now].Row(j, k)
			gsP := s.gs[prev].Row(j, k)
			for i := -m; i < g.NX+m; i++ {
				n := i + h
				if hcr[n] == 0 {
					continue
				}
				thr[n] += dt * (aNow*gthN[n] + aPrev*gthP[n])
				sar[n] += dt * (aNow*gsN[n] + aPrev*gsP[n])
			}
		}
	}
	c.AddPS(StepTracersOps(g))
}

// Hydrostatic integrates buoyancy downward into the hydrostatic
// pressure potential phy (paper eq. 3 context): phy(k) is the pressure
// anomaly at the centre of level k per unit reference density.
func Hydrostatic(g *grid.Local, s *State, p *Params, c *Counters) {
	const h = Halo
	m := Halo - 1
	acc := s.accRow
	for j := -m; j < g.NY+m; j++ {
		for n := range acc {
			acc[n] = 0
		}
		// The downward integral runs k-outer over per-column
		// accumulators: each column still applies its half-level
		// increments in ascending-k order, bit-identical to the
		// column-inner loop.
		for k := 0; k < g.NZ; k++ {
			halfDz := 0.5 * g.DZ[k]
			hcr := g.HFacC.Row(j, k)
			thr := s.Theta.Row(j, k)
			sar := s.Salt.Row(j, k)
			phr := s.Phy.Row(j, k)
			for i := -m; i < g.NX+m; i++ {
				n := i + h
				a := acc[n]
				if hcr[n] == 0 {
					phr[n] = a
					continue
				}
				b := p.EOS.Buoyancy(thr[n], sar[n], k)
				half := halfDz * b
				a -= half // buoyant fluid lowers pressure below it
				phr[n] = a
				acc[n] = a - half
			}
		}
	}
	c.AddPS(HydrostaticOps(g, p))
}

// ComputeGMomentum evaluates the velocity tendencies on margin
// [-1, n+1): advection, Coriolis, lateral and vertical friction and
// bottom drag.  The pressure gradients are applied in StepMomentum, as
// in eq. (1) of the paper where grad(p) stands apart from G.
// Flat-row ComputeGMomentum: the per-cell k-switch of the seed kernel
// is kept, but every row it can touch is hoisted per (k,j) and the
// level-dependent spacings are precomputed per k.  Terms and their
// evaluation order are unchanged, so the output is bit-identical.
func ComputeGMomentum(g *grid.Local, s *State, p *Params, c *Counters) {
	const h = Halo
	m := 1
	gu, gv := s.gu[s.cur], s.gv[s.cur]
	nz := g.NZ
	ah, av, botDrag := p.AhMom, p.AvMom, p.BotDrag
	for k := 0; k < nz; k++ {
		dzK := g.DZ[k]
		var dzFUp, dzFDn, dzMid float64
		if k > 0 {
			dzFUp = 0.5 * (g.DZ[k-1] + g.DZ[k])
		}
		if k < nz-1 {
			dzFDn = 0.5 * (g.DZ[k] + g.DZ[k+1])
		}
		if k > 0 && k < nz-1 {
			dzMid = g.DZ[k] + 0.5*(g.DZ[maxInt(k-1, 0)]+g.DZ[minInt(k+1, nz-1)])
		}
		for j := -m; j < g.NY+m; j++ {
			dx, dy := g.DXC(j), g.DYC(j)
			dx2, dy2 := 2*dx, 2*dy
			dxdx, dydy := dx*dx, dy*dy
			f := g.F(j)
			hw := g.HFacW.Row(j, k)
			hs := g.HFacS.Row(j, k)
			hcr := g.HFacC.Row(j, k)
			ur := s.U.Row(j, k)
			urS := s.U.Row(j-1, k)
			urN := s.U.Row(j+1, k)
			vr := s.V.Row(j, k)
			vrS := s.V.Row(j-1, k)
			vrN := s.V.Row(j+1, k)
			wJ := s.W.Row(j, k)
			wJS := s.W.Row(j-1, k)
			gur := gu.Row(j, k)
			gvr := gv.Row(j, k)
			var hcrDn, uUp, uDn, vUp, vDn, wJDn, wJSDn []float64
			if k > 0 {
				uUp = s.U.Row(j, k-1)
				vUp = s.V.Row(j, k-1)
			}
			if k < nz-1 {
				hcrDn = g.HFacC.Row(j, k+1)
				uDn = s.U.Row(j, k+1)
				vDn = s.V.Row(j, k+1)
				wJDn = s.W.Row(j, k+1)
				wJSDn = s.W.Row(j-1, k+1)
			}
			for i := -m; i < g.NX+m+1; i++ { // faces up to nx+m
				n := i + h
				// ---- u tendency at the west face (i,j,k) ----
				if hw[n] == 0 {
					gur[n] = 0
				} else {
					u := ur[n]
					vBar := 0.25 * (vr[n-1] + vr[n] + vrN[n-1] + vrN[n])
					dudx := (ur[n+1] - ur[n-1]) / dx2
					dudy := (urN[n] - urS[n]) / dy2
					adv := u*dudx + vBar*dudy
					if nz > 1 {
						wBar := 0.0
						var dudz float64
						switch {
						case k == 0:
							wBar = 0.5 * (wJDn[n-1] + wJDn[n])
							dudz = (uDn[n] - u) / dzFDn
						case k == nz-1:
							wBar = 0.5 * (wJ[n-1] + wJ[n])
							dudz = (u - uUp[n]) / dzFUp
						default:
							wBar = 0.25 * (wJ[n-1] + wJ[n] + wJDn[n-1] + wJDn[n])
							dudz = (uDn[n] - uUp[n]) / dzMid
						}
						adv += wBar * dudz
					}
					visc := ah * ((ur[n+1]-2*u+ur[n-1])/dxdx +
						(urN[n]-2*u+urS[n])/dydy)
					if nz > 1 {
						visc += vertLapRow(av, uUp, ur, uDn, n, k, nz, dzFUp, dzFDn, dzK)
					}
					tend := -adv + f*vBar + visc
					if botDrag > 0 && bottomAt(hcr, hcrDn, n, k, nz) {
						tend -= botDrag * u
					}
					gur[n] = tend
				}
				// ---- v tendency at the south face (i,j,k) ----
				if hs[n] == 0 {
					gvr[n] = 0
					continue
				}
				v := vr[n]
				uBar := 0.25 * (urS[n] + urS[n+1] + ur[n] + ur[n+1])
				dvdx := (vr[n+1] - vr[n-1]) / dx2
				dvdy := (vrN[n] - vrS[n]) / dy2
				adv := uBar*dvdx + v*dvdy
				if nz > 1 {
					wBar := 0.0
					var dvdz float64
					switch {
					case k == 0:
						wBar = 0.5 * (wJSDn[n] + wJDn[n])
						dvdz = (vDn[n] - v) / dzFDn
					case k == nz-1:
						wBar = 0.5 * (wJS[n] + wJ[n])
						dvdz = (v - vUp[n]) / dzFUp
					default:
						wBar = 0.25 * (wJS[n] + wJ[n] + wJSDn[n] + wJDn[n])
						dvdz = (vDn[n] - vUp[n]) / dzMid
					}
					adv += wBar * dvdz
				}
				visc := ah * ((vr[n+1]-2*v+vr[n-1])/dxdx +
					(vrN[n]-2*v+vrS[n])/dydy)
				if nz > 1 {
					visc += vertLapRow(av, vUp, vr, vDn, n, k, nz, dzFUp, dzFDn, dzK)
				}
				tend := -adv - f*uBar + visc
				if botDrag > 0 && bottomAt(hcr, hcrDn, n, k, nz) {
					tend -= botDrag * v
				}
				gvr[n] = tend
			}
		}
	}
	c.AddPS(ComputeGMomentumOps(g))
}

// vertLapRow is the vertical friction term with free-slip at the top
// and bottom boundaries, over hoisted level rows (upR/dnR may be nil
// at the boundaries, where the matching guard skips them).
func vertLapRow(av float64, upR, curR, dnR []float64, n, k, nz int, dzFUp, dzFDn, dzK float64) float64 {
	if av == 0 {
		return 0
	}
	up, dn := 0.0, 0.0
	if k > 0 {
		up = (upR[n] - curR[n]) / dzFUp
	}
	if k < nz-1 {
		dn = (curR[n] - dnR[n]) / dzFDn
	}
	return av * (up - dn) / dzK
}

// bottomAt reports whether column cell n of the hoisted HFacC rows is
// the deepest wet cell of its column.
func bottomAt(hcr, hcrDn []float64, n, k, nz int) bool {
	if hcr[n] == 0 {
		return false
	}
	return k == nz-1 || hcrDn[n] == 0
}

// StepMomentum applies AB2 to the momentum tendencies and adds the
// hydrostatic pressure gradient, producing the provisional velocities
// u*, v* (in place) that the DS phase projects.  Faces up to index n
// inclusive are updated so tile-edge divergences are complete.
func StepMomentum(g *grid.Local, s *State, p *Params, c *Counters) {
	const h = Halo
	m := 1
	aNow, aPrev := s.abCoeffs(p.ABEps)
	now, prev := s.cur, 1-s.cur
	dt := p.Dt
	for k := 0; k < g.NZ; k++ {
		for j := -m; j < g.NY+m; j++ {
			dx, dy := g.DXC(j), g.DYC(j)
			hw := g.HFacW.Row(j, k)
			hs := g.HFacS.Row(j, k)
			ur := s.U.Row(j, k)
			vr := s.V.Row(j, k)
			guN := s.gu[now].Row(j, k)
			guP := s.gu[prev].Row(j, k)
			gvN := s.gv[now].Row(j, k)
			gvP := s.gv[prev].Row(j, k)
			phr := s.Phy.Row(j, k)
			phrS := s.Phy.Row(j-1, k)
			for i := -m; i < g.NX+m+1; i++ {
				n := i + h
				if hw[n] > 0 {
					gStar := aNow*guN[n] + aPrev*guP[n]
					dpdx := (phr[n] - phr[n-1]) / dx
					ur[n] += dt * (gStar - dpdx)
				} else {
					ur[n] = 0
				}
				if hs[n] > 0 {
					gStar := aNow*gvN[n] + aPrev*gvP[n]
					dpdy := (phr[n] - phrS[n]) / dy
					vr[n] += dt * (gStar - dpdy)
				} else {
					vr[n] = 0
				}
			}
		}
	}
	c.AddPS(StepMomentumOps(g))
}

// Continuity diagnoses w from the non-divergence constraint (paper
// eq. 2), integrating the horizontal divergence downward from the
// rigid lid (w = 0 at k = 0).
func Continuity(g *grid.Local, s *State, c *Counters) {
	const h = Halo
	acc := s.accRow
	for j := 0; j < g.NY; j++ {
		dx, dy := g.DXC(j), g.DYC(j)
		area := dx * dy
		dxsS, dxsN := g.DXS(j), g.DXS(j+1)
		w0 := s.W.Row(j, 0)
		for i := 0; i < g.NX; i++ {
			w0[i+h] = 0
			acc[i] = 0
		}
		// k-outer with a per-column accumulator row: each cell still sees
		// its column's divergences in ascending-k order, so the downward
		// integral accumulates in the seed order and stays bit-identical.
		for k := 0; k < g.NZ; k++ {
			dzk := g.DZ[k]
			ur := s.U.Row(j, k)
			hw := g.HFacW.Row(j, k)
			vr := s.V.Row(j, k)
			vrN := s.V.Row(j+1, k)
			hsr := g.HFacS.Row(j, k)
			hsrN := g.HFacS.Row(j+1, k)
			var wNext []float64
			if k < g.NZ-1 {
				wNext = s.W.Row(j, k+1)
			}
			for i := 0; i < g.NX; i++ {
				n := i + h
				div := dy*dzk*(ur[n+1]*hw[n+1]-ur[n]*hw[n]) +
					dzk*(dxsN*vrN[n]*hsrN[n]-dxsS*vr[n]*hsr[n])
				// With k increasing downward and w positive in +k, the
				// cell's mass balance is w(k+1) = w(k) - outflux/area.
				acc[i] -= div / area
				if k < g.NZ-1 {
					wNext[n] = acc[i]
				}
			}
		}
	}
	c.AddPS(ContinuityOps(g))
}

// ConvectiveAdjust removes static instability by mixing adjacent
// levels where buoyancy increases downward, sweeping each column until
// stable.  This stands in for the convection scheme of the paper's
// intermediate-complexity physics.
func ConvectiveAdjust(g *grid.Local, s *State, p *Params, c *Counters) {
	if !p.ImplicitConvection {
		return
	}
	m := Halo - 1
	var ops int64
	unstable := func(i, j, ka, kb int) bool {
		ops += int64(2*p.EOS.FlopsPerCell()) + 1
		ba := p.EOS.Buoyancy(s.Theta.At(i, j, ka), s.Salt.At(i, j, ka), ka)
		bb := p.EOS.Buoyancy(s.Theta.At(i, j, kb), s.Salt.At(i, j, kb), kb)
		return bb > ba
	}
	// mixRegion homogenises the tracer pair over [lo, hi], volume
	// weighted — the whole region becomes exactly uniform, so a mixed
	// block is internally stable and the scheme terminates.
	mixRegion := func(i, j, lo, hi int) {
		var wSum, tSum, sSum float64
		for k := lo; k <= hi; k++ {
			w := g.DZ[k] * g.HFacC.At(i, j, k)
			wSum += w
			tSum += w * s.Theta.At(i, j, k)
			sSum += w * s.Salt.At(i, j, k)
		}
		tm, sm := tSum/wSum, sSum/wSum
		for k := lo; k <= hi; k++ {
			s.Theta.Set(i, j, k, tm)
			s.Salt.Set(i, j, k, sm)
		}
		ops += int64(hi-lo+1) * 8
	}
	for j := -m; j < g.NY+m; j++ {
		for i := -m; i < g.NX+m; i++ {
			for k := 0; k < g.NZ-1; {
				if g.HFacC.At(i, j, k) == 0 || g.HFacC.At(i, j, k+1) == 0 {
					k++
					continue
				}
				if !unstable(i, j, k, k+1) {
					k++
					continue
				}
				// Grow the mixed region upward until the column above
				// it is stable (or land), then continue below it.
				lo, hi := k, k+1
				mixRegion(i, j, lo, hi)
				for lo > 0 && g.HFacC.At(i, j, lo-1) > 0 && unstable(i, j, lo-1, lo) {
					lo--
					mixRegion(i, j, lo, hi)
				}
				k = hi
			}
		}
	}
	c.AddPS(ops)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
