// Package kernel implements the Prognostic Step (PS) of the GCM
// algorithm (paper Fig. 6): evaluation of the time tendencies G for
// momentum and tracers, Adams-Bashforth extrapolation, the hydrostatic
// pressure integral, and the continuity diagnosis of vertical velocity.
//
// The numerics are a finite-volume Arakawa-C discretisation of the
// incompressible primitive equations in the style of Marshall et al.
// (1997), the paper's references [20][21]: flux-form tracer advection,
// advective-form momentum transport, Coriolis, Laplacian friction and
// diffusion, and shaved-cell volume factors from package grid.
//
// All terms at a cell are computable from a 3x3 lateral stencil, so —
// exactly as §4 describes — one halo exchange per time step suffices:
// tendencies are "overcomputed" into the halo region at a margin wide
// enough to feed every downstream stage of the step.
//
// Every routine counts the floating-point operations it performs; the
// performance model of §5.2 consumes these counts as Nps.
package kernel

import (
	"fmt"

	"hyades/internal/gcm/eos"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/units"
)

// Halo is the lateral overlap width required for single-exchange
// overcomputation.
const Halo = 3

// StateFields is the number of 3-D state variables exchanged per step
// (u, v, w, theta, salt) — the "5" in tps_exch = 5*texchxyz.
const StateFields = 5

// State holds one tile's prognostic and diagnostic fields.
type State struct {
	U, V, W     *field.F3 // velocities; W diagnosed, positive with k
	Theta, Salt *field.F3 // tracer pair (theta/salt or theta/humidity)
	Phy         *field.F3 // hydrostatic pressure potential (p'/rho0)
	Ps          *field.F2 // surface pressure potential

	// Tendency buffers at time levels n and n-1 (toggled by cur).
	gu, gv, gth, gs [2]*field.F3
	cur             int
	firstStep       bool
}

// NewState allocates the state for a tile of the given interior size.
func NewState(nx, ny, nz int) *State {
	f3 := func() *field.F3 { return field.NewF3(nx, ny, nz, Halo) }
	s := &State{
		U: f3(), V: f3(), W: f3(), Theta: f3(), Salt: f3(), Phy: f3(),
		Ps:        field.NewF2(nx, ny, 1),
		firstStep: true,
	}
	for lv := 0; lv < 2; lv++ {
		s.gu[lv], s.gv[lv], s.gth[lv], s.gs[lv] = f3(), f3(), f3(), f3()
	}
	return s
}

// GU returns the current zonal-momentum tendency buffer.  Forcing
// implementations add their terms into these buffers before the
// Adams-Bashforth step.
func (s *State) GU() *field.F3 { return s.gu[s.cur] }

// GV returns the current meridional-momentum tendency buffer.
func (s *State) GV() *field.F3 { return s.gv[s.cur] }

// GTh returns the current theta tendency buffer.
func (s *State) GTh() *field.F3 { return s.gth[s.cur] }

// GS returns the current salinity/humidity tendency buffer.
func (s *State) GS() *field.F3 { return s.gs[s.cur] }

// Rotate flips the Adams-Bashforth buffers at the end of a step.
func (s *State) Rotate() {
	s.cur = 1 - s.cur
	s.firstStep = false
}

// ABCursor exposes the Adams-Bashforth buffer toggle for checkpointing.
func (s *State) ABCursor() int { return s.cur }

// SetABCursor restores the toggle and first-step flag from a
// checkpoint (started reports whether any step has completed).
func (s *State) SetABCursor(cur int, started bool) {
	s.cur = cur & 1
	s.firstStep = !started
}

// ABBuffers exposes both time levels of every tendency array, in a
// stable order, for checkpointing.
func (s *State) ABBuffers() []*field.F3 {
	return []*field.F3{
		s.gu[0], s.gu[1], s.gv[0], s.gv[1],
		s.gth[0], s.gth[1], s.gs[0], s.gs[1],
	}
}

// Params collects the kernel's physical and numerical parameters.
type Params struct {
	Dt       float64 // time step (s)
	AhMom    float64 // lateral viscosity (m^2/s)
	AvMom    float64 // vertical viscosity (m^2/s)
	KhTracer float64 // lateral diffusivity (m^2/s)
	KvTracer float64 // vertical diffusivity (m^2/s)
	BotDrag  float64 // linear bottom drag (1/s) on the deepest wet level
	ABEps    float64 // Adams-Bashforth stabilising offset
	EOS      eos.EOS
	// ImplicitConvection enables the convective-adjustment mixing pass.
	ImplicitConvection bool
}

// Validate sanity-checks the parameters.
func (p *Params) Validate() error {
	if p.Dt <= 0 {
		return fmt.Errorf("kernel: Dt = %g", p.Dt)
	}
	if p.EOS == nil {
		return fmt.Errorf("kernel: nil EOS")
	}
	if p.AhMom < 0 || p.KhTracer < 0 || p.AvMom < 0 || p.KvTracer < 0 {
		return fmt.Errorf("kernel: negative mixing coefficient")
	}
	return nil
}

// Counters accumulates floating-point operation counts, split by model
// phase as the performance model requires.  The optional charge hooks
// let a driver convert flops to simulated processor time at the
// measured phase rates (Fps, Fds of Fig. 11) at the same granularity
// as the real machine — between communication points.
type Counters struct {
	PS int64 // flops in the prognostic step
	DS int64 // flops in the diagnostic (solver) step

	ChargePS func(flops int64)
	ChargeDS func(flops int64)

	// TimePS/TimeDS convert a flop count into modeled processor time
	// at the phase rates (the same conversion the charge hooks use).
	// The parallel driver needs them to charge an offloaded phase's
	// cost *up front*: a phase handed to the worker pool must advance
	// the virtual clock by a duration fixed at submission time.
	TimePS func(flops int64) units.Time
	TimeDS func(flops int64) units.Time
}

// AddPS records prognostic-step work.
func (c *Counters) AddPS(f int64) {
	c.PS += f
	if c.ChargePS != nil {
		c.ChargePS(f)
	}
}

// AddDS records diagnostic-step work.
func (c *Counters) AddDS(f int64) {
	c.DS += f
	if c.ChargeDS != nil {
		c.ChargeDS(f)
	}
}

// SuspendCharges detaches the charge hooks around an offloaded compute
// phase whose time is charged up front (comm.Endpoint.Exec): charging
// from inside the phase would advance virtual time off the baton.
// Flop accumulation continues unchanged.  Returns the hooks for
// RestoreCharges.
func (c *Counters) SuspendCharges() (ps, ds func(int64)) {
	ps, ds = c.ChargePS, c.ChargeDS
	c.ChargePS, c.ChargeDS = nil, nil
	return ps, ds
}

// RestoreCharges reattaches hooks detached by SuspendCharges.
func (c *Counters) RestoreCharges(ps, ds func(int64)) {
	c.ChargePS, c.ChargeDS = ps, ds
}

// Forcing adds external tendencies (wind stress, heating, the
// atmospheric physics package) into the current G buffers.  AddingNil
// is allowed: a nil Forcing means an unforced fluid.
type Forcing interface {
	AddTendencies(g *grid.Local, s *State, p *Params, c *Counters)
}

// The *Ops helpers below are the analytic flop counts of the
// state-independent sweeps.  Each kernel accounts exactly its helper's
// value, and the parallel driver evaluates the same helper *before*
// running the kernel to fix the phase's modeled duration at submission
// time.  Data-dependent routines (ConvectiveAdjust, Forcing
// implementations with conditional terms) deliberately have no helper:
// their cost is only known after execution, so they stay on the baton.

// ComputeGTracersOps returns ComputeGTracers' flop count:
// ~96 flops per swept cell for the twelve face-flux evaluations plus
// the volume divisions (hand count of the loop body).
func ComputeGTracersOps(g *grid.Local) int64 {
	m := Halo - 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m)) * 96
}

// StepTracersOps returns StepTracers' flop count.
func StepTracersOps(g *grid.Local) int64 {
	m := Halo - 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m)) * 10
}

// HydrostaticOps returns Hydrostatic's flop count.
func HydrostaticOps(g *grid.Local, p *Params) int64 {
	m := Halo - 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m)) * int64(4+p.EOS.FlopsPerCell())
}

// ComputeGMomentumOps returns ComputeGMomentum's flop count.
func ComputeGMomentumOps(g *grid.Local) int64 {
	m := 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m+1)) * 110
}

// StepMomentumOps returns StepMomentum's flop count.
func StepMomentumOps(g *grid.Local) int64 {
	m := 1
	return int64(g.NZ*(g.NY+2*m)*(g.NX+2*m+1)) * 16
}

// ContinuityOps returns Continuity's flop count.
func ContinuityOps(g *grid.Local) int64 {
	return int64(g.NZ*g.NY*g.NX) * 12
}

// abCoeffs returns the Adams-Bashforth-2 weights; the first step falls
// back to forward Euler.
func (s *State) abCoeffs(eps float64) (aNow, aPrev float64) {
	if s.firstStep {
		return 1, 0
	}
	return 1.5 + eps, -(0.5 + eps)
}

// ComputeGTracers evaluates advective and diffusive tendencies for
// theta and salt on the overcomputation margin [-2, n+2).
func ComputeGTracers(g *grid.Local, s *State, p *Params, c *Counters) {
	m := Halo - 1 // stencil reaches one further; halo is 3
	gth, gs := s.gth[s.cur], s.gs[s.cur]
	nz := g.NZ
	for k := 0; k < nz; k++ {
		dz := g.DZ[k]
		for j := -m; j < g.NY+m; j++ {
			dx, dy := g.DXC(j), g.DYC(j)
			for i := -m; i < g.NX+m; i++ {
				hc := g.HFacC.At(i, j, k)
				if hc == 0 {
					gth.Set(i, j, k, 0)
					gs.Set(i, j, k, 0)
					continue
				}
				vol := dx * dy * dz * hc
				// Horizontal advective + diffusive fluxes on the four
				// side faces (flux form: conservative).
				conv := 0.0
				convS := 0.0
				// West face of cell i and of cell i+1 (east face).
				for _, f := range [2]struct {
					ii, jj int
					sign   float64
					u      float64
					area   float64
					length float64
				}{
					{i, j, 1, s.U.At(i, j, k), dy * dz * g.HFacW.At(i, j, k), dx},
					{i + 1, j, -1, s.U.At(i+1, j, k), dy * dz * g.HFacW.At(i+1, j, k), dx},
				} {
					thFace := 0.5 * (s.Theta.At(f.ii-1, j, k) + s.Theta.At(f.ii, j, k))
					sFace := 0.5 * (s.Salt.At(f.ii-1, j, k) + s.Salt.At(f.ii, j, k))
					dTh := (s.Theta.At(f.ii, j, k) - s.Theta.At(f.ii-1, j, k)) / f.length
					dS := (s.Salt.At(f.ii, j, k) - s.Salt.At(f.ii-1, j, k)) / f.length
					conv += f.sign * f.area * (f.u*thFace - p.KhTracer*dTh)
					convS += f.sign * f.area * (f.u*sFace - p.KhTracer*dS)
				}
				for _, f := range [2]struct {
					jj     int
					sign   float64
					v      float64
					area   float64
					length float64
				}{
					{j, 1, s.V.At(i, j, k), g.DXS(j) * dz * g.HFacS.At(i, j, k), dy},
					{j + 1, -1, s.V.At(i, j+1, k), g.DXS(j+1) * dz * g.HFacS.At(i, j+1, k), dy},
				} {
					thFace := 0.5 * (s.Theta.At(i, f.jj-1, k) + s.Theta.At(i, f.jj, k))
					sFace := 0.5 * (s.Salt.At(i, f.jj-1, k) + s.Salt.At(i, f.jj, k))
					dTh := (s.Theta.At(i, f.jj, k) - s.Theta.At(i, f.jj-1, k)) / f.length
					dS := (s.Salt.At(i, f.jj, k) - s.Salt.At(i, f.jj-1, k)) / f.length
					conv += f.sign * f.area * (f.v*thFace - p.KhTracer*dTh)
					convS += f.sign * f.area * (f.v*sFace - p.KhTracer*dS)
				}
				// Vertical advection + diffusion across the top and
				// bottom faces; w lives on top faces, w(k=0) = 0.
				area := dx * dy
				if k > 0 && g.HFacC.At(i, j, k-1) > 0 {
					w := s.W.At(i, j, k)
					thF := 0.5 * (s.Theta.At(i, j, k-1) + s.Theta.At(i, j, k))
					sF := 0.5 * (s.Salt.At(i, j, k-1) + s.Salt.At(i, j, k))
					dzF := 0.5 * (g.DZ[k-1] + g.DZ[k])
					dTh := (s.Theta.At(i, j, k) - s.Theta.At(i, j, k-1)) / dzF
					dS := (s.Salt.At(i, j, k) - s.Salt.At(i, j, k-1)) / dzF
					conv += area * (w*thF - p.KvTracer*dTh)
					convS += area * (w*sF - p.KvTracer*dS)
				}
				if k < nz-1 && g.HFacC.At(i, j, k+1) > 0 {
					w := s.W.At(i, j, k+1)
					thF := 0.5 * (s.Theta.At(i, j, k) + s.Theta.At(i, j, k+1))
					sF := 0.5 * (s.Salt.At(i, j, k) + s.Salt.At(i, j, k+1))
					dzF := 0.5 * (g.DZ[k] + g.DZ[k+1])
					dTh := (s.Theta.At(i, j, k+1) - s.Theta.At(i, j, k)) / dzF
					dS := (s.Salt.At(i, j, k+1) - s.Salt.At(i, j, k)) / dzF
					conv -= area * (w*thF - p.KvTracer*dTh)
					convS -= area * (w*sF - p.KvTracer*dS)
				}
				gth.Set(i, j, k, conv/vol)
				gs.Set(i, j, k, convS/vol)
			}
		}
	}
	c.AddPS(ComputeGTracersOps(g))
}

// StepTracers applies AB2 extrapolation and advances theta and salt on
// the margin [-2, n+2).
func StepTracers(g *grid.Local, s *State, p *Params, c *Counters) {
	m := Halo - 1
	aNow, aPrev := s.abCoeffs(p.ABEps)
	now, prev := s.cur, 1-s.cur
	for k := 0; k < g.NZ; k++ {
		for j := -m; j < g.NY+m; j++ {
			for i := -m; i < g.NX+m; i++ {
				if g.HFacC.At(i, j, k) == 0 {
					continue
				}
				s.Theta.Add(i, j, k, p.Dt*(aNow*s.gth[now].At(i, j, k)+aPrev*s.gth[prev].At(i, j, k)))
				s.Salt.Add(i, j, k, p.Dt*(aNow*s.gs[now].At(i, j, k)+aPrev*s.gs[prev].At(i, j, k)))
			}
		}
	}
	c.AddPS(StepTracersOps(g))
}

// Hydrostatic integrates buoyancy downward into the hydrostatic
// pressure potential phy (paper eq. 3 context): phy(k) is the pressure
// anomaly at the centre of level k per unit reference density.
func Hydrostatic(g *grid.Local, s *State, p *Params, c *Counters) {
	m := Halo - 1
	for j := -m; j < g.NY+m; j++ {
		for i := -m; i < g.NX+m; i++ {
			acc := 0.0
			for k := 0; k < g.NZ; k++ {
				if g.HFacC.At(i, j, k) == 0 {
					s.Phy.Set(i, j, k, acc)
					continue
				}
				b := p.EOS.Buoyancy(s.Theta.At(i, j, k), s.Salt.At(i, j, k), k)
				half := 0.5 * g.DZ[k] * b
				acc -= half // buoyant fluid lowers pressure below it
				s.Phy.Set(i, j, k, acc)
				acc -= half
			}
		}
	}
	c.AddPS(HydrostaticOps(g, p))
}

// ComputeGMomentum evaluates the velocity tendencies on margin
// [-1, n+1): advection, Coriolis, lateral and vertical friction and
// bottom drag.  The pressure gradients are applied in StepMomentum, as
// in eq. (1) of the paper where grad(p) stands apart from G.
func ComputeGMomentum(g *grid.Local, s *State, p *Params, c *Counters) {
	m := 1
	gu, gv := s.gu[s.cur], s.gv[s.cur]
	nz := g.NZ
	for k := 0; k < nz; k++ {
		for j := -m; j < g.NY+m; j++ {
			dx, dy := g.DXC(j), g.DYC(j)
			f := g.F(j)
			for i := -m; i < g.NX+m+1; i++ { // faces up to nx+m
				// ---- u tendency at the west face (i,j,k) ----
				if g.HFacW.At(i, j, k) == 0 {
					gu.Set(i, j, k, 0)
				} else {
					u := s.U.At(i, j, k)
					vBar := 0.25 * (s.V.At(i-1, j, k) + s.V.At(i, j, k) + s.V.At(i-1, j+1, k) + s.V.At(i, j+1, k))
					dudx := (s.U.At(i+1, j, k) - s.U.At(i-1, j, k)) / (2 * dx)
					dudy := (s.U.At(i, j+1, k) - s.U.At(i, j-1, k)) / (2 * dy)
					adv := u*dudx + vBar*dudy
					if nz > 1 {
						wBar := 0.0
						var dudz float64
						switch {
						case k == 0:
							wBar = 0.5 * (s.W.At(i-1, j, 1) + s.W.At(i, j, 1))
							dudz = (s.U.At(i, j, 1) - u) / (0.5 * (g.DZ[0] + g.DZ[1]))
						case k == nz-1:
							wBar = 0.5 * (s.W.At(i-1, j, k) + s.W.At(i, j, k))
							dudz = (u - s.U.At(i, j, k-1)) / (0.5 * (g.DZ[k-1] + g.DZ[k]))
						default:
							wBar = 0.25 * (s.W.At(i-1, j, k) + s.W.At(i, j, k) + s.W.At(i-1, j, k+1) + s.W.At(i, j, k+1))
							dudz = (s.U.At(i, j, k+1) - s.U.At(i, j, k-1)) / (g.DZ[k] + 0.5*(g.DZ[maxInt(k-1, 0)]+g.DZ[minInt(k+1, nz-1)]))
						}
						adv += wBar * dudz
					}
					visc := p.AhMom * ((s.U.At(i+1, j, k)-2*u+s.U.At(i-1, j, k))/(dx*dx) +
						(s.U.At(i, j+1, k)-2*u+s.U.At(i, j-1, k))/(dy*dy))
					if nz > 1 {
						visc += vertLap(s.U, g, i, j, k, p.AvMom)
					}
					tend := -adv + f*vBar + visc
					if p.BotDrag > 0 && isBottom(g, i, j, k) {
						tend -= p.BotDrag * u
					}
					gu.Set(i, j, k, tend)
				}
				// ---- v tendency at the south face (i,j,k) ----
				if g.HFacS.At(i, j, k) == 0 {
					gv.Set(i, j, k, 0)
					continue
				}
				v := s.V.At(i, j, k)
				uBar := 0.25 * (s.U.At(i, j-1, k) + s.U.At(i+1, j-1, k) + s.U.At(i, j, k) + s.U.At(i+1, j, k))
				dvdx := (s.V.At(i+1, j, k) - s.V.At(i-1, j, k)) / (2 * dx)
				dvdy := (s.V.At(i, j+1, k) - s.V.At(i, j-1, k)) / (2 * dy)
				adv := uBar*dvdx + v*dvdy
				if nz > 1 {
					wBar := 0.0
					var dvdz float64
					switch {
					case k == 0:
						wBar = 0.5 * (s.W.At(i, j-1, 1) + s.W.At(i, j, 1))
						dvdz = (s.V.At(i, j, 1) - v) / (0.5 * (g.DZ[0] + g.DZ[1]))
					case k == nz-1:
						wBar = 0.5 * (s.W.At(i, j-1, k) + s.W.At(i, j, k))
						dvdz = (v - s.V.At(i, j, k-1)) / (0.5 * (g.DZ[k-1] + g.DZ[k]))
					default:
						wBar = 0.25 * (s.W.At(i, j-1, k) + s.W.At(i, j, k) + s.W.At(i, j-1, k+1) + s.W.At(i, j, k+1))
						dvdz = (s.V.At(i, j, k+1) - s.V.At(i, j, k-1)) / (g.DZ[k] + 0.5*(g.DZ[maxInt(k-1, 0)]+g.DZ[minInt(k+1, nz-1)]))
					}
					adv += wBar * dvdz
				}
				visc := p.AhMom * ((s.V.At(i+1, j, k)-2*v+s.V.At(i-1, j, k))/(dx*dx) +
					(s.V.At(i, j+1, k)-2*v+s.V.At(i, j-1, k))/(dy*dy))
				if nz > 1 {
					visc += vertLap(s.V, g, i, j, k, p.AvMom)
				}
				tend := -adv - f*uBar + visc
				if p.BotDrag > 0 && isBottom(g, i, j, k) {
					tend -= p.BotDrag * v
				}
				gv.Set(i, j, k, tend)
			}
		}
	}
	c.AddPS(ComputeGMomentumOps(g))
}

// vertLap is the vertical friction term with free-slip at the top and
// bottom boundaries.
func vertLap(f *field.F3, g *grid.Local, i, j, k int, av float64) float64 {
	if av == 0 {
		return 0
	}
	nz := g.NZ
	up, dn := 0.0, 0.0
	if k > 0 {
		up = (f.At(i, j, k-1) - f.At(i, j, k)) / (0.5 * (g.DZ[k-1] + g.DZ[k]))
	}
	if k < nz-1 {
		dn = (f.At(i, j, k) - f.At(i, j, k+1)) / (0.5 * (g.DZ[k] + g.DZ[k+1]))
	}
	return av * (up - dn) / g.DZ[k]
}

// isBottom reports whether (i,j,k) is the deepest wet cell of its
// column.
func isBottom(g *grid.Local, i, j, k int) bool {
	if g.HFacC.At(i, j, k) == 0 {
		return false
	}
	return k == g.NZ-1 || g.HFacC.At(i, j, k+1) == 0
}

// StepMomentum applies AB2 to the momentum tendencies and adds the
// hydrostatic pressure gradient, producing the provisional velocities
// u*, v* (in place) that the DS phase projects.  Faces up to index n
// inclusive are updated so tile-edge divergences are complete.
func StepMomentum(g *grid.Local, s *State, p *Params, c *Counters) {
	m := 1
	aNow, aPrev := s.abCoeffs(p.ABEps)
	now, prev := s.cur, 1-s.cur
	for k := 0; k < g.NZ; k++ {
		for j := -m; j < g.NY+m; j++ {
			dx, dy := g.DXC(j), g.DYC(j)
			for i := -m; i < g.NX+m+1; i++ {
				if g.HFacW.At(i, j, k) > 0 {
					gStar := aNow*s.gu[now].At(i, j, k) + aPrev*s.gu[prev].At(i, j, k)
					dpdx := (s.Phy.At(i, j, k) - s.Phy.At(i-1, j, k)) / dx
					s.U.Add(i, j, k, p.Dt*(gStar-dpdx))
				} else {
					s.U.Set(i, j, k, 0)
				}
				if g.HFacS.At(i, j, k) > 0 {
					gStar := aNow*s.gv[now].At(i, j, k) + aPrev*s.gv[prev].At(i, j, k)
					dpdy := (s.Phy.At(i, j, k) - s.Phy.At(i, j-1, k)) / dy
					s.V.Add(i, j, k, p.Dt*(gStar-dpdy))
				} else {
					s.V.Set(i, j, k, 0)
				}
			}
		}
	}
	c.AddPS(StepMomentumOps(g))
}

// Continuity diagnoses w from the non-divergence constraint (paper
// eq. 2), integrating the horizontal divergence downward from the
// rigid lid (w = 0 at k = 0).
func Continuity(g *grid.Local, s *State, c *Counters) {
	for j := 0; j < g.NY; j++ {
		dx, dy := g.DXC(j), g.DYC(j)
		area := dx * dy
		for i := 0; i < g.NX; i++ {
			wFace := 0.0
			s.W.Set(i, j, 0, 0)
			for k := 0; k < g.NZ; k++ {
				div := dy*g.DZ[k]*(s.U.At(i+1, j, k)*g.HFacW.At(i+1, j, k)-s.U.At(i, j, k)*g.HFacW.At(i, j, k)) +
					g.DZ[k]*(g.DXS(j+1)*s.V.At(i, j+1, k)*g.HFacS.At(i, j+1, k)-g.DXS(j)*s.V.At(i, j, k)*g.HFacS.At(i, j, k))
				// With k increasing downward and w positive in +k, the
				// cell's mass balance is w(k+1) = w(k) - outflux/area.
				wFace -= div / area
				if k < g.NZ-1 {
					s.W.Set(i, j, k+1, wFace)
				}
			}
		}
	}
	c.AddPS(ContinuityOps(g))
}

// ConvectiveAdjust removes static instability by mixing adjacent
// levels where buoyancy increases downward, sweeping each column until
// stable.  This stands in for the convection scheme of the paper's
// intermediate-complexity physics.
func ConvectiveAdjust(g *grid.Local, s *State, p *Params, c *Counters) {
	if !p.ImplicitConvection {
		return
	}
	m := Halo - 1
	var ops int64
	unstable := func(i, j, ka, kb int) bool {
		ops += int64(2*p.EOS.FlopsPerCell()) + 1
		ba := p.EOS.Buoyancy(s.Theta.At(i, j, ka), s.Salt.At(i, j, ka), ka)
		bb := p.EOS.Buoyancy(s.Theta.At(i, j, kb), s.Salt.At(i, j, kb), kb)
		return bb > ba
	}
	// mixRegion homogenises the tracer pair over [lo, hi], volume
	// weighted — the whole region becomes exactly uniform, so a mixed
	// block is internally stable and the scheme terminates.
	mixRegion := func(i, j, lo, hi int) {
		var wSum, tSum, sSum float64
		for k := lo; k <= hi; k++ {
			w := g.DZ[k] * g.HFacC.At(i, j, k)
			wSum += w
			tSum += w * s.Theta.At(i, j, k)
			sSum += w * s.Salt.At(i, j, k)
		}
		tm, sm := tSum/wSum, sSum/wSum
		for k := lo; k <= hi; k++ {
			s.Theta.Set(i, j, k, tm)
			s.Salt.Set(i, j, k, sm)
		}
		ops += int64(hi-lo+1) * 8
	}
	for j := -m; j < g.NY+m; j++ {
		for i := -m; i < g.NX+m; i++ {
			for k := 0; k < g.NZ-1; {
				if g.HFacC.At(i, j, k) == 0 || g.HFacC.At(i, j, k+1) == 0 {
					k++
					continue
				}
				if !unstable(i, j, k, k+1) {
					k++
					continue
				}
				// Grow the mixed region upward until the column above
				// it is stable (or land), then continue below it.
				lo, hi := k, k+1
				mixRegion(i, j, lo, hi)
				for lo > 0 && g.HFacC.At(i, j, lo-1) > 0 && unstable(i, j, lo-1, lo) {
					lo--
					mixRegion(i, j, lo, hi)
				}
				k = hi
			}
		}
	}
	c.AddPS(ops)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
