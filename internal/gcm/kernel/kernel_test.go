package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"hyades/internal/gcm/eos"
	"hyades/internal/gcm/grid"
)

func testGrid(t *testing.T, nx, ny, nz int) *grid.Local {
	t.Helper()
	dz := make([]float64, nz)
	for k := range dz {
		dz[k] = 200
	}
	g, err := grid.NewLocal(grid.Config{
		NX: nx, NY: ny, NZ: nz, DX: 2e4, DY: 2e4, Lat0: 45, DZ: dz,
	}, 0, 0, nx, ny, Halo)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testParams() *Params {
	return &Params{
		Dt: 600, AhMom: 100, KhTracer: 50, AvMom: 1e-3, KvTracer: 1e-5,
		ABEps: 0.01, EOS: eos.DefaultOcean(), ImplicitConvection: true,
	}
}

func TestHydrostaticUniformBuoyancy(t *testing.T) {
	g := testGrid(t, 6, 6, 4)
	s := NewState(6, 6, 4)
	p := testParams()
	// Uniform theta at the EOS reference: zero buoyancy, zero pressure.
	s.Theta.Fill(10)
	s.Salt.Fill(35)
	var c Counters
	Hydrostatic(g, s, p, &c)
	for k := 0; k < 4; k++ {
		if ph := s.Phy.At(3, 3, k); math.Abs(ph) > 1e-12 {
			t.Fatalf("phy(k=%d) = %g for neutral fluid", k, ph)
		}
	}
	// Warm (buoyant) column: pressure anomaly negative, growing with
	// depth.
	s.Theta.Fill(20)
	Hydrostatic(g, s, p, &c)
	prev := 0.0
	for k := 0; k < 4; k++ {
		ph := s.Phy.At(3, 3, k)
		if ph >= prev {
			t.Fatalf("phy not decreasing with depth in a warm column: phy(%d)=%g prev=%g", k, ph, prev)
		}
		prev = ph
	}
	if c.PS == 0 {
		t.Fatal("no flops counted")
	}
}

func TestHydrostaticMatchesAnalytic(t *testing.T) {
	g := testGrid(t, 4, 4, 3)
	s := NewState(4, 4, 3)
	p := testParams()
	s.Theta.Fill(15) // 5 K above reference
	s.Salt.Fill(35)
	var c Counters
	Hydrostatic(g, s, p, &c)
	b := p.EOS.Buoyancy(15, 35, 0)
	// phy at centre of level k: -b * (k+0.5)*dz
	for k := 0; k < 3; k++ {
		want := -b * (float64(k) + 0.5) * 200
		if got := s.Phy.At(1, 1, k); math.Abs(got-want) > 1e-9 {
			t.Fatalf("phy(%d) = %g, want %g", k, got, want)
		}
	}
}

func TestStepTracersABWeights(t *testing.T) {
	g := testGrid(t, 4, 4, 1)
	s := NewState(4, 4, 1)
	p := testParams()
	// Inject known tendencies directly.
	s.GTh().Fill(2) // current level
	StepTracers(g, s, p, &c0)
	// First step: forward Euler.
	if got := s.Theta.At(1, 1, 0); math.Abs(got-2*600) > 1e-9 {
		t.Fatalf("Euler step = %g, want 1200", got)
	}
	s.Rotate()
	s.GTh().Fill(4)
	StepTracers(g, s, p, &c0)
	// AB2: dt*((1.5+eps)*4 - (0.5+eps)*2)
	want := 1200 + 600*((1.5+0.01)*4-(0.5+0.01)*2)
	if got := s.Theta.At(1, 1, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AB2 step = %g, want %g", got, want)
	}
}

var c0 Counters

func TestContinuityClosedColumn(t *testing.T) {
	g := testGrid(t, 6, 6, 3)
	s := NewState(6, 6, 3)
	var c Counters
	// A discretely divergence-free flow from a corner streamfunction
	// that vanishes at the walls: u = dpsi/dy, v = -dpsi/dx (constant
	// metrics make the discrete divergence telescope to zero).
	psi := func(i, j int) float64 {
		if i <= 0 || i >= 6 || j <= 0 || j >= 6 {
			return 0
		}
		return math.Sin(float64(i)) * math.Cos(float64(j)*0.7)
	}
	for k := 0; k < 3; k++ {
		for j := -Halo; j < 6+Halo; j++ {
			for i := -Halo; i < 6+Halo; i++ {
				s.U.Set(i, j, k, psi(i, j+1)-psi(i, j))
				s.V.Set(i, j, k, -(psi(i+1, j) - psi(i, j)))
			}
		}
	}
	Continuity(g, s, &c)
	for k := 0; k < 3; k++ {
		for j := 0; j < 6; j++ {
			for i := 0; i < 6; i++ {
				if w := s.W.At(i, j, k); math.Abs(w) > 1e-15 {
					t.Fatalf("w(%d,%d,%d) = %g for non-divergent flow", i, j, k, w)
				}
			}
		}
	}
}

func TestContinuityDivergentFlow(t *testing.T) {
	g := testGrid(t, 6, 6, 2)
	s := NewState(6, 6, 2)
	var c Counters
	// Level 0: converging flow (du/dx < 0) forces downwelling w > 0 at
	// the interface below.
	for j := -Halo; j < 6+Halo; j++ {
		for i := -Halo; i < 6+Halo; i++ {
			s.U.Set(i, j, 0, -float64(i)*0.01)
		}
	}
	Continuity(g, s, &c)
	if w := s.W.At(3, 3, 1); w <= 0 {
		t.Fatalf("convergent surface level should downwell; w = %g", w)
	}
}

func TestConvectiveAdjustStabilizes(t *testing.T) {
	g := testGrid(t, 4, 4, 4)
	s := NewState(4, 4, 4)
	p := testParams()
	// Cold (dense) water over warm: statically unstable.
	for k := 0; k < 4; k++ {
		s.Salt.Fill(35)
		for j := -2; j < 6; j++ {
			for i := -2; i < 6; i++ {
				s.Theta.Set(i, j, k, float64(k)) // warmer below
			}
		}
	}
	var c Counters
	ConvectiveAdjust(g, s, p, &c)
	// Every column must now be stably stratified: buoyancy
	// non-increasing with depth.
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			for k := 0; k < 3; k++ {
				b0 := p.EOS.Buoyancy(s.Theta.At(i, j, k), 35, k)
				b1 := p.EOS.Buoyancy(s.Theta.At(i, j, k+1), 35, k+1)
				if b1 > b0+1e-12 {
					t.Fatalf("column (%d,%d) still unstable at k=%d", i, j, k)
				}
			}
		}
	}
	// Heat is conserved by the mixing (uniform dz).
	sum := 0.0
	for k := 0; k < 4; k++ {
		sum += s.Theta.At(1, 1, k)
	}
	if math.Abs(sum-(0+1+2+3)) > 1e-9 {
		t.Fatalf("column heat changed: %g", sum)
	}
}

func TestConvectiveAdjustDisabledByFlag(t *testing.T) {
	g := testGrid(t, 4, 4, 2)
	s := NewState(4, 4, 2)
	p := testParams()
	p.ImplicitConvection = false
	s.Theta.Set(1, 1, 0, 0)
	s.Theta.Set(1, 1, 1, 5) // unstable
	var c Counters
	ConvectiveAdjust(g, s, p, &c)
	if s.Theta.At(1, 1, 1) != 5 {
		t.Fatal("adjustment ran despite the flag")
	}
}

func TestMomentumCoriolisOnly(t *testing.T) {
	// A uniform v field on an f-plane, no gradients: Gu = +f*v, Gv ~ 0
	// (uBar = 0).
	g := testGrid(t, 6, 6, 1)
	s := NewState(6, 6, 1)
	p := testParams()
	p.AhMom, p.AvMom = 0, 0
	s.V.Fill(0.5)
	s.Theta.Fill(10)
	s.Salt.Fill(35)
	var c Counters
	ComputeGMomentum(g, s, p, &c)
	f := g.F(3)
	if got := s.GU().At(3, 3, 0); math.Abs(got-f*0.5) > 1e-12 {
		t.Fatalf("Gu = %g, want f*v = %g", got, f*0.5)
	}
	if got := s.GV().At(3, 3, 0); math.Abs(got) > 1e-12 {
		t.Fatalf("Gv = %g, want 0", got)
	}
}

func TestTracerTendencyZeroForUniformField(t *testing.T) {
	// Uniform tracer in any non-divergent flow has zero advective
	// tendency; diffusion is zero too.
	f := func(u0, v0 float64) bool {
		g := gTest
		s := NewState(6, 6, 2)
		s.Theta.Fill(12)
		s.Salt.Fill(34)
		s.U.Fill(math.Mod(u0, 1))
		s.V.Fill(math.Mod(v0, 1))
		p := testParams()
		var c Counters
		ComputeGTracers(g, s, p, &c)
		for j := 0; j < 6; j++ {
			for i := 0; i < 6; i++ {
				if math.Abs(s.GTh().At(i, j, 0)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

var gTest *grid.Local

func TestMain(m *testing.M) {
	dz := []float64{200, 200}
	gTest, _ = grid.NewLocal(grid.Config{
		NX: 6, NY: 6, NZ: 2, DX: 2e4, DY: 2e4, Lat0: 45, DZ: dz,
	}, 0, 0, 6, 6, Halo)
	m.Run()
}

func TestParamsValidate(t *testing.T) {
	p := testParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Dt = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero Dt accepted")
	}
	p = testParams()
	p.EOS = nil
	if err := p.Validate(); err == nil {
		t.Fatal("nil EOS accepted")
	}
	p = testParams()
	p.KhTracer = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative diffusivity accepted")
	}
}

func TestCountersHooks(t *testing.T) {
	var charged int64
	c := Counters{ChargePS: func(f int64) { charged += f }}
	c.AddPS(100)
	c.AddDS(50)
	if c.PS != 100 || c.DS != 50 || charged != 100 {
		t.Fatalf("counters: %+v charged=%d", c, charged)
	}
}
