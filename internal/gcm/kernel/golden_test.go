package kernel

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hyades/internal/gcm/eos"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
)

// The golden-checksum regression suite pins every kernel's output
// bit-for-bit.  The fixtures in testdata/golden.json were recorded from
// the pre-flat-row kernels (the seed tree); any rewrite of the sweeps
// must reproduce the exact same IEEE-754 bit patterns, including the
// overcomputation margin written into the halo region.  Regenerate
// (only for a deliberate numerics change) with:
//
//	go test ./internal/gcm/kernel -run TestGoldenChecksums -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current kernels")

// hashField returns the SHA-256 of a field's full backing array (halo
// included) as raw IEEE-754 bit patterns.
func hashField(f interface{ Raw() []float64 }) string {
	h := sha256.New()
	var w [8]byte
	for _, v := range f.Raw() {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		h.Write(w[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenGrid builds the reference tile: topography with a land block, a
// depth ramp (shaved bottom cells) and unequal level thicknesses, so
// every masking branch of the sweeps is exercised.
func goldenGrid(t *testing.T) *grid.Local {
	t.Helper()
	g, err := grid.NewLocal(grid.Config{
		NX: 10, NY: 8, NZ: 4, DX: 2e4, DY: 2.4e4, Lat0: 40,
		DZ: []float64{150, 250, 400, 700},
		DepthFrac: func(x, y float64) float64 {
			if x > 0.55 && x < 0.8 && y > 0.3 && y < 0.7 {
				return 0 // island
			}
			return 0.35 + 0.65*x*(1-0.3*y)
		},
	}, 0, 0, 10, 8, Halo)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// goldenState fills a state (halo included) with a deterministic
// transcendental pattern: no zeros, no symmetry, distinct per field.
func goldenState(nx, ny, nz int) *State {
	s := NewState(nx, ny, nz)
	fill := func(f *field.F3, a, b, c, off, amp float64) {
		for k := 0; k < nz; k++ {
			for j := -Halo; j < ny+Halo; j++ {
				for i := -Halo; i < nx+Halo; i++ {
					f.Set(i, j, k, off+amp*math.Sin(a*float64(i)+b*float64(j)+c*float64(k)))
				}
			}
		}
	}
	fill(s.U, 0.31, 0.57, 0.83, 0.02, 0.11)
	fill(s.V, 0.43, 0.29, 0.71, -0.01, 0.09)
	fill(s.W, 0.17, 0.61, 0.37, 0, 1e-4)
	fill(s.Theta, 0.23, 0.41, 0.53, 12, 3)
	fill(s.Salt, 0.37, 0.19, 0.47, 35, 0.4)
	// A weak depth gradient keeps most columns stable while leaving a
	// few statically unstable, so ConvectiveAdjust mixes some but not
	// all columns.
	for k := 0; k < nz; k++ {
		for j := -Halo; j < ny+Halo; j++ {
			for i := -Halo; i < nx+Halo; i++ {
				s.Theta.Add(i, j, k, -0.8*float64(k))
			}
		}
	}
	return s
}

func goldenParams() *Params {
	return &Params{
		Dt: 600, AhMom: 120, KhTracer: 60, AvMom: 2e-3, KvTracer: 3e-5,
		BotDrag: 1e-5, ABEps: 0.01, EOS: eos.DefaultOcean(),
		ImplicitConvection: true,
	}
}

func TestGoldenChecksums(t *testing.T) {
	got := map[string]string{}
	g := goldenGrid(t)
	p := goldenParams()

	// Tracer pipeline over three steps: first step takes the forward-
	// Euler branch, later steps the AB2 branch, with the buffers
	// rotating in between.
	{
		s := goldenState(10, 8, 4)
		var c Counters
		for n := 0; n < 3; n++ {
			ComputeGTracers(g, s, p, &c)
			StepTracers(g, s, p, &c)
			ConvectiveAdjust(g, s, p, &c)
			s.Rotate()
		}
		got["tracers/theta"] = hashField(s.Theta)
		got["tracers/salt"] = hashField(s.Salt)
		got["tracers/gth0"] = hashField(s.gth[0])
		got["tracers/gth1"] = hashField(s.gth[1])
		got["tracers/gs0"] = hashField(s.gs[0])
		got["tracers/gs1"] = hashField(s.gs[1])
	}

	// Momentum pipeline over three steps.
	{
		s := goldenState(10, 8, 4)
		var c Counters
		for n := 0; n < 3; n++ {
			Hydrostatic(g, s, p, &c)
			ComputeGMomentum(g, s, p, &c)
			StepMomentum(g, s, p, &c)
			s.Rotate()
		}
		got["momentum/u"] = hashField(s.U)
		got["momentum/v"] = hashField(s.V)
		got["momentum/phy"] = hashField(s.Phy)
		got["momentum/gu0"] = hashField(s.gu[0])
		got["momentum/gu1"] = hashField(s.gu[1])
		got["momentum/gv0"] = hashField(s.gv[0])
		got["momentum/gv1"] = hashField(s.gv[1])
	}

	// Continuity alone.
	{
		s := goldenState(10, 8, 4)
		var c Counters
		Continuity(g, s, &c)
		got["continuity/w"] = hashField(s.W)
	}

	// The full PS sequence, chained for three steps — the strongest
	// pin: any cross-kernel interaction change shows up here.
	{
		s := goldenState(10, 8, 4)
		var c Counters
		for n := 0; n < 3; n++ {
			ComputeGTracers(g, s, p, &c)
			StepTracers(g, s, p, &c)
			ConvectiveAdjust(g, s, p, &c)
			Hydrostatic(g, s, p, &c)
			ComputeGMomentum(g, s, p, &c)
			StepMomentum(g, s, p, &c)
			Continuity(g, s, &c)
			s.Rotate()
		}
		for name, f := range map[string]*field.F3{
			"u": s.U, "v": s.V, "w": s.W, "theta": s.Theta,
			"salt": s.Salt, "phy": s.Phy,
		} {
			got["fullstep/"+name] = hashField(f)
		}
	}

	checkGolden(t, filepath.Join("testdata", "golden.json"), got, *updateGolden)
}

// checkGolden compares got against the committed fixture, or rewrites
// the fixture when -update is set.
func checkGolden(t *testing.T, path string, got map[string]string, update bool) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to record): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: fixture entry %q not produced by the test", path, k)
		} else if g != w {
			t.Errorf("%s: %q = %s, want %s (bit-exact regression)", path, k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new entry %q not in fixture (run -update after a deliberate change)", path, k)
		}
	}
}
