package gcm

import (
	"math"
	"testing"

	"hyades/internal/comm"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
	"hyades/internal/gcm/physics"
	"hyades/internal/gcm/tile"
)

// smallGyre returns a quick test configuration.
func smallGyre(px, py int) Config {
	d := tile.Decomp{NXg: 16, NYg: 16, Px: px, Py: py}
	cfg := GyreConfig(16, 16, 3, d)
	cfg.FpsMFlops = 0 // pure numerics unless a test wants timing
	cfg.FdsMFlops = 0
	return cfg
}

func TestSerialGyreRunsStable(t *testing.T) {
	m, _, err := RunSerial(smallGyre(1, 1), 50)
	if err != nil {
		t.Fatal(err)
	}
	ke := m.TotalKE()
	if math.IsNaN(ke) || math.IsInf(ke, 0) {
		t.Fatalf("KE = %v", ke)
	}
	if ke <= 0 {
		t.Fatalf("no circulation spun up: KE = %g", ke)
	}
	if ke > 1e16 {
		t.Fatalf("KE = %g suggests numerical blow-up", ke)
	}
}

func TestDivergenceFreeAfterProjection(t *testing.T) {
	m, _, err := RunSerial(smallGyre(1, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	// The depth-integrated flow must be non-divergent to solver
	// tolerance after every step's projection.
	div := m.MaxDivergence()
	if div > 1e-10 {
		t.Fatalf("rms depth-integrated divergence %g (want < 1e-10)", div)
	}
}

func TestTracerConservation(t *testing.T) {
	// Closed box, no forcing, no restoring: the volume-integrated
	// tracer must be conserved by the flux-form advection.
	cfg := smallGyre(1, 1)
	cfg.Forcing = nil
	cfg.Init = func(g *grid.Local, s *kernel.State) {
		for k := 0; k < g.NZ; k++ {
			for j := -g.H; j < g.NY+g.H; j++ {
				for i := -g.H; i < g.NX+g.H; i++ {
					s.Theta.Set(i, j, k, 10+math.Sin(float64(i))*math.Cos(float64(j)))
					s.Salt.Set(i, j, k, 35)
					// A rotating initial flow to stir the tracer.
					s.U.Set(i, j, k, 0.05*math.Sin(float64(j)*0.7))
					s.V.Set(i, j, k, 0.05*math.Cos(float64(i)*0.7))
				}
			}
		}
	}
	ep := &comm.Serial{}
	m, err := New(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	before := m.MeanTracer()
	m.Run(30)
	after := m.MeanTracer()
	if rel := math.Abs(after-before) / math.Abs(before); rel > 1e-12 {
		t.Fatalf("tracer mean drifted by %g relative (%.15g -> %.15g)", rel, before, after)
	}
}

func TestSerialVsParallelEquivalence(t *testing.T) {
	// The same configuration must produce (nearly) identical fields on
	// one tile and on a 2x2 decomposition: this exercises halo
	// exchange, overcomputation margins and the distributed solver all
	// at once.  Exact bitwise equality is not expected because the
	// butterfly global sum associates additions differently.
	const steps = 5
	serialCfg := smallGyre(1, 1)
	mSerial, _, err := RunSerial(serialCfg, steps)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := smallGyre(2, 2)
	res, err := RunParallel(4, 1, parCfg, 0, steps)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, m := range res.Models {
		i0, j0 := parCfg.Decomp.Origin(m.EP.Rank())
		for k := 0; k < 3; k++ {
			for j := 0; j < m.G.NY; j++ {
				for i := 0; i < m.G.NX; i++ {
					for _, pair := range [][2]float64{
						{m.S.Theta.At(i, j, k), mSerial.S.Theta.At(i0+i, j0+j, k)},
						{m.S.U.At(i, j, k), mSerial.S.U.At(i0+i, j0+j, k)},
						{m.S.V.At(i, j, k), mSerial.S.V.At(i0+i, j0+j, k)},
					} {
						diff := math.Abs(pair[0] - pair[1])
						scale := math.Max(math.Abs(pair[1]), 1e-3)
						if rel := diff / scale; rel > worst {
							worst = rel
						}
					}
				}
			}
		}
	}
	t.Logf("worst relative serial-vs-parallel deviation after %d steps: %g", steps, worst)
	if worst > 1e-9 {
		t.Fatalf("parallel run diverges from serial: worst relative deviation %g", worst)
	}
}

func TestSolverManufacturedSolution(t *testing.T) {
	// Apply the operator to a known field, then solve back.
	cfg := smallGyre(1, 1)
	ep := &comm.Serial{}
	m, err := New(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	want := field.NewF2(16, 16, 1)
	mean := 0.0
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			want.Set(i, j, math.Sin(float64(i)*0.5)*math.Cos(float64(j)*0.4))
			mean += want.At(i, j)
		}
	}
	// Remove the null-space component (constant) for comparability.
	mean /= 256
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			want.Add(i, j, -mean)
		}
	}
	m.Halo.Update2(want, 1)
	b := field.NewF2(16, 16, 1)
	var c kernel.Counters
	m.Solver.Apply(want, b, &c)
	got := field.NewF2(16, 16, 1)
	iters := m.Solver.Solve(got, b, &c)
	if iters == 0 {
		t.Fatal("solver did no iterations")
	}
	gotMean := 0.0
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			gotMean += got.At(i, j)
		}
	}
	gotMean /= 256
	worst := 0.0
	scale := 0.0
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			diff := math.Abs(got.At(i, j) - gotMean - want.At(i, j))
			if diff > worst {
				worst = diff
			}
			if a := math.Abs(want.At(i, j)); a > scale {
				scale = a
			}
		}
	}
	if worst > 1e-5*scale {
		t.Fatalf("CG solution error %g (scale %g, %d iters)", worst, scale, iters)
	}
}

func TestAtmosphereWithPhysicsStable(t *testing.T) {
	d := tile.Decomp{NXg: 32, NYg: 16, Px: 1, Py: 1, PeriodicX: true}
	cfg := CoarseAtmosphereConfig(d)
	cfg.Grid.NX, cfg.Grid.NY = 32, 16
	cfg.Forcing = physics.New(physics.Default())
	cfg.FpsMFlops, cfg.FdsMFlops = 0, 0
	m, _, err := RunSerial(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	ke := m.TotalKE()
	if math.IsNaN(ke) || ke <= 0 || ke > 1e18 {
		t.Fatalf("atmosphere KE = %g", ke)
	}
	// Physics must have produced meridional temperature structure: the
	// equator warmer than the pole at the surface level.
	k := m.G.NZ - 1
	eq := m.S.Theta.At(5, 8, k)
	pole := m.S.Theta.At(5, 0, k)
	if eq <= pole {
		t.Fatalf("no equator-pole contrast: theta(eq)=%g theta(pole)=%g", eq, pole)
	}
}

func TestCoarseOceanBuilds(t *testing.T) {
	d := tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 4, PeriodicX: true}
	cfg := CoarseOceanConfig(d)
	cfg.Decomp = tile.Decomp{NXg: 128, NYg: 64, Px: 1, Py: 1, PeriodicX: true}
	cfg.FpsMFlops, cfg.FdsMFlops = 0, 0
	ep := &comm.Serial{}
	m, err := New(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	wet := m.G.OceanPoints()
	total := 128 * 64 * 15
	if wet >= total || wet < total/2 {
		t.Fatalf("continental geometry looks wrong: %d of %d cells wet", wet, total)
	}
	m.Run(3)
	if ke := m.TotalKE(); math.IsNaN(ke) {
		t.Fatal("NaN after 3 steps on the production grid")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallGyre(1, 1)
	cfg.Decomp.Px = 3 // 16 not divisible by 3
	if _, err := New(cfg, &comm.Serial{}); err == nil {
		t.Fatal("invalid decomposition accepted")
	}
	cfg = smallGyre(1, 1)
	cfg.Kernel.Dt = -1
	if _, err := New(cfg, &comm.Serial{}); err == nil {
		t.Fatal("negative Dt accepted")
	}
	cfg = smallGyre(1, 1)
	cfg.Grid.NX = 999 // decomp mismatch
	if _, err := New(cfg, &comm.Serial{}); err == nil {
		t.Fatal("grid/decomp mismatch accepted")
	}
}

func TestFlopCountersAdvance(t *testing.T) {
	cfg := smallGyre(1, 1)
	m, _, err := RunSerial(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.C.PS == 0 || m.C.DS == 0 {
		t.Fatalf("flop counters did not advance: PS=%d DS=%d", m.C.PS, m.C.DS)
	}
	perCell := float64(m.C.PS) / float64(2*16*16*3)
	t.Logf("measured Nps ~ %.0f flops/cell/step (paper: 781 atm, 751 ocean)", perCell)
	if perCell < 50 {
		t.Fatalf("implausibly low Nps: %g", perCell)
	}
}

func TestTimedRunChargesVirtualTime(t *testing.T) {
	cfg := smallGyre(1, 1)
	cfg.FpsMFlops, cfg.FdsMFlops = 50, 60
	_, elapsed, err := RunSerial(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time charged")
	}
}
