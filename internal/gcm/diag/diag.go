// Package diag computes the standard circulation diagnostics a
// climate-research user of the model reaches for first: zonal means,
// the meridional overturning streamfunction, and meridional heat
// transport.  These are the quantities behind plates like the paper's
// Fig. 9 and the predictability studies its §5 motivates.
//
// Diagnostics operate on globally gathered level fields (the root rank
// after tile.Halo gathers), paired with a full-domain grid for the
// metric terms.
package diag

import (
	"fmt"

	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
)

// State is a gathered snapshot of the 3-D circulation: one global 2-D
// field per level for each variable (as produced by
// tile.Halo.Gather3Level), plus the full-domain grid.
type State struct {
	G     *grid.Local // built over the whole domain (1x1 decomposition)
	U, V  []*field.F2 // per level
	Theta []*field.F2
}

// Validate checks the snapshot's shape.
func (s *State) Validate() error {
	if s.G == nil {
		return fmt.Errorf("diag: nil grid")
	}
	for name, f := range map[string][]*field.F2{"u": s.U, "v": s.V, "theta": s.Theta} {
		if len(f) != s.G.NZ {
			return fmt.Errorf("diag: %s has %d levels, grid has %d", name, len(f), s.G.NZ)
		}
		for k, l := range f {
			if l.NX != s.G.NX || l.NY != s.G.NY {
				return fmt.Errorf("diag: %s level %d is %dx%d, grid %dx%d", name, k, l.NX, l.NY, s.G.NX, s.G.NY)
			}
		}
	}
	return nil
}

// ZonalMean returns the zonal (along-x) mean of a per-level field set
// over wet cells, as an (NY x NZ) field: element (j, k) is the mean at
// latitude row j, level k.  Dry rows yield zero.
func (s *State) ZonalMean(f []*field.F2) *field.F2 {
	g := s.G
	out := field.NewF2(g.NY, g.NZ, 0)
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			sum, n := 0.0, 0
			for i := 0; i < g.NX; i++ {
				if g.HFacC.At(i, j, k) > 0 {
					sum += f[k].At(i, j)
					n++
				}
			}
			if n > 0 {
				out.Set(j, k, sum/float64(n))
			}
		}
	}
	return out
}

// Overturning returns the meridional overturning streamfunction
// psi(j, k) in Sverdrups (1 Sv = 1e6 m^3/s): the northward transport
// integrated zonally and from the top down to the bottom of level k,
// evaluated at the south face of row j.
func (s *State) Overturning() *field.F2 {
	g := s.G
	out := field.NewF2(g.NY, g.NZ, 0)
	for j := 0; j < g.NY; j++ {
		acc := 0.0
		for k := 0; k < g.NZ; k++ {
			trans := 0.0
			for i := 0; i < g.NX; i++ {
				trans += s.V[k].At(i, j) * g.HFacS.At(i, j, k) * g.DZ[k] * g.DXS(j)
			}
			acc += trans
			out.Set(j, k, acc/1e6)
		}
	}
	return out
}

// HeatTransport returns the northward heat transport across each
// latitude row's south face, in petawatts, using rho0*cp = 4.1e6
// J/(m^3 K) (seawater) and the temperature interpolated to v-points.
func (s *State) HeatTransport() []float64 {
	const rhoCp = 4.1e6
	g := s.G
	out := make([]float64, g.NY)
	for j := 1; j < g.NY; j++ {
		sum := 0.0
		for k := 0; k < g.NZ; k++ {
			for i := 0; i < g.NX; i++ {
				hf := g.HFacS.At(i, j, k)
				if hf == 0 {
					continue
				}
				th := 0.5 * (s.Theta[k].At(i, j-1) + s.Theta[k].At(i, j))
				sum += s.V[k].At(i, j) * th * hf * g.DZ[k] * g.DXS(j)
			}
		}
		out[j] = sum * rhoCp / 1e15
	}
	return out
}

// BarotropicStreamfunction returns psi(i, j) in Sverdrups from the
// depth-integrated zonal flow, integrating from the southern boundary:
// contours of psi trace the gyres of Fig. 9's ocean plate.
func (s *State) BarotropicStreamfunction() *field.F2 {
	g := s.G
	out := field.NewF2(g.NX, g.NY, 0)
	for i := 0; i < g.NX; i++ {
		acc := 0.0
		for j := 0; j < g.NY; j++ {
			ut := 0.0
			for k := 0; k < g.NZ; k++ {
				ut += s.U[k].At(i, j) * g.HFacW.At(i, j, k) * g.DZ[k]
			}
			acc -= ut * g.DYC(j)
			out.Set(i, j, acc/1e6)
		}
	}
	return out
}

// KineticEnergyProfile returns the mean kinetic energy per unit mass
// at each level — a quick stratification-of-activity diagnostic.
func (s *State) KineticEnergyProfile() []float64 {
	g := s.G
	out := make([]float64, g.NZ)
	for k := 0; k < g.NZ; k++ {
		sum, n := 0.0, 0
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				if g.HFacC.At(i, j, k) == 0 {
					continue
				}
				u := 0.5 * (s.U[k].At(i, j) + s.U[k].At(min(i+1, g.NX-1), j))
				v := 0.5 * (s.V[k].At(i, j) + s.V[k].At(i, min(j+1, g.NY-1)))
				sum += 0.5 * (u*u + v*v)
				n++
			}
		}
		if n > 0 {
			out[k] = sum / float64(n)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
