package diag

import (
	"math"
	"testing"

	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
)

// rig builds a flat-bottomed global snapshot with configurable fields.
func rig(t *testing.T, nx, ny, nz int, set func(k int, u, v, th *field.F2)) *State {
	t.Helper()
	dz := make([]float64, nz)
	for k := range dz {
		dz[k] = 500
	}
	g, err := grid.NewLocal(grid.Config{
		NX: nx, NY: ny, NZ: nz, DX: 1e5, DY: 1e5, Lat0: 30, DZ: dz,
	}, 0, 0, nx, ny, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := &State{G: g}
	for k := 0; k < nz; k++ {
		u := field.NewF2(nx, ny, 0)
		v := field.NewF2(nx, ny, 0)
		th := field.NewF2(nx, ny, 0)
		if set != nil {
			set(k, u, v, th)
		}
		s.U = append(s.U, u)
		s.V = append(s.V, v)
		s.Theta = append(s.Theta, th)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidateShapes(t *testing.T) {
	s := rig(t, 8, 6, 2, nil)
	s.U = s.U[:1]
	if err := s.Validate(); err == nil {
		t.Fatal("level-count mismatch accepted")
	}
}

func TestZonalMean(t *testing.T) {
	s := rig(t, 8, 6, 2, func(k int, u, v, th *field.F2) {
		for j := 0; j < 6; j++ {
			for i := 0; i < 8; i++ {
				u.Set(i, j, float64(j)+10*float64(k)) // zonally uniform
			}
		}
	})
	zm := s.ZonalMean(s.U)
	for k := 0; k < 2; k++ {
		for j := 0; j < 6; j++ {
			want := float64(j) + 10*float64(k)
			if got := zm.At(j, k); math.Abs(got-want) > 1e-12 {
				t.Fatalf("zonal mean (%d,%d) = %g, want %g", j, k, got, want)
			}
		}
	}
}

func TestOverturningUniformV(t *testing.T) {
	// v = 0.1 m/s everywhere: psi at level k is cumulative transport
	// 0.1 * nx*dx * dz * (k+1).
	s := rig(t, 8, 6, 3, func(k int, u, v, th *field.F2) {
		v.Fill(0.1)
	})
	psi := s.Overturning()
	for k := 0; k < 3; k++ {
		want := 0.1 * 8 * 1e5 * 500 * float64(k+1) / 1e6
		// Row 0's south face is a wall (HFacS = 0): zero transport.
		if got := psi.At(0, k); got != 0 {
			t.Fatalf("transport through the southern wall: %g", got)
		}
		if got := psi.At(3, k); math.Abs(got-want) > 1e-9 {
			t.Fatalf("psi(3,%d) = %g Sv, want %g", k, got, want)
		}
	}
}

func TestHeatTransportSign(t *testing.T) {
	// Warm water moving north must carry positive heat transport.
	s := rig(t, 8, 6, 2, func(k int, u, v, th *field.F2) {
		v.Fill(0.05)
		th.Fill(15)
	})
	ht := s.HeatTransport()
	if ht[0] != 0 {
		t.Fatalf("wall row transport = %g", ht[0])
	}
	for j := 1; j < 6; j++ {
		if ht[j] <= 0 {
			t.Fatalf("northward warm flow gives non-positive transport at j=%d: %g", j, ht[j])
		}
	}
	// Doubling theta doubles the transport (linearity).
	s2 := rig(t, 8, 6, 2, func(k int, u, v, th *field.F2) {
		v.Fill(0.05)
		th.Fill(30)
	})
	ht2 := s2.HeatTransport()
	if math.Abs(ht2[3]-2*ht[3]) > 1e-12 {
		t.Fatalf("transport not linear in theta: %g vs %g", ht2[3], ht[3])
	}
}

func TestBarotropicStreamfunctionGyre(t *testing.T) {
	// An eastward jet in the middle rows: psi must dip and recover,
	// with the extremum inside the jet band.
	s := rig(t, 10, 9, 1, func(k int, u, v, th *field.F2) {
		for j := 3; j <= 5; j++ {
			for i := 0; i < 10; i++ {
				u.Set(i, j, 0.2)
			}
		}
	})
	psi := s.BarotropicStreamfunction()
	if psi.At(5, 1) != 0 {
		t.Fatalf("psi south of the jet = %g, want 0", psi.At(5, 1))
	}
	if psi.At(5, 4) >= 0 {
		t.Fatalf("eastward jet should give negative psi inside: %g", psi.At(5, 4))
	}
	// North of the jet the cumulative integral is flat.
	if math.Abs(psi.At(5, 8)-psi.At(5, 6)) > 1e-12 {
		t.Fatalf("psi not flat north of the jet")
	}
}

func TestKineticEnergyProfile(t *testing.T) {
	s := rig(t, 6, 6, 3, func(k int, u, v, th *field.F2) {
		u.Fill(float64(k + 1)) // speed grows with depth index
	})
	ke := s.KineticEnergyProfile()
	for k := 0; k < 3; k++ {
		want := 0.5 * float64((k+1)*(k+1))
		if math.Abs(ke[k]-want) > 1e-9 {
			t.Fatalf("KE(%d) = %g, want %g", k, ke[k], want)
		}
	}
}
