package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func flatConfig(nx, ny, nz int) Config {
	dz := make([]float64, nz)
	for k := range dz {
		dz[k] = 100
	}
	return Config{NX: nx, NY: ny, NZ: nz, DX: 1e4, DY: 1e4, Lat0: 45, DZ: dz}
}

func TestValidate(t *testing.T) {
	good := flatConfig(8, 8, 3)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NX: 0, NY: 8, NZ: 1, DX: 1, DY: 1, DZ: []float64{1}},
		{NX: 8, NY: 8, NZ: 2, DX: 1, DY: 1, DZ: []float64{1}},  // wrong DZ count
		{NX: 8, NY: 8, NZ: 1, DX: 1, DY: 1, DZ: []float64{-1}}, // negative dz
		{NX: 8, NY: 8, NZ: 1, DX: 0, DY: 1, DZ: []float64{1}},  // bad dx
		{NX: 8, NY: 8, NZ: 1, Spherical: true, Lat0: 10, Lat1: 5, LonSpan: 360, DZ: []float64{1}},
		{NX: 8, NY: 8, NZ: 1, Spherical: true, Lat0: -95, Lat1: 5, LonSpan: 360, DZ: []float64{1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFlatDomainFullyOpen(t *testing.T) {
	g, err := NewLocal(flatConfig(8, 6, 3), 0, 0, 8, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.OceanPoints() != 8*6*3 {
		t.Fatalf("open cells = %d", g.OceanPoints())
	}
	if g.Depth.At(3, 3) != 300 {
		t.Fatalf("column depth = %g", g.Depth.At(3, 3))
	}
	if g.DepthW.At(3, 3) != 300 || g.DepthS.At(3, 3) != 300 {
		t.Fatal("face depths")
	}
}

func TestSphericalMetrics(t *testing.T) {
	cfg := Config{
		NX: 36, NY: 18, NZ: 1, Spherical: true,
		Lat0: -80, Lat1: 80, LonSpan: 360, DZ: []float64{100},
	}
	g, err := NewLocal(cfg, 0, 0, 36, 18, 1)
	if err != nil {
		t.Fatal(err)
	}
	// dx shrinks towards the poles; dy constant.
	if !(g.DXC(0) < g.DXC(9)) {
		t.Fatalf("dx(%d)=%g !< dx(9)=%g", 0, g.DXC(0), g.DXC(9))
	}
	if g.DYC(0) != g.DYC(9) {
		t.Fatal("dy varies")
	}
	// Coriolis antisymmetric about the equator.
	if f0, f1 := g.F(2), g.F(15); math.Abs(f0+f1) > 1e-18 {
		t.Fatalf("f(%d)=%g, f(%d)=%g not antisymmetric", 2, f0, 15, f1)
	}
	// Face width is the zonal arc length at the v-point latitude (note
	// it exceeds both neighbours at the equator, where cos is maximal).
	dLon := 360.0 / 36 * math.Pi / 180
	for j := 0; j < 18; j++ {
		faceLat := (-80 + 160*float64(j)/18) * math.Pi / 180
		want := EarthRadius * math.Cos(faceLat) * dLon
		if s := g.DXS(j); math.Abs(s-want) > 1 {
			t.Fatalf("dxs(%d)=%g, want %g", j, s, want)
		}
	}
}

func TestShavedCells(t *testing.T) {
	cfg := flatConfig(8, 8, 4)
	// A linear ramp from full depth to zero across the domain.
	cfg.DepthFrac = func(x, y float64) float64 { return 1 - x }
	cfg.MinHFac = 0.2
	g, err := NewLocal(cfg, 0, 0, 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Depth decreases eastward.
	prev := math.Inf(1)
	for i := 0; i < 8; i++ {
		d := g.Depth.At(i, 4)
		if d > prev {
			t.Fatalf("depth not monotone at i=%d", i)
		}
		prev = d
	}
	// hFac values lie in {0} U [MinHFac, 1].
	for k := 0; k < 4; k++ {
		for i := 0; i < 8; i++ {
			h := g.HFacC.At(i, 4, k)
			if h != 0 && (h < 0.2-1e-12 || h > 1) {
				t.Fatalf("hFac(%d,4,%d) = %g", i, k, h)
			}
		}
	}
	// Face fraction never exceeds either neighbour.
	for k := 0; k < 4; k++ {
		for i := 1; i < 8; i++ {
			w := g.HFacW.At(i, 4, k)
			if w > g.HFacC.At(i, 4, k)+1e-12 || w > g.HFacC.At(i-1, 4, k)+1e-12 {
				t.Fatalf("hFacW exceeds neighbours at i=%d k=%d", i, k)
			}
		}
	}
}

func TestWallsBeyondDomain(t *testing.T) {
	cfg := flatConfig(8, 8, 2) // not periodic
	g, err := NewLocal(cfg, 0, 0, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Halo cells beyond a wall are land.
	if g.HFacC.At(-1, 4, 0) != 0 || g.HFacC.At(8, 4, 0) != 0 {
		t.Fatal("x wall halo not land")
	}
	if g.HFacC.At(4, -1, 0) != 0 || g.HFacC.At(4, 8, 0) != 0 {
		t.Fatal("y wall halo not land")
	}
	if g.HFacS.At(4, 0, 0) != 0 {
		t.Fatal("southern wall face open")
	}
}

func TestPeriodicHaloWrapsTopography(t *testing.T) {
	cfg := flatConfig(8, 8, 1)
	cfg.PeriodicX = true
	cfg.DepthFrac = func(x, y float64) float64 {
		if x < 0.25 {
			return 0 // land in the west quarter
		}
		return 1
	}
	g, err := NewLocal(cfg, 0, 0, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The halo west of i=0 wraps to i=6,7 (open water).
	if g.HFacC.At(-1, 4, 0) != 1 {
		t.Fatal("periodic wrap saw land where open water wraps")
	}
	// Interior land band present.
	if g.HFacC.At(0, 4, 0) != 0 {
		t.Fatal("land band missing")
	}
}

func TestLatAndFractions(t *testing.T) {
	cfg := Config{NX: 16, NY: 16, NZ: 4, Spherical: true, Lat0: -80, Lat1: 80, LonSpan: 360,
		DZ: []float64{100, 200, 300, 400}}
	g, err := NewLocal(cfg, 0, 8, 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Tile starts at global row 8 (the equator for NY=16): first local
	// row sits just north of it.
	if lat := g.Lat(0); lat < 0 || lat > 10 {
		t.Fatalf("Lat(0) = %g", lat)
	}
	if y := g.YFrac(0); math.Abs(y-(8.5/16)) > 1e-12 {
		t.Fatalf("YFrac = %g", y)
	}
	if z := g.ZFrac(0); math.Abs(z-50.0/1000) > 1e-12 {
		t.Fatalf("ZFrac(0) = %g", z)
	}
	if g.ZFrac(3) <= g.ZFrac(0) {
		t.Fatal("ZFrac not increasing")
	}
}

// Property: DepthW at a face equals sum over k of dz*hFacW and never
// exceeds either adjacent column depth.
func TestFaceDepthConsistency(t *testing.T) {
	f := func(seed int64) bool {
		cfg := flatConfig(6, 6, 3)
		cfg.DepthFrac = func(x, y float64) float64 {
			v := 0.5 + 0.5*math.Sin(x*37+float64(seed%7))*math.Cos(y*23)
			return v
		}
		g, err := NewLocal(cfg, 0, 0, 6, 6, 1)
		if err != nil {
			return false
		}
		for j := 0; j < 6; j++ {
			for i := 1; i < 6; i++ {
				sum := 0.0
				for k := 0; k < 3; k++ {
					sum += g.HFacW.At(i, j, k) * g.DZ[k]
				}
				if math.Abs(sum-g.DepthW.At(i, j)) > 1e-9 {
					return false
				}
				if g.DepthW.At(i, j) > g.Depth.At(i, j)+1e-9 || g.DepthW.At(i, j) > g.Depth.At(i-1, j)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCellVolume(t *testing.T) {
	g, err := NewLocal(flatConfig(4, 4, 2), 0, 0, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := g.CellVolume(1, 1, 0); v != 1e4*1e4*100 {
		t.Fatalf("volume = %g", v)
	}
}
