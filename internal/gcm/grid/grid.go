// Package grid builds the finite-volume geometry of the MIT GCM port
// (paper §3.2): a lateral curvilinear (spherical or beta-plane) grid of
// cell volumes, sculpted to land-mass geometry with partial ("shaved")
// cells at the bottom boundary, following Adcroft, Hill & Marshall
// (1997), the paper's reference [1].
//
// The grid is tile-local: each worker holds only its own subdomain's
// rows of metric coefficients plus masked volume factors with halo, so
// the package composes with the horizontal decomposition of Fig. 4.
package grid

import (
	"fmt"
	"math"

	"hyades/internal/gcm/field"
)

// EarthRadius is in metres.
const EarthRadius = 6.371e6

// Omega is the Earth's rotation rate (1/s).
const Omega = 7.2921e-5

// Gravity is the gravitational acceleration (m/s^2).
const Gravity = 9.81

// Config describes the global domain.
type Config struct {
	NX, NY, NZ int // global lateral grid and level count

	// Spherical selects lat-lon metrics between Lat0 and Lat1 degrees;
	// otherwise a beta-plane with constant DX, DY centred at Lat0.
	Spherical  bool
	Lat0, Lat1 float64 // degrees
	LonSpan    float64 // degrees of longitude covered (Spherical)
	DX, DY     float64 // metres (beta-plane)

	// DZ holds level thicknesses, surface first.  Metres for the ocean
	// isomorph; the atmosphere reuses the same code with pressure-like
	// thicknesses mapped to an equivalent depth.
	DZ []float64

	PeriodicX, PeriodicY bool

	// DepthFrac returns the fluid depth at fractional global position
	// (x, y in [0,1]) as a fraction of the full column depth; 0 is
	// land.  Nil means a flat full-depth domain.
	DepthFrac func(x, y float64) float64

	// MinHFac is the smallest allowed partial-cell fraction (shaved
	// cells); cells thinner than this are rounded to land or MinHFac.
	MinHFac float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.NX < 1 || c.NY < 1 || c.NZ < 1 {
		return fmt.Errorf("grid: bad dims %dx%dx%d", c.NX, c.NY, c.NZ)
	}
	if len(c.DZ) != c.NZ {
		return fmt.Errorf("grid: %d DZ entries for %d levels", len(c.DZ), c.NZ)
	}
	for k, dz := range c.DZ {
		if dz <= 0 {
			return fmt.Errorf("grid: DZ[%d] = %g", k, dz)
		}
	}
	if c.Spherical {
		if c.Lat1 <= c.Lat0 {
			return fmt.Errorf("grid: Lat1 %g <= Lat0 %g", c.Lat1, c.Lat0)
		}
		if math.Abs(c.Lat0) > 89 || math.Abs(c.Lat1) > 89 {
			return fmt.Errorf("grid: latitudes must stay within +-89 degrees")
		}
		if c.LonSpan <= 0 {
			return fmt.Errorf("grid: LonSpan %g", c.LonSpan)
		}
	} else if c.DX <= 0 || c.DY <= 0 {
		return fmt.Errorf("grid: DX/DY must be positive on a beta-plane")
	}
	return nil
}

// Local is the geometry owned by one tile, for global cell range
// [I0, I0+NX) x [J0, J0+NY).
type Local struct {
	Cfg        Config
	NX, NY, NZ int
	H          int // halo width
	I0, J0     int

	// Per-row metrics (indexed j in [-H, NY+H)).  dxs is the zonal
	// width at the row's SOUTH face (the v-point latitude): every
	// north/south flux must use the face width so that the two cells
	// sharing a face see the same area — otherwise the discrete
	// divergence is inconsistent and the surface-pressure system loses
	// compatibility on converging meridians.
	dxc, dxs, dyc, fCor []float64

	DZ     []float64 // level thickness
	ZC     []float64 // depth of level centre (positive down)
	ZF     []float64 // depth of level top face
	DepthC float64   // full column depth

	// HFacC is the open fraction of each cell volume (0 land, 1 open,
	// fractional at shaved bottom cells); halo included.
	HFacC *field.F3
	// HFacW/HFacS are the open fractions of the west (u-point) and
	// south (v-point) faces: the minimum of the adjacent cell
	// fractions, so side fluxes and the column depths seen by the
	// barotropic solve stay mutually consistent.
	HFacW, HFacS *field.F3
	// Depth is the fluid column depth at cell centres (sum hFac*dz);
	// DepthW/DepthS are the face-integrated depths used as the
	// transmissibilities of the surface-pressure operator.
	Depth, DepthW, DepthS *field.F2
}

// NewLocal builds the tile geometry.
func NewLocal(cfg Config, i0, j0, nx, ny, halo int) (*Local, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Local{
		Cfg: cfg, NX: nx, NY: ny, NZ: cfg.NZ, H: halo, I0: i0, J0: j0,
		DZ: append([]float64(nil), cfg.DZ...),
	}
	g.ZF = make([]float64, cfg.NZ+1)
	g.ZC = make([]float64, cfg.NZ)
	for k := 0; k < cfg.NZ; k++ {
		g.ZF[k+1] = g.ZF[k] + cfg.DZ[k]
		g.ZC[k] = g.ZF[k] + cfg.DZ[k]/2
	}
	g.DepthC = g.ZF[cfg.NZ]

	rows := ny + 2*halo
	g.dxc = make([]float64, rows)
	g.dxs = make([]float64, rows)
	g.dyc = make([]float64, rows)
	g.fCor = make([]float64, rows)
	for jj := 0; jj < rows; jj++ {
		j := jj - halo + j0 // global row
		lat := cfg.rowLat(j)
		if cfg.Spherical {
			dLon := cfg.LonSpan / float64(cfg.NX) * math.Pi / 180
			dLat := (cfg.Lat1 - cfg.Lat0) / float64(cfg.NY) * math.Pi / 180
			g.dxc[jj] = EarthRadius * math.Cos(lat*math.Pi/180) * dLon
			faceLat := lat - (cfg.Lat1-cfg.Lat0)/float64(cfg.NY)/2
			g.dxs[jj] = EarthRadius * math.Cos(faceLat*math.Pi/180) * dLon
			g.dyc[jj] = EarthRadius * dLat
			g.fCor[jj] = 2 * Omega * math.Sin(lat*math.Pi/180)
		} else {
			g.dxc[jj] = cfg.DX
			g.dxs[jj] = cfg.DX
			g.dyc[jj] = cfg.DY
			// Beta-plane: f = f0 + beta * y measured from domain centre.
			f0 := 2 * Omega * math.Sin(cfg.Lat0*math.Pi/180)
			beta := 2 * Omega * math.Cos(cfg.Lat0*math.Pi/180) / EarthRadius
			yc := (float64(j) + 0.5 - float64(cfg.NY)/2) * cfg.DY
			g.fCor[jj] = f0 + beta*yc
		}
	}

	g.buildMasks()
	return g, nil
}

// rowLat returns the centre latitude of global row j (clamped to the
// domain for halo rows beyond a wall).
func (c *Config) rowLat(j int) float64 {
	if !c.Spherical {
		return c.Lat0
	}
	fr := (float64(j) + 0.5) / float64(c.NY)
	return c.Lat0 + (c.Lat1-c.Lat0)*fr
}

// buildMasks evaluates the topography into hFac and face masks.
func (g *Local) buildMasks() {
	cfg := g.Cfg
	minH := cfg.MinHFac
	if minH <= 0 {
		minH = 0.2
	}
	g.HFacC = field.NewF3(g.NX, g.NY, g.NZ, g.H)
	g.HFacW = field.NewF3(g.NX, g.NY, g.NZ, g.H)
	g.HFacS = field.NewF3(g.NX, g.NY, g.NZ, g.H)
	g.Depth = field.NewF2(g.NX, g.NY, g.H)
	g.DepthW = field.NewF2(g.NX, g.NY, g.H)
	g.DepthS = field.NewF2(g.NX, g.NY, g.H)

	depthAt := func(i, j int) float64 {
		gi, gj := g.I0+i, g.J0+j
		gi = wrapOrClamp(gi, cfg.NX, cfg.PeriodicX)
		gj = wrapOrClamp(gj, cfg.NY, cfg.PeriodicY)
		if !cfg.PeriodicY && (g.J0+j < 0 || g.J0+j >= cfg.NY) {
			return 0 // beyond a wall: land
		}
		if !cfg.PeriodicX && (g.I0+i < 0 || g.I0+i >= cfg.NX) {
			return 0
		}
		if cfg.DepthFrac == nil {
			return g.DepthC
		}
		x := (float64(gi) + 0.5) / float64(cfg.NX)
		y := (float64(gj) + 0.5) / float64(cfg.NY)
		fr := cfg.DepthFrac(x, y)
		if fr < 0 {
			fr = 0
		}
		if fr > 1 {
			fr = 1
		}
		return fr * g.DepthC
	}

	for j := -g.H; j < g.NY+g.H; j++ {
		for i := -g.H; i < g.NX+g.H; i++ {
			d := depthAt(i, j)
			col := 0.0
			for k := 0; k < g.NZ; k++ {
				open := (d - g.ZF[k]) / g.DZ[k]
				switch {
				case open >= 1:
					open = 1
				case open < minH/2:
					open = 0
				case open < minH:
					open = minH
				}
				g.HFacC.Set(i, j, k, open)
				col += open * g.DZ[k]
			}
			g.Depth.Set(i, j, col)
		}
	}
	// Face fractions: the open part of a face is limited by the more
	// closed of the two adjacent cells (shaved-cell treatment).
	for k := 0; k < g.NZ; k++ {
		for j := -g.H; j < g.NY+g.H; j++ {
			for i := -g.H; i < g.NX+g.H; i++ {
				w, s := 0.0, 0.0
				if i > -g.H {
					w = math.Min(g.HFacC.At(i, j, k), g.HFacC.At(i-1, j, k))
				}
				if j > -g.H {
					s = math.Min(g.HFacC.At(i, j, k), g.HFacC.At(i, j-1, k))
				}
				g.HFacW.Set(i, j, k, w)
				g.HFacS.Set(i, j, k, s)
				g.DepthW.Add(i, j, w*g.DZ[k])
				g.DepthS.Add(i, j, s*g.DZ[k])
			}
		}
	}
}

func wrapOrClamp(v, n int, periodic bool) int {
	if periodic {
		return ((v % n) + n) % n
	}
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// DXC returns the zonal grid spacing of local row j at cell centres.
func (g *Local) DXC(j int) float64 { return g.dxc[j+g.H] }

// DXS returns the zonal width of local row j's south face (the
// v-point); all meridional fluxes must use it.
func (g *Local) DXS(j int) float64 { return g.dxs[j+g.H] }

// DYC returns the meridional grid spacing of local row j.
func (g *Local) DYC(j int) float64 { return g.dyc[j+g.H] }

// F returns the Coriolis parameter of local row j.
func (g *Local) F(j int) float64 { return g.fCor[j+g.H] }

// Lat returns the centre latitude (degrees) of local row j; on a
// beta-plane it returns the equivalent latitude implied by f(j).
func (g *Local) Lat(j int) float64 {
	if g.Cfg.Spherical {
		return g.Cfg.rowLat(g.J0 + j)
	}
	s := g.F(j) / (2 * Omega)
	if s > 1 {
		s = 1
	}
	if s < -1 {
		s = -1
	}
	return math.Asin(s) * 180 / math.Pi
}

// YFrac returns the fractional meridional position of local row j in
// [0,1] over the global domain.
func (g *Local) YFrac(j int) float64 {
	return (float64(g.J0+j) + 0.5) / float64(g.Cfg.NY)
}

// ZFrac returns the fractional depth of level k's centre in [0,1].
func (g *Local) ZFrac(k int) float64 { return g.ZC[k] / g.DepthC }

// CellVolume returns the open volume of cell (i,j,k).
func (g *Local) CellVolume(i, j, k int) float64 {
	return g.DXC(j) * g.DYC(j) * g.DZ[k] * g.HFacC.At(i, j, k)
}

// OceanPoints counts open interior cells (diagnostics).
func (g *Local) OceanPoints() int {
	n := 0
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				if g.HFacC.At(i, j, k) > 0 {
					n++
				}
			}
		}
	}
	return n
}
