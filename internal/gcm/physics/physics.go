// Package physics is the intermediate-complexity atmospheric physics
// package of the reproduction, standing in for the 5-level
// parameterisation suite of Molteni (paper reference [12]) used by the
// 2.8125-degree coupled experiments.
//
// It follows the spirit of that package (and of the Held-Suarez
// benchmark): Newtonian relaxation of potential temperature towards a
// zonally symmetric radiative-convective equilibrium, Rayleigh
// friction in the boundary layer, a simple moisture cycle
// (bulk-formula evaporation from the lower boundary, supersaturation
// condensation with latent heating), and bulk surface fluxes that
// couple to an SST field when the atmosphere runs coupled to the
// ocean isomorph.
//
// The level convention matches the dynamical kernel: k = 0 is the
// model top and k = NZ-1 the surface-adjacent level.
package physics

import (
	"math"

	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
)

// Params holds the physics constants.
type Params struct {
	// Radiation: relaxation towards Teq with timescale TauRad (faster
	// TauRadSurf in the boundary layer).
	TauRadDays     float64
	TauRadSurfDays float64
	ThetaTropic    float64 // equilibrium surface theta at the equator (K)
	DThetaPole     float64 // equator-pole equilibrium contrast (K)
	DThetaVert     float64 // vertical equilibrium contrast (K)

	// Boundary layer: Rayleigh friction over the lowest SigmaB of the
	// column with peak rate KFric (1/s).
	KFric  float64
	SigmaB float64

	// Moisture: saturation humidity scale, evaporation and
	// condensation timescales, latent heating coefficient.
	QSat0     float64 // surface saturation humidity (kg/kg)
	TauEvap   float64 // s
	TauCond   float64 // s
	LatentK   float64 // K of heating per unit condensed humidity
	QSatTheta float64 // e-folding of qsat with theta (1/K)

	// Surface exchange (used when coupled): bulk coefficients.
	CDrag float64 // momentum
	CHeat float64 // heat (K/s per K of air-sea contrast)
}

// Default returns a stable coarse-resolution parameter set.
func Default() Params {
	return Params{
		TauRadDays:     40,
		TauRadSurfDays: 4,
		ThetaTropic:    300,
		DThetaPole:     55,
		DThetaVert:     35,
		KFric:          1.0 / 86400,
		SigmaB:         0.7,
		QSat0:          0.018,
		TauEvap:        20 * 86400,
		TauCond:        6 * 3600,
		LatentK:        2500,
		QSatTheta:      0.06,
		CDrag:          1.2e-3,
		CHeat:          1.0 / (10 * 86400),
	}
}

// Physics implements kernel.Forcing.
type Physics struct {
	P Params

	// SST, when non-nil, is the sea-surface temperature (C) under this
	// tile, supplied by the coupler with a halo at least as wide as the
	// physics margin; the surface fluxes then use it in place of the
	// internal equilibrium profile.
	SST *field.F2
}

// New builds the physics package.
func New(p Params) *Physics { return &Physics{P: p} }

var _ kernel.Forcing = (*Physics)(nil)

// thetaEq is the radiative-convective equilibrium profile.
func (ph *Physics) thetaEq(lat float64, height float64) float64 {
	phi := lat * math.Pi / 180
	sin2 := math.Sin(phi) * math.Sin(phi)
	return ph.P.ThetaTropic - ph.P.DThetaPole*sin2 + ph.P.DThetaVert*height
}

// AddTendencies implements kernel.Forcing.
func (ph *Physics) AddTendencies(g *grid.Local, s *kernel.State, kp *kernel.Params, c *kernel.Counters) {
	p := ph.P
	m := kernel.Halo - 1
	gu, gv := s.GU(), s.GV()
	gth, gq := s.GTh(), s.GS()
	nz := g.NZ
	tauRad := p.TauRadDays * 86400
	tauSurf := p.TauRadSurfDays * 86400
	var ops int64
	for k := 0; k < nz; k++ {
		height := 1 - g.ZFrac(k) // 1 = top, 0 = ground
		sigma := g.ZFrac(k)      // fraction of column below the top
		// Rayleigh friction ramps up towards the ground.
		kv := 0.0
		if sigma > p.SigmaB {
			kv = p.KFric * (sigma - p.SigmaB) / (1 - p.SigmaB)
		}
		surface := k == nz-1
		// Radiation relaxes faster in the boundary layer.
		tau := tauRad
		if surface {
			tau = tauSurf
		}
		for j := -m; j < g.NY+m; j++ {
			lat := g.Lat(j)
			hcr := g.HFacC.Row(j, k)
			thr := s.Theta.Row(j, k)
			qr := s.Salt.Row(j, k)
			gthr := gth.Row(j, k)
			gqr := gq.Row(j, k)
			var sstRow []float64
			if surface && ph.SST != nil {
				sstRow = ph.SST.Row(j)
				if hs := ph.SST.H; hs != kernel.Halo {
					// Generic path for an SST halo narrower than the
					// kernel's; the coupler allocates kernel.Halo, so this
					// is defensive only.
					sstRow = nil
				}
			}
			for i := -m; i < g.NX+m; i++ {
				n := i + kernel.Halo
				if hcr[n] == 0 {
					continue
				}
				th := thr[n]
				q := qr[n]
				// Radiation: relax towards equilibrium.
				teq := ph.thetaEq(lat, height)
				gthr[n] += (teq - th) / tau
				ops += 10
				// Moisture: condensation wherever q exceeds saturation.
				qsat := p.QSat0 * math.Exp(p.QSatTheta*(th-p.ThetaTropic)) * (0.05 + 0.95*sigma)
				if q > qsat {
					cond := (q - qsat) / p.TauCond
					gqr[n] += -cond
					gthr[n] += p.LatentK * cond
					ops += 6
				}
				if surface {
					// Evaporation from the lower boundary towards
					// saturation; stronger over warm SST when coupled.
					qsrc := qsat
					if ph.SST != nil {
						sst := 0.0
						if sstRow != nil {
							sst = sstRow[n]
						} else {
							sst = ph.SST.At(i, j)
						}
						qsrc = p.QSat0 * math.Exp(p.QSatTheta*(sst+273.15-p.ThetaTropic))
					}
					gqr[n] += (qsrc - q) / p.TauEvap
					ops += 4
					// Sensible heat flux from the SST when coupled.
					if ph.SST != nil {
						sst := 0.0
						if sstRow != nil {
							sst = sstRow[n] + 273.15
						} else {
							sst = ph.SST.At(i, j) + 273.15
						}
						gthr[n] += p.CHeat * (sst - th)
						ops += 3
					}
				}
			}
		}
		// Friction acts on the momentum points of the same levels.
		if kv > 0 {
			for j := -m; j < g.NY+m; j++ {
				hw := g.HFacW.Row(j, k)
				hs := g.HFacS.Row(j, k)
				ur := s.U.Row(j, k)
				vr := s.V.Row(j, k)
				gur := gu.Row(j, k)
				gvr := gv.Row(j, k)
				for i := -m; i < g.NX+m+1; i++ {
					n := i + kernel.Halo
					if hw[n] > 0 {
						gur[n] += -kv * ur[n]
					}
					if hs[n] > 0 {
						gvr[n] += -kv * vr[n]
					}
				}
			}
			ops += int64((g.NY + 2*m) * (g.NX + 2*m + 1) * 4)
		}
	}
	c.AddPS(ops)
}
