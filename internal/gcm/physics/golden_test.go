package physics

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hyades/internal/gcm/eos"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
)

// Golden-checksum regression suite for the physics package: fixtures
// recorded from the pre-flat-row sweep pin AddTendencies bit-for-bit,
// uncoupled and coupled (SST-driven surface fluxes), over the full
// overcomputation margin.  Regenerate (only for a deliberate change)
// with:
//
//	go test ./internal/gcm/physics -run TestGoldenChecksums -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current physics")

func hashField(f interface{ Raw() []float64 }) string {
	h := sha256.New()
	var w [8]byte
	for _, v := range f.Raw() {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		h.Write(w[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenAtm builds a spherical 5-level atmosphere tile and a state with
// deterministic moisture, wind and temperature patterns chosen so both
// branches of the condensation and friction conditionals run.
func goldenAtm(t *testing.T) (*grid.Local, *kernel.State, *kernel.Params) {
	t.Helper()
	g, err := grid.NewLocal(grid.Config{
		NX: 16, NY: 8, NZ: 5, Spherical: true, Lat0: -80, Lat1: 80, LonSpan: 360,
		DZ: []float64{2000, 2000, 2000, 2000, 2000},
	}, 0, 0, 16, 8, kernel.Halo)
	if err != nil {
		t.Fatal(err)
	}
	s := kernel.NewState(16, 8, 5)
	for k := 0; k < 5; k++ {
		for j := -kernel.Halo; j < 8+kernel.Halo; j++ {
			for i := -kernel.Halo; i < 16+kernel.Halo; i++ {
				s.Theta.Set(i, j, k, 270+8*math.Sin(0.4*float64(i)+0.6*float64(j))+4*float64(k))
				s.Salt.Set(i, j, k, 0.012+0.01*math.Sin(0.7*float64(i)-0.3*float64(j)+0.5*float64(k)))
				s.U.Set(i, j, k, 3*math.Cos(0.2*float64(i)+0.5*float64(j)))
				s.V.Set(i, j, k, 2*math.Sin(0.3*float64(i)-0.4*float64(j)))
			}
		}
	}
	p := &kernel.Params{Dt: 405, ABEps: 0.01, EOS: eos.DefaultAtmosphere()}
	return g, s, p
}

func TestGoldenChecksums(t *testing.T) {
	got := map[string]string{}

	// Uncoupled: internal equilibrium surface fluxes, two accumulating
	// calls (tendencies add into the G buffers).
	{
		g, s, p := goldenAtm(t)
		ph := New(Default())
		var c kernel.Counters
		ph.AddTendencies(g, s, p, &c)
		ph.AddTendencies(g, s, p, &c)
		got["uncoupled/gu"] = hashField(s.GU())
		got["uncoupled/gv"] = hashField(s.GV())
		got["uncoupled/gth"] = hashField(s.GTh())
		got["uncoupled/gq"] = hashField(s.GS())
	}

	// Coupled: an SST field drives evaporation and sensible heat.
	{
		g, s, p := goldenAtm(t)
		ph := New(Default())
		sst := field.NewF2(16, 8, kernel.Halo)
		for j := -kernel.Halo; j < 8+kernel.Halo; j++ {
			for i := -kernel.Halo; i < 16+kernel.Halo; i++ {
				sst.Set(i, j, 14+9*math.Cos(0.3*float64(j))+2*math.Sin(0.5*float64(i)))
			}
		}
		ph.SST = sst
		var c kernel.Counters
		ph.AddTendencies(g, s, p, &c)
		got["coupled/gth"] = hashField(s.GTh())
		got["coupled/gq"] = hashField(s.GS())
	}

	checkGolden(t, filepath.Join("testdata", "golden.json"), got, *updateGolden)
}

func checkGolden(t *testing.T, path string, got map[string]string, update bool) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to record): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: fixture entry %q not produced by the test", path, k)
		} else if g != w {
			t.Errorf("%s: %q = %s, want %s (bit-exact regression)", path, k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new entry %q not in fixture (run -update after a deliberate change)", path, k)
		}
	}
}
