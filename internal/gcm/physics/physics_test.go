package physics

import (
	"math"
	"testing"

	"hyades/internal/gcm/eos"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
)

func atmRig(t *testing.T) (*grid.Local, *kernel.State, *kernel.Params) {
	t.Helper()
	g, err := grid.NewLocal(grid.Config{
		NX: 16, NY: 8, NZ: 5, Spherical: true, Lat0: -80, Lat1: 80, LonSpan: 360,
		DZ: []float64{2000, 2000, 2000, 2000, 2000},
	}, 0, 0, 16, 8, kernel.Halo)
	if err != nil {
		t.Fatal(err)
	}
	s := kernel.NewState(16, 8, 5)
	s.Theta.Fill(280)
	p := &kernel.Params{Dt: 405, ABEps: 0.01, EOS: eos.DefaultAtmosphere()}
	return g, s, p
}

func TestRadiativeRelaxationSign(t *testing.T) {
	g, s, p := atmRig(t)
	ph := New(Default())
	var c kernel.Counters
	ph.AddTendencies(g, s, p, &c)
	// Equatorial surface: equilibrium ~300 K, state 280 K -> heating.
	k := g.NZ - 1
	jEq := g.NY / 2
	if gth := s.GTh().At(8, jEq, k); gth <= 0 {
		t.Fatalf("equatorial surface tendency = %g, want heating", gth)
	}
	// Polar surface equilibrium ~300-55*sin^2(75) ~ 249 K -> cooling.
	if gth := s.GTh().At(8, 0, k); gth >= 0 {
		t.Fatalf("polar surface tendency = %g, want cooling", gth)
	}
	if c.PS == 0 {
		t.Fatal("no physics flops counted")
	}
}

func TestEquilibriumHasNoTendency(t *testing.T) {
	g, s, p := atmRig(t)
	prm := Default()
	prm.QSat0 = 0 // dry
	ph := New(prm)
	// Set theta exactly to the equilibrium profile.
	for k := 0; k < g.NZ; k++ {
		height := 1 - g.ZFrac(k)
		for j := -2; j < g.NY+2; j++ {
			for i := -2; i < g.NX+2; i++ {
				s.Theta.Set(i, j, k, ph.thetaEq(g.Lat(j), height))
			}
		}
	}
	var c kernel.Counters
	ph.AddTendencies(g, s, p, &c)
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				if gth := s.GTh().At(i, j, k); math.Abs(gth) > 1e-15 {
					t.Fatalf("tendency %g at equilibrium (%d,%d,%d)", gth, i, j, k)
				}
			}
		}
	}
}

func TestRayleighFrictionOnlyNearSurface(t *testing.T) {
	g, s, p := atmRig(t)
	ph := New(Default())
	s.U.Fill(10)
	var c kernel.Counters
	ph.AddTendencies(g, s, p, &c)
	// Top level (sigma = 0.2 < SigmaB): no friction.
	if gu := s.GU().At(5, 4, 0); gu != 0 {
		t.Fatalf("friction at the model top: %g", gu)
	}
	// Surface level: decelerating.
	if gu := s.GU().At(5, 4, g.NZ-1); gu >= 0 {
		t.Fatalf("no surface friction: %g", gu)
	}
}

func TestCondensationHeatsAndDries(t *testing.T) {
	g, s, p := atmRig(t)
	prm := Default()
	ph := New(prm)
	// Supersaturate one surface cell.
	k := g.NZ - 1
	s.Salt.Set(5, 4, k, 0.05)
	var c kernel.Counters
	ph.AddTendencies(g, s, p, &c)
	if gq := s.GS().At(5, 4, k); gq >= 0 {
		t.Fatalf("supersaturated cell not condensing: %g", gq)
	}
	// The latent heating must exceed the plain radiative tendency of a
	// neighbouring unsaturated cell.
	dry := s.GTh().At(6, 4, k)
	wet := s.GTh().At(5, 4, k)
	if wet <= dry {
		t.Fatalf("no latent heating: wet %g <= dry %g", wet, dry)
	}
}

func TestSSTDrivesSurfaceFluxes(t *testing.T) {
	g, s, p := atmRig(t)
	ph := New(Default())
	sst := field.NewF2(16, 8, 2)
	sst.Fill(28) // warm ocean under 280 K air
	ph.SST = sst
	var c kernel.Counters
	ph.AddTendencies(g, s, p, &c)
	k := g.NZ - 1
	// 28 C = 301 K > 280 K: sensible heating of the surface level on
	// top of radiation; compare against the no-SST case.
	gWith := s.GTh().At(5, 4, k)
	g2, s2, p2 := atmRig(t)
	ph2 := New(Default())
	var c2 kernel.Counters
	ph2.AddTendencies(g2, s2, p2, &c2)
	gWithout := s2.GTh().At(5, 4, k)
	if gWith <= gWithout {
		t.Fatalf("warm SST did not add heat: %g vs %g", gWith, gWithout)
	}
}
