// Package gcm is the MIT General Circulation Model port at the heart
// of the reproduction (paper §3): a finite-volume, incompressible
// primitive-equation kernel whose ocean and atmosphere isomorphs share
// all numerics, stepped by the PS/DS loop of Fig. 6 over the tiled
// decomposition of Fig. 5.
//
// A Model instance is one worker's tile.  It runs identically on the
// serial endpoint (numerics tests, single-processor baselines) and on
// simulated-cluster endpoints (Hyades, modelled Ethernets), charging
// virtual processor time for its floating-point work at the measured
// phase rates Fps/Fds so the discrete-event simulation reproduces the
// paper's timing analysis.
package gcm

import (
	"fmt"
	"math"

	"hyades/internal/comm"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
	"hyades/internal/gcm/reduce"
	"hyades/internal/gcm/solver"
	"hyades/internal/gcm/tile"
	"hyades/internal/units"
)

// Isomorph selects the fluid.
type Isomorph int

// The two isomorphs of §3.
const (
	Ocean Isomorph = iota
	Atmosphere
)

func (i Isomorph) String() string {
	if i == Atmosphere {
		return "atmosphere"
	}
	return "ocean"
}

// Config assembles a model run.
type Config struct {
	Name   string
	Iso    Isomorph
	Grid   grid.Config
	Kernel kernel.Params
	Decomp tile.Decomp

	SolverTol     float64
	SolverMaxIter int

	// Forcing supplies external tendencies; nil means unforced.
	Forcing kernel.Forcing

	// Init sets the initial condition on a tile; nil leaves the state
	// at rest and uniform.
	Init func(g *grid.Local, s *kernel.State)

	// FpsMFlops/FdsMFlops are the measured single-processor kernel
	// rates used to convert counted flops into simulated time
	// (paper Fig. 11: 50 and 60 MFlop/s).  Zero disables time charging
	// (pure numerics runs).
	FpsMFlops, FdsMFlops float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if err := c.Kernel.Validate(); err != nil {
		return err
	}
	if c.Decomp.NXg != c.Grid.NX || c.Decomp.NYg != c.Grid.NY {
		return fmt.Errorf("gcm: decomposition %dx%d does not match grid %dx%d",
			c.Decomp.NXg, c.Decomp.NYg, c.Grid.NX, c.Grid.NY)
	}
	if err := c.Decomp.Validate(); err != nil {
		return err
	}
	if c.SolverMaxIter <= 0 {
		return fmt.Errorf("gcm: SolverMaxIter = %d", c.SolverMaxIter)
	}
	nx, ny := c.Decomp.TileSize()
	if nx < kernel.Halo || ny < kernel.Halo {
		return fmt.Errorf("gcm: %dx%d tile smaller than the halo width %d", nx, ny, kernel.Halo)
	}
	return nil
}

// Model is one worker's tile of a running simulation.
type Model struct {
	Cfg    Config
	EP     comm.Endpoint
	G      *grid.Local
	S      *kernel.State
	Halo   *tile.Halo
	Solver *solver.Solver
	C      kernel.Counters

	Steps int

	// Phase closures are bound once at construction (bindPhases) so the
	// hot Step path allocates nothing: each captures only the receiver's
	// long-lived components, and BuildRHS threads its result through rhs.
	phTracers, phStepTracers, phMomentum, phBuildRHS, phCorrect func()
	rhs                                                         *field.F2
}

// New builds the tile model for the calling worker.
func New(cfg Config, ep comm.Endpoint) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nx, ny := cfg.Decomp.TileSize()
	cfg.Grid.PeriodicX = cfg.Decomp.PeriodicX
	cfg.Grid.PeriodicY = cfg.Decomp.PeriodicY
	i0, j0 := cfg.Decomp.Origin(ep.Rank())
	g, err := grid.NewLocal(cfg.Grid, i0, j0, nx, ny, kernel.Halo)
	if err != nil {
		return nil, err
	}
	h, err := tile.NewHalo(ep, cfg.Decomp)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Cfg:  cfg,
		EP:   ep,
		G:    g,
		S:    kernel.NewState(nx, ny, cfg.Grid.NZ),
		Halo: h,
	}
	m.Solver = solver.New(g, h, cfg.SolverTol, cfg.SolverMaxIter)
	m.bindPhases()
	if cfg.FpsMFlops > 0 {
		rate := cfg.FpsMFlops * 1e6
		m.C.TimePS = func(f int64) units.Time { return units.Seconds(float64(f) / rate) }
		m.C.ChargePS = func(f int64) { ep.Busy(m.C.TimePS(f)) }
	}
	if cfg.FdsMFlops > 0 {
		rate := cfg.FdsMFlops * 1e6
		m.C.TimeDS = func(f int64) units.Time { return units.Seconds(float64(f) / rate) }
		m.C.ChargeDS = func(f int64) { ep.Busy(m.C.TimeDS(f)) }
	}
	if cfg.Init != nil {
		cfg.Init(g, m.S)
	}
	m.applyMasks()
	// A constructor error (rank-dependent through the tile origin)
	// aborts the whole run before any rank exchanges; ranks that reach
	// this line all reach it.
	//lint:allow commlock constructor errors abort the run, ranks cannot diverge here
	m.exchangeState() // bring halos current before the first step
	return m, nil
}

// applyMasks zeroes velocities and tracers on closed faces and cells.
func (m *Model) applyMasks() {
	g := m.G
	for k := 0; k < g.NZ; k++ {
		for j := -g.H; j < g.NY+g.H; j++ {
			for i := -g.H; i < g.NX+g.H; i++ {
				if g.HFacW.At(i, j, k) == 0 {
					m.S.U.Set(i, j, k, 0)
				}
				if g.HFacS.At(i, j, k) == 0 {
					m.S.V.Set(i, j, k, 0)
				}
				if g.HFacC.At(i, j, k) == 0 {
					m.S.W.Set(i, j, k, 0)
				}
			}
		}
	}
}

// exchangeState refreshes the halos of the five 3-D state variables —
// the single PS communication point of §4 (tps_exch = 5 * texchxyz).
func (m *Model) exchangeState() {
	m.Halo.Update3(m.S.U, kernel.Halo)
	m.Halo.Update3(m.S.V, kernel.Halo)
	m.Halo.Update3(m.S.W, kernel.Halo)
	m.Halo.Update3(m.S.Theta, kernel.Halo)
	m.Halo.Update3(m.S.Salt, kernel.Halo)
}

// bindPhases builds the Exec phase closures once.  Each kernel sweep
// here has analytically-known cost and carries the ep.Busy charge
// hooks on its flop counters; exec detaches those hooks
// (SuspendCharges) before handing the phase to the pool, so the
// statically visible AddPS/AddDS -> Busy chain is dead for the phase's
// duration.
func (m *Model) bindPhases() {
	p := &m.Cfg.Kernel
	g, s, c := m.G, m.S, &m.C
	m.phTracers = func() {
		kernel.ComputeGTracers(g, s, p, c)
	}
	m.phStepTracers = func() {
		kernel.StepTracers(g, s, p, c)
	}
	m.phMomentum = func() {
		kernel.Hydrostatic(g, s, p, c)
		kernel.ComputeGMomentum(g, s, p, c)
		kernel.StepMomentum(g, s, p, c)
	}
	m.phBuildRHS = func() {
		m.rhs = m.Solver.BuildRHS(s, p.Dt, c)
	}
	m.phCorrect = func() {
		solver.CorrectVelocities(g, s, p.Dt, c)
		kernel.Continuity(g, s, c)
	}
}

// exec runs phase — pure compute over this tile's own state, with the
// modeled cost d fixed up front — through the endpoint's Exec, which
// may fan it onto the host worker pool.  The charge hooks are
// suspended for the duration: the phase's flops are still counted, but
// its time is charged by Exec rather than from inside the sweep.
func (m *Model) exec(d units.Time, phase func()) {
	ps, ds := m.C.SuspendCharges()
	m.EP.Exec(d, phase)
	m.C.RestoreCharges(ps, ds)
}

// psTime/dsTime convert flop counts at the configured phase rates; a
// zero rate (pure numerics runs) charges zero time, matching the
// disabled charge hooks.
func (m *Model) psTime(f int64) units.Time {
	if m.C.TimePS == nil {
		return 0
	}
	return m.C.TimePS(f)
}

func (m *Model) dsTime(f int64) units.Time {
	if m.C.TimeDS == nil {
		return 0
	}
	return m.C.TimeDS(f)
}

// Step advances the model one time step through the PS/DS sequence of
// Fig. 6.
//
// Sweeps with analytically-known cost are grouped into phases and
// handed to Endpoint.Exec, so the per-rank compute runs off the DES
// baton (in parallel on the host, when a worker pool is attached)
// while the virtual clock advances by exactly the modeled time.
// Data-dependent work — the forcing package, convective adjustment and
// everything that communicates — stays on the baton, where its cost is
// charged as it accrues.
func (m *Model) Step() {
	p := &m.Cfg.Kernel
	g, s, c := m.G, m.S, &m.C
	// The pre-bound phases (bindPhases) call kernel sweeps whose flop
	// counters carry the ep.Busy charge hooks; exec suspends those hooks
	// around each one.
	// ---- PS: prognostic step ----
	//lint:allow execpure charge hooks are suspended around Exec (SuspendCharges)
	m.exec(m.psTime(kernel.ComputeGTracersOps(g)), m.phTracers)
	if m.Cfg.Forcing != nil {
		m.Cfg.Forcing.AddTendencies(g, s, p, c)
	}
	//lint:allow execpure charge hooks are suspended around Exec (SuspendCharges)
	m.exec(m.psTime(kernel.StepTracersOps(g)), m.phStepTracers)
	kernel.ConvectiveAdjust(g, s, p, c)
	m.exec(m.psTime(kernel.HydrostaticOps(g, p))+
		m.psTime(kernel.ComputeGMomentumOps(g))+
		//lint:allow execpure charge hooks are suspended around Exec (SuspendCharges)
		m.psTime(kernel.StepMomentumOps(g)), m.phMomentum)
	// ---- DS: diagnostic step (surface pressure) ----
	//lint:allow execpure charge hooks are suspended around Exec (SuspendCharges)
	m.exec(m.dsTime(solver.BuildRHSOps(g)), m.phBuildRHS)
	m.Solver.Solve(s.Ps, m.rhs, c)
	m.exec(m.dsTime(solver.CorrectVelocitiesOps(g))+
		//lint:allow execpure charge hooks are suspended around Exec (SuspendCharges)
		m.psTime(kernel.ContinuityOps(g)), m.phCorrect)
	m.rhs = nil
	m.S.Rotate()
	m.Steps++
	// The step's single halo-exchange point: state for the next step.
	m.exchangeState()
}

// Run advances n steps.
func (m *Model) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// TotalKE returns the global volume-integrated kinetic energy — a
// cheap stability/activity diagnostic (uses one global sum).
func (m *Model) TotalKE() float64 {
	g := m.G
	local := reduce.Over3(g.NX, g.NY, g.NZ, func(i, j, k int) float64 {
		u := 0.5 * (m.S.U.At(i, j, k) + m.S.U.At(i+1, j, k))
		v := 0.5 * (m.S.V.At(i, j, k) + m.S.V.At(i, j+1, k))
		return 0.5 * (u*u + v*v) * g.CellVolume(i, j, k)
	})
	return m.EP.GlobalSum(local)
}

// MeanTracer returns the volume-weighted global mean of theta —
// conservation diagnostic.
func (m *Model) MeanTracer() float64 {
	g := m.G
	sum := reduce.Over3(g.NX, g.NY, g.NZ, func(i, j, k int) float64 {
		return m.S.Theta.At(i, j, k) * g.CellVolume(i, j, k)
	})
	vol := reduce.Over3(g.NX, g.NY, g.NZ, func(i, j, k int) float64 {
		return g.CellVolume(i, j, k)
	})
	return m.EP.GlobalSum(sum) / m.EP.GlobalSum(vol)
}

// MaxDivergence returns the largest depth-integrated divergence left
// after the projection (global, via sum of squares).
func (m *Model) MaxDivergence() float64 {
	g := m.G
	// Dry columns contribute exactly 0.0, which leaves the running sum
	// bit-identical to the loop that skipped them.
	sum := reduce.Over2(g.NX, g.NY, func(i, j int) float64 {
		if g.Depth.At(i, j) == 0 {
			return 0
		}
		dx, dy := g.DXC(j), g.DYC(j)
		var div float64
		for k := 0; k < g.NZ; k++ {
			dz := g.DZ[k]
			div += dy*dz*(m.S.U.At(i+1, j, k)*g.HFacW.At(i+1, j, k)-m.S.U.At(i, j, k)*g.HFacW.At(i, j, k)) +
				dz*(g.DXS(j+1)*m.S.V.At(i, j+1, k)*g.HFacS.At(i, j+1, k)-g.DXS(j)*m.S.V.At(i, j, k)*g.HFacS.At(i, j, k))
		}
		div /= dx * dy * g.Depth.At(i, j)
		return div * div
	})
	total := m.EP.GlobalSum(sum)
	n := float64(m.Cfg.Grid.NX * m.Cfg.Grid.NY)
	if total <= 0 {
		return 0
	}
	return math.Sqrt(total / n)
}
