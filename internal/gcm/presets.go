package gcm

import (
	"math"

	"hyades/internal/gcm/eos"
	"hyades/internal/gcm/grid"
	"hyades/internal/gcm/kernel"
	"hyades/internal/gcm/tile"
)

// Published single-processor kernel rates (paper Fig. 11).
const (
	PaperFpsMFlops = 50
	PaperFdsMFlops = 60
)

// WindStress is the idealized ocean surface forcing: a zonal wind
// stress profile driving gyres/circumpolar flow, plus surface
// restoring of temperature and salinity to latitudinal profiles.
type WindStress struct {
	Tau0        float64 // kinematic stress amplitude (m^2/s^2)
	RestoreDays float64 // surface restoring timescale
	ThetaEq     float64 // equatorial restoring temperature (C)
	ThetaPole   float64 // polar restoring temperature (C)
	SaltMean    float64 // mean restoring salinity
	SaltRange   float64 // equator-pole salinity contrast
}

// DefaultWindStress returns coarse-resolution forcing values.
func DefaultWindStress() *WindStress {
	return &WindStress{
		Tau0:        1e-4, // ~0.1 N/m^2 over rho0 = 1000
		RestoreDays: 30,
		ThetaEq:     27,
		ThetaPole:   -1,
		SaltMean:    35,
		SaltRange:   1.5,
	}
}

// AddTendencies implements kernel.Forcing.
func (ws *WindStress) AddTendencies(g *grid.Local, s *kernel.State, p *kernel.Params, c *kernel.Counters) {
	m := kernel.Halo - 1
	dz0 := g.DZ[0]
	invTau := 1 / (ws.RestoreDays * 86400)
	gu := s.GU()
	gth := s.GTh()
	for j := -m; j < g.NY+m; j++ {
		lat := g.Lat(j)
		phi := lat * math.Pi / 180
		// Trade-easterlies / mid-latitude westerlies profile.
		tau := ws.Tau0 * (-math.Cos(3*phi) * math.Cos(phi))
		thetaStar := ws.ThetaPole + (ws.ThetaEq-ws.ThetaPole)*math.Cos(phi)*math.Cos(phi)
		for i := -m; i < g.NX+m+1; i++ {
			if g.HFacW.At(i, j, 0) > 0 {
				gu.Add(i, j, 0, tau/(dz0*g.HFacW.At(i, j, 0)))
			}
			if i <= g.NX+m-1 && g.HFacC.At(i, j, 0) > 0 {
				gth.Add(i, j, 0, (thetaStar-s.Theta.At(i, j, 0))*invTau)
			}
		}
	}
	c.AddPS(int64((g.NY + 2*m) * (g.NX + 2*m) * 8))
}

// defaultDZ builds nz thicknesses totalling depth, thinner near the
// surface (geometric stretching).
func defaultDZ(nz int, depth float64) []float64 {
	dz := make([]float64, nz)
	r := 1.35
	unit := depth * (r - 1) / (math.Pow(r, float64(nz)) - 1)
	for k := range dz {
		dz[k] = unit * math.Pow(r, float64(k))
	}
	return dz
}

// idealContinents is the DepthFrac of a two-continent aquaplanet: land
// bands standing in for the Americas and Afro-Eurasia, a circumpolar
// channel in the south, and a mid-ocean ridge — enough geometry to
// exercise the shaved-cell machinery and produce gyres and boundary
// currents.
func idealContinents(x, y float64) float64 {
	lat := -80 + 160*y // matches CoarseOceanConfig's latitude range
	inBand := func(lo, hi float64) bool { return x >= lo && x < hi }
	// Polar caps are land.
	if lat > 72 || lat < -76 {
		return 0
	}
	// "Americas": narrow band; gap for a Drake-passage channel.
	if inBand(0.20, 0.26) && lat > -55 && lat < 65 {
		return 0
	}
	// "Afro-Eurasia": wider band.
	if inBand(0.55, 0.70) && lat > -38 && lat < 68 {
		return 0
	}
	// Mid-ocean ridge: half depth.
	if inBand(0.38, 0.41) || inBand(0.85, 0.88) {
		return 0.55
	}
	// Continental shelves next to the land bands.
	if inBand(0.18, 0.20) || inBand(0.26, 0.28) || inBand(0.53, 0.55) || inBand(0.70, 0.72) {
		return 0.35
	}
	return 1
}

// CoarseOceanConfig is the paper's production ocean isomorph: a
// 2.8125-degree global grid (128 x 64) with 15 levels, so that a
// 16-worker decomposition gives the Fig. 11 parameters
// nxy = 8192/workers and nxyz = 15 * nxy.
func CoarseOceanConfig(d tile.Decomp) Config {
	if d.NXg == 0 {
		d = tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 4, PeriodicX: true}
	}
	return Config{
		Name: "coarse-ocean",
		Iso:  Ocean,
		Grid: grid.Config{
			NX: d.NXg, NY: d.NYg, NZ: 15,
			Spherical: true, Lat0: -80, Lat1: 80, LonSpan: 360,
			DZ:        defaultDZ(15, 5000),
			DepthFrac: idealContinents,
			MinHFac:   0.2,
		},
		Kernel: kernel.Params{
			Dt:       405, // 77760 steps/year, as in §5.3
			AhMom:    2.5e5,
			AvMom:    1e-3,
			KhTracer: 1e3,
			KvTracer: 3e-5,
			BotDrag:  1e-6,
			ABEps:    0.01,
			EOS:      eos.DefaultOcean(),

			ImplicitConvection: true,
		},
		Decomp: d,
		// Tuned so the warm-started SSOR-preconditioned CG averages near
		// the paper's Ni ~ 60 iterations per step.
		SolverTol:     3e-3,
		SolverMaxIter: 300,
		Forcing:       DefaultWindStress(),
		Init:          OceanInit,
		FpsMFlops:     PaperFpsMFlops,
		FdsMFlops:     PaperFdsMFlops,
	}
}

// OceanInit sets a stably stratified temperature/salinity field with a
// small thermal perturbation to break symmetry.
func OceanInit(g *grid.Local, s *kernel.State) {
	for k := 0; k < g.NZ; k++ {
		zf := g.ZFrac(k)
		tz := 25*math.Exp(-4*zf) - 1
		for j := -g.H; j < g.NY+g.H; j++ {
			phi := g.Lat(j) * math.Pi / 180
			surf := math.Cos(phi) * math.Cos(phi)
			for i := -g.H; i < g.NX+g.H; i++ {
				th := tz*surf + 0.01*math.Sin(7*float64(g.I0+i))
				s.Theta.Set(i, j, k, th)
				s.Salt.Set(i, j, k, 35-0.5*zf)
			}
		}
	}
}

// CoarseAtmosphereConfig is the 2.8125-degree atmospheric isomorph:
// 128 x 64 lateral, five levels (Fig. 11: nxyz = 5 * nxy), with the
// intermediate-complexity physics attached by the caller (package
// physics) or run dry when Forcing is nil.
func CoarseAtmosphereConfig(d tile.Decomp) Config {
	if d.NXg == 0 {
		d = tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 4, PeriodicX: true}
	}
	return Config{
		Name: "coarse-atmosphere",
		Iso:  Atmosphere,
		Grid: grid.Config{
			NX: d.NXg, NY: d.NYg, NZ: 5,
			Spherical: true, Lat0: -80, Lat1: 80, LonSpan: 360,
			// An equivalent-depth fluid standing in for the troposphere:
			// five 2-km layers.
			DZ: []float64{2000, 2000, 2000, 2000, 2000},
		},
		Kernel: kernel.Params{
			Dt:       405,
			AhMom:    8e5,
			AvMom:    1e-2,
			KhTracer: 8e5,
			KvTracer: 1e-2,
			ABEps:    0.01,
			EOS:      eos.DefaultAtmosphere(),

			ImplicitConvection: true,
		},
		Decomp:        d,
		SolverTol:     3e-3,
		SolverMaxIter: 300,
		Init:          AtmosphereInit,
		FpsMFlops:     PaperFpsMFlops,
		FdsMFlops:     PaperFdsMFlops,
	}
}

// AtmosphereInit sets a stratified, laterally uniform potential
// temperature with a tiny zonal perturbation to break symmetry (k = 0
// is the model top).  As in the Held-Suarez benchmark, the meridional
// contrast is not present initially: starting from a balanced rest
// state avoids a violent gravity-wave adjustment, and the radiative
// relaxation of the physics package builds the circulation on its own
// timescale.
func AtmosphereInit(g *grid.Local, s *kernel.State) {
	nz := g.NZ
	for k := 0; k < nz; k++ {
		height := 1 - g.ZFrac(k) // 1 at top, 0 at ground
		for j := -g.H; j < g.NY+g.H; j++ {
			phi := g.Lat(j) * math.Pi / 180
			for i := -g.H; i < g.NX+g.H; i++ {
				th := 285 + 30*height + 0.01*math.Sin(5*float64(g.I0+i))
				s.Theta.Set(i, j, k, th)
				s.Salt.Set(i, j, k, 0.002*math.Cos(phi)*math.Cos(phi)*(1-height))
			}
		}
	}
}

// GyreConfig is a small wind-driven double-gyre ocean box on a
// beta-plane — the quickstart configuration: walls all round, flat
// bottom, fast to run at any tile count.
func GyreConfig(nx, ny, nz int, d tile.Decomp) Config {
	if d.NXg == 0 {
		d = tile.Decomp{NXg: nx, NYg: ny, Px: 1, Py: 1}
	}
	return Config{
		Name: "gyre",
		Iso:  Ocean,
		Grid: grid.Config{
			NX: nx, NY: ny, NZ: nz,
			Lat0: 30, DX: 20e3 * 64 / float64(nx), DY: 20e3 * 64 / float64(ny),
			DZ: defaultDZ(nz, 1800),
		},
		Kernel: kernel.Params{
			Dt:       1200,
			AhMom:    5e3,
			AvMom:    1e-3,
			KhTracer: 500,
			KvTracer: 1e-5,
			BotDrag:  1e-6,
			ABEps:    0.01,
			EOS:      eos.DefaultOcean(),

			ImplicitConvection: true,
		},
		Decomp:        d,
		SolverTol:     1e-8,
		SolverMaxIter: 400,
		Forcing:       &WindStress{Tau0: 1e-4, RestoreDays: 60, ThetaEq: 22, ThetaPole: 8, SaltMean: 35},
		Init: func(g *grid.Local, s *kernel.State) {
			for k := 0; k < g.NZ; k++ {
				zf := g.ZFrac(k)
				for j := -g.H; j < g.NY+g.H; j++ {
					for i := -g.H; i < g.NX+g.H; i++ {
						s.Theta.Set(i, j, k, 18*math.Exp(-3*zf)+2)
						s.Salt.Set(i, j, k, 35)
					}
				}
			}
		},
		FpsMFlops: PaperFpsMFlops,
		FdsMFlops: PaperFdsMFlops,
	}
}
