package gcm

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hyades/internal/comm"
	"hyades/internal/gcm/tile"
)

// TestCheckpointRestartBitExact: run A for 10 steps; run B for 5, save,
// restore into a fresh model, run 5 more — the two must agree exactly.
func TestCheckpointRestartBitExact(t *testing.T) {
	cfg := smallGyre(1, 1)

	mA, _, err := RunSerial(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}

	mB, _, err := RunSerial(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mB.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	mC, err := New(cfg, &comm.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mC.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if mC.Steps != 5 {
		t.Fatalf("restored step count = %d", mC.Steps)
	}
	mC.Run(5)

	for k := 0; k < mA.G.NZ; k++ {
		for j := 0; j < mA.G.NY; j++ {
			for i := 0; i < mA.G.NX; i++ {
				if a, c := mA.S.Theta.At(i, j, k), mC.S.Theta.At(i, j, k); a != c {
					t.Fatalf("theta(%d,%d,%d): %g vs %g", i, j, k, a, c)
				}
				if a, c := mA.S.U.At(i, j, k), mC.S.U.At(i, j, k); a != c {
					t.Fatalf("u(%d,%d,%d): %g vs %g", i, j, k, a, c)
				}
				if a, c := mA.S.V.At(i, j, k), mC.S.V.At(i, j, k); a != c {
					t.Fatalf("v(%d,%d,%d): %g vs %g", i, j, k, a, c)
				}
			}
		}
	}
	for j := 0; j < mA.G.NY; j++ {
		for i := 0; i < mA.G.NX; i++ {
			if a, c := mA.S.Ps.At(i, j), mC.S.Ps.At(i, j); a != c {
				t.Fatalf("ps(%d,%d): %g vs %g", i, j, a, c)
			}
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := smallGyre(1, 1)
	m, _, err := RunSerial(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong grid.
	other := GyreConfig(24, 24, 3, tile.Decomp{NXg: 24, NYg: 24, Px: 1, Py: 1})
	other.FpsMFlops, other.FdsMFlops = 0, 0
	m2, err := New(other, &comm.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("grid mismatch accepted")
	}

	// Truncated stream.
	m3, err := New(cfg, &comm.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.Restore(bytes.NewReader(buf.Bytes()[:100])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}

	// Corrupted magic.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] ^= 0xff
	if err := m3.Restore(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestRestoreNamesFailedSection: a stream that dies mid-state must say
// exactly which section of the state was lost, so a bad restart file
// is diagnosable without a hex dump.
func TestRestoreNamesFailedSection(t *testing.T) {
	cfg := smallGyre(1, 1)
	m, _, err := RunSerial(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := func() *Model {
		m2, err := New(cfg, &comm.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		return m2
	}

	// Truncated just past the header: the first 3-D section fails.
	err = fresh().Restore(bytes.NewReader(buf.Bytes()[:100]))
	if err == nil || !strings.Contains(err.Error(), "restore section U") {
		t.Errorf("early truncation error does not name section U: %v", err)
	}

	// Truncated one byte short: the trailing 2-D section fails.
	err = fresh().Restore(bytes.NewReader(buf.Bytes()[:buf.Len()-1]))
	if err == nil || !strings.Contains(err.Error(), "restore section Ps") {
		t.Errorf("late truncation error does not name section Ps: %v", err)
	}
}

// TestCheckpointPreservesEnergy: a restore must not perturb the
// solution at all — KE before save equals KE after restore.
func TestCheckpointPreservesEnergy(t *testing.T) {
	cfg := smallGyre(1, 1)
	m, _, err := RunSerial(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	keBefore := m.TotalKE()
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg, &comm.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if ke := m2.TotalKE(); math.Abs(ke-keBefore) > 0 {
		t.Fatalf("KE changed across restore: %g vs %g", ke, keBefore)
	}
}
