// Package ipa is the injected interprocedural acceptance fixture: an
// event-path package (its import path is under internal/des, so the
// sim-core rules apply) with two seeded violations that are invisible
// to intraprocedural analysis —
//
//   - Tick reaches time.Now through two helper frames in another
//     package (detsource must report the full chain), and
//   - Offload hands des.Proc.Exec a closure that sends on a mailbox
//     (execpure must reject the phase).
//
// cmd/hyadeslint's cross-mode test runs this package through the
// standalone driver and the go-vet unit protocol and requires
// byte-identical findings.  testdata directories are excluded from
// ./... pattern walks, so the seeded violations never taint the real
// tree's clean run.
package ipa

import (
	"hyades/cmd/hyadeslint/testdata/wallutil"
	"hyades/internal/des"
)

var last int64

// Tick is event-path code whose wall-clock read hides two frames below
// a call into another package.
func Tick() {
	last = wallutil.Stamp()
}

// Offload hands the pool a phase that communicates: the send blocks on
// virtual time a worker cannot advance.
func Offload(p *des.Proc, m *des.Mailbox[int]) {
	p.Exec(0, func() { m.Send(1) })
}
