// Package ptsphase is the points-to acceptance fixture: the phases
// handed to des.Proc.Exec are func values drawn from locally-built
// tables, so they are invisible to syntactic resolution and resolvable
// only through the Andersen points-to analysis —
//
//   - Dispatch's table mixes an impure named phase with a pure
//     literal: execpure must report the impure member with its witness
//     chain and must NOT emit an unresolvable finding, and
//   - Clean's candidate set is entirely pure: no finding at all.
//
// cmd/hyadeslint's cross-mode test runs this package through the
// standalone driver and the go-vet unit protocol and requires
// byte-identical findings.  testdata directories are excluded from
// ./... pattern walks, so the seeded violation never taints the real
// tree's clean run.
package ptsphase

import "hyades/internal/des"

var count int

func record() { count++ }

// settle is engine-pure: it touches nothing beyond its own frame.
func settle() { _ = 2 }

// Dispatch selects its phase from a locally-built table; points-to
// proves the complete candidate set, so the impure member is reported
// like a named function and the unresolvable escape hatch is unused.
func Dispatch(p *des.Proc) {
	phases := []func(){record, func() { _ = 1 }}
	f := phases[0]
	p.Exec(0, f)
}

// Clean offloads a func value whose whole candidate set is pure.
func Clean(p *des.Proc) {
	phases := []func(){settle}
	f := phases[0]
	p.Exec(0, f)
}
