// Event scheduler implementations.
//
// The kernel's contract with its scheduler is a strict total order: events
// execute in ascending (at, seq), where seq is the global schedule counter.
// Any structure that honours that order is digest-equivalent — the
// simulation cannot observe which one is underneath.  Two are provided:
//
//   - ladderQueue (the default): a ladder queue in the style of Tang,
//     Goh & Thng.  Amortized O(1) enqueue and dequeue via time-bucketed
//     rungs, O(1) cancellation, no comparison work proportional to the
//     pending-event count.  This is what lets the simulated machine grow
//     from 32 to 1,024 nodes without the scheduler becoming the hot path.
//   - heapSched: the original container/heap binary heap, O(log n) per
//     operation.  Kept behind NewEngineWithScheduler so the determinism
//     suite can assert bit-identical digests across both implementations.
package des

import (
	"container/heap"

	"hyades/internal/units"
)

// scheduler is the pending-event set.  pop and peek return events in
// ascending (at, seq) order; they may surface cancelled (dead) events,
// which the engine filters and recycles.  cancel reports whether the
// event left the structure immediately (true: the caller may recycle it
// now) or was tombstoned in place (false: it comes back through pop).
// len counts live events only.
type scheduler interface {
	push(ev *event)
	pop() *event
	peek() *event
	cancel(ev *event) bool
	len() int
}

// SchedulerKind selects the event-queue implementation behind an Engine.
type SchedulerKind uint8

const (
	// SchedLadder is the default ladder queue: O(1) amortized
	// enqueue/dequeue/cancel.
	SchedLadder SchedulerKind = iota
	// SchedHeap is the original binary heap, retained for the
	// scheduler-equivalence determinism tests.
	SchedHeap
)

// ---------------------------------------------------------------------------
// Binary heap (the original scheduler).

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// heapSched adapts eventHeap to the scheduler interface.  Cancellation
// removes outright (heap.Remove, O(log n) with index maintenance on
// every swap), so it never surfaces dead events.
type heapSched struct{ h eventHeap }

func (s *heapSched) push(ev *event) { heap.Push(&s.h, ev) }
func (s *heapSched) pop() *event {
	if len(s.h) == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*event)
}
func (s *heapSched) peek() *event {
	if len(s.h) == 0 {
		return nil
	}
	return s.h[0]
}
func (s *heapSched) cancel(ev *event) bool {
	heap.Remove(&s.h, ev.idx)
	return true
}
func (s *heapSched) len() int { return len(s.h) }

// ---------------------------------------------------------------------------
// Ladder queue.

const (
	// ladderBuckets is the bucket count per rung.  With 64 buckets a
	// spawn divides a bucket's span by 64, so even a 1-hour watchdog
	// horizon (3.6e15 ps) refines to single-picosecond buckets in
	// ceil(log64 3.6e15) = 9 levels — but in practice the sort
	// threshold stops refinement after one or two.
	ladderBuckets = 64
	// ladderSortThreshold: a bucket with at most this many events is
	// sorted straight into bottom rather than spawning a finer rung.
	// Sorting this many events costs tens of nanoseconds apiece;
	// refining one level deeper costs a rung spawn plus a re-add per
	// event, so the break-even sits well above the bucket count (64) —
	// a threshold below it risks a pathological extra level whenever a
	// bucket splits just unevenly enough.
	ladderSortThreshold = 128
	// ladderMaxRungs bounds refinement depth; a bucket at the limit is
	// sorted regardless of size (degenerate same-timestamp storms hit
	// the width==1 stop long before this).
	ladderMaxRungs = 8
)

// Values of event.rng identifying the container an event sits in; a
// value >= 0 is an index into ladderQueue.rungs.
const (
	rngTop    int8 = -1
	rngBottom int8 = -2
)

// rung is one refinement level: ladderBuckets equal-width time buckets
// starting at start.  cur indexes the first bucket not yet drained;
// count is the number of events currently stored across all buckets.
// Buckets are unsorted — order is imposed only when a bucket's events
// reach bottom.  Widths are rounded up to powers of two (width ==
// 1<<shift) so the per-push bucket index is a shift, not an int64
// division — the single hottest instruction in the scheduler.
type rung struct {
	start   units.Time
	width   units.Time
	shift   uint
	cur     int
	count   int
	buckets [ladderBuckets][]*event
}

// curStart is the left edge of the first undrained bucket: events below
// it belong to a deeper rung or to bottom.
func (r *rung) curStart() units.Time {
	return r.start + units.Time(r.cur)*r.width
}

// add places ev in its bucket.  The caller guarantees
// curStart <= ev.at < start + ladderBuckets*width.
func (r *rung) add(ev *event, rngIdx int8) {
	b := int((ev.at - r.start) >> r.shift)
	ev.rng = rngIdx
	ev.bkt = int32(b)
	ev.idx = len(r.buckets[b])
	r.buckets[b] = append(r.buckets[b], ev)
	r.count++
}

// reset clears the rung for reuse, keeping bucket capacity.
func (r *rung) reset() {
	for i := range r.buckets {
		b := r.buckets[i]
		for j := range b {
			b[j] = nil
		}
		r.buckets[i] = b[:0]
	}
	r.cur, r.count = 0, 0
	r.start, r.width = 0, 0
}

// ladderQueue is the default scheduler.  Structure, coarse to fine:
//
//	top    — unsorted spill list for events at or beyond topStart
//	rungs  — bucketed refinement levels (rungs[0] coarsest); each
//	         deeper rung subdivides one bucket of its parent
//	bottom — the sorted head of the timeline, drained by cursor
//
// Ordering invariant: every event in bottom[cursor:] precedes (in
// (at, seq) order) every event in any rung, and every rung precedes all
// rungs above it and top.  Pops therefore come from bottom only, and
// refilling bottom from the deepest rung's next bucket preserves the
// global total order — which is what makes the ladder digest-equivalent
// to the heap.
//
// Cancellation: top and rung buckets are unsorted, so a cancelled event
// is swap-removed in O(1) via its (rng, bkt, idx) location stamp.  Only
// bottom — at most one sorted bucket, ≤ ladderSortThreshold events in
// steady state — uses tombstones (event.dead), drained at pop.  This
// matters because every park of every process arms a watchdog event
// (1 hour of virtual time by default) that is almost always cancelled:
// eager removal in the unsorted regions keeps millions of armed-then-
// cancelled watchdogs from accumulating as garbage.
type ladderQueue struct {
	top            []*event
	topMin, topMax units.Time // conservative bounds over top (stale after cancels: min only ever too low, max too high — never falsely equal)
	topStart       units.Time // events at/after this go to top
	rungs          []*rung
	spare          []*rung // retired rungs, bucket capacity preserved
	bottom         []*event
	cursor         int
	live           int
}

func (l *ladderQueue) len() int { return l.live }

func (l *ladderQueue) push(ev *event) {
	l.live++
	if ev.at >= l.topStart {
		ev.rng = rngTop
		ev.idx = len(l.top)
		if len(l.top) == 0 {
			l.topMin, l.topMax = ev.at, ev.at
		} else {
			if ev.at < l.topMin {
				l.topMin = ev.at
			}
			if ev.at > l.topMax {
				l.topMax = ev.at
			}
		}
		l.top = append(l.top, ev)
		return
	}
	// Coarse to fine: the first rung whose undrained span contains the
	// event takes it.  Anything earlier than every rung's cursor lands
	// in the sorted bottom.
	for i, r := range l.rungs {
		if ev.at >= r.curStart() {
			r.add(ev, int8(i))
			return
		}
	}
	l.insertBottom(ev)
}

// insertBottom places ev into the sorted region bottom[cursor:].  The
// engine clamps timestamps to the present, so the insertion point is
// never before cursor; ev carries the newest seq, so among equal
// timestamps it sorts last — FIFO preserved.
//
// The drained prefix bottom[:cursor] is dead weight: in steady state
// every pop of a wake event triggers a push of the next one into
// bottom, so the region never fully drains and a plain append would
// grow the backing array without bound (the dominant allocation of the
// whole simulator before compaction).  Sliding the live tail back to
// the front once the prefix outweighs it keeps the array at O(pending)
// while preserving order, so the fix is invisible to the event
// sequence.
func (l *ladderQueue) insertBottom(ev *event) {
	ev.rng = rngBottom
	if c := l.cursor; c >= 32 && c >= len(l.bottom)-c {
		n := copy(l.bottom, l.bottom[c:])
		clear(l.bottom[n:])
		l.bottom = l.bottom[:n]
		l.cursor = 0
	}
	lo, hi := l.cursor, len(l.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(l.bottom[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l.bottom = append(l.bottom, nil)
	copy(l.bottom[lo+1:], l.bottom[lo:])
	l.bottom[lo] = ev
}

func (l *ladderQueue) peek() *event {
	for l.cursor >= len(l.bottom) {
		l.bottom = l.bottom[:0]
		l.cursor = 0
		if !l.refill() {
			// Fully drained: reopen top at time zero so the next epoch
			// of pushes takes the O(1) append path again.
			l.topStart = 0
			return nil
		}
	}
	return l.bottom[l.cursor]
}

func (l *ladderQueue) pop() *event {
	ev := l.peek()
	if ev == nil {
		return nil
	}
	l.bottom[l.cursor] = nil
	l.cursor++
	if !ev.dead {
		l.live--
	}
	return ev
}

func (l *ladderQueue) cancel(ev *event) bool {
	l.live--
	switch ev.rng {
	case rngBottom:
		ev.dead = true
		return false
	case rngTop:
		last := len(l.top) - 1
		moved := l.top[last]
		l.top[ev.idx] = moved
		moved.idx = ev.idx
		l.top[last] = nil
		l.top = l.top[:last]
		return true
	default:
		r := l.rungs[ev.rng]
		b := r.buckets[ev.bkt]
		last := len(b) - 1
		moved := b[last]
		b[ev.idx] = moved
		moved.idx = ev.idx
		b[last] = nil
		r.buckets[ev.bkt] = b[:last]
		r.count--
		return true
	}
}

// refill moves the next timeline segment into the (empty) bottom and
// sorts it.  It reports false when the whole queue is physically empty.
func (l *ladderQueue) refill() bool {
	for {
		if n := len(l.rungs); n > 0 {
			r := l.rungs[n-1]
			if r.count == 0 {
				l.dropRung()
				continue
			}
			for len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			b := r.buckets[r.cur]
			bucketStart := r.curStart()
			if len(b) <= ladderSortThreshold || r.width <= 1 || n >= ladderMaxRungs {
				l.bottom = append(l.bottom, b...)
				for _, ev := range l.bottom {
					ev.rng = rngBottom
				}
				sortEvents(l.bottom)
			} else {
				// Oversized bucket: refine into a child rung covering
				// exactly this bucket's span.
				child := l.newRung(bucketStart, (r.width+ladderBuckets-1)/ladderBuckets)
				ci := int8(n)
				for _, ev := range b {
					child.add(ev, ci)
				}
				l.rungs = append(l.rungs, child)
			}
			for j := range b {
				b[j] = nil
			}
			r.buckets[r.cur] = b[:0]
			r.count -= len(b)
			r.cur++
			if len(l.bottom) > 0 {
				return true
			}
			continue
		}
		if len(l.top) == 0 {
			return false
		}
		if l.topMin == l.topMax {
			// Every event in top shares one timestamp: bucketing cannot
			// subdivide, sort straight into bottom (by seq).
			l.bottom = append(l.bottom, l.top...)
			for _, ev := range l.bottom {
				ev.rng = rngBottom
			}
			sortEvents(l.bottom)
			l.clearTop()
			return true
		}
		r := l.newRung(l.topMin, (l.topMax-l.topMin)/ladderBuckets+1)
		for _, ev := range l.top {
			r.add(ev, 0)
		}
		l.rungs = append(l.rungs, r)
		l.clearTop()
	}
}

// clearTop empties top (capacity preserved) and advances topStart past
// everything that was in it, so later pushes cannot land behind the
// rung just built.
func (l *ladderQueue) clearTop() {
	for i := range l.top {
		l.top[i] = nil
	}
	l.top = l.top[:0]
	l.topStart = l.topMax + 1
}

func (l *ladderQueue) newRung(start, width units.Time) *rung {
	var r *rung
	if n := len(l.spare); n > 0 {
		r = l.spare[n-1]
		l.spare[n-1] = nil
		l.spare = l.spare[:n-1]
	} else {
		r = new(rung)
	}
	// Round the requested width up to a power of two.  A rung may then
	// cover more than the span it refines, which is harmless — bucket
	// indices only shrink — and buys a shift in place of a division on
	// every add.
	s := uint(0)
	w := int64(1)
	for w < int64(width) {
		w <<= 1
		s++
	}
	r.start, r.width, r.shift = start, units.Time(w), s
	return r
}

func (l *ladderQueue) dropRung() {
	n := len(l.rungs)
	r := l.rungs[n-1]
	l.rungs[n-1] = nil
	l.rungs = l.rungs[:n-1]
	r.reset()
	l.spare = append(l.spare, r)
}

// ---------------------------------------------------------------------------
// Sorting.  (at, seq) keys are unique, so any comparison sort yields
// the one total order — determinism does not depend on stability.  Own
// implementation because sort.Slice allocates (closure + interface
// header) on the event hot path.

func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortEvents sorts s ascending by (at, seq): insertion sort for small
// runs, median-of-three quicksort above that.
func sortEvents(s []*event) {
	for len(s) > 24 {
		p := partitionEvents(s)
		if p < len(s)-p-1 {
			sortEvents(s[:p])
			s = s[p+1:]
		} else {
			sortEvents(s[p+1:])
			s = s[:p]
		}
	}
	for i := 1; i < len(s); i++ {
		ev := s[i]
		j := i - 1
		for j >= 0 && eventBefore(ev, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = ev
	}
}

func partitionEvents(s []*event) int {
	n := len(s)
	m := n / 2
	// Median of first/middle/last as pivot, parked at the end.
	if eventBefore(s[m], s[0]) {
		s[m], s[0] = s[0], s[m]
	}
	if eventBefore(s[n-1], s[0]) {
		s[n-1], s[0] = s[0], s[n-1]
	}
	if eventBefore(s[n-1], s[m]) {
		s[n-1], s[m] = s[m], s[n-1]
	}
	s[m], s[n-2] = s[n-2], s[m]
	pivot := s[n-2]
	i := 0
	for j := 0; j < n-2; j++ {
		if eventBefore(s[j], pivot) {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[n-2] = s[n-2], s[i]
	return i
}
