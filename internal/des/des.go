// Package des is a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The Hyades reproduction models the whole cluster — processors, PCI
// buses, the StarT-X NIUs and the Arctic switch fabric — in virtual time.
// The kernel executes exactly one activity at a time (either an event
// closure or a resumed process), so a simulation run is a deterministic
// function of its inputs: every timing figure in the paper can be
// regenerated bit-for-bit.
//
// Two styles of activity coexist:
//
//   - Event closures, scheduled with Engine.Schedule, model purely
//     reactive hardware (link pumps, DMA engines, router stages).
//   - Processes, created with Engine.Spawn, model threads of control with
//     their own program counter (application code on a simulated
//     processor).  A process blocks by calling Delay, Mailbox.Recv or
//     Semaphore.Acquire; control transfers back to the kernel until the
//     wake-up event fires.
//
// Processes are backed by goroutines but are strictly coroutines: the
// kernel hands a "baton" to at most one goroutine at a time, so process
// code may freely touch shared simulation state without locking.
package des

import (
	"fmt"
	"runtime/debug"
	"strings"

	"hyades/internal/units"
)

// event is a scheduled activity.  The scheduler owns the bookkeeping
// fields: idx is the event's slot within its container (heap position,
// or position inside an unsorted ladder region, where it makes
// cancellation an O(1) swap-remove); rng and bkt locate that container
// in the ladder; dead marks a tombstoned cancellation awaiting drain.
// Cancelled timers must not advance the virtual clock to their expiry,
// so a dead event is skipped — never executed — when popped.
type event struct {
	at   units.Time
	seq  uint64 // tie-break: FIFO among simultaneous events
	fn   func()
	idx  int
	bkt  int32
	rng  int8
	dead bool
}

// Engine is the simulation kernel.  Create one with NewEngine; it is not
// safe for concurrent use from multiple OS-level goroutines other than
// through the coroutine discipline described in the package comment.
type Engine struct {
	now   units.Time
	sched scheduler
	seq   uint64
	// procs holds the live processes in spawn order.  A slice, not a
	// map: Blocked and Close iterate it, and map iteration order is
	// randomized — a determinism hazard the maprange analyzer bans
	// from the event path.
	procs   []*Proc
	stopped bool

	// free is the event freelist.  Every Schedule used to allocate an
	// event; recycling fired (and cancelled) events makes scheduling
	// allocation-free in steady state — the dominant allocation of the
	// communication hot paths.
	free []*event

	// pool, when set, executes offloaded compute phases (Proc.Exec) on
	// host worker goroutines while the baton keeps metering virtual
	// time.  Nil means Exec runs inline.
	pool *Pool

	// watchdog bounds any single blocking wait; see SetWatchdog.
	watchdog units.Time
	// limit is the active RunUntil bound, consulted by the Delay
	// fast path (a process may only advance the clock inline up to
	// the point where the run loop itself would have stopped).
	limit units.Time
	// failed stops the run loop with a recorded cause; see Fail.
	failed error
	// Direct-handoff baton state.  xfer is the process the event that
	// just executed woke: the dispatcher completes the handoff after
	// the event fn returns (every wake is the last effect of its
	// event, so no engine work is reordered).  mainCh parks the
	// Run/RunUntil caller while a process goroutine is dispatching.
	// engPanic carries a panic raised by an event that executed on a
	// process dispatcher back to the run loop's caller, preserving
	// the contract that watchdog and scheduling panics unwind Run —
	// never a baton goroutine.  single makes dispatch loops stop
	// after the current event (Engine.Step).
	xfer     *Proc
	mainCh   chan struct{}
	engPanic interface{}
	single   bool
	// disp is the process currently acting as dispatcher (nil when the
	// Run/RunUntil caller is dispatching).  finishKill consults it: a
	// process dispatching the very event that kills it cannot hand
	// itself the unwind baton and must unwind after the event returns.
	disp *Proc
	// procFailure carries a panic out of a process goroutine so wake
	// can re-raise it in engine context, where Run's caller can
	// recover it (a raw panic in the baton goroutine would kill the
	// whole OS process instead).
	procFailure *ProcPanic
}

// NewEngine returns an empty kernel at virtual time zero, using the
// default ladder-queue scheduler.
func NewEngine() *Engine {
	return NewEngineWithScheduler(SchedLadder)
}

// NewEngineWithScheduler returns an empty kernel with an explicit
// event-queue implementation.  Both kinds execute events in the same
// strict (at, seq) order, so a simulation's digest is identical under
// either — the determinism suite asserts exactly that.
func NewEngineWithScheduler(kind SchedulerKind) *Engine {
	e := &Engine{mainCh: make(chan struct{})}
	switch kind {
	case SchedHeap:
		e.sched = &heapSched{}
	default:
		e.sched = &ladderQueue{}
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Time { return e.now }

// Events returns the total number of activities scheduled since the
// engine was created.  Two runs of the same simulation with the same
// inputs must report the same count — a cheap fingerprint for
// determinism regression tests.
func (e *Engine) Events() uint64 { return e.seq }

// newEvent takes an event from the freelist (or allocates one) and
// stamps it with the next sequence number.
func (e *Engine) newEvent(at units.Time, fn func()) *event {
	e.seq++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
		return ev
	}
	return &event{at: at, seq: e.seq, fn: fn}
}

// recycle returns a fired or cancelled event to the freelist.  The
// closure is dropped so recycling never retains captured state.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.dead = false
	e.free = append(e.free, ev)
}

// cancelEvent removes a queued event.  Schedulers that tombstone
// instead of removing hand the event back through popNext, which
// recycles it there.
func (e *Engine) cancelEvent(ev *event) {
	if e.sched.cancel(ev) {
		e.recycle(ev)
	}
}

// popNext returns the next live event, draining (and recycling) any
// tombstoned cancellations in front of it.  Nil means the queue is
// empty.
func (e *Engine) popNext() *event {
	for {
		ev := e.sched.pop()
		if ev == nil || !ev.dead {
			return ev
		}
		e.recycle(ev)
	}
}

// peekNext returns the next live event without removing it; dead events
// at the front are drained so the caller's timestamp check sees a real
// activity.
func (e *Engine) peekNext() *event {
	for {
		ev := e.sched.peek()
		if ev == nil || !ev.dead {
			return ev
		}
		e.sched.pop()
		e.recycle(ev)
	}
}

// Schedule runs fn at now+d.  A non-positive d means "as soon as
// possible", i.e. at the current time but after already-queued
// simultaneous events.
func (e *Engine) Schedule(d units.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.sched.push(e.newEvent(e.now+d, fn))
}

// ScheduleAt runs fn at absolute time t (clamped to the present).
func (e *Engine) ScheduleAt(t units.Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.sched.push(e.newEvent(t, fn))
}

// Run executes events until the event queue is empty.  Processes blocked
// on mailboxes or semaphores with no pending wake-up are left blocked;
// use Blocked to detect them (a non-zero count usually means deadlock in
// the modelled system).
func (e *Engine) Run() {
	e.RunUntil(units.Never)
}

// RunUntil executes events with timestamps <= limit.
func (e *Engine) RunUntil(limit units.Time) {
	prev := e.limit
	e.limit = limit
	defer func() { e.limit = prev }()
	for !e.stopped && e.failed == nil {
		ev := e.peekNext()
		if ev == nil || ev.at > limit {
			return
		}
		e.sched.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
		e.recycle(ev)
		if q := e.xfer; q != nil {
			// The event woke a process: hand it the baton directly and
			// park until the dispatch chain returns it (the woken
			// process, and every process it transitively hands to,
			// keeps draining the queue in the same (at, seq) order
			// this loop would).
			e.xfer = nil
			q.resume <- true
			<-e.mainCh
			e.reraise()
		}
	}
}

// reraise surfaces a failure carried back with the baton: a panic from
// an event that executed on a process dispatcher, or a process body
// panic, re-thrown in the run loop caller's context.
func (e *Engine) reraise() {
	if r := e.engPanic; r != nil {
		e.engPanic = nil
		panic(r)
	}
	if f := e.procFailure; f != nil {
		e.procFailure = nil
		panic(f)
	}
}

// Fail records a fatal simulation error and stops the run loop at the
// current virtual time.  The modelled system uses it to surface
// unrecoverable protocol failures (an unreachable peer, an exhausted
// retry budget) as an error from the driver instead of a silent wedge.
// Only the first failure is kept.
func (e *Engine) Fail(err error) {
	if e.failed == nil {
		e.failed = err
	}
}

// Err returns the error recorded by Fail, if any.
func (e *Engine) Err() error { return e.failed }

// SetWatchdog arms the blocking-wait watchdog: any single park on a
// mailbox, semaphore or signal that lasts longer than d of virtual time
// panics (from engine context, so Run's caller can recover) with a
// *WatchdogError carrying the full set of parked waiters.  A wedged
// protocol thereby becomes a crash with a who-waits-on-whom map instead
// of a silently parked process.  d = 0 disables the watchdog.
func (e *Engine) SetWatchdog(d units.Time) { e.watchdog = d }

// WatchdogLimit returns the configured watchdog bound (0 = disabled).
func (e *Engine) WatchdogLimit() units.Time { return e.watchdog }

// WaitInfo describes one blocked process for watchdog/deadlock dumps.
type WaitInfo struct {
	Proc  string     // process name
	On    string     // facility it is parked on
	Since units.Time // virtual time the park began
}

// Waiters returns the currently blocked processes in spawn order.
func (e *Engine) Waiters() []WaitInfo {
	var ws []WaitInfo
	for _, p := range e.procs {
		if p.blocked {
			ws = append(ws, WaitInfo{Proc: p.name, On: p.waitOn, Since: p.waitStart})
		}
	}
	return ws
}

// FormatWaiters renders a waiter dump, one process per line.
func FormatWaiters(ws []WaitInfo) string {
	var b strings.Builder
	for _, w := range ws {
		on := w.On
		if on == "" {
			on = "<unnamed>"
		}
		fmt.Fprintf(&b, "  %s waits on %s since %v\n", w.Proc, on, w.Since)
	}
	return strings.TrimRight(b.String(), "\n")
}

// WatchdogError is the panic payload of a tripped wait watchdog.
type WatchdogError struct {
	Limit   units.Time // the configured bound that was exceeded
	Culprit string     // the wait that tripped
	Waiters []WaitInfo // everyone parked at trip time
}

// Error implements error.
func (w *WatchdogError) Error() string {
	return fmt.Sprintf("des: watchdog: %s exceeded the %v wait limit; parked waiters:\n%s",
		w.Culprit, w.Limit, FormatWaiters(w.Waiters))
}

// ProcPanic wraps a panic raised inside a simulated process.  The
// kernel re-raises it from engine context so that the caller of Run can
// recover and report it; Value is the original panic payload and Stack
// the goroutine stack captured at the panic site.
type ProcPanic struct {
	Proc  string
	Value any
	Stack []byte
}

// Error implements error.
func (p *ProcPanic) Error() string {
	return fmt.Sprintf("des: process %s panicked: %v", p.Proc, p.Value)
}

// Unwrap exposes the original payload when it was itself an error.
func (p *ProcPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Timer is a cancellable one-shot activity created by Engine.After.
type Timer struct {
	eng *Engine
	ev  *event
}

// After schedules fn at now+d and returns a handle that can cancel it.
// Unlike Schedule, a cancelled After is removed from the event queue
// outright: it neither runs nor drags the virtual clock to its expiry.
func (e *Engine) After(d units.Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := &Timer{eng: e}
	ev := e.newEvent(e.now+d, nil)
	ev.fn = func() {
		t.ev = nil
		fn()
	}
	t.ev = ev
	e.sched.push(ev)
	return t
}

// Cancel removes the timer from the event queue.  It is a no-op if the
// timer already fired or was already cancelled.
func (t *Timer) Cancel() {
	if t.ev == nil {
		return
	}
	ev := t.ev
	t.ev = nil
	t.eng.cancelEvent(ev)
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t.ev != nil }

// Step executes a single event and reports whether one was available.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	ev := e.popNext()
	if ev == nil {
		return false
	}
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn()
	e.recycle(ev)
	if q := e.xfer; q != nil {
		// single keeps the woken process from dispatching further
		// events: it runs to its next block, then returns the baton.
		e.xfer = nil
		e.single = true
		q.resume <- true
		<-e.mainCh
		e.single = false
		e.reraise()
	}
	return true
}

// Pending returns the number of queued (uncancelled) events.
func (e *Engine) Pending() int { return e.sched.len() }

// Blocked returns the number of live processes currently waiting on a
// blocking primitive.
func (e *Engine) Blocked() int {
	n := 0
	for _, p := range e.procs {
		if p.blocked {
			n++
		}
	}
	return n
}

// Close terminates all live processes by unwinding their goroutines.
// After Close the engine must not be used.  It is safe to call Close on
// an engine whose Run has returned; it is also idempotent.
func (e *Engine) Close() {
	e.stopped = true
	for _, p := range e.procs {
		if p.blocked {
			p.kill()
		}
	}
	e.procs = nil
}

// dropProc unregisters a finished process, preserving spawn order.
// Called with the baton held, so no other activity touches the slice.
func (e *Engine) dropProc(p *Proc) {
	for i, q := range e.procs {
		if q == p {
			e.procs = append(e.procs[:i], e.procs[i+1:]...)
			return
		}
	}
}

// stopSignal is the panic payload used to unwind a killed process.
type stopSignal struct{}

// Interrupt is the panic payload raised inside a process that was
// asynchronously interrupted with Proc.Interrupt.  Unlike stopSignal it
// unwinds through the process's own code, so rank bodies can recover it
// at a well-defined frame, inspect the cause and retry.  Anything other
// than an *Interrupt recovered in such a handler must be re-panicked.
type Interrupt struct {
	Proc  string
	Cause error
}

// Error implements error.
func (i *Interrupt) Error() string {
	return fmt.Sprintf("des: process %s interrupted: %v", i.Proc, i.Cause)
}

// Unwrap exposes the interrupt cause.
func (i *Interrupt) Unwrap() error { return i.Cause }

// waiterList is a blocking facility that can detach a parked process —
// the deadline-expiry hook of parkDeadline.  Implemented by Mailbox and
// Signal; an interface rather than a closure so arming a deadline wait
// allocates nothing.
type waiterList interface {
	dropWaiter(p *Proc) bool
}

// Proc is a simulated thread of control.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan bool // true = run, false = unwind
	yield   chan struct{}
	blocked bool
	dead    bool

	// wakeFn is the bound wake method, created once at spawn: the
	// blocking primitives schedule it directly instead of allocating a
	// fresh closure per wake-up.
	wakeFn func()

	// waitOn/waitStart describe the current park for watchdog and
	// deadlock dumps; set by the blocking primitives.
	waitOn    string
	waitStart units.Time

	// Park-expiry state: wdEv is the armed watchdog/deadline event
	// (nil when idle), wdFireFn the bound expiry handler, wdFacility
	// the facility to detach from on a deadline expiry (nil for a
	// watchdog park, whose expiry panics instead), expired the outcome
	// flag parkDeadline reads back.  One event object cycles through
	// the engine freelist instead of a Timer + closures per park.
	wdEv       *event
	wdFireFn   func()
	wdFacility waiterList
	expired    bool

	// Asynchronous-termination state.  intr is a pending Interrupt
	// cause, raised in process context at the next blocking boundary;
	// parkFac is the facility of the current park (so Interrupt and
	// Kill can detach a parked process); inExec marks a pool-offloaded
	// compute phase, during which termination is deferred until the
	// phase's completion wake (preserving the happens-before edge with
	// the pool worker); killPending records a Kill deferred that way.
	intr        error
	parkFac     waiterList
	inExec      bool
	killPending bool
	// selfKill marks a process killed by an event it was itself
	// dispatching; the dispatch loop unwinds it at the next event
	// boundary and the dying goroutine keeps dispatching on its way
	// out (see finishKill).
	selfKill bool

	// Exec offload state, created lazily on the first pooled Exec and
	// reused for every later one: a Proc has at most one outstanding
	// offloaded phase, so one buffered completion channel and one bound
	// continuation cover them all without per-call allocation.
	execDone   chan struct{}
	execContFn func()
}

// Spawn creates a process running fn and schedules its first activation
// "now".  fn runs in coroutine discipline; when it returns the process
// disappears.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan bool),
		yield:  make(chan struct{}),
	}
	p.wakeFn = p.wake
	p.wdFireFn = p.wdFire
	e.procs = append(e.procs, p)
	// The kernel's coroutine baton: the one legitimate raw goroutine
	// in the simulation core.  It runs only while holding the baton
	// (handed over via p.resume / p.yield), so it never races with
	// engine state.  All other concurrency must go through Spawn.
	//lint:allow nogoroutine kernel baton launch; coroutine discipline documented above
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopSignal); ok {
					if p.selfKill {
						// Killed by an event this process was itself
						// dispatching: no killer is waiting for the
						// yield handshake, so keep dispatching on the
						// way out instead.
						e.exitDispatch()
						return
					}
					// Killed by Engine.Close or Proc.Kill.  Hand the baton
					// back so the killer can proceed synchronously.
					p.yield <- struct{}{}
					return
				}
				// Real bug in simulation code: capture it and hand the
				// baton back so wake re-raises in engine context, where
				// the caller of Run can recover and report it.  A raw
				// re-panic here would crash the whole OS process from a
				// bare goroutine, unrecoverable by any test.
				p.dead = true
				e.dropProc(p)
				e.procFailure = &ProcPanic{Proc: p.name, Value: r, Stack: debug.Stack()}
				e.mainCh <- struct{}{}
			}
		}()
		if !<-p.resume {
			panic(stopSignal{})
		}
		fn(p)
		p.dead = true
		e.dropProc(p)
		e.exitDispatch()
	}()
	p.blocked = true
	e.Schedule(0, p.wakeFn)
	return p
}

// wake marks p runnable.  The baton itself moves when the current
// event fn returns: the dispatcher sees e.xfer set and completes the
// handoff (or, when p is the dispatcher, simply returns from block).
// Every caller invokes wake as the last effect of its event, so
// deferring the transfer to the event boundary reorders nothing.
// Must only be called from engine context (inside an event).
func (p *Proc) wake() {
	if p.dead {
		return
	}
	if p.killPending {
		// A Kill arrived while the process was off in a pool-offloaded
		// compute phase; its completion wake is the first safe point to
		// unwind (the pool worker has finished with the process's data).
		p.killPending = false
		p.finishKill()
		return
	}
	p.blocked = false
	p.eng.xfer = p
}

// kill unwinds a blocked process.  Called from Engine.Close only.
func (p *Proc) kill() {
	if p.dead {
		return
	}
	p.dead = true
	p.resume <- false
	<-p.yield
}

// Kill terminates a blocked process at the current virtual instant, as
// a node crash does: the process unwinds without running any more
// simulated work, it is detached from whatever facility it was parked
// on, and its pending wake-ups become no-ops (dropped events).  Must be
// called from engine or another process's context, never on the running
// process itself.  Killing a dead process is a no-op.
func (p *Proc) Kill() {
	if p.dead {
		return
	}
	if p.inExec {
		// Mid-Exec: the pool worker may still be touching the process's
		// arrays on another OS thread.  Defer the unwind to the phase's
		// completion wake, which synchronizes with the worker first.
		p.killPending = true
		return
	}
	p.finishKill()
}

// finishKill detaches and unwinds a blocked process (engine context).
func (p *Proc) finishKill() {
	if p.parkFac != nil {
		p.parkFac.dropWaiter(p)
		p.parkFac = nil
	}
	p.disarmWd()
	p.wdFacility = nil
	p.dead = true
	p.eng.dropProc(p)
	if p.eng.disp == p {
		// The process is dispatching the very event that kills it (a
		// node crash reaches the node's own ranks this way whenever
		// one of them holds the baton): it cannot complete a
		// synchronous unwind handshake with itself.  Flag the suicide;
		// the dispatch loop unwinds after the event completes.
		p.selfKill = true
		return
	}
	p.resume <- false
	<-p.yield
}

// Interrupt arranges for cause to be raised inside the process as an
// *Interrupt panic at its current (or next) blocking boundary: the end
// of a park, delay or offloaded compute phase.  A parked process is
// detached from its facility and woken at the current virtual instant;
// a running or pool-offloaded one surfaces the interrupt when it next
// yields.  Interrupting a dead process, or one with an interrupt
// already pending, is a no-op.  Must be called from engine or another
// process's context.
func (p *Proc) Interrupt(cause error) {
	if p.dead || p.intr != nil {
		return
	}
	p.intr = cause
	if !p.blocked || p.inExec {
		return
	}
	if p.parkFac != nil && p.parkFac.dropWaiter(p) {
		p.eng.Schedule(0, p.wakeFn)
	}
	// A facility park whose wake was already in flight, and a plain
	// Delay, surface the interrupt when that pending wake fires.
}

// maybeInterrupt raises a pending interrupt (process context), called
// at every blocking boundary after the park state is torn down.
func (p *Proc) maybeInterrupt() {
	if p.intr == nil {
		return
	}
	cause := p.intr
	p.intr = nil
	panic(&Interrupt{Proc: p.name, Cause: cause})
}

// block parks the process until its wake event fires.  There is no
// central engine goroutine to yield to: the blocking process itself
// becomes the dispatcher, draining the event queue in the same
// strict (at, seq) order the run loop uses — the virtual schedule is
// bit-identical by construction.  Waking itself costs no goroutine
// switch at all (the dominant case: a Delay with only timer events in
// between); waking another process is one direct channel handoff.
// When the run bound is reached, the engine stops or fails, or an
// event panics, the baton is returned to the Run/RunUntil caller.
// Must only be called from process context.
func (p *Proc) block() {
	p.blocked = true
	e := p.eng
	e.disp = p
	for !e.single && !e.stopped && e.failed == nil {
		ev := e.peekNext()
		if ev == nil || ev.at > e.limit {
			break
		}
		e.sched.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		if !e.runEvent(ev) {
			break
		}
		if p.selfKill {
			// The event killed its own dispatcher: unwind here, outside
			// runEvent's recover, so the stop signal reaches the spawn
			// wrapper (which keeps dispatching on the way out — any
			// handoff the fatal event also requested is still pending
			// in e.xfer and is completed there).
			e.disp = nil
			panic(stopSignal{})
		}
		if q := e.xfer; q != nil {
			e.xfer = nil
			e.disp = nil
			if q == p {
				return // self-wake: the baton never moves
			}
			q.resume <- true
			if !<-p.resume {
				panic(stopSignal{})
			}
			return
		}
	}
	// Bound reached, engine stopped/failed, or an event panicked:
	// return the baton to the run loop's caller and park.
	e.disp = nil
	e.mainCh <- struct{}{}
	if !<-p.resume {
		panic(stopSignal{})
	}
}

// runEvent executes one event on a process dispatcher, converting a
// panic into engine-failure state so the run loop's caller — not the
// baton goroutine — re-raises it (watchdog and scheduling panics must
// unwind Run, where tests and drivers recover them).
func (e *Engine) runEvent(ev *event) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.engPanic = r
		}
	}()
	ev.fn()
	e.recycle(ev)
	return true
}

// exitDispatch hands the baton onward when a process body returns:
// the finished goroutine keeps dispatching (it is as good an engine
// context as any) until an event wakes a live process or the run
// bound is reached, then disappears.
func (e *Engine) exitDispatch() {
	for {
		if q := e.xfer; q != nil {
			e.xfer = nil
			q.resume <- true
			return
		}
		if e.single || e.stopped || e.failed != nil {
			break
		}
		ev := e.peekNext()
		if ev == nil || ev.at > e.limit {
			break
		}
		e.sched.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		if !e.runEvent(ev) {
			break
		}
	}
	e.mainCh <- struct{}{}
}

// armWd schedules the process's expiry event at now+d; disarmWd removes
// and recycles it if it has not fired.  The event's fn is the bound
// wdFireFn, so arming a park costs no allocation in steady state.
func (p *Proc) armWd(d units.Time) {
	if d < 0 {
		d = 0
	}
	ev := p.eng.newEvent(p.eng.now+d, p.wdFireFn)
	p.wdEv = ev
	p.eng.sched.push(ev)
}

func (p *Proc) disarmWd() {
	if p.wdEv == nil {
		return
	}
	ev := p.wdEv
	p.wdEv = nil
	p.eng.cancelEvent(ev)
}

// wdFire is the park-expiry handler (engine context).  A watchdog park
// (no facility) panics with the waiter map; a deadline park detaches
// from its facility and wakes the process — unless a wake on the same
// timestamp already claimed it, in which case expiry yields.
func (p *Proc) wdFire() {
	p.wdEv = nil
	fac := p.wdFacility
	if fac == nil {
		panic(&WatchdogError{
			Limit:   p.eng.watchdog,
			Culprit: fmt.Sprintf("%s (parked on %s)", p.name, p.waitOn),
			Waiters: p.eng.Waiters(),
		})
	}
	if fac.dropWaiter(p) {
		p.expired = true
		p.wake()
	}
}

// park blocks p on the named facility, arming the engine's watchdog if
// one is configured.  The watchdog event fires in engine context, so
// its panic unwinds Run rather than the baton goroutine.  fac is the
// facility whose waiter list holds p, so Interrupt and Kill can detach
// it; a pending interrupt is raised as the park ends.
func (p *Proc) park(on string, fac waiterList) {
	p.waitOn, p.waitStart = on, p.eng.now
	p.parkFac = fac
	if limit := p.eng.watchdog; limit > 0 {
		p.armWd(limit)
	}
	p.block()
	p.disarmWd()
	p.parkFac = nil
	p.waitOn = ""
	p.maybeInterrupt()
}

// parkDeadline blocks p on the named facility for at most d; it returns
// true if p was woken normally and false if the deadline elapsed.  fac
// detaches p from the facility's waiter list on expiry, reporting
// whether p was still parked there (guarding against a wake and an
// expiry landing on the same timestamp).
func (p *Proc) parkDeadline(on string, d units.Time, fac waiterList) bool {
	p.waitOn, p.waitStart = on, p.eng.now
	p.expired = false
	p.wdFacility = fac
	p.parkFac = fac
	p.armWd(d)
	p.block()
	p.disarmWd()
	p.wdFacility = nil
	p.parkFac = nil
	p.waitOn = ""
	p.maybeInterrupt()
	return !p.expired
}

// Engine returns the kernel this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() units.Time { return p.eng.now }

// Delay suspends the process for d of virtual time.  A non-positive d
// yields the baton without advancing the clock (other simultaneous
// events run first).
func (p *Proc) Delay(d units.Time) {
	e := p.eng
	if d < 0 {
		d = 0
	}
	at := e.now + d
	// Fast path: when nothing else is scheduled before this delay would
	// expire (and the run loop's limit covers it), yielding the baton
	// would only bounce it straight back here.  Advance the clock inline
	// instead.  The sequence number is consumed exactly as if the wake
	// event had been queued and fired, so clock, event order and event
	// count are bit-identical to the slow path.
	if !e.stopped && e.failed == nil && at <= e.limit {
		if nxt := e.peekNext(); nxt == nil || nxt.at > at {
			e.seq++
			e.now = at
			p.maybeInterrupt()
			return
		}
	}
	e.Schedule(d, p.wakeFn)
	p.block()
	p.maybeInterrupt()
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// popWaiter removes and returns the front of a waiter list in place,
// shifting the tail down so the slice keeps its capacity.  The old
// `w = w[1:]` idiom leaked front capacity, making every park/wake cycle
// re-grow the list — one of the dominant hot-path allocations.  Waiter
// lists are a handful of processes, so the shift is a short memmove.
func popWaiter(ws []*Proc) (*Proc, []*Proc) {
	w := ws[0]
	n := copy(ws, ws[1:])
	ws[n] = nil
	return w, ws[:n]
}

// Mailbox is an unbounded FIFO queue connecting activities.  Send may be
// called from event or process context; Recv only from process context.
// Items live in a ring buffer so steady-state traffic recycles one
// allocation instead of re-growing a front-sliced append slice.
type Mailbox[T any] struct {
	eng     *Engine
	name    string
	buf     []T
	head, n int
	waiters []*Proc
}

// NewMailbox creates an empty mailbox on engine e.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name}
}

// enqueue appends v to the ring, growing it when full.
func (m *Mailbox[T]) enqueue(v T) {
	if m.n == len(m.buf) {
		grown := make([]T, max(4, 2*len(m.buf)))
		for i := 0; i < m.n; i++ {
			grown[i] = m.buf[(m.head+i)%len(m.buf)]
		}
		m.buf, m.head = grown, 0
	}
	m.buf[(m.head+m.n)%len(m.buf)] = v
	m.n++
}

// dequeue removes and returns the oldest item.  The vacated slot is
// zeroed so the ring never retains pointers past their dequeue.
func (m *Mailbox[T]) dequeue() T {
	var zero T
	v := m.buf[m.head]
	m.buf[m.head] = zero
	m.head = (m.head + 1) % len(m.buf)
	m.n--
	return v
}

// Send enqueues v and wakes the longest-waiting receiver, if any.  The
// receiver observes the item at the current virtual time.
func (m *Mailbox[T]) Send(v T) {
	m.enqueue(v)
	if len(m.waiters) > 0 {
		var w *Proc
		w, m.waiters = popWaiter(m.waiters)
		m.eng.Schedule(0, w.wakeFn)
	}
}

// Recv dequeues the oldest item, blocking the calling process until one
// is available.  The park is subject to the engine watchdog.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for m.n == 0 {
		m.waiters = append(m.waiters, p)
		p.park(m.name, m)
	}
	return m.dequeue()
}

// RecvDeadline dequeues the oldest item, blocking for at most d of
// virtual time.  It returns the zero value and false if the deadline
// elapses first; a wake and an expiry on the same timestamp resolve in
// event order, deterministically.  Deadline waits manage their own
// bound, so the engine watchdog does not apply to them.
func (m *Mailbox[T]) RecvDeadline(p *Proc, d units.Time) (T, bool) {
	deadline := m.eng.now + d
	for m.n == 0 {
		if m.eng.now >= deadline {
			var zero T
			return zero, false
		}
		m.waiters = append(m.waiters, p)
		if !p.parkDeadline(m.name, deadline-m.eng.now, m) {
			var zero T
			return zero, false
		}
	}
	return m.dequeue(), true
}

// dropWaiter removes p from the waiter list, reporting whether it was
// still parked there.
func (m *Mailbox[T]) dropWaiter(p *Proc) bool {
	for i, w := range m.waiters {
		if w == p {
			n := copy(m.waiters[i:], m.waiters[i+1:])
			m.waiters[i+n] = nil
			m.waiters = m.waiters[:i+n]
			return true
		}
	}
	return false
}

// TryRecv dequeues the oldest item without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	if m.n == 0 {
		var zero T
		return zero, false
	}
	return m.dequeue(), true
}

// Len reports the number of queued items.
func (m *Mailbox[T]) Len() int { return m.n }

// Semaphore is a counting semaphore with FIFO wake-up order, used to
// model the shared-memory semaphores of the mix-mode primitives (§4.1,
// §4.2).
type Semaphore struct {
	eng     *Engine
	name    string
	count   int
	waiters []*Proc
}

// NewSemaphore creates a semaphore with an initial count.  The name
// identifies it in watchdog and deadlock dumps.
func NewSemaphore(e *Engine, name string, initial int) *Semaphore {
	return &Semaphore{eng: e, name: name, count: initial}
}

// Acquire decrements the semaphore, blocking while the count is zero.
// The park is subject to the engine watchdog.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.waiters = append(s.waiters, p)
		p.park(s.name, s)
	}
	s.count--
}

// dropWaiter removes p from the waiter list, reporting whether it was
// still parked there.
func (s *Semaphore) dropWaiter(p *Proc) bool {
	for i, w := range s.waiters {
		if w == p {
			n := copy(s.waiters[i:], s.waiters[i+1:])
			s.waiters[i+n] = nil
			s.waiters = s.waiters[:i+n]
			return true
		}
	}
	return false
}

// Release increments the semaphore and wakes one waiter.  Callable from
// event or process context.
func (s *Semaphore) Release() {
	s.count++
	if len(s.waiters) > 0 {
		var w *Proc
		w, s.waiters = popWaiter(s.waiters)
		s.eng.Schedule(0, w.wakeFn)
	}
}

// Count returns the current semaphore value.
func (s *Semaphore) Count() int { return s.count }

// Signal is a lost-wakeup-safe edge notification: waiters snapshot the
// sequence number before testing their predicate, and Wait returns
// immediately if any Broadcast happened after the snapshot.  It is the
// DES analogue of a condition variable with a generation counter.
type Signal struct {
	eng     *Engine
	name    string
	seq     uint64
	waiters []*Proc
	// spare is the waiter buffer retired by the last Broadcast, swapped
	// back in so steady-state wait/broadcast cycles recycle two buffers
	// instead of allocating a fresh waiter list per generation.
	spare []*Proc
}

// NewSignal creates a signal on engine e.  The name identifies it in
// watchdog and deadlock dumps.
func NewSignal(e *Engine, name string) *Signal { return &Signal{eng: e, name: name} }

// Seq returns the current generation, to be snapshotted before testing
// the guarded predicate.
func (s *Signal) Seq() uint64 { return s.seq }

// Broadcast advances the generation and wakes all current waiters.
// Callable from event or process context.  Scheduling a wake can park
// no one (wakes are events), so swapping the retired buffer back in as
// the next waiter list is safe even if a woken process re-Waits before
// the next Broadcast.
func (s *Signal) Broadcast() {
	s.seq++
	waiters := s.waiters
	s.waiters = s.spare[:0]
	for i, w := range waiters {
		s.eng.Schedule(0, w.wakeFn)
		waiters[i] = nil
	}
	// The retiring buffer becomes the next spare; the buffers alternate
	// so neither slice header ever aliases the other's backing array.
	s.spare = waiters[:0]
}

// Wait blocks the process until the generation advances past the
// snapshot.  If it already has, Wait returns immediately.  The park is
// subject to the engine watchdog.
func (s *Signal) Wait(p *Proc, snapshot uint64) {
	if s.seq != snapshot {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park(s.name, s)
}

// WaitDeadline is Wait with a virtual-time bound: it returns true if
// the generation advanced (or had already advanced) and false if d
// elapsed first.  Deadline waits manage their own bound, so the engine
// watchdog does not apply to them.
func (s *Signal) WaitDeadline(p *Proc, snapshot uint64, d units.Time) bool {
	if s.seq != snapshot {
		return true
	}
	s.waiters = append(s.waiters, p)
	return p.parkDeadline(s.name, d, s)
}

// dropWaiter removes p from the waiter list, reporting whether it was
// still parked there.
func (s *Signal) dropWaiter(p *Proc) bool {
	for i, w := range s.waiters {
		if w == p {
			n := copy(s.waiters[i:], s.waiters[i+1:])
			s.waiters[i+n] = nil
			s.waiters = s.waiters[:i+n]
			return true
		}
	}
	return false
}

// Resource models a serially-reusable facility (a bus, a link) with
// busy-until semantics.  Claim returns the time at which a use of
// duration d that becomes ready at "ready" will complete, advancing the
// facility's horizon; it never blocks, making it suitable for event-chain
// hardware models.
type Resource struct {
	freeAt units.Time
}

// Claim reserves the resource for d starting no earlier than ready, and
// returns the [start, end] of the granted slot.
func (r *Resource) Claim(ready units.Time, d units.Time) (start, end units.Time) {
	start = ready
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + d
	r.freeAt = end
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() units.Time { return r.freeAt }
