package des

import (
	"math/rand"
	"testing"

	"hyades/internal/units"
)

// TestLadderMatchesHeapOrder drives a ladder queue and a binary heap
// with the same deterministic stream of pushes, pops and cancellations
// and requires identical pop order.  The mix is adversarial for the
// ladder: timestamp clusters (same-instant storms), far-future spikes
// (watchdog-like arms that are almost always cancelled), and pops
// interleaved with pushes so events land in top, rungs and bottom.
func TestLadderMatchesHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lad := &ladderQueue{}
	hp := &heapSched{}

	var now units.Time
	var seq uint64
	mk := func(at units.Time) (*event, *event) {
		seq++
		return &event{at: at, seq: seq}, &event{at: at, seq: seq}
	}
	// cancellable holds paired (ladder, heap) events still pending.
	type pair struct{ l, h *event }
	var cancellable []pair

	popBoth := func() bool {
		var le *event
		for {
			le = lad.pop()
			if le == nil || !le.dead {
				break
			}
		}
		he := hp.pop()
		if (le == nil) != (he == nil) {
			t.Fatalf("emptiness mismatch: ladder %v heap %v", le, he)
		}
		if le == nil {
			return false
		}
		if le.at != he.at || le.seq != he.seq {
			t.Fatalf("pop order diverged: ladder (%d,%d) heap (%d,%d)",
				le.at, le.seq, he.at, he.seq)
		}
		if le.at > now {
			now = le.at
		}
		return true
	}

	for i := 0; i < 200000; i++ {
		switch r := rng.Intn(100); {
		case r < 45: // near-future push, heavy same-instant ties
			at := now + units.Time(rng.Intn(4))
			le, he := mk(at)
			lad.push(le)
			hp.push(he)
			cancellable = append(cancellable, pair{le, he})
		case r < 65: // mid-range push
			at := now + units.Time(rng.Intn(100000))
			le, he := mk(at)
			lad.push(le)
			hp.push(he)
			cancellable = append(cancellable, pair{le, he})
		case r < 75: // watchdog-like far-future push
			at := now + units.Time(3600)*units.Time(1e12)
			le, he := mk(at)
			lad.push(le)
			hp.push(he)
			cancellable = append(cancellable, pair{le, he})
		case r < 90: // pop
			popBoth()
		default: // cancel a random pending event
			if len(cancellable) == 0 {
				continue
			}
			j := rng.Intn(len(cancellable))
			p := cancellable[j]
			cancellable[j] = cancellable[len(cancellable)-1]
			cancellable = cancellable[:len(cancellable)-1]
			// Skip events that already popped (cheap check: a popped
			// ladder event was returned by pop; we cannot tell without
			// tracking, so track via dead/idx is unreliable — instead
			// only cancel events strictly in the future).
			if p.l.at <= now {
				continue
			}
			lad.cancel(p.l)
			hp.cancel(p.h)
		}
		if lad.len() != hp.len() {
			t.Fatalf("live count diverged: ladder %d heap %d", lad.len(), hp.len())
		}
	}
	// Drain both to empty.
	for popBoth() {
	}
	if lad.len() != 0 {
		t.Fatalf("ladder reports %d live events after drain", lad.len())
	}
}
