package des

import (
	"errors"
	"strings"
	"testing"

	"hyades/internal/units"
)

func TestTimerCancelDoesNotAdvanceClock(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(units.Hour, func() { fired = true })
	e.Schedule(units.Microsecond, func() { tm.Cancel() })
	e.Run()
	if fired {
		t.Fatalf("cancelled timer fired")
	}
	if tm.Active() {
		t.Fatalf("cancelled timer still active")
	}
	if e.Now() != units.Microsecond {
		t.Fatalf("Now = %v, want 1us: cancelled timer dragged the clock", e.Now())
	}
}

func TestTimerFires(t *testing.T) {
	e := NewEngine()
	var at units.Time
	tm := e.After(3*units.Microsecond, func() { at = e.Now() })
	e.Run()
	if at != 3*units.Microsecond {
		t.Fatalf("timer fired at %v, want 3us", at)
	}
	if tm.Active() {
		t.Fatalf("fired timer still active")
	}
	tm.Cancel() // no-op after fire
}

func TestTimerCancelAmongOthers(t *testing.T) {
	// Cancelling an event from the middle of the heap must not disturb
	// the ordering of the remaining events.
	e := NewEngine()
	var got []int
	e.Schedule(1*units.Microsecond, func() { got = append(got, 1) })
	tm := e.After(2*units.Microsecond, func() { got = append(got, 2) })
	e.Schedule(3*units.Microsecond, func() { got = append(got, 3) })
	e.Schedule(4*units.Microsecond, func() { got = append(got, 4) })
	tm.Cancel()
	e.Run()
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRecvDeadlineTimesOut(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "box")
	var ok bool
	var at units.Time
	e.Spawn("rx", func(p *Proc) {
		_, ok = mb.RecvDeadline(p, 5*units.Microsecond)
		at = p.Now()
	})
	e.Run()
	if ok {
		t.Fatalf("RecvDeadline succeeded on an empty mailbox")
	}
	if at != 5*units.Microsecond {
		t.Fatalf("timed out at %v, want 5us", at)
	}
	if e.Blocked() != 0 {
		t.Fatalf("process still blocked after deadline")
	}
}

func TestRecvDeadlineDelivers(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "box")
	var got int
	var ok bool
	e.Spawn("rx", func(p *Proc) { got, ok = mb.RecvDeadline(p, 10*units.Microsecond) })
	e.Schedule(2*units.Microsecond, func() { mb.Send(41) })
	e.Run()
	if !ok || got != 41 {
		t.Fatalf("RecvDeadline = (%d,%v), want (41,true)", got, ok)
	}
	// The deadline timer must have been cancelled outright: the clock
	// stops at the delivery, not at the 10us expiry.
	if e.Now() != 2*units.Microsecond {
		t.Fatalf("Now = %v, want 2us", e.Now())
	}
}

func TestSignalWaitDeadline(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e, "sig")
	var timedOut, delivered bool
	e.Spawn("w1", func(p *Proc) {
		timedOut = !sig.WaitDeadline(p, sig.Seq(), 3*units.Microsecond)
	})
	e.Run()
	if !timedOut {
		t.Fatalf("WaitDeadline did not time out without a broadcast")
	}
	e.Spawn("w2", func(p *Proc) {
		delivered = sig.WaitDeadline(p, sig.Seq(), units.Hour)
	})
	e.Schedule(units.Microsecond, func() { sig.Broadcast() })
	e.Run()
	if !delivered {
		t.Fatalf("WaitDeadline missed the broadcast")
	}
	if e.Now() >= units.Hour {
		t.Fatalf("satisfied WaitDeadline dragged the clock to %v", e.Now())
	}
}

func TestWatchdogPanicsWithWaiterDump(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(units.Millisecond)
	mb := NewMailbox[int](e, "ocean.halo")
	e.Spawn("rank3", func(p *Proc) { mb.Recv(p) })
	defer e.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("watchdog did not trip")
		}
		wd, ok := r.(*WatchdogError)
		if !ok {
			t.Fatalf("panic payload = %T, want *WatchdogError", r)
		}
		if !strings.Contains(wd.Culprit, "rank3") || !strings.Contains(wd.Culprit, "ocean.halo") {
			t.Fatalf("culprit %q missing proc or facility name", wd.Culprit)
		}
		if len(wd.Waiters) != 1 || wd.Waiters[0].Proc != "rank3" || wd.Waiters[0].On != "ocean.halo" {
			t.Fatalf("waiter dump = %+v", wd.Waiters)
		}
		if !strings.Contains(wd.Error(), "rank3 waits on ocean.halo") {
			t.Fatalf("Error() = %q", wd.Error())
		}
	}()
	e.Run()
}

func TestWatchdogDisarmedOnWake(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(units.Millisecond)
	mb := NewMailbox[int](e, "box")
	e.Spawn("rx", func(p *Proc) { mb.Recv(p) })
	e.Schedule(units.Microsecond, func() { mb.Send(1) })
	e.Run()
	if e.Now() != units.Microsecond {
		t.Fatalf("Now = %v: watchdog timer outlived a satisfied wait", e.Now())
	}
}

func TestProcPanicRethrownInEngineContext(t *testing.T) {
	e := NewEngine()
	boom := errors.New("solver diverged")
	e.Spawn("rank0", func(p *Proc) {
		p.Delay(units.Microsecond)
		panic(boom)
	})
	defer e.Close()
	defer func() {
		r := recover()
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("panic payload = %T (%v), want *ProcPanic", r, r)
		}
		if pp.Proc != "rank0" {
			t.Fatalf("Proc = %q, want rank0", pp.Proc)
		}
		if !errors.Is(pp, boom) {
			t.Fatalf("ProcPanic does not unwrap to the original error")
		}
		if len(pp.Stack) == 0 {
			t.Fatalf("no stack captured")
		}
	}()
	e.Run()
}

func TestEngineFailStopsRun(t *testing.T) {
	e := NewEngine()
	errStop := errors.New("peer unreachable")
	ran := false
	e.Schedule(units.Microsecond, func() { e.Fail(errStop) })
	e.Schedule(2*units.Microsecond, func() { ran = true })
	e.Run()
	if ran {
		t.Fatalf("run loop continued past Fail")
	}
	if !errors.Is(e.Err(), errStop) {
		t.Fatalf("Err = %v, want %v", e.Err(), errStop)
	}
	e.Fail(errors.New("second"))
	if !errors.Is(e.Err(), errStop) {
		t.Fatalf("Fail overwrote the first error")
	}
}
