package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hyades/internal/units"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*units.Microsecond, func() { got = append(got, 3) })
	e.Schedule(1*units.Microsecond, func() { got = append(got, 1) })
	e.Schedule(2*units.Microsecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*units.Microsecond {
		t.Fatalf("Now = %v, want 3us", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(units.Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := units.Time(-1)
	e.Schedule(units.Microsecond, func() {
		e.Schedule(-5*units.Microsecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != units.Microsecond {
		t.Fatalf("event fired at %v, want 1us", fired)
	}
}

func TestScheduleAtPast(t *testing.T) {
	e := NewEngine()
	var at units.Time
	e.Schedule(2*units.Microsecond, func() {
		e.ScheduleAt(units.Microsecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 2*units.Microsecond {
		t.Fatalf("past ScheduleAt fired at %v, want clamped to 2us", at)
	}
}

func TestProcDelay(t *testing.T) {
	e := NewEngine()
	var trace []units.Time
	e.Spawn("walker", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Delay(5 * units.Microsecond)
			trace = append(trace, p.Now())
		}
	})
	e.Run()
	for i, at := range trace {
		want := units.Time(i+1) * 5 * units.Microsecond
		if at != want {
			t.Fatalf("step %d at %v, want %v", i, at, want)
		}
	}
	if len(trace) != 4 {
		t.Fatalf("got %d steps, want 4", len(trace))
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(2 * units.Microsecond)
				log = append(log, "a")
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(3 * units.Microsecond)
				log = append(log, "b")
			}
		})
		e.Run()
		e.Close()
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestMailboxBlockingRecv(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "mb")
	var got int
	var at units.Time
	e.Spawn("rx", func(p *Proc) {
		got = mb.Recv(p)
		at = p.Now()
	})
	e.Schedule(7*units.Microsecond, func() { mb.Send(42) })
	e.Run()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if at != 7*units.Microsecond {
		t.Fatalf("received at %v, want 7us", at)
	}
}

func TestMailboxFIFOAndMultipleWaiters(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "mb")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("rx", func(p *Proc) {
			p.Delay(units.Time(i) * units.Nanosecond) // fix waiter order
			v := mb.Recv(p)
			order = append(order, v*10+i)
		})
	}
	e.Schedule(units.Microsecond, func() {
		mb.Send(1)
		mb.Send(2)
		mb.Send(3)
	})
	e.Run()
	if len(order) != 3 {
		t.Fatalf("only %d receives completed: %v", len(order), order)
	}
	// Waiters wake FIFO: waiter 0 gets item 1, waiter 1 item 2, ...
	want := []int{10, 21, 32}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMailboxTryRecv(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[string](e, "mb")
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
	mb.Send("x")
	if mb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", mb.Len())
	}
	v, ok := mb.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q,%v", v, ok)
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "sem", 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		e.Spawn("worker", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Delay(units.Microsecond)
			inside--
			sem.Release()
		})
	}
	e.Run()
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d inside", maxInside)
	}
	if e.Now() != 5*units.Microsecond {
		t.Fatalf("serialized critical sections should end at 5us, got %v", e.Now())
	}
}

func TestSemaphoreCounting(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "sem", 2)
	done := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			sem.Acquire(p)
			p.Delay(units.Microsecond)
			sem.Release()
			done++
		})
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	if e.Now() != 2*units.Microsecond {
		t.Fatalf("two-wide semaphore should finish at 2us, got %v", e.Now())
	}
	if sem.Count() != 2 {
		t.Fatalf("count = %d, want 2", sem.Count())
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Claim(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first claim [%v,%v]", s1, e1)
	}
	s2, e2 := r.Claim(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("overlapping claim [%v,%v], want [10,20]", s2, e2)
	}
	s3, e3 := r.Claim(100, 3)
	if s3 != 100 || e3 != 103 {
		t.Fatalf("idle claim [%v,%v], want [100,103]", s3, e3)
	}
}

func TestBlockedDetection(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "never")
	e.Spawn("stuck", func(p *Proc) { mb.Recv(p) })
	e.Run()
	if e.Blocked() != 1 {
		t.Fatalf("Blocked = %d, want 1", e.Blocked())
	}
	e.Close()
	if e.Blocked() != 0 {
		t.Fatalf("Blocked after Close = %d", e.Blocked())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(units.Time(i)*units.Microsecond, func() { count++ })
	}
	e.RunUntil(5 * units.Microsecond)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d after Run, want 10", count)
	}
}

func TestStepSingleEvent(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []units.Time
		for _, d := range delays {
			e.Schedule(units.Time(d)*units.Nanosecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of producer/consumer processes conserves items.
func TestMailboxConservationProperty(t *testing.T) {
	f := func(seed int64, nMsg uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nMsg%50) + 1
		e := NewEngine()
		a := NewMailbox[int](e, "a")
		b := NewMailbox[int](e, "b")
		sum := 0
		want := 0
		e.Spawn("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				v := rng.Intn(1000)
				want += v
				a.Send(v)
				p.Delay(units.Time(rng.Intn(100)) * units.Nanosecond)
			}
		})
		e.Spawn("relay", func(p *Proc) {
			for i := 0; i < n; i++ {
				v := a.Recv(p)
				p.Delay(units.Time(rng.Intn(100)) * units.Nanosecond)
				b.Send(v)
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < n; i++ {
				sum += b.Recv(p)
			}
		})
		e.Run()
		blocked := e.Blocked()
		e.Close()
		return sum == want && blocked == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "m")
	e.Spawn("stuck", func(p *Proc) { mb.Recv(p) })
	e.Run()
	e.Close()
	e.Close()
}

// Property: Signal never loses a wakeup — a waiter that snapshots the
// sequence before a broadcast either returns immediately or is woken
// by a later broadcast; with at least one broadcast after every
// snapshot, all waiters always finish.
func TestSignalNoLostWakeups(t *testing.T) {
	f := func(seed int64, nWaiters uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		sig := NewSignal(e, "sig")
		n := int(nWaiters)%8 + 1
		done := 0
		for i := 0; i < n; i++ {
			e.Spawn("waiter", func(p *Proc) {
				for round := 0; round < 5; round++ {
					snap := sig.Seq()
					// Random work between snapshot and wait models the
					// hardware-poll window where wakeups could be lost.
					p.Delay(units.Time(rng.Intn(1000)) * units.Nanosecond)
					sig.Wait(p, snap)
				}
				done++
			})
		}
		e.Spawn("broadcaster", func(p *Proc) {
			// Keep broadcasting until everyone finished; bounded.
			for i := 0; i < 5*n+50; i++ {
				p.Delay(units.Time(rng.Intn(700)+1) * units.Nanosecond)
				sig.Broadcast()
				if done == n {
					return
				}
			}
		})
		e.Run()
		blocked := e.Blocked()
		e.Close()
		return done == n && blocked == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalImmediateReturnOnStaleSnapshot(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e, "sig")
	returned := false
	e.Spawn("w", func(p *Proc) {
		snap := sig.Seq()
		sig.Broadcast() // advance before waiting
		sig.Wait(p, snap)
		returned = true
	})
	e.Run()
	if !returned {
		t.Fatal("stale snapshot should return immediately")
	}
	e.Close()
}
