// Deterministic offload of compute phases to host worker goroutines.
//
// The DES executes one activity at a time, so with the whole cluster
// modelled under one baton, sixteen simulated ranks' kernel sweeps run
// serially on one host core — exactly where the paper's dual-PII nodes
// did their work in parallel.  Pool restores that parallelism without
// touching the determinism contract:
//
//   - A compute phase must be *pure* (it reads and writes only its own
//     rank's model state, never engine or network state) and its
//     *modeled* duration must be known at submission time.
//   - Proc.Exec schedules exactly one wake-up event at now+d — the same
//     virtual footprint as Proc.Delay(d) — and ships the closure to a
//     pool worker.  The wake-up event performs a real wait for the
//     closure to finish before handing the baton back, so by the time
//     any other activity can observe the rank's state, the phase is
//     complete and a happens-before edge (task channel send, done
//     channel close, done receive) orders every memory access.
//   - Virtual event order is therefore a pure function of the schedule:
//     the digest, event count and clock are bit-identical for any
//     worker count, including none (Exec falls back to running inline).
//
// Real execution overlaps wherever the virtual schedule lets two ranks
// compute at the same virtual time; the event queue is only metering
// communication — the paper's division of labor.
package des

import (
	"sync"

	"hyades/internal/units"
)

// Pool is a bounded set of host worker goroutines executing offloaded
// compute phases.  Create one with NewPool and attach it to an engine
// with Engine.SetPool; Close it when the simulation is torn down.
type Pool struct {
	tasks     chan poolTask
	workers   int
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type poolTask struct {
	fn   func()
	done chan struct{}
}

// NewPool starts n worker goroutines (n < 1 is clamped to 1).  The
// workers never touch simulation state of their own accord: they only
// run closures handed to them by Proc.Exec, and the baton waits for
// completion before anything else can observe the results.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{tasks: make(chan poolTask), workers: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		// The second sanctioned raw goroutine of the simulation core
		// (after the coroutine-baton launch in Spawn): pool workers
		// synchronize exclusively through the task and done channels,
		// and the baton blocks on done before the offloaded state is
		// visible to any simulation activity.
		//lint:allow nogoroutine worker-pool launch; offload discipline documented in the package comment
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.fn()
				t.done <- struct{}{}
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// submit hands fn to a worker; done receives one value on completion.
func (p *Pool) submit(fn func(), done chan struct{}) {
	p.tasks <- poolTask{fn: fn, done: done}
}

// Close stops the workers after the in-flight tasks finish.  Idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.tasks)
		p.wg.Wait()
	})
}

// SetPool attaches a worker pool to the engine; Proc.Exec offloads to
// it.  A nil pool (the default) makes Exec run inline.
func (e *Engine) SetPool(p *Pool) { e.pool = p }

// Pool returns the attached worker pool, if any.
func (e *Engine) Pool() *Pool { return e.pool }

// Exec runs fn — a pure compute phase whose modeled cost d is known up
// front — and suspends the process for d of virtual time.  With a pool
// attached the closure executes on a host worker while the simulation
// proceeds; without one it executes inline.  Both paths schedule
// exactly one event, so the virtual schedule (clock, event count,
// state digest) is independent of the worker count.
//
// fn must touch only state owned by this process's rank: no engine
// calls, no scheduling, no communication.  Charge hooks that would
// advance virtual time from inside fn must be suspended by the caller.
func (p *Proc) Exec(d units.Time, fn func()) {
	pool := p.eng.pool
	if pool == nil {
		fn()
		p.Delay(d)
		return
	}
	// One completion channel and one bound continuation per Proc,
	// created on first use and reused: Exec blocks until the phase
	// completes, so at most one offload is ever in flight per Proc and
	// the buffered slot can never carry a stale signal.
	if p.execDone == nil {
		p.execDone = make(chan struct{}, 1)
		p.execContFn = func() {
			<-p.execDone
			p.wake()
		}
	}
	// inExec defers Kill/Interrupt to the completion wake: the worker
	// may be touching this rank's arrays on another OS thread, so the
	// <-execDone synchronization must happen before any unwind.
	p.inExec = true
	pool.submit(fn, p.execDone)
	p.eng.Schedule(d, p.execContFn)
	p.block()
	p.inExec = false
	p.maybeInterrupt()
}
