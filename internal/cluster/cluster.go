// Package cluster assembles a simulated Hyades machine: N two-way SMP
// nodes, one StarT-X NIU per node, and the Arctic Switch Fabric joining
// them (paper §2).
//
// The published Hyades configuration is sixteen SMPs; production climate
// runs use eight SMPs (sixteen processors) per model component.  The
// cluster is parameterised so both configurations — and scaling studies
// beyond them — run from the same code.
package cluster

import (
	"fmt"
	"runtime"

	"hyades/internal/arctic"
	"hyades/internal/des"
	"hyades/internal/fault"
	"hyades/internal/node"
	"hyades/internal/pci"
	"hyades/internal/startx"
	"hyades/internal/units"
)

// Config selects the machine to build.
type Config struct {
	Nodes        int // number of SMPs
	ProcsPerNode int // 1 (network benchmarks) or 2 (production mix-mode)

	Arctic arctic.Config
	PCI    pci.Config
	NIU    startx.Config
	Node   node.Config

	// Fault selects the deterministic fault plan to inject into the
	// fabric.  When it enables any fault the NIUs' go-back-N reliable
	// channel is switched on with it, so link faults are masked (or
	// surface as ErrPeerUnreachable) instead of wedging the run.
	Fault fault.Config

	// Watchdog bounds any single blocking wait in virtual time; a wait
	// exceeding it panics with the full parked-waiter map (see
	// des.SetWatchdog).  Zero disables it.
	Watchdog units.Time

	// Workers sizes the host worker pool that executes the simulated
	// ranks' offloaded compute phases in parallel (des.Pool).  Zero
	// means GOMAXPROCS; 1 still attaches a single-worker pool (the
	// virtual schedule is identical for every value); negative disables
	// the pool entirely so phases run inline on the baton.
	Workers int
}

// DefaultConfig returns the published Hyades machine with the given SMP
// count and processors per SMP.
func DefaultConfig(nodes, procsPerNode int) Config {
	nodeCfg := node.DefaultConfig()
	nodeCfg.Processors = procsPerNode
	return Config{
		Nodes:        nodes,
		ProcsPerNode: procsPerNode,
		Arctic:       arctic.DefaultConfig(nodes),
		PCI:          pci.DefaultConfig(),
		NIU:          startx.DefaultConfig(),
		Node:         nodeCfg,
		// An hour of virtual time is ~20x the longest production run the
		// paper analyses; any single wait that long is a protocol bug.
		Watchdog: units.Hour,
	}
}

// Cluster is an assembled machine.
type Cluster struct {
	Cfg    Config
	Eng    *des.Engine
	Fabric *arctic.Fabric
	Nodes  []*node.Node
	Pool   *des.Pool // host worker pool for offloaded compute (nil if disabled)
}

// New builds the machine on a fresh engine.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.ProcsPerNode < 1 || cfg.ProcsPerNode > 8 {
		return nil, fmt.Errorf("cluster: %d processors per node out of range", cfg.ProcsPerNode)
	}
	eng := des.NewEngine()
	eng.SetWatchdog(cfg.Watchdog)
	cfg.Arctic.Endpoints = cfg.Nodes
	if cfg.Fault.Enabled() {
		cfg.Arctic.Faults = fault.NewPlan(cfg.Fault)
		cfg.NIU.Reliable = true
	}
	fab, err := arctic.New(eng, cfg.Arctic)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Cfg: cfg, Eng: eng, Fabric: fab}
	if cfg.Workers >= 0 {
		workers := cfg.Workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		c.Pool = des.NewPool(workers)
		eng.SetPool(c.Pool)
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := node.New(eng, i, cfg.Node, cfg.PCI)
		n.AttachNIU(startx.New(eng, n.Bus, fab, i, cfg.NIU))
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Processors returns the total processor count.
func (c *Cluster) Processors() int { return c.Cfg.Nodes * c.Cfg.ProcsPerNode }

// Worker identifies one processor running application code.
type Worker struct {
	Rank int
	CPU  int // index within the SMP; 0 is the communication master
	Node *node.Node
	Proc *des.Proc
}

// Start spawns one application process per processor.  Ranks are dense:
// rank r runs on node r/ProcsPerNode, CPU r%ProcsPerNode, so CPU 0 of
// each SMP (the communication master of §4.1) holds the even ranks in
// the two-way configuration.
func (c *Cluster) Start(body func(w *Worker)) []*Worker {
	workers := make([]*Worker, c.Processors())
	for r := 0; r < c.Processors(); r++ {
		nd := c.Nodes[r/c.Cfg.ProcsPerNode]
		w := &Worker{Rank: r, CPU: r % c.Cfg.ProcsPerNode, Node: nd}
		workers[r] = w
		w.Proc = c.Eng.Spawn(fmt.Sprintf("rank%d", r), func(p *des.Proc) {
			w.Proc = p
			body(w)
		})
	}
	return workers
}

// Run executes the simulation until all activity drains.  It returns an
// error if processes remain blocked (a deadlock in the modelled
// program).
func (c *Cluster) Run() (err error) {
	// The kernel surfaces watchdog trips and in-process panics by
	// panicking from engine context; turn both into errors so callers
	// get a diagnosis (with the waiter map) instead of a crash.
	defer func() {
		if err != nil {
			return
		}
		switch r := recover().(type) {
		case nil:
		case *des.WatchdogError:
			err = fmt.Errorf("cluster: %w", r)
		case *des.ProcPanic:
			err = fmt.Errorf("cluster: %w", r)
		default:
			panic(r)
		}
	}()
	c.Eng.Run()
	if err := c.Eng.Err(); err != nil {
		return fmt.Errorf("cluster: simulation failed at %v: %w", c.Eng.Now(), err)
	}
	if n := c.Eng.Blocked(); n != 0 {
		return fmt.Errorf("cluster: deadlock, %d processes still blocked:\n%s",
			n, des.FormatWaiters(c.Eng.Waiters()))
	}
	return nil
}

// Close releases the engine's process goroutines and the host worker
// pool.
func (c *Cluster) Close() {
	c.Eng.Close()
	if c.Pool != nil {
		c.Pool.Close()
	}
}
