// Package cluster assembles a simulated Hyades machine: N two-way SMP
// nodes, one StarT-X NIU per node, and the Arctic Switch Fabric joining
// them (paper §2).
//
// The published Hyades configuration is sixteen SMPs; production climate
// runs use eight SMPs (sixteen processors) per model component.  The
// cluster is parameterised so both configurations — and scaling studies
// beyond them — run from the same code.
package cluster

import (
	"fmt"
	"runtime"
	"strconv"

	"hyades/internal/arctic"
	"hyades/internal/des"
	"hyades/internal/fault"
	"hyades/internal/node"
	"hyades/internal/pci"
	"hyades/internal/startx"
	"hyades/internal/units"
)

// Config selects the machine to build.
type Config struct {
	Nodes        int // number of SMPs
	ProcsPerNode int // 1 (network benchmarks) or 2 (production mix-mode)

	Arctic arctic.Config
	PCI    pci.Config
	NIU    startx.Config
	Node   node.Config

	// Fault selects the deterministic fault plan to inject into the
	// fabric.  When it enables any fault the NIUs' go-back-N reliable
	// channel is switched on with it, so link faults are masked (or
	// surface as ErrPeerUnreachable) instead of wedging the run.
	Fault fault.Config

	// Watchdog bounds any single blocking wait in virtual time; a wait
	// exceeding it panics with the full parked-waiter map (see
	// des.SetWatchdog).  Zero disables it.
	Watchdog units.Time

	// Workers sizes the host worker pool that executes the simulated
	// ranks' offloaded compute phases in parallel (des.Pool).  Zero
	// means GOMAXPROCS; 1 still attaches a single-worker pool (the
	// virtual schedule is identical for every value); negative disables
	// the pool entirely so phases run inline on the baton.
	Workers int

	// Scheduler selects the engine's event-queue implementation.  The
	// zero value is the ladder queue; des.SchedHeap keeps the original
	// binary heap for the scheduler-equivalence determinism tests.
	Scheduler des.SchedulerKind
}

// DefaultConfig returns the published Hyades machine with the given SMP
// count and processors per SMP.
func DefaultConfig(nodes, procsPerNode int) Config {
	nodeCfg := node.DefaultConfig()
	nodeCfg.Processors = procsPerNode
	return Config{
		Nodes:        nodes,
		ProcsPerNode: procsPerNode,
		Arctic:       arctic.DefaultConfig(nodes),
		PCI:          pci.DefaultConfig(),
		NIU:          startx.DefaultConfig(),
		Node:         nodeCfg,
		// An hour of virtual time is ~20x the longest production run the
		// paper analyses; any single wait that long is a protocol bug.
		Watchdog: units.Hour,
	}
}

// Cluster is an assembled machine.
type Cluster struct {
	Cfg    Config
	Eng    *des.Engine
	Fabric *arctic.Fabric
	Nodes  []*node.Node
	Pool   *des.Pool // host worker pool for offloaded compute (nil if disabled)

	// Crash/restart machinery (armed by Start when the fault plan
	// crashes nodes).  body is the rank body, re-run by respawned
	// incarnations; workers tracks the current incarnation per rank.
	body    func(w *Worker)
	workers []*Worker

	// Crashes / Restarts count executed node-crash and node-restart
	// events.
	Crashes  int
	Restarts int

	// OnNodeCrash and OnNodeRestart, if set, observe (in engine
	// context) a node's crash — permanent means no restart is scheduled
	// — and its return.  The comm layer's recovery controller hangs off
	// these.
	OnNodeCrash   func(nodeID int, permanent bool)
	OnNodeRestart func(nodeID int)
}

// New builds the machine on a fresh engine.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.ProcsPerNode < 1 || cfg.ProcsPerNode > 8 {
		return nil, fmt.Errorf("cluster: %d processors per node out of range", cfg.ProcsPerNode)
	}
	eng := des.NewEngineWithScheduler(cfg.Scheduler)
	eng.SetWatchdog(cfg.Watchdog)
	cfg.Arctic.Endpoints = cfg.Nodes
	if cfg.Fault.Enabled() {
		cfg.Arctic.Faults = fault.NewPlan(cfg.Fault)
		cfg.NIU.Reliable = true
	}
	if cfg.Fault.NodesEnabled() {
		if err := validateNodePlan(cfg); err != nil {
			return nil, err
		}
	}
	fab, err := arctic.New(eng, cfg.Arctic)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Cfg: cfg, Eng: eng, Fabric: fab}
	if cfg.Workers >= 0 {
		workers := cfg.Workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		c.Pool = des.NewPool(workers)
		eng.SetPool(c.Pool)
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := node.New(eng, i, cfg.Node, cfg.PCI)
		n.AttachNIU(startx.New(eng, n.Bus, fab, i, cfg.NIU))
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// validateNodePlan rejects node-outage configs the machine cannot
// execute: a spec naming a node that does not exist (an exact index out
// of range matches nothing and would silently inject no fault — a typo,
// like a duplicate spec) and overlapping crash windows on one node.
func validateNodePlan(cfg Config) error {
	for _, o := range cfg.Fault.NodeOutages {
		if idx, err := strconv.Atoi(o.Node); err == nil && (idx < 0 || idx >= cfg.Nodes) {
			return fmt.Errorf("cluster: node outage names node %d, but the machine has nodes 0..%d", idx, cfg.Nodes-1)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		if err := cfg.Arctic.Faults.Node(i).Validate(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	return nil
}

// Processors returns the total processor count.
func (c *Cluster) Processors() int { return c.Cfg.Nodes * c.Cfg.ProcsPerNode }

// Worker identifies one processor running application code.
type Worker struct {
	Rank int
	CPU  int // index within the SMP; 0 is the communication master
	Node *node.Node
	Proc *des.Proc
}

// Start spawns one application process per processor.  Ranks are dense:
// rank r runs on node r/ProcsPerNode, CPU r%ProcsPerNode, so CPU 0 of
// each SMP (the communication master of §4.1) holds the even ranks in
// the two-way configuration.  When the fault plan crashes nodes, Start
// also arms the crash events; respawned incarnations re-run body from
// the top.
func (c *Cluster) Start(body func(w *Worker)) []*Worker {
	c.body = body
	c.workers = make([]*Worker, c.Processors())
	for r := 0; r < c.Processors(); r++ {
		c.spawnRank(r, 0)
	}
	c.armNodeFaults()
	return c.workers
}

// Worker returns rank r's current incarnation (nil before Start).
func (c *Cluster) Worker(r int) *Worker {
	if c.workers == nil {
		return nil
	}
	return c.workers[r]
}

// spawnRank creates (or respawns, generation > 0) rank r's process.
func (c *Cluster) spawnRank(r, gen int) {
	nd := c.Nodes[r/c.Cfg.ProcsPerNode]
	w := &Worker{Rank: r, CPU: r % c.Cfg.ProcsPerNode, Node: nd}
	c.workers[r] = w
	name := fmt.Sprintf("rank%d", r)
	if gen > 0 {
		name = fmt.Sprintf("rank%d.r%d", r, gen)
	}
	w.Proc = c.Eng.Spawn(name, func(p *des.Proc) {
		// Rank-partitioned by construction: only rank r's own proc ever
		// writes workers[r].Proc, but the slot now lives on the Cluster
		// (respawn needs it), which the partition analysis cannot see.
		//lint:allow shareheap worker slot is rank-indexed; only rank r's proc writes it
		w.Proc = p
		c.body(w)
	})
}

// armNodeFaults schedules every compiled crash window of the fault
// plan as virtual-time events.
func (c *Cluster) armNodeFaults() {
	if !c.Cfg.Fault.NodesEnabled() {
		return
	}
	plan := c.Cfg.Arctic.Faults
	for i := range c.Nodes {
		for _, win := range plan.Node(i).Windows() {
			win, nodeID := win, i
			c.Eng.ScheduleAt(win.From, func() { c.crashNode(nodeID, win) })
		}
	}
}

// crashNode executes one crash window: the node's rank procs die at
// the current instant (their pending wake-ups become dropped events and
// any parked waits are abandoned), the NIU goes dark, and — for a
// finite window — the restart is scheduled.
func (c *Cluster) crashNode(nodeID int, win fault.NodeWindow) {
	c.Crashes++
	for r := nodeID * c.Cfg.ProcsPerNode; r < (nodeID+1)*c.Cfg.ProcsPerNode; r++ {
		if w := c.workers[r]; w != nil && w.Proc != nil {
			w.Proc.Kill()
		}
	}
	c.Nodes[nodeID].NIU.Crash()
	if c.OnNodeCrash != nil {
		c.OnNodeCrash(nodeID, win.Until <= 0)
	}
	if win.Until > 0 {
		c.Eng.ScheduleAt(win.Until, func() { c.restartNode(nodeID) })
	}
}

// restartNode brings a crashed node back: the NIU comes up and fresh
// rank incarnations run the body from the top.
func (c *Cluster) restartNode(nodeID int) {
	c.Restarts++
	c.Nodes[nodeID].NIU.Restart()
	gen := c.Restarts
	for r := nodeID * c.Cfg.ProcsPerNode; r < (nodeID+1)*c.Cfg.ProcsPerNode; r++ {
		c.spawnRank(r, gen)
	}
	if c.OnNodeRestart != nil {
		c.OnNodeRestart(nodeID)
	}
}

// Run executes the simulation until all activity drains.  It returns an
// error if processes remain blocked (a deadlock in the modelled
// program).
func (c *Cluster) Run() (err error) {
	// The kernel surfaces watchdog trips and in-process panics by
	// panicking from engine context; turn both into errors so callers
	// get a diagnosis (with the waiter map) instead of a crash.
	defer func() {
		if err != nil {
			return
		}
		switch r := recover().(type) {
		case nil:
		case *des.WatchdogError:
			err = fmt.Errorf("cluster: %w", r)
		case *des.ProcPanic:
			err = fmt.Errorf("cluster: %w", r)
		default:
			panic(r)
		}
	}()
	c.Eng.Run()
	if err := c.Eng.Err(); err != nil {
		return fmt.Errorf("cluster: simulation failed at %v: %w", c.Eng.Now(), err)
	}
	if n := c.Eng.Blocked(); n != 0 {
		return fmt.Errorf("cluster: deadlock, %d processes still blocked:\n%s",
			n, des.FormatWaiters(c.Eng.Waiters()))
	}
	return nil
}

// Close releases the engine's process goroutines and the host worker
// pool.
func (c *Cluster) Close() {
	c.Eng.Close()
	if c.Pool != nil {
		c.Pool.Close()
	}
}
