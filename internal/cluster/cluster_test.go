package cluster

import (
	"errors"
	"strings"
	"testing"

	"hyades/internal/arctic"
	"hyades/internal/des"
	"hyades/internal/units"
)

func TestBuildPublishedMachine(t *testing.T) {
	cl, err := New(DefaultConfig(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Processors() != 32 {
		t.Fatalf("processors = %d", cl.Processors())
	}
	if len(cl.Nodes) != 16 {
		t.Fatalf("nodes = %d", len(cl.Nodes))
	}
	for i, n := range cl.Nodes {
		if n.NIU == nil || n.NIU.Endpoint() != i {
			t.Fatalf("node %d NIU wiring", i)
		}
	}
	if cl.Fabric.Config().LinkBandwidth != 150*units.MBps {
		t.Fatal("Arctic link bandwidth")
	}
}

func TestStartRunsAllWorkers(t *testing.T) {
	cl, err := New(DefaultConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	seen := make([]bool, 8)
	nodeOf := make([]int, 8)
	cpuOf := make([]int, 8)
	cl.Start(func(w *Worker) {
		seen[w.Rank] = true
		nodeOf[w.Rank] = w.Node.ID
		cpuOf[w.Rank] = w.CPU
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if !seen[r] {
			t.Fatalf("rank %d never ran", r)
		}
		if nodeOf[r] != r/2 || cpuOf[r] != r%2 {
			t.Fatalf("rank %d placed on node %d cpu %d", r, nodeOf[r], cpuOf[r])
		}
	}
}

func TestWorkersCommunicateViaNIU(t *testing.T) {
	cl, err := New(DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var got uint32
	cl.Start(func(w *Worker) {
		if w.Rank == 0 {
			w.Node.NIU.PIOSend(w.Proc, 1, 5, []uint32{99, 1}, arctic.Low)
		} else {
			m := w.Node.NIU.PIORecv(w.Proc, arctic.Low)
			got = m.Words[0]
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("payload = %d", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	cl, err := New(DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Start(func(w *Worker) {
		w.Node.NIU.PIORecv(w.Proc, arctic.Low) // nobody sends
	})
	if err := cl.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestWatchdogTurnsHangIntoDiagnosis(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Watchdog = 200 * units.Microsecond
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Start(func(w *Worker) {
		if w.Rank == 0 {
			// Rank 1 never sends; rank 0 parks far past the limit while
			// rank 1 keeps the clock moving with delays.
			w.Node.NIU.PIORecv(w.Proc, arctic.Low)
			return
		}
		for i := 0; i < 10; i++ {
			w.Proc.Delay(100 * units.Microsecond)
		}
	})
	err = cl.Run()
	if err == nil {
		t.Fatal("watchdog did not trip")
	}
	var wd *des.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("error is not a watchdog diagnosis: %v", err)
	}
	if wd.Limit != cfg.Watchdog {
		t.Errorf("reported limit %v, want %v", wd.Limit, cfg.Watchdog)
	}
	if !strings.Contains(err.Error(), "rank0") {
		t.Errorf("culprit dump names no rank: %v", err)
	}
	if len(wd.Waiters) == 0 {
		t.Errorf("no parked-waiter set attached: %+v", wd)
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(DefaultConfig(0, 1)); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := New(DefaultConfig(2, 0)); err == nil {
		t.Fatal("0 ppn accepted")
	}
	if _, err := New(DefaultConfig(2, 9)); err == nil {
		t.Fatal("9 ppn accepted")
	}
}
