package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"hyades/internal/units"
)

// TestValidationReproducesPaper checks §5.3: with the Fig. 11
// parameters, the model predicts Tcomm ~ 30.1 min and Tcomp ~ 151 min,
// totalling ~181 min against 183 observed.
func TestValidationReproducesPaper(t *testing.T) {
	e, observed := PaperValidation()
	tcomm := e.Tcomm().Minutes()
	tcomp := e.Tcomp().Minutes()
	total := e.Trun().Minutes()
	t.Logf("Tcomm=%.1f min (paper 30.1), Tcomp=%.1f min (paper 151), total=%.1f min (observed %.0f)",
		tcomm, tcomp, total, observed.Minutes())
	if math.Abs(tcomm-30.1) > 1.0 {
		t.Errorf("Tcomm = %.2f min, paper 30.1", tcomm)
	}
	if math.Abs(tcomp-151) > 2.0 {
		t.Errorf("Tcomp = %.2f min, paper 151", tcomp)
	}
	if math.Abs(total-181) > 2.5 {
		t.Errorf("total = %.2f min, paper 181", total)
	}
	if math.Abs(total-observed.Minutes()) > 6 {
		t.Errorf("model misses the observed wall clock by more than 3%%")
	}
}

// TestFig12PfppValues checks eqs. (14)-(15) against every Pfpp entry
// of Fig. 12.
func TestFig12PfppValues(t *testing.T) {
	rows := PaperFig12()
	want := []struct {
		name           string
		pfppPS, pfppDS float64
	}{
		{"F.E.", 8.0, 1.6},
		{"G.E.", 139, 6.2},
		{"Arctic", 487, 143},
	}
	for i, w := range want {
		got := rows[i]
		if got.Name != w.name {
			t.Fatalf("row %d = %s", i, got.Name)
		}
		if math.Abs(got.PfppPS-w.pfppPS)/w.pfppPS > 0.03 {
			t.Errorf("%s Pfpp,ps = %.1f, paper %.1f", w.name, got.PfppPS, w.pfppPS)
		}
		// The paper prints Pfpp,ds to one decimal (1.6 for the exact
		// 1.68), so allow its truncation.
		if math.Abs(got.PfppDS-w.pfppDS)/w.pfppDS > 0.08 {
			t.Errorf("%s Pfpp,ds = %.2f, paper %.1f", w.name, got.PfppDS, w.pfppDS)
		}
	}
}

// TestDSThreshold checks the paper's 306-us observation: Pfpp,ds = 60
// MFlop/s requires tgsum + texchxy <= ~306 us.
func TestDSThreshold(t *testing.T) {
	got := DSThreshold(60).Micros()
	if math.Abs(got-307.2) > 3 {
		t.Fatalf("DS threshold = %.1f us, paper ~306", got)
	}
	// Gigabit Ethernet is "nearly a factor of ten away".
	ge := (1193 + 1789.0)
	ratio := ge / got
	if ratio < 8 || ratio > 12 {
		t.Fatalf("GE distance from threshold = %.1fx, paper ~10x", ratio)
	}
}

// TestPhaseTimeDecomposition checks eq. (4) and (7) bookkeeping.
func TestPhaseTimeDecomposition(t *testing.T) {
	ps := PaperAtmospherePS()
	if ps.Time() != ps.ComputeTime()+ps.ExchangeTime() {
		t.Error("eq. 4 violated")
	}
	if ps.ExchangeTime() != 5*ps.Texchxyz {
		t.Error("eq. 6 violated")
	}
	ds := PaperDS()
	if ds.Time() != ds.ComputeTime()+ds.ExchangeTime()+ds.GsumTime() {
		t.Error("eq. 7 violated")
	}
	if ds.GsumTime() != 2*ds.Tgsum || ds.ExchangeTime() != 2*ds.Texchxy {
		t.Error("eqs. 9-10 violated")
	}
}

// TestTrunConsistency: Trun = Tcomm + Tcomp exactly, for any
// parameters (the model is a pure decomposition).
func TestTrunConsistency(t *testing.T) {
	f := func(npsRaw, ndsRaw uint16, nxyzRaw, nxyRaw uint16, ntRaw uint16, niRaw uint8) bool {
		e := Experiment{
			PS: PS{
				Nps:       float64(npsRaw%2000) + 1,
				Nxyz:      int(nxyzRaw)%100000 + 1,
				Texchxyz:  units.Time(nxyzRaw+1) * units.Microsecond,
				FpsMFlops: 50,
			},
			DS: DS{
				Nds:       float64(ndsRaw%100) + 1,
				Nxy:       int(nxyRaw)%10000 + 1,
				Tgsum:     units.Time(ndsRaw+1) * units.Microsecond,
				Texchxy:   units.Time(nxyRaw+1) * units.Microsecond,
				FdsMFlops: 60,
			},
			Nt: int(ntRaw)%100000 + 1,
			Ni: float64(niRaw%100) + 1,
		}
		total := float64(e.Trun())
		split := float64(e.Tcomm()) + float64(e.Tcomp())
		return math.Abs(total-split) <= 1e-6*total+1000 // picosecond rounding
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPfppMonotonicity: faster communication can only raise Pfpp.
func TestPfppMonotonicity(t *testing.T) {
	f := func(a, b uint16) bool {
		t1 := units.Time(a%5000+1) * units.Microsecond
		t2 := t1 + units.Time(b%5000+1)*units.Microsecond
		ps1, ps2 := PaperAtmospherePS(), PaperAtmospherePS()
		ps1.Texchxyz, ps2.Texchxyz = t1, t2
		return ps1.Pfpp() > ps2.Pfpp()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOceanAtmosphereScale: the ocean's 15 levels make its texchxyz
// roughly 3x the atmosphere's 5-level cost in the paper's Fig. 11;
// their PS compute times scale with nxyz.
func TestOceanAtmosphereScale(t *testing.T) {
	atm, oc := PaperAtmospherePS(), PaperOceanPS()
	if r := float64(oc.Texchxyz) / float64(atm.Texchxyz); r < 2.5 || r > 3.5 {
		t.Errorf("ocean/atm texchxyz ratio %.2f, expect ~3 (level ratio)", r)
	}
	if r := float64(oc.ComputeTime()) / float64(atm.ComputeTime()); r < 2.7 || r > 3.1 {
		t.Errorf("ocean/atm PS compute ratio %.2f, expect ~2.9", r)
	}
}
