// Package perfmodel implements the analytical performance model of the
// paper's §5.2-§5.4: equations (4)-(13) for the PS/DS phase times and
// total runtime, and the Potential Floating-Point Performance metric
// Pfpp of equations (14)-(15).
//
// The model takes per-phase operation counts (Nps, Nds), per-processor
// problem sizes (nxyz, nxy), measured communication-primitive costs
// (texchxyz, texchxy, tgsum) and measured compute rates (Fps, Fds).
// Feeding it the paper's Fig. 11 parameters reproduces the §5.3
// validation (Tcomm = 30.1 min, Tcomp = 151 min against 183 min
// observed) and the Fig. 12 Pfpp table; feeding it values measured on
// the simulated cluster reproduces the same analysis end to end.
package perfmodel

import (
	"hyades/internal/units"
)

// ExchangesPerStep is the number of 3-D halo exchanges per PS phase
// (the five model state variables; eq. 6).
const ExchangesPerStep = 5

// DSExchangesPerIter and DSGsumsPerIter are the per-solver-iteration
// communication counts (eqs. 9-10).
const (
	DSExchangesPerIter = 2
	DSGsumsPerIter     = 2
)

// PS holds the prognostic-phase parameters (paper Fig. 11, upper).
type PS struct {
	Nps       float64    // flops per grid cell per PS phase
	Nxyz      int        // 3-D cells per processor
	Texchxyz  units.Time // one 3-D halo exchange
	FpsMFlops float64    // measured PS compute rate
}

// ComputeTime is eq. (5): Nps*nxyz/Fps.
func (p PS) ComputeTime() units.Time {
	return units.Seconds(p.Nps * float64(p.Nxyz) / (p.FpsMFlops * 1e6))
}

// ExchangeTime is eq. (6): 5*texchxyz.
func (p PS) ExchangeTime() units.Time {
	return ExchangesPerStep * p.Texchxyz
}

// Time is eq. (4): one full PS phase.
func (p PS) Time() units.Time { return p.ComputeTime() + p.ExchangeTime() }

// Pfpp is eq. (14): the per-processor rate if computation were free,
// in MFlop/s.
func (p PS) Pfpp() float64 {
	return p.Nps * float64(p.Nxyz) / p.ExchangeTime().Seconds() / 1e6
}

// DS holds the diagnostic-phase parameters (paper Fig. 11, lower).
type DS struct {
	Nds       float64    // flops per vertical column per solver iteration
	Nxy       int        // columns per processor
	Tgsum     units.Time // one global sum
	Texchxy   units.Time // one 2-D halo exchange
	FdsMFlops float64    // measured DS compute rate
}

// ComputeTime is eq. (8): Nds*nxy/Fds.
func (d DS) ComputeTime() units.Time {
	return units.Seconds(d.Nds * float64(d.Nxy) / (d.FdsMFlops * 1e6))
}

// ExchangeTime is eq. (9): 2*texchxy.
func (d DS) ExchangeTime() units.Time { return DSExchangesPerIter * d.Texchxy }

// GsumTime is eq. (10): 2*tgsum.
func (d DS) GsumTime() units.Time { return DSGsumsPerIter * d.Tgsum }

// Time is eq. (7): one solver iteration.
func (d DS) Time() units.Time {
	return d.ComputeTime() + d.ExchangeTime() + d.GsumTime()
}

// CommTime is the per-iteration communication total.
func (d DS) CommTime() units.Time { return d.ExchangeTime() + d.GsumTime() }

// Pfpp is eq. (15).
func (d DS) Pfpp() float64 {
	return d.Nds * float64(d.Nxy) / d.CommTime().Seconds() / 1e6
}

// Experiment describes a numerical experiment for eqs. (11)-(13).
type Experiment struct {
	PS PS
	DS DS
	Nt int     // time steps
	Ni float64 // mean solver iterations per step
}

// Trun is eq. (11): total runtime.
func (e Experiment) Trun() units.Time {
	return units.Time(float64(e.Nt)*float64(e.PS.Time()) +
		float64(e.Nt)*e.Ni*float64(e.DS.Time()))
}

// Tcomm is eq. (12): total communication time.
func (e Experiment) Tcomm() units.Time {
	perStep := float64(e.PS.ExchangeTime()) + e.Ni*float64(e.DS.CommTime())
	return units.Time(float64(e.Nt) * perStep)
}

// Tcomp is eq. (13): total computation time.
func (e Experiment) Tcomp() units.Time {
	perStep := float64(e.PS.ComputeTime()) + e.Ni*float64(e.DS.ComputeTime())
	return units.Time(float64(e.Nt) * perStep)
}

// ---- The paper's published parameter values (Fig. 11) ----

// PaperAtmospherePS returns the atmosphere PS row of Fig. 11.
func PaperAtmospherePS() PS {
	return PS{Nps: 781, Nxyz: 5120, Texchxyz: 1640 * units.Microsecond, FpsMFlops: 50}
}

// PaperOceanPS returns the ocean PS row of Fig. 11.
func PaperOceanPS() PS {
	return PS{Nps: 751, Nxyz: 15360, Texchxyz: 4573 * units.Microsecond, FpsMFlops: 50}
}

// PaperDS returns the DS row of Fig. 11 (identical for both isomorphs).
func PaperDS() DS {
	return DS{Nds: 36, Nxy: 1024, Tgsum: units.Micros(13.5), Texchxy: 115 * units.Microsecond, FdsMFlops: 60}
}

// PaperValidation returns the §5.3 one-year atmospheric experiment:
// Nt = 77760, Ni = 60, against 183 wall-clock minutes observed.
func PaperValidation() (e Experiment, observed units.Time) {
	return Experiment{PS: PaperAtmospherePS(), DS: PaperDS(), Nt: 77760, Ni: 60},
		183 * units.Minute
}

// InterconnectRow is one line of the Fig. 12 Pfpp table.
type InterconnectRow struct {
	Name                     string
	Tgsum, Texchxy, Texchxyz units.Time
	PfppPS, PfppDS, Fps, Fds float64 // MFlop/s
}

// Fig12Row evaluates the Pfpp metrics for an interconnect's measured
// primitive costs at the Fig. 12 configuration (the 2.8125-degree
// atmosphere).
func Fig12Row(name string, tgsum, texchxy, texchxyz units.Time) InterconnectRow {
	ps := PaperAtmospherePS()
	ps.Texchxyz = texchxyz
	ds := PaperDS()
	ds.Tgsum = tgsum
	ds.Texchxy = texchxy
	return InterconnectRow{
		Name:     name,
		Tgsum:    tgsum,
		Texchxy:  texchxy,
		Texchxyz: texchxyz,
		PfppPS:   ps.Pfpp(),
		PfppDS:   ds.Pfpp(),
		Fps:      ps.FpsMFlops,
		Fds:      ds.FdsMFlops,
	}
}

// PaperFig12 returns the published Fig. 12 rows (the paper's measured
// primitive costs on each interconnect).
func PaperFig12() []InterconnectRow {
	return []InterconnectRow{
		Fig12Row("F.E.", 942*units.Microsecond, 10008*units.Microsecond, 100000*units.Microsecond),
		Fig12Row("G.E.", 1193*units.Microsecond, 1789*units.Microsecond, 5742*units.Microsecond),
		Fig12Row("Arctic", units.Micros(13.5), 115*units.Microsecond, 1640*units.Microsecond),
	}
}

// DSThreshold returns the communication budget needed to reach a given
// Pfpp,ds — the paper's "to achieve Pfpp,ds of 60 MFlop/s, the sum of
// tgsum and texchxy cannot exceed 306 us" observation.
func DSThreshold(targetMFlops float64) units.Time {
	d := PaperDS()
	// target = Nds*nxy / (2*(tgsum+texchxy)); solve for the sum.
	sum := d.Nds * float64(d.Nxy) / (targetMFlops * 1e6) / 2
	return units.Seconds(sum)
}
