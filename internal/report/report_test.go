package report

import (
	"math"
	"strings"
	"testing"

	"hyades/internal/gcm/field"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.Add("a", "1")
	tb.Addf("%s|%d", "longer-name", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("missing title")
	}
	// Both data rows must place the second column at the same offset.
	iA := strings.Index(lines[3], "1")
	iB := strings.Index(lines[4], "22")
	if iA != iB {
		t.Fatalf("columns misaligned: %d vs %d\n%s", iA, iB, out)
	}
}

func TestTableNoteAndShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("only-one")
	tb.Note = "hello"
	out := tb.String()
	if !strings.Contains(out, "note: hello") {
		t.Fatal("note missing")
	}
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row dropped")
	}
}

// TestAddAvailabilityGolden pins the exact availability block: these
// rows are the survival contract's user-facing surface, so their
// wording and formatting are part of the interface.
func TestAddAvailabilityGolden(t *testing.T) {
	tb := NewTable("", "metric", "value")
	tb.AddAvailability(Availability{
		Restarts:         2,
		RecoveryTime:     1412.5,
		LostVirtual:      52300,
		LostFlops:        987654321,
		Checkpoints:      3,
		CheckpointBytes:  5950080,
		PendingDiscarded: 1,
	})
	want := "metric                                 value             \n" +
		"---------------------------------------------------------\n" +
		"node restarts survived                 2                 \n" +
		"recovery overhead (virtual)            1.413ms           \n" +
		"lost virtual time / replayed flops     52.3ms / 987654321\n" +
		"checkpoints committed                  3 (5950080 bytes) \n" +
		"checkpoint rounds discarded mid-crash  1                 \n"
	if got := tb.String(); got != want {
		t.Errorf("availability block drifted:\ngot:\n%swant:\n%s", got, want)
	}

	// Without a spoiled round the discard row is omitted entirely.
	tb2 := NewTable("", "metric", "value")
	tb2.AddAvailability(Availability{Restarts: 0, Checkpoints: 2, CheckpointBytes: 10})
	if out := tb2.String(); strings.Contains(out, "discarded") {
		t.Errorf("discard row printed for a clean run:\n%s", out)
	}
}

func testField() *field.F2 {
	f := field.NewF2(4, 3, 0)
	v := 0.0
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			f.Set(i, j, v)
			v++
		}
	}
	return f
}

func TestFieldCSV(t *testing.T) {
	out := FieldCSV(testField())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines))
	}
	if lines[0] != "0,1,2,3" {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if lines[2] != "8,9,10,11" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestFieldPGM(t *testing.T) {
	out := FieldPGM(testField())
	if !strings.HasPrefix(out, "P2\n4 3\n255\n") {
		t.Fatalf("header: %q", out[:20])
	}
	// North (j=2) first; its last cell (11) is the max -> 255.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasSuffix(lines[3], "255") {
		t.Fatalf("top row: %q", lines[3])
	}
	if !strings.HasPrefix(lines[5], "0") {
		t.Fatalf("bottom row: %q", lines[5])
	}
}

func TestFieldPGMConstantField(t *testing.T) {
	f := field.NewF2(3, 3, 0)
	f.Fill(7)
	out := FieldPGM(f)
	// Skip the three header lines; every pixel must be zero.
	body := strings.SplitN(out, "\n", 4)[3]
	for _, tok := range strings.Fields(body) {
		if tok != "0" {
			t.Fatalf("constant field rendered %q", tok)
		}
	}
}

func TestFieldASCIILandMarker(t *testing.T) {
	f := field.NewF2(8, 8, 0)
	f.Set(3, 2, math.NaN()) // on a sampled row of the coarse quick-look
	f.Set(0, 0, 1)
	out := FieldASCII(f, 8)
	if !strings.Contains(out, "#") {
		t.Fatal("NaN cells should render as '#'")
	}
}

func TestMicrosFormatting(t *testing.T) {
	cases := map[float64]string{
		8.6:     "8.6us",
		1640:    "1.64ms",
		2000000: "2s",
	}
	for in, want := range cases {
		if got := Micros(in); got != want {
			t.Errorf("Micros(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestGoodput(t *testing.T) {
	if g := Goodput(75, 100); g != 75 {
		t.Errorf("Goodput(75, 100) = %g, want 75", g)
	}
	if g := Goodput(0, 0); g != 0 {
		t.Errorf("Goodput(0, 0) = %g, want 0 (no division by zero)", g)
	}
	if g := Goodput(10, -1); g != 0 {
		t.Errorf("Goodput(10, -1) = %g, want 0", g)
	}
}
