// Package report renders the reproduction's tables and figure data:
// aligned text tables for the paper's tabular figures, and CSV / PGM /
// ASCII quick-looks for the model-output plates of Fig. 9.
package report

import (
	"fmt"
	"math"
	"strings"

	"hyades/internal/gcm/field"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	Note    string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row (cells beyond the header count are dropped).
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Addf appends a row built from format/value pairs.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// FieldCSV renders a 2-D field's interior as CSV (row 0 first).
func FieldCSV(f *field.F2) string {
	var b strings.Builder
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6g", f.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FieldPGM renders a 2-D field as a binary-less (P2 ASCII) PGM image,
// auto-scaled, with row NY-1 at the top so north is up.
func FieldPGM(f *field.F2) string {
	lo, hi := fieldRange(f)
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", f.NX, f.NY)
	for j := f.NY - 1; j >= 0; j-- {
		for i := 0; i < f.NX; i++ {
			v := 0
			if hi > lo {
				v = int(255 * (f.At(i, j) - lo) / (hi - lo))
			}
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FieldASCII renders a coarse quick-look of a 2-D field using a
// ten-level character ramp, north up.  Land/NaN cells print as '#'.
func FieldASCII(f *field.F2, cols int) string {
	if cols <= 0 || cols > f.NX {
		cols = f.NX
	}
	rows := f.NY * cols / f.NX / 2 // compensate terminal aspect
	if rows < 1 {
		rows = 1
	}
	ramp := []byte(" .:-=+*%@$")
	lo, hi := fieldRange(f)
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			i := c * f.NX / cols
			j := r * f.NY / rows
			v := f.At(i, j)
			if math.IsNaN(v) {
				b.WriteByte('#')
				continue
			}
			idx := 0
			if hi > lo {
				idx = int(float64(len(ramp)-1) * (v - lo) / (hi - lo))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fieldRange(f *field.F2) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			v := f.At(i, j)
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0
	}
	return lo, hi
}

// Availability carries the crash-recovery counters of a run for the
// report table: how many node losses the run survived and what they
// cost (detection-to-release stall, rolled-back integration, replayed
// work) next to what the insurance cost (committed checkpoint rounds).
type Availability struct {
	Restarts         int     // node crashes survived
	RecoveryTime     float64 // crash-to-release virtual time, microseconds
	LostVirtual      float64 // virtual integration time rolled back, microseconds
	LostFlops        int64   // flops of abandoned attempts (work redone)
	Checkpoints      int     // committed checkpoint rounds
	CheckpointBytes  int64   // bytes across all committed rounds
	PendingDiscarded int     // checkpoint rounds spoiled by a crash
}

// AddAvailability appends the availability rows — they sit next to the
// goodput row in fault-injection reports.
func (t *Table) AddAvailability(a Availability) {
	t.Addf("node restarts survived|%d", a.Restarts)
	t.Addf("recovery overhead (virtual)|%s", Micros(a.RecoveryTime))
	t.Addf("lost virtual time / replayed flops|%s / %d", Micros(a.LostVirtual), a.LostFlops)
	t.Addf("checkpoints committed|%d (%d bytes)", a.Checkpoints, a.CheckpointBytes)
	if a.PendingDiscarded > 0 {
		t.Addf("checkpoint rounds discarded mid-crash|%d", a.PendingDiscarded)
	}
}

// Goodput returns delivered payload bytes as a percentage of wire
// bytes — the efficiency metric for fault-injection runs, where
// retransmissions and ACK traffic inflate the wire count.
func Goodput(payloadBytes, wireBytes int64) float64 {
	if wireBytes <= 0 {
		return 0
	}
	return 100 * float64(payloadBytes) / float64(wireBytes)
}

// Micros formats a time-like microsecond count compactly.
func Micros(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.3gs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.4gms", us/1e3)
	default:
		return fmt.Sprintf("%.3gus", us)
	}
}
