package mpistart

import (
	"bytes"
	"math"
	"testing"

	"hyades/internal/cluster"
	"hyades/internal/units"
)

// run spawns an n-node single-process-per-node machine.
func run(t *testing.T, n int, body func(c *Comm)) units.Time {
	t.Helper()
	cl, err := cluster.New(cluster.DefaultConfig(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Start(func(w *cluster.Worker) {
		c, err := New(w, n)
		if err != nil {
			t.Error(err)
			return
		}
		body(c)
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	return cl.Eng.Now()
}

func TestSendRecvEagerAndBulk(t *testing.T) {
	for _, size := range []int{1, 10, eagerLimit, eagerLimit + 1, 5000} {
		size := size
		run(t, 2, func(c *Comm) {
			msg := make([]byte, size)
			for i := range msg {
				msg[i] = byte(i*3 + size)
			}
			if c.Rank() == 0 {
				c.Send(1, 7, msg)
			} else {
				got := c.Recv(0, 7)
				if !bytes.Equal(got, msg) {
					t.Errorf("size %d: payload corrupted", size)
				}
			}
		})
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte{1})
			c.Send(1, 2, []byte{2})
		} else {
			// Receive in the opposite order: the stash must hold tag 1.
			if got := c.Recv(0, 2); got[0] != 2 {
				t.Errorf("tag 2 = %v", got)
			}
			if got := c.Recv(0, 1); got[0] != 1 {
				t.Errorf("tag 1 = %v", got)
			}
		}
	})
}

func TestAllreduceValueAllSizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		n := n
		want := float64(n * (n + 1) / 2)
		run(t, n, func(c *Comm) {
			got := c.Allreduce(float64(c.Rank()+1), 10)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d rank %d: allreduce = %g, want %g", n, c.Rank(), got, want)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2} {
		root := root
		run(t, 5, func(c *Comm) {
			var in []byte
			if c.Rank() == root {
				in = []byte{9, 8, 7}
			}
			got := c.Bcast(root, 20, in)
			if len(got) != 3 || got[0] != 9 || got[2] != 7 {
				t.Errorf("root %d rank %d: bcast = %v", root, c.Rank(), got)
			}
		})
	}
}

func TestGather(t *testing.T) {
	run(t, 4, func(c *Comm) {
		out := c.Gather(0, 30, []byte{byte(c.Rank() * 11)})
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if out[r][0] != byte(r*11) {
					t.Errorf("gather[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			t.Error("non-root got gather output")
		}
	})
}

func TestSendrecvSymmetric(t *testing.T) {
	run(t, 4, func(c *Comm) {
		peer := c.Rank() ^ 1
		got := c.Sendrecv(peer, 40, []byte{byte(c.Rank())})
		if got[0] != byte(peer) {
			t.Errorf("rank %d sendrecv = %v", c.Rank(), got)
		}
	})
}

func TestRejectsMixMode(t *testing.T) {
	cl, err := cluster.New(cluster.DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fail := false
	cl.Start(func(w *cluster.Worker) {
		if _, err := New(w, 4); err != nil {
			fail = true
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !fail {
		t.Fatal("CPU 1 accepted")
	}
}

// TestGeneralityTax quantifies the paper's §6 argument: the portable
// allreduce must be measurably slower than the application-specific
// global sum on the same simulated hardware.
func TestGeneralityTax(t *testing.T) {
	const n = 16
	var start, end units.Time
	elapsed := func() units.Time { return (end - start) / 8 }
	run(t, n, func(c *Comm) {
		c.Barrier(50)
		if c.Rank() == 0 {
			start = c.w.Proc.Now()
		}
		for i := 0; i < 8; i++ {
			c.Allreduce(float64(i), 60+2*i)
		}
		if c.Rank() == 0 {
			end = c.w.Proc.Now()
		}
	})
	mpi := elapsed()
	t.Logf("MPI-StarT 16-way allreduce: %v (custom butterfly: ~15 us, paper 18.2)", mpi)
	if mpi < 20*units.Microsecond {
		t.Errorf("portable allreduce %v implausibly beats the custom primitive class", mpi)
	}
	if mpi > 120*units.Microsecond {
		t.Errorf("portable allreduce %v worse than even commodity-API clusters", mpi)
	}
}
