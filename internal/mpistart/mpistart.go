// Package mpistart models MPI-StarT (Husbands & Hoe, SC'98 — the
// paper's reference [18]): a general-purpose message-passing interface
// delivering the StarT-X network to portable applications.
//
// The paper's §6 argues that an application-specific cluster should
// *not* pay for such generality: "there is little reason to give up
// any performance for an API that is more general than required".
// This package exists to quantify that trade on the simulated
// machine: the same hardware mechanisms (PIO for eager messages, VI
// DMA for bulk), but wrapped in a portable layer that pays a per-call
// software tax (communicator dispatch, datatype handling, request
// bookkeeping) and uses the portable reduce-broadcast algorithm
// instead of the latency-optimal application-specific butterfly.  See
// BenchmarkAblationMPIvsCustom.
//
// The model supports one process per node (MPI-StarT's cluster mode).
package mpistart

import (
	"encoding/binary"
	"fmt"
	"math"

	"hyades/internal/arctic"
	"hyades/internal/cluster"
	"hyades/internal/startx"
	"hyades/internal/units"
)

// Overhead is the per-call software cost of the portable layer on each
// side of an operation, on top of the hardware costs.  MPI-StarT's
// published small-message latencies sit a few microseconds above the
// raw mechanisms; 2 us per side reproduces that class.
const Overhead = 2 * units.Microsecond

// eagerLimit is the largest message sent inline through PIO registers.
const eagerLimit = arctic.MaxPayloadBytes - 4 // one word carries the length

// Comm is one rank's communicator handle.
type Comm struct {
	w     *cluster.Worker
	niu   *startx.NIU
	size  int
	stash map[key][][]byte
}

type key struct {
	src, tag int
}

// New binds a communicator to a started worker.  The cluster must run
// one process per node.
func New(w *cluster.Worker, size int) (*Comm, error) {
	if w.CPU != 0 {
		return nil, fmt.Errorf("mpistart: one process per node only")
	}
	return &Comm{w: w, niu: w.Node.NIU, size: size, stash: make(map[key][][]byte)}, nil
}

// Rank returns this process's rank (its node id).
func (c *Comm) Rank() int { return c.w.Rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Send transmits data to dst with a tag (0..255).  Small messages go
// eagerly through PIO; larger ones stream through the VI DMA engine.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.w.Proc.Delay(Overhead)
	if tag < 0 || tag > 0xff {
		panic(fmt.Sprintf("mpistart: tag %d out of range", tag))
	}
	if len(data) <= eagerLimit {
		words := make([]uint32, 0, arctic.MaxPayloadWords)
		words = append(words, uint32(len(data)))
		for off := 0; off < len(data); off += 4 {
			var w uint32
			for b := 0; b < 4 && off+b < len(data); b++ {
				w |= uint32(data[off+b]) << (8 * b)
			}
			words = append(words, w)
		}
		if len(words) < arctic.MinPayloadWords {
			words = append(words, 0)
		}
		c.niu.PIOSend(c.w.Proc, dst, tag, words, arctic.Low)
		return
	}
	c.niu.DMASend(c.w.Proc, dst, tag, data, arctic.Low)
}

// Recv blocks for the next message from src with the given tag.
func (c *Comm) Recv(src, tag int) []byte {
	c.w.Proc.Delay(Overhead)
	k := key{src, tag}
	if q := c.stash[k]; len(q) > 0 {
		data := q[0]
		c.stash[k] = q[1:]
		return data
	}
	for {
		src2, tag2, data := c.pull()
		if src2 == src && tag2 == tag {
			return data
		}
		k2 := key{src2, tag2}
		c.stash[k2] = append(c.stash[k2], data)
	}
}

// pull drains the next message from either hardware queue.  A single
// process per node consumes both queues, so blocking on PIO first and
// falling back to VI needs an arrival check loop.
func (c *Comm) pull() (src, tag int, data []byte) {
	for {
		if m, ok := c.niu.TryPIORecv(c.w.Proc, arctic.Low); ok {
			n := int(m.Words[0])
			buf := make([]byte, n)
			for i := 0; i < n; i++ {
				buf[i] = byte(m.Words[1+i/4] >> (8 * (i % 4)))
			}
			return m.Src, m.Tag, buf
		}
		if c.niu.VIPending() > 0 {
			t := c.niu.VIRecv(c.w.Proc)
			return t.Src, t.Tag, t.Data
		}
		// Nothing yet: poll again after a status-read interval (the
		// TryPIORecv above already charged one).
	}
}

// Sendrecv performs the symmetric exchange the portable halo code uses.
func (c *Comm) Sendrecv(peer, tag int, send []byte) []byte {
	if c.Rank() < peer {
		c.Send(peer, tag, send)
		return c.Recv(peer, tag)
	}
	data := c.Recv(peer, tag)
	c.Send(peer, tag, send)
	return data
}

// Bcast distributes root's buffer to every rank over a binomial tree
// and returns each rank's copy.
func (c *Comm) Bcast(root, tag int, data []byte) []byte {
	me := (c.Rank() - root + c.size) % c.size
	highest := 1
	for highest < c.size {
		highest <<= 1
	}
	if me != 0 {
		low := me & -me
		parent := (me - low + root) % c.size
		data = c.Recv(parent, tag)
		highest = low
	}
	for mask := highest >> 1; mask >= 1; mask >>= 1 {
		if me&mask == 0 && me|mask < c.size {
			c.Send(((me|mask)+root)%c.size, tag, data)
		}
	}
	return data
}

// Allreduce sums one float64 across all ranks with the portable
// reduce-then-broadcast algorithm (2 log2 N sequential message
// latencies on the critical path, against the custom butterfly's
// log2 N).
func (c *Comm) Allreduce(x float64, tag int) float64 {
	me, n := c.Rank(), c.size
	sum := x
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			c.Send(me&^mask, tag, encodeFloat(sum))
			break
		}
		if me|mask < n {
			sum += decodeFloat(c.Recv(me|mask, tag))
		}
	}
	highest := 1
	for highest < n {
		highest <<= 1
	}
	start := highest
	if me != 0 {
		low := me & -me
		sum = decodeFloat(c.Recv(me&^low, tag+1))
		start = low
	}
	for mask := start >> 1; mask >= 1; mask >>= 1 {
		if me|mask < n && me&mask == 0 {
			c.Send(me|mask, tag+1, encodeFloat(sum))
		}
	}
	return sum
}

// Barrier blocks until every rank arrives.
func (c *Comm) Barrier(tag int) { c.Allreduce(0, tag) }

// Gather collects every rank's buffer at root, in rank order; other
// ranks return nil.
func (c *Comm) Gather(root, tag int, data []byte) [][]byte {
	if c.Rank() != root {
		c.Send(root, tag, data)
		return nil
	}
	out := make([][]byte, c.size)
	out[root] = data
	for r := 0; r < c.size; r++ {
		if r != root {
			out[r] = c.Recv(r, tag)
		}
	}
	return out
}

func encodeFloat(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func decodeFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
