// Package node models one Hyades processing node: a two-way SMP with
// 400-MHz processors, 100-MHz SDRAM, a PCI bus and a StarT-X NIU
// (paper §2.1).
//
// Processors are discrete-event processes created by the cluster layer;
// this package carries the per-node cost parameters they charge against:
// memory-copy bandwidth (for packing halo data and moving it through the
// VI region or shared memory) and shared-memory semaphore costs (for the
// mix-mode primitives of §4.1/§4.2).
package node

import (
	"fmt"

	"hyades/internal/des"
	"hyades/internal/pci"
	"hyades/internal/startx"
	"hyades/internal/units"
)

// Config holds per-node cost parameters.  The copy rates are calibrated
// (together with the per-row pack overheads in package comm) so the
// stand-alone exchange benchmarks land on the paper's measured texch
// values; the semaphore cost reproduces the ~1 us mix-mode global-sum
// penalty and the ~30% slave-exchange bandwidth loss.
type Config struct {
	Processors int // CPUs per SMP (Hyades: 2)

	// MemcpyBandwidth is the rate of a well-behaved cached block copy.
	MemcpyBandwidth units.Bandwidth
	// UncachedCopyBandwidth is the rate of a copy whose working set
	// misses the cache (large 3-D fields swept between exchanges).
	UncachedCopyBandwidth units.Bandwidth
	// SemaphoreCost is one shared-memory semaphore operation.
	SemaphoreCost units.Time
}

// DefaultConfig returns the calibrated Hyades node parameters.
func DefaultConfig() Config {
	return Config{
		Processors:            2,
		MemcpyBandwidth:       300 * units.MBps,
		UncachedCopyBandwidth: 150 * units.MBps,
		SemaphoreCost:         300 * units.Nanosecond,
	}
}

// Node is one SMP.
type Node struct {
	ID  int
	Eng *des.Engine
	Cfg Config
	Bus *pci.Bus
	NIU *startx.NIU

	// NIULock serializes NIU use between the processors of the SMP;
	// the communication master holds it during remote primitives.
	NIULock *des.Semaphore

	// Shared is scratch shared memory for intra-SMP rendezvous, keyed
	// by a small protocol-defined integer.
	Shared map[int]*des.Mailbox[[]byte]

	// Sums is the shared-memory slot used by the mix-mode local
	// reduction of §4.2.
	Sums *des.Mailbox[float64]
}

// New creates a node with its bus; the NIU is attached by the cluster.
func New(e *des.Engine, id int, cfg Config, busCfg pci.Config) *Node {
	return &Node{
		ID:      id,
		Eng:     e,
		Cfg:     cfg,
		Bus:     pci.NewBus(e, busCfg),
		NIULock: des.NewSemaphore(e, fmt.Sprintf("node%d.niulock", id), 1),
		Shared:  make(map[int]*des.Mailbox[[]byte]),
		Sums:    des.NewMailbox[float64](e, "sums"),
	}
}

// AttachNIU installs the node's network interface.
func (n *Node) AttachNIU(niu *startx.NIU) { n.NIU = niu }

// Memcpy charges the calling processor for a cached block copy.
func (n *Node) Memcpy(p *des.Proc, bytes int) {
	p.Delay(n.Cfg.MemcpyBandwidth.Transfer(bytes))
}

// UncachedCopy charges the calling processor for a cache-missing copy.
func (n *Node) UncachedCopy(p *des.Proc, bytes int) {
	p.Delay(n.Cfg.UncachedCopyBandwidth.Transfer(bytes))
}

// SemOp charges one shared-memory semaphore operation.
func (n *Node) SemOp(p *des.Proc) { p.Delay(n.Cfg.SemaphoreCost) }

// SharedChannel returns (creating on demand) the intra-SMP rendezvous
// channel for a protocol key.
func (n *Node) SharedChannel(key int) *des.Mailbox[[]byte] {
	mb, ok := n.Shared[key]
	if !ok {
		mb = des.NewMailbox[[]byte](n.Eng, "shm")
		n.Shared[key] = mb
	}
	return mb
}
