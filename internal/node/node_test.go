package node

import (
	"testing"

	"hyades/internal/des"
	"hyades/internal/pci"
	"hyades/internal/units"
)

func TestCostCharging(t *testing.T) {
	eng := des.NewEngine()
	n := New(eng, 0, DefaultConfig(), pci.DefaultConfig())
	var after units.Time
	eng.Spawn("p", func(p *des.Proc) {
		n.Memcpy(p, 3_000_000)       // 3 MB at 300 MB/s = 10 ms
		n.UncachedCopy(p, 1_500_000) // 1.5 MB at 150 MB/s = 10 ms
		n.SemOp(p)
		after = p.Now()
	})
	eng.Run()
	want := 20*units.Millisecond + 300*units.Nanosecond
	if after != want {
		t.Fatalf("charged %v, want %v", after, want)
	}
}

func TestSharedChannelIdentity(t *testing.T) {
	eng := des.NewEngine()
	n := New(eng, 0, DefaultConfig(), pci.DefaultConfig())
	a := n.SharedChannel(7)
	b := n.SharedChannel(7)
	c := n.SharedChannel(8)
	if a != b {
		t.Fatal("same key returned different channels")
	}
	if a == c {
		t.Fatal("different keys share a channel")
	}
}

func TestDefaultConfigIsTwoWay(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Processors != 2 {
		t.Fatalf("Hyades SMPs are two-way, got %d", cfg.Processors)
	}
	if cfg.MemcpyBandwidth <= cfg.UncachedCopyBandwidth {
		t.Fatal("cached copies should beat uncached copies")
	}
}

func TestNIULockMutualExclusion(t *testing.T) {
	eng := des.NewEngine()
	n := New(eng, 0, DefaultConfig(), pci.DefaultConfig())
	inside, max := 0, 0
	for i := 0; i < 3; i++ {
		eng.Spawn("cpu", func(p *des.Proc) {
			n.NIULock.Acquire(p)
			inside++
			if inside > max {
				max = inside
			}
			p.Delay(units.Microsecond)
			inside--
			n.NIULock.Release()
		})
	}
	eng.Run()
	if max != 1 {
		t.Fatalf("NIU lock admitted %d holders", max)
	}
}
