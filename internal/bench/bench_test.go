package bench

import (
	"testing"

	"hyades/internal/netmodel"
	"hyades/internal/units"
)

// TestArcticPrimitives measures the Fig. 11 communication parameters
// on the simulated Hyades machine.  The paper's values (16 processors,
// 32x32 tiles on 8 SMPs) and ours (16 workers, 32x16 tiles) differ in
// tile shape, so the comparison bands are generous; the orders of
// magnitude and the DS/PS asymmetry must match.
func TestArcticPrimitives(t *testing.T) {
	p, err := MeasureHyades()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Arctic: tgsum=%v texchxy=%v texchxyz(5)=%v texchxyz(15)=%v", p.Tgsum, p.Texchxy, p.Texchxyz, p.Ocean3D)
	check := func(name string, got units.Time, loUs, hiUs float64) {
		if us := got.Micros(); us < loUs || us > hiUs {
			t.Errorf("%s = %.1f us outside [%g, %g]", name, us, loUs, hiUs)
		}
	}
	check("tgsum (paper 13.5us)", p.Tgsum, 9, 20)
	check("texchxy (paper 115us)", p.Texchxy, 60, 180)
	check("texchxyz atm (paper 1640us)", p.Texchxyz, 700, 2500)
	check("texchxyz ocean (paper 4573us)", p.Ocean3D, 2000, 7000)
	if !(p.Tgsum < p.Texchxy && p.Texchxy < p.Texchxyz && p.Texchxyz < p.Ocean3D) {
		t.Errorf("primitive ordering broken: %+v", p)
	}
}

// TestEthernetPrimitives verifies the calibrated Ethernet models land
// near the paper's measured Fig. 12 values.
func TestEthernetPrimitives(t *testing.T) {
	cases := []struct {
		prm                    netmodel.Params
		gsumUs, xyUs, xyzUs    float64
		gsumTol, xyTol, xyzTol float64
	}{
		{netmodel.FastEthernet(), 942, 10008, 100000, 0.5, 0.5, 0.5},
		{netmodel.GigabitEthernet(), 1193, 1789, 5742, 0.5, 0.9, 0.9},
	}
	for _, tc := range cases {
		p, err := MeasureNet(tc.prm)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: tgsum=%v texchxy=%v texchxyz=%v (paper: %g, %g, %g us)",
			tc.prm.Name, p.Tgsum, p.Texchxy, p.Texchxyz, tc.gsumUs, tc.xyUs, tc.xyzUs)
		rel := func(got units.Time, want float64) float64 {
			return (got.Micros() - want) / want
		}
		if r := rel(p.Tgsum, tc.gsumUs); r < -tc.gsumTol || r > tc.gsumTol {
			t.Errorf("%s tgsum off by %+.0f%%", tc.prm.Name, r*100)
		}
		if r := rel(p.Texchxy, tc.xyUs); r < -tc.xyTol || r > tc.xyTol {
			t.Errorf("%s texchxy off by %+.0f%%", tc.prm.Name, r*100)
		}
		if r := rel(p.Texchxyz, tc.xyzUs); r < -tc.xyzTol || r > tc.xyzTol {
			t.Errorf("%s texchxyz off by %+.0f%%", tc.prm.Name, r*100)
		}
	}
}

// TestInterconnectOrdering verifies the headline qualitative result:
// Arctic is roughly an order of magnitude ahead of Gigabit Ethernet,
// which is ahead of Fast Ethernet, on every primitive.
func TestInterconnectOrdering(t *testing.T) {
	arctic, err := MeasureHyades()
	if err != nil {
		t.Fatal(err)
	}
	ge, err := MeasureNet(netmodel.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	fe, err := MeasureNet(netmodel.FastEthernet())
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		name    string
		a, g, f units.Time
	}
	// Note the paper's own Fig. 12: the GE *global sum* is slower than
	// FE's (1193 vs 942 us) — early gigabit NICs had worse small-message
	// latency — so only the exchanges are required to order FE > GE.
	for _, pr := range []pair{
		{"tgsum", arctic.Tgsum, ge.Tgsum, fe.Tgsum},
		{"texchxy", arctic.Texchxy, ge.Texchxy, fe.Texchxy},
		{"texchxyz", arctic.Texchxyz, ge.Texchxyz, fe.Texchxyz},
	} {
		if pr.a >= pr.g {
			t.Errorf("%s: Arctic (%v) not ahead of GE (%v)", pr.name, pr.a, pr.g)
		}
		if float64(pr.g)/float64(pr.a) < 3 {
			t.Errorf("%s: GE only %.1fx worse than Arctic; paper shows order-of-magnitude gaps",
				pr.name, float64(pr.g)/float64(pr.a))
		}
	}
	if fe.Texchxy <= ge.Texchxy || fe.Texchxyz <= ge.Texchxyz {
		t.Errorf("FE exchanges should be far slower than GE: fe=(%v,%v) ge=(%v,%v)",
			fe.Texchxy, fe.Texchxyz, ge.Texchxy, ge.Texchxyz)
	}
}

// TestMyrinetHPVMAnchors verifies the §6 comparison points: a 16-way
// barrier above 50 us (2.5x the Hyades 18-20 us) and ~42 MB/s at 1 KiB.
func TestMyrinetHPVMAnchors(t *testing.T) {
	prm := netmodel.MyrinetHPVM()
	barrier, err := Gsum(NetRunner{Prm: prm}, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("HPVM 16-way barrier/gsum = %v (paper: >50 us)", barrier)
	if us := barrier.Micros(); us < 40 || us > 80 {
		t.Errorf("HPVM barrier %.1f us outside [40, 80]", us)
	}
	// 1-KiB transfer bandwidth: one-way message cost.
	c := netmodel.New(2, prm)
	defer c.Close()
	var elapsed units.Time
	c.Start(func(ep *netmodel.Endpoint) {
		if ep.Rank() == 0 {
			t0 := ep.Now()
			for i := 0; i < 4; i++ {
				ep.Exchange(1, make([]byte, 1024), Contig1K())
			}
			elapsed = (ep.Now() - t0) / 4
		} else {
			for i := 0; i < 4; i++ {
				ep.Exchange(0, make([]byte, 1024), Contig1K())
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// An exchange is two sequential 1-KiB transfers; per-transfer rate:
	bw := units.Rate(2*1024, elapsed).MBperSec()
	t.Logf("HPVM 1-KiB transfer bandwidth = %.1f MB/s (paper: ~42)", bw)
	if bw < 30 || bw > 55 {
		t.Errorf("HPVM 1-KiB bandwidth %.1f MB/s outside [30, 55]", bw)
	}
}
