// Package bench provides the stand-alone communication-primitive
// benchmarks of the paper's §4/§5: global-sum latency and the 2-D/3-D
// halo-exchange times (tgsum, texchxy, texchxyz of Fig. 11), runnable
// over any machine that provides comm.Endpoint workers — the simulated
// Hyades cluster or the modelled Ethernet/Myrinet interconnects of
// Fig. 12.
//
// The exchange benchmarks drive the *same* tile/halo code as the GCM,
// so the measured values are exactly what the model experiences.
package bench

import (
	"fmt"

	"hyades/internal/cluster"
	"hyades/internal/comm"
	"hyades/internal/gcm/field"
	"hyades/internal/gcm/tile"
	"hyades/internal/netmodel"
	"hyades/internal/units"
)

// Runner starts n workers on some machine and drains the simulation.
type Runner interface {
	Name() string
	Run(workers int, body func(ep comm.Endpoint)) error
}

// HyadesRunner runs workers on the simulated Hyades cluster.
type HyadesRunner struct {
	PPN int // processors per SMP (1 or 2)
}

// Name implements Runner.
func (r HyadesRunner) Name() string { return "Arctic" }

// Run implements Runner.
func (r HyadesRunner) Run(workers int, body func(ep comm.Endpoint)) error {
	ppn := r.PPN
	if ppn == 0 {
		ppn = 1
	}
	if workers%ppn != 0 {
		return fmt.Errorf("bench: %d workers not divisible by %d per node", workers, ppn)
	}
	cl, err := cluster.New(cluster.DefaultConfig(workers/ppn, ppn))
	if err != nil {
		return err
	}
	defer cl.Close()
	lib, err := comm.NewHyades(cl, comm.DefaultHyadesConfig())
	if err != nil {
		return err
	}
	cl.Start(func(w *cluster.Worker) { body(lib.Bind(w)) })
	return cl.Run()
}

// NetRunner runs workers on a modelled interconnect.
type NetRunner struct {
	Prm netmodel.Params
}

// Name implements Runner.
func (r NetRunner) Name() string { return r.Prm.Name }

// Run implements Runner.
func (r NetRunner) Run(workers int, body func(ep comm.Endpoint)) error {
	c := netmodel.New(workers, r.Prm)
	defer c.Close()
	c.Start(func(ep *netmodel.Endpoint) { body(ep) })
	return c.Run()
}

// Gsum measures the steady-state global-sum latency over the given
// worker count.
func Gsum(r Runner, workers, reps int) (units.Time, error) {
	var start, end units.Time
	err := r.Run(workers, func(ep comm.Endpoint) {
		ep.GlobalSum(1) // warm-up alignment
		if ep.Rank() == 0 {
			start = ep.Now()
		}
		for i := 0; i < reps; i++ {
			ep.GlobalSum(float64(i))
		}
		if ep.Rank() == 0 {
			end = ep.Now()
		}
	})
	if err != nil {
		return 0, err
	}
	return (end - start) / units.Time(reps), nil
}

// Exchange2 measures the full 2-D halo update of one field (texchxy):
// the time for every tile to bring a width-1 halo current, averaged
// over reps.
func Exchange2(r Runner, d tile.Decomp, reps int) (units.Time, error) {
	nx, ny := d.TileSize()
	var start, end units.Time
	err := r.Run(d.Tiles(), func(ep comm.Endpoint) {
		h, err := tile.NewHalo(ep, d)
		if err != nil {
			panic(err)
		}
		f := field.NewF2(nx, ny, 1)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				f.Set(i, j, float64(i*j))
			}
		}
		h.Update2(f, 1) // warm-up
		ep.Barrier()
		if ep.Rank() == 0 {
			start = ep.Now()
		}
		for i := 0; i < reps; i++ {
			h.Update2(f, 1)
		}
		ep.Barrier()
		if ep.Rank() == 0 {
			end = ep.Now()
		}
	})
	if err != nil {
		return 0, err
	}
	return (end - start) / units.Time(reps), nil
}

// Exchange3 measures the full 3-D halo update of one field with the
// GCM's overcomputation width (texchxyz).
func Exchange3(r Runner, d tile.Decomp, nz, width, reps int) (units.Time, error) {
	nx, ny := d.TileSize()
	var start, end units.Time
	err := r.Run(d.Tiles(), func(ep comm.Endpoint) {
		h, err := tile.NewHalo(ep, d)
		if err != nil {
			panic(err)
		}
		f := field.NewF3(nx, ny, nz, width)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					f.Set(i, j, k, float64(i+j+k))
				}
			}
		}
		h.Update3(f, width) // warm-up
		ep.Barrier()
		if ep.Rank() == 0 {
			start = ep.Now()
		}
		for i := 0; i < reps; i++ {
			h.Update3(f, width)
		}
		ep.Barrier()
		if ep.Rank() == 0 {
			end = ep.Now()
		}
	})
	if err != nil {
		return 0, err
	}
	return (end - start) / units.Time(reps), nil
}

// Primitives bundles the three Fig. 11/12 communication parameters.
type Primitives struct {
	Machine  string
	Workers  int
	Tgsum    units.Time
	Texchxy  units.Time
	Texchxyz units.Time // at the atmosphere's nz
	Ocean3D  units.Time // at the ocean's nz
}

// ProductionDecomp is the Fig. 11 benchmark decomposition: the
// 2.8125-degree 128x64 grid carved into eight 32x32 tiles, one per
// SMP, exactly as the paper's coupled production runs (nxy = 1024).
func ProductionDecomp() tile.Decomp {
	return tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 2, PeriodicX: true}
}

// ScalingDecomp spreads the same grid over sixteen workers (32x16
// tiles), used by the Fig. 10 sustained-performance runs.
func ScalingDecomp() tile.Decomp {
	return tile.Decomp{NXg: 128, NYg: 64, Px: 4, Py: 4, PeriodicX: true}
}

// MeasurePrimitives runs the three stand-alone benchmarks of Fig. 11.
// The global sum spans all sixteen processors (the paper's 2x8-way
// value, 13.5 us); the exchanges run over the eight 32x32 tiles with
// one communicating master per SMP, so gsumRunner and exchRunner may
// configure the machine differently (Hyades: ppn=2 vs ppn=1).
func MeasurePrimitives(gsumRunner, exchRunner Runner) (Primitives, error) {
	return MeasureConfig(gsumRunner, exchRunner, ProductionDecomp(), 16, 5, 15)
}

// MeasureConfig measures the primitives for an arbitrary decomposition
// and level counts, with the global sum spanning gsumWorkers
// processors.
func MeasureConfig(gsumRunner, exchRunner Runner, d tile.Decomp, gsumWorkers, nzAtm, nzOcean int) (Primitives, error) {
	p := Primitives{Machine: gsumRunner.Name(), Workers: gsumWorkers}
	var err error
	if p.Tgsum, err = Gsum(gsumRunner, gsumWorkers, 8); err != nil {
		return p, err
	}
	if p.Texchxy, err = Exchange2(exchRunner, d, 4); err != nil {
		return p, err
	}
	if p.Texchxyz, err = Exchange3(exchRunner, d, nzAtm, 3, 2); err != nil {
		return p, err
	}
	if p.Ocean3D, err = Exchange3(exchRunner, d, nzOcean, 3, 2); err != nil {
		return p, err
	}
	return p, nil
}

// MeasureHyades runs the Fig. 11 benchmarks on the simulated Hyades
// machine in its production configuration.
func MeasureHyades() (Primitives, error) {
	return MeasurePrimitives(HyadesRunner{PPN: 2}, HyadesRunner{PPN: 1})
}

// MeasureNet runs the Fig. 12 benchmarks on a modelled interconnect.
func MeasureNet(prm netmodel.Params) (Primitives, error) {
	r := NetRunner{Prm: prm}
	return MeasurePrimitives(r, r)
}

// Contig1K is the layout of a contiguous 1-KiB block (test helper for
// the §6 HPVM bandwidth anchor).
func Contig1K() comm.Block { return comm.Contiguous(1024, true) }

// BWPoint is one point of the Fig. 7 bandwidth curve.
type BWPoint struct {
	Bytes     int
	Perceived units.Bandwidth
}

// TransferBandwidth measures the perceived one-directional transfer
// bandwidth for a block size (the Fig. 7 metric): an exchange is two
// symmetric sequential transfers, so the per-direction time is half
// the exchange time.
func TransferBandwidth(r Runner, size, reps int) (units.Bandwidth, error) {
	var start, end units.Time
	err := r.Run(2, func(ep comm.Endpoint) {
		peer := 1 - ep.Rank()
		buf := make([]byte, size)
		layout := comm.Contiguous(size, true)
		ep.Exchange(peer, buf, layout) // warm-up
		if ep.Rank() == 0 {
			start = ep.Now()
		}
		for i := 0; i < reps; i++ {
			ep.Exchange(peer, buf, layout)
		}
		if ep.Rank() == 0 {
			end = ep.Now()
		}
	})
	if err != nil {
		return 0, err
	}
	perTransfer := (end - start) / units.Time(2*reps)
	return units.Rate(size, perTransfer), nil
}

// Fig7Sizes returns the paper's Fig. 7 x-axis: 4 B to 128 KiB in
// powers of two.
func Fig7Sizes() []int {
	var sizes []int
	for b := 4; b <= 131072; b *= 2 {
		sizes = append(sizes, b)
	}
	return sizes
}

// Fig7Curve measures the full bandwidth-vs-block-size curve.
func Fig7Curve(r Runner) ([]BWPoint, error) {
	var pts []BWPoint
	for _, size := range Fig7Sizes() {
		bw, err := TransferBandwidth(r, size, 3)
		if err != nil {
			return nil, err
		}
		pts = append(pts, BWPoint{Bytes: size, Perceived: bw})
	}
	return pts, nil
}
