package vector

import (
	"math"
	"testing"
)

// TestModelReproducesFig10 checks the roofline estimates land within
// 15% of the paper's measured sustained rates.
func TestModelReproducesFig10(t *testing.T) {
	for _, m := range Fig10Machines() {
		got := m.SustainedGFlops()
		rel := math.Abs(got-m.PaperSustainedGFlops) / m.PaperSustainedGFlops
		t.Logf("%s x%d: model %.2f GF/s, paper %.1f (%.0f%%)", m.Name, m.CPUs, got, m.PaperSustainedGFlops, rel*100)
		if rel > 0.15 {
			t.Errorf("%s x%d: model %.2f vs paper %.1f GFlop/s", m.Name, m.CPUs, got, m.PaperSustainedGFlops)
		}
	}
}

// TestSustainedBelowPeak: no machine may exceed its aggregate peak.
func TestSustainedBelowPeak(t *testing.T) {
	for _, m := range Fig10Machines() {
		peak := m.PeakMFlopsPerCPU * float64(m.CPUs) / 1000
		if m.SustainedGFlops() > peak {
			t.Errorf("%s x%d sustains %.2f above peak %.2f", m.Name, m.CPUs, m.SustainedGFlops(), peak)
		}
	}
}

// TestScalingSublinear: 4-CPU sustained rate is below 4x the 1-CPU rate.
func TestScalingSublinear(t *testing.T) {
	ms := Fig10Machines()
	for i := 0; i+1 < len(ms); i += 2 {
		one, four := ms[i], ms[i+1]
		if four.SustainedGFlops() >= 4*one.SustainedGFlops() {
			t.Errorf("%s scales superlinearly", one.Name)
		}
		if four.SustainedGFlops() < 3*one.SustainedGFlops() {
			t.Errorf("%s scales worse than the paper's data suggests", one.Name)
		}
	}
}
