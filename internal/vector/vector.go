// Package vector models the vector supercomputers of the paper's
// Fig. 10 comparison — Cray Y-MP, Cray C90 and NEC SX-4 — with a
// roofline-style estimate of their sustained rate on the GCM kernel.
//
// The paper reports measured sustained GFlop/s for these machines; we
// cannot run a 1990s vector machine, so each is described by its
// public peak rate and memory bandwidth, and the sustained estimate is
//
//	min(peak * vectorEff, memBW / bytesPerFlop) * P * parallelEff(P)
//
// where bytesPerFlop characterises the GCM's memory traffic (a
// stencil-heavy streaming kernel) and vectorEff the fraction of peak a
// long-vector Fortran code reaches.  The published sustained values
// are retained alongside as ground truth; the model exists so the
// comparison row is computed rather than quoted, and so the tests can
// check it reproduces the published numbers to ~15%.
package vector

// Machine describes one vector system configuration.
type Machine struct {
	Name string
	CPUs int

	PeakMFlopsPerCPU float64 // per-CPU peak
	MemGBsPerCPU     float64 // per-CPU sustained memory bandwidth
	VectorEff        float64 // fraction of peak for long-vector GCM code
	ParallelEff      float64 // multitasking efficiency at this CPU count

	// PaperSustainedGFlops is the measured value from Fig. 10.
	PaperSustainedGFlops float64
}

// GCMBytesPerFlop characterises the model kernel's memory traffic:
// roughly one and a half 8-byte operands streamed per arithmetic
// operation for the finite-volume stencils.
const GCMBytesPerFlop = 12.0

// SustainedGFlops returns the roofline estimate for the GCM workload.
func (m Machine) SustainedGFlops() float64 {
	perCPU := m.PeakMFlopsPerCPU * m.VectorEff
	memBound := m.MemGBsPerCPU * 1000 / GCMBytesPerFlop
	if memBound < perCPU {
		perCPU = memBound
	}
	eff := m.ParallelEff
	if m.CPUs == 1 {
		eff = 1
	}
	return perCPU * float64(m.CPUs) * eff / 1000
}

// Fig10Machines returns the vector systems of the paper's comparison
// table with public hardware parameters:
//
//   - Cray Y-MP: two floating-point pipes at 166 MHz give 667 MFlop/s
//     peak per CPU; ~5.4 GB/s per CPU of memory bandwidth.
//   - Cray C90: 952 MFlop/s peak per CPU at 238 MHz dual-pipe.
//   - NEC SX-4: 2 GFlop/s peak per CPU, very high memory bandwidth.
func Fig10Machines() []Machine {
	return []Machine{
		{Name: "Cray Y-MP", CPUs: 1, PeakMFlopsPerCPU: 667, MemGBsPerCPU: 5.4, VectorEff: 0.60, ParallelEff: 1, PaperSustainedGFlops: 0.4},
		{Name: "Cray Y-MP", CPUs: 4, PeakMFlopsPerCPU: 667, MemGBsPerCPU: 5.4, VectorEff: 0.60, ParallelEff: 0.94, PaperSustainedGFlops: 1.5},
		{Name: "Cray C90", CPUs: 1, PeakMFlopsPerCPU: 952, MemGBsPerCPU: 7.7, VectorEff: 0.65, ParallelEff: 1, PaperSustainedGFlops: 0.6},
		{Name: "Cray C90", CPUs: 4, PeakMFlopsPerCPU: 952, MemGBsPerCPU: 7.7, VectorEff: 0.65, ParallelEff: 0.90, PaperSustainedGFlops: 2.2},
		{Name: "NEC SX-4", CPUs: 1, PeakMFlopsPerCPU: 2000, MemGBsPerCPU: 16, VectorEff: 0.36, ParallelEff: 1, PaperSustainedGFlops: 0.7},
		{Name: "NEC SX-4", CPUs: 4, PeakMFlopsPerCPU: 2000, MemGBsPerCPU: 16, VectorEff: 0.36, ParallelEff: 0.95, PaperSustainedGFlops: 2.7},
	}
}
