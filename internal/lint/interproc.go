package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"sort"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/summary"
)

// This file holds the interprocedural extensions of the PR 1-2 rules.
// Each rule keeps its intraprocedural core (so it still works without
// module context) and adds a boundary pass over the call graph when
// pass.Module carries one.
//
// Attribution discipline, shared by all of them: a finding is reported
// at a call site INSIDE the pass's package, at the first frame where
// event-path code calls out of its own package.  Same-package callees
// are never reported — the offending helper gets its own finding (or
// its own boundary report) in the same pass — so a chain crossing
// several packages is reported exactly once, in the package that owns
// the entry call site, identically in standalone and vettool modes.

// staticCallee returns the single statically resolved in-graph callee
// of site, or nil.  Interface (CHA) and func-value (signature-matched)
// edges are excluded: their over-approximated callee sets are for the
// summary join, not for point findings.
func staticCallee(site *callgraph.Site) *callgraph.Node {
	if site.Static == nil || site.Iface || site.Dynamic || len(site.Callees) != 1 {
		return nil
	}
	return site.Callees[0]
}

// runDetsourceInterproc reports call sites in this package whose
// callees outside the simulation core reach a wall-clock or global
// randomness source.
func runDetsourceInterproc(pass *analysis.Pass, m *Module) {
	s := m.Summaries
	for _, n := range m.packageNodes(pass.Pkg) {
		for _, site := range n.Sites {
			if s.ForwardsParam(n, site) {
				continue
			}
			c := staticCallee(site)
			if c == nil || c.Pkg == n.Pkg || underAny(c.Pkg.Path, simCorePackages) {
				continue
			}
			if !s.Of(c).Effects.Has(summary.WallClock) {
				continue
			}
			pass.Reportf(site.Pos(),
				"call reaches a wall-clock/randomness source outside the simulation core, breaking determinism: %s",
				s.ChainString(c, summary.WallClock))
		}
	}
}

// runSchedpastInterproc applies the schedpast argument checks to call
// sites whose callee forwards a parameter into a Schedule delay slot.
func runSchedpastInterproc(pass *analysis.Pass, m *Module) {
	s := m.Summaries
	for _, n := range m.packageNodes(pass.Pkg) {
		for _, site := range n.Sites {
			c := staticCallee(site)
			if c == nil {
				continue
			}
			dp := s.Of(c).DelayParams
			if len(dp) == 0 {
				continue
			}
			idxs := make([]int, 0, len(dp))
			for j := range dp {
				idxs = append(idxs, j)
			}
			sort.Ints(idxs)
			for _, j := range idxs {
				if j >= len(site.Call.Args) {
					continue
				}
				arg := unparen(site.Call.Args[j])
				if s.Of(n).ParamIndex(arg) >= 0 {
					continue // forwarding further up: checked at outer sites
				}
				checkDelayArg(pass, s, c, j, arg)
			}
		}
	}
}

// checkDelayArg applies the intraprocedural schedpast checks to one
// argument known to flow into a Schedule delay slot.
func checkDelayArg(pass *analysis.Pass, s *summary.Set, callee *callgraph.Node, calleeParam int, arg ast.Expr) {
	chain := s.DelayChainString(callee, calleeParam)
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		if k := tv.Value.Kind(); (k == constant.Int || k == constant.Float) && constant.Sign(tv.Value) < 0 {
			pass.Reportf(arg.Pos(),
				"provably negative time %s flows into an event-schedule delay (%s): the kernel clamps it to now, silently breaking causality",
				tv.Value.ExactString(), chain)
		}
		return
	}
	if bin, ok := arg.(*ast.BinaryExpr); ok && bin.Op == token.SUB &&
		isTimeExpr(pass, bin.X) && isTimeExpr(pass, bin.Y) {
		pass.Reportf(arg.Pos(),
			"unguarded units.Time subtraction flows into an event-schedule delay (%s) and can be negative at runtime; clamp the difference to zero first",
			chain)
	}
}

// collectiveReach is one interprocedurally detected collective at a
// call site: the method every rank must match, plus the witness chain.
type collectiveReach struct {
	method string
	chain  string
}

// interprocCollectives returns the collectives reachable through the
// static callee of call, for commlock's matched-arm counting.  Direct
// Endpoint collectives are excluded (collectiveCall already matched),
// as are callees named like collectives (the implementation-exemption
// convention of the intraprocedural rule).
func interprocCollectives(pass *analysis.Pass, m *Module, call *ast.CallExpr) []collectiveReach {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn := funcFor(pass.TypesInfo, id)
	if fn == nil || collectiveNames[fn.Name()] {
		return nil
	}
	node := m.Graph.FuncNode(fn.Origin())
	if node == nil {
		return nil
	}
	s := m.Summaries
	eff := s.Of(node).Effects
	var out []collectiveReach
	for _, c := range []struct {
		bit  summary.Effect
		name string
	}{
		{summary.Exchange, "Exchange"},
		{summary.GlobalSum, "GlobalSum"},
		{summary.Barrier, "Barrier"},
	} {
		if eff.Has(c.bit) {
			out = append(out, collectiveReach{method: c.name, chain: s.ChainString(node, c.bit)})
		}
	}
	return out
}
