package emit

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hyades/internal/lint/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// sample is a fixed findings list exercising ordering (files out of
// order, two analyzers at one position) and deduplication (an exact
// (file, offset, analyzer, message) repeat that must be dropped;
// same-position same-analyzer findings with distinct messages — the
// interprocedural multi-effect case — must both survive).
func sample() []Finding {
	return Normalize([]Finding{
		{File: "internal/gcm/gcm.go", Line: 88, Col: 3, Analyzer: "redorder",
			Message: "manual floating-point accumulation onto total feeds a global sum", offset: 2300},
		{File: "internal/comm/coupled.go", Line: 41, Col: 10, Analyzer: "dimcheck",
			Message: "arithmetic mixes units.Time and units.Bandwidth through raw numeric conversions", offset: 905},
		{File: "internal/comm/coupled.go", Line: 41, Col: 10, Analyzer: "commlock",
			Message: "collective Barrier is not matched on every arm of the rank-dependent condition at line 39", offset: 905},
		{File: "internal/comm/coupled.go", Line: 41, Col: 10, Analyzer: "commlock",
			Message: "collective Barrier is not matched on every arm of the rank-dependent condition at line 39", offset: 905},
	})
}

// ruleTable is a miniature analyzer suite for the SARIF rule list.
func ruleTable() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		{Name: "redorder", Doc: "flag manual accumulations that feed a global sum"},
		{Name: "commlock", Doc: "flag collectives guarded by rank-dependent control flow"},
		{Name: "dimcheck", Doc: "flag arithmetic mixing incompatible unit dimensions"},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/lint/emit -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestNormalizeOrderAndDedup(t *testing.T) {
	fs := sample()
	if len(fs) != 3 {
		t.Fatalf("Normalize kept %d findings, want 3 (one duplicate dropped)", len(fs))
	}
	// coupled.go sorts before gcm.go; at equal position commlock sorts
	// before dimcheck.
	if fs[0].Analyzer != "commlock" || fs[1].Analyzer != "dimcheck" || fs[2].Analyzer != "redorder" {
		t.Errorf("order = %s, %s, %s", fs[0].Analyzer, fs[1].Analyzer, fs[2].Analyzer)
	}
	if fs[0].Message != "collective Barrier is not matched on every arm of the rank-dependent condition at line 39" {
		t.Errorf("dedup kept the wrong duplicate: %q", fs[0].Message)
	}
}

// TestNormalizeKeepsDistinctMessages: an interprocedural rule may
// report several distinct effects at one position; dedup must only
// drop exact repeats.
func TestNormalizeKeepsDistinctMessages(t *testing.T) {
	fs := Normalize([]Finding{
		{File: "a.go", Line: 3, Col: 1, Analyzer: "execpure",
			Message: "offloaded Exec phase is not engine-pure: it reaches a message send", offset: 40},
		{File: "a.go", Line: 3, Col: 1, Analyzer: "execpure",
			Message: "offloaded Exec phase is not engine-pure: it reaches a event scheduling", offset: 40},
	})
	if len(fs) != 2 {
		t.Fatalf("Normalize kept %d findings, want 2 (distinct messages at one position)", len(fs))
	}
}

func TestTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Text(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.txt.golden", buf.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.json.golden", buf.Bytes())
}

func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Errorf("empty report must carry an empty array, not null:\n%s", buf.String())
	}
}

func TestSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := SARIF(&buf, sample(), ruleTable()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.sarif.golden", buf.Bytes())
}

// TestSARIFStableAcrossRuns: two renders of the same inputs are
// byte-identical — the property CI relies on when diffing artifacts.
func TestSARIFStableAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := SARIF(&a, sample(), ruleTable()); err != nil {
		t.Fatal(err)
	}
	if err := SARIF(&b, sample(), ruleTable()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("SARIF output not byte-stable across runs")
	}
}
