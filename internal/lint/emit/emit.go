// Package emit renders hyadeslint diagnostics as text, JSON or SARIF.
//
// Every output format is byte-stable: findings are normalized — sorted
// by (file, offset, analyzer, message) and deduplicated by (file,
// offset, analyzer) — before rendering, paths are module-relative with
// forward slashes, and the JSON encoders use struct types only, so two
// runs over the same tree produce identical bytes.  CI archives the
// SARIF form as an artifact and diffs it against a golden file in
// tests.
package emit

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"hyades/internal/lint/analysis"
)

// A Finding is one rendered diagnostic.
type Finding struct {
	File     string `json:"file"` // module-relative, forward slashes
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`

	offset int // byte offset in file; sorting and dedup key
}

// Findings resolves diagnostics against fset, relativizing paths to
// root.
func Findings(fset *token.FileSet, root string, diags []analysis.Diagnostic) []Finding {
	fs := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		fs = append(fs, Finding{
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			offset:   pos.Offset,
		})
	}
	return fs
}

// Normalize sorts by (file, offset, analyzer, message) and drops
// exact duplicates.  The message is part of the identity: an
// interprocedural rule legitimately reports several distinct effects
// at one call site, and both driver modes must keep all of them.
func Normalize(fs []Finding) []Finding {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.offset != b.offset {
			return a.offset < b.offset
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f.File == out[len(out)-1].File &&
			f.offset == out[len(out)-1].offset &&
			f.Analyzer == out[len(out)-1].Analyzer &&
			f.Message == out[len(out)-1].Message {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Text writes the classic one-line-per-finding form.
func Text(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the -json schema.
type jsonReport struct {
	Version  int       `json:"version"`
	Findings []Finding `json:"findings"`
}

// JSON writes a versioned findings document.
func JSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(jsonReport{Version: 1, Findings: fs})
}

// Minimal SARIF 2.1.0 document structure (static analysis results
// interchange format) — the slice of the schema CI dashboards consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF writes a SARIF 2.1.0 document.  The rule table covers every
// analyzer in the suite (sorted by name), not just those with
// findings, so the document shape is independent of what was found.
func SARIF(w io.Writer, fs []Finding, analyzers []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "hyadeslint",
				InformationURI: "https://example.invalid/hyades/internal/lint",
				Rules:          rules,
			}},
			Results: results,
		}},
	})
}
