package lint

import (
	"go/ast"
	"go/types"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/pointsto"
	"hyades/internal/lint/summary"
)

// Execpure enforces the des.Pool offload contract statically: a
// function passed to des.Proc.Exec (or comm.Endpoint.Exec, or any
// wrapper that forwards its parameter there) runs on a worker
// goroutine OUTSIDE the coroutine baton, concurrently with other
// ranks' phases.  Everything it transitively calls must therefore be
// engine-pure —
//
//   - no engine interaction: Now, Schedule, Delay, nested Exec (the
//     worker holds no baton; touching the engine from a worker is a
//     data race and, with the conservative parallel engine, a
//     determinism break);
//   - no communication: Send/Recv/collectives block on virtual time
//     the worker cannot advance (deadlock);
//   - no wall-clock or global randomness (nondeterminism);
//   - no writes to package-level state (cross-rank data race: phases
//     of different ranks execute concurrently).
//
// Heap allocation is the one effect left to its own analyzer
// (hotalloc): an allocating phase is slow, not incorrect.
//
// The rule resolves the offloaded function at each boundary call site:
// a literal or named function is checked against its effect summary
// with the full witness chain; a forwarded parameter is skipped here
// and checked where the concrete function enters.  A func value from
// a variable, field or element is resolved through the points-to
// analysis: when the points-to set is complete and every member is an
// in-module function, each candidate phase is checked like a named
// one.  Only when points-to cannot vouch (the value escapes the
// analyzed set or mixes with unknown) is the site flagged as
// unresolvable, because an unverifiable phase is a hole in the
// determinism contract.
var Execpure = &analysis.Analyzer{
	Name: "execpure",
	Doc:  "offloaded Exec phases must be engine-pure: no comm/engine effects, no global writes",
	Run:  runExecpure,
}

// execForbidden is every effect an offloaded phase must not have.
const execForbidden = summary.CommEffects | summary.EngineEffects |
	summary.WallClock | summary.GlobalWrite

func runExecpure(pass *analysis.Pass) (interface{}, error) {
	m := moduleOf(pass)
	if m == nil {
		return nil, nil
	}
	s := m.Summaries
	for _, n := range m.packageNodes(pass.Pkg) {
		for _, site := range n.Sites {
			for _, j := range s.BoundaryArgs(site) {
				if j >= len(site.Call.Args) {
					continue
				}
				checkExecArg(pass, m, n, unparen(site.Call.Args[j]))
			}
		}
	}
	return nil, nil
}

// checkExecArg verifies one function value entering an offload
// boundary.
func checkExecArg(pass *analysis.Pass, m *Module, n *callgraph.Node, arg ast.Expr) {
	info := pass.TypesInfo
	s := m.Summaries
	var root *callgraph.Node
	switch arg := arg.(type) {
	case *ast.FuncLit:
		root = s.Graph.LitNode(arg)
	case *ast.Ident:
		switch obj := info.Uses[arg].(type) {
		case *types.Func:
			root = s.Graph.FuncNode(obj.Origin())
		case *types.Var:
			if s.Of(n).ParamIndex(arg) >= 0 {
				return // forwarding: checked where the concrete func enters
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				if roots, ok := pointsRoots(m, arg); ok {
					for _, r := range roots {
						reportImpure(pass, s, arg, r)
					}
					return
				}
				pass.Reportf(arg.Pos(),
					"cannot statically resolve the function offloaded to Exec (func value in variable %q); pass a literal or named function so engine-purity is checkable", arg.Name)
			}
			return
		case *types.Nil:
			return
		default:
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
			root = s.Graph.FuncNode(fn.Origin())
			if root == nil {
				pass.Reportf(arg.Pos(),
					"offloaded function %s is outside the analyzed module; its engine-purity cannot be verified", fn.FullName())
				return
			}
		} else {
			if roots, ok := pointsRoots(m, arg); ok {
				for _, r := range roots {
					reportImpure(pass, s, arg, r)
				}
				return
			}
			pass.Reportf(arg.Pos(),
				"cannot statically resolve the function offloaded to Exec (func value from field/selector); pass a literal or named function so engine-purity is checkable")
			return
		}
	default:
		if roots, ok := pointsRoots(m, arg); ok {
			for _, r := range roots {
				reportImpure(pass, s, arg, r)
			}
			return
		}
		pass.Reportf(arg.Pos(),
			"cannot statically resolve the function offloaded to Exec; pass a literal or named function so engine-purity is checkable")
		return
	}
	if root == nil {
		return
	}
	reportImpure(pass, s, arg, root)
}

// pointsRoots resolves an offloaded func value through the points-to
// analysis.  It vouches (ok) only when the value's points-to set is
// non-empty and every member is an in-module function body — the
// complete phase set, each member checkable like a named function.
func pointsRoots(m *Module, arg ast.Expr) ([]*callgraph.Node, bool) {
	if m.Points == nil {
		return nil, false
	}
	objs := m.Points.ExprPointsTo(arg)
	if len(objs) == 0 {
		return nil, false
	}
	var roots []*callgraph.Node
	for _, o := range objs {
		if o.Kind != pointsto.KFunc || o.Fn == nil {
			return nil, false // unknown, out-of-set, or not a function
		}
		roots = append(roots, o.Fn)
	}
	return roots, true
}

// reportImpure flags every forbidden effect of one resolved phase
// root, with its witness chain.
func reportImpure(pass *analysis.Pass, s *summary.Set, arg ast.Expr, root *callgraph.Node) {
	bad := s.Of(root).Effects & execForbidden
	if bad == 0 {
		return
	}
	bad.Each(func(bit summary.Effect) {
		pass.Reportf(arg.Pos(),
			"offloaded Exec phase is not engine-pure: it reaches a %s (%s); pool workers run outside the coroutine baton, so this is a race or deadlock",
			bit, s.ChainString(root, bit))
	})
}
