package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/load"
	"hyades/internal/lint/pointsto"
	"hyades/internal/lint/summary"
)

// Execpure enforces the des.Pool offload contract statically: a
// function passed to des.Proc.Exec (or comm.Endpoint.Exec, or any
// wrapper that forwards its parameter there) runs on a worker
// goroutine OUTSIDE the coroutine baton, concurrently with other
// ranks' phases.  Everything it transitively calls must therefore be
// engine-pure —
//
//   - no engine interaction: Now, Schedule, Delay, nested Exec (the
//     worker holds no baton; touching the engine from a worker is a
//     data race and, with the conservative parallel engine, a
//     determinism break);
//   - no communication: Send/Recv/collectives block on virtual time
//     the worker cannot advance (deadlock);
//   - no wall-clock or global randomness (nondeterminism);
//   - no writes to package-level state (cross-rank data race: phases
//     of different ranks execute concurrently).
//
// Heap allocation is the one effect left to its own analyzer
// (hotalloc): an allocating phase is slow, not incorrect.
//
// The rule resolves the offloaded function at each boundary call site:
// a literal or named function is checked against its effect summary
// with the full witness chain; a forwarded parameter is skipped here
// and checked where the concrete function enters.  A func value from
// a variable, field or element is resolved through the points-to
// analysis: when the points-to set is complete and every member is an
// in-module function, each candidate phase is checked like a named
// one.  Only when points-to cannot vouch (the value escapes the
// analyzed set or mixes with unknown) is the site flagged as
// unresolvable, because an unverifiable phase is a hole in the
// determinism contract.
var Execpure = &analysis.Analyzer{
	Name: "execpure",
	Doc:  "offloaded Exec phases must be engine-pure: no comm/engine effects, no global writes",
	Run:  runExecpure,
}

// execForbidden is every effect an offloaded phase must not have.
const execForbidden = summary.CommEffects | summary.EngineEffects |
	summary.WallClock | summary.GlobalWrite

func runExecpure(pass *analysis.Pass) (interface{}, error) {
	m := moduleOf(pass)
	if m == nil {
		return nil, nil
	}
	s := m.Summaries
	for _, n := range m.packageNodes(pass.Pkg) {
		for _, site := range n.Sites {
			for _, j := range s.BoundaryArgs(site) {
				if j >= len(site.Call.Args) {
					continue
				}
				checkExecArg(pass, m, n, unparen(site.Call.Args[j]))
			}
		}
	}
	return nil, nil
}

// checkExecArg verifies one function value entering an offload
// boundary.
func checkExecArg(pass *analysis.Pass, m *Module, n *callgraph.Node, arg ast.Expr) {
	info := pass.TypesInfo
	s := m.Summaries
	var root *callgraph.Node
	switch arg := arg.(type) {
	case *ast.FuncLit:
		root = s.Graph.LitNode(arg)
	case *ast.Ident:
		switch obj := info.Uses[arg].(type) {
		case *types.Func:
			root = s.Graph.FuncNode(obj.Origin())
		case *types.Var:
			if s.Of(n).ParamIndex(arg) >= 0 {
				return // forwarding: checked where the concrete func enters
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				if roots, ok := pointsRoots(m, arg); ok {
					for _, r := range roots {
						reportImpure(pass, s, arg, r)
					}
					return
				}
				pass.Reportf(arg.Pos(),
					"cannot statically resolve the function offloaded to Exec (func value in variable %q); pass a literal or named function so engine-purity is checkable", arg.Name)
			}
			return
		case *types.Nil:
			return
		default:
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
			root = s.Graph.FuncNode(fn.Origin())
			if root == nil {
				pass.Reportf(arg.Pos(),
					"offloaded function %s is outside the analyzed module; its engine-purity cannot be verified", fn.FullName())
				return
			}
		} else {
			if roots, ok := pointsRoots(m, arg); ok {
				for _, r := range roots {
					reportImpure(pass, s, arg, r)
				}
				return
			}
			if roots, ok := fieldAssignRoots(m, info, arg); ok {
				for _, r := range roots {
					reportImpure(pass, s, arg, r)
				}
				return
			}
			pass.Reportf(arg.Pos(),
				"cannot statically resolve the function offloaded to Exec (func value from field/selector); pass a literal or named function so engine-purity is checkable")
			return
		}
	default:
		if roots, ok := pointsRoots(m, arg); ok {
			for _, r := range roots {
				reportImpure(pass, s, arg, r)
			}
			return
		}
		pass.Reportf(arg.Pos(),
			"cannot statically resolve the function offloaded to Exec; pass a literal or named function so engine-purity is checkable")
		return
	}
	if root == nil {
		return
	}
	reportImpure(pass, s, arg, root)
}

// pointsRoots resolves an offloaded func value through the points-to
// analysis.  It vouches (ok) only when the value's points-to set is
// non-empty and every member is an in-module function body — the
// complete phase set, each member checkable like a named function.
func pointsRoots(m *Module, arg ast.Expr) ([]*callgraph.Node, bool) {
	if m.Points == nil {
		return nil, false
	}
	objs := m.Points.ExprPointsTo(arg)
	if len(objs) == 0 {
		return nil, false
	}
	var roots []*callgraph.Node
	for _, o := range objs {
		if o.Kind != pointsto.KFunc || o.Fn == nil {
			return nil, false // unknown, out-of-set, or not a function
		}
		roots = append(roots, o.Fn)
	}
	return roots, true
}

// fieldAssignRoots resolves an offloaded func value read from an
// unexported struct field by enumerating every assignment to that
// field across its declaring package.  Unexported fields can only be
// assigned inside their own package, so when every store is a function
// literal or a named in-module function (the bind-once phase pattern:
// closures pre-bound into fields of a model struct at construction,
// reused each step without allocating), the collected bodies are the
// complete phase set and each is checked like a named function.
//
// This covers exactly the case points-to cannot vouch for: the
// receiver of an exported method is tainted Unknown (callers outside
// the closure), so loads through it mix with Unknown even though the
// field itself is package-private.  The fallback declines — returns
// !ok, leaving the unresolvable diagnostic in place — whenever any
// store is not a resolvable function, a multi-value assignment or
// unkeyed composite literal initializes the field, or the field's
// address is taken (an indirect store could then publish an unseen
// phase).  Reflection and unsafe writes are outside the posture, as
// everywhere in this module.
func fieldAssignRoots(m *Module, info *types.Info, sel *ast.SelectorExpr) ([]*callgraph.Node, bool) {
	fv, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fv.IsField() || fv.Exported() || fv.Pkg() == nil {
		return nil, false
	}
	if _, ok := fv.Type().Underlying().(*types.Signature); !ok {
		return nil, false
	}
	g := m.Summaries.Graph
	var roots []*callgraph.Node
	complete, found := true, false
	addStore := func(p *load.Package, e ast.Expr) {
		found = true
		switch e := unparen(e).(type) {
		case *ast.FuncLit:
			if n := g.LitNode(e); n != nil {
				roots = append(roots, n)
				return
			}
		case *ast.Ident:
			switch obj := p.Info.Uses[e].(type) {
			case *types.Func:
				if n := g.FuncNode(obj.Origin()); n != nil {
					roots = append(roots, n)
					return
				}
			case *types.Nil:
				return
			}
		case *ast.SelectorExpr:
			if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok {
				if n := g.FuncNode(fn.Origin()); n != nil {
					roots = append(roots, n)
					return
				}
			}
		}
		complete = false
	}
	for _, p := range m.Graph.Packages {
		if p.Types != fv.Pkg() {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						ls, ok := unparen(lhs).(*ast.SelectorExpr)
						if !ok || p.Info.Uses[ls.Sel] != fv {
							continue
						}
						if len(x.Rhs) != len(x.Lhs) {
							found, complete = true, false // multi-value: unresolvable
							continue
						}
						addStore(p, x.Rhs[i])
					}
				case *ast.CompositeLit:
					if !literalOfOwner(p, x, fv) {
						return true
					}
					for _, el := range x.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							// Unkeyed struct literal: positional init could
							// reach the field without naming it.
							found, complete = true, false
							continue
						}
						if k, ok := kv.Key.(*ast.Ident); ok && p.Info.Uses[k] == fv {
							addStore(p, kv.Value)
						}
					}
				case *ast.UnaryExpr:
					// &x.field: the address escaping admits indirect stores.
					if x.Op == token.AND {
						if ls, ok := unparen(x.X).(*ast.SelectorExpr); ok && p.Info.Uses[ls.Sel] == fv {
							found, complete = true, false
						}
					}
				}
				return true
			})
		}
	}
	if !found || !complete || len(roots) == 0 {
		return nil, false
	}
	return roots, true
}

// literalOfOwner reports whether composite literal x constructs the
// struct type that declares field fv.
func literalOfOwner(p *load.Package, x *ast.CompositeLit, fv *types.Var) bool {
	tv, ok := p.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == fv {
			return true
		}
	}
	return false
}

// reportImpure flags every forbidden effect of one resolved phase
// root, with its witness chain.
func reportImpure(pass *analysis.Pass, s *summary.Set, arg ast.Expr, root *callgraph.Node) {
	bad := s.Of(root).Effects & execForbidden
	if bad == 0 {
		return
	}
	bad.Each(func(bit summary.Effect) {
		pass.Reportf(arg.Pos(),
			"offloaded Exec phase is not engine-pure: it reaches a %s (%s); pool workers run outside the coroutine baton, so this is a race or deadlock",
			bit, s.ChainString(root, bit))
	})
}
