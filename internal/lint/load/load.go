// Package load parses and type-checks packages of this module for the
// hyadeslint analyzers, using only the standard library.
//
// The usual driver substrate (golang.org/x/tools/go/packages) is not
// available offline, so the loader resolves imports itself:
//
//   - imports inside this module ("hyades/...") are located by path
//     arithmetic against the module root and type-checked from source,
//     recursively;
//   - standard-library imports are delegated to go/importer's "source"
//     importer, which type-checks $GOROOT/src and therefore needs no
//     pre-compiled export data and no network.
//
// Test files (*_test.go) are excluded: the determinism contract governs
// simulation code, and tests legitimately use wall-clock timeouts and
// ad-hoc randomness.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package.
type Package struct {
	Path      string // import path
	Dir       string // absolute directory
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info
	Errors    []error // type-checking errors, if any

	loader *Loader // back-reference for Closure
}

// Loader returns the loader that produced p (nil for hand-built
// packages).  Interprocedural context caches key on it: two loaders
// are two type-checking universes whose objects must never mix.
func (p *Package) Loader() *Loader { return p.loader }

// ModuleRoot returns the owning module's root directory, or "".
func (p *Package) ModuleRoot() string {
	if p.loader == nil {
		return ""
	}
	return p.loader.ModuleRoot
}

// Closure returns the package together with every module-internal
// package in its transitive import graph, sorted by import path.  Only
// packages already type-checked through the owning loader appear —
// which is all of them, since type-checking a package loads its module
// imports first.  This is the deterministic per-package universe the
// interprocedural analyzers build their call graph over: derived from
// the import graph alone, it is identical whether the package was
// reached by a standalone directory walk or a go-vet unit, which is
// what keeps the two driver modes' findings in agreement.
func (p *Package) Closure() []*Package {
	if p.loader == nil {
		return []*Package{p}
	}
	seen := map[string]*Package{p.Path: p}
	var visit func(t *types.Package)
	visit = func(t *types.Package) {
		if t == nil {
			return
		}
		for _, imp := range t.Imports() {
			if _, ok := seen[imp.Path()]; ok {
				continue
			}
			dep, ok := p.loader.pkgs[imp.Path()]
			if !ok {
				continue // stdlib or unloaded
			}
			seen[imp.Path()] = dep
			visit(imp)
		}
	}
	visit(p.Types)
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = seen[path]
	}
	return out
}

// A Loader loads packages of one module, caching every package (module
// or stdlib) so repeated imports type-check once per process.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path declared in go.mod
	GoVersion  string // "go1.22"-style language version from go.mod

	std  types.Importer      // source importer for GOROOT packages
	pkgs map[string]*Package // import path -> loaded module package
}

var (
	moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)
	goVerRE  = regexp.MustCompile(`(?m)^go\s+(\d+(?:\.\d+)*)`)
)

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// NewLoader creates a loader for the module rooted at (or above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("load: no module line in %s/go.mod", root)
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: string(m[1]),
		pkgs:       map[string]*Package{},
	}
	if v := goVerRE.FindSubmatch(data); v != nil {
		l.GoVersion = "go" + string(v[1])
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// Import implements types.Importer, resolving module-internal paths
// from source and delegating everything else to the stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of one
// directory under the given import path.  Results are cached by path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %v", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, loader: l}
	for _, name := range names {
		fname := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %v", importPath, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fname)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  l,
		GoVersion: l.GoVersion,
		Error:     func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	// Cache before checking: import cycles would otherwise recurse
	// forever.  (The go toolchain rejects true cycles before we ever
	// run, so a re-entrant Load during Check cannot happen for code
	// that builds; this is belt and braces.)
	l.pkgs[importPath] = pkg
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	return pkg, nil
}

// CheckFiles type-checks a package whose files were parsed externally
// (the vet-unit path, where cmd/go names the exact compilation unit).
// pkg.Fset must be l.Fset.  On success pkg.Types and pkg.Info are
// populated and the package is cached for import resolution.
func (l *Loader) CheckFiles(pkg *Package) error {
	pkg.loader = l
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  l,
		GoVersion: l.GoVersion,
		Error:     func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if len(pkg.Errors) > 0 {
		return pkg.Errors[0]
	}
	if err != nil {
		return err
	}
	l.pkgs[pkg.Path] = pkg
	return nil
}

// goFilesIn lists the buildable non-test Go files of dir, honouring
// build constraints via go/build, in sorted order.
func goFilesIn(dir string) ([]string, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	return names, nil
}

// Patterns expands package patterns into module directories.  It
// understands "./..."-style recursive patterns and plain (relative or
// module-rooted) directory paths, mirroring the subset of the go tool's
// syntax the repository's scripts use.  Directories named testdata or
// vendor, and hidden or underscore-prefixed directories, are skipped.
func (l *Loader) Patterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		if pat == "" {
			pat = "."
		}
		// Resolve a module-path-prefixed pattern to a directory.
		if pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/") {
			pat = "./" + strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != dir && (base == "testdata" || base == "vendor" ||
				strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if names, err := goFilesIn(path); err == nil && len(names) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// ImportPathFor maps a module directory back to its import path.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module %s", dir, l.ModulePath)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}
