// Package allocbudget reads and writes the committed hot-path
// allocation budget (lint/allocbudget.json): the per-package count of
// statically visible heap-allocation sites the event path is allowed.
//
// The file is a ratchet, not a target: hotalloc fails CI when a
// package's measured count exceeds its budget, so allocation
// regressions cannot land silently, and lowering a budget to the new
// measured count locks in each optimization.  The encoding is
// byte-stable (sorted keys, fixed indentation, trailing newline) so
// regenerating an unchanged budget is a no-op in the diff.
package allocbudget

import (
	"encoding/json"
	"fmt"
	"os"
)

// Budget is the committed per-package allocation-site allowance.
type Budget struct {
	// Packages maps import path -> allowed surviving allocation sites.
	// A package absent from the map has budget zero.
	Packages map[string]int `json:"packages"`
}

// Load reads a budget file.  A missing file yields an empty budget
// (every package at zero), which is the strictest possible ratchet.
func Load(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Budget{Packages: map[string]int{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("allocbudget: %s: %v", path, err)
	}
	if b.Packages == nil {
		b.Packages = map[string]int{}
	}
	return &b, nil
}

// Marshal renders the budget byte-stably: encoding/json sorts map
// keys, two-space indentation, trailing newline.
func (b *Budget) Marshal() []byte {
	if b.Packages == nil {
		b.Packages = map[string]int{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		// A map[string]int cannot fail to marshal.
		panic(err)
	}
	return append(data, '\n')
}

// Write saves the budget to path.
func (b *Budget) Write(path string) error {
	return os.WriteFile(path, b.Marshal(), 0o644)
}
