package allocbudget

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTripByteStable(t *testing.T) {
	b := &Budget{Packages: map[string]int{
		"hyades/internal/startx": 12,
		"hyades/internal/arctic": 7,
		"hyades/internal/des":    3,
		"hyades/internal/comm":   25,
	}}
	first := b.Marshal()
	path := filepath.Join(t.TempDir(), "allocbudget.json")
	if err := b.Write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	second := loaded.Marshal()
	if !bytes.Equal(first, second) {
		t.Errorf("round trip not byte-stable:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	// Keys must come out sorted regardless of insertion order, and the
	// file must end with exactly one newline.
	if !bytes.HasSuffix(first, []byte("}\n")) || bytes.HasSuffix(first, []byte("\n\n")) {
		t.Errorf("marshal tail not canonical: %q", first[len(first)-4:])
	}
	arctic := bytes.Index(first, []byte("arctic"))
	startx := bytes.Index(first, []byte("startx"))
	if arctic < 0 || startx < 0 || arctic > startx {
		t.Errorf("keys not sorted:\n%s", first)
	}
}

func TestLoadMissingIsEmpty(t *testing.T) {
	b, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing file should load as empty, got %v", err)
	}
	if len(b.Packages) != 0 {
		t.Errorf("missing file budget = %v, want empty", b.Packages)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Errorf("garbage budget file loaded without error")
	}
}
