package commlock

import "hyades/internal/comm"

// rejoined: the branch only selects data; the collective runs after the
// arms merge, so every rank reaches it.
func rejoined(ep comm.Endpoint, x float64) float64 {
	scale := 1.0
	if ep.Rank() == 0 {
		scale = 2.0
	}
	return ep.GlobalSum(x * scale)
}

// matchedExchange: each arm makes exactly one Exchange — the pairwise
// send/receive shape of a gather is legal asymmetry.
func matchedExchange(ep comm.Endpoint, payload []byte, layout comm.Block) []byte {
	if ep.Rank() != 0 {
		return ep.Exchange(0, payload, layout)
	}
	return ep.Exchange(1, payload, layout)
}

// dataBranch: branching on non-rank state never splits the ranks.
func dataBranch(ep comm.Endpoint, converged bool, x float64) float64 {
	if converged {
		x *= 0.5
	}
	return ep.GlobalSum(x)
}

// fixedLoop: a trip count from N() is the same on every rank.
func fixedLoop(ep comm.Endpoint, x float64) {
	for i := 0; i < ep.N(); i++ {
		ep.GlobalSum(x)
	}
}

// waived: intentional asymmetry, locally allowed.
func waived(ep comm.Endpoint, x float64) {
	if ep.Rank() == 0 {
		//lint:allow commlock fixture demonstrating the escape hatch
		ep.GlobalSum(x)
	}
}
