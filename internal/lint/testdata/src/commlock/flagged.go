// Package commlock exercises the commlock analyzer: collectives that
// only some ranks reach deadlock the synchronous primitives.
package commlock

import "hyades/internal/comm"

// rootOnlySum is the classic one-armed collective.
func rootOnlySum(ep comm.Endpoint, x float64) float64 {
	if ep.Rank() == 0 {
		return ep.GlobalSum(x) // want `collective GlobalSum is not matched on every arm of the rank-dependent condition`
	}
	return x
}

// earlyReturn: the guard survives the merge because the other arm left
// the function — only rank 0 reaches the barrier.
func earlyReturn(ep comm.Endpoint) {
	me := ep.Rank()
	if me != 0 {
		return
	}
	ep.Barrier() // want `collective Barrier is not matched on every arm`
}

// derivedRank: taint flows through locals.
func derivedRank(ep comm.Endpoint, x float64) {
	id := ep.Rank()
	twice := id * 2
	if twice > 4 {
		ep.GlobalSum(x) // want `collective GlobalSum is not matched on every arm`
	}
}

// loopTrip: ranks make different numbers of collective calls.
func loopTrip(ep comm.Endpoint) {
	for i := 0; i < ep.Rank(); i++ {
		ep.Barrier() // want `loop whose trip count is rank-dependent`
	}
}

// mismatchedKinds: both arms call a collective, but not the same one —
// rank 0 waits in the butterfly while everyone else sits in the
// barrier.  Both sides are flagged.
func mismatchedKinds(ep comm.Endpoint, x float64) {
	if ep.Rank() == 0 {
		ep.GlobalSum(x) // want `collective GlobalSum is not matched on every arm`
	} else {
		ep.Barrier() // want `collective Barrier is not matched on every arm`
	}
}

// rankSwitch: a switch on the rank is a rank-dependent branch too.
func rankSwitch(ep comm.Endpoint, x float64) {
	switch ep.Rank() {
	case 0:
		ep.GlobalSum(x) // want `collective GlobalSum is not matched on every arm`
	default:
	}
}
