// Package execpure exercises the offload-purity rule at the
// des.Proc.Exec boundary: phases handed to the pool must have no
// comm/engine effects, no wall-clock reads and no writes to
// package-level state; unresolvable func values are flagged as such.
package execpure

import (
	"runtime"

	"hyades/internal/des"
	"hyades/internal/units"
)

var hits int

func bump() { hits++ }

func Phases(p *des.Proc, m *des.Mailbox[int]) {
	p.Exec(units.Time(1), func() { hits++ })      // want `offloaded Exec phase is not engine-pure: it reaches a package-level state write`
	p.Exec(units.Time(1), func() { m.Send(1) })   // want `offloaded Exec phase is not engine-pure: it reaches a message send` `offloaded Exec phase is not engine-pure: it reaches a event scheduling`
	p.Exec(units.Time(1), func() { _ = p.Now() }) // want `offloaded Exec phase is not engine-pure: it reaches a virtual-clock read`
	x := 0
	p.Exec(units.Time(1), func() { x++ }) // rank-local state: pure
	_ = x
}

func Named(p *des.Proc) {
	p.Exec(0, bump) // want `offloaded Exec phase is not engine-pure: it reaches a package-level state write`
}

// helper forwards its parameter into the boundary: clean here, checked
// at helper's call sites.
func helper(p *des.Proc, fn func()) {
	p.Exec(0, fn)
}

func Outer(p *des.Proc) {
	helper(p, bump)             // want `offloaded Exec phase is not engine-pure: it reaches a package-level state write`
	helper(p, func() { _ = 1 }) // pure literal through the wrapper
}

func Unresolvable(p *des.Proc, fns []func()) {
	f := fns[0]
	p.Exec(0, f) // want `cannot statically resolve the function offloaded to Exec \(func value in variable "f"\)`
}

type holder struct{ f func() }

// FromField's receiver-taints defeat points-to (h arrives from an
// exported entry), but the field-store fallback enumerates every
// in-package assignment to the unexported field f — only bump, via
// resolvedField's literal below — so the phase set is complete and
// the global write is reported with its chain.
func FromField(p *des.Proc, h holder) {
	p.Exec(0, h.f) // want `offloaded Exec phase is not engine-pure: it reaches a package-level state write`
}

type leaky struct{ f func() }

// FromLeakyField: taking the field's address admits indirect stores
// the enumeration cannot see, so the fallback declines and the
// unresolvable diagnostic stands.
func FromLeakyField(p *des.Proc, h *leaky) {
	q := &h.f
	_ = q
	p.Exec(0, h.f) // want `cannot statically resolve the function offloaded to Exec \(func value from field/selector\)`
}

// resolvedVar builds its func-value set locally, so points-to proves
// the complete candidate set and each phase is checked like a named
// function: bump's global write is reported with its chain, the pure
// literal stays silent, and the unresolvable escape hatch is never
// needed.
func resolvedVar(p *des.Proc) {
	fs := []func(){bump, func() { _ = 1 }}
	f := fs[0]
	p.Exec(0, f) // want `offloaded Exec phase is not engine-pure: it reaches a package-level state write`
}

// resolvedClean: every candidate in the locally-built set is pure, so
// a site CHA-only analysis would flag as unverifiable produces no
// finding at all.
func resolvedClean(p *des.Proc) {
	ok := func() { _ = 2 }
	fs := []func(){ok}
	f := fs[0]
	p.Exec(0, f) // resolved by points-to and pure: no finding
}

// resolvedField: the same through a locally-built struct field.
func resolvedField(p *des.Proc) {
	h := holder{f: bump}
	p.Exec(0, h.f) // want `offloaded Exec phase is not engine-pure: it reaches a package-level state write`
}

func Foreign(p *des.Proc) {
	p.Exec(0, runtime.GC) // want `offloaded function runtime\.GC is outside the analyzed module; its engine-purity cannot be verified`
}

func Waived(p *des.Proc) {
	p.Exec(0, func() { hits++ }) //lint:allow execpure fixture: deliberately impure phase
}
