// Package capturealias exercises the offload capture rule: closures
// handed to des.Proc.Exec must not capture engine-owned state by
// reference — directly, through a wrapper, or behind an interface.
package capturealias

import (
	"hyades/internal/des"
	"hyades/internal/units"
)

type tile struct {
	cells []float64
	sum   float64
}

func Phases(p *des.Proc, m *des.Mailbox[int], t *tile) {
	p.Exec(units.Time(1), func() { // want `offloaded Exec phase captures engine-owned \*des\.Proc "p" by reference`
		_ = p
	})
	p.Exec(units.Time(1), func() { // want `offloaded Exec phase captures engine-owned \*des\.Mailbox\[int\] "m" by reference`
		_ = m
	})
	p.Exec(units.Time(1), func() { // clean: the phase touches tile state only
		t.sum = 0
		for _, c := range t.cells {
			t.sum += c
		}
	})
}

// helper forwards its parameter into the boundary: clean here, the
// concrete closure is checked at helper's call sites.
func helper(p *des.Proc, fn func()) {
	p.Exec(0, fn)
}

func Outer(p *des.Proc) {
	helper(p, func() { _ = p }) // want `offloaded Exec phase captures engine-owned \*des\.Proc "p" by reference`
	x := 0
	helper(p, func() { x++ }) // plain rank-local data through the wrapper
	_ = x
}

// Aliased hides the engine value behind an any-typed variable: the
// static type says nothing, the points-to set still does.
func Aliased(p *des.Proc, eng *des.Engine) {
	var box interface{} = des.NewMailbox[int](eng, "m")
	p.Exec(0, func() { // want `offloaded Exec phase captures "box", which aliases engine-owned state`
		_ = box
	})
}

func Waived(p *des.Proc) {
	p.Exec(0, func() { _ = p }) //lint:allow capturealias fixture: deliberate engine capture
}
