// Package walls is an analysistest helper, not a fixture under test:
// a wall-clock source hidden two calls below its exported entry point,
// outside the simulation core.  Interprocedural detsource fixtures
// import it to prove the chain is found and reported end to end.
package walls

import "time"

// Stamp looks innocent; the wall-clock read is two frames down.
func Stamp() int64 { return stampA() }

func stampA() int64 { return stampB() }

func stampB() int64 { return time.Now().UnixNano() }

// Pure has no effects at all: callers of Pure must stay unflagged.
func Pure(x int64) int64 { return x + 1 }
