// Package schedpast exercises the schedpast analyzer: negative-constant
// delays and unclamped Time subtractions corrupt event-heap causality.
package schedpast

import (
	"hyades/internal/des"
	"hyades/internal/units"
)

// bad schedules into the past.
func bad(eng *des.Engine, start, end units.Time, fn func()) {
	eng.Schedule(-5*units.Nanosecond, fn) // want `Schedule called with provably negative time`
	eng.Schedule(end-start, fn)           // want `Schedule called with an unguarded units\.Time subtraction`
	eng.ScheduleAt(end-start, fn)         // want `ScheduleAt called with an unguarded units\.Time subtraction`
}
