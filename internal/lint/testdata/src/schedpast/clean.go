package schedpast

import (
	"hyades/internal/des"
	"hyades/internal/units"
)

// good schedules forward, clamps differences before use, and prefers
// absolute deadlines.
func good(eng *des.Engine, start, end units.Time, fn func()) {
	eng.Schedule(5*units.Nanosecond, fn)
	d := end - start
	if d < 0 {
		d = 0
	}
	eng.Schedule(d, fn)
	eng.ScheduleAt(end+5*units.Nanosecond, fn)
	eng.Schedule(0, fn)
}

// goodOtherMethod leaves same-named methods on other types alone.
type fakeScheduler struct{}

func (fakeScheduler) Schedule(d int, fn func()) {}

func goodOther(s fakeScheduler, fn func()) {
	s.Schedule(-5, fn)
}
