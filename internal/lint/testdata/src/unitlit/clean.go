package unitlit

import "hyades/internal/units"

// good spells every duration with a named unit.
func good() units.Time {
	return 500*units.Nanosecond + 3*units.Microsecond
}

// goodBandwidth multiplies by the named rate unit.
func goodBandwidth() units.Bandwidth {
	return 150 * units.MBps
}

// goodScaling divides by a runtime count: units.Time(reps) converts a
// scalar, not a unitless duration, and is the sanctioned idiom.
func goodScaling(start, end units.Time, reps int) units.Time {
	return (end - start) / units.Time(reps)
}

// goodZero is exempt: zero is zero in every unit.
func goodZero() units.Time {
	return units.Time(0)
}

// goodTyped converts a value that already carries the unit.
func goodTyped() units.Time {
	return units.Time(5 * units.Nanosecond)
}
