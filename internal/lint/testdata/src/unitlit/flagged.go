// Package unitlit exercises the unitlit analyzer: bare constants
// converted to units.Time/units.Bandwidth silently mean "picoseconds"
// or "bytes per second" and are flagged.
package unitlit

import "hyades/internal/units"

// configDefault looks like 500 ns but is actually 500 ps.
const configDefault = units.Time(500) // want `constant 500 converted directly to units\.Time`

// bad shows the literal forms at statement level.
func bad() units.Time {
	d := units.Time(1500)            // want `constant 1500 converted directly to units\.Time`
	bw := units.Bandwidth(150)       // want `converted directly to units\.Bandwidth`
	named := units.Time(headerBytes) // want `converted directly to units\.Time`
	return d + named + bw.Transfer(1024)
}

// headerBytes is a byte count: converting it to Time is the silent
// unit-confusion bug unitlit exists to catch.
const headerBytes = 8
