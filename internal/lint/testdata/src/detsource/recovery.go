package detsource

import "time"

// badRecovery mimics a crash-recovery controller timing its pieces
// with the wall clock: dead-peer leases, release backoff and
// recovery-overhead accounting must all run in virtual time, or the
// recovered run replays differently on every host.
func badRecovery(restarts int) time.Duration {
	crashedAt := time.Now() // want `time\.Now reads the wall clock`
	backoff := time.Duration(restarts) * time.Millisecond
	time.Sleep(backoff)          // want `time\.Sleep reads the wall clock`
	return time.Since(crashedAt) // want `time\.Since reads the wall clock`
}

// badLease mimics heartbeat lease expiry checked against the host
// clock instead of a DES timer.
func badLease(deadline time.Time) bool {
	return time.Now().After(deadline) // want `time\.Now reads the wall clock`
}
