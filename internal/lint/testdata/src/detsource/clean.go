package detsource

import (
	"math/rand"
	"time"
)

// good draws from an explicitly seeded generator: the seed is part of
// the simulation input, so the stream is reproducible.
func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

// goodMethods uses time.Time arithmetic on a caller-supplied value and
// *rand.Rand methods; neither consults process-global state.
func goodMethods(t0, t1 time.Time, rng *rand.Rand) (time.Duration, float64) {
	return t1.Sub(t0), rng.Float64()
}

// goodAllowed shows the audited escape hatch.
func goodAllowed() int64 {
	//lint:allow detsource fixture exercising the escape hatch
	return time.Now().UnixNano()
}
