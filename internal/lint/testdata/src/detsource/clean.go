package detsource

import (
	"math/rand"
	"time"
)

// good draws from an explicitly seeded generator: the seed is part of
// the simulation input, so the stream is reproducible.
func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

// goodMethods uses time.Time arithmetic on a caller-supplied value and
// *rand.Rand methods; neither consults process-global state.
func goodMethods(t0, t1 time.Time, rng *rand.Rand) (time.Duration, float64) {
	return t1.Sub(t0), rng.Float64()
}

// goodFaultPlan is the sanctioned fault-plan shape: a self-contained
// splitmix64 step seeded from configuration, the same construction as
// internal/fault's PRNG.  No process-global state is consulted.
func goodFaultPlan(seed uint64, dropRate float64) bool {
	seed += 0x9e3779b97f4a7c15
	z := seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < dropRate
}

// goodAllowed shows the audited escape hatch.
func goodAllowed() int64 {
	//lint:allow detsource fixture exercising the escape hatch
	return time.Now().UnixNano()
}
