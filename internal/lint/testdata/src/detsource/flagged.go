// Package detsource exercises the detsource analyzer: wall-clock reads
// and global-source randomness are flagged; seeded generators are not.
package detsource

import (
	"math/rand"
	"time"
)

// bad uses every banned determinism-breaking source.
func bad() (int64, int) {
	t := time.Now()     // want `time\.Now reads the wall clock`
	d := time.Since(t)  // want `time\.Since reads the wall clock`
	n := rand.Intn(8)   // want `rand\.Intn draws from the process-global source`
	f := rand.Float64() // want `rand\.Float64 draws from the process-global source`
	time.Sleep(d)       // want `time\.Sleep reads the wall clock`
	return t.UnixNano() + int64(f), n
}

// badRef flags a bare function-value reference too: passing time.Now
// around is as nondeterministic as calling it.
func badRef() func() time.Time {
	return time.Now // want `time\.Now reads the wall clock`
}

// badFaultPlan mimics a fault-injection plan written against the
// process-global source: the drop decision would depend on whatever
// else consumed the global stream, so chaos runs would not replay.
// The registered pattern is internal/fault's seeded splitmix64 PRNG.
func badFaultPlan(dropRate float64) bool {
	return rand.Float64() < dropRate // want `rand\.Float64 draws from the process-global source`
}
