package dimcheck

import "hyades/internal/units"

// frac is a dimensionless ratio of same-dimension values: legal.
func frac(a, b units.Time) float64 {
	return float64(a) / float64(b)
}

// accessors are the sanctioned bridges between dimensions.
func viaAccessors(n int, d units.Time, bw units.Bandwidth) (units.Bandwidth, float64, units.Time) {
	return units.Rate(n, d), d.Seconds(), bw.Transfer(n)
}

// scaleByCount divides by a raw count: only one side carries a unit.
func scaleByCount(t units.Time, reps int) units.Time {
	return t / units.Time(reps)
}

// waived cross conversion, locally allowed.
func waived(t units.Time) units.Bandwidth {
	//lint:allow dimcheck fixture demonstrating the escape hatch
	return units.Bandwidth(t)
}
