// Package dimcheck exercises the dimcheck analyzer: conversions and
// arithmetic that cross the Time/Bandwidth/Size dimensions.
package dimcheck

import "hyades/internal/units"

// crossConvert rereads picoseconds as bytes per second.
func crossConvert(t units.Time) units.Bandwidth {
	return units.Bandwidth(t) // want `units\.Time value converted directly to units\.Bandwidth`
}

// backConvert is just as wrong in the other direction.
func backConvert(bw units.Bandwidth) units.Time {
	return units.Time(bw) // want `units\.Bandwidth value converted directly to units\.Time`
}

// rawMix divides raw base-grain counts of different dimensions.
func rawMix(t units.Time, bw units.Bandwidth) float64 {
	return float64(t) / float64(bw) // want `arithmetic mixes units\.Time and units\.Bandwidth through raw numeric conversions`
}

// sizeTime compares a byte count against a duration.
func sizeTime(n units.Size, t units.Time) bool {
	return int64(n) > int64(t) // want `arithmetic mixes units\.Size and units\.Time`
}
