// Package shareheap exercises the partition-safety rule: rank bodies
// spawned on the engine must not write package-level state, launcher
// locals captured across ranks, or heap objects reachable from either
// — the sole sanctioned cross-partition write is the rank-indexed
// slot, whose index is the rank body's own id parameter.
package shareheap

import (
	"hyades/internal/des"
)

var tally int

type worker struct {
	rank int
	sum  int
}

// Launch spawns one rank per iteration.  The worker allocated inside
// the loop is a per-rank slot; the launcher locals and the global are
// shared across every rank.
func Launch(eng *des.Engine, n int) {
	results := make([]int, n)
	var last int
	for r := 0; r < n; r++ {
		w := &worker{rank: r}
		eng.Spawn("w", func(p *des.Proc) {
			w.sum++            // per-rank state: clean
			results[0] = w.sum // want `rank code writes cross-rank shared state`
			last = w.rank      // want `rank code writes variable "last", which is captured across ranks`
			tally++            // want `rank code writes package-level variable "tally"`
		})
	}
	_ = last
	_ = results
}

// Indexed routes every store through the rank-indexed slot shape; the
// helper is rank code (reached from the spawned closure), and only its
// constant-index store crosses the partition.
func Indexed(eng *des.Engine, n int) []int {
	slots := make([]int, n)
	for r := 0; r < n; r++ {
		rank := r
		eng.Spawn("x", func(p *des.Proc) { fill(rank, slots) })
	}
	return slots
}

func fill(rank int, slots []int) {
	slots[rank] = rank // rank-indexed slot: certified, clean
	slots[0] = rank    // want `rank code writes cross-rank shared state`
}

// Twin spawns two rank bodies per iteration over one per-iteration
// buffer: the slot is per-rank for each site alone, but claimed by two
// distinct spawn sites, so the partition does not hold.
func Twin(eng *des.Engine, n int) {
	for r := 0; r < n; r++ {
		buf := make([]int, 4)
		eng.Spawn("a", func(p *des.Proc) {
			buf[0] = 1 // want `claimed by 2 spawn sites`
		})
		eng.Spawn("b", func(p *des.Proc) {
			buf[1] = 2 // want `claimed by 2 spawn sites`
		})
	}
}

// Mailbox state is des-typed — the engine's own synchronized channel —
// and is exempt wherever it appears.
func Mailbox(eng *des.Engine, mb *des.Mailbox[int], n int) {
	for r := 0; r < n; r++ {
		rank := r
		eng.Spawn("m", func(p *des.Proc) {
			mb.Send(rank)
		})
	}
}

// Waived keeps the escape hatch audited.
func Waived(eng *des.Engine) {
	eng.Spawn("v", func(p *des.Proc) {
		tally++ //lint:allow shareheap fixture: deliberate shared tally
	})
}
