// Package hotallocclean is the at-budget side of the ratchet: the
// same allocation shapes as the hotalloc fixture, with a local budget
// that covers them — the analyzer must stay silent.
package hotallocclean

type payload struct{ a, b int }

var sink *payload
var buf []int

func Fill(n int) {
	sink = &payload{a: n}
	buf = append(buf, n)
}
