// Package collect is an analysistest helper, not a fixture under
// test: collectives hidden behind ordinary-named helpers, so
// interprocedural commlock fixtures can check that a helper reaching
// GlobalSum is matched across arms like the GlobalSum itself.
package collect

import "hyades/internal/comm"

// SumAll reduces x across all ranks.
func SumAll(ep comm.Endpoint, x float64) float64 { return ep.GlobalSum(x) }

// Sync blocks until every rank arrives.
func Sync(ep comm.Endpoint) { ep.Barrier() }
