// Package redorder exercises the redorder analyzer: manual float
// accumulations in functions that feed GlobalSum must route through
// internal/gcm/reduce so the summation order stays canonical.
package redorder

import "hyades/internal/comm"

// manualSum is the basic pattern: a function-scope accumulator fed in
// a loop, handed to the global sum.
func manualSum(ep comm.Endpoint, xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x // want `manual floating-point accumulation onto total feeds a global sum`
	}
	return ep.GlobalSum(total)
}

// nestedSum: the accumulator sits outside the whole nest.
func nestedSum(ep comm.Endpoint, grid [][]float64) float64 {
	var sum float64
	for _, row := range grid {
		for _, v := range row {
			sum += v // want `manual floating-point accumulation onto sum`
		}
	}
	return ep.GlobalSum(sum)
}

// residual: -= is an accumulation too.
func residual(ep comm.Endpoint, xs, ys []float64) float64 {
	r := 0.0
	for i := range xs {
		r -= xs[i] * ys[i] // want `manual floating-point accumulation onto r`
	}
	return ep.GlobalSum(r)
}
