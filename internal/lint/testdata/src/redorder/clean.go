package redorder

import (
	"hyades/internal/comm"
	"hyades/internal/gcm/reduce"
)

// viaReduce is the sanctioned route: the helper owns the order.
func viaReduce(ep comm.Endpoint, xs []float64) float64 {
	return ep.GlobalSum(reduce.Slice(xs))
}

// perColumn: an accumulator declared inside the outer loop resets each
// iteration — local arithmetic, not a reduction.
func perColumn(ep comm.Endpoint, cols [][]float64) float64 {
	worst := 0.0
	for _, col := range cols {
		var s float64
		for _, v := range col {
			s += v
		}
		if s > worst {
			worst = s
		}
	}
	return ep.GlobalSum(worst)
}

// counting: integer counters carry no rounding order.
func counting(ep comm.Endpoint, xs []float64) float64 {
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return ep.GlobalSum(float64(n))
}

// localOnly never feeds a global sum; its order is its own business.
func localOnly(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// waived: compensated summation is order-aware by design.
func waived(ep comm.Endpoint, xs []float64) float64 {
	kahan := 0.0
	for _, x := range xs {
		//lint:allow redorder compensated summation fixture
		kahan += x
	}
	return ep.GlobalSum(kahan)
}
