// Package maprange exercises the maprange analyzer: map iteration
// order is randomized, so ranging a map in the event path reorders
// otherwise-identical runs.
package maprange

// bad accumulates floats in randomized order: the sum's rounding
// differs run to run.
func bad(load map[int]float64) float64 {
	total := 0.0
	for _, v := range load { // want `map iteration order is randomized`
		total += v
	}
	return total
}

// badKeys schedules work in randomized order.
func badKeys(pending map[string]func()) {
	for _, fn := range pending { // want `map iteration order is randomized`
		fn()
	}
}
