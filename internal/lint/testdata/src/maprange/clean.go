package maprange

import "sort"

// good iterates a sorted key slice: the visit order is a function of
// the map's contents, not the iteration seed.
func good(load map[int]float64) float64 {
	keys := make([]int, 0, len(load))
	//lint:allow maprange key collection only; order is fixed by the sort below
	for k := range load {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += load[k]
	}
	return total
}

// goodSlice ranges a slice, which is ordered; nothing to flag.
func goodSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
