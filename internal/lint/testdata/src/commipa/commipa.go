// Package commipa exercises interprocedural commlock: a helper that
// reaches a collective must be matched across the arms of a
// rank-dependent branch exactly like a direct collective call.
package commipa

import (
	"hyades/internal/comm"
	collect "hyades/internal/lint/testdata/src/collect"
)

func Lopsided(ep comm.Endpoint, x float64) float64 {
	if ep.Rank() == 0 {
		return collect.SumAll(ep, x) // want `collective GlobalSum is not matched on every arm of the rank-dependent condition at line \d+; ranks on the other arm never join it and the collective deadlocks; reached via collect\.SumAll`
	}
	return 0
}

func Matched(ep comm.Endpoint, x float64) float64 {
	if ep.Rank() == 0 {
		return collect.SumAll(ep, x)
	}
	return collect.SumAll(ep, -x)
}

func LopsidedSync(ep comm.Endpoint) {
	if ep.Rank() != 0 {
		return
	}
	collect.Sync(ep) // want `collective Barrier is not matched on every arm of the rank-dependent condition at line \d+; ranks on the other arm never join it and the collective deadlocks; reached via collect\.Sync`
}

func Waived(ep comm.Endpoint, x float64) float64 {
	if ep.Rank() == 0 {
		//lint:allow commlock fixture: deliberate lopsided reduce
		return collect.SumAll(ep, x)
	}
	return 0
}
