// Package delaywrap is an analysistest helper, not a fixture under
// test: wrappers that forward a caller-supplied duration into
// Engine.Schedule, one and two frames deep, so interprocedural
// schedpast fixtures can check the delay-parameter flow.
package delaywrap

import (
	"hyades/internal/des"
	"hyades/internal/units"
)

// Later schedules fn after d.
func Later(e *des.Engine, d units.Time, fn func()) { e.Schedule(d, fn) }

// Defer is a second hop: the delay flows to Schedule through Later.
func Defer(e *des.Engine, d units.Time, fn func()) { Later(e, d, fn) }
