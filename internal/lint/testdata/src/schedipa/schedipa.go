// Package schedipa exercises interprocedural schedpast: provably
// negative and unguarded-subtraction delays flowing into
// Engine.Schedule through wrapper parameters.
package schedipa

import (
	"hyades/internal/des"
	delaywrap "hyades/internal/lint/testdata/src/delaywrap"
	"hyades/internal/units"
)

func Bad(e *des.Engine, fn func()) {
	delaywrap.Later(e, -1, fn) // want `provably negative time -1 flows into an event-schedule delay`
}

func BadDeep(e *des.Engine, fn func()) {
	delaywrap.Defer(e, -2, fn) // want `provably negative time -2 flows into an event-schedule delay`
}

func Risky(e *des.Engine, a, b units.Time, fn func()) {
	delaywrap.Later(e, a-b, fn) // want `unguarded units\.Time subtraction flows into an event-schedule delay`
}

// Fwd forwards its own parameter: the check belongs to Fwd's callers.
func Fwd(e *des.Engine, d units.Time, fn func()) {
	delaywrap.Later(e, d, fn)
}

func Waived(e *des.Engine, fn func()) {
	//lint:allow schedpast fixture: deliberate negative delay
	delaywrap.Later(e, -3, fn)
}
