// Package detsourceipa exercises interprocedural detsource: a wall
// clock reached through a helper package two calls deep must be
// reported at the boundary call site with its full chain.
package detsourceipa

import walls "hyades/internal/lint/testdata/src/walls"

var last int64

func Tick() {
	last = walls.Stamp() // want `call reaches a wall-clock/randomness source outside the simulation core, breaking determinism: walls\.Stamp \(walls\.go:\d+\) -> walls\.stampA \(walls\.go:\d+\) -> walls\.stampB \(walls\.go:\d+\) -> time\.Now`
	last += walls.Pure(last)
}

func Waived() {
	//lint:allow detsource fixture: deliberate wall-clock use
	last = walls.Stamp()
}
