// Package hotalloc exercises the event-path allocation ratchet
// against a fixture-local budget of zero: the top unwaived sites are
// reported ranked by weight (reachable allocation sites), each
// carrying the measured-vs-budget accounting, and a call into
// allocating code outside the event path counts as one site at the
// call.
package hotalloc

import (
	"hyades/internal/des"
	"hyades/internal/pci"
)

type payload struct{ a, b int }

var sink *payload
var buf []int

func Fill(n int) {
	sink = &payload{a: n} // want `event-path heap allocation in hotalloc\.Fill: &hotalloc\.payload composite literal; package hotalloc is over its allocation budget \(3 sites measured, budget 0 in hotalloc/allocbudget\.json; top site \d/3, weight 1\)`
	buf = append(buf, n)  // want `event-path heap allocation in hotalloc\.Fill: append growth; package hotalloc is over its allocation budget \(3 sites measured, budget 0 in hotalloc/allocbudget\.json; top site \d/3, weight 1\)`
}

func Via(b *pci.Bus, p *des.Proc) {
	b.MMapWrite(p) // want `call from hotalloc\.Via allocates outside the event path \(\d+ reachable sites\): pci\.\(\*Bus\)\.MMapWrite \(pci\.go:\d+\)`
}

func Waived(n int) {
	//lint:allow hotalloc deliberate one-time setup, waived out of the count
	buf = append(buf, n)
}
