package nogoroutine

// good does its work inline; nothing to flag.
func good(work func()) {
	work()
}

// goodAllowed is the kernel-baton pattern: a single annotated raw
// goroutine, with the justification on the annotation line.
func goodAllowed() {
	done := make(chan struct{})
	//lint:allow nogoroutine fixture double of the kernel's baton launch
	go close(done)
	<-done
}
