package nogoroutine

// good does its work inline; nothing to flag.
func good(work func()) {
	work()
}

// goodAllowed is the kernel-baton pattern: a single annotated raw
// goroutine, with the justification on the annotation line.
func goodAllowed() {
	done := make(chan struct{})
	//lint:allow nogoroutine fixture double of the kernel's baton launch
	go close(done)
	<-done
}

// goodPool is the worker-pool pattern: the second sanctioned launch
// site.  Workers drain a task channel and signal completion over a
// done channel, so the baton re-establishes happens-before by waiting
// on done before simulation state becomes observable.
func goodPool(n int) chan func() {
	tasks := make(chan func())
	for i := 0; i < n; i++ {
		//lint:allow nogoroutine fixture double of the compute-offload worker launch
		go func() {
			for fn := range tasks {
				fn()
			}
		}()
	}
	return tasks
}
