// Package nogoroutine exercises the nogoroutine analyzer: raw go
// statements are flagged unless annotated.
package nogoroutine

// bad launches a goroutine that escapes the coroutine baton.
func bad() {
	done := make(chan struct{})
	go close(done) // want `raw go statement escapes the coroutine baton`
	<-done
}

// badFuncLit is flagged the same way.
func badFuncLit(work func()) {
	go func() { // want `raw go statement escapes the coroutine baton`
		work()
	}()
}

// badPool shows that the worker-pool shape is NOT sanctioned by shape
// alone: without the //lint:allow annotation a pool-style launch is
// still flagged.
func badPool(n int) chan func() {
	tasks := make(chan func())
	for i := 0; i < n; i++ {
		go func() { // want `raw go statement escapes the coroutine baton`
			for fn := range tasks {
				fn()
			}
		}()
	}
	return tasks
}
