// Package nogoroutine exercises the nogoroutine analyzer: raw go
// statements are flagged unless annotated.
package nogoroutine

// bad launches a goroutine that escapes the coroutine baton.
func bad() {
	done := make(chan struct{})
	go close(done) // want `raw go statement escapes the coroutine baton`
	<-done
}

// badFuncLit is flagged the same way.
func badFuncLit(work func()) {
	go func() { // want `raw go statement escapes the coroutine baton`
		work()
	}()
}
