// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) used by the hyadeslint suite.
//
// The upstream module is deliberately not imported: the build must stay
// hermetic on an offline machine with an empty module cache, and the
// slice of the API the suite needs — syntax plus type information per
// package, a Report callback, and a driver — is small enough to restate
// on top of the standard library's go/ast, go/token and go/types.  The
// types are shaped like their x/tools namesakes so the analyzers would
// port to the real framework by changing one import path.
//
// # Suppression
//
// The driver honours an allowlist annotation, the suite's single escape
// hatch:
//
//	//lint:allow <analyzer-name> [reason]
//
// placed on the flagged line or on the line immediately above it.  The
// annotation names exactly one analyzer; a finding from any other
// analyzer on the same line is still reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// An Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations.  It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.  The returned value is unused by this
	// driver but kept for x/tools signature compatibility.
	Run func(pass *Pass) (interface{}, error)
}

// A Pass provides one analyzer with the syntax trees and type
// information of one package, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module carries whole-module context (call graph and effect
	// summaries) for interprocedural analyzers; nil for purely
	// intraprocedural runs.  Typed as interface{} so this package stays
	// free of upward dependencies; the lint package defines the
	// concrete type and accessors.
	Module interface{}

	// Report records a finding.  Installed by the driver.
	Report func(Diagnostic)
}

// Reportf records a finding at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver

	// SuggestedFixes are machine-applicable rewrites that resolve the
	// finding.  A driver in -fix mode applies the edits of every fix;
	// other drivers ignore them.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite resolving a finding.
// All edits of one fix are applied together or not at all.
type SuggestedFix struct {
	// Message describes the rewrite, e.g. "write 500 * units.Picosecond".
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End inserts; empty NewText deletes.
type TextEdit struct {
	Pos, End token.Pos
	NewText  []byte
}

// Position resolves the diagnostic's position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// allowRE matches the suppression annotation.  The comment marker may
// be followed by optional space, then "lint:allow <name>".
var allowRE = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z_][A-Za-z0-9_]*)`)

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file string
	line int
	name string
}

// allowlist extracts every //lint:allow annotation in files, keyed so
// that both the annotated line and the line below it are suppressed.
func allowlist(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allow := map[allowKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				allow[allowKey{pos.Filename, pos.Line, m[1]}] = true
				allow[allowKey{pos.Filename, pos.Line + 1, m[1]}] = true
			}
		}
	}
	return allow
}

// AllowMatcher returns a predicate reporting whether a finding from
// the named analyzer at pos is waived by a //lint:allow annotation in
// files.  Analyzers that aggregate sites (the alloc-budget ratchet)
// use it to exclude waived sites from their counts.
func AllowMatcher(fset *token.FileSet, files []*ast.File) func(pos token.Pos, analyzer string) bool {
	allow := allowlist(fset, files)
	return func(pos token.Pos, analyzer string) bool {
		p := fset.Position(pos)
		return allow[allowKey{p.Filename, p.Line, analyzer}]
	}
}

// RunPass applies one analyzer to one package, filters findings through
// the //lint:allow allowlist, and returns the surviving diagnostics in
// deterministic (file, line, column, message) order.
func RunPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunPassMod(a, fset, files, pkg, info, nil)
}

// RunPassMod is RunPass with whole-module context attached for the
// interprocedural analyzers.
func RunPassMod(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module interface{}) ([]Diagnostic, error) {
	allow := allowlist(fset, files)
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Module:    module,
		Report: func(d Diagnostic) {
			d.Analyzer = a.Name
			p := fset.Position(d.Pos)
			if allow[allowKey{p.Filename, p.Line, a.Name}] {
				return
			}
			diags = append(diags, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	Sort(fset, diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then message, so the
// checker's output is reproducible run to run.
func Sort(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
