package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyades/internal/lint/analysis"
)

// Dimcheck flags dimension-crossing arithmetic on the units types.
//
// The type system already rejects `t + bw` outright, so the mistakes
// that survive compilation launder a value through a conversion:
//
//	units.Bandwidth(elapsed)          // picoseconds reread as bytes/sec
//	float64(elapsed) / float64(rate)  // raw base-grain count arithmetic
//
// Two rules:
//
//  1. A direct conversion from one units type to another
//     (Time↔Bandwidth↔Size in any pairing) is always wrong — the base
//     grains differ, so the number silently changes meaning.
//
//  2. A binary expression whose two operands are raw numeric
//     conversions (float64(...), int64(...), ...) of two DIFFERENT
//     units types bypasses the accessor family.  `bytes / seconds` must
//     be spelled with units.Rate / units.Transfer / Seconds() etc.,
//     which keep the dimensions in view.  Same-type ratios
//     (float64(a)/float64(b), both Time) stay legal: they are
//     dimensionless by construction.
//
// The accessor family — Time.Seconds/Micros/Millis/Minutes,
// Bandwidth.Transfer/MBperSec, units.Rate — is the sanctioned bridge
// between dimensions.
var Dimcheck = &analysis.Analyzer{
	Name: "dimcheck",
	Doc:  "flag conversions and arithmetic that mix units.Time/Bandwidth/Size dimensions",
	Run:  runDimcheck,
}

// unitTypeNames are the dimensioned types under guard.
var unitTypeNames = []string{"Time", "Bandwidth", "Size"}

// unitTypeName returns which units type t is, or "".
func unitTypeName(t types.Type) string {
	for _, name := range unitTypeNames {
		if isUnitsType(t, name) {
			return name
		}
	}
	return ""
}

func runDimcheck(pass *analysis.Pass) (interface{}, error) {
	inspectAll(pass, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if dst, src, ok := crossUnitConversion(pass, n); ok {
				pass.Reportf(n.Pos(),
					"units.%s value converted directly to units.%s: the dimensions are incompatible; cross dimensions through the accessor family (Seconds/Micros, Transfer/MBperSec, Rate)",
					src, dst)
			}
		case *ast.BinaryExpr:
			if !dimensionedOp(n.Op) {
				return true
			}
			ux := rawUnitConv(pass, n.X)
			uy := rawUnitConv(pass, n.Y)
			if ux != "" && uy != "" && ux != uy {
				pass.Reportf(n.Pos(),
					"arithmetic mixes units.%s and units.%s through raw numeric conversions, bypassing the dimension check; use the accessor family (Seconds/Micros, Transfer/MBperSec, Rate) instead",
					ux, uy)
			}
		}
		return true
	})
	return nil, nil
}

// dimensionedOp reports whether op combines two values in a way where
// their dimensions must agree.
func dimensionedOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// crossUnitConversion matches U1(x) where U1 and x's type are two
// different units types.
func crossUnitConversion(pass *analysis.Pass, call *ast.CallExpr) (dst, src string, ok bool) {
	if len(call.Args) != 1 {
		return "", "", false
	}
	funTV, okTV := pass.TypesInfo.Types[call.Fun]
	if !okTV || !funTV.IsType() {
		return "", "", false
	}
	dst = unitTypeName(funTV.Type)
	if dst == "" {
		return "", "", false
	}
	argTV, okTV := pass.TypesInfo.Types[unparen(call.Args[0])]
	if !okTV || argTV.Type == nil {
		return "", "", false
	}
	src = unitTypeName(argTV.Type)
	if src == "" || src == dst {
		return "", "", false
	}
	return dst, src, true
}

// rawUnitConv matches a conversion of a units-typed value to a plain
// numeric type — float64(t), int64(bw), ... — and returns which units
// type was stripped, or "".
func rawUnitConv(pass *analysis.Pass, e ast.Expr) string {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	funTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return ""
	}
	basic, ok := types.Unalias(funTV.Type).(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return ""
	}
	argTV, ok := pass.TypesInfo.Types[unparen(call.Args[0])]
	if !ok || argTV.Type == nil {
		return ""
	}
	return unitTypeName(argTV.Type)
}
