package lint

import (
	"go/ast"
	"go/constant"
	"go/token"

	"hyades/internal/lint/analysis"
)

// Schedpast flags Engine.Schedule / Engine.ScheduleAt call sites whose
// time argument is provably negative or is an unguarded subtraction of
// two units.Time values.
//
// The kernel clamps negative delays to "now", so scheduling in the past
// does not crash — it silently reorders causality: the event fires
// before the cause that should precede it has drained.  A negative
// constant is always a bug.  A bare a-b of two Times is the classic way
// to produce one at runtime (end-start where end may lag start under
// contention); hoist the difference into a variable and clamp it, or
// compute the absolute deadline and use ScheduleAt.
var Schedpast = &analysis.Analyzer{
	Name: "schedpast",
	Doc:  "flag Schedule/ScheduleAt delays that are negative constants or unclamped Time subtractions",
	Run:  runSchedpast,
}

func runSchedpast(pass *analysis.Pass) (interface{}, error) {
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcFor(pass.TypesInfo, sel.Sel)
		if fn == nil || recvOf(fn) == nil {
			return true
		}
		if fn.Name() != "Schedule" && fn.Name() != "ScheduleAt" {
			return true
		}
		recv := namedType(recvOf(fn).Type())
		if recv == nil || recv.Obj().Name() != "Engine" || !pkgPathIs(recv.Obj().Pkg(), desPkgPath) {
			return true
		}
		arg := unparen(call.Args[0])
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
			if k := tv.Value.Kind(); (k == constant.Int || k == constant.Float) && constant.Sign(tv.Value) < 0 {
				pass.Reportf(arg.Pos(),
					"%s called with provably negative time %s: the kernel clamps it to now, silently breaking causality",
					fn.Name(), tv.Value.ExactString())
			}
			return true
		}
		if bin, ok := arg.(*ast.BinaryExpr); ok && bin.Op == token.SUB &&
			isTimeExpr(pass, bin.X) && isTimeExpr(pass, bin.Y) {
			pass.Reportf(arg.Pos(),
				"%s called with an unguarded units.Time subtraction, which can be negative at runtime; clamp the difference to zero first (or schedule the absolute deadline with ScheduleAt)",
				fn.Name())
		}
		return true
	})
	if m := moduleOf(pass); m != nil {
		runSchedpastInterproc(pass, m)
	}
	return nil, nil
}

// isTimeExpr reports whether e has type units.Time.
func isTimeExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isUnitsType(tv.Type, "Time")
}
