package lint

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"hyades/internal/lint/allocbudget"
	"hyades/internal/lint/analysis"
	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/load"
	"hyades/internal/lint/pointsto"
	"hyades/internal/lint/summary"
)

// A Module is the interprocedural context the upgraded analyzers run
// against: the call graph and effect summaries of ONE package's import
// closure, plus the committed allocation budget.
//
// The closure — not the whole pattern set — is deliberate: it is
// derived from the import graph alone, so the same package analyzed by
// the standalone driver (many packages per process) and by a go-vet
// unit (one package per process) sees the identical universe, and the
// two modes produce identical findings.  A chain that crosses package
// boundaries is reported in the package holding the boundary call
// site, which both modes visit exactly once.
type Module struct {
	Graph     *callgraph.Graph
	Summaries *summary.Set

	// Points is the Andersen points-to analysis over the same
	// closure; the graph's dynamic and interface sites are refined
	// with it before summaries are computed.
	Points *pointsto.Analysis

	// Budget is the hot-path allocation allowance; BudgetPath is where
	// it was read from (and where -writebudget rewrites it).
	Budget     *allocbudget.Budget
	BudgetPath string

	// share caches the module-wide partition-safety findings (see
	// shareheap.go); computed once, reported per package.
	share     []shareFinding
	shareDone bool
}

// moduleCache shares built contexts between packages with the same
// closure.  Keyed by loader identity first: objects from different
// type-checking universes must never mix.
type moduleKey struct {
	loader  *load.Loader
	closure string
}

var moduleCache = map[moduleKey]*Module{}

// ModuleFor builds (or reuses) the interprocedural context for pkg.
func ModuleFor(pkg *load.Package) *Module {
	closure := pkg.Closure()
	paths := make([]string, len(closure))
	for i, p := range closure {
		paths[i] = p.Path
	}
	key := moduleKey{loader: pkg.Loader(), closure: strings.Join(paths, ",")}
	if m, ok := moduleCache[key]; ok {
		return m
	}
	g := callgraph.Build(closure)
	pts := pointsto.Analyze(g)
	// Narrow func-value and interface edges where points-to proved the
	// complete callee set; summaries then run on the sharper graph.
	g.Refine(func(call *ast.CallExpr) ([]*callgraph.Node, bool) {
		r := pts.Resolution(call)
		if r == nil || r.Incomplete {
			return nil, false
		}
		return r.Callees, true
	})
	m := &Module{
		Graph:      g,
		Points:     pts,
		Summaries:  summary.Compute(g),
		BudgetPath: budgetPathFor(pkg),
	}
	b, err := allocbudget.Load(m.BudgetPath)
	if err != nil {
		// An unreadable budget is the strictest budget; hotalloc will
		// report every site, which surfaces the broken file.
		b = &allocbudget.Budget{Packages: map[string]int{}}
	}
	m.Budget = b
	moduleCache[key] = m
	return m
}

// budgetPathFor resolves the budget file for pkg: a fixture-local
// allocbudget.json next to the sources wins (so // want fixtures can
// pin their own budgets); otherwise the committed module-level file.
func budgetPathFor(pkg *load.Package) string {
	local := filepath.Join(pkg.Dir, "allocbudget.json")
	if _, err := os.Stat(local); err == nil {
		return local
	}
	if root := pkg.ModuleRoot(); root != "" {
		return filepath.Join(root, "lint", "allocbudget.json")
	}
	return ""
}

// moduleOf extracts the interprocedural context from a pass; nil when
// the driver ran intraprocedural-only.
func moduleOf(pass *analysis.Pass) *Module {
	m, _ := pass.Module.(*Module)
	return m
}

// packageNodes returns the module's call-graph nodes whose bodies live
// in the given package, in deterministic (index) order.
func (m *Module) packageNodes(tpkg *types.Package) []*callgraph.Node {
	var out []*callgraph.Node
	for _, n := range m.Graph.Nodes {
		if n.Pkg.Types == tpkg {
			out = append(out, n)
		}
	}
	return out
}
