package callgraph_test

import (
	"go/ast"
	"testing"

	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/load"
)

func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/src/cgfix", "cgfix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.Errors)
	}
	return callgraph.Build(pkg.Closure())
}

func nodeNamed(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.String() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

// siteCallees renders the callee names of n's i'th site.
func siteCallees(n *callgraph.Node, i int) []string {
	var out []string
	for _, c := range n.Sites[i].Callees {
		out = append(out, c.String())
	}
	return out
}

func TestInterfaceResolution(t *testing.T) {
	g := buildFixture(t)
	total := nodeNamed(t, g, "cgfix.TotalArea")
	if len(total.Sites) != 1 {
		t.Fatalf("TotalArea sites = %d, want 1", len(total.Sites))
	}
	site := total.Sites[0]
	if !site.Iface {
		t.Errorf("s.Area() not classified as interface call")
	}
	got := siteCallees(total, 0)
	want := map[string]bool{"cgfix.Circle.Area": true, "cgfix.(*Square).Area": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Errorf("CHA callees = %v, want both Area implementations", got)
	}
}

func TestConcreteResolution(t *testing.T) {
	g := buildFixture(t)
	direct := nodeNamed(t, g, "cgfix.Direct")
	if len(direct.Sites) != 1 {
		t.Fatalf("Direct sites = %d, want 1", len(direct.Sites))
	}
	site := direct.Sites[0]
	if site.Iface || site.Dynamic {
		t.Errorf("concrete method call misclassified: iface=%v dynamic=%v", site.Iface, site.Dynamic)
	}
	if got := siteCallees(direct, 0); len(got) != 1 || got[0] != "cgfix.Circle.Area" {
		t.Errorf("callees = %v, want exactly Circle.Area", got)
	}
}

func TestFuncValueConservatism(t *testing.T) {
	g := buildFixture(t)
	if n := nodeNamed(t, g, "cgfix.Taken"); !n.AddrTaken {
		t.Errorf("Taken should be address-taken (stored in var f)")
	}
	if n := nodeNamed(t, g, "cgfix.NotTaken"); n.AddrTaken {
		t.Errorf("NotTaken should not be address-taken (only called directly)")
	}
	ct := nodeNamed(t, g, "cgfix.CallThrough")
	if len(ct.Sites) != 1 || !ct.Sites[0].Dynamic {
		t.Fatalf("CallThrough should have one dynamic site, got %+v", ct.Sites)
	}
	got := siteCallees(ct, 0)
	for _, name := range got {
		if name == "cgfix.NotTaken" {
			t.Errorf("dynamic call resolved to non-address-taken NotTaken")
		}
	}
	found := false
	for _, name := range got {
		if name == "cgfix.Taken" {
			found = true
		}
	}
	if !found {
		t.Errorf("dynamic call missed address-taken Taken; callees = %v", got)
	}
}

func TestSCCOrder(t *testing.T) {
	g := buildFixture(t)
	even := nodeNamed(t, g, "cgfix.IsEven")
	odd := nodeNamed(t, g, "cgfix.IsOdd")
	parity := nodeNamed(t, g, "cgfix.Parity")
	sccOf := map[*callgraph.Node]int{}
	for i, comp := range g.SCCs() {
		for _, n := range comp {
			sccOf[n] = i
		}
	}
	if sccOf[even] != sccOf[odd] {
		t.Errorf("IsEven and IsOdd in different SCCs (%d, %d)", sccOf[even], sccOf[odd])
	}
	if !(sccOf[even] < sccOf[parity]) {
		t.Errorf("callee SCC (%d) not emitted before caller SCC (%d)", sccOf[even], sccOf[parity])
	}
	// Every callee's SCC index must be <= the caller's (bottom-up).
	for _, n := range g.Nodes {
		for _, s := range n.Sites {
			for _, c := range s.Callees {
				if sccOf[c] > sccOf[n] {
					t.Errorf("%s calls %s but callee SCC %d after caller SCC %d",
						n, c, sccOf[c], sccOf[n])
				}
			}
		}
	}
}

func TestLiteralNodes(t *testing.T) {
	g := buildFixture(t)
	outer := nodeNamed(t, g, "cgfix.Outer")
	lit := nodeNamed(t, g, "cgfix.Outer$1")
	if lit.Parent != outer {
		t.Errorf("literal parent = %v, want Outer", lit.Parent)
	}
	if !lit.AddrTaken {
		t.Errorf("stored literal should be address-taken")
	}
	// The literal's NotTaken call belongs to the literal, not Outer.
	if len(outer.Sites) != 0 {
		t.Errorf("Outer owns %d sites, want 0 (literal owns the call)", len(outer.Sites))
	}
	if got := siteCallees(lit, 0); len(lit.Sites) != 1 || got[0] != "cgfix.NotTaken" {
		t.Errorf("literal sites = %v", got)
	}
}

func TestDeterministicRebuild(t *testing.T) {
	g1 := buildFixture(t)
	g2 := buildFixture(t)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(g1.Nodes), len(g2.Nodes))
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].String() != g2.Nodes[i].String() {
			t.Fatalf("node %d differs: %s vs %s", i, g1.Nodes[i], g2.Nodes[i])
		}
		if len(g1.Nodes[i].Sites) != len(g2.Nodes[i].Sites) {
			t.Fatalf("site counts differ at %s", g1.Nodes[i])
		}
	}
}

// TestMethodValueSites: a bound method value (g.Add stored in a
// variable) marks the method address-taken, and the call through the
// variable is a dynamic site whose signature-matched candidates
// include the bound body — the receiver is excluded from the
// signature key, so func(int) int matches (*Gauge).Add.
func TestMethodValueSites(t *testing.T) {
	g := buildFixture(t)
	add := nodeNamed(t, g, "cgfix.(*Gauge).Add")
	if !add.AddrTaken {
		t.Errorf("(*Gauge).Add should be address-taken (bound method value)")
	}
	if reset := nodeNamed(t, g, "cgfix.(*Gauge).Reset"); reset.AddrTaken {
		t.Errorf("(*Gauge).Reset is only called directly, must not be address-taken")
	}

	bound := nodeNamed(t, g, "cgfix.BoundMethod")
	var dyn *callgraph.Site
	for _, s := range bound.Sites {
		if s.Dynamic {
			dyn = s
		}
	}
	if dyn == nil {
		t.Fatalf("BoundMethod has no dynamic site: %+v", bound.Sites)
	}
	foundAdd := false
	for _, c := range dyn.Callees {
		if c == add {
			foundAdd = true
		}
		if c.String() == "cgfix.(*Gauge).Reset" {
			t.Errorf("dynamic call resolved to never-bound Reset")
		}
	}
	if !foundAdd {
		t.Errorf("bound-method call missed (*Gauge).Add; callees = %v", siteCallees(bound, len(bound.Sites)-1))
	}
}

// TestMethodValueAsArgument: passing g.Add to a higher-order function
// routes it into CallThrough's dynamic candidate set alongside Taken.
func TestMethodValueAsArgument(t *testing.T) {
	g := buildFixture(t)
	ct := nodeNamed(t, g, "cgfix.CallThrough")
	got := map[string]bool{}
	for _, name := range siteCallees(ct, 0) {
		got[name] = true
	}
	if !got["cgfix.(*Gauge).Add"] {
		t.Errorf("CallThrough candidates missing bound method: %v", got)
	}
	if !got["cgfix.Taken"] {
		t.Errorf("CallThrough candidates missing Taken: %v", got)
	}
}

// TestRefine: an external resolver narrows dynamic and interface
// sites only when it vouches for completeness with a strictly
// smaller, non-empty set.
func TestRefine(t *testing.T) {
	g := buildFixture(t)
	total := nodeNamed(t, g, "cgfix.TotalArea")
	iface := total.Sites[0]
	if len(iface.Callees) != 2 {
		t.Fatalf("precondition: CHA callees = %d, want 2", len(iface.Callees))
	}
	circle := nodeNamed(t, g, "cgfix.Circle.Area")

	// A resolver that claims completeness for the interface site only.
	n := g.Refine(func(call *ast.CallExpr) ([]*callgraph.Node, bool) {
		if call == iface.Call {
			return []*callgraph.Node{circle}, true
		}
		return nil, false
	})
	if n != 1 {
		t.Fatalf("refined %d sites, want 1", n)
	}
	if len(iface.Callees) != 1 || iface.Callees[0] != circle {
		t.Errorf("interface site not narrowed: %v", siteCallees(total, 0))
	}

	// Refusing to vouch, or returning empty/equal sets, changes
	// nothing.
	before := len(nodeNamed(t, g, "cgfix.CallThrough").Sites[0].Callees)
	n = g.Refine(func(call *ast.CallExpr) ([]*callgraph.Node, bool) {
		return nil, true // "complete and empty" must be rejected
	})
	if n != 0 {
		t.Errorf("empty resolutions refined %d sites, want 0", n)
	}
	if got := len(nodeNamed(t, g, "cgfix.CallThrough").Sites[0].Callees); got != before {
		t.Errorf("dynamic candidates changed: %d -> %d", before, got)
	}
}
