// Package cgfix exercises the call-graph builder: concrete and
// interface method resolution, func-value conservatism, recursion.
package cgfix

// Shape has two in-package implementations, one on a value receiver
// and one on a pointer receiver.
type Shape interface{ Area() float64 }

type Circle struct{ R float64 }

func (c Circle) Area() float64 { return 3 * c.R * c.R }

type Square struct{ S float64 }

func (s *Square) Area() float64 { return s.S * s.S }

// TotalArea calls Area through the interface: CHA must resolve to both
// implementations.
func TotalArea(shapes []Shape) float64 {
	t := 0.0
	for _, s := range shapes {
		t += s.Area()
	}
	return t
}

// Direct calls Area on a concrete value: exactly one callee.
func Direct() float64 {
	c := Circle{R: 1}
	return c.Area()
}

// Taken's value escapes into a variable; NotTaken is only ever called
// directly.  A call through a func(int) int value may reach Taken but
// can never reach NotTaken.
func Taken(x int) int { return x + 1 }

func NotTaken(x int) int { return x - 1 }

var f = Taken

// CallThrough calls its func-typed parameter: the dynamic candidate
// set is the address-taken func(int) int bodies.
func CallThrough(g func(int) int) int { return g(2) }

// UseAll keeps everything live.
func UseAll() int { return NotTaken(CallThrough(f)) }

// IsEven and IsOdd are mutually recursive: one SCC, emitted before
// their caller Parity.
func IsEven(n int) bool {
	if n == 0 {
		return true
	}
	return IsOdd(n - 1)
}

func IsOdd(n int) bool {
	if n == 0 {
		return false
	}
	return IsEven(n - 1)
}

func Parity() bool { return IsEven(10) }

// Outer holds a nested literal; the literal is address-taken (stored),
// and its own call site belongs to the literal's node, not Outer's.
func Outer() func() int {
	inner := func() int { return NotTaken(3) }
	return inner
}

// Gauge exercises method-value and bound-method call sites.
type Gauge struct{ v int }

func (g *Gauge) Add(d int) int { g.v += d; return g.v }
func (g Gauge) Read() int      { return g.v }
func (g *Gauge) Reset(to int)  { g.v = to }

// BoundMethod stores g.Add as a func value and calls through it: the
// call is dynamic, and the address-taken method body must be in the
// candidate set even though its receiver is bound away.
func BoundMethod() int {
	g := &Gauge{}
	add := g.Add
	return add(2)
}

// MethodValueArg passes a bound method value to a higher-order
// function; the dynamic call inside CallThrough can reach it.
func MethodValueArg() int {
	g := &Gauge{}
	return CallThrough(g.Add)
}

// DirectReset only ever calls Reset directly: a bound method is never
// made from it, so it must stay out of every dynamic candidate set.
func DirectReset() {
	g := &Gauge{}
	g.Reset(0)
}
