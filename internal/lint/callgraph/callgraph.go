// Package callgraph builds a whole-module, CHA-style call graph over
// the packages loaded by internal/lint/load, using only the standard
// library.
//
// The graph is the substrate of the interprocedural analyzers: a Node
// per function body (declared functions and methods, plus every
// function literal), and per-body call Sites resolved three ways:
//
//   - static calls (package functions, concrete methods, immediately
//     invoked literals) resolve to exactly the named body;
//   - interface method calls resolve by class-hierarchy analysis: every
//     method of that name on a named type in the analyzed set that
//     implements the receiver interface is a possible callee;
//   - calls through func values resolve conservatively to every
//     *address-taken* body with an identical signature.  A function
//     that is only ever called directly can never be the target of a
//     func value, so it is excluded from the candidate set.
//
// Over-approximation is deliberate: the analyzers built on top enforce
// absence properties (no wall clock, no collectives, no allocation
// reachable from the event path), so extra edges can only cause false
// positives — auditable with //lint:allow — never missed violations
// within the analyzed set.  What the graph cannot see is code outside
// the set: standard-library bodies (edges stop at the declared object)
// and implementations of an interface living in packages that are not
// part of the closure under analysis.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"hyades/internal/lint/load"
)

// A Node is one function body.
type Node struct {
	Index int

	// Func is the declared function or method object; nil for
	// literals.
	Func *types.Func
	// Lit is the function literal; nil for declarations.
	Lit *ast.FuncLit
	// Decl is the declaration carrying Body; nil for literals.
	Decl *ast.FuncDecl

	// Pkg is the package the body lives in.
	Pkg *load.Package
	// Body is the function body (never nil: bodyless declarations get
	// no node).
	Body *ast.BlockStmt
	// Parent is the enclosing body for literals (nil for literals in
	// package-level variable initializers).
	Parent *Node

	// Sites are the call sites inside Body, excluding nested literal
	// bodies, in source order.
	Sites []*Site

	// AddrTaken marks bodies whose function value escapes into a
	// variable, field, argument or return — the candidate set for
	// dynamic (func-value) call resolution.
	AddrTaken bool

	litSeq int // 1-based ordinal among the parent's literals
}

// String renders a stable human-readable name: "des.(*Engine).Schedule",
// "gcm.Step", or "gcm.Step$1" for the first literal inside Step.
func (n *Node) String() string {
	if n.Lit != nil {
		if n.Parent != nil {
			return fmt.Sprintf("%s$%d", n.Parent.String(), n.litSeq)
		}
		return fmt.Sprintf("%s.func$%d", lastSegment(n.Pkg.Path), n.litSeq)
	}
	f := n.Func
	name := f.Name()
	if recv := RecvOf(f); recv != nil {
		if named := NamedOf(recv.Type()); named != nil {
			if _, isPtr := types.Unalias(recv.Type()).(*types.Pointer); isPtr {
				name = "(*" + named.Obj().Name() + ")." + name
			} else {
				name = named.Obj().Name() + "." + name
			}
		}
	}
	return lastSegment(n.Pkg.Path) + "." + name
}

// Pos returns the body's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// A Site is one call expression and its possible callees.
type Site struct {
	Call *ast.CallExpr
	// Callees are the resolved in-set bodies, sorted by Node.Index.
	Callees []*Node
	// Static is the statically named callee object when the call names
	// one (package function, concrete method, or the interface method
	// for CHA-resolved calls); nil for func-value calls.  It may have
	// no Node (standard library, bodyless declaration).
	Static *types.Func
	// Iface marks calls resolved by class-hierarchy analysis.
	Iface bool
	// Dynamic marks func-value calls resolved by signature matching.
	Dynamic bool
}

// Pos returns the call position.
func (s *Site) Pos() token.Pos { return s.Call.Pos() }

// A Graph is the call graph of one package closure.
type Graph struct {
	// Packages is the analyzed set, sorted by import path.
	Packages []*load.Package
	Fset     *token.FileSet
	// Nodes in deterministic order: package path, then source position.
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node

	namedTypes []*types.Named // for CHA, deterministic order
	chaMemo    map[chaKey][]*Node
	sigIndex   map[string][]*Node // signature string -> address-taken nodes
}

type chaKey struct {
	iface *types.Interface
	name  string
}

// FuncNode returns the node for a declared function, or nil.  The
// object is normalized through Origin, so instantiated generics map to
// their declaration.
func (g *Graph) FuncNode(f *types.Func) *Node {
	if f == nil {
		return nil
	}
	return g.byFunc[f.Origin()]
}

// LitNode returns the node for a function literal, or nil.
func (g *Graph) LitNode(l *ast.FuncLit) *Node { return g.byLit[l] }

// Build constructs the graph over pkgs.  The packages must share one
// FileSet (the loader guarantees this).
func Build(pkgs []*load.Package) *Graph {
	pkgs = append([]*load.Package(nil), pkgs...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	g := &Graph{
		Packages: pkgs,
		byFunc:   map[*types.Func]*Node{},
		byLit:    map[*ast.FuncLit]*Node{},
		chaMemo:  map[chaKey][]*Node{},
	}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	// Pass 1: nodes for every declared body and literal, and the named
	// types of the set (the CHA universe).
	for _, pkg := range pkgs {
		g.collectNodes(pkg)
		g.collectNamed(pkg)
	}
	// Pass 2: address-taken marking, set-wide, before any resolution.
	for _, pkg := range pkgs {
		g.markAddrTaken(pkg)
	}
	// Pass 3: resolve call sites.
	g.sigIndex = map[string][]*Node{}
	for _, n := range g.Nodes {
		if n.AddrTaken {
			key := g.sigKey(n)
			g.sigIndex[key] = append(g.sigIndex[key], n)
		}
	}
	for _, n := range g.Nodes {
		g.resolveSites(n)
	}
	return g
}

// collectNodes creates nodes for pkg's declared bodies and all nested
// literals, in source order.
func (g *Graph) collectNodes(pkg *load.Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{Func: fn, Decl: d, Pkg: pkg, Body: d.Body}
				g.addNode(n)
				g.byFunc[fn] = n
				g.collectLits(pkg, n, d.Body)
			case *ast.GenDecl:
				// Literals in package-level initializers have no
				// enclosing body.
				g.collectLits(pkg, nil, d)
			}
		}
	}
}

// collectLits creates nodes for the function literals under root whose
// nearest enclosing body is parent, recursing so nested literals chain
// their parents.
func (g *Graph) collectLits(pkg *load.Package, parent *Node, root ast.Node) {
	count := 0
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			count++
			child := &Node{Lit: lit, Pkg: pkg, Body: lit.Body, Parent: parent, litSeq: count}
			g.addNode(child)
			g.byLit[lit] = child
			g.collectLits(pkg, child, lit.Body)
			return false
		}
		return true
	})
}

func (g *Graph) addNode(n *Node) {
	n.Index = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
}

// collectNamed gathers pkg's named non-interface types for CHA.
func (g *Graph) collectNamed(pkg *load.Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		g.namedTypes = append(g.namedTypes, named)
	}
}

// markAddrTaken records which bodies have their function value taken:
// a literal not immediately invoked, or a reference to a declared
// function outside call position.
func (g *Graph) markAddrTaken(pkg *load.Package) {
	for _, f := range pkg.Files {
		// First collect the expressions in call-function position.
		funPos := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				funPos[Unparen(call.Fun)] = true
			}
			return true
		})
		// Selector idents are judged by their enclosing selector's call
		// position, not their own; remember them so the Ident case
		// below does not re-mark every selector-called method.
		viaSelector := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if !funPos[ast.Expr(n)] {
					if node := g.byLit[n]; node != nil {
						node.AddrTaken = true
					}
				}
			case *ast.Ident:
				if !viaSelector[n] {
					g.markFuncRef(pkg, n, funPos[ast.Expr(n)])
				}
			case *ast.SelectorExpr:
				viaSelector[n.Sel] = true
				g.markFuncRef(pkg, n.Sel, funPos[ast.Expr(n)])
			}
			return true
		})
	}
}

func (g *Graph) markFuncRef(pkg *load.Package, id *ast.Ident, inCallPos bool) {
	if inCallPos {
		return
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if node := g.FuncNode(fn); node != nil {
		node.AddrTaken = true
	}
}

// sigKey renders a node's signature (receiver excluded) for dynamic
// matching.
func (g *Graph) sigKey(n *Node) string {
	var sig *types.Signature
	if n.Func != nil {
		sig, _ = n.Func.Type().(*types.Signature)
	} else if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
		sig, _ = tv.Type.(*types.Signature)
	}
	return sigString(sig)
}

// sigString renders a signature by parameter and result types only —
// names differ between a declaration and a func type, identity must
// not.
func sigString(sig *types.Signature) string {
	if sig == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("func(")
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			b.WriteString("...")
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	b.WriteString(")")
	return b.String()
}

// resolveSites walks n's body (excluding nested literal bodies) and
// resolves every call.
func (g *Graph) resolveSites(n *Node) {
	root := ast.Node(n.Body)
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m != root && isFuncLit(m) {
			return false // nested literal: its own node owns these sites
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if site := g.resolveCall(n.Pkg, call); site != nil {
				n.Sites = append(n.Sites, site)
			}
		}
		return true
	})
}

func isFuncLit(n ast.Node) bool {
	_, ok := n.(*ast.FuncLit)
	return ok
}

// resolveCall classifies one call expression; nil for conversions and
// builtins.
func (g *Graph) resolveCall(pkg *load.Package, call *ast.CallExpr) *Site {
	info := pkg.Info
	fun := Unparen(call.Fun)
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	site := &Site{Call: call}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		if node := g.byLit[fun]; node != nil {
			site.Callees = []*Node{node}
		}
		return site
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return nil
		case *types.Func:
			return g.resolveStatic(site, obj)
		case *types.TypeName:
			return nil // conversion through a local type name
		}
	case *ast.SelectorExpr:
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return g.resolveStatic(site, obj)
		case *types.TypeName:
			return nil
		}
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation: f[T](...) — the identifier under the
		// index names the function.
		if id := instantiatedIdent(fun); id != nil {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return g.resolveStatic(site, fn)
			}
		}
	}
	// Func-value call: conservative signature matching over the
	// address-taken set.
	site.Dynamic = true
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			site.Callees = g.sigIndex[sigString(sig)]
		}
	}
	return site
}

func instantiatedIdent(e ast.Expr) *ast.Ident {
	var x ast.Expr
	switch e := e.(type) {
	case *ast.IndexExpr:
		x = e.X
	case *ast.IndexListExpr:
		x = e.X
	default:
		return nil
	}
	switch x := Unparen(x).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// resolveStatic handles calls that name a function object: concrete
// bodies resolve directly, interface methods by CHA.
func (g *Graph) resolveStatic(site *Site, fn *types.Func) *Site {
	fn = fn.Origin()
	site.Static = fn
	recv := RecvOf(fn)
	if recv != nil {
		if iface, ok := types.Unalias(recv.Type()).Underlying().(*types.Interface); ok {
			site.Iface = true
			site.Callees = g.implementations(iface, fn.Name())
			return site
		}
	}
	if node := g.byFunc[fn]; node != nil {
		site.Callees = []*Node{node}
	}
	return site
}

// implementations returns every in-set method named name on a named
// type satisfying iface, sorted by node index.
func (g *Graph) implementations(iface *types.Interface, name string) []*Node {
	key := chaKey{iface: iface, name: name}
	if nodes, ok := g.chaMemo[key]; ok {
		return nodes
	}
	var nodes []*Node
	seen := map[*Node]bool{}
	for _, named := range g.namedTypes {
		var impl types.Type
		if types.Implements(named, iface) {
			impl = named
		} else if p := types.NewPointer(named); types.Implements(p, iface) {
			impl = p
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), name)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := g.FuncNode(m); node != nil && !seen[node] {
			seen[node] = true
			nodes = append(nodes, node)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Index < nodes[j].Index })
	g.chaMemo[key] = nodes
	return nodes
}

// Refine narrows the callee sets of dynamic (func-value) and
// interface call sites using an external resolver — in practice the
// points-to analysis.  A site is narrowed only when the resolver
// vouches for completeness (ok) with a non-empty, strictly smaller
// callee set; everything else keeps its conservative CHA/signature
// set, so refinement can only remove impossible edges, never the
// sound over-approximation.  Returns the number of sites narrowed.
func (g *Graph) Refine(resolve func(call *ast.CallExpr) (callees []*Node, ok bool)) int {
	refined := 0
	for _, n := range g.Nodes {
		for _, s := range n.Sites {
			if !s.Dynamic && !s.Iface {
				continue
			}
			callees, ok := resolve(s.Call)
			if !ok || len(callees) == 0 || len(callees) >= len(s.Callees) {
				continue
			}
			s.Callees = callees
			refined++
		}
	}
	return refined
}

// SCCs returns the strongly connected components of the graph in
// bottom-up (callees before callers) order — the evaluation order for
// the summary fixpoint.  Each component's nodes are sorted by index.
func (g *Graph) SCCs() [][]*Node {
	// Iterative Tarjan: components complete only after all their
	// successors, so the emission order is already bottom-up.
	n := len(g.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]*Node
	next := 0

	type frame struct {
		v    int
		succ []int
		pos  int
	}
	succsOf := func(v int) []int {
		var out []int
		for _, s := range g.Nodes[v].Sites {
			for _, c := range s.Callees {
				out = append(out, c.Index)
			}
		}
		return out
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root, succ: succsOf(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.pos < len(f.succ) {
				w := f.succ[f.pos]
				f.pos++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succ: succsOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Finished v: pop frame, propagate lowlink, maybe emit SCC.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []*Node
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, g.Nodes[w])
					if w == v {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i].Index < comp[j].Index })
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// ---- shared type helpers (exported for the summary layer and the
// analyzers; internal/lint keeps its own private copies for the
// intraprocedural rules) ----

// RecvOf returns fn's receiver variable, or nil.
func RecvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// NamedOf returns the named type behind t, unwrapping aliases and one
// pointer, or nil.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// PkgPathIs reports whether pkg is importPath or a testdata double of
// it (matching on the path's last segment, the convention the fixture
// trees use).
func PkgPathIs(pkg *types.Package, importPath string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	if p == importPath {
		return true
	}
	return lastSegment(p) == lastSegment(importPath)
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Unparen strips redundant parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// PosLabel renders a short file.go:line label for messages.
func PosLabel(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
