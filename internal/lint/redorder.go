package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyades/internal/lint/analysis"
)

// Redorder flags manual floating-point accumulation loops in functions
// that feed a GlobalSum.
//
// The determinism contract promises bit-identical results run to run,
// and the global sum is its weakest point: floating-point addition is
// not associative, so the *order* of the local accumulation is part of
// the answer.  The canonical order lives in one place —
// internal/gcm/reduce (Over2/Over3/Dot2/Slice, storage order: i
// fastest, then j, then k) — so that refactoring a loop nest can never
// silently reorder a reduction.
//
// The rule: inside a function (or closure) that calls GlobalSum on a
// comm.Endpoint, a `+=`/`-=` onto a float variable declared outside
// the loop nest is a manual reduction and must route through the
// reduce helpers.  Accumulators declared inside the loop body (per-cell
// stencil sums, per-column physics) are local arithmetic, not
// reductions, and stay legal; so do integer counters.
//
// Functions named GlobalSum are exempt — they implement the collective,
// and the pairwise butterfly accumulation is theirs to own.
var Redorder = &analysis.Analyzer{
	Name: "redorder",
	Doc:  "flag manual float accumulations feeding GlobalSum; use internal/gcm/reduce",
	Run:  runRedorder,
}

func runRedorder(pass *analysis.Pass) (interface{}, error) {
	iface := endpointIface(pass)
	if iface == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "GlobalSum" {
				continue // the collective implementation owns its order
			}
			checkRedorderUnit(pass, iface, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkRedorderUnit(pass, iface, fl.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkRedorderUnit inspects one function body (nested literals are
// separate units: a closure is its own reduction scope).
func checkRedorderUnit(pass *analysis.Pass, iface *types.Interface, body *ast.BlockStmt) {
	if !callsGlobalSum(pass, iface, body) {
		return
	}
	var loops []ast.Node // enclosing for/range stack
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				if m == n {
					return true
				}
				loops = append(loops, m)
				walk(m)
				loops = loops[:len(loops)-1]
				return false
			case *ast.RangeStmt:
				if m == n {
					return true
				}
				loops = append(loops, m)
				walk(m)
				loops = loops[:len(loops)-1]
				return false
			case *ast.AssignStmt:
				checkAccum(pass, m, loops)
			}
			return true
		})
	}
	walk(body)
}

// checkAccum reports assign when it is a float accumulation inside a
// loop onto a variable declared outside the outermost enclosing loop.
func checkAccum(pass *analysis.Pass, assign *ast.AssignStmt, loops []ast.Node) {
	if len(loops) == 0 {
		return
	}
	if assign.Tok != token.ADD_ASSIGN && assign.Tok != token.SUB_ASSIGN {
		return
	}
	if len(assign.Lhs) != 1 {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	basic, ok := types.Unalias(obj.Type()).(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	// Declared inside any enclosing loop? Then it resets per iteration
	// of an outer loop — local arithmetic, not a reduction.
	outermost := loops[0]
	if obj.Pos() >= outermost.Pos() && obj.Pos() < outermost.End() {
		return
	}
	pass.Reportf(assign.Pos(),
		"manual floating-point accumulation onto %s feeds a global sum; route it through the reduce helpers (reduce.Over2/Over3/Dot2/Slice) so the summation order stays canonical",
		id.Name)
}

// callsGlobalSum reports whether body (excluding nested function
// literals) invokes GlobalSum on an Endpoint.
func callsGlobalSum(pass *analysis.Pass, iface *types.Interface, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && endpointMethodCall(pass, iface, call, "GlobalSum") {
			found = true
			return false
		}
		return true
	})
	return found
}
