package lint

import (
	"go/ast"

	"hyades/internal/lint/analysis"
)

// Detsource forbids wall-clock reads and unseeded global randomness in
// simulation packages.  A call to time.Now (or any process-global
// random source) makes the run a function of the host machine instead
// of the inputs, silently voiding the determinism contract that lets
// every timing figure regenerate bit-for-bit.
//
// Explicitly seeded generators stay legal: rand.New(rand.NewSource(s))
// is the sanctioned pattern (see the Arctic fabric's adaptive-routing
// RNG), because the seed is part of the simulation's input.  The
// fault-injection plan's splitmix64 generator (fault.NewPRNG) is the
// other registered source: it is seeded exclusively from fault.Config
// and never touches math/rand, so the rule's ban on the global source
// covers fault plans too — a plan drawing from rand.Float64 is flagged
// like any other sim-core code.
var Detsource = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbid time.Now/time.Since and unseeded math/rand in simulation packages",
	Run:  runDetsource,
}

// bannedTimeFuncs are the wall-clock entry points in package time.
// (time.Sleep blocks real time, equally illegal in virtual time.)
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
	"Tick":  true,
	"After": true,
}

// seededRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that construct explicit generators rather than consult the
// global source.
var seededRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDetsource(pass *analysis.Pass) (interface{}, error) {
	inspectAll(pass, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcFor(pass.TypesInfo, sel.Sel)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if recvOf(fn) != nil {
			// Methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are
			// fine: the hazard is the process-global state behind
			// the package-level functions.
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock and breaks simulation determinism; use the engine's virtual clock (Engine.Now)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededRandFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source and breaks simulation determinism; use rand.New(rand.NewSource(seed)) with a configured seed", fn.Name())
			}
		}
		return true
	})
	if m := moduleOf(pass); m != nil {
		runDetsourceInterproc(pass, m)
	}
	return nil, nil
}
