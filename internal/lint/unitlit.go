package lint

import (
	"fmt"
	"go/ast"
	"go/constant"

	"hyades/internal/lint/analysis"
)

// Unitlit flags constants converted directly to units.Time or
// units.Bandwidth, as in units.Time(500).
//
// units.Time counts picoseconds; units.Bandwidth counts bytes per
// second.  A bare literal conversion silently fixes the unit to the
// base grain — units.Time(500) is half a nanosecond, almost never what
// the author meant — which is exactly the class of calibration bug that
// corrupted-unit constants cause.  Write the unit out instead:
//
//	500 * units.Nanosecond      not  units.Time(500)
//	150 * units.MBps            not  units.Bandwidth(1.5e8)
//
// Conversions of zero are exempt (zero is zero in every unit), as are
// conversions of non-constant expressions: units.Time(n) where n is a
// runtime count is the sanctioned way to scale a duration (d / units.Time(reps)).
var Unitlit = &analysis.Analyzer{
	Name: "unitlit",
	Doc:  "flag untyped constants converted directly to units.Time/units.Bandwidth",
	Run:  runUnitlit,
}

// unitSuggestion pairs each guarded type with the idiomatic multiplier
// to name in the message.
var unitSuggestion = map[string]string{
	"Time":      "e.g. 500 * units.Nanosecond",
	"Bandwidth": "e.g. 150 * units.MBps",
}

func runUnitlit(pass *analysis.Pass) (interface{}, error) {
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		// A conversion is a CallExpr whose Fun denotes a type.
		funTV, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !funTV.IsType() {
			return true
		}
		var unitName string
		for name := range unitSuggestion {
			if isUnitsType(funTV.Type, name) {
				unitName = name
				break
			}
		}
		if unitName == "" {
			return true
		}
		arg := unparen(call.Args[0])
		argTV, ok := pass.TypesInfo.Types[arg]
		if !ok || argTV.Value == nil {
			return true // not a constant: runtime scaling, legal
		}
		// Beware: go/types records an untyped constant argument with
		// its *converted* type, so the unit-bearing exemption must be
		// syntactic — does the expression reference any units-typed
		// constant (units.Nanosecond, units.MBps, ...)?
		if exprCarriesUnit(pass, arg, unitName) {
			return true
		}
		if isZeroConst(argTV.Value) {
			return true
		}
		d := analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"constant %s converted directly to units.%s fixes the unit to the base grain; multiply by a named unit instead (%s)",
				argTV.Value.ExactString(), unitName, unitSuggestion[unitName]),
		}
		if fix, ok := unitlitFix(call, unitName); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(d)
		return true
	})
	return nil, nil
}

// unitBaseGrain names the unit constant equal to 1 in each guarded
// type, so the value-preserving rewrite N -> N * <grain> never changes
// behaviour — it only makes the (probably wrong) unit visible.
var unitBaseGrain = map[string]string{
	"Time":      "Picosecond",
	"Bandwidth": "Bps",
}

// unitlitFix rewrites units.Time(N) to N * units.Picosecond (and
// Bandwidth to units.Bps), preserving the value exactly.  The units
// qualifier is taken from the call site, so import aliases and code
// inside package units itself stay correct.
func unitlitFix(call *ast.CallExpr, unitName string) (analysis.SuggestedFix, bool) {
	grain := unitBaseGrain[unitName]
	if grain == "" {
		return analysis.SuggestedFix{}, false
	}
	qualified := grain
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return analysis.SuggestedFix{}, false
		}
		qualified = id.Name + "." + grain
	}
	arg := call.Args[0]
	var edits []analysis.TextEdit
	switch arg.(type) {
	case *ast.BasicLit, *ast.Ident:
		// units.Time(500) -> 500 * units.Picosecond
		edits = []analysis.TextEdit{
			{Pos: call.Pos(), End: arg.Pos()},
			{Pos: call.Rparen, End: call.Rparen + 1, NewText: []byte(" * " + qualified)},
		}
	default:
		// units.Time(3+2) -> (3+2) * units.Picosecond
		edits = []analysis.TextEdit{
			{Pos: call.Pos(), End: arg.Pos(), NewText: []byte("(")},
			{Pos: call.Rparen, End: call.Rparen + 1, NewText: []byte(") * " + qualified)},
		}
	}
	return analysis.SuggestedFix{
		Message:   fmt.Sprintf("multiply by %s instead of converting", qualified),
		TextEdits: edits,
	}, true
}

// exprCarriesUnit reports whether e references an object of the
// guarded units type — e.g. 5*units.Nanosecond mentions Nanosecond, a
// units.Time constant, so the duration already carries its unit.
func exprCarriesUnit(pass *analysis.Pass, e ast.Expr, unitName string) bool {
	carries := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || carries {
			return !carries
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && isUnitsType(obj.Type(), unitName) {
			carries = true
		}
		return !carries
	})
	return carries
}

// isZeroConst reports whether v is numerically zero.
func isZeroConst(v constant.Value) bool {
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
