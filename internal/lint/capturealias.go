package lint

import (
	"go/ast"
	"go/types"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/pointsto"
)

// Capturealias closes the aliasing hole next to execpure: a closure
// offloaded through des.Proc.Exec / comm.Endpoint.Exec (or a wrapper)
// runs on a pool worker, off the coroutine baton — and Go closures
// capture by reference.  execpure rejects the effects the summary can
// see (engine calls, sends, global writes); this rule rejects the
// capture itself when what is captured is engine-owned state: a
// *des.Proc, a mailbox, the engine, a resource.  Even an innocuous-
// looking read of such a value from the worker races with the engine
// mutating it under the baton, and the effect summary cannot see a
// bare field read or a pass-through to another function.
//
// A capture is flagged when the variable's static type is declared in
// package des, or when its points-to set contains a des-owned object
// (engine state smuggled behind an interface or any-typed variable).
// Phases should receive plain data: model arrays, counters, scalars.
var Capturealias = &analysis.Analyzer{
	Name: "capturealias",
	Doc:  "offloaded Exec closures must not capture engine-owned state by reference",
	Run:  runCapturealias,
}

func runCapturealias(pass *analysis.Pass) (interface{}, error) {
	m := moduleOf(pass)
	if m == nil || m.Points == nil {
		return nil, nil
	}
	s := m.Summaries
	for _, n := range m.packageNodes(pass.Pkg) {
		for _, site := range n.Sites {
			for _, j := range s.BoundaryArgs(site) {
				if j >= len(site.Call.Args) {
					continue
				}
				arg := unparen(site.Call.Args[j])
				for _, lit := range phaseLits(m, n, arg) {
					checkCaptures(pass, m, lit, arg)
				}
			}
		}
	}
	return nil, nil
}

// phaseLits resolves the closures entering one offload boundary arg:
// a literal directly, a func value through points-to.  Forwarded
// parameters are skipped (checked where the concrete closure enters);
// named functions capture nothing.
func phaseLits(m *Module, n *callgraph.Node, arg ast.Expr) []*callgraph.Node {
	switch arg := arg.(type) {
	case *ast.FuncLit:
		if ln := m.Graph.LitNode(arg); ln != nil {
			return []*callgraph.Node{ln}
		}
		return nil
	case *ast.Ident:
		if m.Summaries.Of(n).ParamIndex(arg) >= 0 {
			return nil
		}
	}
	roots, ok := pointsRoots(m, arg)
	if !ok {
		// Same fallback as execpure: phases pre-bound into unexported
		// struct fields resolve through the package's field stores.
		if sel, isSel := arg.(*ast.SelectorExpr); isSel {
			roots, ok = fieldAssignRoots(m, n.Pkg.Info, sel)
		}
		if !ok {
			return nil
		}
	}
	var lits []*callgraph.Node
	for _, r := range roots {
		if r.Lit != nil {
			lits = append(lits, r)
		}
	}
	return lits
}

func checkCaptures(pass *analysis.Pass, m *Module, lit *callgraph.Node, arg ast.Expr) {
	qual := func(p *types.Package) string { return p.Name() }
	for _, v := range m.Points.FreeVars(lit) {
		if desOwned(v.Type()) {
			pass.Reportf(arg.Pos(),
				"offloaded Exec phase captures engine-owned %s %q by reference; pool workers run outside the coroutine baton — pass plain data into the phase instead",
				types.TypeString(v.Type(), qual), v.Name())
			continue
		}
		for _, o := range m.Points.VarPointsTo(v) {
			if o.Kind != pointsto.KUnknown && desOwned(o.Type) {
				pass.Reportf(arg.Pos(),
					"offloaded Exec phase captures %q, which aliases engine-owned state (%s); pass plain data into the phase instead",
					v.Name(), o.What)
				break
			}
		}
	}
}
