package lint

import (
	"go/ast"

	"hyades/internal/lint/analysis"
)

// Nogoroutine forbids raw go statements in simulation-core packages.
//
// The des kernel runs processes as coroutines: a baton is handed to at
// most one goroutine at a time, which is why simulation code may touch
// shared state without locks.  A raw goroutine escapes that discipline
// — it races with the holder of the baton and injects host-scheduler
// nondeterminism into virtual time.  Concurrency in simulation code
// must go through Engine.Spawn; the single legitimate raw goroutine
// (the kernel's own baton launch in des.Spawn) carries the
// //lint:allow nogoroutine annotation.
var Nogoroutine = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid raw go statements in sim-core packages; use Engine.Spawn",
	Run:  runNogoroutine,
}

func runNogoroutine(pass *analysis.Pass) (interface{}, error) {
	inspectAll(pass, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(),
				"raw go statement escapes the coroutine baton and races with simulation state; use Engine.Spawn (or annotate //lint:allow nogoroutine with a justification)")
		}
		return true
	})
	return nil, nil
}
