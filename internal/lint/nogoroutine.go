package lint

import (
	"go/ast"

	"hyades/internal/lint/analysis"
)

// Nogoroutine forbids raw go statements in simulation-core packages.
//
// The des kernel runs processes as coroutines: a baton is handed to at
// most one goroutine at a time, which is why simulation code may touch
// shared state without locks.  A raw goroutine escapes that discipline
// — it races with the holder of the baton and injects host-scheduler
// nondeterminism into virtual time.  Concurrency in simulation code
// must go through Engine.Spawn; the two legitimate raw-goroutine sites
// — the kernel's own baton launch in des.Spawn and the compute-offload
// worker launch in des.NewPool, whose workers synchronize with the
// baton through task/done channels — carry the //lint:allow nogoroutine
// annotation.
var Nogoroutine = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid raw go statements in sim-core packages; use Engine.Spawn",
	Run:  runNogoroutine,
}

func runNogoroutine(pass *analysis.Pass) (interface{}, error) {
	inspectAll(pass, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(),
				"raw go statement escapes the coroutine baton and races with simulation state; use Engine.Spawn (or annotate //lint:allow nogoroutine with a justification)")
		}
		return true
	})
	return nil, nil
}
