// Package analysistest runs a hyadeslint analyzer over fixture packages
// and checks its diagnostics against // want annotations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on top of the
// stdlib-only driver.
//
// Fixtures live under <testdata>/src/<pkgpath>/.  A line that should be
// flagged carries a trailing annotation:
//
//	time.Now() // want `time\.Now reads the wall clock`
//
// The annotation payload is one or more Go string literals (quoted or
// backquoted), each a regexp that must match one diagnostic reported on
// that line.  Lines without annotations must produce no diagnostics.
// The //lint:allow escape hatch is honoured, so fixtures can assert
// that an annotated line is NOT flagged simply by carrying no want.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hyades/internal/lint"
	"hyades/internal/lint/analysis"
	"hyades/internal/lint/load"
)

// The loader is shared across Run calls so the standard library is
// type-checked once per test binary, not once per analyzer.
var (
	loaderOnce sync.Once
	loader     *load.Loader
	loaderErr  error
)

// want is one expectation: a diagnostic matching rx on (file, line).
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under testdata/src and applies a,
// failing t on any mismatch between diagnostics and // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = load.NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("analysistest: %v", loaderErr)
	}
	for _, pkgpath := range pkgpaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
		pkg, err := loader.LoadDir(dir, pkgpath)
		if err != nil {
			t.Errorf("%s: load: %v", pkgpath, err)
			continue
		}
		if len(pkg.Errors) > 0 {
			t.Errorf("%s: fixture does not type-check: %v", pkgpath, pkg.Errors)
			continue
		}
		wants, err := parseWants(pkg.Filenames)
		if err != nil {
			t.Errorf("%s: %v", pkgpath, err)
			continue
		}
		diags, err := analysis.RunPassMod(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, lint.ModuleFor(pkg))
		if err != nil {
			t.Errorf("%s: %v", pkgpath, err)
			continue
		}
		for _, d := range diags {
			pos := d.Position(pkg.Fset)
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
			}
		}
	}
}

// claim marks the first unmatched want on (file, line) whose regexp
// matches message, reporting whether one existed.
func claim(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE locates the annotation marker.  Wants are recognised only in
// trailing position (after code or at the start of a comment line).
var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants scans fixture sources for // want annotations.
func parseWants(filenames []string) ([]*want, error) {
	var wants []*want
	for _, fname := range filenames {
		data, err := os.ReadFile(fname)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			patterns, err := parsePatterns(strings.TrimSpace(m[1]))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want: %v", fname, i+1, err)
			}
			for _, p := range patterns {
				rx, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", fname, i+1, p, err)
				}
				wants = append(wants, &want{file: fname, line: i + 1, rx: rx, raw: p})
			}
		}
	}
	return wants, nil
}

// parsePatterns splits a want payload into its string-literal patterns.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for s != "" {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string")
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote, honouring escapes.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string")
			}
			uq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, uq)
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("expected string literal, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}
