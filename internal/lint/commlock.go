package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/cfg"
	"hyades/internal/lint/dataflow"
)

// Commlock flags collective calls (GlobalSum, Barrier, Exchange) that
// are not matched across every arm of a rank-dependent branch — the
// classic collective-mismatch deadlock:
//
//	if ep.Rank() == 0 {
//		ep.GlobalSum(x) // only rank 0 enters the butterfly: deadlock
//	}
//
// The model's collectives are synchronous: GlobalSum is a fixed
// butterfly, Exchange blocks on its peer, Barrier is a GlobalSum of
// zero.  Every rank must therefore reach the same collective call
// sequence; a collective guarded by a condition derived from Rank()
// splits the ranks into groups that wait on each other forever.
//
// The analyzer is a forward dataflow over the function's CFG.  First an
// intra-procedural taint pass marks every variable derived from a
// Rank() call; a branch whose condition mentions tainted state is
// rank-dependent.  Each CFG edge leaving such a branch pushes a
// (branch, arm) guard; merging control flow intersects guard sets, so
// re-joined code is unguarded, while code after an early-return arm
// keeps the surviving arm's guard — which is how the analyzer catches
//
//	if ep.Rank() != 0 { return }
//	ep.Barrier() // only rank 0 gets here
//
// A collective is reported when, for some rank-dependent guard it runs
// under, the static count of same-method collective calls differs
// between the branch's arms (pairwise send/receive shapes where both
// arms call Exchange once, as in tile gather, stay legal), or when the
// guard is the body of a loop whose trip count is rank-dependent.
//
// Functions named GlobalSum, Barrier or Exchange are exempt: they ARE
// the collective implementations, and rank-dependent asymmetry is
// exactly how a butterfly is written.
var Commlock = &analysis.Analyzer{
	Name: "commlock",
	Doc:  "flag collectives not matched across rank-dependent branches (deadlock)",
	Run:  runCommlock,
}

func runCommlock(pass *analysis.Pass) (interface{}, error) {
	iface := endpointIface(pass)
	if iface == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if collectiveNames[fd.Name.Name] {
				continue // a collective implementation
			}
			// Taint is computed once over the whole declaration:
			// closures capture the enclosing function's rank-derived
			// locals.
			taint := newRankTaint(pass, iface, fd)
			checkCommUnit(pass, iface, taint, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkCommUnit(pass, iface, taint, fl.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// guard marks "control reached here via arm `arm` of `branch`".
type guard struct {
	branch ast.Node
	arm    int
}

type guardSet map[guard]bool

// guardProblem is the dataflow problem: the fact at a point is the set
// of rank-dependent guards every path to that point agrees on.
type guardProblem struct {
	rankDep map[ast.Node]bool
}

func (p guardProblem) Entry() dataflow.Fact { return guardSet{} }

func (p guardProblem) Meet(a, b dataflow.Fact) dataflow.Fact {
	ga, gb := a.(guardSet), b.(guardSet)
	out := guardSet{}
	for g := range ga {
		if gb[g] {
			out[g] = true
		}
	}
	return out
}

func (p guardProblem) Transfer(b *cfg.Block, in dataflow.Fact) dataflow.Fact { return in }

func (p guardProblem) EdgeFact(e *cfg.Edge, out dataflow.Fact) dataflow.Fact {
	if e.Branch == nil || !p.rankDep[e.Branch] {
		return out
	}
	// A loop's exit arm is no guard: the loop condition eventually
	// fails on every rank, so code after the loop is common again.
	// Only the body arm (a rank-dependent trip count) is recorded.
	if isLoopNode(e.Branch) && e.Arm != 0 {
		return out
	}
	g := out.(guardSet)
	n := make(guardSet, len(g)+1)
	for k := range g {
		n[k] = true
	}
	n[guard{branch: e.Branch, arm: e.Arm}] = true
	return n
}

func (p guardProblem) Equal(a, b dataflow.Fact) bool {
	ga, gb := a.(guardSet), b.(guardSet)
	if len(ga) != len(gb) {
		return false
	}
	for g := range ga {
		if !gb[g] {
			return false
		}
	}
	return true
}

func isLoopNode(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

// branchConds returns the expressions that govern which arm of branch
// executes.  Type switches and selects never depend on a rank value.
func branchConds(branch ast.Node) []ast.Expr {
	switch s := branch.(type) {
	case *ast.IfStmt:
		return []ast.Expr{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Expr{s.Cond}
		}
	case *ast.RangeStmt:
		return []ast.Expr{s.X}
	case *ast.SwitchStmt:
		var es []ast.Expr
		if s.Tag != nil {
			es = append(es, s.Tag)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				es = append(es, cc.List...)
			}
		}
		return es
	}
	return nil
}

// checkCommUnit analyzes one function body (a declaration or one
// function literal; cfg.New does not descend into nested literals).
func checkCommUnit(pass *analysis.Pass, iface *types.Interface, taint *rankTaint, body *ast.BlockStmt) {
	g := cfg.New(body)

	rankDep := map[ast.Node]bool{}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Branch == nil || rankDep[e.Branch] {
				continue
			}
			for _, c := range branchConds(e.Branch) {
				if taint.expr(c) {
					rankDep[e.Branch] = true
					break
				}
			}
		}
	}
	if len(rankDep) == 0 {
		return
	}

	facts := dataflow.Forward(g, guardProblem{rankDep: rankDep})

	// Collect every collective call site with the guards it runs under:
	// direct Endpoint collectives, plus (with module context) call
	// sites whose callees reach a collective — a helper hiding a
	// GlobalSum must be matched across arms exactly like the GlobalSum
	// itself.
	type site struct {
		call   *ast.CallExpr
		method string
		chain  string // non-empty for interprocedurally detected sites
		guards guardSet
	}
	mod := moduleOf(pass)
	var sites []site
	for _, blk := range g.Blocks {
		fact, ok := facts[blk]
		if !ok {
			continue // unreachable
		}
		gs := fact.(guardSet)
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false // analyzed as its own unit
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if method, ok := collectiveCall(pass, iface, call); ok {
					sites = append(sites, site{call: call, method: method, guards: gs})
				} else if mod != nil {
					for _, r := range interprocCollectives(pass, mod, call) {
						sites = append(sites, site{call: call, method: r.method, chain: r.chain, guards: gs})
					}
				}
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}

	// Per rank-dependent branch: arm universe and static per-arm call
	// counts per collective method.
	arms := map[ast.Node]map[int]bool{}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Branch != nil && rankDep[e.Branch] {
				if arms[e.Branch] == nil {
					arms[e.Branch] = map[int]bool{}
				}
				arms[e.Branch][e.Arm] = true
			}
		}
	}
	counts := map[ast.Node]map[int]map[string]int{}
	for _, s := range sites {
		for gd := range s.guards {
			if counts[gd.branch] == nil {
				counts[gd.branch] = map[int]map[string]int{}
			}
			if counts[gd.branch][gd.arm] == nil {
				counts[gd.branch][gd.arm] = map[string]int{}
			}
			counts[gd.branch][gd.arm][s.method]++
		}
	}
	mismatched := func(gd guard, method string) bool {
		if isLoopNode(gd.branch) {
			return true // rank-dependent trip count: counts differ by construction
		}
		want, first := 0, true
		for arm := range arms[gd.branch] {
			n := 0
			if byArm := counts[gd.branch]; byArm != nil && byArm[arm] != nil {
				n = byArm[arm][method]
			}
			if first {
				want, first = n, false
			} else if n != want {
				return true
			}
		}
		return false
	}

	for _, s := range sites {
		var bad []guard
		for gd := range s.guards {
			if mismatched(gd, s.method) {
				bad = append(bad, gd)
			}
		}
		if len(bad) == 0 {
			continue
		}
		sort.Slice(bad, func(i, j int) bool {
			if bad[i].branch.Pos() != bad[j].branch.Pos() {
				return bad[i].branch.Pos() < bad[j].branch.Pos()
			}
			return bad[i].arm < bad[j].arm
		})
		gd := bad[0]
		line := pass.Fset.Position(gd.branch.Pos()).Line
		via := ""
		if s.chain != "" {
			via = "; reached via " + s.chain
		}
		if isLoopNode(gd.branch) {
			pass.Reportf(s.call.Pos(),
				"collective %s runs inside a loop whose trip count is rank-dependent (loop at line %d); ranks make different numbers of collective calls and deadlock%s",
				s.method, line, via)
		} else {
			pass.Reportf(s.call.Pos(),
				"collective %s is not matched on every arm of the rank-dependent condition at line %d; ranks on the other arm never join it and the collective deadlocks%s",
				s.method, line, via)
		}
	}
}

// rankTaint is the set of variables (transitively) derived from a
// Rank() call within one function declaration.
type rankTaint struct {
	pass  *analysis.Pass
	iface *types.Interface
	objs  map[types.Object]bool
}

// newRankTaint runs the flow-insensitive taint fixpoint over root.
func newRankTaint(pass *analysis.Pass, iface *types.Interface, root ast.Node) *rankTaint {
	t := &rankTaint{pass: pass, iface: iface, objs: map[types.Object]bool{}}
	mark := func(id *ast.Ident) bool {
		if id == nil || id.Name == "_" {
			return false
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil || t.objs[obj] {
			return false
		}
		t.objs[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if ok && t.expr(n.Rhs[i]) && mark(id) {
							changed = true
						}
					}
				} else if len(n.Rhs) == 1 && t.expr(n.Rhs[0]) {
					// x, y := f(...) with a tainted operand somewhere:
					// conservatively taint every target.
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && mark(id) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						if t.expr(n.Values[i]) && mark(name) {
							changed = true
						}
					}
				} else if len(n.Values) == 1 && t.expr(n.Values[0]) {
					for _, name := range n.Names {
						if mark(name) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return t
}

// expr reports whether e mentions rank-derived state: a Rank() call on
// an Endpoint, or a tainted variable.
func (t *rankTaint) expr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if endpointMethodCall(t.pass, t.iface, n, "Rank") {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := t.pass.TypesInfo.Uses[n]; obj != nil && t.objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
