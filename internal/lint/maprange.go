package lint

import (
	"go/ast"
	"go/types"

	"hyades/internal/lint/analysis"
)

// Maprange flags range statements over maps in the event-path packages
// (des, arctic, comm).
//
// Go randomizes map iteration order on purpose.  In most code that is
// harmless; in the event path it is a determinism hazard: iterating a
// map to schedule events, wake processes or accumulate floating-point
// state makes the visit order — and therefore event sequence numbers,
// wake-up order, and rounding — differ between otherwise identical
// runs.  Iterate a sorted key slice or an insertion-ordered structure
// instead.  If the loop body is provably order-insensitive (a pure
// count, a set membership test), waive the finding with
// //lint:allow maprange and say why.
var Maprange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag range over a map in event-path packages (randomized order breaks determinism)",
	Run:  runMaprange,
}

func runMaprange(pass *analysis.Pass) (interface{}, error) {
	inspectAll(pass, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			pass.Reportf(rng.Pos(),
				"map iteration order is randomized and this loop runs in the event path; iterate a sorted key slice or an ordered structure (//lint:allow maprange if order provably cannot matter)")
		}
		return true
	})
	return nil, nil
}
