package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"hyades/internal/lint/cfg"
)

// The test problem is the guard analysis commlock uses: the fact at a
// point is the set of (branch, arm) pairs every path agrees on, branches
// whose condition calls dep() are "interesting", and merges intersect.

type guard struct {
	branch ast.Node
	arm    int
}

type set map[guard]bool

type guardProblem struct {
	dep map[ast.Node]bool
}

func (p guardProblem) Entry() Fact { return set{} }

func (p guardProblem) Meet(a, b Fact) Fact {
	ga, gb := a.(set), b.(set)
	out := set{}
	for g := range ga {
		if gb[g] {
			out[g] = true
		}
	}
	return out
}

func (p guardProblem) Transfer(b *cfg.Block, in Fact) Fact { return in }

func (p guardProblem) EdgeFact(e *cfg.Edge, out Fact) Fact {
	if e.Branch == nil || !p.dep[e.Branch] {
		return out
	}
	g := out.(set)
	n := make(set, len(g)+1)
	for k := range g {
		n[k] = true
	}
	n[guard{branch: e.Branch, arm: e.Arm}] = true
	return n
}

func (p guardProblem) Equal(a, b Fact) bool {
	ga, gb := a.(set), b.(set)
	if len(ga) != len(gb) {
		return false
	}
	for g := range ga {
		if !gb[g] {
			return false
		}
	}
	return true
}

// analyze builds the graph of f's body, marks every branch whose
// condition mentions a call to dep() as interesting, runs Forward, and
// returns the in-fact of the block calling the named function.
func analyze(t *testing.T, body, at string) set {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.New(file.Decls[0].(*ast.FuncDecl).Body)

	dep := map[ast.Node]bool{}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			ifs, ok := e.Branch.(*ast.IfStmt)
			if !ok {
				continue
			}
			ast.Inspect(ifs.Cond, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "dep" {
						dep[ifs] = true
					}
				}
				return true
			})
		}
	}

	facts := Forward(g, guardProblem{dep: dep})
	for blk, fact := range facts {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == at {
						found = true
					}
				}
				return true
			})
			if found {
				return fact.(set)
			}
		}
	}
	t.Fatalf("no reachable block calls %s", at)
	return nil
}

func arms(s set) []int {
	var out []int
	for g := range s {
		out = append(out, g.arm)
	}
	return out
}

func TestGuardInsideArm(t *testing.T) {
	s := analyze(t, `
	if dep() {
		a()
	}
	b()`, "a")
	if len(s) != 1 || arms(s)[0] != 0 {
		t.Errorf("inside then-arm: guards = %v, want exactly arm 0", s)
	}
}

func TestMergeCancels(t *testing.T) {
	s := analyze(t, `
	if dep() {
		a()
	} else {
		b()
	}
	c()`, "c")
	if len(s) != 0 {
		t.Errorf("after merge: guards = %v, want none", s)
	}
}

func TestEarlyReturnKeepsGuard(t *testing.T) {
	s := analyze(t, `
	if dep() {
		return
	}
	c()`, "c")
	if len(s) != 1 || arms(s)[0] != 1 {
		t.Errorf("after early return: guards = %v, want exactly the skip arm 1", s)
	}
}

func TestUninterestingBranchAddsNothing(t *testing.T) {
	s := analyze(t, `
	if plain() {
		a()
	}
	b()`, "a")
	if len(s) != 0 {
		t.Errorf("non-dep branch: guards = %v, want none", s)
	}
}

func TestNestedGuards(t *testing.T) {
	s := analyze(t, `
	if dep() {
		if dep() {
			a()
		}
	}
	b()`, "a")
	if len(s) != 2 {
		t.Errorf("nested arms: guards = %v, want two", s)
	}
}

// TestLoopFixpoint: facts must converge with a back edge present; the
// guard from a branch inside the loop cancels at the loop head.
func TestLoopFixpoint(t *testing.T) {
	s := analyze(t, `
	for i := 0; i < n(); i++ {
		if dep() {
			a()
		}
		body()
	}
	after()`, "body")
	if len(s) != 0 {
		t.Errorf("loop body after inner merge: guards = %v, want none", s)
	}
	s = analyze(t, `
	for i := 0; i < n(); i++ {
		if dep() {
			continue
		}
		body()
	}
	after()`, "body")
	if len(s) != 1 || arms(s)[0] != 1 {
		t.Errorf("after continue-guard: guards = %v, want the skip arm", s)
	}
}
