// Package dataflow runs simple forward dataflow problems over the
// control-flow graphs built by internal/lint/cfg.
//
// A client supplies a Problem: an entry fact, a meet operator, a block
// transfer function and (the part most analyses here care about) an
// edge transfer, which lets a fact change along one arm of a branch —
// e.g. "on the then-edge of this if, record that the then-arm was
// taken".  The engine iterates to a fixpoint with a worklist and
// optimistic initialization: a predecessor that has not produced an
// out-fact yet is ignored rather than treated as bottom, which gives
// meet-over-reachable-paths precision for intersection-style lattices.
//
// Termination is the Problem's responsibility: facts must form a
// lattice of finite height under Meet, and Transfer/EdgeFact must be
// monotone.  Every analyzer in internal/lint uses finite sets drawn
// from the function's AST, which satisfies both.
package dataflow

import "hyades/internal/lint/cfg"

// A Fact is an arbitrary immutable dataflow value.  Implementations
// must not mutate a Fact after returning it: the engine caches and
// compares facts across iterations.
type Fact interface{}

// A Problem defines one forward dataflow analysis.
type Problem interface {
	// Entry is the fact holding at function entry.
	Entry() Fact

	// Meet combines two facts at a control-flow merge.
	Meet(a, b Fact) Fact

	// Transfer produces the fact after executing block b with fact in
	// holding on entry.
	Transfer(b *cfg.Block, in Fact) Fact

	// EdgeFact adapts the out-fact of e.From for travel along e —
	// typically adding a guard when e is one arm of an interesting
	// branch.  Return out unchanged for uninteresting edges.
	EdgeFact(e *cfg.Edge, out Fact) Fact

	// Equal reports whether two facts are equivalent (fixpoint test).
	Equal(a, b Fact) bool
}

// Forward computes the fixpoint of p over g and returns the in-fact of
// every block reachable from g.Entry.  Unreachable blocks do not
// appear in the result.
func Forward(g *cfg.Graph, p Problem) map[*cfg.Block]Fact {
	in := map[*cfg.Block]Fact{}
	out := map[*cfg.Block]Fact{}

	inQueue := map[*cfg.Block]bool{g.Entry: true}
	queue := []*cfg.Block{g.Entry}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		inQueue[blk] = false

		var f Fact
		have := false
		for _, e := range blk.Preds {
			predOut, ok := out[e.From]
			if !ok {
				continue // optimistic: pred not yet computed
			}
			ef := p.EdgeFact(e, predOut)
			if !have {
				f, have = ef, true
			} else {
				f = p.Meet(f, ef)
			}
		}
		if blk == g.Entry {
			if have {
				f = p.Meet(f, p.Entry())
			} else {
				f, have = p.Entry(), true
			}
		}
		if !have {
			continue // no reachable predecessor yet
		}
		in[blk] = f

		newOut := p.Transfer(blk, f)
		if old, ok := out[blk]; ok && p.Equal(old, newOut) {
			continue
		}
		out[blk] = newOut
		for _, e := range blk.Succs {
			if !inQueue[e.To] {
				inQueue[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return in
}
