package lint

import (
	"go/ast"
	"go/types"

	"hyades/internal/lint/analysis"
)

// Import paths the analyzers key on.  The fixture trees under
// testdata/src re-declare miniature doubles of these packages; matching
// on a path *suffix* lets one analyzer implementation serve both the
// real tree and the fixtures without a test-only seam in the rule
// logic.
const (
	unitsPkgPath = "hyades/internal/units"
	desPkgPath   = "hyades/internal/des"
	commPkgPath  = "hyades/internal/comm"
)

// pkgPathIs reports whether pkg is importPath, or a testdata double of
// it ("<fixture>/vendor-free suffix match on ".../internal/units").
func pkgPathIs(pkg *types.Package, importPath string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	if p == importPath {
		return true
	}
	// Fixture double: path ends with the real path's last two
	// segments, e.g. "unitlit/units" for "hyades/internal/units".
	return lastSegment(p) == lastSegment(importPath)
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// funcFor resolves the called or referenced function behind an
// identifier, or nil.
func funcFor(info *types.Info, id *ast.Ident) *types.Func {
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvOf returns fn's receiver variable, or nil for a package-level
// function.
func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// namedType returns the named type (unwrapping aliases and pointers)
// behind t, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isUnitsType reports whether t is the named type units.<name> (or a
// fixture double of it).
func isUnitsType(t types.Type, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return n.Obj().Name() == name && pkgPathIs(n.Obj().Pkg(), unitsPkgPath)
}

// inspectAll walks every file in the pass with fn.
func inspectAll(pass *analysis.Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// collectiveNames are the Endpoint methods every rank must call in
// lockstep.
var collectiveNames = map[string]bool{
	"GlobalSum": true,
	"Barrier":   true,
	"Exchange":  true,
}

// endpointIface locates the comm.Endpoint interface visible to the
// package under analysis — declared in the package itself or anywhere
// in its import graph.  Returns nil when comm is unreachable, in which
// case the communication analyzers have nothing to check.
func endpointIface(pass *analysis.Pass) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		if p == nil || !pkgPathIs(p, commPkgPath) {
			return nil
		}
		obj := p.Scope().Lookup("Endpoint")
		if obj == nil {
			return nil
		}
		iface, _ := types.Unalias(obj.Type()).Underlying().(*types.Interface)
		return iface
	}
	if iface := lookup(pass.Pkg); iface != nil {
		return iface
	}
	seen := map[*types.Package]bool{}
	queue := []*types.Package{pass.Pkg}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p == nil || seen[p] {
			continue
		}
		seen[p] = true
		if iface := lookup(p); iface != nil {
			return iface
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}

// implementsEndpoint reports whether t (or *t) satisfies iface.
func implementsEndpoint(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// endpointMethodCall reports whether call invokes the named method on a
// value whose type implements the Endpoint interface, e.g.
// ep.GlobalSum(x) or h.EP.Exchange(...).
func endpointMethodCall(pass *analysis.Pass, iface *types.Interface, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	return implementsEndpoint(tv.Type, iface)
}

// collectiveCall returns the collective's method name when call is a
// GlobalSum/Barrier/Exchange invocation on an Endpoint value.
func collectiveCall(pass *analysis.Pass, iface *types.Interface, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !collectiveNames[sel.Sel.Name] {
		return "", false
	}
	if !endpointMethodCall(pass, iface, call, sel.Sel.Name) {
		return "", false
	}
	return sel.Sel.Name, true
}
