// Package lint is hyadeslint: project-specific static analyzers that
// machine-check the invariants the simulation's claims rest on.
//
// The des package promises that a simulation run is a deterministic
// function of its inputs — every timing figure in the paper regenerates
// bit-for-bit.  Nothing in the language enforces that promise; these
// analyzers do:
//
//	detsource   — no wall clock, no unseeded global randomness
//	nogoroutine — no raw goroutines past the coroutine baton
//	unitlit     — no unitless literals converted to units.Time/Bandwidth
//	schedpast   — no provably-negative or unclamped-delta schedule delays
//	maprange    — no map iteration in the event path
//	commlock    — no collectives unmatched across rank-dependent branches
//	dimcheck    — no arithmetic mixing units.Time/Bandwidth/Size dimensions
//	redorder    — no manual float accumulations feeding GlobalSum
//	execpure    — no comm/engine effects or global writes in Exec phases
//	capturealias — no engine-owned state captured by reference into Exec phases
//	hotalloc    — no event-path allocation sites beyond the committed budget
//	shareheap   — no rank-code writes to cross-rank shared heap (partition safety)
//
// detsource, schedpast, commlock, execpure, capturealias, hotalloc and
// shareheap are
// interprocedural: they run over the call graph and effect summaries
// of the package's import closure (internal/lint/callgraph and
// internal/lint/summary), so an effect hidden behind helper calls is
// found and reported with its full call chain.
//
// Each rule can be locally waived with the annotation
//
//	//lint:allow <rule> <reason>
//
// on, or immediately above, the offending line.  The waiver is the only
// escape hatch, and it is grep-able — reviewers can audit every
// exception to the determinism contract in one search.
package lint

import (
	"strings"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/load"
)

// Analyzers is the full suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	Detsource,
	Nogoroutine,
	Unitlit,
	Schedpast,
	Maprange,
	Commlock,
	Dimcheck,
	Redorder,
	Execpure,
	Capturealias,
	Hotalloc,
	Shareheap,
}

// Interprocedural marks the analyzers that consult pass.Module; a
// driver running none of them can skip building the module context.
var Interprocedural = map[*analysis.Analyzer]bool{
	Detsource:    true,
	Schedpast:    true,
	Commlock:     true,
	Execpure:     true,
	Capturealias: true,
	Hotalloc:     true,
	Shareheap:    true,
}

// simCorePackages hold simulation state or run inside the coroutine
// discipline; detsource and nogoroutine apply here.
var simCorePackages = []string{
	"hyades/internal/des",
	"hyades/internal/fault",
	"hyades/internal/arctic",
	"hyades/internal/startx",
	"hyades/internal/pci",
	"hyades/internal/node",
	"hyades/internal/comm",
	"hyades/internal/cluster",
	"hyades/internal/netmodel",
	"hyades/internal/mpistart",
	"hyades/internal/gcm",
}

// eventPathPackages are the hot event-dispatch packages where map
// iteration order could reorder simultaneous events; maprange applies
// here.
var eventPathPackages = []string{
	"hyades/internal/des",
	"hyades/internal/fault",
	"hyades/internal/arctic",
	"hyades/internal/comm",
	// The crash-recovery path: peer monitors (startx) and the crash /
	// respawn events (cluster) dispatch in engine context, where map
	// iteration order would reorder simultaneous events.
	"hyades/internal/startx",
	"hyades/internal/cluster",
}

func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// redorderPackages hold model code whose local reductions feed global
// sums; redorder applies here.  internal/gcm/reduce itself is the
// canonical implementation and contains no GlobalSum calls, so the
// rule's own GlobalSum precondition keeps it clean without a carve-out.
var redorderPackages = []string{
	"hyades/internal/gcm",
}

// hotallocPackages are the event-path packages under the allocation
// ratchet — the code the ROADMAP's zero-alloc scaling target runs
// through on every simulated message.
var hotallocPackages = []string{
	"hyades/internal/des",
	"hyades/internal/arctic",
	"hyades/internal/startx",
	"hyades/internal/comm",
	// The GCM kernels joined the ratchet when the flat-row rewrite
	// took their coupled step to zero steady-state allocations: every
	// sweep, the solver and the physics package now run out of
	// buffers bound at construction, and the budget keeps them there.
	"hyades/internal/gcm",
}

// shareheapPackages hold rank-spawning launchers and the rank bodies
// they run; the partition-safety certificate applies here.
var shareheapPackages = []string{
	"hyades/internal/des",
	"hyades/internal/cluster",
	"hyades/internal/netmodel",
	"hyades/internal/gcm",
}

// AnalyzersFor returns the analyzers that apply to the package with the
// given import path.  unitlit, schedpast and commlock guard call sites
// anywhere in the module; dimcheck everywhere except package units
// (whose accessor implementations are the sanctioned raw conversions);
// the other rules are scoped to the simulation core.
func AnalyzersFor(importPath string) []*analysis.Analyzer {
	var as []*analysis.Analyzer
	if underAny(importPath, simCorePackages) {
		as = append(as, Detsource, Nogoroutine)
	}
	as = append(as, Unitlit, Schedpast)
	if underAny(importPath, eventPathPackages) {
		as = append(as, Maprange)
	}
	as = append(as, Commlock)
	if importPath != unitsPkgPath {
		as = append(as, Dimcheck)
	}
	if underAny(importPath, redorderPackages) {
		as = append(as, Redorder)
	}
	as = append(as, Execpure, Capturealias)
	if underAny(importPath, hotallocPackages) {
		as = append(as, Hotalloc)
	}
	if underAny(importPath, shareheapPackages) {
		as = append(as, Shareheap)
	}
	return as
}

// Check runs every applicable analyzer over pkg and returns the merged,
// position-sorted findings, building interprocedural context from the
// package's import closure.
func Check(pkg *load.Package) ([]analysis.Diagnostic, error) {
	return CheckWith(pkg, AnalyzersFor(pkg.Path), ModuleFor(pkg))
}

// CheckWith runs the given analyzers over pkg with explicit module
// context (nil runs the interprocedural rules intraprocedurally).
func CheckWith(pkg *load.Package, as []*analysis.Analyzer, m *Module) ([]analysis.Diagnostic, error) {
	var all []analysis.Diagnostic
	for _, a := range as {
		var mod interface{}
		if m != nil {
			mod = m
		}
		diags, err := analysis.RunPassMod(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, mod)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	analysis.Sort(pkg.Fset, all)
	return all, nil
}
