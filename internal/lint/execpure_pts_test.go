package lint

import (
	"go/ast"
	"strings"
	"testing"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/load"
	"hyades/internal/lint/pointsto"
	"hyades/internal/lint/summary"
)

// TestExecpureUnverifiableDecreases pins the acceptance criterion of
// the points-to upgrade: on the same fixture, the number of "cannot
// statically resolve" findings is strictly smaller under the
// points-to-refined pipeline than under CHA alone, and no impurity
// finding is lost in the trade.
func TestExecpureUnverifiableDecreases(t *testing.T) {
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/src/execpure", "execpure")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.Errors)
	}

	run := func(m *Module) (unresolvable, impure int) {
		t.Helper()
		diags, err := analysis.RunPassMod(Execpure, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, m)
		if err != nil {
			t.Fatalf("execpure: %v", err)
		}
		for _, d := range diags {
			switch {
			case strings.Contains(d.Message, "cannot statically resolve"):
				unresolvable++
			case strings.Contains(d.Message, "not engine-pure"):
				impure++
			}
		}
		return unresolvable, impure
	}

	// CHA-only: the graph as built, no points-to, no refinement.
	chaGraph := callgraph.Build(pkg.Closure())
	chaUnres, chaImpure := run(&Module{
		Graph:     chaGraph,
		Summaries: summary.Compute(chaGraph),
	})

	// Full pipeline, as ModuleFor wires it.
	g := callgraph.Build(pkg.Closure())
	pts := pointsto.Analyze(g)
	g.Refine(func(call *ast.CallExpr) ([]*callgraph.Node, bool) {
		r := pts.Resolution(call)
		if r == nil || r.Incomplete {
			return nil, false
		}
		return r.Callees, true
	})
	ptsUnres, ptsImpure := run(&Module{
		Graph:     g,
		Points:    pts,
		Summaries: summary.Compute(g),
	})

	if ptsUnres >= chaUnres {
		t.Errorf("unverifiable findings: points-to %d, CHA %d; want a strict decrease", ptsUnres, chaUnres)
	}
	// The genuinely escaping sites (exported-function parameters) must
	// survive: points-to may not claim completeness it cannot prove.
	if ptsUnres == 0 {
		t.Errorf("unverifiable findings dropped to zero: escaping func values must stay flagged")
	}
	// Resolution converts unverifiable sites into checked ones; the
	// impure set can only grow (resolvedVar/resolvedField now carry
	// witness chains).
	if ptsImpure < chaImpure {
		t.Errorf("impure findings: points-to %d, CHA %d; resolution must not lose findings", ptsImpure, chaImpure)
	}
}
