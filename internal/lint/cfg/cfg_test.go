package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src (a function body wrapped in a file) and returns the
// graph of the first function declaration.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// blockWithCall finds the reachable block containing a call to name.
func blockWithCall(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no reachable block calls %s", name)
	return nil
}

func TestIfElse(t *testing.T) {
	g := build(t, `
	if cond() {
		a()
	} else {
		b()
	}
	c()`)
	condBlk := blockWithCall(t, g, "cond")
	if len(condBlk.Succs) != 2 {
		t.Fatalf("cond block has %d successors, want 2", len(condBlk.Succs))
	}
	arms := map[int]bool{}
	for _, e := range condBlk.Succs {
		if e.Branch == nil {
			t.Errorf("if edge missing Branch")
		}
		arms[e.Arm] = true
	}
	if !arms[0] || !arms[1] {
		t.Errorf("if arms = %v, want {0,1}", arms)
	}
	merge := blockWithCall(t, g, "c")
	if len(merge.Preds) != 2 {
		t.Errorf("merge has %d preds, want 2", len(merge.Preds))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `
	if cond() {
		a()
	}
	c()`)
	condBlk := blockWithCall(t, g, "cond")
	if len(condBlk.Succs) != 2 {
		t.Fatalf("cond block has %d successors, want 2 (then + skip)", len(condBlk.Succs))
	}
}

func TestEarlyReturn(t *testing.T) {
	g := build(t, `
	if cond() {
		return
	}
	c()`)
	after := blockWithCall(t, g, "c")
	// Only the skip edge reaches c: the then-arm went to Exit.
	if len(after.Preds) != 1 {
		t.Fatalf("block after early return has %d preds, want 1", len(after.Preds))
	}
	e := after.Preds[0]
	if e.Branch == nil || e.Arm != 1 {
		t.Errorf("surviving edge = (branch %v, arm %d), want the skip arm 1", e.Branch, e.Arm)
	}
	if len(g.Exit.Preds) != 2 { // the return and the fallthrough off the end
		t.Errorf("Exit has %d preds, want 2", len(g.Exit.Preds))
	}
}

func TestForLoop(t *testing.T) {
	g := build(t, `
	for i := 0; i < n(); i++ {
		body()
	}
	after()`)
	head := blockWithCall(t, g, "n")
	bodyBlk := blockWithCall(t, g, "body")
	afterBlk := blockWithCall(t, g, "after")
	var bodyArm, exitArm bool
	for _, e := range head.Succs {
		if e.To == bodyBlk && e.Arm == 0 {
			bodyArm = true
		}
		if e.Arm == 1 {
			exitArm = true
		}
	}
	if !bodyArm || !exitArm {
		t.Errorf("loop head missing body/exit arms")
	}
	// A back edge must reach the head again (via the post block).
	if len(head.Preds) < 2 {
		t.Errorf("loop head has %d preds, want entry + back edge", len(head.Preds))
	}
	if len(afterBlk.Preds) != 1 {
		t.Errorf("after-loop block has %d preds, want 1", len(afterBlk.Preds))
	}
}

func TestRangeAndBreak(t *testing.T) {
	g := build(t, `
	for range xs() {
		if stop() {
			break
		}
		body()
	}
	after()`)
	afterBlk := blockWithCall(t, g, "after")
	// Exit arm of the range plus the break both land on after.
	if len(afterBlk.Preds) != 2 {
		t.Errorf("after-loop block has %d preds, want 2 (range exit + break)", len(afterBlk.Preds))
	}
}

func TestSwitch(t *testing.T) {
	g := build(t, `
	switch tag() {
	case 1:
		a()
	case 2:
		b()
	}
	after()`)
	condBlk := blockWithCall(t, g, "tag")
	// Two cases plus the implicit no-default arm.
	if len(condBlk.Succs) != 3 {
		t.Fatalf("switch cond has %d successors, want 3", len(condBlk.Succs))
	}
	arms := map[int]bool{}
	for _, e := range condBlk.Succs {
		arms[e.Arm] = true
	}
	if !arms[0] || !arms[1] || !arms[2] {
		t.Errorf("switch arms = %v, want {0,1,2}", arms)
	}
	afterBlk := blockWithCall(t, g, "after")
	if len(afterBlk.Preds) != 3 {
		t.Errorf("post-switch block has %d preds, want 3", len(afterBlk.Preds))
	}
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, `
	if cond() {
		panic("boom")
	}
	c()`)
	after := blockWithCall(t, g, "c")
	if len(after.Preds) != 1 {
		t.Errorf("block after panic arm has %d preds, want 1", len(after.Preds))
	}
}

func TestFuncLitOpaque(t *testing.T) {
	g := build(t, `
	f := func() {
		inner()
	}
	f()`)
	// The literal's body is not decomposed: no block's Nodes list holds
	// the inner() ExprStmt directly (it stays inside the FuncLit node).
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "inner" {
						t.Errorf("FuncLit body was decomposed into the outer graph")
					}
				}
			}
		}
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := build(t, `
	return
	dead()`)
	deadBlk := func() *Block {
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				found := false
				ast.Inspect(n, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && id.Name == "dead" {
						found = true
					}
					return true
				})
				if found {
					return b
				}
			}
		}
		return nil
	}()
	if deadBlk == nil {
		t.Fatal("dead() not represented")
	}
	if g.Reachable()[deadBlk] {
		t.Errorf("statement after return is reachable")
	}
}
