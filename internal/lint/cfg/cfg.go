// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, using only the standard library.
//
// The graph is deliberately simple: a Block is a maximal run of
// straight-line statements, and an Edge carries the branch statement
// and arm index it came from, so dataflow clients (internal/lint/dataflow)
// can attach per-arm facts — e.g. "this block executes only on the
// then-arm of that if".  Control statements themselves are decomposed:
// a block's Nodes list holds leaf statements plus the condition
// expressions evaluated in the block, never an *ast.IfStmt or loop as a
// whole, so a client walking Nodes visits every expression exactly once.
//
// Nested function literals are treated as opaque expressions: their
// bodies are NOT part of the enclosing graph.  Build a separate graph
// per literal if the client needs one.
//
// Supported control flow: if/else chains, for and range loops
// (including init/cond/post), switch, type switch and select (one arm
// per case, an implicit arm for a missing default), labeled break /
// continue / goto / fallthrough, return, and panic(...) statements,
// which are treated as terminators to Exit.  Statements after a
// terminator start a fresh block with no predecessors, so unreachable
// code is representable but visibly unreachable (no path from Entry).
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block // synthetic: every return/panic/fallthrough-to-end edge lands here
	// Blocks lists every block, Entry and Exit included, in creation
	// order (deterministic for a given AST).
	Blocks []*Block
}

// A Block is a straight-line run of nodes with a single entry.
type Block struct {
	Index int
	// Nodes holds the leaf statements executed in the block and the
	// condition expressions evaluated in it (if/for conditions, switch
	// tags and case expressions, range operands).
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// An Edge is one control transfer.
type Edge struct {
	From, To *Block
	// Branch is the controlling statement (*ast.IfStmt, *ast.ForStmt,
	// *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt or
	// *ast.SelectStmt) when the edge is one arm of a multi-way
	// transfer, nil for unconditional edges.
	Branch ast.Node
	// Arm is the 0-based arm index under Branch (if: 0 = then, 1 =
	// else; loops: 0 = body, 1 = exit; switch/select: clause index,
	// with one extra arm for a missing default), or -1 when Branch is
	// nil.
	Arm int
}

// New builds the graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmts(body.List)
	b.jump(b.g.Exit)
	for _, p := range b.gotos {
		if target, ok := b.labels[p.label]; ok {
			b.edge(p.from, target, nil, -1)
		}
	}
	return b.g
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range blk.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// breakable is one enclosing construct break (and possibly continue)
// can target.
type breakable struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil unless a loop
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g        *Graph
	cur      *Block // nil after a terminator (dead position)
	stack    []breakable
	labels   map[string]*Block
	gotos    []pendingGoto
	fallInto *Block // fallthrough target while building a switch case
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, branch ast.Node, arm int) {
	if from == nil {
		return
	}
	e := &Edge{From: from, To: to, Branch: branch, Arm: arm}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// add appends a leaf node to the current block, reviving a dead
// position into a fresh (unreachable) block.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump closes the current block with an unconditional edge to target
// and leaves the position dead.
func (b *builder) jump(to *Block) {
	b.edge(b.cur, to, nil, -1)
	b.cur = nil
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.cur
		if cond == nil { // dead position: revive so arms hang together
			cond = b.newBlock()
			b.cur = cond
		}
		merge := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then, s, 0)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els, s, 1)
			b.cur = then
			b.stmt(s.Body, "")
			b.jump(merge)
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(merge)
		} else {
			b.edge(cond, merge, s, 1)
			b.cur = then
			b.stmt(s.Body, "")
			b.jump(merge)
		}
		b.cur = merge

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		body := b.newBlock()
		exit := b.newBlock()
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, body, s, 0)
			b.edge(head, exit, s, 1)
		} else {
			b.edge(head, body, nil, -1)
		}
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		b.stack = append(b.stack, breakable{label: label, breakTo: exit, continueTo: contTo})
		b.cur = body
		b.stmt(s.Body, "")
		if post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
		}
		b.jump(head)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = exit

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body, s, 0)
		b.edge(head, exit, s, 1)
		b.stack = append(b.stack, breakable{label: label, breakTo: exit, continueTo: head})
		b.cur = body
		b.stmt(s.Body, "")
		b.jump(head)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchLike(s, label, s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s, label, s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		b.switchLike(s, label, nil, nil, nil, s.Body)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			for i := len(b.stack) - 1; i >= 0; i-- {
				if s.Label == nil || b.stack[i].label == s.Label.Name {
					b.jump(b.stack[i].breakTo)
					return
				}
			}
			b.cur = nil
		case token.CONTINUE:
			for i := len(b.stack) - 1; i >= 0; i-- {
				if b.stack[i].continueTo != nil &&
					(s.Label == nil || b.stack[i].label == s.Label.Name) {
					b.jump(b.stack[i].continueTo)
					return
				}
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil && s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fallInto != nil {
				b.jump(b.fallInto)
			} else {
				b.cur = nil
			}
		}

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.jump(lbl)
		b.labels[s.Label.Name] = lbl
		b.cur = lbl
		b.stmt(s.Stmt, s.Label.Name)

	default:
		// Leaf statements: assignments, declarations, expression
		// statements, send, inc/dec, defer, go, empty.
		b.add(s)
		if es, ok := s.(*ast.ExprStmt); ok && isPanic(es.X) {
			b.jump(b.g.Exit)
		}
	}
}

// switchLike builds switch, type-switch and select: one condition
// block fanning out to one arm per clause, plus an implicit arm to the
// merge when there is no default clause.
func (b *builder) switchLike(branch ast.Node, label string, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	b.add(init)
	b.add(tag)
	b.add(assign)
	cond := b.cur
	if cond == nil {
		cond = b.newBlock()
		b.cur = cond
	}
	merge := b.newBlock()
	var caseBlocks []*Block
	var caseBodies [][]ast.Stmt
	hasDefault := false
	for _, cs := range body.List {
		blk := b.newBlock()
		caseBlocks = append(caseBlocks, blk)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				cond.Nodes = append(cond.Nodes, e)
			}
			caseBodies = append(caseBodies, cs.Body)
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
				caseBodies = append(caseBodies, cs.Body)
			} else {
				caseBodies = append(caseBodies, append([]ast.Stmt{cs.Comm}, cs.Body...))
			}
		}
	}
	for i, blk := range caseBlocks {
		b.edge(cond, blk, branch, i)
	}
	if !hasDefault {
		b.edge(cond, merge, branch, len(caseBlocks))
	}
	b.stack = append(b.stack, breakable{label: label, breakTo: merge})
	savedFall := b.fallInto
	for i, blk := range caseBlocks {
		b.fallInto = nil
		if i+1 < len(caseBlocks) {
			b.fallInto = caseBlocks[i+1]
		}
		b.cur = blk
		b.stmts(caseBodies[i])
		b.jump(merge)
	}
	b.fallInto = savedFall
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = merge
}

// isPanic reports whether e is a call to the predeclared panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
