package baseline

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hyades/internal/lint/emit"
)

func finding(file, analyzer, msg string, line int) emit.Finding {
	return emit.Finding{File: file, Line: line, Col: 1, Analyzer: analyzer, Message: msg}
}

func TestRoundTripByteStable(t *testing.T) {
	b := New([]emit.Finding{
		finding("internal/des/engine.go", "detsource", "wall clock", 10),
		finding("internal/des/engine.go", "detsource", "wall clock", 40),
		finding("internal/comm/comm.go", "commlock", "unmatched collective", 7),
	})
	first := b.Marshal()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	second := loaded.Marshal()
	if !bytes.Equal(first, second) {
		t.Errorf("round trip not byte-stable:\n%s\nvs\n%s", first, second)
	}
	if len(loaded.Entries) != 2 {
		t.Fatalf("want 2 merged entries, got %d", len(loaded.Entries))
	}
	// Identical findings merge into a counted entry; entries sort by
	// (file, analyzer, message).
	if e := loaded.Entries[0]; e.File != "internal/comm/comm.go" || e.Count != 1 {
		t.Errorf("entry 0 = %+v", e)
	}
	if e := loaded.Entries[1]; e.File != "internal/des/engine.go" || e.Count != 2 {
		t.Errorf("entry 1 = %+v", e)
	}
}

func TestLoadMissingIsEmpty(t *testing.T) {
	b, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing file must not error: %v", err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("missing file must suppress nothing, got %v", b.Entries)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"syntax.json": `{"version": 1, "entries": [`,
		"hole.json":   `{"version": 1, "entries": [{"file": "a.go", "analyzer": "", "message": "m", "count": 1}]}`,
		"count.json":  `{"version": 1, "entries": [{"file": "a.go", "analyzer": "x", "message": "m", "count": 0}]}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: malformed baseline loaded without error", name)
		}
	}
}

func TestFilter(t *testing.T) {
	b := New([]emit.Finding{
		finding("a.go", "detsource", "wall clock", 10),
	})
	fresh, suppressed := b.Filter([]emit.Finding{
		finding("a.go", "detsource", "wall clock", 12), // line moved: still suppressed
		finding("a.go", "detsource", "wall clock", 30), // second identical: over allowance
		finding("b.go", "detsource", "wall clock", 10), // different file: fresh
	})
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if len(fresh) != 2 || fresh[0].Line != 30 || fresh[1].File != "b.go" {
		t.Errorf("fresh = %+v", fresh)
	}
}

func TestFilterEmptyBaseline(t *testing.T) {
	b := &Baseline{Version: 1}
	fs := []emit.Finding{finding("a.go", "maprange", "map iteration", 3)}
	fresh, suppressed := b.Filter(fs)
	if suppressed != 0 || len(fresh) != 1 {
		t.Errorf("empty baseline must pass everything through: fresh=%v suppressed=%d", fresh, suppressed)
	}
}
