// Package baseline reads and writes the committed findings baseline
// (lint/baseline.json): the set of pre-existing hyadeslint findings a
// tree is allowed to carry while they are being burned down.
//
// The baseline turns the linter into a ratchet for legacy debt: CI
// runs hyadeslint with -baseline, findings recorded in the file are
// suppressed, and only new findings fail the build.  An entry's
// identity is (file, analyzer, message) — deliberately not the line
// number, so unrelated edits that shift code do not invalidate the
// baseline — with a count, so two identical findings in one file
// consume two allowances.  Fixing a baselined finding and
// regenerating (-writebaseline) shrinks the file; it can only grow by
// an explicit, reviewable commit.  The encoding is byte-stable
// (sorted entries, fixed indentation, trailing newline) so
// regenerating an unchanged baseline is a no-op in the diff.
package baseline

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"hyades/internal/lint/emit"
)

// An Entry is one accepted pre-existing finding (or several identical
// ones, via Count).
type Entry struct {
	File     string `json:"file"` // module-relative, forward slashes
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// key is the identity findings are matched on.
func (e Entry) key() [3]string { return [3]string{e.File, e.Analyzer, e.Message} }

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// New aggregates findings into a baseline, merging identical
// (file, analyzer, message) triples into counted entries.
func New(fs []emit.Finding) *Baseline {
	counts := map[[3]string]int{}
	for _, f := range fs {
		counts[[3]string{f.File, f.Analyzer, f.Message}]++
	}
	b := &Baseline{Version: 1, Entries: make([]Entry, 0, len(counts))}
	for k, n := range counts {
		b.Entries = append(b.Entries, Entry{File: k[0], Analyzer: k[1], Message: k[2], Count: n})
	}
	b.sort()
	return b
}

func (b *Baseline) sort() {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
}

// Load reads a baseline file.  A missing file yields an empty
// baseline (nothing suppressed), which is the strictest possible
// setting.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline: %s: %v", path, err)
	}
	for i, e := range b.Entries {
		if e.File == "" || e.Analyzer == "" || e.Message == "" || e.Count < 1 {
			return nil, fmt.Errorf("baseline: %s: entry %d is malformed (file, analyzer, message and a positive count are required)", path, i)
		}
	}
	return &b, nil
}

// Filter splits findings into those not covered by the baseline (the
// ones that should fail the run) and the number suppressed.  Each
// entry's count is an allowance: with count 1 and two identical
// findings, the second is fresh.  Findings keep their input order.
func (b *Baseline) Filter(fs []emit.Finding) (fresh []emit.Finding, suppressed int) {
	left := map[[3]string]int{}
	for _, e := range b.Entries {
		left[e.key()] += e.Count
	}
	fresh = fs[:0:0]
	for _, f := range fs {
		k := [3]string{f.File, f.Analyzer, f.Message}
		if left[k] > 0 {
			left[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed
}

// Marshal renders the baseline byte-stably: entries sorted by (file,
// analyzer, message), two-space indentation, trailing newline.
func (b *Baseline) Marshal() []byte {
	b.sort()
	if b.Entries == nil {
		b.Entries = []Entry{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		// A slice of string/int structs cannot fail to marshal.
		panic(err)
	}
	return append(data, '\n')
}

// Write saves the baseline to path.
func (b *Baseline) Write(path string) error {
	return os.WriteFile(path, b.Marshal(), 0o644)
}
