package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/load"
	"hyades/internal/lint/summary"
)

// Hotalloc is the allocation ratchet for the event path.  The ROADMAP's
// scaling target (1,024-4,096 simulated nodes) needs Exchange and
// GlobalSum at ~zero allocations per operation; this rule makes the
// current allocation footprint a committed number that can only go
// down.
//
// For each event-path package it counts the statically visible
// heap-allocation sites (per the summary catalogue, after escape-lite
// suppression): the package's own sites, plus one site per call into
// allocating code outside the event path.  Calls into other event-path
// packages are not counted here — they are counted in the package that
// owns them, so every site is attributed to exactly one budget line.
//
// The measured count is compared to lint/allocbudget.json.  At or
// under budget the rule is silent; over budget it reports the
// heaviest unwaived sites — ranked by how many allocation sites each
// one reaches — and only as many as the overage demands, so the
// report is the minimal worklist that gets the package back under its
// ratchet.  Lowering a budget
// below the measured count is how an optimization gets locked in (and
// is exactly what the CI stage checks).  //lint:allow hotalloc waives
// a site out of the count — the escape hatch for allocations that are
// deliberate (error paths, one-time setup reached from the event
// path).
//
// Soundness notes: the count covers the analyzed module only —
// allocations inside the standard library (fmt, sort) are invisible,
// as is anything behind an unresolvable func value; and escape-lite is
// a heuristic, so a site it suppresses may still heap-allocate under a
// weaker compiler.  The ratchet bounds regressions in what is visible;
// the bench stage's allocs/op is the ground truth it tracks toward.
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "event-path allocation sites must not exceed the committed lint/allocbudget.json budget",
	Run:  runHotalloc,
}

func runHotalloc(pass *analysis.Pass) (interface{}, error) {
	m := moduleOf(pass)
	if m == nil {
		return nil, nil
	}
	cands := hotallocCands(m, pass.Pkg)
	// Waived sites leave the count entirely: the budget covers what the
	// ratchet actually tracks.
	allowed := analysis.AllowMatcher(pass.Fset, pass.Files)
	unwaived := cands[:0]
	for _, c := range cands {
		if !allowed(c.pos, "hotalloc") {
			unwaived = append(unwaived, c)
		}
	}
	measured := len(unwaived)
	budget := m.Budget.Packages[pass.Pkg.Path()]
	if measured <= budget {
		return nil, nil
	}
	// Over budget: rank by weight (reachable allocation sites), heaviest
	// first, position as the deterministic tie-break, and report the top
	// N where N is the overage (capped so a fresh package does not drown
	// the findings list).  Fixing the reported sites — or waiving them
	// with justification — is exactly enough to satisfy the ratchet.
	sort.SliceStable(unwaived, func(i, j int) bool {
		if unwaived[i].weight != unwaived[j].weight {
			return unwaived[i].weight > unwaived[j].weight
		}
		return unwaived[i].pos < unwaived[j].pos
	})
	n := measured - budget
	if n > hotallocTopN {
		n = hotallocTopN
	}
	for i, c := range unwaived[:n] {
		pass.Reportf(c.pos, "%s; package %s is over its allocation budget (%d sites measured, budget %d in %s; top site %d/%d, weight %d)",
			c.msg, pass.Pkg.Path(), measured, budget, budgetName(m), i+1, n, c.weight)
	}
	return nil, nil
}

// hotallocTopN caps the number of ranked sites reported for one
// over-budget package.
const hotallocTopN = 20

// hotallocCand is one countable allocation site with its report text
// and ranking weight (the number of allocation sites the call reaches;
// 1 for a direct allocation).
type hotallocCand struct {
	pos    token.Pos
	msg    string
	weight int
}

// hotallocCands collects the package's countable sites: its own
// allocation sites plus one per call into allocating code outside the
// event path.
func hotallocCands(m *Module, tpkg *types.Package) []hotallocCand {
	s := m.Summaries
	var cands []hotallocCand
	for _, n := range m.packageNodes(tpkg) {
		in := s.Of(n)
		for _, a := range in.Allocs {
			cands = append(cands, hotallocCand{
				pos:    a.Pos,
				msg:    fmt.Sprintf("event-path heap allocation in %s: %s", n, a.What),
				weight: 1,
			})
		}
		for _, site := range n.Sites {
			if s.ForwardsParam(n, site) {
				continue
			}
			for _, c := range site.Callees {
				if c.Pkg == n.Pkg || underAny(c.Pkg.Path, hotallocPackages) {
					continue // counted in its own package (or this one)
				}
				if !s.Of(c).Effects.Has(summary.Alloc) {
					continue
				}
				cands = append(cands, hotallocCand{
					pos: site.Pos(),
					msg: fmt.Sprintf("call from %s allocates outside the event path (%d reachable sites): %s",
						n, s.ReachableAllocCount(c), s.ChainString(c, summary.Alloc)),
					weight: s.ReachableAllocCount(c),
				})
				break // one candidate per call site
			}
		}
	}
	return cands
}

// MeasureAlloc returns hotalloc's measured (unwaived) site count for
// pkg under module context m — the number the committed budget must
// meet or exceed, and the number -writebudget records.
func MeasureAlloc(pkg *load.Package, m *Module) int {
	allowed := analysis.AllowMatcher(pkg.Fset, pkg.Files)
	measured := 0
	for _, c := range hotallocCands(m, pkg.Types) {
		if !allowed(c.pos, "hotalloc") {
			measured++
		}
	}
	return measured
}

// budgetName renders the budget file for messages without leaking
// absolute paths into findings (keeps output machine-stable).
func budgetName(m *Module) string {
	if m.BudgetPath == "" {
		return "allocbudget.json"
	}
	// Last two path segments are enough to identify the file.
	path := m.BudgetPath
	sep := 0
	for i := len(path) - 1; i >= 0 && sep < 2; i-- {
		if path[i] == '/' || path[i] == '\\' {
			sep++
			if sep == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
