// Package sumfix exercises the effect-summary fixpoint against the
// real des and units packages.
package sumfix

import (
	"time"

	"hyades/internal/des"
	"hyades/internal/units"
)

// WallDeep reaches time.Now through one helper: the WallClock effect
// must propagate with a two-frame witness chain.
func WallDeep() time.Time { return wallHelper() }

func wallHelper() time.Time { return time.Now() }

// DelayFwd forwards its parameter d into a Schedule delay slot;
// DelayFwd2 one level further.
func DelayFwd(e *des.Engine, d units.Time) { e.Schedule(d, func() {}) }

func DelayFwd2(e *des.Engine, d units.Time) { DelayFwd(e, d) }

// Offload forwards its func parameter to the Proc.Exec boundary;
// Offload2 transitively.
func Offload(p *des.Proc, fn func()) { p.Exec(0, fn) }

func Offload2(p *des.Proc, fn func()) { Offload(p, fn) }

// SendIt touches a mailbox directly; SendDeep only through it.
func SendIt(m *des.Mailbox[int]) { m.Send(1) }

func SendDeep(m *des.Mailbox[int]) { SendIt(m) }

var counter int

// Bump writes package-level state.
func Bump() { counter++ }

// Escaping returns its slice: the make site must survive escape-lite.
func Escaping() []int {
	xs := make([]int, 4)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// LocalOnly keeps its slice function-local with only benign uses: the
// make site must be suppressed.
func LocalOnly() int {
	xs := make([]int, 4)
	for i := range xs {
		xs[i] = i
	}
	return xs[0] + len(xs)
}

// Boxer boxes an int into an interface parameter.
func Boxer(sink func(any)) { sink(42 + counter) }

// Recur is self-recursive and reaches time.Now: the fixpoint must
// still converge and produce a finite chain.
func Recur(n int) int {
	if n <= 0 {
		return int(time.Now().Unix())
	}
	return Recur(n - 1)
}
