// Package summary computes per-function effect summaries over a
// callgraph.Graph: which communication, engine and allocation effects
// each body can reach, with a witness chain from the body to a
// concrete offending site.
//
// Summaries are bitsets joined by a bottom-up (SCC-ordered) fixpoint,
// so recursion converges and a caller's summary is the union of its
// direct effects and its callees'.  Each effect carries one witness —
// either a direct site ("this line calls time.Now") or a call edge
// ("this line calls a function that eventually does") — recorded the
// first time the effect appears, which makes chain reconstruction
// well-founded even inside cycles.
//
// Two deliberate precision choices, documented here because the
// analyzers inherit them:
//
//   - calls through a *parameter* of the enclosing function (or of an
//     enclosing literal) propagate nothing: the effect belongs to the
//     argument at each call site, and attributing every address-taken
//     function's effects to a higher-order forwarder like
//     comm.Serial.Exec would drown the module in false positives.
//     The ExecParams facts track exactly these forwarding slots so
//     the execpure analyzer can check the real closure at each site.
//   - escape-lite: an allocation whose result lands in a single local
//     used only in benign positions (indexing, field access, len/cap,
//     copy, range, reassignment, self-append) is suppressed — the
//     compiler will stack-allocate it or the site is at worst
//     per-call-constant.  Anything aliased, returned, captured or
//     passed on counts.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hyades/internal/lint/callgraph"
)

// Effect is a bitset of behaviours a function may reach.
type Effect uint32

const (
	WallClock   Effect = 1 << iota // time.Now &c, unseeded global rand
	Send                           // point-to-point transmit
	Recv                           // point-to-point receive (blocking)
	Exchange                       // Endpoint.Exchange collective
	GlobalSum                      // Endpoint.GlobalSum collective
	Barrier                        // Endpoint.Barrier collective
	Delay                          // Proc.Delay / Endpoint.Busy
	Schedule                       // Engine.Schedule/ScheduleAt/After
	Now                            // virtual-clock read
	Exec                           // Proc.Exec / Endpoint.Exec offload
	GlobalWrite                    // write to package-level state
	Alloc                          // heap-allocation site

	numEffects = 12
)

// CommEffects are the point-to-point and collective communication bits.
const CommEffects = Send | Recv | Exchange | GlobalSum | Barrier

// EngineEffects are the event-engine interaction bits.
const EngineEffects = Delay | Schedule | Now | Exec

// Has reports whether e contains every bit of mask.
func (e Effect) Has(mask Effect) bool { return e&mask == mask }

// Each calls fn for every set bit, lowest first.
func (e Effect) Each(fn func(Effect)) {
	for i := 0; i < numEffects; i++ {
		if bit := Effect(1 << i); e&bit != 0 {
			fn(bit)
		}
	}
}

// String names a single effect bit for diagnostics.
func (e Effect) String() string {
	switch e {
	case WallClock:
		return "wall-clock/randomness"
	case Send:
		return "message send"
	case Recv:
		return "message receive"
	case Exchange:
		return "Exchange collective"
	case GlobalSum:
		return "GlobalSum collective"
	case Barrier:
		return "Barrier collective"
	case Delay:
		return "virtual-time delay"
	case Schedule:
		return "event scheduling"
	case Now:
		return "virtual-clock read"
	case Exec:
		return "nested Exec offload"
	case GlobalWrite:
		return "package-level state write"
	case Alloc:
		return "heap allocation"
	}
	var parts []string
	e.Each(func(bit Effect) { parts = append(parts, bit.String()) })
	return strings.Join(parts, "+")
}

// A Witness records why one effect bit is set on one node: a direct
// site (Callee nil, What names the primitive) or a call edge into
// Callee at Pos.
type Witness struct {
	Pos    token.Pos
	Callee *callgraph.Node
	What   string
}

// A DelayFlow records that a parameter flows into a Schedule delay
// argument: directly (Callee nil, What names the primitive) or through
// CalleeParam of Callee.
type DelayFlow struct {
	Pos         token.Pos
	Callee      *callgraph.Node
	CalleeParam int
	What        string
}

// An AllocSite is one surviving (post-escape-lite) allocation.
type AllocSite struct {
	Pos  token.Pos
	What string // e.g. "slice literal", "interface boxing of int"
}

// Info is one node's summary.
type Info struct {
	Node    *callgraph.Node
	Effects Effect
	Witness map[Effect]Witness

	// DelayParams maps parameter index -> how that parameter reaches a
	// Schedule delay slot.
	DelayParams map[int]DelayFlow
	// ExecParams marks parameter indices whose func-typed value is
	// forwarded to an offload boundary (Proc.Exec / Endpoint.Exec).
	ExecParams map[int]bool
	// Allocs are the node's own surviving allocation sites, in source
	// order.
	Allocs []AllocSite

	params []*types.Var // declared parameters, positionally (nil for unnamed)
}

// A Set holds the summaries of one graph.
type Set struct {
	Graph *callgraph.Graph
	// Endpoint is the comm.Endpoint interface visible to the analyzed
	// set, or nil.
	Endpoint *types.Interface

	infos []*Info
}

// Of returns n's summary.
func (s *Set) Of(n *callgraph.Node) *Info { return s.infos[n.Index] }

// ForFunc returns the summary of a declared function, or nil.
func (s *Set) ForFunc(fn *types.Func) *Info {
	if n := s.Graph.FuncNode(fn); n != nil {
		return s.infos[n.Index]
	}
	return nil
}

// ForLit returns the summary of a function literal, or nil.
func (s *Set) ForLit(lit *ast.FuncLit) *Info {
	if n := s.Graph.LitNode(lit); n != nil {
		return s.infos[n.Index]
	}
	return nil
}

// Compute builds the summaries for g.
func Compute(g *callgraph.Graph) *Set {
	s := &Set{
		Graph:    g,
		Endpoint: findEndpoint(g),
		infos:    make([]*Info, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		s.infos[n.Index] = s.direct(n)
	}
	// Bottom-up fixpoint: SCCs arrive callees-first, so one converged
	// inner loop per component suffices.
	for _, comp := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if s.update(n) {
					changed = true
				}
			}
		}
	}
	return s
}

// findEndpoint locates the comm.Endpoint interface in the analyzed
// packages or their imports.
func findEndpoint(g *callgraph.Graph) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		if p == nil || !callgraph.PkgPathIs(p, "hyades/internal/comm") {
			return nil
		}
		obj := p.Scope().Lookup("Endpoint")
		if obj == nil {
			return nil
		}
		iface, _ := types.Unalias(obj.Type()).Underlying().(*types.Interface)
		return iface
	}
	seen := map[*types.Package]bool{}
	var queue []*types.Package
	for _, pkg := range g.Packages {
		queue = append(queue, pkg.Types)
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p == nil || seen[p] {
			continue
		}
		seen[p] = true
		if iface := lookup(p); iface != nil {
			return iface
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}

// implementsEndpoint reports whether t (or *t) satisfies the set's
// Endpoint interface.
func (s *Set) implementsEndpoint(t types.Type) bool {
	if t == nil || s.Endpoint == nil {
		return false
	}
	if iface, ok := types.Unalias(t).Underlying().(*types.Interface); ok && iface == s.Endpoint {
		return true
	}
	return types.Implements(t, s.Endpoint) || types.Implements(types.NewPointer(t), s.Endpoint)
}

// ---- direct facts ----

// direct computes n's summary before propagation: primitive effects at
// its own sites, allocation sites, global writes, and the Exec/Delay
// parameter seeds.
func (s *Set) direct(n *callgraph.Node) *Info {
	in := &Info{
		Node:        n,
		Witness:     map[Effect]Witness{},
		DelayParams: map[int]DelayFlow{},
		ExecParams:  map[int]bool{},
		params:      paramVars(n),
	}
	// Seed ExecParams: the offload primitives themselves.
	if n.Func != nil && s.isExecMethod(n.Func) {
		sig := n.Func.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
				in.ExecParams[i] = true
			}
		}
	}
	for _, site := range n.Sites {
		if eff, what := s.primitiveEffect(n, site); eff != 0 {
			s.add(in, eff, Witness{Pos: site.Pos(), What: what})
		}
		s.seedDelay(n, in, site)
	}
	s.bareRefs(n, in)
	s.globalWrites(n, in)
	in.Allocs = s.collectAllocs(n)
	if len(in.Allocs) > 0 {
		s.add(in, Alloc, Witness{Pos: in.Allocs[0].Pos, What: in.Allocs[0].What})
	}
	return in
}

// add sets bits on in, recording a witness for each newly set bit.
func (s *Set) add(in *Info, eff Effect, w Witness) bool {
	newBits := eff &^ in.Effects
	if newBits == 0 {
		return false
	}
	in.Effects |= newBits
	newBits.Each(func(bit Effect) { in.Witness[bit] = w })
	return true
}

// bannedTime and seededRand mirror the detsource rule.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true,
}
var seededRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// wallClockFunc reports whether fn is a banned nondeterminism source.
func wallClockFunc(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil || callgraph.RecvOf(fn) != nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if bannedTime[fn.Name()] {
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if !seededRand[fn.Name()] {
			return pkg.Path() + "." + fn.Name(), true
		}
	}
	return "", false
}

// primitiveEffect classifies a site's static callee against the effect
// primitive table; zero for ordinary calls.
func (s *Set) primitiveEffect(n *callgraph.Node, site *callgraph.Site) (Effect, string) {
	fn := site.Static
	if fn == nil {
		return 0, ""
	}
	if what, ok := wallClockFunc(fn); ok {
		return WallClock, what
	}
	recv := callgraph.RecvOf(fn)
	if recv == nil {
		return 0, ""
	}
	name := fn.Name()
	// Endpoint methods (interface or any implementation).
	if s.implementsEndpoint(recv.Type()) {
		switch name {
		case "Exchange":
			return Exchange, "Endpoint.Exchange"
		case "GlobalSum":
			return GlobalSum, "Endpoint.GlobalSum"
		case "Barrier":
			return Barrier, "Endpoint.Barrier"
		case "Busy":
			return Delay, "Endpoint.Busy"
		case "Exec":
			return Exec, "Endpoint.Exec"
		case "Now":
			return Now, "Endpoint.Now"
		}
	}
	named := callgraph.NamedOf(recv.Type())
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return 0, ""
	}
	tname, tpkg := named.Obj().Name(), named.Obj().Pkg()
	switch {
	case callgraph.PkgPathIs(tpkg, "hyades/internal/des"):
		switch tname {
		case "Engine":
			switch name {
			case "Schedule", "ScheduleAt", "After":
				return Schedule, "des.Engine." + name
			case "Now":
				return Now, "des.Engine.Now"
			}
		case "Proc":
			switch name {
			case "Delay":
				return Delay, "des.Proc.Delay"
			case "Exec":
				return Exec, "des.Proc.Exec"
			case "Now":
				return Now, "des.Proc.Now"
			}
		case "Mailbox":
			switch name {
			case "Send":
				return Send, "des.Mailbox.Send"
			case "Recv", "RecvDeadline":
				return Recv, "des.Mailbox." + name
			}
		}
	case callgraph.PkgPathIs(tpkg, "hyades/internal/mpistart") && tname == "Comm":
		switch name {
		case "Send":
			return Send, "mpistart.Comm.Send"
		case "Recv":
			return Recv, "mpistart.Comm.Recv"
		case "Sendrecv":
			return Send | Recv, "mpistart.Comm.Sendrecv"
		}
	case callgraph.PkgPathIs(tpkg, "hyades/internal/startx") && tname == "NIU":
		switch name {
		case "PIOSend", "DMASend":
			return Send, "startx.NIU." + name
		case "PIORecv", "TryPIORecv", "VIRecv", "VIRecvDeadline":
			return Recv, "startx.NIU." + name
		}
	}
	return 0, ""
}

// isExecMethod reports whether fn is an offload boundary: a method
// named Exec on des.Proc or on (an implementation of) comm.Endpoint.
func (s *Set) isExecMethod(fn *types.Func) bool {
	if fn.Name() != "Exec" {
		return false
	}
	recv := callgraph.RecvOf(fn)
	if recv == nil {
		return false
	}
	if s.implementsEndpoint(recv.Type()) {
		return true
	}
	named := callgraph.NamedOf(recv.Type())
	return named != nil && named.Obj() != nil && named.Obj().Name() == "Proc" &&
		named.Obj().Pkg() != nil && callgraph.PkgPathIs(named.Obj().Pkg(), "hyades/internal/des")
}

// isScheduleMethod reports whether fn is Engine.Schedule/ScheduleAt,
// whose first argument is a delay/time slot (the schedpast contract).
func isScheduleMethod(fn *types.Func) (string, bool) {
	if fn.Name() != "Schedule" && fn.Name() != "ScheduleAt" {
		return "", false
	}
	recv := callgraph.RecvOf(fn)
	if recv == nil {
		return "", false
	}
	named := callgraph.NamedOf(recv.Type())
	if named == nil || named.Obj() == nil || named.Obj().Name() != "Engine" ||
		named.Obj().Pkg() == nil || !callgraph.PkgPathIs(named.Obj().Pkg(), "hyades/internal/des") {
		return "", false
	}
	return "des.Engine." + fn.Name(), true
}

// seedDelay records direct parameter -> Schedule-delay flows.
func (s *Set) seedDelay(n *callgraph.Node, in *Info, site *callgraph.Site) {
	if site.Static == nil || len(site.Call.Args) == 0 {
		return
	}
	what, ok := isScheduleMethod(site.Static)
	if !ok {
		return
	}
	if i := paramIndex(in, site.Call.Args[0]); i >= 0 {
		if _, dup := in.DelayParams[i]; !dup {
			in.DelayParams[i] = DelayFlow{Pos: site.Pos(), CalleeParam: -1, What: what}
		}
	}
}

// paramIndex resolves e (unparenthesized bare identifier) to a
// parameter index of in's node, or -1.
func paramIndex(in *Info, e ast.Expr) int {
	id, ok := callgraph.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	v, ok := in.Node.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return -1
	}
	for i, p := range in.params {
		if p != nil && p == v {
			return i
		}
	}
	return -1
}

// forwardsParam reports whether site calls a func value that is a
// parameter of n or of an enclosing literal parent — the higher-order
// forwarding shape whose effects belong to each argument, not to n.
func (s *Set) forwardsParam(n *callgraph.Node, site *callgraph.Site) bool {
	id, ok := callgraph.Unparen(site.Call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := n.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	for cur := n; cur != nil; cur = cur.Parent {
		for _, p := range s.infos[cur.Index].params {
			if p != nil && p == v {
				return true
			}
		}
	}
	return false
}

// bareRefs seeds WallClock for non-call references to banned
// functions: a stored time.Now value is as nondeterministic as a call.
func (s *Set) bareRefs(n *callgraph.Node, in *Info) {
	callFuns := map[ast.Expr]bool{}
	for _, site := range n.Sites {
		callFuns[callgraph.Unparen(site.Call.Fun)] = true
	}
	walkOwn(n, func(m ast.Node) {
		sel, ok := m.(*ast.SelectorExpr)
		if !ok || callFuns[ast.Expr(sel)] {
			return
		}
		fn, ok := n.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		if what, ok := wallClockFunc(fn); ok {
			s.add(in, WallClock, Witness{Pos: sel.Pos(), What: what + " (reference)"})
		}
	})
}

// globalWrites seeds GlobalWrite for assignments whose base resolves
// to a package-level variable.
func (s *Set) globalWrites(n *callgraph.Node, in *Info) {
	info := n.Pkg.Info
	report := func(lhs ast.Expr) {
		if v := baseGlobal(info, lhs); v != nil {
			s.add(in, GlobalWrite, Witness{Pos: lhs.Pos(), What: "write to " + v.Name()})
		}
	}
	walkOwn(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(m.X)
		}
	})
}

// baseGlobal resolves the base object written by lhs; non-nil only for
// package-level variables.
func baseGlobal(info *types.Info, lhs ast.Expr) *types.Var {
	for {
		switch e := callgraph.Unparen(lhs).(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return nil
			}
			return v
		case *ast.SelectorExpr:
			// pkg.Var: the selector names the variable itself.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					lhs = e.Sel
					continue
				}
			}
			// field write x.f = v: mutation through a value/pointer;
			// attribute to the base only when the base itself is a
			// global (writes through pointers escape the analysis —
			// see the package doc).
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			return nil // write through a pointer: unknown target
		default:
			return nil
		}
	}
}

// walkOwn visits n's body, skipping nested function literals (their
// nodes own those subtrees).
func walkOwn(n *callgraph.Node, fn func(ast.Node)) {
	root := ast.Node(n.Body)
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m != root {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
		}
		fn(m)
		return true
	})
}

// paramVars returns n's declared parameters positionally.
func paramVars(n *callgraph.Node) []*types.Var {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else if n.Lit != nil {
		ft = n.Lit.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := n.Pkg.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// ---- propagation ----

// update joins callee summaries into n's; reports whether anything
// changed.
func (s *Set) update(n *callgraph.Node) bool {
	in := s.infos[n.Index]
	changed := false
	for _, site := range n.Sites {
		if s.forwardsParam(n, site) {
			continue
		}
		// Effect propagation: union of callees, witness = first callee
		// carrying each new bit (callees are index-sorted, so the
		// choice is deterministic).
		for _, c := range site.Callees {
			ce := s.infos[c.Index].Effects
			if newBits := ce &^ in.Effects; newBits != 0 {
				if s.add(in, newBits, Witness{Pos: site.Pos(), Callee: c}) {
					changed = true
				}
			}
		}
		// ExecParams propagation: passing one of our func params into a
		// boundary slot makes our param a boundary slot.
		for j := range s.boundaryParams(site) {
			if j >= len(site.Call.Args) {
				continue
			}
			if i := paramIndex(in, site.Call.Args[j]); i >= 0 && !in.ExecParams[i] {
				in.ExecParams[i] = true
				changed = true
			}
		}
		// DelayParams propagation.
		for _, c := range site.Callees {
			for j := range s.infos[c.Index].DelayParams {
				if j >= len(site.Call.Args) {
					continue
				}
				if i := paramIndex(in, site.Call.Args[j]); i >= 0 {
					if _, dup := in.DelayParams[i]; !dup {
						in.DelayParams[i] = DelayFlow{Pos: site.Pos(), Callee: c, CalleeParam: j}
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// BoundaryArgs returns the sorted argument indices of site that flow
// into an offload boundary — the slots execpure must verify.
func (s *Set) BoundaryArgs(site *callgraph.Site) []int {
	m := s.boundaryParams(site)
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// ForwardsParam reports whether site calls a func value that is a
// parameter of n (or an enclosing literal's): a higher-order
// forwarding site whose effects belong to the arguments.
func (s *Set) ForwardsParam(n *callgraph.Node, site *callgraph.Site) bool {
	return s.forwardsParam(n, site)
}

// ParamIndex resolves e (a bare identifier) to a parameter index of
// in's node, or -1.
func (in *Info) ParamIndex(e ast.Expr) int { return paramIndex(in, e) }

// boundaryParams returns the argument indices of site that flow into
// an offload boundary: the Exec primitives plus any callee that
// forwards a parameter there.
func (s *Set) boundaryParams(site *callgraph.Site) map[int]bool {
	out := map[int]bool{}
	if site.Static != nil && s.isExecMethod(site.Static) {
		if sig, ok := site.Static.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
					out[i] = true
				}
			}
		}
	}
	for _, c := range site.Callees {
		for i := range s.infos[c.Index].ExecParams {
			out[i] = true
		}
	}
	return out
}

// ---- chain rendering ----

// ChainString renders the witness chain for effect e starting at n:
//
//	gcm.step (step.go:42) -> wallutil.Stamp (wall.go:10) -> time.Now
//
// Each position is the call site inside that frame.  Depth-capped;
// never empty when n actually has e.
func (s *Set) ChainString(n *callgraph.Node, e Effect) string {
	fset := s.Graph.Fset
	var b strings.Builder
	cur := n
	for depth := 0; depth < 16; depth++ {
		in := s.infos[cur.Index]
		w, ok := in.Witness[e]
		if !ok {
			break
		}
		if b.Len() > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s (%s)", cur.String(), callgraph.PosLabel(fset, w.Pos))
		if w.Callee == nil {
			b.WriteString(" -> " + w.What)
			return b.String()
		}
		cur = w.Callee
	}
	if b.Len() > 0 {
		b.WriteString(" -> ...")
	}
	return b.String()
}

// DelayChainString renders how parameter i of n reaches a Schedule
// delay slot.
func (s *Set) DelayChainString(n *callgraph.Node, i int) string {
	fset := s.Graph.Fset
	var b strings.Builder
	cur, idx := n, i
	for depth := 0; depth < 16; depth++ {
		flow, ok := s.infos[cur.Index].DelayParams[idx]
		if !ok {
			break
		}
		if b.Len() > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s (%s)", cur.String(), callgraph.PosLabel(fset, flow.Pos))
		if flow.Callee == nil {
			b.WriteString(" -> " + flow.What)
			return b.String()
		}
		cur, idx = flow.Callee, flow.CalleeParam
	}
	if b.Len() > 0 {
		b.WriteString(" -> ...")
	}
	return b.String()
}

// ReachableAllocCount returns the number of distinct surviving
// allocation sites reachable from n (n's own included), following the
// same propagation edges as the fixpoint.
func (s *Set) ReachableAllocCount(n *callgraph.Node) int {
	seen := map[*callgraph.Node]bool{}
	count := 0
	var visit func(m *callgraph.Node)
	visit = func(m *callgraph.Node) {
		if seen[m] {
			return
		}
		seen[m] = true
		count += len(s.infos[m.Index].Allocs)
		for _, site := range m.Sites {
			if s.forwardsParam(m, site) {
				continue
			}
			for _, c := range site.Callees {
				if s.infos[c.Index].Effects&Alloc != 0 {
					visit(c)
				}
			}
		}
	}
	visit(n)
	return count
}
