package summary

import (
	"go/ast"
	"go/types"

	"hyades/internal/lint/callgraph"
)

// collectAllocs finds n's heap-allocation sites and applies escape-lite
// suppression.  The catalogue (mirroring the tentpole spec):
//
//   - composite literals: slice and map literals, and any &T{...};
//     value struct/array literals are not by themselves allocations
//   - make of slice/map/chan; new(T)
//   - append (backing-array growth)
//   - address-taken function literals that capture variables
//   - string <-> []byte/[]rune conversions of non-constant operands
//   - interface boxing: a concrete non-pointer-shaped value passed to
//     an interface-typed parameter or converted to an interface type
//
// Escape-lite eligibility (see the package doc) covers the slice/map
// builders whose result can stay function-local: slice literals,
// &T{...}, make-slice, new.  Maps, channels, append, captures, boxing
// and conversions always count.
func (s *Set) collectAllocs(n *callgraph.Node) []AllocSite {
	info := n.Pkg.Info
	var sites []AllocSite
	// nested marks composite literals that are direct elements of an
	// enclosing literal — part of the parent's allocation, not their
	// own (unless address-taken, which gives them an &-site).
	nested := map[*ast.CompositeLit]bool{}
	walkOwn(n, func(m ast.Node) {
		lit, ok := m.(*ast.CompositeLit)
		if !ok {
			return
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if inner, ok := callgraph.Unparen(elt).(*ast.CompositeLit); ok {
				nested[inner] = true
			}
		}
	})
	add := func(pos ast.Node, what string, eligible bool, expr ast.Expr) {
		if eligible && !s.escapes(n, expr) {
			return
		}
		sites = append(sites, AllocSite{Pos: pos.Pos(), What: what})
	}
	walkOwn(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op.String() != "&" {
				return
			}
			if lit, ok := callgraph.Unparen(m.X).(*ast.CompositeLit); ok {
				add(m, "&"+typeLabel(info, lit)+" composite literal", true, m)
				nested[lit] = true // claimed by the &-site
			}
		case *ast.CompositeLit:
			if nested[m] {
				return
			}
			switch types.Unalias(typeOf(info, m)).Underlying().(type) {
			case *types.Slice:
				add(m, "slice literal", true, m)
			case *types.Map:
				add(m, "map literal", false, m)
			}
		case *ast.CallExpr:
			s.allocsInCall(n, m, add)
		}
	})
	// Address-taken capturing literals directly inside this body.
	for lit, litNode := range s.litsOf(n) {
		if litNode.AddrTaken && capturesOuter(n.Pkg.Info, lit) {
			sites = append(sites, AllocSite{Pos: lit.Pos(), What: "capturing closure"})
		}
	}
	sortSites(sites)
	return sites
}

// litsOf returns the function literals whose parent node is n.
func (s *Set) litsOf(n *callgraph.Node) map[*ast.FuncLit]*callgraph.Node {
	out := map[*ast.FuncLit]*callgraph.Node{}
	for _, m := range s.Graph.Nodes {
		if m.Lit != nil && m.Parent == n {
			out[m.Lit] = m
		}
	}
	return out
}

func sortSites(sites []AllocSite) {
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && sites[j].Pos < sites[j-1].Pos; j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
}

// allocsInCall classifies one call expression's allocations: builtins,
// conversions, and interface boxing of arguments.
func (s *Set) allocsInCall(n *callgraph.Node, call *ast.CallExpr, add func(ast.Node, string, bool, ast.Expr)) {
	info := n.Pkg.Info
	fun := callgraph.Unparen(call.Fun)
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				add(call, "new", true, call)
			case "make":
				switch types.Unalias(typeOf(info, call)).Underlying().(type) {
				case *types.Slice:
					add(call, "make slice", true, call)
				case *types.Map:
					add(call, "make map", false, call)
				case *types.Chan:
					add(call, "make chan", false, call)
				}
			case "append":
				add(call, "append growth", false, call)
			}
			return
		}
	}
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		if isConst(info, arg) {
			return
		}
		to := types.Unalias(tv.Type).Underlying()
		from := types.Unalias(typeOf(info, arg)).Underlying()
		switch {
		case isString(from) && isByteOrRuneSlice(to):
			add(call, "string->[]byte/[]rune conversion", false, call)
		case isByteOrRuneSlice(from) && isString(to):
			add(call, "[]byte/[]rune->string conversion", false, call)
		case isNonEmptyInterface(to) && boxable(from):
			add(call, "interface conversion of "+types.TypeString(typeOf(info, arg), relQual(n)), false, call)
		}
		return
	}
	// Interface boxing at ordinary call arguments.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // slice passed through, no per-element boxing
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := types.Unalias(pt).Underlying().(*types.Interface); !isIface {
			continue
		}
		if isConst(info, arg) {
			continue
		}
		at := typeOf(info, arg)
		if at == nil || !boxable(types.Unalias(at).Underlying()) {
			continue
		}
		add(arg, "interface boxing of "+types.TypeString(at, relQual(n)), false, arg)
	}
}

func relQual(n *callgraph.Node) types.Qualifier {
	return func(p *types.Package) string { return p.Name() }
}

// typeLabel names a composite literal's type for messages.
func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	t := typeOf(info, lit)
	if t == nil {
		return "T"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	if !ok {
		return false
	}
	k := b.Kind()
	return k == types.Uint8 || k == types.Int32
}

func isNonEmptyInterface(t types.Type) bool {
	_, ok := t.(*types.Interface)
	return ok
}

// boxable reports whether converting a value of underlying type t to
// an interface heap-allocates: anything wider than one pointer word
// that is not itself pointer-shaped.
func boxable(t types.Type) bool {
	switch t := t.(type) {
	case *types.Basic:
		return t.Kind() != types.UntypedNil && t.Kind() != types.UnsafePointer
	case *types.Struct:
		return t.NumFields() > 0
	case *types.Array:
		return t.Len() > 0
	case *types.Slice:
		return true
	}
	return false
}

// capturesOuter reports whether lit references a variable declared
// outside it (excluding package-level variables and struct fields) —
// the captures that force a closure context allocation.
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if found {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture needed
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// ---- escape-lite ----

// escapes reports whether the allocation expression expr leaves the
// function, conservatively.  It returns false only for the provably
// local pattern: the result is bound to exactly one local variable and
// every other use of that variable is benign.
func (s *Set) escapes(n *callgraph.Node, expr ast.Expr) bool {
	v := boundVar(n, expr)
	if v == nil {
		return true
	}
	escaped := false
	walkOwnWithParents(n, func(m ast.Node, parent ast.Node) {
		if escaped {
			return
		}
		id, ok := m.(*ast.Ident)
		if !ok || n.Pkg.Info.Uses[id] != types.Object(v) {
			return
		}
		if !benignUse(n.Pkg.Info, id, parent, v) {
			escaped = true
		}
	})
	// A capture from any nested literal also escapes.
	if !escaped {
		for lit := range s.litsOf(n) {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && n.Pkg.Info.Uses[id] == types.Object(v) {
					escaped = true
				}
				return !escaped
			})
			if escaped {
				break
			}
		}
	}
	return escaped
}

// boundVar returns the local variable expr is directly bound to via a
// single-assignment `v := expr` / `var v = expr` / `v = expr`, or nil.
func boundVar(n *callgraph.Node, expr ast.Expr) *types.Var {
	info := n.Pkg.Info
	var out *types.Var
	walkOwn(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) != 1 || len(m.Rhs) != 1 || callgraph.Unparen(m.Rhs[0]) != expr {
				return
			}
			id, ok := m.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				out = v
			} else if v, ok := info.Uses[id].(*types.Var); ok && v.Parent() != nil &&
				(v.Pkg() == nil || v.Parent() != v.Pkg().Scope()) {
				out = v
			}
		case *ast.ValueSpec:
			if len(m.Names) != 1 || len(m.Values) != 1 || callgraph.Unparen(m.Values[0]) != expr {
				return
			}
			if v, ok := info.Defs[m.Names[0]].(*types.Var); ok {
				out = v
			}
		}
	})
	return out
}

// benignUse classifies one occurrence of the bound variable.
func benignUse(info *types.Info, id *ast.Ident, parent ast.Node, v *types.Var) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		// LHS reassignment (including v = append(v, ...), whose append
		// site is counted separately).
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(id) {
				return true
			}
		}
		return false // RHS alias: v2 := v
	case *ast.IndexExpr:
		return p.X == ast.Expr(id)
	case *ast.SelectorExpr:
		return p.X == ast.Expr(id)
	case *ast.RangeStmt:
		return p.X == ast.Expr(id)
	case *ast.CallExpr:
		fun := callgraph.Unparen(p.Fun)
		if fid, ok := fun.(*ast.Ident); ok {
			if b, ok := info.Uses[fid].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "copy", "delete", "clear":
					return true
				case "append":
					// Self-append only: v = append(v, ...) keeps v
					// local; append(other, v...) spreads it.
					return !p.Ellipsis.IsValid() && len(p.Args) > 0 && p.Args[0] == ast.Expr(id)
				}
			}
		}
		return false // ordinary call argument: escapes
	}
	return false
}

// walkOwnWithParents is walkOwn with the immediate parent node.
func walkOwnWithParents(n *callgraph.Node, fn func(m, parent ast.Node)) {
	root := ast.Node(n.Body)
	var stack []ast.Node
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if m != root {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
		}
		var parent ast.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		fn(m, parent)
		stack = append(stack, m)
		return true
	})
}
