package summary_test

import (
	"strings"
	"sync"
	"testing"

	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/load"
	"hyades/internal/lint/summary"
)

var (
	once sync.Once
	set  *summary.Set
	serr error
)

func fixtureSet(t *testing.T) *summary.Set {
	t.Helper()
	once.Do(func() {
		loader, err := load.NewLoader(".")
		if err != nil {
			serr = err
			return
		}
		pkg, err := loader.LoadDir("testdata/src/sumfix", "sumfix")
		if err != nil {
			serr = err
			return
		}
		if len(pkg.Errors) > 0 {
			t.Fatalf("fixture does not type-check: %v", pkg.Errors)
		}
		set = summary.Compute(callgraph.Build(pkg.Closure()))
	})
	if serr != nil {
		t.Fatalf("fixture: %v", serr)
	}
	return set
}

func node(t *testing.T, s *summary.Set, name string) *summary.Info {
	t.Helper()
	for _, n := range s.Graph.Nodes {
		if n.String() == name {
			return s.Of(n)
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

func TestWallClockPropagation(t *testing.T) {
	s := fixtureSet(t)
	deep := node(t, s, "sumfix.WallDeep")
	if !deep.Effects.Has(summary.WallClock) {
		t.Fatalf("WallDeep lacks WallClock effect")
	}
	chain := s.ChainString(deep.Node, summary.WallClock)
	for _, frag := range []string{"sumfix.WallDeep", "sumfix.wallHelper", "time.Now"} {
		if !strings.Contains(chain, frag) {
			t.Errorf("chain %q missing %q", chain, frag)
		}
	}
}

func TestDelayParamPropagation(t *testing.T) {
	s := fixtureSet(t)
	for _, name := range []string{"sumfix.DelayFwd", "sumfix.DelayFwd2"} {
		in := node(t, s, name)
		if _, ok := in.DelayParams[1]; !ok {
			t.Errorf("%s: parameter d not tracked as delay flow (have %v)", name, in.DelayParams)
		}
	}
	chain := s.DelayChainString(node(t, s, "sumfix.DelayFwd2").Node, 1)
	if !strings.Contains(chain, "des.Engine.Schedule") {
		t.Errorf("delay chain %q missing terminal", chain)
	}
}

func TestExecParamPropagation(t *testing.T) {
	s := fixtureSet(t)
	for _, name := range []string{"sumfix.Offload", "sumfix.Offload2"} {
		in := node(t, s, name)
		if !in.ExecParams[1] {
			t.Errorf("%s: fn parameter not tracked as offload boundary (have %v)", name, in.ExecParams)
		}
	}
}

func TestCommEffects(t *testing.T) {
	s := fixtureSet(t)
	if !node(t, s, "sumfix.SendIt").Effects.Has(summary.Send) {
		t.Errorf("SendIt lacks Send effect")
	}
	deep := node(t, s, "sumfix.SendDeep")
	if !deep.Effects.Has(summary.Send) {
		t.Errorf("SendDeep lacks propagated Send effect")
	}
	chain := s.ChainString(deep.Node, summary.Send)
	if !strings.Contains(chain, "sumfix.SendIt") || !strings.Contains(chain, "des.Mailbox.Send") {
		t.Errorf("send chain %q incomplete", chain)
	}
}

func TestGlobalWrite(t *testing.T) {
	s := fixtureSet(t)
	if !node(t, s, "sumfix.Bump").Effects.Has(summary.GlobalWrite) {
		t.Errorf("Bump lacks GlobalWrite effect")
	}
	if node(t, s, "sumfix.LocalOnly").Effects.Has(summary.GlobalWrite) {
		t.Errorf("LocalOnly spuriously marked GlobalWrite")
	}
}

func TestEscapeLite(t *testing.T) {
	s := fixtureSet(t)
	if got := len(node(t, s, "sumfix.Escaping").Allocs); got == 0 {
		t.Errorf("Escaping: returned make site suppressed, want counted")
	}
	if got := node(t, s, "sumfix.LocalOnly").Allocs; len(got) != 0 {
		t.Errorf("LocalOnly: benign-only make site counted: %v", got)
	}
}

func TestInterfaceBoxing(t *testing.T) {
	s := fixtureSet(t)
	in := node(t, s, "sumfix.Boxer")
	found := false
	for _, a := range in.Allocs {
		if strings.Contains(a.What, "interface boxing") {
			found = true
		}
	}
	if !found {
		t.Errorf("Boxer: int->any boxing not counted; allocs = %v", in.Allocs)
	}
}

func TestRecursionConverges(t *testing.T) {
	s := fixtureSet(t)
	rec := node(t, s, "sumfix.Recur")
	if !rec.Effects.Has(summary.WallClock) {
		t.Fatalf("Recur lacks WallClock effect")
	}
	chain := s.ChainString(rec.Node, summary.WallClock)
	if !strings.Contains(chain, "time.Now") {
		t.Errorf("recursive chain %q has no terminal", chain)
	}
}
