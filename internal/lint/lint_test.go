package lint_test

import (
	"testing"

	"hyades/internal/lint"
	"hyades/internal/lint/analysistest"
	"hyades/internal/lint/load"
)

// Each analyzer has a flagged fixture (every finding asserted by a
// // want annotation) and a clean fixture (no findings allowed),
// including the //lint:allow escape hatch on an otherwise-flagged line.

func TestDetsource(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Detsource, "detsource")
}

func TestNogoroutine(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Nogoroutine, "nogoroutine")
}

func TestUnitlit(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Unitlit, "unitlit")
}

func TestSchedpast(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Schedpast, "schedpast")
}

func TestMaprange(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Maprange, "maprange")
}

func TestCommlock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Commlock, "commlock")
}

func TestDimcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Dimcheck, "dimcheck")
}

func TestRedorder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Redorder, "redorder")
}

func TestExecpure(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Execpure, "execpure")
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Hotalloc, "hotalloc", "hotallocclean")
}

func TestShareheap(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Shareheap, "shareheap")
}

func TestCapturealias(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Capturealias, "capturealias")
}

// Interprocedural fixtures: the PR 1-2 rules upgraded with call-graph
// context.  Each imports a helper fixture package so the flagged chain
// genuinely crosses a package boundary.
func TestDetsourceInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Detsource, "detsourceipa")
}

func TestSchedpastInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Schedpast, "schedipa")
}

func TestCommlockInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Commlock, "commipa")
}

// TestAnalyzersForScope pins the scope table: determinism rules guard
// the sim core, unit/schedule rules guard the whole module, and the
// event-path rule guards only the dispatch-hot packages.
func TestAnalyzersForScope(t *testing.T) {
	names := func(path string) map[string]bool {
		m := map[string]bool{}
		for _, a := range lint.AnalyzersFor(path) {
			m[a.Name] = true
		}
		return m
	}
	des := names("hyades/internal/des")
	for _, want := range []string{"detsource", "nogoroutine", "unitlit", "schedpast", "maprange"} {
		if !des[want] {
			t.Errorf("des: missing analyzer %s", want)
		}
	}
	flt := names("hyades/internal/fault")
	for _, want := range []string{"detsource", "nogoroutine", "maprange"} {
		if !flt[want] {
			t.Errorf("fault: missing analyzer %s (fault plans run on the event path)", want)
		}
	}
	// The crash-recovery path dispatches in engine context: peer
	// monitors in startx, crash/respawn events in cluster.
	for _, pkg := range []string{"hyades/internal/startx", "hyades/internal/cluster"} {
		rec := names(pkg)
		for _, want := range []string{"detsource", "maprange"} {
			if !rec[want] {
				t.Errorf("%s: missing analyzer %s (recovery code runs on the event path)", pkg, want)
			}
		}
	}
	gcm := names("hyades/internal/gcm/solver")
	if !gcm["detsource"] || !gcm["nogoroutine"] {
		t.Errorf("gcm subpackages must get the sim-core rules, got %v", gcm)
	}
	if gcm["maprange"] {
		t.Errorf("gcm is not an event-path package, got %v", gcm)
	}
	rep := names("hyades/internal/report")
	if rep["detsource"] || rep["nogoroutine"] || rep["maprange"] {
		t.Errorf("report is outside the sim core, got %v", rep)
	}
	if !rep["unitlit"] || !rep["schedpast"] {
		t.Errorf("unitlit/schedpast apply module-wide, got %v", rep)
	}
	// Communication-discipline rules: commlock and dimcheck run
	// module-wide (dimcheck excepting the units package itself, which
	// legitimately crosses its own dimensions), redorder only where the
	// physics reductions live.
	for _, m := range []map[string]bool{des, gcm, rep} {
		if !m["commlock"] {
			t.Errorf("commlock must apply module-wide, got %v", m)
		}
		if !m["dimcheck"] {
			t.Errorf("dimcheck must apply module-wide, got %v", m)
		}
	}
	if units := names("hyades/internal/units"); units["dimcheck"] {
		t.Errorf("dimcheck must not run inside the units package, got %v", units)
	}
	if !gcm["redorder"] {
		t.Errorf("gcm subpackages must get redorder, got %v", gcm)
	}
	if des["redorder"] || rep["redorder"] {
		t.Errorf("redorder is scoped to the gcm subtree, got des=%v rep=%v", des, rep)
	}
	// execpure guards every Exec boundary in the module; hotalloc
	// ratchets only the event-path packages.
	for _, m := range []map[string]bool{des, gcm, rep} {
		if !m["execpure"] {
			t.Errorf("execpure must apply module-wide, got %v", m)
		}
		if !m["capturealias"] {
			t.Errorf("capturealias must apply module-wide, got %v", m)
		}
	}
	if !des["hotalloc"] {
		t.Errorf("des must be under the allocation ratchet, got %v", des)
	}
	// The flat-row rewrite brought the GCM kernels to zero steady-state
	// allocations; the ratchet now covers the gcm subtree to keep them
	// there.
	if !gcm["hotalloc"] {
		t.Errorf("gcm subpackages must be under the allocation ratchet, got %v", gcm)
	}
	if rep["hotalloc"] {
		t.Errorf("report is not an event-path package, must not be ratcheted, got %v", rep)
	}
	// shareheap certifies the rank-spawning launchers and the rank
	// bodies they run: des (the engine), the two launchers, and gcm.
	for _, path := range []string{
		"hyades/internal/des",
		"hyades/internal/cluster",
		"hyades/internal/netmodel",
		"hyades/internal/gcm",
		"hyades/internal/gcm/solver",
	} {
		if !names(path)["shareheap"] {
			t.Errorf("%s must be under the partition-safety certificate", path)
		}
	}
	if rep["shareheap"] {
		t.Errorf("report spawns no ranks, must not carry shareheap, got %v", rep)
	}
}

// TestRepositoryIsClean runs the full suite over every package of the
// module and requires zero findings — the machine-checked form of the
// determinism contract.  Skipped under -short: ci.sh runs the same
// check via cmd/hyadeslint.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("hyadeslint self-check covered by ci.sh in short mode")
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Patterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("pattern expansion found only %d packages: %v", len(dirs), dirs)
	}
	for _, dir := range dirs {
		path, err := loader.ImportPathFor(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: type errors: %v", path, pkg.Errors[0])
		}
		diags, err := lint.Check(pkg)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s (%s)", d.Position(pkg.Fset), d.Message, d.Analyzer)
		}
	}
}
