package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hyades/internal/lint/analysis"
	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/pointsto"
)

// Shareheap is the partition-safety certificate: every des.Proc runs
// one rank of the modelled machine, and the determinism contract
// requires each rank's results to be independent of the order the
// engine interleaves rank coroutines.  That holds exactly when rank
// code never writes state another rank can observe — rank state must
// be disjoint ("partitioned"), and everything crossing the partition
// must flow through the engine's sanctioned channels (mailboxes,
// collectives), which serialize on virtual time.
//
// The rule is built on the Andersen points-to analysis:
//
//   - rank code is every body reachable (over the refined call graph)
//     from a function value handed to des.Engine.Spawn;
//   - cross-rank shared state is (a) any package-level variable, (b)
//     any variable captured by a rank closure but declared on a frame
//     that is NOT itself rank code — e.g. the launcher's locals, which
//     every spawned rank closes over — (c) any heap object reachable
//     from those roots through cells rank code actually loads, and
//     (d) per-rank capture objects claimed by two distinct Spawn
//     sites;
//   - a variable declared inside the loop that wraps the Spawn call is
//     per-rank by construction (each iteration gets a fresh slot) and
//     is exempt, as is every object typed by package des — the engine
//     IS the sanctioned cross-rank layer, with its own discipline
//     checked by the other rules.
//
// One write shape crosses the partition safely without a mailbox: the
// rank-indexed slot `slots[rank] = v`, where rank is an integer
// parameter of the rank body.  Each rank owns one element, so writes
// are disjoint by construction; the certificate trusts the launcher to
// hand every rank a distinct id (the Spawn contract).  Everything else
// is flagged with the access path from the shared root, and the waiver
// is the usual //lint:allow shareheap.
//
// Known limits (documented, not silent): sharing is tracked from
// captures and globals — a shared buffer threaded into per-rank
// structs by the launcher without being captured or package-level is
// not seen; and writes into objects the analysis lost to Unknown are
// not reported (execpure's unresolvable findings cover that hole at
// the offload boundary).
var Shareheap = &analysis.Analyzer{
	Name: "shareheap",
	Doc:  "rank state must be partitioned: no writes to cross-rank shared heap outside rank-indexed slots",
	Run:  runShareheap,
}

func runShareheap(pass *analysis.Pass) (interface{}, error) {
	m := moduleOf(pass)
	if m == nil {
		return nil, nil
	}
	for _, f := range m.shareFindings() {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil, nil
}

type shareFinding struct {
	pos token.Pos
	pkg *types.Package
	msg string
}

// shEntry is one spawned rank body and where it was spawned from.
type shEntry struct {
	body  *callgraph.Node // the rank body (usually the Spawn closure)
	spawn *callgraph.Node // the body containing the Spawn call
	loop  ast.Node        // innermost for/range around the call; nil if none
}

// shareFindings computes (once per module) every partition violation,
// in deterministic recorded-write order.
func (m *Module) shareFindings() []shareFinding {
	if m.shareDone {
		return m.share
	}
	m.shareDone = true
	p := m.Points
	if p == nil {
		return nil
	}

	entries := m.spawnEntries()
	if len(entries) == 0 {
		return nil
	}

	// E: every body rank code can reach.
	inE := map[*callgraph.Node]bool{}
	var queue []*callgraph.Node
	for _, e := range entries {
		if !inE[e.body] {
			inE[e.body] = true
			queue = append(queue, e.body)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.Sites {
			for _, c := range site.Callees {
				if !inE[c] {
					inE[c] = true
					queue = append(queue, c)
				}
			}
		}
	}

	// Cells rank code actually loads: expansion below follows only
	// these, so state the ranks never traverse stays out of the shared
	// set (a slot the launcher reads back after the run is not a rank
	// observation).
	loaded := map[cellID]bool{}
	for _, l := range p.Loads() {
		if l.Node == nil || !inE[l.Node] {
			continue
		}
		for _, o := range p.PointsTo(l.Base) {
			loaded[cellID{o.ID, l.Field}] = true
		}
	}

	// Shared roots: package-level variables and cross-rank captures.
	shared := map[int]string{} // object ID -> access path from its root
	var expand func(o *pointsto.Object, path string)
	expand = func(o *pointsto.Object, path string) {
		if o.Kind == pointsto.KUnknown || o.Kind == pointsto.KFunc || desOwned(o.Type) {
			return
		}
		if _, ok := shared[o.ID]; ok {
			return
		}
		shared[o.ID] = path
		for _, f := range p.CellFields(o) {
			if !loaded[cellID{o.ID, f}] {
				continue
			}
			cell := p.Cell(o, f)
			if cell < 0 {
				continue
			}
			for _, o2 := range p.PointsTo(cell) {
				expand(o2, pathSeg(path, f))
			}
		}
	}

	for _, o := range p.Globals() {
		if o.Var != nil && desOwned(o.Var.Type()) {
			continue
		}
		expand(o, o.Var.Name())
	}

	// Captured variables: per lit body in E, classify each free
	// variable by the frame it lives on.
	sharedVars := map[*types.Var]*callgraph.Node{} // var -> declaring body
	perRank := map[int]map[*callgraph.Node]bool{}  // object -> claiming rank bodies
	var perRankObjs []*pointsto.Object
	for _, n := range m.Graph.Nodes {
		if n.Lit == nil || !inE[n] {
			continue
		}
		for _, v := range p.FreeVars(n) {
			owner := m.declOwner(v.Pos())
			if owner != nil && inE[owner] {
				continue // a rank frame: each rank has its own copy
			}
			if e := spawnLoopOf(entries, owner, v.Pos()); e != nil {
				// Declared inside the loop wrapping the Spawn call:
				// per-rank by construction, but remember which rank
				// body claims the slot, so two distinct spawn sites
				// sharing one slot are caught.
				for _, o := range p.VarPointsTo(v) {
					if perRank[o.ID] == nil {
						perRank[o.ID] = map[*callgraph.Node]bool{}
						perRankObjs = append(perRankObjs, o)
					}
					perRank[o.ID][n] = true
				}
				continue
			}
			if _, ok := sharedVars[v]; !ok {
				sharedVars[v] = owner
			}
			for _, o := range p.VarPointsTo(v) {
				expand(o, v.Name())
			}
		}
	}
	for _, o := range perRankObjs {
		if len(perRank[o.ID]) >= 2 {
			expand(o, fmt.Sprintf("%s (claimed by %d spawn sites)", o.What, len(perRank[o.ID])))
		}
	}

	// Flag the writes.
	var out []shareFinding
	for _, w := range p.Writes() {
		if w.Node == nil || !inE[w.Node] {
			continue
		}
		pkg := w.Node.Pkg.Types
		if w.Var != nil {
			if isPackageLevel(w.Var) {
				if !desOwned(w.Var.Type()) {
					out = append(out, shareFinding{w.Pos, pkg, fmt.Sprintf(
						"rank code writes package-level variable %q; partition the state per rank or move it through a mailbox", w.Var.Name())})
				}
			} else if owner, ok := sharedVars[w.Var]; ok {
				where := "the launcher"
				if owner != nil {
					where = owner.String()
				}
				out = append(out, shareFinding{w.Pos, pkg, fmt.Sprintf(
					"rank code writes variable %q, which is captured across ranks (declared in %s); give each rank its own slot", w.Var.Name(), where)})
			}
			continue
		}
		if m.rankIndexed(w) {
			continue // the sanctioned disjoint-slot shape
		}
		for _, o := range p.PointsTo(w.Base) {
			if path, ok := shared[o.ID]; ok {
				out = append(out, shareFinding{w.Pos, pkg, fmt.Sprintf(
					"rank code writes cross-rank shared state: %s reaches %s via %s; partition per rank (rank-indexed slot) or move it through a mailbox", w.What, o.What, path)})
				break
			}
		}
	}
	m.share = out
	return out
}

type cellID struct {
	obj   int
	field string
}

// pathSeg extends an access path by one cell: fields with a dot,
// collapsed elements with the index marker.
func pathSeg(path, field string) string {
	if field == pointsto.ElemField {
		return path + "[*]"
	}
	return path + "." + field
}

// spawnEntries locates every des.Engine.Spawn call in the module and
// resolves the spawned body: a literal argument directly, anything
// else through points-to.
func (m *Module) spawnEntries() []shEntry {
	var entries []shEntry
	for _, n := range m.Graph.Nodes {
		for _, site := range n.Sites {
			if !isSpawnCallee(site.Static) || len(site.Call.Args) < 2 {
				continue
			}
			loop := enclosingLoop(n, site.Call.Pos())
			arg := unparen(site.Call.Args[1])
			if lit, ok := arg.(*ast.FuncLit); ok {
				if ln := m.Graph.LitNode(lit); ln != nil {
					entries = append(entries, shEntry{body: ln, spawn: n, loop: loop})
				}
				continue
			}
			for _, o := range m.Points.ExprPointsTo(arg) {
				if o.Kind == pointsto.KFunc && o.Fn != nil {
					entries = append(entries, shEntry{body: o.Fn, spawn: n, loop: loop})
				}
			}
		}
	}
	return entries
}

// isSpawnCallee matches (*des.Engine).Spawn, including fixture doubles
// of package des.
func isSpawnCallee(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Spawn" || !pkgPathIs(fn.Pkg(), desPkgPath) {
		return false
	}
	return recvOf(fn) != nil
}

// enclosingLoop returns the innermost for/range statement in n's body
// containing pos, or nil.
func enclosingLoop(n *callgraph.Node, pos token.Pos) ast.Node {
	var loop ast.Node
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		switch x.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if x.Pos() <= pos && pos < x.End() {
				loop = x // deeper matches overwrite: Inspect is outside-in
			}
		}
		return true
	})
	return loop
}

// spawnLoopOf returns the entry whose spawn loop (in body `owner`)
// contains the declaration at pos — the variable is a per-iteration,
// per-rank slot of that entry.
func spawnLoopOf(entries []shEntry, owner *callgraph.Node, pos token.Pos) *shEntry {
	for i := range entries {
		e := &entries[i]
		if e.spawn == owner && e.loop != nil && e.loop.Pos() <= pos && pos < e.loop.End() {
			return e
		}
	}
	return nil
}

// declOwner returns the deepest function body (declaration or literal)
// whose source range contains pos — the frame the declaration at pos
// lives on.
func (m *Module) declOwner(pos token.Pos) *callgraph.Node {
	var best *callgraph.Node
	var bestSpan token.Pos
	for _, n := range m.Graph.Nodes {
		var lo, hi token.Pos
		switch {
		case n.Lit != nil:
			lo, hi = n.Lit.Pos(), n.Lit.End()
		case n.Decl != nil:
			lo, hi = n.Decl.Pos(), n.Decl.End()
		default:
			continue
		}
		if lo <= pos && pos < hi {
			if best == nil || hi-lo < bestSpan {
				best, bestSpan = n, hi-lo
			}
		}
	}
	return best
}

// rankIndexed reports whether w is the sanctioned disjoint-slot shape:
// an element store `slots[rank] = v` whose index is an integer
// parameter of the writing rank body.  Disjointness rests on the Spawn
// contract that every rank body receives a distinct id.
func (m *Module) rankIndexed(w pointsto.Write) bool {
	if w.Field != pointsto.ElemField {
		return false
	}
	ix, ok := w.Expr.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := unparen(ix.Index).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := w.Node.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	sig := nodeSignature(w.Node)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}

func nodeSignature(n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		sig, _ := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// desOwned reports whether t is (or contains at its core) a type
// declared in package des — the engine's own synchronized state, out
// of scope for the partition rule.
func desOwned(t types.Type) bool {
	for t != nil {
		t = types.Unalias(t)
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Named:
			return u.Obj() != nil && pkgPathIs(u.Obj().Pkg(), desPkgPath)
		default:
			return false
		}
	}
	return false
}

// isPackageLevel reports whether v is a package-level variable.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
