package pointsto_test

import (
	"go/types"
	"testing"

	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/load"
	"hyades/internal/lint/pointsto"
)

type fixture struct {
	g *callgraph.Graph
	a *pointsto.Analysis
}

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/src/ptsfix", "ptsfix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.Errors)
	}
	g := callgraph.Build(pkg.Closure())
	return &fixture{g: g, a: pointsto.Analyze(g)}
}

func nodeNamed(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.String() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

// dynamicSite returns the first dynamic or interface call site in n.
func dynamicSite(t *testing.T, n *callgraph.Node) *callgraph.Site {
	t.Helper()
	for _, s := range n.Sites {
		if s.Dynamic || s.Iface {
			return s
		}
	}
	t.Fatalf("%s has no dynamic/interface site", n)
	return nil
}

func calleeNames(r *pointsto.Resolution) []string {
	var out []string
	for _, c := range r.Callees {
		out = append(out, c.String())
	}
	return out
}

// requireResolved asserts that fn's dynamic site resolves completely
// to exactly want.
func requireResolved(t *testing.T, f *fixture, fn string, want ...string) {
	t.Helper()
	n := nodeNamed(t, f.g, fn)
	site := dynamicSite(t, n)
	r := f.a.Resolution(site.Call)
	if r == nil {
		t.Fatalf("%s: no resolution for the dynamic call", fn)
	}
	if r.Incomplete {
		t.Fatalf("%s: resolution marked incomplete", fn)
	}
	got := calleeNames(r)
	if len(got) != len(want) {
		t.Fatalf("%s: callees = %v, want %v", fn, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: callees = %v, want %v", fn, got, want)
		}
	}
}

func TestFuncValueThroughVariable(t *testing.T) {
	f := buildFixture(t)
	requireResolved(t, f, "ptsfix.viaVar", "ptsfix.alpha")
}

func TestFuncValueThroughSlice(t *testing.T) {
	f := buildFixture(t)
	// Both elements live in the one collapsed slice cell.
	requireResolved(t, f, "ptsfix.viaSlice", "ptsfix.alpha", "ptsfix.beta")
}

func TestFuncValueThroughField(t *testing.T) {
	f := buildFixture(t)
	requireResolved(t, f, "ptsfix.viaField", "ptsfix.beta")
}

func TestMethodValue(t *testing.T) {
	f := buildFixture(t)
	requireResolved(t, f, "ptsfix.viaMethodValue", "ptsfix.(*counter).bump")
}

func TestInterfaceNarrowing(t *testing.T) {
	f := buildFixture(t)
	n := nodeNamed(t, f.g, "ptsfix.onlyDogs")
	site := dynamicSite(t, n)
	if !site.Iface {
		t.Fatalf("a.sound() not an interface site")
	}
	// CHA sees both implementations...
	if len(site.Callees) != 2 {
		t.Fatalf("CHA callees = %d, want 2", len(site.Callees))
	}
	// ...points-to proves only the dog flows in.
	r := f.a.Resolution(site.Call)
	if r == nil || r.Incomplete {
		t.Fatalf("interface resolution missing or incomplete: %+v", r)
	}
	got := calleeNames(r)
	if len(got) != 1 || got[0] != "ptsfix.dog.sound" {
		t.Fatalf("narrowed callees = %v, want [ptsfix.dog.sound]", got)
	}
}

func TestEscapeStaysIncomplete(t *testing.T) {
	f := buildFixture(t)
	n := nodeNamed(t, f.g, "ptsfix.viaEscape")
	// The closure escapes into sort.SliceStable: its parameters must
	// be tainted, and no dynamic call resolves here (the call happens
	// inside the standard library).
	lit := nodeNamed(t, f.g, "ptsfix.viaEscape$1")
	sig := lit.Pkg.Info.Types[lit.Lit].Type
	if sig == nil {
		t.Fatalf("no literal signature")
	}
	_ = n
	// Escape is visible through the interface: passing the literal to
	// an out-of-set function must not panic and must keep any
	// in-fixture dynamic resolution of that value unclaimed.
	for _, s := range n.Sites {
		if s.Dynamic {
			if r := f.a.Resolution(s.Call); r != nil && !r.Incomplete {
				t.Fatalf("escaped call unexpectedly resolved complete: %v", calleeNames(r))
			}
		}
	}
}

// TestStructCopyIsolation: mutate's by-value parameter must not alias
// the caller's storage, but the pointer INSIDE the struct must still
// flow through the copy.
func TestStructCopyIsolation(t *testing.T) {
	f := buildFixture(t)
	mutate := nodeNamed(t, f.g, "ptsfix.mutate")

	// The write `c.name = ...` inside mutate must target only the
	// parameter's storage, never the caller's variable storage.
	var sawWrite bool
	for _, w := range f.a.Writes() {
		if w.Node != mutate || w.Base < 0 {
			continue
		}
		sawWrite = true
		for _, o := range f.a.PointsTo(w.Base) {
			if o.Var != nil && o.Var.Name() == "c" {
				continue // the parameter's own storage: expected
			}
			t.Errorf("write %s in mutate targets %s (var %v): by-value parameter aliases its argument", w.What, o.What, o.Var)
		}
	}
	if !sawWrite {
		t.Fatalf("no recorded write inside mutate")
	}

	// The pointer INSIDE the struct still flows through the copy: the
	// parameter's dst field reaches the caller's local target.
	sig := mutate.Func.Type().(*types.Signature)
	pv := sig.Params().At(0)
	ps := f.a.StorageOf(pv)
	if ps == nil {
		t.Fatalf("no storage for the struct parameter")
	}
	cell := f.a.Cell(ps, "dst")
	if cell < 0 {
		t.Fatalf("no dst cell on the parameter storage")
	}
	var sawTarget bool
	for _, o := range f.a.PointsTo(cell) {
		if o.Var != nil && o.Var.Name() == "target" {
			sawTarget = true
		}
	}
	if !sawTarget {
		t.Errorf("caller's target does not flow into the copied dst field")
	}
}

func TestFreeVars(t *testing.T) {
	f := buildFixture(t)
	inner := nodeNamed(t, f.g, "ptsfix.capture$1")
	fv := f.a.FreeVars(inner)
	names := map[string]bool{}
	for _, v := range fv {
		names[v.Name()] = true
	}
	if !names["total"] || !names["j"] {
		t.Errorf("capture$1 free vars = %v, want total and j", names)
	}
	if names["i"] {
		t.Errorf("i is not referenced by the closure, got %v", names)
	}
}

func TestGlobalsRecorded(t *testing.T) {
	f := buildFixture(t)
	found := false
	for _, o := range f.a.Globals() {
		if o.Var != nil && o.Var.Name() == "registry" {
			found = true
		}
	}
	if !found {
		t.Errorf("package-level registry not in Globals()")
	}
}
