package pointsto

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"hyades/internal/lint/callgraph"
	"hyades/internal/lint/load"
)

// This file turns ASTs into constraints.  Each call-graph node's body
// is walked once (nested literals are separate nodes and are
// skipped); package-level variable initializers are walked in a
// context with no node.  The walk is a hand-written recursion rather
// than ast.Inspect because assignment targets, addressed operands and
// rvalues all need different treatment.

type genCtx struct {
	node *callgraph.Node // nil inside package-level initializers
	pkg  *load.Package
}

func (a *Analysis) info() *types.Info { return a.ctx.pkg.Info }

// genPackageInits processes pkg's package-level var declarations:
// storage objects for the variables, constraints for the
// initializers.
func (a *Analysis) genPackageInits(pkg *load.Package) {
	a.ctx = genCtx{pkg: pkg}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				a.genValueSpec(vs)
			}
		}
	}
}

// genNode processes one body: named results wire into return nodes,
// then the statements.
func (a *Analysis) genNode(n *callgraph.Node) {
	a.ctx = genCtx{node: n, pkg: n.Pkg}
	sig := a.sigOf(n)
	if sig != nil {
		for i := 0; i < sig.Results().Len(); i++ {
			rv := sig.Results().At(i)
			if rv.Name() != "" && rv.Name() != "_" {
				a.ensureEdge(a.varNodeFor(rv), a.retNodeFor(n, i))
			}
		}
	}
	a.walkStmt(n.Body)
}

// ---- statements ----

func (a *Analysis) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			a.walkStmt(st)
		}
	case *ast.ExprStmt:
		a.evalExpr(s.X)
	case *ast.AssignStmt:
		a.genAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.genValueSpec(vs)
				}
			}
		}
	case *ast.ReturnStmt:
		a.genReturn(s)
	case *ast.IfStmt:
		a.walkStmt(s.Init)
		a.evalExpr(s.Cond)
		a.walkStmt(s.Body)
		a.walkStmt(s.Else)
	case *ast.ForStmt:
		a.walkStmt(s.Init)
		if s.Cond != nil {
			a.evalExpr(s.Cond)
		}
		a.walkStmt(s.Post)
		a.walkStmt(s.Body)
	case *ast.RangeStmt:
		a.genRange(s)
	case *ast.SwitchStmt:
		a.walkStmt(s.Init)
		if s.Tag != nil {
			a.evalExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				a.evalExpr(e)
			}
			for _, st := range cc.Body {
				a.walkStmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		a.genTypeSwitch(s)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			a.walkStmt(cc.Comm)
			for _, st := range cc.Body {
				a.walkStmt(st)
			}
		}
	case *ast.SendStmt:
		ch := a.evalExpr(s.Chan)
		v := a.evalExpr(s.Value)
		// Channel contents collapse into the element cell; sends are
		// not recorded as writes — channels are the sanctioned,
		// synchronized way to move data between ranks.
		a.attach(ch, storeC{elemField, v})
	case *ast.IncDecStmt:
		a.recordWriteExpr(s.X, s.X.Pos())
	case *ast.GoStmt:
		a.evalExpr(s.Call)
	case *ast.DeferStmt:
		a.evalExpr(s.Call)
	case *ast.LabeledStmt:
		a.walkStmt(s.Stmt)
	}
}

// genValueSpec handles `var a, b T = ...` in any scope.
func (a *Analysis) genValueSpec(vs *ast.ValueSpec) {
	info := a.info()
	vars := make([]*types.Var, len(vs.Names))
	for i, name := range vs.Names {
		v, _ := info.Defs[name].(*types.Var)
		vars[i] = v
		if v != nil {
			// Materialize storage (and register globals) even when the
			// variable is never addressed.
			a.varNodeFor(v)
			if isGlobalVar(v) {
				a.storageFor(v)
			}
		}
	}
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		if call, ok := callgraph.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			a.evalExpr(call)
			for i, v := range vars {
				if v != nil {
					a.bindValue(a.resNodeFor(call, i), v)
				}
			}
			return
		}
	}
	for i, val := range vs.Values {
		vn := a.evalExpr(val)
		if i < len(vars) && vars[i] != nil {
			a.bindValue(vn, vars[i])
		}
	}
}

func (a *Analysis) genReturn(s *ast.ReturnStmt) {
	if a.ctx.node == nil {
		return
	}
	if len(s.Results) == 1 {
		if call, ok := callgraph.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			sig := a.sigOf(a.ctx.node)
			if sig != nil && sig.Results().Len() > 1 {
				a.evalExpr(call)
				for i := 0; i < sig.Results().Len(); i++ {
					a.ensureEdge(a.resNodeFor(call, i), a.retNodeFor(a.ctx.node, i))
				}
				return
			}
		}
	}
	for i, e := range s.Results {
		a.ensureEdge(a.evalExpr(e), a.retNodeFor(a.ctx.node, i))
	}
}

func (a *Analysis) genAssign(s *ast.AssignStmt) {
	info := a.info()
	record := s.Tok != token.DEFINE
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		rhs := callgraph.Unparen(s.Rhs[0])
		switch rhs := rhs.(type) {
		case *ast.CallExpr:
			a.evalExpr(rhs)
			for i, lhs := range s.Lhs {
				var t types.Type
				if tv, ok := info.Types[rhs]; ok {
					if tup, ok := tv.Type.(*types.Tuple); ok && i < tup.Len() {
						t = tup.At(i).Type()
					}
				}
				a.assignTo(lhs, a.resNodeFor(rhs, i), t, record)
			}
			return
		default:
			// v, ok := m[k] / <-ch / x.(T): the value flows to the
			// first target, ok is a scalar.
			vn := a.evalExpr(rhs)
			a.assignTo(s.Lhs[0], vn, typeOf(info, rhs), record)
			a.assignTo(s.Lhs[1], a.deadNode(), nil, record)
			return
		}
	}
	for i := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		vn := a.evalExpr(s.Rhs[i])
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment (+=, |=, ...): scalar/string only,
			// no pointer flow — but the mutation itself counts.
			a.recordWriteExpr(s.Lhs[i], s.Lhs[i].Pos())
			continue
		}
		a.assignTo(s.Lhs[i], vn, typeOf(info, s.Rhs[i]), record)
	}
}

// assignTo binds a value node to an assignment target, recording the
// write when record is set (plain `=`; `:=` is initialization).
func (a *Analysis) assignTo(lhs ast.Expr, vn int, vt types.Type, record bool) {
	info := a.info()
	lhs = callgraph.Unparen(lhs)
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		v := varFor(info, lhs)
		if v == nil {
			return
		}
		a.bindValue(vn, v)
		if record {
			a.recordVarWrite(lhs, v)
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[lhs.Sel].(*types.Var); ok && info.Selections[lhs] == nil {
			// Qualified package-level variable: pkg.V = x.
			a.bindValue(vn, v)
			if record {
				a.recordVarWrite(lhs, v)
			}
			return
		}
		base := a.evalExpr(lhs.X)
		f := lhs.Sel.Name
		ft := typeOf(info, lhs)
		a.storeInto(base, f, vn, ft)
		if record {
			a.recordObjWrite(lhs, base, f)
		}
	case *ast.IndexExpr:
		base := a.evalExpr(lhs.X)
		a.evalExpr(lhs.Index)
		ft := typeOf(info, lhs)
		a.storeInto(base, elemField, vn, ft)
		if record {
			a.recordObjWrite(lhs, base, elemField)
		}
	case *ast.StarExpr:
		base := a.evalExpr(lhs.X)
		ft := typeOf(info, lhs)
		a.storeInto(base, elemField, vn, ft)
		if record {
			a.recordObjWrite(lhs, base, elemField)
		}
	}
}

func (a *Analysis) storeInto(base int, field string, src int, t types.Type) {
	if t == nil {
		return
	}
	if structlike(t) {
		a.attach(base, storeSubC{field, t, src})
		return
	}
	if pointerish(t) {
		a.attach(base, storeC{field, src})
	}
}

func (a *Analysis) genRange(s *ast.RangeStmt) {
	info := a.info()
	xn := a.evalExpr(s.X)
	xt := typeOf(info, s.X)
	record := s.Tok == token.ASSIGN
	if xt == nil {
		a.walkStmt(s.Body)
		return
	}
	var keyT, valT types.Type
	load := true
	switch u := xt.Underlying().(type) {
	case *types.Slice:
		valT = u.Elem()
	case *types.Array:
		valT = u.Elem()
	case *types.Pointer: // *[N]T
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			valT = arr.Elem()
		}
	case *types.Map:
		keyT, valT = u.Key(), u.Elem()
	case *types.Chan:
		valT = u.Elem()
	default:
		load = false // string, int, func iterators: no tracked elements
	}
	bindRange := func(target ast.Expr, t types.Type) {
		if target == nil || t == nil {
			return
		}
		n := a.newNode()
		if structlike(t) {
			a.attach(xn, loadSubC{elemField, t, n})
			a.recordLoad(xn, elemField)
		} else if pointerish(t) {
			a.attach(xn, loadC{elemField, n})
			a.recordLoad(xn, elemField)
		}
		a.assignTo(target, n, t, record)
	}
	if load {
		// Map keys share the element cell with values: collapsed but
		// conservative.
		bindRange(s.Key, keyT)
		bindRange(s.Value, valT)
	}
	a.walkStmt(s.Body)
}

func (a *Analysis) genTypeSwitch(s *ast.TypeSwitchStmt) {
	a.walkStmt(s.Init)
	info := a.info()
	var xn = -1
	switch assign := s.Assign.(type) {
	case *ast.AssignStmt:
		if ta, ok := callgraph.Unparen(assign.Rhs[0]).(*ast.TypeAssertExpr); ok {
			xn = a.evalExpr(ta.X)
		}
	case *ast.ExprStmt:
		if ta, ok := callgraph.Unparen(assign.X).(*ast.TypeAssertExpr); ok {
			xn = a.evalExpr(ta.X)
		}
	}
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if v, ok := info.Implicits[cc].(*types.Var); ok && xn >= 0 {
			a.bindValue(xn, v)
		}
		for _, st := range cc.Body {
			a.walkStmt(st)
		}
	}
}

// ---- expressions ----

// evalExpr returns the constraint node carrying e's points-to set,
// generating e's constraints exactly once.
func (a *Analysis) evalExpr(e ast.Expr) int {
	e = callgraph.Unparen(e)
	if n, ok := a.exprNodes[e]; ok {
		return n
	}
	n := a.evalUncached(e)
	a.exprNodes[e] = n
	return n
}

func (a *Analysis) evalUncached(e ast.Expr) int {
	info := a.info()
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		switch obj := obj.(type) {
		case *types.Var:
			return a.varNodeFor(obj)
		case *types.Func:
			return a.funcValueNode(obj)
		}
		return a.deadNode()
	case *ast.SelectorExpr:
		return a.evalSelector(e)
	case *ast.StarExpr:
		return a.loadFrom(a.evalExpr(e.X), elemField, typeOf(info, e))
	case *ast.IndexExpr:
		if fn := genericFuncValue(info, e); fn != nil {
			return a.funcValueNode(fn)
		}
		base := a.evalExpr(e.X)
		a.evalExpr(e.Index)
		return a.loadFrom(base, elemField, typeOf(info, e))
	case *ast.IndexListExpr:
		if fn := genericFuncValue(info, e); fn != nil {
			return a.funcValueNode(fn)
		}
		return a.deadNode()
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				a.evalExpr(b)
			}
		}
		return a.evalExpr(e.X) // same backing store
	case *ast.CallExpr:
		return a.genCall(e)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			return a.addrOf(e.X)
		case token.ARROW:
			return a.loadFrom(a.evalExpr(e.X), elemField, typeOf(info, e))
		}
		a.evalExpr(e.X)
		return a.deadNode()
	case *ast.BinaryExpr:
		a.evalExpr(e.X)
		a.evalExpr(e.Y)
		return a.deadNode()
	case *ast.CompositeLit:
		return a.genComposite(e)
	case *ast.FuncLit:
		return a.litValueNode(e)
	case *ast.TypeAssertExpr:
		// Pass-through: every object flows, regardless of the asserted
		// type (over-approximation).
		return a.evalExpr(e.X)
	}
	return a.deadNode()
}

// loadFrom creates a node fed by cell field of the base set, and
// records the access.
func (a *Analysis) loadFrom(base int, field string, t types.Type) int {
	n := a.newNode()
	if t == nil {
		return n
	}
	if structlike(t) {
		a.attach(base, loadSubC{field, t, n})
		a.recordLoad(base, field)
	} else if pointerish(t) {
		a.attach(base, loadC{field, n})
		a.recordLoad(base, field)
	}
	return n
}

func (a *Analysis) evalSelector(e *ast.SelectorExpr) int {
	info := a.info()
	sel := info.Selections[e]
	if sel == nil {
		// Qualified identifier: pkg.Var or pkg.Func.
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Var:
			return a.varNodeFor(obj)
		case *types.Func:
			return a.funcValueNode(obj)
		}
		return a.deadNode()
	}
	switch sel.Kind() {
	case types.FieldVal:
		base := a.evalExpr(e.X)
		return a.loadFrom(base, e.Sel.Name, sel.Type())
	case types.MethodVal:
		return a.methodValueNode(e)
	case types.MethodExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			n := a.funcValueNode(fn)
			for _, o := range a.PointsTo(n) {
				o.ExprRecv = true
			}
			return n
		}
	}
	return a.deadNode()
}

// funcValueNode returns a node holding the KFunc object for a
// declared function referenced as a value.
func (a *Analysis) funcValueNode(fn *types.Func) int {
	fn = fn.Origin()
	if n, ok := a.funcValues[fn]; ok {
		return n
	}
	o := a.newObject(KFunc, fn.Pos(), fn.Type(), nil, fn.Name())
	o.Fn = a.Graph.FuncNode(fn)
	o.FuncObj = fn
	n := a.newNode()
	a.addTo(n, o.ID)
	a.funcValues[fn] = n
	return n
}

// litValueNode returns a node holding the KFunc object for a function
// literal.
func (a *Analysis) litValueNode(l *ast.FuncLit) int {
	if n, ok := a.litValues[l]; ok {
		return n
	}
	node := a.Graph.LitNode(l)
	what := "func literal"
	if node != nil {
		what = node.String()
	}
	o := a.newObject(KFunc, l.Pos(), typeOf(a.info(), l), a.ctx.node, what)
	o.Fn = node
	n := a.newNode()
	a.addTo(n, o.ID)
	a.litValues[l] = n
	return n
}

// methodValueNode models x.M used as a value: a KFunc object carrying
// the receiver set, bound when the value is eventually called.
func (a *Analysis) methodValueNode(e *ast.SelectorExpr) int {
	info := a.info()
	fn, _ := info.Uses[e.Sel].(*types.Func)
	if fn == nil {
		return a.deadNode()
	}
	fn = fn.Origin()
	rn := a.newNode()
	a.ensureEdge(a.evalExpr(e.X), rn)
	o := a.newObject(KFunc, e.Pos(), typeOf(info, e), a.ctx.node, fn.Name())
	o.Fn = a.Graph.FuncNode(fn)
	o.FuncObj = fn
	o.RecvNode = rn
	n := a.newNode()
	a.addTo(n, o.ID)
	return n
}

// addrOf evaluates &x: the storage object for variables, the
// composite's object for literals, and — for field/element addresses
// — the base object set (object-granular, a documented
// approximation: a pointer to x.f aliases all of x).
func (a *Analysis) addrOf(x ast.Expr) int {
	info := a.info()
	x = callgraph.Unparen(x)
	switch x := x.(type) {
	case *ast.Ident:
		v := varFor(info, x)
		if v == nil {
			return a.deadNode()
		}
		a.varNodeFor(v) // materialize before storage aliasing
		o := a.storageFor(v)
		n := a.newNode()
		a.addTo(n, o.ID)
		return n
	case *ast.CompositeLit:
		return a.genComposite(x)
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal && structlike(sel.Type()) {
			return a.evalExpr(x) // &x.f of a struct field: the field sub-object
		}
		if sel := info.Selections[x]; sel == nil {
			return a.addrOf(x.Sel) // &pkg.V
		}
		return a.evalExpr(x.X)
	case *ast.IndexExpr:
		if et := typeOf(info, x); et != nil && structlike(et) {
			return a.evalExpr(x) // &s[i] of struct elements: the element sub-object
		}
		a.evalExpr(x.Index)
		return a.evalExpr(x.X)
	case *ast.StarExpr:
		return a.evalExpr(x.X) // &*p == p
	}
	a.evalExpr(x)
	return a.deadNode()
}

// genComposite allocates an object for a composite literal and wires
// its element initializers.  Initialization is not recorded as
// writing: the object cannot be shared before it exists.
func (a *Analysis) genComposite(e *ast.CompositeLit) int {
	info := a.info()
	t := typeOf(info, e)
	if t == nil {
		return a.deadNode()
	}
	o := a.newObject(KAlloc, e.Pos(), t, a.ctx.node, typeLabel(t))
	n := a.newNode()
	a.addTo(n, o.ID)
	initCell := func(field string, ft types.Type, val ast.Expr) {
		vn := a.evalExpr(val)
		if ft == nil {
			return
		}
		if structlike(ft) {
			so := a.subObject(o, field, ft)
			a.attach(vn, copyIntoC{dst: so})
		} else if pointerish(ft) {
			a.ensureEdge(vn, a.cellOf(o, field))
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				key, _ := callgraph.Unparen(kv.Key).(*ast.Ident)
				if key == nil {
					continue
				}
				ft := typeOf(info, kv.Value)
				if f, ok := info.Uses[key].(*types.Var); ok {
					ft = f.Type()
				}
				initCell(key.Name, ft, kv.Value)
				continue
			}
			if i < u.NumFields() {
				initCell(u.Field(i).Name(), u.Field(i).Type(), el)
			}
		}
	case *types.Slice:
		for _, el := range e.Elts {
			a.initElem(o, u.Elem(), el)
		}
	case *types.Array:
		for _, el := range e.Elts {
			a.initElem(o, u.Elem(), el)
		}
	case *types.Map:
		for _, el := range e.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			a.initElem(o, u.Key(), kv.Key)
			a.initElem(o, u.Elem(), kv.Value)
		}
	}
	return n
}

func (a *Analysis) initElem(o *Object, et types.Type, val ast.Expr) {
	if kv, ok := val.(*ast.KeyValueExpr); ok {
		// Keyed array/slice element: {3: v}.
		val = kv.Value
	}
	vn := a.evalExpr(val)
	if structlike(et) {
		so := a.subObject(o, elemField, et)
		a.attach(vn, copyIntoC{dst: so})
	} else if pointerish(et) {
		a.ensureEdge(vn, a.cellOf(o, elemField))
	}
}

// ---- calls ----

func (a *Analysis) genCall(call *ast.CallExpr) int {
	info := a.info()
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: reference-preserving for pointerish targets.
		vn := a.evalExpr(call.Args[0])
		if t := typeOf(info, call); t != nil && pointerish(t) {
			return vn
		}
		return a.deadNode()
	}
	fun := callgraph.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return a.genBuiltin(call, b.Name())
		}
	}

	nres := resultCount(info, call)
	ci := &callInfo{call: call, pkg: a.ctx.pkg.Types, ellipsis: call.Ellipsis.IsValid()}
	for i := 0; i < nres; i++ {
		ci.results = append(ci.results, a.resNodeFor(call, i))
	}
	for _, arg := range call.Args {
		ci.args = append(ci.args, a.evalExpr(arg))
	}

	site := a.siteOf[call]
	switch {
	case site != nil && site.Iface:
		sel := fun.(*ast.SelectorExpr)
		ci.name = sel.Sel.Name
		a.attach(a.evalExpr(sel.X), ifaceC{ci})
	case site != nil && site.Dynamic:
		a.attach(a.evalExpr(call.Fun), funcC{ci})
	case site != nil && site.Static != nil:
		a.genStaticCall(ci, site.Static, fun)
	case site != nil && len(site.Callees) == 1 && site.Callees[0].Lit != nil:
		// Immediately invoked literal.
		a.litValueNode(site.Callees[0].Lit)
		a.bindCall(ci, site.Callees[0], -1, nil, false)
	default:
		// No site (package-level initializer): classify locally.
		a.genUntrackedCall(ci, fun)
	}
	if nres > 0 {
		return ci.results[0]
	}
	return a.deadNode()
}

func (a *Analysis) genStaticCall(ci *callInfo, fn *types.Func, fun ast.Expr) {
	info := a.info()
	recv := -1
	if sel, ok := fun.(*ast.SelectorExpr); ok && info.Selections[sel] != nil {
		recv = a.evalExpr(sel.X)
	}
	node := a.Graph.FuncNode(fn.Origin())
	if node == nil {
		// Out-of-set callee: results are open, escaping function
		// values taint their parameters.
		a.markIncomplete(ci)
		a.escapeArgs(ci)
		return
	}
	a.bindCall(ci, node, recv, nil, false)
}

// genUntrackedCall handles calls with no call-graph site
// (package-level initializer expressions).
func (a *Analysis) genUntrackedCall(ci *callInfo, fun ast.Expr) {
	info := a.info()
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			a.genStaticCall(ci, fn, fun)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			a.genStaticCall(ci, fn, fun)
			return
		}
	case *ast.FuncLit:
		a.litValueNode(fun)
		if node := a.Graph.LitNode(fun); node != nil {
			a.bindCall(ci, node, -1, nil, false)
			return
		}
	}
	a.attach(a.evalExpr(fun), funcC{ci})
}

func (a *Analysis) genBuiltin(call *ast.CallExpr, name string) int {
	info := a.info()
	switch name {
	case "append":
		base := a.evalExpr(call.Args[0])
		n := a.newNode()
		a.ensureEdge(base, n)
		t := typeOf(info, call)
		var elem types.Type
		if t != nil {
			if sl, ok := t.Underlying().(*types.Slice); ok {
				elem = sl.Elem()
			}
			// append may allocate a fresh backing store.
			o := a.newObject(KAlloc, call.Pos(), t, a.ctx.node, typeLabel(t))
			a.addTo(n, o.ID)
		}
		for _, arg := range call.Args[1:] {
			vn := a.evalExpr(arg)
			if call.Ellipsis.IsValid() {
				// append(s, t...): spread the source elements.
				vn = a.loadFrom(vn, elemField, elem)
			}
			if elem != nil {
				if structlike(elem) {
					a.attach(n, storeSubC{elemField, elem, vn})
				} else if pointerish(elem) {
					a.attach(n, storeC{elemField, vn})
				}
			}
		}
		a.recordObjWrite(call, n, elemField)
		return n
	case "copy":
		dst := a.evalExpr(call.Args[0])
		src := a.evalExpr(call.Args[1])
		var elem types.Type
		if t := typeOf(info, call.Args[0]); t != nil {
			if sl, ok := t.Underlying().(*types.Slice); ok {
				elem = sl.Elem()
			}
		}
		if elem != nil {
			vn := a.loadFrom(src, elemField, elem)
			if structlike(elem) {
				a.attach(dst, storeSubC{elemField, elem, vn})
			} else if pointerish(elem) {
				a.attach(dst, storeC{elemField, vn})
			}
		}
		a.recordObjWrite(call, dst, elemField)
		return a.deadNode()
	case "new":
		t := typeOf(info, call)
		var pointee types.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			pointee = p.Elem()
		}
		o := a.newObject(KAlloc, call.Pos(), pointee, a.ctx.node, typeLabel(pointee))
		n := a.newNode()
		a.addTo(n, o.ID)
		return n
	case "make":
		t := typeOf(info, call)
		for _, arg := range call.Args[1:] {
			a.evalExpr(arg)
		}
		o := a.newObject(KAlloc, call.Pos(), t, a.ctx.node, typeLabel(t))
		n := a.newNode()
		a.addTo(n, o.ID)
		return n
	case "delete":
		m := a.evalExpr(call.Args[0])
		a.evalExpr(call.Args[1])
		a.recordObjWrite(call, m, elemField)
		return a.deadNode()
	case "clear":
		x := a.evalExpr(call.Args[0])
		a.recordObjWrite(call, x, elemField)
		return a.deadNode()
	case "recover":
		n := a.newNode()
		a.addTo(n, a.unknown.ID)
		return n
	default: // len, cap, close, panic, print, println, min, max, complex, real, imag
		for _, arg := range call.Args {
			a.evalExpr(arg)
		}
		return a.deadNode()
	}
}

// ---- recording ----

func (a *Analysis) recordLoad(base int, field string) {
	a.loads = append(a.loads, Access{Node: a.ctx.node, Base: base, Field: field})
}

func (a *Analysis) recordObjWrite(lhs ast.Expr, base int, field string) {
	a.writes = append(a.writes, Write{
		Pos:   lhs.Pos(),
		Node:  a.ctx.node,
		Base:  base,
		Field: field,
		What:  exprText(a.ctx.pkg.Fset, lhs),
		Expr:  lhs,
	})
}

func (a *Analysis) recordVarWrite(lhs ast.Expr, v *types.Var) {
	a.writes = append(a.writes, Write{
		Pos:  lhs.Pos(),
		Node: a.ctx.node,
		Base: -1,
		Var:  v,
		What: v.Name(),
		Expr: lhs,
	})
}

// recordWriteExpr records a mutation through an arbitrary lvalue
// (IncDec, compound assignment) without generating flow.
func (a *Analysis) recordWriteExpr(lhs ast.Expr, pos token.Pos) {
	info := a.info()
	lhs = callgraph.Unparen(lhs)
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if v := varFor(info, lhs); v != nil {
			a.recordVarWrite(lhs, v)
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[lhs.Sel].(*types.Var); ok && info.Selections[lhs] == nil {
			a.recordVarWrite(lhs, v)
			return
		}
		a.recordObjWrite(lhs, a.evalExpr(lhs.X), lhs.Sel.Name)
	case *ast.IndexExpr:
		a.evalExpr(lhs.Index)
		a.recordObjWrite(lhs, a.evalExpr(lhs.X), elemField)
	case *ast.StarExpr:
		a.recordObjWrite(lhs, a.evalExpr(lhs.X), elemField)
	}
}

// ---- small helpers ----

func varFor(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func resultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 0
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len()
	default:
		if b, ok := t.(*types.Basic); ok && b.Kind() == types.Invalid {
			return 0
		}
		return 1
	}
}

func genericFuncValue(info *types.Info, e ast.Expr) *types.Func {
	var x ast.Expr
	switch e := e.(type) {
	case *ast.IndexExpr:
		x = e.X
	case *ast.IndexListExpr:
		x = e.X
	default:
		return nil
	}
	switch x := callgraph.Unparen(x).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "<unknown type>"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	if buf.Len() > 60 {
		return buf.String()[:57] + "..."
	}
	return buf.String()
}
