// Package ptsfix exercises the points-to analysis: func values
// through variables, slices, struct fields and method values,
// interface narrowing, struct copy semantics, capture sets and
// escape taint.
package ptsfix

import "sort"

// ---- func values ----

func alpha() {}
func beta()  {}

// viaVar stores one function in a local variable and calls it.
func viaVar() {
	f := alpha
	f()
}

// viaSlice calls a function loaded from a locally built slice.
func viaSlice() {
	fs := []func(){alpha, beta}
	fs[0]()
}

// viaField calls a function stored in a struct field.
type holder struct {
	fn func()
}

func viaField() {
	h := &holder{fn: beta}
	h.fn()
}

// viaMethodValue binds a method value and calls it through a
// variable.
type counter struct {
	n int
}

func (c *counter) bump() { c.n++ }

func viaMethodValue() {
	c := &counter{}
	f := c.bump
	f()
}

// viaEscape hands a function to the standard library: the callee set
// must stay incomplete.
func viaEscape() {
	f := func(i, j int) bool { return i < j }
	sort.SliceStable([]int{2, 1}, f)
}

// ---- interface narrowing ----

type animal interface{ sound() string }

type dog struct{}
type cat struct{}

func (dog) sound() string { return "woof" }
func (cat) sound() string { return "meow" }

// onlyDogs builds a dog and calls through the interface: points-to
// should narrow the CHA {dog, cat} pair down to dog alone.
func onlyDogs() string {
	var a animal = dog{}
	return a.sound()
}

// ---- struct copy semantics ----

type config struct {
	name string
	dst  *int
}

// mutate writes its by-value parameter: the caller's storage must not
// be aliased.
func mutate(c config) {
	c.name = "changed"
}

func caller() {
	target := 0
	c := config{name: "orig", dst: &target}
	mutate(c)
}

// ---- captures ----

var registry = map[string]func(){}

// capture registers closures over a loop variable and an outer
// accumulator.
func capture() func() int {
	total := 0
	for i := 0; i < 3; i++ {
		j := i
		registry["k"] = func() { total += j }
	}
	return func() int { return total }
}
