// Package pointsto implements a flow-insensitive, field-sensitive-lite
// Andersen-style points-to analysis over one package closure, using
// only the standard library (like the rest of internal/lint).
//
// Abstract objects are allocation sites (new, make, composite
// literals, &T{}), the implicit storage of addressed or struct-typed
// variables, package-level variables, function values, and one
// distinguished Unknown object standing for everything the analyzed
// set cannot see.  Constraint nodes hold points-to sets; assignments
// add subset edges, field accesses add load/store constraints, and
// calls through interfaces or func values add resolution constraints,
// all propagated to a fixpoint with a delta worklist.
//
// Field sensitivity is "lite": named struct fields are distinguished
// by their final name (embedded promotion flattens into the outer
// object's namespace), while slice, array, map and channel contents
// collapse into a single "[*]" cell.  Struct values are modeled with
// per-variable storage objects; struct assignments, argument bindings
// and stores copy field cells between objects instead of aliasing
// them, so a callee mutating its by-value parameter never taints the
// caller's storage.
//
// Soundness posture mirrors the call graph's: within the analyzed
// set the analysis over-approximates except for the explicitly
// documented holes (values escaping through standard-library calls
// are tainted Unknown on the way out but their internals are not
// tracked; pointers written through Unknown are dropped).  Every
// consumer treats Unknown as "resolution failed, stay conservative".
package pointsto

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hyades/internal/lint/callgraph"
)

// Kind classifies an abstract object.
type Kind int

const (
	// KAlloc is a heap allocation site: new, make, a composite
	// literal, or an append that may grow.
	KAlloc Kind = iota
	// KStorage is the implicit storage of a local variable or
	// parameter (materialized when the variable is addressed or holds
	// a struct/array value).
	KStorage
	// KGlobal is the storage of a package-level variable.
	KGlobal
	// KFunc is a function value: a declared function, a bound method
	// value, or a function literal.
	KFunc
	// KField is a materialized struct-typed field (or element) of
	// another object.
	KField
	// KUnknown is the taint object for everything outside the
	// analyzed set.
	KUnknown
)

// An Object is one abstract memory location.
type Object struct {
	ID   int
	Kind Kind
	Pos  token.Pos
	// Type is the allocated/stored type (the pointee for &x, the
	// composite type for literals); nil for Unknown.
	Type types.Type
	// Fn is the in-set body behind a KFunc object; nil when the
	// function lives outside the analyzed set.
	Fn *callgraph.Node
	// FuncObj is the declared function behind a KFunc object (nil for
	// literals).
	FuncObj *types.Func
	// Var is the variable behind KStorage/KGlobal objects.
	Var *types.Var
	// In is the body the allocation happens in; nil for package-level
	// objects (use Analysis.OwnerOf for a position-based fallback).
	In *callgraph.Node
	// RecvNode holds the bound receiver set for method-value KFunc
	// objects; -1 otherwise.
	RecvNode int
	// ExprRecv marks method-expression values (T.M): the receiver is
	// passed as the first call argument.
	ExprRecv bool
	// What is a short human label for witness rendering.
	What string

	// unknownCells: every cell of this object additionally holds
	// Unknown (set for by-value copies of tainted values).
	unknownCells bool
}

// A Write is one recorded mutation: a store through a selector, index
// or dereference (Base >= 0), or a direct assignment to a variable
// (Var != nil, Base == -1).  Composite-literal initialization is
// deliberately not recorded: an object is initialized before it can
// be published.
type Write struct {
	Pos   token.Pos
	Node  *callgraph.Node // writing body; nil for package-level initializers
	Base  int             // constraint node of the written base objects; -1 for var writes
	Field string
	Var   *types.Var // non-nil for direct variable writes
	What  string     // rendered lvalue
	Expr  ast.Expr   // the lvalue (or builtin call) as written
}

// An Access is one recorded pointer-carrying load: reading cell Field
// of the objects in Base, from within Node.
type Access struct {
	Node  *callgraph.Node // nil for package-level initializers
	Base  int
	Field string
}

// A Resolution is the points-to verdict for one dynamic or interface
// call site.
type Resolution struct {
	// Callees are the in-set bodies the call can reach, deduped.
	Callees []*callgraph.Node
	// Incomplete is set when an Unknown or out-of-set function value
	// reached the call: the callee set is a lower bound, not a proof.
	Incomplete bool
}

type cellKey struct {
	obj   int
	field string
}

type retKey struct {
	node int
	i    int
}

type resKey struct {
	call *ast.CallExpr
	i    int
}

type bindKey struct {
	call *ast.CallExpr
	fn   int
	recv int
}

// elemField is the collapsed cell for slice/array/map/chan contents
// and dereferenced pointees.
const elemField = "[*]"

// ElemField is the exported name of the collapsed element cell, for
// clients inspecting recorded Writes and Accesses.
const ElemField = elemField

// Analysis is the result of one points-to run over a call graph.
type Analysis struct {
	Graph   *callgraph.Graph
	Objects []*Object

	unknown     *Object
	unknownNode int

	pts    []map[int]bool
	delta  []map[int]bool
	queued []bool
	work   []int
	succ   [][]int
	edges  map[uint64]bool
	cons   [][]constraint

	varNodes  map[*types.Var]int
	exprNodes map[ast.Expr]int
	retNodes  map[retKey]int
	resNodes  map[resKey]int
	cells     map[cellKey]int
	cellsOf   map[int][]string

	sub       map[cellKey]*Object
	pairSeen  map[uint64]bool
	copyBySrc map[int][]int
	copyByDst map[int][]int
	bindSeen  map[bindKey]bool
	taintSeen map[int]bool

	objForVar   map[*types.Var]*Object
	funcValues  map[*types.Func]int // node holding the KFunc object
	litValues   map[*ast.FuncLit]int
	variadicObj map[*types.Var]*Object

	globals []*Object
	writes  []Write
	loads   []Access
	res     map[*ast.CallExpr]*Resolution
	free    map[*callgraph.Node][]*types.Var
	owner   map[*Object]*callgraph.Node

	siteOf map[*ast.CallExpr]*callgraph.Site
	ctx    genCtx
}

// Analyze runs the analysis over g's packages to a fixpoint.
func Analyze(g *callgraph.Graph) *Analysis {
	a := &Analysis{
		Graph:       g,
		edges:       map[uint64]bool{},
		varNodes:    map[*types.Var]int{},
		exprNodes:   map[ast.Expr]int{},
		retNodes:    map[retKey]int{},
		resNodes:    map[resKey]int{},
		cells:       map[cellKey]int{},
		cellsOf:     map[int][]string{},
		sub:         map[cellKey]*Object{},
		pairSeen:    map[uint64]bool{},
		copyBySrc:   map[int][]int{},
		copyByDst:   map[int][]int{},
		bindSeen:    map[bindKey]bool{},
		taintSeen:   map[int]bool{},
		objForVar:   map[*types.Var]*Object{},
		funcValues:  map[*types.Func]int{},
		litValues:   map[*ast.FuncLit]int{},
		variadicObj: map[*types.Var]*Object{},
		res:         map[*ast.CallExpr]*Resolution{},
		free:        map[*callgraph.Node][]*types.Var{},
		owner:       map[*Object]*callgraph.Node{},
		siteOf:      map[*ast.CallExpr]*callgraph.Site{},
	}
	a.unknown = a.newObject(KUnknown, token.NoPos, nil, nil, "<unknown>")
	a.unknownNode = a.newNode()
	a.addTo(a.unknownNode, a.unknown.ID)
	for _, n := range g.Nodes {
		for _, s := range n.Sites {
			a.siteOf[s.Call] = s
		}
	}
	for _, pkg := range g.Packages {
		a.genPackageInits(pkg)
	}
	for _, n := range g.Nodes {
		a.genNode(n)
	}
	a.seedExported()
	a.solve()
	return a
}

// ---- object and node allocation ----

func (a *Analysis) newObject(k Kind, pos token.Pos, t types.Type, in *callgraph.Node, what string) *Object {
	o := &Object{ID: len(a.Objects), Kind: k, Pos: pos, Type: t, In: in, RecvNode: -1, What: what}
	a.Objects = append(a.Objects, o)
	return o
}

func (a *Analysis) newNode() int {
	a.pts = append(a.pts, map[int]bool{})
	a.delta = append(a.delta, map[int]bool{})
	a.queued = append(a.queued, false)
	a.succ = append(a.succ, nil)
	a.cons = append(a.cons, nil)
	return len(a.pts) - 1
}

// deadNode is a fresh node that nothing flows into.
func (a *Analysis) deadNode() int { return a.newNode() }

// Unknown returns the taint object.
func (a *Analysis) Unknown() *Object { return a.unknown }

// ---- propagation core ----

func (a *Analysis) addTo(n, objID int) {
	if a.pts[n][objID] {
		return
	}
	a.pts[n][objID] = true
	a.delta[n][objID] = true
	if !a.queued[n] {
		a.queued[n] = true
		a.work = append(a.work, n)
	}
}

func (a *Analysis) ensureEdge(src, dst int) {
	if src == dst {
		return
	}
	key := uint64(src)<<32 | uint64(uint32(dst))
	if a.edges[key] {
		return
	}
	a.edges[key] = true
	a.succ[src] = append(a.succ[src], dst)
	for _, oid := range sortedKeys(a.pts[src]) {
		a.addTo(dst, oid)
	}
}

func (a *Analysis) attach(n int, c constraint) {
	a.cons[n] = append(a.cons[n], c)
	for _, oid := range sortedKeys(a.pts[n]) {
		c.apply(a, a.Objects[oid])
	}
}

func (a *Analysis) solve() {
	for len(a.work) > 0 {
		n := a.work[0]
		a.work = a.work[1:]
		a.queued[n] = false
		d := sortedKeys(a.delta[n])
		a.delta[n] = map[int]bool{}
		for _, oid := range d {
			o := a.Objects[oid]
			// cons/succ may grow while applying; new entries replay the
			// full set themselves, so a plain snapshot iteration is safe.
			for _, c := range a.cons[n] {
				c.apply(a, o)
			}
			for _, s := range a.succ[n] {
				a.addTo(s, oid)
			}
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ---- cells, storage, copy pairs ----

// cellOf returns the constraint node for field f of o, creating it on
// demand.  The "[*]" cell of a non-struct variable's storage IS the
// variable's node (so *(&x) reads and writes x), and every cell of
// Unknown is the Unknown node.
func (a *Analysis) cellOf(o *Object, field string) int {
	if o.Kind == KUnknown {
		return a.unknownNode
	}
	if (o.Kind == KStorage || o.Kind == KGlobal) && field == elemField && !structlike(o.Var.Type()) {
		return a.varNodeFor(o.Var)
	}
	ck := cellKey{o.ID, field}
	if n, ok := a.cells[ck]; ok {
		return n
	}
	n := a.newNode()
	a.cells[ck] = n
	a.cellsOf[o.ID] = append(a.cellsOf[o.ID], field)
	if o.unknownCells {
		a.addTo(n, a.unknown.ID)
	}
	// Wire the new cell into existing copy pairs, registering the cell
	// before recursing so cyclic pairs terminate.
	for _, src := range a.copyByDst[o.ID] {
		a.ensureEdge(a.cellOf(a.Objects[src], field), n)
	}
	for _, dst := range a.copyBySrc[o.ID] {
		a.ensureEdge(n, a.cellOf(a.Objects[dst], field))
	}
	return n
}

// addCopyPair records "dst's fields are copied from src's fields":
// every present and future cell of src flows into the same-named cell
// of dst.
func (a *Analysis) addCopyPair(src, dst *Object) {
	if src == dst || src.Kind == KUnknown {
		return
	}
	key := uint64(src.ID)<<32 | uint64(uint32(dst.ID))
	if a.pairSeen[key] {
		return
	}
	a.pairSeen[key] = true
	a.copyBySrc[src.ID] = append(a.copyBySrc[src.ID], dst.ID)
	a.copyByDst[dst.ID] = append(a.copyByDst[dst.ID], src.ID)
	if src.unknownCells {
		a.markUnknownCells(dst)
	}
	for _, f := range a.cellsOf[src.ID] {
		a.ensureEdge(a.cells[cellKey{src.ID, f}], a.cellOf(dst, f))
	}
}

// markUnknownCells taints every cell of o (present and future) with
// Unknown, propagating through copy pairs.
func (a *Analysis) markUnknownCells(o *Object) {
	if o.unknownCells || o.Kind == KUnknown {
		return
	}
	o.unknownCells = true
	for _, f := range a.cellsOf[o.ID] {
		a.addTo(a.cells[cellKey{o.ID, f}], a.unknown.ID)
	}
	for _, dst := range a.copyBySrc[o.ID] {
		a.markUnknownCells(a.Objects[dst])
	}
}

// subObject materializes the struct-typed field f of o as its own
// object, seeded into the field's cell, so nested selectors have a
// target.
func (a *Analysis) subObject(o *Object, field string, t types.Type) *Object {
	ck := cellKey{o.ID, field}
	if so, ok := a.sub[ck]; ok {
		return so
	}
	so := a.newObject(KField, o.Pos, t, o.In, o.What+"."+field)
	a.sub[ck] = so
	if o.unknownCells {
		so.unknownCells = true
	}
	a.addTo(a.cellOf(o, field), so.ID)
	return so
}

// varNodeFor returns the constraint node holding variable v's value,
// creating it (and, for struct/array variables, its storage object)
// on demand.
func (a *Analysis) varNodeFor(v *types.Var) int {
	if n, ok := a.varNodes[v]; ok {
		return n
	}
	n := a.newNode()
	a.varNodes[v] = n
	if structlike(v.Type()) {
		o := a.storageFor(v)
		a.addTo(n, o.ID)
	}
	return n
}

// storageFor returns the storage object of v, creating it on demand.
func (a *Analysis) storageFor(v *types.Var) *Object {
	if o, ok := a.objForVar[v]; ok {
		return o
	}
	kind := KStorage
	if isGlobalVar(v) {
		kind = KGlobal
	}
	// In stays nil: storage can be materialized from a caller's
	// binding, so the declaring body is recovered positionally by
	// OwnerOf instead.
	o := a.newObject(kind, v.Pos(), v.Type(), nil, v.Name())
	o.Var = v
	a.objForVar[v] = o
	if kind == KGlobal {
		a.globals = append(a.globals, o)
		if v.Exported() {
			// Exported globals can be read and written outside the
			// analyzed closure: their content is open.
			a.addTo(a.varNodeFor(v), a.unknown.ID)
			a.markUnknownCells(o)
		}
	}
	return o
}

func isGlobalVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// ---- constraints ----

type constraint interface {
	apply(a *Analysis, o *Object)
}

// loadC: dst ⊇ cell(o, field) for every o arriving at the base node.
type loadC struct {
	field string
	dst   int
}

func (c loadC) apply(a *Analysis, o *Object) {
	if o.Kind == KUnknown {
		a.addTo(c.dst, a.unknown.ID)
		return
	}
	a.ensureEdge(a.cellOf(o, c.field), c.dst)
}

// loadSubC: like loadC for struct-typed fields — materializes the
// field sub-object first so the cell is never empty.
type loadSubC struct {
	field string
	typ   types.Type
	dst   int
}

func (c loadSubC) apply(a *Analysis, o *Object) {
	if o.Kind == KUnknown {
		a.addTo(c.dst, a.unknown.ID)
		return
	}
	a.subObject(o, c.field, c.typ)
	a.ensureEdge(a.cellOf(o, c.field), c.dst)
}

// storeC: cell(o, field) ⊇ src.  Stores through Unknown are dropped
// (documented escape hole).
type storeC struct {
	field string
	src   int
}

func (c storeC) apply(a *Analysis, o *Object) {
	if o.Kind == KUnknown {
		return
	}
	a.ensureEdge(c.src, a.cellOf(o, c.field))
}

// storeSubC: a struct value stored into field — copy the value's
// cells into the materialized field sub-object.
type storeSubC struct {
	field string
	typ   types.Type
	src   int
}

func (c storeSubC) apply(a *Analysis, o *Object) {
	if o.Kind == KUnknown {
		return
	}
	so := a.subObject(o, c.field, c.typ)
	a.attach(c.src, copyIntoC{dst: so})
}

// copyIntoC: every struct object arriving at the source node has its
// cells copied into dst.
type copyIntoC struct {
	dst *Object
}

func (c copyIntoC) apply(a *Analysis, o *Object) {
	if o.Kind == KUnknown {
		a.markUnknownCells(c.dst)
		return
	}
	a.addCopyPair(o, c.dst)
}

// escapeC taints the parameters of in-set functions whose value
// escapes into a call the analysis cannot see.
type escapeC struct{}

func (escapeC) apply(a *Analysis, o *Object) {
	if o.Kind == KFunc && o.Fn != nil {
		a.taintParams(o.Fn)
	}
}

// callInfo carries one call site's evaluated pieces for deferred
// (constraint-driven) binding.
type callInfo struct {
	call     *ast.CallExpr
	pkg      *types.Package
	args     []int
	ellipsis bool
	results  []int
	name     string // method name for interface dispatch
}

// funcC resolves a func-value call as KFunc objects arrive.
type funcC struct {
	ci *callInfo
}

func (c funcC) apply(a *Analysis, o *Object) {
	switch o.Kind {
	case KUnknown:
		a.markIncomplete(c.ci)
	case KFunc:
		if o.Fn == nil {
			a.markIncomplete(c.ci)
			a.escapeArgs(c.ci)
			return
		}
		recv := -1
		if o.RecvNode >= 0 {
			recv = o.RecvNode
		}
		a.bindCall(c.ci, o.Fn, recv, nil, o.ExprRecv)
	}
}

// ifaceC resolves an interface method call as receiver objects
// arrive.
type ifaceC struct {
	ci *callInfo
}

func (c ifaceC) apply(a *Analysis, o *Object) {
	if o.Kind == KUnknown || o.Kind == KFunc || o.Type == nil {
		a.markIncomplete(c.ci)
		return
	}
	obj, _, _ := types.LookupFieldOrMethod(o.Type, true, c.ci.pkg, c.ci.name)
	fn, ok := obj.(*types.Func)
	if !ok {
		a.markIncomplete(c.ci)
		return
	}
	node := a.Graph.FuncNode(fn.Origin())
	if node == nil {
		a.markIncomplete(c.ci)
		return
	}
	a.bindCall(c.ci, node, -1, o, false)
}

func (a *Analysis) markIncomplete(ci *callInfo) {
	r := a.resolutionFor(ci.call)
	r.Incomplete = true
	for _, rn := range ci.results {
		a.addTo(rn, a.unknown.ID)
	}
}

func (a *Analysis) escapeArgs(ci *callInfo) {
	for _, an := range ci.args {
		a.attach(an, escapeC{})
	}
}

func (a *Analysis) resolutionFor(call *ast.CallExpr) *Resolution {
	r, ok := a.res[call]
	if !ok {
		r = &Resolution{}
		a.res[call] = r
	}
	return r
}

// bindCall wires one call site to one concrete callee: receiver,
// arguments (with variadic packing and struct copy semantics) and
// results.  recvNode/recvObj carry the receiver set for method-value
// and interface dispatch; exprRecv shifts arguments for T.M method
// expressions.
func (a *Analysis) bindCall(ci *callInfo, fn *callgraph.Node, recvNode int, recvObj *Object, exprRecv bool) {
	rk := recvNode
	if recvObj != nil {
		rk = -2 - recvObj.ID
	}
	key := bindKey{ci.call, fn.Index, rk}
	if a.bindSeen[key] {
		return
	}
	a.bindSeen[key] = true

	r := a.resolutionFor(ci.call)
	found := false
	for _, c := range r.Callees {
		if c == fn {
			found = true
			break
		}
	}
	if !found {
		r.Callees = append(r.Callees, fn)
	}

	sig := a.sigOf(fn)
	if sig == nil {
		return
	}
	args := ci.args
	if rv := sig.Recv(); rv != nil {
		switch {
		case recvObj != nil:
			a.bindValueObj(recvObj, rv)
		case recvNode >= 0:
			a.bindValue(recvNode, rv)
		case exprRecv && len(args) > 0:
			a.bindValue(args[0], rv)
			args = args[1:]
		}
	}
	np := sig.Params().Len()
	for i, an := range args {
		if sig.Variadic() && i >= np-1 {
			pv := sig.Params().At(np - 1)
			if ci.ellipsis {
				a.ensureEdge(an, a.varNodeFor(pv))
			} else {
				vo := a.variadicFor(fn, pv)
				a.ensureEdge(an, a.cellOf(vo, elemField))
			}
			continue
		}
		if i < np {
			a.bindValue(an, sig.Params().At(i))
		}
	}
	for i, rn := range ci.results {
		if i < sig.Results().Len() {
			a.ensureEdge(a.retNodeFor(fn, i), rn)
		}
	}
}

// bindValue binds a value node to a parameter/receiver variable:
// struct-typed bindings copy fields, everything else aliases.
func (a *Analysis) bindValue(src int, v *types.Var) {
	if structlike(v.Type()) {
		a.attach(src, copyIntoC{dst: a.storageFor(v)})
		return
	}
	a.ensureEdge(src, a.varNodeFor(v))
}

func (a *Analysis) bindValueObj(o *Object, v *types.Var) {
	if structlike(v.Type()) {
		a.addCopyPair(o, a.storageFor(v))
		return
	}
	a.addTo(a.varNodeFor(v), o.ID)
}

func (a *Analysis) variadicFor(fn *callgraph.Node, pv *types.Var) *Object {
	if o, ok := a.variadicObj[pv]; ok {
		return o
	}
	o := a.newObject(KAlloc, pv.Pos(), pv.Type(), fn, pv.Name()+"...")
	a.variadicObj[pv] = o
	a.addTo(a.varNodeFor(pv), o.ID)
	return o
}

func (a *Analysis) retNodeFor(fn *callgraph.Node, i int) int {
	k := retKey{fn.Index, i}
	if n, ok := a.retNodes[k]; ok {
		return n
	}
	n := a.newNode()
	a.retNodes[k] = n
	return n
}

func (a *Analysis) resNodeFor(call *ast.CallExpr, i int) int {
	k := resKey{call, i}
	if n, ok := a.resNodes[k]; ok {
		return n
	}
	n := a.newNode()
	a.resNodes[k] = n
	return n
}

func (a *Analysis) sigOf(fn *callgraph.Node) *types.Signature {
	if fn.Func != nil {
		sig, _ := fn.Func.Type().(*types.Signature)
		return sig
	}
	if tv, ok := fn.Pkg.Info.Types[fn.Lit]; ok {
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	return nil
}

// taintParams seeds fn's receiver and parameters with Unknown — fn is
// callable from outside the analyzed set.
func (a *Analysis) taintParams(fn *callgraph.Node) {
	if a.taintSeen[fn.Index] {
		return
	}
	a.taintSeen[fn.Index] = true
	sig := a.sigOf(fn)
	if sig == nil {
		return
	}
	taint := func(v *types.Var) {
		if structlike(v.Type()) {
			a.markUnknownCells(a.storageFor(v))
			return
		}
		if pointerish(v.Type()) {
			a.addTo(a.varNodeFor(v), a.unknown.ID)
		}
	}
	if rv := sig.Recv(); rv != nil {
		taint(rv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		taint(sig.Params().At(i))
	}
}

// seedExported taints the parameters of every exported declared
// function and method: packages outside the closure (cmd/, tests,
// other modules) can call them with pointers the analysis never saw.
func (a *Analysis) seedExported() {
	for _, n := range a.Graph.Nodes {
		if n.Func != nil && ast.IsExported(n.Func.Name()) {
			a.taintParams(n)
		}
	}
}

// ---- public queries ----

// PointsTo returns the objects in constraint node n, sorted by ID.
func (a *Analysis) PointsTo(n int) []*Object {
	if n < 0 || n >= len(a.pts) {
		return nil
	}
	ids := sortedKeys(a.pts[n])
	out := make([]*Object, len(ids))
	for i, id := range ids {
		out[i] = a.Objects[id]
	}
	return out
}

// VarPointsTo returns the points-to set of variable v.
func (a *Analysis) VarPointsTo(v *types.Var) []*Object {
	n, ok := a.varNodes[v]
	if !ok {
		return nil
	}
	return a.PointsTo(n)
}

// ExprPointsTo returns the points-to set computed for expression e
// (nil when e was never evaluated, e.g. a scalar).
func (a *Analysis) ExprPointsTo(e ast.Expr) []*Object {
	e = callgraph.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		for _, pkg := range a.Graph.Packages {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
				return a.VarPointsTo(v)
			}
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
				return a.VarPointsTo(v)
			}
		}
	}
	if n, ok := a.exprNodes[e]; ok {
		return a.PointsTo(n)
	}
	return nil
}

// Resolution returns the points-to verdict for a call, or nil if the
// call was never resolved through the constraint system (static
// calls report their single callee; unreached dynamic sites report
// nothing).
func (a *Analysis) Resolution(call *ast.CallExpr) *Resolution {
	r, ok := a.res[call]
	if !ok {
		return nil
	}
	sort.Slice(r.Callees, func(i, j int) bool { return r.Callees[i].Index < r.Callees[j].Index })
	return r
}

// StorageOf returns v's storage object if one was materialized.
func (a *Analysis) StorageOf(v *types.Var) *Object { return a.objForVar[v] }

// Globals returns the package-level storage objects in creation
// order.
func (a *Analysis) Globals() []*Object { return a.globals }

// Writes returns every recorded mutation.
func (a *Analysis) Writes() []Write { return a.writes }

// Loads returns every recorded pointer-carrying load.
func (a *Analysis) Loads() []Access { return a.loads }

// Cell returns the constraint node for field f of o, or -1 when the
// cell was never materialized.
func (a *Analysis) Cell(o *Object, field string) int {
	if o.Kind == KUnknown {
		return a.unknownNode
	}
	if (o.Kind == KStorage || o.Kind == KGlobal) && field == elemField && !structlike(o.Var.Type()) {
		if n, ok := a.varNodes[o.Var]; ok {
			return n
		}
		return -1
	}
	if n, ok := a.cells[cellKey{o.ID, field}]; ok {
		return n
	}
	return -1
}

// CellFields returns the materialized field names of o, in creation
// order.
func (a *Analysis) CellFields(o *Object) []string { return a.cellsOf[o.ID] }

// FreeVars returns the variables a literal's body (including nested
// literals) references but does not declare — its capture set —
// sorted by declaration position.  Package-level variables are not
// captures.
func (a *Analysis) FreeVars(n *callgraph.Node) []*types.Var {
	if n.Lit == nil {
		return nil
	}
	if fv, ok := a.free[n]; ok {
		return fv
	}
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(n.Lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := n.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isGlobalVar(v) || seen[v] {
			return true
		}
		if v.Pos() >= n.Lit.Pos() && v.Pos() <= n.Lit.End() {
			return true // declared inside the literal (or its params)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	a.free[n] = out
	return out
}

// OwnerOf returns the body an object belongs to: its allocation site
// for heap objects, the declaring body for variable storage, nil for
// package-level objects.
func (a *Analysis) OwnerOf(o *Object) *callgraph.Node {
	if o.In != nil {
		return o.In
	}
	if o.Kind == KGlobal || o.Kind == KUnknown || !o.Pos.IsValid() {
		return nil
	}
	if n, ok := a.owner[o]; ok {
		return n
	}
	var best *callgraph.Node
	for _, n := range a.Graph.Nodes {
		var lo, hi token.Pos
		if n.Lit != nil {
			lo, hi = n.Lit.Pos(), n.Lit.End()
		} else {
			lo, hi = n.Decl.Pos(), n.Decl.End()
		}
		if o.Pos < lo || o.Pos > hi {
			continue
		}
		if best == nil || n.Pos() > best.Pos() {
			// Deepest (latest-starting) containing body wins: literals
			// start after their parents.
			best = n
		}
	}
	a.owner[o] = best
	return best
}

// ---- type predicates ----

// structlike: values with field/element cells of their own (struct
// and array types), modeled by per-variable storage and field copies.
func structlike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

// pointerish: types whose values carry references the analysis
// tracks.
func pointerish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan, *types.Slice:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct, *types.Array:
		return true
	}
	return false
}
