package comm

import (
	"fmt"
	"math"

	"hyades/internal/arctic"
	"hyades/internal/cluster"
	"hyades/internal/des"
	"hyades/internal/startx"
	"hyades/internal/units"
)

// HyadesConfig holds the software-layer cost parameters of the custom
// primitives.  The hardware costs (mmap accesses, DMA rates, link and
// router latencies) live in the pci/startx/arctic configs; what remains
// here is the cost of the thin software layer itself, calibrated so the
// stand-alone primitive benchmarks reproduce §4.1/§4.2:
//
//   - exchange overhead ~8.6 us per transfer and 110 MB/s peak,
//     giving Fig. 7's perceived-bandwidth curve;
//   - global sums of 4.0/8.3/12.8/18.2 us for 2/4/8/16 ways;
//   - texchxy ~115 us, texchxyz ~1640 us (atm) / ~4573 us (ocean) for
//     the Fig. 11 model parameters.
type HyadesConfig struct {
	// PackRowCached/PackRowUncached charge per contiguous run copied
	// while packing or unpacking a halo slab.  DS-phase 2-D slabs stay
	// cache resident; PS-phase 3-D slabs are copied at miss rates.
	PackRowCached   units.Time
	PackRowUncached units.Time

	// GsumRoundCPU is the software cost per butterfly round (tag
	// matching, accumulate, loop).
	GsumRoundCPU units.Time

	// SetupCost is the per-transfer software setup beyond the REQ/ACK
	// round trip (descriptor construction, VI-region bookkeeping).
	SetupCost units.Time

	// SlaveStageBandwidth models the extra shared-memory staging that
	// slave processors pay when the master's NIU moves their data
	// (paper: slave-to-slave exchange bandwidth ~30% below
	// master-to-master).
	SlaveStageBandwidth units.Bandwidth
}

// DefaultHyadesConfig returns the calibrated software costs.
func DefaultHyadesConfig() HyadesConfig {
	return HyadesConfig{
		PackRowCached:       50 * units.Nanosecond,
		PackRowUncached:     650 * units.Nanosecond,
		GsumRoundCPU:        400 * units.Nanosecond,
		SetupCost:           200 * units.Nanosecond,
		SlaveStageBandwidth: 512 * units.MBps,
	}
}

// Tag-space encoding: class(3) | srcCPU(1) | dstCPU(1) | seq(5), within
// the 10 user bits the NIU exposes.
const (
	clsGsum     = 1
	clsExchReq  = 2
	clsExchAck  = 3
	clsExchData = 4

	tagClassShift  = 7
	tagSrcCPUShift = 6
	tagDstCPUShift = 5
	tagSeqMask     = 0x1f
)

func encodeTag(class, srcCPU, dstCPU, seq int) int {
	return class<<tagClassShift | srcCPU<<tagSrcCPUShift | dstCPU<<tagDstCPUShift | seq&tagSeqMask
}

// matchKey identifies a logical message stream at a node: who sent it,
// which local CPU it is for, and what protocol step it belongs to.
type matchKey struct {
	class   int
	srcNode int
	srcCPU  int
	dstCPU  int
	seq     int
}

func keyOfTag(tag, srcNode int) matchKey {
	return matchKey{
		class:   tag >> tagClassShift & 0x7,
		srcNode: srcNode,
		srcCPU:  tag >> tagSrcCPUShift & 1,
		dstCPU:  tag >> tagDstCPUShift & 1,
		seq:     tag & tagSeqMask,
	}
}

// nodeComm is the per-SMP shared state of the communication library.
type nodeComm struct {
	pioLock *des.Semaphore // one puller at a time on the PIO rx queue
	viLock  *des.Semaphore // one puller at a time on the VI rx queue
	pioSig  *des.Signal    // fires on PIO deliveries and stash deposits
	pioBox  map[matchKey]*des.Mailbox[startx.Message]
	viBox   map[matchKey]*des.Mailbox[startx.Transfer]

	// Mix-mode global sum rendezvous (§4.2).
	partial *des.Mailbox[float64]
	results []*des.Mailbox[float64] // indexed by CPU

	// Intra-SMP exchange staging, keyed by (srcCPU, dstCPU).
	shm map[[2]int]*des.Mailbox[[]byte]
}

// Hyades is the communication library instance for one cluster.
type Hyades struct {
	cl    *cluster.Cluster
	cfg   HyadesConfig
	nodes []*nodeComm
	rec   *Recovery

	// words pools the two-word control payloads (gsum partials, exchange
	// REQ/ACK handshakes).  PIOSend transfers payload ownership to the
	// NIU and the receive path hands the same backing array to the
	// matching pioWait, so the waiter returns the slice here once it has
	// extracted the fields.  The engine baton serializes every process,
	// so the pool needs no lock and its reuse order is deterministic.
	// Reliable-mode retransmission may clone a packet whose retained
	// payload was already recycled and rewritten; that is safe because
	// duplicates are dropped by sequence number before any payload read,
	// and the clone re-Seals so its CRC is self-consistent.
	words [][]uint32
}

// getWords pops a 2-word payload buffer from the pool.
func (h *Hyades) getWords() []uint32 {
	if k := len(h.words); k > 0 {
		w := h.words[k-1]
		h.words[k-1] = nil
		h.words = h.words[:k-1]
		return w
	}
	return make([]uint32, 2)
}

// putWords returns a consumed control payload to the pool.
func (h *Hyades) putWords(w []uint32) {
	if cap(w) < 2 {
		return
	}
	h.words = append(h.words, w[:2])
}

// NewHyades builds the library over an assembled cluster.  Mix-mode
// supports the Hyades hardware's two processors per SMP.
func NewHyades(cl *cluster.Cluster, cfg HyadesConfig) (*Hyades, error) {
	if cl.Cfg.ProcsPerNode > 2 {
		return nil, fmt.Errorf("comm: mix-mode supports at most 2 processors per SMP, got %d", cl.Cfg.ProcsPerNode)
	}
	h := &Hyades{cl: cl, cfg: cfg}
	for _, nd := range cl.Nodes {
		nc := &nodeComm{
			pioLock: des.NewSemaphore(cl.Eng, fmt.Sprintf("node%d.piolock", nd.ID), 1),
			viLock:  des.NewSemaphore(cl.Eng, fmt.Sprintf("node%d.vilock", nd.ID), 1),
			pioSig:  des.NewSignal(cl.Eng, fmt.Sprintf("node%d.piosig", nd.ID)),
			pioBox:  make(map[matchKey]*des.Mailbox[startx.Message]),
			viBox:   make(map[matchKey]*des.Mailbox[startx.Transfer]),
			partial: des.NewMailbox[float64](cl.Eng, "gsum.partial"),
			shm:     make(map[[2]int]*des.Mailbox[[]byte]),
		}
		for c := 0; c < cl.Cfg.ProcsPerNode; c++ {
			nc.results = append(nc.results, des.NewMailbox[float64](cl.Eng, "gsum.result"))
		}
		nd.NIU.OnPIODeliver = nc.pioSig.Broadcast
		// An exhausted retransmit budget stops the run with a typed
		// error instead of leaving the peer's receive parked forever —
		// unless the crash-recovery controller recognizes the stalled
		// stream as collateral of a node crash it is already rolling
		// back, in which case it unwinds the sender instead.
		nodeID := nd.ID
		nd.NIU.OnUnreachable = func(u startx.UnreachableInfo) {
			if h.rec != nil && h.rec.unreachable(nodeID, u) {
				return
			}
			cl.Eng.Fail(unreachableError(cl.Cfg.ProcsPerNode, u))
		}
		h.nodes = append(h.nodes, nc)
	}
	if cl.Cfg.Fault.NodesEnabled() {
		h.rec = newRecovery(h)
		cl.OnNodeCrash = h.rec.nodeCrashed
		cl.OnNodeRestart = h.rec.nodeRestarted
		for _, nd := range cl.Nodes {
			nodeID := nd.ID
			nd.NIU.OnPeerDead = func(peer int) { h.rec.peerDead(nodeID, peer) }
			nd.NIU.StartPeerMonitor()
		}
	}
	return h, nil
}

// Recovery returns the crash-recovery controller, or nil when the
// fault plan crashes no nodes and EnableRecovery was not called.
func (h *Hyades) Recovery() *Recovery { return h.rec }

// EnableRecovery attaches a recovery controller to a cluster whose
// fault plan crashes no nodes — checkpoint-only runs still want the
// rendezvous and the committed-checkpoint store.  With no node faults
// there is nothing to detect, so no heartbeat traffic is started.
// Must be called before the simulation runs.  Idempotent.
func (h *Hyades) EnableRecovery() *Recovery {
	if h.rec == nil {
		h.rec = newRecovery(h)
	}
	return h.rec
}

// resetNodeComm rebuilds the per-node matching state at a recovery
// release: pull locks possibly left held by an unwound rank, match
// boxes and staging mailboxes possibly holding pre-crash deliveries.
// The delivery signal survives — each NIU's OnPIODeliver closure holds
// it, and a spurious wake of a signal waiter is harmless by design.
func (h *Hyades) resetNodeComm() {
	for i, nd := range h.cl.Nodes {
		nc := h.nodes[i]
		nc.pioLock = des.NewSemaphore(h.cl.Eng, fmt.Sprintf("node%d.piolock", nd.ID), 1)
		nc.viLock = des.NewSemaphore(h.cl.Eng, fmt.Sprintf("node%d.vilock", nd.ID), 1)
		nc.pioBox = make(map[matchKey]*des.Mailbox[startx.Message])
		nc.viBox = make(map[matchKey]*des.Mailbox[startx.Transfer])
		nc.shm = make(map[[2]int]*des.Mailbox[[]byte])
		for {
			if _, ok := nc.partial.TryRecv(); !ok {
				break
			}
		}
		for _, rb := range nc.results {
			for {
				if _, ok := rb.TryRecv(); !ok {
					break
				}
			}
		}
	}
}

// Bind creates the endpoint for a started worker.
func (h *Hyades) Bind(w *cluster.Worker) *HyadesEndpoint {
	return &HyadesEndpoint{h: h, w: w, nc: h.nodes[w.Node.ID]}
}

// HyadesEndpoint implements Endpoint over the StarT-X mechanisms.
type HyadesEndpoint struct {
	h     *Hyades
	w     *cluster.Worker
	nc    *nodeComm
	stats Stats
}

var _ Endpoint = (*HyadesEndpoint)(nil)

// Rank implements Endpoint.
func (ep *HyadesEndpoint) Rank() int { return ep.w.Rank }

// N implements Endpoint.
func (ep *HyadesEndpoint) N() int { return ep.h.cl.Processors() }

// Now implements Endpoint.
func (ep *HyadesEndpoint) Now() units.Time { return ep.w.Proc.Now() }

// Stats implements Endpoint.
func (ep *HyadesEndpoint) Stats() *Stats { return &ep.stats }

// Busy implements Endpoint.
func (ep *HyadesEndpoint) Busy(d units.Time) {
	if d <= 0 {
		return
	}
	ep.w.Proc.Delay(d)
	ep.stats.ComputeTime += d
}

// Exec implements Endpoint: the phase runs on the cluster's worker
// pool (if one is attached) while the baton meters the modeled time.
func (ep *HyadesEndpoint) Exec(d units.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	ep.w.Proc.Exec(d, fn)
	ep.stats.ComputeTime += d
}

// nodeOf maps a rank to its SMP.
func (ep *HyadesEndpoint) nodeOf(rank int) int { return rank / ep.h.cl.Cfg.ProcsPerNode }

// cpuOf maps a rank to its CPU index within the SMP.
func (ep *HyadesEndpoint) cpuOf(rank int) int { return rank % ep.h.cl.Cfg.ProcsPerNode }

func (nc *nodeComm) pioMB(e *des.Engine, k matchKey) *des.Mailbox[startx.Message] {
	mb, ok := nc.pioBox[k]
	if !ok {
		mb = des.NewMailbox[startx.Message](e, "pio.stash")
		nc.pioBox[k] = mb
	}
	return mb
}

func (nc *nodeComm) viMB(e *des.Engine, k matchKey) *des.Mailbox[startx.Transfer] {
	mb, ok := nc.viBox[k]
	if !ok {
		mb = des.NewMailbox[startx.Transfer](e, "vi.stash")
		nc.viBox[k] = mb
	}
	return mb
}

// pioSend transmits a small control/reduction message.
func (ep *HyadesEndpoint) pioSend(dstRank, class, seq int, words []uint32) {
	tag := encodeTag(class, ep.w.CPU, ep.cpuOf(dstRank), seq)
	ep.w.Node.NIU.PIOSend(ep.w.Proc, ep.nodeOf(dstRank), tag, words, arctic.Low)
}

// pioWait returns the next message matching (class, srcRank, seq).
func (ep *HyadesEndpoint) pioWait(class, srcRank, seq int) startx.Message {
	return ep.pioWaitKey(matchKey{
		class:   class,
		srcNode: ep.nodeOf(srcRank),
		srcCPU:  ep.cpuOf(srcRank),
		dstCPU:  ep.w.CPU,
		seq:     seq,
	})
}

// pioWaitKey blocks until a message matching key is available.  The two
// SMP processors cooperate through the node's match-boxes: whoever
// polls the hardware queue deposits messages that are not its own and
// signals the other CPU.  A successful hardware poll charges the usual
// mmap reads; between arrivals the loop parks on the node's delivery
// signal rather than modelling every idle status read.
func (ep *HyadesEndpoint) pioWaitKey(key matchKey) startx.Message {
	eng := ep.h.cl.Eng
	box := ep.nc.pioMB(eng, key)
	for {
		if m, ok := box.TryRecv(); ok {
			return m
		}
		snapshot := ep.nc.pioSig.Seq()
		ep.nc.pioLock.Acquire(ep.w.Proc)
		if m, ok := box.TryRecv(); ok {
			ep.nc.pioLock.Release()
			return m
		}
		m, ok := ep.w.Node.NIU.TryPIORecv(ep.w.Proc, arctic.Low)
		ep.nc.pioLock.Release()
		if !ok {
			// Park with the engine watchdog as an explicit deadline so a
			// tripped wait names the rank and the exact match key it
			// starved on, not just the shared delivery signal.
			if wd := eng.WatchdogLimit(); wd > 0 {
				if !ep.nc.pioSig.WaitDeadline(ep.w.Proc, snapshot, wd) {
					panic(&des.WatchdogError{
						Limit: wd,
						Culprit: fmt.Sprintf("rank %d pioWait(class=%d srcNode=%d srcCPU=%d seq=%d)",
							ep.w.Rank, key.class, key.srcNode, key.srcCPU, key.seq),
						Waiters: eng.Waiters(),
					})
				}
			} else {
				ep.nc.pioSig.Wait(ep.w.Proc, snapshot)
			}
			continue
		}
		got := keyOfTag(m.Tag, m.Src)
		if got == key {
			return m
		}
		ep.nc.pioMB(eng, got).Send(m)
		ep.nc.pioSig.Broadcast()
	}
}

// viWait returns the next bulk transfer from srcRank.  Unlike control
// messages, a transfer we wait for is always already committed by the
// REQ/ACK handshake, so blocking on the hardware queue while holding
// the pull lock cannot deadlock.
func (ep *HyadesEndpoint) viWait(srcRank int) startx.Transfer {
	eng := ep.h.cl.Eng
	key := matchKey{class: clsExchData, srcNode: ep.nodeOf(srcRank), srcCPU: ep.cpuOf(srcRank), dstCPU: ep.w.CPU}
	box := ep.nc.viMB(eng, key)
	for {
		if t, ok := box.TryRecv(); ok {
			return t
		}
		ep.nc.viLock.Acquire(ep.w.Proc)
		if t, ok := box.TryRecv(); ok {
			ep.nc.viLock.Release()
			return t
		}
		var t startx.Transfer
		if wd := eng.WatchdogLimit(); wd > 0 {
			var ok bool
			if t, ok = ep.w.Node.NIU.VIRecvDeadline(ep.w.Proc, wd); !ok {
				panic(&des.WatchdogError{
					Limit: wd,
					Culprit: fmt.Sprintf("rank %d viWait(srcRank=%d) on node %d",
						ep.w.Rank, srcRank, ep.w.Node.ID),
					Waiters: eng.Waiters(),
				})
			}
		} else {
			t = ep.w.Node.NIU.VIRecv(ep.w.Proc)
		}
		ep.nc.viLock.Release()
		got := keyOfTag(t.Tag, t.Src)
		got.class = clsExchData
		if got == key {
			return t
		}
		ep.nc.viMB(eng, got).Send(t)
	}
}

// chargeCopy models packing or unpacking a halo slab between the model
// arrays and the VI region (or shared memory).
//
// Contiguous slabs (Rows == 1) are free: the §4.1 protocol initiates
// DMA on each chunk right after copying it, fully overlapping the copy
// with the (slower) 110 MB/s DMA stream — which is why the stand-alone
// Fig. 7 benchmark sees exactly 8.6 us + B/110 MB/s.  Strided slabs
// must be gathered into the pinned, contiguous VI region before the
// engine can stream them, so their pack cost is on the critical path;
// this is what makes the measured texchxyz (Fig. 11) an order of
// magnitude more expensive than the raw wire time.
func (ep *HyadesEndpoint) chargeCopy(layout Block) {
	cfg := ep.h.cfg
	nodeCfg := ep.w.Node.Cfg
	var d units.Time
	if layout.Rows > 1 {
		row := cfg.PackRowCached
		bw := nodeCfg.MemcpyBandwidth
		if !layout.Cached {
			row = cfg.PackRowUncached
			bw = nodeCfg.UncachedCopyBandwidth
		}
		d = units.Time(layout.Rows)*row + bw.Transfer(layout.Bytes())
	}
	if ep.w.CPU != 0 {
		// Slave data is staged through shared memory for the NIU.
		d += cfg.SlaveStageBandwidth.Transfer(layout.Bytes())
		d += 2 * nodeCfg.SemaphoreCost
	}
	if d > 0 {
		ep.w.Proc.Delay(d)
	}
}

// transferSend drives one direction of an exchange: negotiate with the
// receiver, then stream the packed slab through the VI-mode DMA engine
// (§4.1).
func (ep *HyadesEndpoint) transferSend(peer int, data []byte, layout Block) {
	ep.chargeCopy(layout) // pack into the VI region
	req := ep.h.getWords()
	req[0], req[1] = uint32(len(data)), uint32(ep.w.Rank)
	ep.pioSend(peer, clsExchReq, 0, req)
	ack := ep.pioWait(clsExchAck, peer, 0)
	ep.h.putWords(ack.Words)
	ep.w.Proc.Delay(ep.h.cfg.SetupCost)
	tag := encodeTag(clsExchData, ep.w.CPU, ep.cpuOf(peer), 0)
	ep.w.Node.NIU.DMASend(ep.w.Proc, ep.nodeOf(peer), tag, data, arctic.Low)
}

// transferRecv accepts one direction of an exchange.
func (ep *HyadesEndpoint) transferRecv(peer int, layout Block) []byte {
	req := ep.pioWait(clsExchReq, peer, 0)
	ep.h.putWords(req.Words)
	ack := ep.h.getWords()
	ack[0], ack[1] = uint32(ep.w.Rank), 0
	ep.pioSend(peer, clsExchAck, 0, ack)
	t := ep.viWait(peer)
	ep.chargeCopy(layout) // unpack from the VI region
	return t.Data
}

// Exchange implements Endpoint.  The two directions run sequentially
// because a single VI transfer saturates the PCI bus (§4.1); the
// lower-ranked side sends first.
func (ep *HyadesEndpoint) Exchange(peer int, send []byte, layout Block) []byte {
	t0 := ep.Now()
	var recv []byte
	switch {
	case peer == ep.w.Rank:
		// Periodic wrap onto the same worker: a pair of local copies.
		ep.chargeCopy(layout)
		ep.chargeCopy(layout)
		recv = append([]byte(nil), send...)
	case ep.nodeOf(peer) == ep.w.Node.ID:
		recv = ep.intraNodeExchange(peer, send, layout)
	case ep.w.Rank < peer:
		ep.transferSend(peer, send, layout)
		recv = ep.transferRecv(peer, layout)
	default:
		recv = ep.transferRecv(peer, layout)
		ep.transferSend(peer, send, layout)
	}
	ep.stats.Exchanges++
	ep.stats.BytesSent += int64(len(send))
	ep.stats.ExchangeTime += ep.Now() - t0
	return recv
}

// intraNodeExchange swaps slabs between the SMP's two processors
// through shared memory.
func (ep *HyadesEndpoint) intraNodeExchange(peer int, send []byte, layout Block) []byte {
	me, other := ep.w.CPU, ep.cpuOf(peer)
	out := ep.shmChan([2]int{me, other})
	in := ep.shmChan([2]int{other, me})
	ep.chargeCopy(layout) // copy into the shared staging buffer
	ep.w.Node.SemOp(ep.w.Proc)
	out.Send(send)
	data := in.Recv(ep.w.Proc)
	ep.w.Node.SemOp(ep.w.Proc)
	ep.chargeCopy(layout) // copy out
	return data
}

func (ep *HyadesEndpoint) shmChan(k [2]int) *des.Mailbox[[]byte] {
	mb, ok := ep.nc.shm[k]
	if !ok {
		mb = des.NewMailbox[[]byte](ep.h.cl.Eng, "shm.exch")
		ep.nc.shm[k] = mb
	}
	return mb
}

// GlobalSum implements Endpoint (§4.2).  With one processor per node it
// is the pure N log N butterfly of Fig. 8; with two, each SMP first
// reduces locally through shared memory, the masters run the butterfly,
// and the result is re-distributed locally — adding about 1 us, as the
// paper measures.
func (ep *HyadesEndpoint) GlobalSum(x float64) float64 {
	t0 := ep.Now()
	v := ep.allReduce(x)
	ep.stats.GlobalSums++
	ep.stats.GsumTime += ep.Now() - t0
	return v
}

// Barrier implements Endpoint as a degenerate reduction.
func (ep *HyadesEndpoint) Barrier() {
	t0 := ep.Now()
	ep.allReduce(0)
	ep.stats.BarrierTime += ep.Now() - t0
}

func (ep *HyadesEndpoint) allReduce(x float64) float64 {
	ppn := ep.h.cl.Cfg.ProcsPerNode
	if ppn == 1 {
		return ep.masterGsum(x)
	}
	nd := ep.w.Node
	if ep.w.CPU != 0 {
		nd.SemOp(ep.w.Proc)
		ep.nc.partial.Send(x)
		v := ep.nc.results[ep.w.CPU].Recv(ep.w.Proc)
		nd.SemOp(ep.w.Proc)
		return v
	}
	sum := x
	for i := 1; i < ppn; i++ {
		nd.SemOp(ep.w.Proc)
		sum += ep.nc.partial.Recv(ep.w.Proc)
	}
	total := ep.masterGsum(sum)
	for i := 1; i < ppn; i++ {
		nd.SemOp(ep.w.Proc)
		ep.nc.results[i].Send(total)
	}
	return total
}

// masterGsum runs the inter-node reduction among the CPU-0 processors.
// For a power-of-two node count it is the concurrent butterfly of
// Fig. 8 (N log N messages over log N rounds); otherwise it falls back
// to a binomial reduce-and-broadcast tree.
func (ep *HyadesEndpoint) masterGsum(x float64) float64 {
	nNodes := ep.h.cl.Cfg.Nodes
	if nNodes == 1 {
		return x
	}
	me := ep.w.Node.ID
	if nNodes&(nNodes-1) == 0 {
		sum := x
		rounds := 0
		for 1<<rounds < nNodes {
			rounds++
		}
		for r := 0; r < rounds; r++ {
			partner := me ^ 1<<r
			ep.gsumSendTo(partner, r, sum)
			sum += ep.gsumRecvFrom(partner, r)
			ep.w.Proc.Delay(ep.h.cfg.GsumRoundCPU)
		}
		return sum
	}
	// Binomial tree: reduce towards node 0, then broadcast back.
	sum := x
	seq := 0
	for mask := 1; mask < nNodes; mask <<= 1 {
		if me&mask != 0 {
			ep.gsumSendTo(me&^mask, seq, sum)
			break
		}
		if me|mask < nNodes {
			sum += ep.gsumRecvFrom(me|mask, seq)
			ep.w.Proc.Delay(ep.h.cfg.GsumRoundCPU)
		}
		seq++
	}
	// Broadcast: retrace the tree.
	highest := 1
	for highest < nNodes {
		highest <<= 1
	}
	if me != 0 {
		low := lowestSetBit(me)
		sum = ep.gsumRecvFrom(me&^low, 16+log2(low))
	}
	for mask := lowestSetBitOrTop(me, highest) >> 1; mask >= 1; mask >>= 1 {
		if me|mask < nNodes && me&mask == 0 {
			ep.gsumSendTo(me|mask, 16+log2(mask), sum)
		}
	}
	return sum
}

func lowestSetBit(v int) int { return v & -v }

func lowestSetBitOrTop(v, top int) int {
	if v == 0 {
		return top
	}
	return v & -v
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// gsumSendTo ships a float64 partial to another node's master as an
// 8-byte-payload PIO message — the case whose LogP costs Fig. 2 reports.
func (ep *HyadesEndpoint) gsumSendTo(nodeID, seq int, v float64) {
	bits := math.Float64bits(v)
	tag := encodeTag(clsGsum, 0, 0, seq)
	w := ep.h.getWords()
	w[0], w[1] = uint32(bits>>32), uint32(bits)
	ep.w.Node.NIU.PIOSend(ep.w.Proc, nodeID, tag, w, arctic.Low)
}

func (ep *HyadesEndpoint) gsumRecvFrom(nodeID, seq int) float64 {
	m := ep.pioWaitNode(clsGsum, nodeID, seq)
	v := math.Float64frombits(uint64(m.Words[0])<<32 | uint64(m.Words[1]))
	ep.h.putWords(m.Words)
	return v
}

// pioWaitNode matches on the sending node with CPU 0 (masters only).
func (ep *HyadesEndpoint) pioWaitNode(class, srcNode, seq int) startx.Message {
	return ep.pioWaitKey(matchKey{class: class, srcNode: srcNode, srcCPU: 0, dstCPU: 0, seq: seq})
}
