// Crash-recovery controller for the Hyades communication library.
//
// The controller closes the loop between the cluster's node-failure
// events (internal/cluster), the NIUs' dead-peer detection
// (internal/startx) and the application's checkpoints (internal/gcm):
//
//   - Every rank incarnation starts by calling Enter, a generation
//     rendezvous.  The controller releases a generation only when all N
//     ranks are present and no node is down, so ranks always restart
//     from a cluster-wide consistent cut.
//   - When a node crashes, its rank procs die (cluster kills them) and
//     every surviving rank is interrupted with a NodeDownError — either
//     by its own NIU's lease lapsing, or, for an outage shorter than
//     the peer lease, by the restarted node's rejoin announcement.  The
//     interrupt unwinds the rank's in-flight communication; the rank
//     re-enters the rendezvous and waits for the next generation.
//   - The release of a post-crash generation is delayed by an
//     exponential backoff in virtual time (restart storms back off
//     instead of thrashing), advances the cluster-wide communication
//     epoch, resets every NIU's protocol state symmetrically, and
//     rebuilds the library's per-node matching state.  Packets still in
//     flight from the previous epoch are discarded at the receivers.
//   - Checkpoints commit in two phases: a step's blobs are pending
//     until every rank has saved, and only then become the committed
//     restart point.  A crash mid-round discards the pending set, so a
//     restart never mixes state from different steps.
//
// Everything below runs on engine virtual time and rank-indexed
// slices; for a fixed (config, seed, fault plan, checkpoint interval)
// the entire crash/detect/rollback/replay timeline is deterministic at
// any -workers count.
package comm

import (
	"fmt"

	"hyades/internal/cluster"
	"hyades/internal/des"
	"hyades/internal/startx"
	"hyades/internal/units"
)

// Recovery controller defaults; overridable through the exported
// fields before the simulation runs.
const (
	DefaultMaxRestarts = 8
	DefaultBackoff     = 200 * units.Microsecond
	DefaultBackoffCap  = 3200 * units.Microsecond
)

// NodeDownError is the cause carried by the interrupt that unwinds a
// surviving rank when a peer node dies.  It unwraps to
// ErrPeerUnreachable so callers can errors.Is against the library's
// standard unreachability sentinel.
type NodeDownError struct {
	Observer int        // node whose NIU detected the death; -1 for the controller's rejoin announcement
	Peer     int        // the node that died
	At       units.Time // virtual detection instant
}

func (e *NodeDownError) Error() string {
	if e.Observer < 0 {
		return fmt.Sprintf("comm: node %d crashed and rejoined at %v", e.Peer, e.At)
	}
	return fmt.Sprintf("comm: node %d declared node %d dead at %v", e.Observer, e.Peer, e.At)
}

func (e *NodeDownError) Unwrap() error { return ErrPeerUnreachable }

// RecoveryRound records one crash and the release of the generation
// that recovered from it.
type RecoveryRound struct {
	Node      int        // the node that crashed
	CrashAt   units.Time // virtual crash instant
	ReleaseAt units.Time // release of the recovery generation (0 until released)
	Permanent bool       // no restart was scheduled; the run failed
}

// CheckpointMark records one committed checkpoint.
type CheckpointMark struct {
	Step int
	At   units.Time // virtual commit instant
}

// RecoveryStats summarizes a run's availability behaviour.
type RecoveryStats struct {
	Restarts         int        // node crashes survived
	RecoveryTime     units.Time // summed crash-to-release time over all rounds
	LostVirtual      units.Time // summed virtual time rolled back (crash minus last commit)
	Checkpoints      int        // committed checkpoint rounds
	CheckpointBytes  int64      // bytes across all committed rounds
	PendingDiscarded int        // pending checkpoint sets thrown away by crashes
}

// Recovery coordinates crash recovery for one Hyades library instance.
// The exported fields tune it and must be set before the simulation
// runs.
type Recovery struct {
	// MaxRestarts bounds the number of crashes survived before the run
	// fails with a diagnostic instead of retrying forever.
	MaxRestarts int

	// Backoff delays the release of a post-crash generation, doubling
	// per accumulated restart up to BackoffCap.  It must comfortably
	// exceed the NIU transmit latency so no pre-crash packet injection
	// can straddle the epoch reset (see release).
	Backoff    units.Time
	BackoffCap units.Time

	h   *Hyades
	sig *des.Signal // generation release broadcast

	n       int // total ranks
	gen     int // completed release count
	epoch   uint32
	joined  []bool // rank is parked in the rendezvous
	joinedN int
	done    []bool // rank completed the job
	doneN   int

	nodeDown     []bool // node is crashed and not yet restarted
	downN        int
	crashed      bool // a crash happened since the last release
	releaseTimer *des.Timer

	restarts int
	rounds   []RecoveryRound

	// Two-phase checkpoint store.  A step's blobs accumulate in the
	// pending set; when all N ranks have saved, the set commits and
	// becomes the restart point.  Everything lives on the launcher
	// frame (comm is outside the rank partition), surviving the death
	// of any rank incarnation.
	ckStep   int // committed step; -1 before the first commit
	ckAt     units.Time
	ckData   [][]byte
	pendStep int // -1 when no set is pending
	pendData [][]byte
	pendN    int
	commits  []CheckpointMark
	ckBytes  int64
	discards int
}

// newRecovery builds the controller for h's cluster.
func newRecovery(h *Hyades) *Recovery {
	n := h.cl.Processors()
	return &Recovery{
		MaxRestarts: DefaultMaxRestarts,
		Backoff:     DefaultBackoff,
		BackoffCap:  DefaultBackoffCap,
		h:           h,
		sig:         des.NewSignal(h.cl.Eng, "recovery.release"),
		n:           n,
		joined:      make([]bool, n),
		done:        make([]bool, n),
		nodeDown:    make([]bool, h.cl.Cfg.Nodes),
		ckStep:      -1,
		ckData:      make([][]byte, n),
		pendStep:    -1,
		pendData:    make([][]byte, n),
	}
}

func (rc *Recovery) eng() *des.Engine { return rc.h.cl.Eng }

// Enter is the generation rendezvous every rank incarnation passes
// through before touching the model.  It blocks until the controller
// releases a generation with all N ranks present and no node down.  It
// returns true if the job already completed — a respawned incarnation
// of a node that crashed after the final step has nothing left to do.
func (rc *Recovery) Enter(w *cluster.Worker) bool {
	if rc.doneN == rc.n {
		return true
	}
	r := w.Rank
	rc.joined[r] = true
	rc.joinedN++
	rc.maybeRelease()
	// Released generations clear the joined flags; park until then.
	// The park is subject to the engine watchdog, so a wedged recovery
	// surfaces as a loud waiter dump, never a hang.
	for rc.joined[r] {
		rc.sig.Wait(w.Proc, rc.sig.Seq())
	}
	return rc.doneN == rc.n
}

// Done marks a rank's job complete.  When the last rank finishes, the
// heartbeat and lease timer chains stop so the event queue can drain.
func (rc *Recovery) Done(w *cluster.Worker) {
	if rc.done[w.Rank] {
		return
	}
	rc.done[w.Rank] = true
	rc.doneN++
	if rc.doneN == rc.n {
		for _, nd := range rc.h.cl.Nodes {
			nd.NIU.StopPeerMonitor()
		}
		if rc.releaseTimer != nil {
			rc.releaseTimer.Cancel()
			rc.releaseTimer = nil
		}
	}
}

// Generation returns the number of released generations — 1 for a
// fault-free run, plus one per recovery round.
func (rc *Recovery) Generation() int { return rc.gen }

// Restarts returns the number of node crashes seen so far.
func (rc *Recovery) Restarts() int { return rc.restarts }

// Rounds returns the recorded crash/recovery rounds.
func (rc *Recovery) Rounds() []RecoveryRound { return rc.rounds }

// Commits returns the committed checkpoint marks.
func (rc *Recovery) Commits() []CheckpointMark { return rc.commits }

// maybeRelease releases the next generation once every rank is either
// parked in the rendezvous or done and no node is down.  A fault-free
// rendezvous (initial start) releases immediately; a post-crash one is
// delayed by the exponential backoff.
func (rc *Recovery) maybeRelease() {
	if rc.doneN == rc.n || rc.joinedN+rc.doneN < rc.n || rc.downN > 0 {
		return
	}
	if rc.releaseTimer != nil && rc.releaseTimer.Active() {
		return
	}
	if !rc.crashed {
		rc.release()
		return
	}
	rc.releaseTimer = rc.eng().After(rc.backoff(), rc.release)
}

// backoff returns the current release delay: Backoff doubled per
// accumulated restart, capped.
func (rc *Recovery) backoff() units.Time {
	d := rc.Backoff
	for i := 1; i < rc.restarts && d < rc.BackoffCap; i++ {
		d <<= 1
	}
	if d > rc.BackoffCap {
		d = rc.BackoffCap
	}
	return d
}

// release opens the next generation.  After a crash it first rolls the
// whole cluster onto a fresh communication epoch: pending checkpoint
// state and in-flight protocol state are discarded everywhere at the
// same virtual instant, which is what makes the symmetric sequence
// reset sound.  The backoff guarantees the release is far later than
// any packet injection scheduled before the crash, so no old-epoch
// traffic can be stamped with the new epoch.
func (rc *Recovery) release() {
	rc.releaseTimer = nil
	if rc.crashed {
		rc.crashed = false
		rc.epoch++
		rc.discardPending()
		for _, nd := range rc.h.cl.Nodes {
			nd.NIU.ResetComm(rc.epoch)
		}
		rc.h.resetNodeComm()
		now := rc.eng().Now()
		for i := range rc.rounds {
			if rc.rounds[i].ReleaseAt == 0 && !rc.rounds[i].Permanent {
				rc.rounds[i].ReleaseAt = now
			}
		}
	}
	rc.gen++
	for r := range rc.joined {
		rc.joined[r] = false
	}
	rc.joinedN = 0
	rc.sig.Broadcast()
}

// nodeCrashed observes a cluster crash event (engine context).  It
// decides, at the crash instant, whether recovery is possible at all;
// the survivors learn of the crash later, through their leases or the
// rejoin announcement.
func (rc *Recovery) nodeCrashed(nodeID int, permanent bool) {
	if rc.doneN == rc.n {
		return // post-completion crash event: nothing left to protect
	}
	now := rc.eng().Now()
	rc.restarts++
	rc.rounds = append(rc.rounds, RecoveryRound{Node: nodeID, CrashAt: now, Permanent: permanent})
	if permanent {
		rc.eng().Fail(fmt.Errorf("comm: node %d lost permanently at %v, recovery impossible: %w",
			nodeID, now, ErrPeerUnreachable))
		return
	}
	if rc.doneN > 0 {
		rc.eng().Fail(fmt.Errorf("comm: node %d crashed at %v after %d of %d ranks completed; cannot roll back a finished rank",
			nodeID, now, rc.doneN, rc.n))
		return
	}
	if rc.restarts > rc.MaxRestarts {
		rc.eng().Fail(fmt.Errorf("comm: node %d crash #%d exceeds the restart budget (max %d)",
			nodeID, rc.restarts, rc.MaxRestarts))
		return
	}
	rc.crashed = true
	if !rc.nodeDown[nodeID] {
		rc.nodeDown[nodeID] = true
		rc.downN++
	}
	// The dead incarnations left the rendezvous with their state.
	ppn := rc.h.cl.Cfg.ProcsPerNode
	for r := nodeID * ppn; r < (nodeID+1)*ppn; r++ {
		if rc.joined[r] {
			rc.joined[r] = false
			rc.joinedN--
		}
	}
	rc.discardPending()
	if rc.releaseTimer != nil {
		rc.releaseTimer.Cancel()
		rc.releaseTimer = nil
	}
}

// nodeRestarted observes a cluster restart event (engine context).
// Survivors whose leases have not lapsed yet — the outage was shorter
// than the peer lease — learn of the incarnation change here, from the
// restarted node's rejoin announcement, instead of waiting for a lease
// that will now never expire.
func (rc *Recovery) nodeRestarted(nodeID int) {
	if rc.doneN == rc.n {
		return
	}
	if rc.nodeDown[nodeID] {
		rc.nodeDown[nodeID] = false
		rc.downN--
	}
	cause := &NodeDownError{Observer: -1, Peer: nodeID, At: rc.eng().Now()}
	for n := range rc.h.cl.Nodes {
		if n != nodeID {
			rc.interruptNode(n, cause)
		}
	}
	rc.maybeRelease()
}

// peerDead observes one NIU's lease-based death declaration (engine
// context): the observer node's ranks abandon their in-flight
// communication and fall back to the rendezvous.
func (rc *Recovery) peerDead(observer, peer int) {
	if rc.doneN == rc.n {
		return
	}
	rc.interruptNode(observer, &NodeDownError{Observer: observer, Peer: peer, At: rc.eng().Now()})
}

// unreachable reroutes an exhausted retransmit budget on nodeID's NIU.
// It returns true if the controller absorbed the event (the stalled
// stream points at a crashed node and rollback will reset it) and
// false if this is a genuine link-level failure the caller should
// surface as before.
func (rc *Recovery) unreachable(nodeID int, u startx.UnreachableInfo) bool {
	if rc.doneN == rc.n {
		return true
	}
	if !rc.crashed && !rc.nodeDown[u.Peer] {
		return false
	}
	rc.interruptNode(nodeID, &NodeDownError{Observer: nodeID, Peer: u.Peer, At: rc.eng().Now()})
	return true
}

// interruptNode unwinds a node's live, not-yet-converged rank procs.
// Joined ranks are already parked in the rendezvous and done ranks
// have nothing to unwind; a dead proc ignores the interrupt.
func (rc *Recovery) interruptNode(nodeID int, cause error) {
	ppn := rc.h.cl.Cfg.ProcsPerNode
	for r := nodeID * ppn; r < (nodeID+1)*ppn; r++ {
		if rc.joined[r] || rc.done[r] {
			continue
		}
		if w := rc.h.cl.Worker(r); w != nil && w.Proc != nil {
			w.Proc.Interrupt(cause)
		}
	}
}

// SaveCheckpoint deposits one rank's serialized state for a step into
// the pending set.  The set commits — becoming the restart point —
// only when all N ranks have saved the same step; a crash in between
// discards it, so restarts never mix steps.
func (rc *Recovery) SaveCheckpoint(rank, step int, blob []byte) {
	if step != rc.pendStep {
		if rc.pendStep >= 0 {
			// A stale set from a rank that saved just before a crash
			// interrupted the round; the replay supersedes it.
			rc.discards++
		}
		rc.pendStep = step
		rc.pendN = 0
		for i := range rc.pendData {
			rc.pendData[i] = nil
		}
	}
	if rc.pendData[rank] == nil {
		rc.pendN++
	}
	rc.pendData[rank] = blob
	if rc.pendN < rc.n {
		return
	}
	rc.ckStep = rc.pendStep
	rc.ckAt = rc.eng().Now()
	rc.ckData, rc.pendData = rc.pendData, rc.ckData
	rc.pendStep = -1
	rc.pendN = 0
	for i := range rc.pendData {
		rc.pendData[i] = nil
	}
	rc.commits = append(rc.commits, CheckpointMark{Step: rc.ckStep, At: rc.ckAt})
	for _, b := range rc.ckData {
		rc.ckBytes += int64(len(b))
	}
}

// Checkpoint returns rank's blob from the committed set, or ok=false
// if nothing has committed yet.
func (rc *Recovery) Checkpoint(rank int) (step int, blob []byte, ok bool) {
	if rc.ckStep < 0 {
		return 0, nil, false
	}
	return rc.ckStep, rc.ckData[rank], true
}

// CommittedStep returns the committed checkpoint step, or -1.
func (rc *Recovery) CommittedStep() int { return rc.ckStep }

// discardPending throws away an unfinished checkpoint round.
func (rc *Recovery) discardPending() {
	if rc.pendStep < 0 {
		return
	}
	rc.pendStep = -1
	rc.pendN = 0
	for i := range rc.pendData {
		rc.pendData[i] = nil
	}
	rc.discards++
}

// Stats summarizes the run.  RecoveryTime sums each round's
// crash-to-release span; LostVirtual sums the virtual time between
// each crash and the newest commit at or before it — the integration
// work the rollback repeated.
func (rc *Recovery) Stats() RecoveryStats {
	s := RecoveryStats{
		Restarts:         rc.restarts,
		Checkpoints:      len(rc.commits),
		CheckpointBytes:  rc.ckBytes,
		PendingDiscarded: rc.discards,
	}
	for _, rd := range rc.rounds {
		if rd.ReleaseAt > rd.CrashAt {
			s.RecoveryTime += rd.ReleaseAt - rd.CrashAt
		}
		var last units.Time
		for _, c := range rc.commits {
			if c.At <= rd.CrashAt {
				last = c.At
			}
		}
		s.LostVirtual += rd.CrashAt - last
	}
	return s
}
