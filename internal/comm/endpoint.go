// Package comm implements the paper's application-specific
// communication library (§4): the two performance-critical primitives —
// exchange and global sum — plus the portable Endpoint interface the
// GCM code programs against.
//
// The paper's central software claim is that a small set of primitives
// tailored to the application ("it took less than one man-month to
// develop the two custom primitives") delivers most of the raw
// interconnect performance to the numerics.  Accordingly this package
// contains Hyades-specific implementations built directly on the
// StarT-X PIO and VI mechanisms; package netmodel provides alternative
// implementations over modelled Fast Ethernet, Gigabit Ethernet and
// Myrinet so that the same GCM code reproduces the Pfpp comparisons of
// Fig. 12.
package comm

import (
	"hyades/internal/units"
)

// Block describes the memory layout of a halo slab so the library can
// charge realistic pack/unpack costs (and so message-per-row transports
// like the paper's MPI-over-Ethernet baseline can count messages).  A
// slab is Rows contiguous runs of RowBytes bytes each.
type Block struct {
	Rows     int
	RowBytes int
	// Cached marks slabs whose working set stays cache-resident between
	// exchanges (the 2-D fields of the DS phase); large 3-D fields swept
	// by the PS phase between exchanges are copied at miss rates.
	Cached bool
}

// Bytes returns the slab's total payload size.
func (b Block) Bytes() int { return b.Rows * b.RowBytes }

// Contiguous returns a single-run layout for n bytes.
func Contiguous(n int, cached bool) Block {
	return Block{Rows: 1, RowBytes: n, Cached: cached}
}

// Endpoint is one application process's handle on the communication
// system.  All methods may only be called from the worker's own
// simulated process.
type Endpoint interface {
	// Rank is the worker's dense index; N is the number of workers.
	Rank() int
	N() int

	// Exchange performs the bidirectional pairwise transfer at the core
	// of the halo-update primitive: it delivers send to the peer and
	// returns the peer's buffer.  Both sides must call Exchange with
	// each other's rank; layout describes the slab for cost modelling.
	Exchange(peer int, send []byte, layout Block) []byte

	// GlobalSum sums one float64 across all workers and returns the
	// total to every caller (§4.2).
	GlobalSum(x float64) float64

	// Barrier blocks until every worker arrives.
	Barrier()

	// Busy charges d of processor time (numerical computation).
	Busy(d units.Time)

	// Exec runs fn — a pure compute phase touching only this worker's
	// own model state, with modeled cost d known up front — and charges
	// d of processor time.  Implementations may execute fn on a host
	// worker pool while the simulation advances other activities; the
	// phase is always complete before Exec returns, and the virtual
	// schedule is identical to Busy(d) regardless of the worker count.
	Exec(d units.Time, fn func())

	// Now returns the current virtual time.
	Now() units.Time

	// Stats returns the endpoint's accumulated accounting.
	Stats() *Stats
}

// Stats accumulates per-worker accounting used by the performance
// analysis (Fig. 10's sustained rates, the Tcomm/Tcomp split of §5.3).
type Stats struct {
	ComputeTime  units.Time
	ExchangeTime units.Time
	GsumTime     units.Time
	BarrierTime  units.Time
	BytesSent    int64
	Exchanges    int64
	GlobalSums   int64
}

// CommTime returns total time spent in communication primitives.
func (s *Stats) CommTime() units.Time {
	return s.ExchangeTime + s.GsumTime + s.BarrierTime
}

// Serial is the degenerate single-worker endpoint used for serial model
// runs and unit tests of the numerics.  Exchange must not be called.
type Serial struct {
	Clock units.Time
	S     Stats
}

// Rank implements Endpoint.
func (s *Serial) Rank() int { return 0 }

// N implements Endpoint.
func (s *Serial) N() int { return 1 }

// Exchange implements Endpoint; a serial run has no neighbours.
func (s *Serial) Exchange(peer int, send []byte, layout Block) []byte {
	panic("comm: Exchange on a serial endpoint")
}

// GlobalSum implements Endpoint.
func (s *Serial) GlobalSum(x float64) float64 {
	s.S.GlobalSums++
	return x
}

// Barrier implements Endpoint.
func (s *Serial) Barrier() {}

// Busy implements Endpoint by advancing the serial clock.
func (s *Serial) Busy(d units.Time) {
	s.Clock += d
	s.S.ComputeTime += d
}

// Exec implements Endpoint: a serial run computes inline.
func (s *Serial) Exec(d units.Time, fn func()) {
	fn()
	s.Busy(d)
}

// Now implements Endpoint.
func (s *Serial) Now() units.Time { return s.Clock }

// Stats implements Endpoint.
func (s *Serial) Stats() *Stats { return &s.S }
