package comm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyades/internal/cluster"
	"hyades/internal/units"
)

// runOn builds a cluster, starts one worker per processor running body,
// and drains the simulation.
func runOn(t *testing.T, nodes, ppn int, body func(ep *HyadesEndpoint)) units.Time {
	t.Helper()
	cl, err := cluster.New(cluster.DefaultConfig(nodes, ppn))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := NewHyades(cl, DefaultHyadesConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(func(w *cluster.Worker) { body(h.Bind(w)) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	return cl.Eng.Now()
}

func TestGlobalSumValue(t *testing.T) {
	for _, tc := range []struct{ nodes, ppn int }{
		{2, 1}, {4, 1}, {8, 1}, {16, 1}, {3, 1}, {5, 1}, {7, 1}, {12, 1},
		{2, 2}, {8, 2}, {16, 2}, {6, 2},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d", tc.ppn, tc.nodes), func(t *testing.T) {
			n := tc.nodes * tc.ppn
			want := 0.0
			for r := 0; r < n; r++ {
				want += float64(r*r + 1)
			}
			bad := 0
			runOn(t, tc.nodes, tc.ppn, func(ep *HyadesEndpoint) {
				got := ep.GlobalSum(float64(ep.Rank()*ep.Rank() + 1))
				if math.Abs(got-want) > 1e-9 {
					bad++
				}
			})
			if bad != 0 {
				t.Fatalf("%d workers got a wrong global sum (want %g)", bad, want)
			}
		})
	}
}

func TestGlobalSumProperty(t *testing.T) {
	f := func(seed int64, nodesRaw uint8, two bool) bool {
		nodes := int(nodesRaw)%15 + 2
		ppn := 1
		if two {
			ppn = 2
		}
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, nodes*ppn)
		want := 0.0
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			want += vals[i]
		}
		cl, err := cluster.New(cluster.DefaultConfig(nodes, ppn))
		if err != nil {
			return false
		}
		defer cl.Close()
		h, err := NewHyades(cl, DefaultHyadesConfig())
		if err != nil {
			return false
		}
		ok := true
		cl.Start(func(w *cluster.Worker) {
			ep := h.Bind(w)
			got := ep.GlobalSum(vals[ep.Rank()])
			if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
				ok = false
			}
		})
		if err := cl.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// measureGsum returns the steady-state latency of a global sum on the
// given machine, averaged over reps after a warm-up.
func measureGsum(t *testing.T, nodes, ppn, reps int) units.Time {
	t.Helper()
	var start, end units.Time
	runOn(t, nodes, ppn, func(ep *HyadesEndpoint) {
		ep.GlobalSum(1) // warm-up: align all workers
		if ep.Rank() == 0 {
			start = ep.Now()
		}
		for i := 0; i < reps; i++ {
			ep.GlobalSum(float64(i))
		}
		if ep.Rank() == 0 {
			end = ep.Now()
		}
	})
	return (end - start) / units.Time(reps)
}

// TestGlobalSumLatencies checks the simulated butterfly against the
// paper's measured values (§4.2): 4.0/8.3/12.8/18.2 us for 2..16-way
// and 4.8/9.1/13.5/19.5 us for the 2xN mix-mode sums.
func TestGlobalSumLatencies(t *testing.T) {
	cases := []struct {
		nodes, ppn int
		paperUs    float64
	}{
		{2, 1, 4.0}, {4, 1, 8.3}, {8, 1, 12.8}, {16, 1, 18.2},
		{2, 2, 4.8}, {4, 2, 9.1}, {8, 2, 13.5}, {16, 2, 19.5},
	}
	for _, tc := range cases {
		got := measureGsum(t, tc.nodes, tc.ppn, 8).Micros()
		if got < tc.paperUs*0.80 || got > tc.paperUs*1.20 {
			t.Errorf("%dx%d-way gsum = %.2f us, paper %.1f us (tolerance 20%%)", tc.ppn, tc.nodes, got, tc.paperUs)
		} else {
			t.Logf("%dx%d-way gsum = %.2f us (paper %.1f us)", tc.ppn, tc.nodes, got, tc.paperUs)
		}
	}
}

// TestGsumLogScaling verifies t = C*log2(N) + b with C near the paper's
// 4.67 us fit.
func TestGsumLogScaling(t *testing.T) {
	var xs, ys []float64
	for _, n := range []int{2, 4, 8, 16} {
		xs = append(xs, math.Log2(float64(n)))
		ys = append(ys, measureGsum(t, n, 1, 8).Micros())
	}
	c, b := leastSquares(xs, ys)
	t.Logf("fit: tgsum = %.2f*log2(N) %+.2f us (paper: 4.67*log2(N) - 0.95)", c, b)
	if c < 3.5 || c > 5.5 {
		t.Errorf("slope %.2f us/round outside [3.5, 5.5]", c)
	}
}

func leastSquares(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

func TestExchangeSwapsData(t *testing.T) {
	runOn(t, 2, 1, func(ep *HyadesEndpoint) {
		peer := 1 - ep.Rank()
		send := make([]byte, 1024)
		for i := range send {
			send[i] = byte(ep.Rank()*10 + i%7)
		}
		got := ep.Exchange(peer, send, Contiguous(len(send), true))
		for i := range got {
			if got[i] != byte(peer*10+i%7) {
				t.Errorf("rank %d byte %d = %d", ep.Rank(), i, got[i])
				return
			}
		}
	})
}

func TestExchangeManyPairsAndSizes(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		size := int(sizeRaw)%20000 + 1
		rng := rand.New(rand.NewSource(seed))
		a := byte(rng.Intn(256))
		ok := true
		runOn(t, 8, 1, func(ep *HyadesEndpoint) {
			peer := ep.Rank() ^ 1
			send := make([]byte, size)
			for i := range send {
				send[i] = byte(ep.Rank()) + a + byte(i)
			}
			got := ep.Exchange(peer, send, Contiguous(size, false))
			for i := range got {
				if got[i] != byte(peer)+a+byte(i) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// measureTransfer times a one-directional block transfer (the Fig. 7
// stand-alone benchmark): rank 0 sends n bytes to rank 1, repeated and
// averaged.
func measureTransfer(t *testing.T, n, reps int) units.Time {
	t.Helper()
	var start, end units.Time
	runOn(t, 2, 1, func(ep *HyadesEndpoint) {
		ep.Barrier()
		if ep.Rank() == 0 {
			start = ep.Now()
			data := make([]byte, n)
			for i := 0; i < reps; i++ {
				ep.transferSend(1, data, Contiguous(n, true))
				ep.pioWait(clsExchAck, 1, 1) // completion echo
			}
			end = ep.Now()
		} else {
			for i := 0; i < reps; i++ {
				ep.transferRecv(0, Contiguous(n, true))
				ep.pioSend(0, clsExchAck, 1, []uint32{0, 0}) // echo
			}
		}
	})
	return (end - start) / units.Time(reps)
}

// TestFig7BandwidthCurve reproduces the shape of Fig. 7: perceived
// transfer bandwidth as a function of block size, with the paper's
// anchor points: ~56.8 MB/s at 1 KiB, >=90% of peak at 9 KiB, peak
// ~110 MB/s.
func TestFig7BandwidthCurve(t *testing.T) {
	bw := func(n int) float64 {
		d := measureTransfer(t, n, 4)
		// Subtract the completion-echo round trip from the measured
		// period; it is test scaffolding, not part of the transfer.
		echo := measureEcho(t)
		return units.Rate(n, d-echo).MBperSec()
	}
	oneK := bw(1024)
	nineK := bw(9 * 1024)
	peak := bw(128 * 1024)
	t.Logf("perceived bandwidth: 1KiB=%.1f, 9KiB=%.1f, 128KiB=%.1f MB/s (paper: 56.8, ~99, 110)", oneK, nineK, peak)
	if oneK < 48 || oneK > 66 {
		t.Errorf("1-KiB bandwidth %.1f MB/s, paper 56.8", oneK)
	}
	if nineK < 0.85*peak {
		t.Errorf("9-KiB bandwidth %.1f not >=85%% of peak %.1f", nineK, peak)
	}
	if peak < 100 || peak > 115 {
		t.Errorf("peak bandwidth %.1f MB/s, paper 110", peak)
	}
	if !(oneK < nineK && nineK < peak) {
		t.Errorf("bandwidth curve not monotone: %f %f %f", oneK, nineK, peak)
	}
}

// measureEcho times the bare 8-byte ping/pong used as the completion
// echo in measureTransfer.
func measureEcho(t *testing.T) units.Time {
	t.Helper()
	var start, end units.Time
	const reps = 8
	runOn(t, 2, 1, func(ep *HyadesEndpoint) {
		ep.Barrier()
		if ep.Rank() == 0 {
			start = ep.Now()
			for i := 0; i < reps; i++ {
				ep.pioWait(clsExchAck, 1, 1)
			}
			end = ep.Now()
		} else {
			for i := 0; i < reps; i++ {
				ep.pioSend(0, clsExchAck, 1, []uint32{0, 0})
			}
		}
	})
	return (end - start) / units.Time(reps)
}

// TestExchangeOverhead verifies the ~8.6 us per-transfer negotiation
// overhead of §4.1 by extrapolating transfer time to zero size.
func TestExchangeOverhead(t *testing.T) {
	echo := measureEcho(t)
	t8 := measureTransfer(t, 8, 4) - echo
	t4k := measureTransfer(t, 4096, 4) - echo
	// Remove the pipe term (110 MB/s) to isolate the overhead.
	pipe := (110 * units.MBps).Transfer(4096)
	over8 := t8.Micros() - (110 * units.MBps).Transfer(8).Micros()
	over4k := t4k.Micros() - pipe.Micros()
	t.Logf("per-transfer overhead: %.2f us (8B), %.2f us (4KiB); paper 8.6 us", over8, over4k)
	for _, o := range []float64{over8, over4k} {
		if o < 6.5 || o > 11.0 {
			t.Errorf("overhead %.2f us outside [6.5, 11.0] (paper 8.6)", o)
		}
	}
}

func TestIntraNodeExchange(t *testing.T) {
	runOn(t, 1, 2, func(ep *HyadesEndpoint) {
		peer := 1 - ep.Rank()
		send := []byte{byte(ep.Rank() + 1), 42}
		got := ep.Exchange(peer, send, Contiguous(2, true))
		if got[0] != byte(peer+1) || got[1] != 42 {
			t.Errorf("rank %d got %v", ep.Rank(), got)
		}
	})
}

func TestSelfExchange(t *testing.T) {
	runOn(t, 2, 1, func(ep *HyadesEndpoint) {
		send := []byte{9, 9, 9}
		got := ep.Exchange(ep.Rank(), send, Contiguous(3, true))
		if len(got) != 3 || got[0] != 9 {
			t.Errorf("self exchange returned %v", got)
		}
	})
}

// TestSlaveExchangeSlower verifies the ~30% mix-mode bandwidth penalty:
// slave-to-slave transfers stage through shared memory.
func TestSlaveExchangeSlower(t *testing.T) {
	const n = 64 * 1024
	timeFor := func(cpu int) units.Time {
		var start, end units.Time
		runOn(t, 2, 2, func(ep *HyadesEndpoint) {
			if ep.Rank()%2 != cpu {
				return // only one CPU per node participates
			}
			peer := ep.Rank() ^ 2 // same CPU on the other node
			ep.Stats()            // silence linters; real sync below
			if ep.Rank() < peer {
				start = ep.Now()
			}
			ep.Exchange(peer, make([]byte, n), Contiguous(n, false))
			if ep.Rank() < peer {
				end = ep.Now()
			}
		})
		return end - start
	}
	master := timeFor(0)
	slave := timeFor(1)
	ratio := float64(slave) / float64(master)
	t.Logf("slave/master exchange time ratio = %.2f (paper: ~1.3x slower -> ratio ~1.4 on bytes)", ratio)
	if ratio < 1.15 || ratio > 1.75 {
		t.Errorf("slave exchange ratio %.2f outside [1.15, 1.75]", ratio)
	}
}

// TestManyNeighbourExchangesNoDeadlock drives the 4-neighbour halo
// pattern of the GCM on a 4x4 worker grid with the red-black pairwise
// ordering the tile layer uses, ensuring the rendezvous protocol cannot
// deadlock and data lands correctly.
func TestManyNeighbourExchangesNoDeadlock(t *testing.T) {
	const px, py = 4, 4
	bad := 0
	runOn(t, 16, 1, func(ep *HyadesEndpoint) {
		x, y := ep.Rank()%px, ep.Rank()/px
		mk := func(peer int) []byte { return []byte{byte(ep.Rank()), byte(peer)} }
		check := func(peer int, got []byte) {
			if got[0] != byte(peer) || got[1] != byte(ep.Rank()) {
				bad++
			}
		}
		lay := Contiguous(2, true)
		for step := 0; step < 3; step++ { // several sweeps
			east := y*px + (x+1)%px
			west := y*px + (x+px-1)%px
			if x%2 == 0 {
				check(east, ep.Exchange(east, mk(east), lay))
				check(west, ep.Exchange(west, mk(west), lay))
			} else {
				check(west, ep.Exchange(west, mk(west), lay))
				check(east, ep.Exchange(east, mk(east), lay))
			}
			north := ((y+1)%py)*px + x
			south := ((y+py-1)%py)*px + x
			if y%2 == 0 {
				check(north, ep.Exchange(north, mk(north), lay))
				check(south, ep.Exchange(south, mk(south), lay))
			} else {
				check(south, ep.Exchange(south, mk(south), lay))
				check(north, ep.Exchange(north, mk(north), lay))
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d corrupted neighbour exchanges", bad)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var maxBefore, minAfter units.Time
	minAfter = units.Never
	runOn(t, 8, 1, func(ep *HyadesEndpoint) {
		ep.Busy(units.Time(ep.Rank()) * 100 * units.Microsecond) // skew
		if now := ep.Now(); now > maxBefore {
			maxBefore = now
		}
		ep.Barrier()
		if now := ep.Now(); now < minAfter {
			minAfter = now
		}
	})
	if minAfter < maxBefore {
		t.Fatalf("a worker left the barrier at %v before the last arrived at %v", minAfter, maxBefore)
	}
}

func TestStatsAccumulate(t *testing.T) {
	runOn(t, 2, 1, func(ep *HyadesEndpoint) {
		ep.Busy(5 * units.Microsecond)
		ep.GlobalSum(1)
		ep.Exchange(1-ep.Rank(), make([]byte, 256), Contiguous(256, true))
		s := ep.Stats()
		if s.ComputeTime != 5*units.Microsecond {
			t.Errorf("ComputeTime = %v", s.ComputeTime)
		}
		if s.GlobalSums != 1 || s.Exchanges != 1 {
			t.Errorf("counts: %+v", *s)
		}
		if s.GsumTime <= 0 || s.ExchangeTime <= 0 {
			t.Errorf("times not accumulated: %+v", *s)
		}
		if s.BytesSent != 256 {
			t.Errorf("BytesSent = %d", s.BytesSent)
		}
	})
}

func TestSerialEndpoint(t *testing.T) {
	s := &Serial{}
	if s.N() != 1 || s.Rank() != 0 {
		t.Fatal("serial identity")
	}
	if got := s.GlobalSum(3.5); got != 3.5 {
		t.Fatalf("GlobalSum = %g", got)
	}
	s.Busy(units.Microsecond)
	if s.Now() != units.Microsecond {
		t.Fatalf("Now = %v", s.Now())
	}
	s.Barrier()
	if s.Stats().GlobalSums != 1 {
		t.Fatal("stats")
	}
}
