package comm

import (
	"errors"
	"fmt"

	"hyades/internal/arctic"
	"hyades/internal/startx"
)

// ErrPeerUnreachable is the sentinel wrapped by every reliable-channel
// delivery failure: the retry budget for some peer was exhausted.  Match
// it with errors.Is; the concrete *PeerUnreachableError carries the
// diagnostics.
var ErrPeerUnreachable = errors.New("comm: peer unreachable")

// PeerUnreachableError reports an exhausted retransmit budget with
// enough context to identify the wedged protocol step.
type PeerUnreachableError struct {
	SrcNode, DstNode int             // SMP ids of the two ends
	SrcRank, DstRank int             // communication-master ranks of the SMPs
	Seq              uint64          // oldest unacknowledged sequence number
	Tag              int             // its packet tag
	Class            int             // the tag's protocol class bits
	Pri              arctic.Priority // the stalled stream's priority
	Retries          int             // timeouts burned before giving up
	Stranded         int             // packets still queued for the peer
}

// Error implements error.
func (e *PeerUnreachableError) Error() string {
	return fmt.Sprintf("%v: node %d (rank %d) -> node %d (rank %d): seq %d (tag %#x, class %d, %s priority) unacked after %d retries, %d packets stranded",
		ErrPeerUnreachable, e.SrcNode, e.SrcRank, e.DstNode, e.DstRank,
		e.Seq, e.Tag, e.Class, e.Pri, e.Retries, e.Stranded)
}

// Unwrap lets errors.Is(err, ErrPeerUnreachable) succeed.
func (e *PeerUnreachableError) Unwrap() error { return ErrPeerUnreachable }

// FaultStats aggregates the fault-and-recovery counters of a run across
// every NIU and the fabric, for benchmark reporting (goodput vs.
// injected fault rate).
type FaultStats struct {
	// Reliable-channel protocol counters (summed over NIUs).
	DataPackets    int64
	Retransmits    int64
	Timeouts       int64
	AcksSent       int64
	DupSuppressed  int64
	GapDropped     int64
	CorruptDropped int64

	// Fabric fault counters.
	FaultDropped   int64 // packets silently dropped by injected link faults
	FaultCorrupted int64 // packets corrupted in flight
	OutageDropped  int64 // packets lost to link outage windows
	FailedOver     int64 // up-hops adaptively routed around a downed link
}

// FaultStats sums the recovery counters over the cluster.
func (h *Hyades) FaultStats() FaultStats {
	var fs FaultStats
	for _, nd := range h.cl.Nodes {
		r := nd.NIU.Rel
		fs.DataPackets += r.DataPackets
		fs.Retransmits += r.Retransmits
		fs.Timeouts += r.Timeouts
		fs.AcksSent += r.AcksSent
		fs.DupSuppressed += r.DupSuppressed
		fs.GapDropped += r.GapDropped
		fs.CorruptDropped += r.CorruptDropped
	}
	ns := h.cl.Fabric.Stats()
	fs.FaultDropped = ns.FaultDropped
	fs.FaultCorrupted = ns.FaultCorrupted
	fs.OutageDropped = ns.OutageDropped
	fs.FailedOver = ns.FailedOver
	return fs
}

// unreachableError translates a NIU diagnostic into the comm-level
// error, mapping SMP ids to the ranks of their communication masters.
func unreachableError(ppn int, u startx.UnreachableInfo) *PeerUnreachableError {
	return &PeerUnreachableError{
		SrcNode:  u.Local,
		DstNode:  u.Peer,
		SrcRank:  u.Local * ppn,
		DstRank:  u.Peer * ppn,
		Seq:      u.Seq,
		Tag:      u.Tag,
		Class:    u.Tag >> tagClassShift & 0x7,
		Pri:      u.Pri,
		Retries:  u.Retries,
		Stranded: u.Stranded,
	}
}
