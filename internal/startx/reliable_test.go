package startx

import (
	"fmt"
	"testing"

	"hyades/internal/arctic"
	"hyades/internal/des"
	"hyades/internal/fault"
	"hyades/internal/pci"
	"hyades/internal/units"
)

// relRig builds an n-NIU machine with the reliable channel on and the
// given fault plan injected into the fabric.
func relRig(t *testing.T, n int, fc fault.Config) (*des.Engine, []*NIU) {
	t.Helper()
	eng := des.NewEngine()
	acfg := arctic.DefaultConfig(n)
	acfg.Faults = fault.NewPlan(fc)
	fab, err := arctic.New(eng, acfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultConfig()
	scfg.Reliable = true
	nius := make([]*NIU, n)
	for i := 0; i < n; i++ {
		bus := pci.NewBus(eng, pci.DefaultConfig())
		nius[i] = New(eng, bus, fab, i, scfg)
	}
	return eng, nius
}

func TestReliablePIOInOrderUnderDrops(t *testing.T) {
	const msgs = 200
	eng, nius := relRig(t, 2, fault.Config{Seed: 11, DropRate: 0.05})
	eng.Spawn("tx", func(p *des.Proc) {
		for i := 0; i < msgs; i++ {
			nius[0].PIOSend(p, 1, i%0x3ff, []uint32{uint32(i), ^uint32(i)}, arctic.Low)
			p.Delay(500 * units.Nanosecond)
		}
	})
	var got []uint32
	eng.Spawn("rx", func(p *des.Proc) {
		for i := 0; i < msgs; i++ {
			m := nius[1].PIORecv(p, arctic.Low)
			got = append(got, m.Words[0])
		}
	})
	eng.Run()
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d messages", len(got), msgs)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("message %d carries payload %d: order or dedup broken", i, v)
		}
	}
	if nius[0].Rel.Retransmits == 0 {
		t.Fatalf("a 5%% drop rate produced zero retransmits")
	}
	if eng.Blocked() != 0 {
		t.Fatalf("%d processes still blocked", eng.Blocked())
	}
}

func TestReliableVITransferUnderDrops(t *testing.T) {
	eng, nius := relRig(t, 2, fault.Config{Seed: 5, DropRate: 0.05})
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var got Transfer
	eng.Spawn("tx", func(p *des.Proc) { nius[0].DMASend(p, 1, 9, data, arctic.Low) })
	eng.Spawn("rx", func(p *des.Proc) { got = nius[1].VIRecv(p) })
	eng.Run()
	if got.Tag != 9 || len(got.Data) != len(data) {
		t.Fatalf("transfer = tag %d, %d bytes", got.Tag, len(got.Data))
	}
	for i := range data {
		if got.Data[i] != data[i] {
			t.Fatalf("data[%d] corrupted", i)
		}
	}
	if eng.Blocked() != 0 {
		t.Fatalf("%d processes still blocked", eng.Blocked())
	}
}

func TestReliableRecoversCorruption(t *testing.T) {
	eng, nius := relRig(t, 2, fault.Config{Seed: 23, CorruptRate: 0.05})
	const msgs = 100
	eng.Spawn("tx", func(p *des.Proc) {
		for i := 0; i < msgs; i++ {
			nius[0].PIOSend(p, 1, 1, []uint32{uint32(i), 0}, arctic.Low)
			p.Delay(units.Microsecond)
		}
	})
	n := 0
	eng.Spawn("rx", func(p *des.Proc) {
		for i := 0; i < msgs; i++ {
			m := nius[1].PIORecv(p, arctic.Low)
			if m.Corrupt {
				t.Errorf("corrupted message %d leaked through the reliable layer", i)
			}
			n++
		}
	})
	eng.Run()
	if n != msgs {
		t.Fatalf("delivered %d of %d", n, msgs)
	}
}

func TestPermanentOutageDeclaresUnreachable(t *testing.T) {
	eng, nius := relRig(t, 2, fault.Config{
		Outages: []fault.Outage{{Link: "inject(0)", From: 0}},
	})
	var info UnreachableInfo
	calls := 0
	nius[0].OnUnreachable = func(u UnreachableInfo) {
		info = u
		calls++
		eng.Fail(fmt.Errorf("%s", u))
	}
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 0x2a, []uint32{1, 2}, arctic.Low)
	})
	eng.Run()
	if calls != 1 {
		t.Fatalf("OnUnreachable called %d times, want 1", calls)
	}
	if info.Peer != 1 || info.Local != 0 || info.Seq != 0 || info.Tag != 0x2a {
		t.Fatalf("diagnostics = %+v", info)
	}
	if info.Retries != nius[0].cfg.RelRetryBudget {
		t.Fatalf("Retries = %d, want the %d budget", info.Retries, nius[0].cfg.RelRetryBudget)
	}
	if eng.Err() == nil {
		t.Fatalf("engine did not record the failure")
	}
	// Bounded virtual time: the backoff schedule sums to well under a
	// simulated minute.
	if eng.Now() > units.Minute {
		t.Fatalf("unreachable declared only after %v", eng.Now())
	}
}

func TestUnreachableDefaultFailsEngine(t *testing.T) {
	eng, nius := relRig(t, 2, fault.Config{
		Outages: []fault.Outage{{Link: "inject(0)", From: 0}},
	})
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 1, []uint32{1, 2}, arctic.Low)
	})
	eng.Run()
	if eng.Err() == nil {
		t.Fatalf("no OnUnreachable hook and no engine failure either")
	}
}

func TestReliableOffAddsZeroPackets(t *testing.T) {
	// The acceptance bar for the fault-free path: with Reliable unset
	// the layer must add no packets and no virtual time.
	run := func(reliable bool) (int64, units.Time, uint64) {
		eng := des.NewEngine()
		fab, err := arctic.New(eng, arctic.DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Reliable = reliable
		var nius [2]*NIU
		for i := 0; i < 2; i++ {
			nius[i] = New(eng, pci.NewBus(eng, pci.DefaultConfig()), fab, i, cfg)
		}
		eng.Spawn("tx", func(p *des.Proc) {
			for i := 0; i < 10; i++ {
				nius[0].PIOSend(p, 1, 1, []uint32{uint32(i), 0}, arctic.Low)
			}
		})
		eng.Spawn("rx", func(p *des.Proc) {
			for i := 0; i < 10; i++ {
				nius[1].PIORecv(p, arctic.Low)
			}
		})
		eng.Run()
		return fab.Stats().Packets, eng.Now(), eng.Events()
	}
	basePkts, baseNow, _ := run(false)
	relPkts, _, _ := run(true)
	if relPkts == basePkts {
		t.Fatalf("sanity: reliable run should add ACK packets (%d vs %d)", relPkts, basePkts)
	}
	// And the off-switch is the true baseline: rerun must be identical.
	againPkts, againNow, _ := run(false)
	if againPkts != basePkts || againNow != baseNow {
		t.Fatalf("unreliable runs disagree with themselves")
	}
}

func TestReliableStatsAccounting(t *testing.T) {
	eng, nius := relRig(t, 2, fault.Config{Seed: 2, DropRate: 0.1})
	const msgs = 100
	eng.Spawn("tx", func(p *des.Proc) {
		for i := 0; i < msgs; i++ {
			nius[0].PIOSend(p, 1, 1, []uint32{uint32(i), 0}, arctic.Low)
			p.Delay(units.Microsecond)
		}
	})
	eng.Spawn("rx", func(p *des.Proc) {
		for i := 0; i < msgs; i++ {
			nius[1].PIORecv(p, arctic.Low)
		}
	})
	eng.Run()
	tx, rx := nius[0].Rel, nius[1].Rel
	if tx.DataPackets != msgs {
		t.Fatalf("DataPackets = %d, want %d", tx.DataPackets, msgs)
	}
	if tx.Retransmits == 0 || tx.Timeouts == 0 {
		t.Fatalf("10%% drops but Retransmits=%d Timeouts=%d", tx.Retransmits, tx.Timeouts)
	}
	if rx.AcksSent == 0 {
		t.Fatalf("receiver sent no ACKs")
	}
	if rx.GapDropped == 0 {
		t.Fatalf("10%% drops but the receiver saw no sequence gaps")
	}
}

func TestDuplicateSuppressionWhenAcksLost(t *testing.T) {
	// Take down only the ACK return path (node 1's inject link) past
	// the first RTO: the data is delivered, the sender can't learn it,
	// and every retransmission must be suppressed as a duplicate.
	eng, nius := relRig(t, 2, fault.Config{
		Outages: []fault.Outage{{Link: "inject(1)", From: 0, Until: 700 * units.Microsecond}},
	})
	var got Message
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 1, []uint32{7, 8}, arctic.Low)
	})
	eng.Spawn("rx", func(p *des.Proc) { got = nius[1].PIORecv(p, arctic.Low) })
	eng.Run()
	if len(got.Words) != 2 || got.Words[0] != 7 {
		t.Fatalf("message not delivered: %+v", got)
	}
	if nius[1].Rel.DupSuppressed == 0 {
		t.Fatalf("lost ACKs produced no suppressed duplicates")
	}
	if eng.Err() != nil {
		t.Fatalf("transient ACK outage escalated to %v", eng.Err())
	}
	if eng.Blocked() != 0 {
		t.Fatalf("%d processes still blocked", eng.Blocked())
	}
}
