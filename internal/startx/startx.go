// Package startx models the StarT-X PCI network interface unit
// (paper §2.3 and [Hoe 98]).
//
// StarT-X implements its message-passing mechanisms entirely in
// hardware; the model therefore has no firmware process, just event
// chains with the published costs.  All three of its mechanisms are
// reproduced; the first two are the ones the GCM code uses:
//
//   - PIO mode: a FIFO-based network abstraction in the style of the
//     CM-5 data network interface.  A message is two 32-bit header words
//     plus 2..22 payload words, moved to/from NIU registers by uncached
//     mmap accesses.  The cost of a send is one 8-byte header write plus
//     one write per 8 payload bytes; a receive is the same pattern with
//     reads.  With the §2.1 host constants this reproduces the paper's
//     estimates (0.36 us / 1.86 us for an 8-byte message) and, through
//     the fabric model, the LogP table of Fig. 2.
//
//   - VI (cacheable virtual interface) mode: transmit and receive queues
//     extended into host memory by DMA.  The processor writes messages
//     into a pinned, cacheable VI region and kicks the NIU's DMA engine
//     with mmap writes; the engine moves packet-sized quanta (up to 88
//     payload bytes plus an 8-byte header per 96-byte PCI burst) across
//     the bus, which yields the published 110 MByte/sec peak payload
//     rate (88/96 x 120 MB/s).
//
//   - Remote-memory mode: one-sided DMA puts into registered windows
//     of a remote node's pinned memory (see RemotePut), completion
//     observed by polling a cached flag.
package startx

import (
	"fmt"

	"hyades/internal/arctic"
	"hyades/internal/des"
	"hyades/internal/pci"
	"hyades/internal/units"
)

// Tag-space conventions.  The 11-bit packet tag carries a VI flag in
// the top bit; the low 10 bits are free for the software layer.
// Remote-memory packets reuse the tag as the window id and are marked
// out-of-band on the packet.
const (
	viTagFlag = 0x400
	MaxTag    = 0x3ff
	MaxWindow = 0x3ff
)

// Config holds NIU-internal pipeline latencies.  These are the only
// parameters not published directly in the paper; they are calibrated so
// that the simulated LogP characteristics land on Fig. 2 (see package
// comm's tests).
type Config struct {
	TxLatency units.Time // NIU transmit pipeline, register to first link
	RxLatency units.Time // NIU receive pipeline, last link to visible data

	// Reliable switches on the go-back-N reliable channel (see
	// reliable.go).  Off by default: a fault-free fabric delivers every
	// packet, and the paper's software layer assumes exactly that.
	Reliable bool
	// RelTimeout is the initial retransmit timeout (0 = default).
	RelTimeout units.Time
	// RelBackoffCap bounds the exponentially backed-off timeout.
	RelBackoffCap units.Time
	// RelRetryBudget is the number of consecutive fruitless timeouts
	// tolerated before the peer is declared unreachable.
	RelRetryBudget int
	// RelWindow is the go-back-N window: the maximum number of
	// unacknowledged packets per (destination, priority) stream.
	RelWindow int

	// Heartbeat and PeerLease configure NIU-level dead-peer detection
	// (see peer.go).  With Heartbeat > 0 a started monitor broadcasts a
	// small high-priority heartbeat packet every Heartbeat of virtual
	// time, and declares a peer dead once nothing — heartbeat or data —
	// has been heard from it for PeerLease.  Zero leaves detection off;
	// the cluster layer fills in defaults when node faults are enabled.
	Heartbeat units.Time
	PeerLease units.Time
}

// DefaultConfig returns the calibrated StarT-X pipeline latencies.
func DefaultConfig() Config {
	return Config{
		TxLatency: 250 * units.Nanosecond,
		RxLatency: 250 * units.Nanosecond,
	}
}

// Message is a received PIO-mode message.
type Message struct {
	Src     int
	Tag     int
	Words   []uint32
	Corrupt bool // the 1-bit catastrophic-failure status of §2.2
}

// Transfer is a completed VI-mode bulk transfer.
type Transfer struct {
	Src  int
	Tag  int
	Data []byte
}

// NIU is one StarT-X interface attached to an Arctic endpoint and to its
// host's PCI bus.
type NIU struct {
	eng *des.Engine
	bus *pci.Bus
	fab *arctic.Fabric
	ep  int
	cfg Config

	rxHi *des.Mailbox[Message]
	rxLo *des.Mailbox[Message]
	rxVI *des.Mailbox[Transfer]

	txQueue  []*dmaJob
	txActive bool

	// pumpTxFn is the bound method value of pumpTx, created once so
	// re-arming the transmit pump schedules no closure.  freeRx, freeTx
	// and freeDma are the delivery-job, inject-job and DMA-job
	// freelists: each job carries its own bound fn, so the steady-state
	// receive and transmit paths allocate nothing.
	pumpTxFn func()
	freeRx   []*rxJob
	freeTx   []*txJob
	freeDma  []*dmaJob

	// CorruptSeen counts packets that arrived with a failed CRC; the
	// software layer observes this through Message.Corrupt.
	CorruptSeen int64

	// OnPIODeliver, if set, runs (in engine context) whenever a PIO
	// message lands in a receive queue.  The software layer uses it to
	// wake pollers without modelling every idle status read.
	OnPIODeliver func()

	// Rel counts reliable-channel protocol events (all zero unless
	// Config.Reliable is set).
	Rel RelStats

	// OnUnreachable, if set, observes an exhausted retry budget; when
	// nil the NIU fails the engine with the diagnostic instead.
	OnUnreachable func(UnreachableInfo)

	// relTxStreams / relRxStreams are the go-back-N per-stream states,
	// indexed 2*endpoint+priority (see reliable.go).
	relTxStreams []*relStream
	relRxStreams []relRxStream

	// windows holds the registered remote-memory regions.
	windows map[int]*rmemWindow

	// Node-failure state (see peer.go).  down marks a crashed NIU: it
	// transmits nothing and drops every arrival.  epoch is the
	// communication incarnation stamped on outgoing traffic; arrivals
	// from another epoch are pre-rollback stragglers and are dropped.
	// lastHeard/peerDead are the dead-peer detector's per-endpoint
	// lease state (slices, not maps: this is the event path).
	down      bool
	epoch     uint32
	lastHeard []units.Time
	peerDead  []bool
	hbTimer   *des.Timer
	lsTimer   *des.Timer

	// OnPeerDead, if set, observes (in engine context) a peer whose
	// lease expired; fired once per peer per monitoring epoch.
	OnPeerDead func(peer int)

	// DownDropped / StaleDropped / Heartbeats count node-failure
	// machinery events: arrivals discarded while down, stale-epoch
	// arrivals discarded after a rollback, heartbeat packets sent.
	DownDropped  int64
	StaleDropped int64
	Heartbeats   int64
}

// dmaJob is one queued VI-mode or remote-memory transmit; offset is
// the streaming cursor, winOff the rmem destination offset.
type dmaJob struct {
	dst, tag int
	data     []byte
	pri      arctic.Priority
	offset   int

	rmem   bool
	window int
	winOff int
}

// acquireDma pops a zeroed dmaJob from the freelist (or allocates one).
func (n *NIU) acquireDma() *dmaJob {
	if k := len(n.freeDma); k > 0 {
		j := n.freeDma[k-1]
		n.freeDma[k-1] = nil
		n.freeDma = n.freeDma[:k-1]
		return j
	}
	return &dmaJob{}
}

// releaseDma returns a finished job to the freelist.  Jobs dropped
// wholesale (Crash nils the queue) are simply left to the GC.
func (n *NIU) releaseDma(j *dmaJob) {
	*j = dmaJob{}
	n.freeDma = append(n.freeDma, j)
}

// popTxJob removes and returns the head of the transmit queue without
// shedding the slice's capacity.
func (n *NIU) popTxJob() *dmaJob {
	j := n.txQueue[0]
	k := copy(n.txQueue, n.txQueue[1:])
	n.txQueue[k] = nil
	n.txQueue = n.txQueue[:k]
	return j
}

// txJob is a scheduled fabric injection.  Each job owns a fn bound to
// itself once, so arming a TxLatency delay schedules no closure.
type txJob struct {
	n   *NIU
	pkt *arctic.Packet
	fn  func()
}

func (j *txJob) run() {
	pkt := j.pkt
	j.pkt = nil
	j.n.freeTx = append(j.n.freeTx, j)
	j.n.inject(pkt)
}

// scheduleInject arms a packet injection d from now via the job pool.
func (n *NIU) scheduleInject(d units.Time, pkt *arctic.Packet) {
	var j *txJob
	if k := len(n.freeTx); k > 0 {
		j = n.freeTx[k-1]
		n.freeTx[k-1] = nil
		n.freeTx = n.freeTx[:k-1]
	} else {
		j = &txJob{n: n}
		j.fn = j.run
	}
	j.pkt = pkt
	n.eng.Schedule(d, j.fn)
}

// rxJob is a scheduled receive-side delivery: a PIO message headed for
// a mailbox, a completed VI transfer, or a remote-memory landing.  The
// delivered packet's fields are captured eagerly — the fabric reclaims
// pooled packets as soon as the receive handler returns, so nothing
// here may hold a *Packet across the RxLatency delay.
type rxJob struct {
	n    *NIU
	kind int8 // rxPIO, rxVI or rxRmem
	hi   bool
	msg  Message
	xfer Transfer

	window, offset int
	data           []byte

	fn func()
}

const (
	rxPIO = int8(iota)
	rxVI
	rxRmem
)

func (n *NIU) acquireRx() *rxJob {
	if k := len(n.freeRx); k > 0 {
		j := n.freeRx[k-1]
		n.freeRx[k-1] = nil
		n.freeRx = n.freeRx[:k-1]
		return j
	}
	j := &rxJob{n: n}
	j.fn = j.run
	return j
}

func (j *rxJob) run() {
	n := j.n
	kind, hi := j.kind, j.hi
	msg, xfer := j.msg, j.xfer
	window, offset, data := j.window, j.offset, j.data
	j.msg, j.xfer, j.data = Message{}, Transfer{}, nil
	n.freeRx = append(n.freeRx, j)
	switch kind {
	case rxPIO:
		if hi {
			n.rxHi.Send(msg)
		} else {
			n.rxLo.Send(msg)
		}
		if n.OnPIODeliver != nil {
			n.OnPIODeliver()
		}
	case rxVI:
		n.rxVI.Send(xfer)
	case rxRmem:
		n.completeRemotePut(window, offset, data)
	}
}

// New attaches a NIU for endpoint ep to fabric fab and bus.
func New(e *des.Engine, bus *pci.Bus, fab *arctic.Fabric, ep int, cfg Config) *NIU {
	if cfg.Reliable {
		if cfg.RelTimeout <= 0 {
			cfg.RelTimeout = DefaultRelTimeout
		}
		if cfg.RelBackoffCap <= 0 {
			cfg.RelBackoffCap = DefaultRelBackoffCap
		}
		if cfg.RelRetryBudget <= 0 {
			cfg.RelRetryBudget = DefaultRelRetryBudget
		}
		if cfg.RelWindow <= 0 {
			cfg.RelWindow = DefaultRelWindow
		}
	}
	n := &NIU{
		eng: e, bus: bus, fab: fab, ep: ep, cfg: cfg,
		rxHi: des.NewMailbox[Message](e, fmt.Sprintf("niu%d.rxHi", ep)),
		rxLo: des.NewMailbox[Message](e, fmt.Sprintf("niu%d.rxLo", ep)),
		rxVI: des.NewMailbox[Transfer](e, fmt.Sprintf("niu%d.rxVI", ep)),
	}
	n.pumpTxFn = n.pumpTx
	fab.Attach(ep, n.receive)
	return n
}

// Endpoint returns the NIU's Arctic endpoint number.
func (n *NIU) Endpoint() int { return n.ep }

// Bus returns the host PCI bus the NIU is attached to.
func (n *NIU) Bus() *pci.Bus { return n.bus }

// pioAccesses returns the number of 8-byte mmap accesses needed to move
// a message with the given payload through the register interface: one
// for the header pair plus one per 8 payload bytes.
func pioAccesses(payloadWords int) int {
	return 1 + (payloadWords*4+7)/8
}

// PIOSendCost returns the processor overhead Os of a PIO send.
func (n *NIU) PIOSendCost(payloadWords int) units.Time {
	return units.Time(pioAccesses(payloadWords)) * n.bus.Config().MMapWriteLatency
}

// PIORecvCost returns the processor overhead Or of a PIO receive.
func (n *NIU) PIORecvCost(payloadWords int) units.Time {
	return units.Time(pioAccesses(payloadWords)) * n.bus.Config().MMapReadLatency
}

// PIOSend transmits a PIO-mode message, stalling the calling processor
// for the mmap-write overhead.  The payload must be 2..22 words.
// Ownership of words transfers to the NIU (the register writes consume
// it); callers must pass a buffer they will not mutate afterwards.
func (n *NIU) PIOSend(p *des.Proc, dst int, tag int, words []uint32, pri arctic.Priority) {
	if len(words) < arctic.MinPayloadWords || len(words) > arctic.MaxPayloadWords {
		panic(fmt.Sprintf("startx: PIO payload %d words", len(words)))
	}
	if tag < 0 || tag > MaxTag {
		panic(fmt.Sprintf("startx: tag %d out of range", tag))
	}
	n.bus.MMapWriteN(p, pioAccesses(len(words)))
	pkt := n.fab.AcquirePacket()
	pkt.Pri = pri
	pkt.Tag = uint16(tag)
	pkt.Payload = words
	n.fab.RouteFor(pkt, n.ep, dst)
	n.scheduleInject(n.cfg.TxLatency, pkt)
}

// PIORecv blocks until a PIO message of the given priority is available,
// then stalls the calling processor for the mmap-read overhead and
// returns the message.  The first header read doubles as the
// queue-not-empty check, so no separate status poll is charged.
func (n *NIU) PIORecv(p *des.Proc, pri arctic.Priority) Message {
	mb := n.rxLo
	if pri == arctic.High {
		mb = n.rxHi
	}
	m := mb.Recv(p)
	n.bus.MMapReadN(p, pioAccesses(len(m.Words)))
	return m
}

// TryPIORecv polls the receive queue without blocking.  A successful
// poll charges the read overhead; an empty poll charges one status read.
func (n *NIU) TryPIORecv(p *des.Proc, pri arctic.Priority) (Message, bool) {
	mb := n.rxLo
	if pri == arctic.High {
		mb = n.rxHi
	}
	m, ok := mb.TryRecv()
	if !ok {
		n.bus.MMapRead(p)
		return Message{}, false
	}
	n.bus.MMapReadN(p, pioAccesses(len(m.Words)))
	return m, true
}

// DMASend queues a VI-mode bulk transfer of data to dst.  The caller is
// stalled only for the DMA-invocation cost (descriptor plus doorbell
// writes); the transfer itself proceeds asynchronously at the PCI DMA
// rate, one 96-byte burst (8-byte header + up to 88 payload bytes) per
// packet.
func (n *NIU) DMASend(p *des.Proc, dst int, tag int, data []byte, pri arctic.Priority) {
	if tag < 0 || tag > MaxTag {
		panic(fmt.Sprintf("startx: tag %d out of range", tag))
	}
	if len(data) == 0 {
		panic("startx: empty DMA transfer")
	}
	n.bus.MMapWriteN(p, 2)
	j := n.acquireDma()
	j.dst, j.tag, j.data, j.pri = dst, tag, data, pri
	n.txQueue = append(n.txQueue, j)
	if !n.txActive {
		n.txActive = true
		n.pumpTx()
	}
}

// pumpTx moves the next packet quantum of the transmit queue's head job
// across the PCI bus and into the fabric, then re-arms itself.
func (n *NIU) pumpTx() {
	if n.down || len(n.txQueue) == 0 {
		n.txActive = false
		return
	}
	job := n.txQueue[0]
	chunk := len(job.data) - job.offset
	if chunk > arctic.MaxPayloadBytes {
		chunk = arctic.MaxPayloadBytes
	}
	job.offset += chunk
	final := job.offset == len(job.data)
	_, end := n.bus.DMA(n.eng.Now(), chunk+arctic.HeaderBytes)
	words := (chunk + 3) / 4
	if words < arctic.MinPayloadWords {
		words = arctic.MinPayloadWords
	}
	pkt := n.fab.AcquirePacket()
	pkt.Pri = job.pri
	pkt.Tag = uint16(job.tag | viTagFlag)
	pkt.BulkWords = words
	pkt.Final = final
	pkt.Rmem = job.rmem
	if final {
		pkt.Bulk = job.data
		pkt.RmemOffset = job.winOff
	}
	dst := job.dst
	if final {
		n.popTxJob()
		n.releaseDma(job)
	}
	n.fab.RouteFor(pkt, n.ep, dst)
	inject := end - n.eng.Now() + n.cfg.TxLatency
	n.scheduleInject(inject, pkt)
	n.eng.ScheduleAt(end, n.pumpTxFn)
}

// VIRecv blocks until a completed bulk transfer is available and returns
// it.  Polling the cacheable VI region is a cached memory access, so no
// mmap cost is charged here; the comm layer charges its own copy-out.
func (n *NIU) VIRecv(p *des.Proc) Transfer {
	return n.rxVI.Recv(p)
}

// VIRecvDeadline is VIRecv with a virtual-time bound; ok is false if
// the deadline elapsed with no completed transfer.
func (n *NIU) VIRecvDeadline(p *des.Proc, d units.Time) (Transfer, bool) {
	return n.rxVI.RecvDeadline(p, d)
}

// VIPending reports the number of completed transfers awaiting pickup.
func (n *NIU) VIPending() int { return n.rxVI.Len() }

// receive is the fabric delivery handler: it dispatches packets to the
// PIO queues or runs the VI receive DMA.
func (n *NIU) receive(pkt *arctic.Packet) {
	if pkt.HB {
		// Heartbeats prove liveness across epochs and are never
		// delivered to software; a downed NIU hears nothing.
		if !n.down && !pkt.Corrupted() {
			n.noteHeard(pkt.Src)
		}
		return
	}
	if n.down {
		n.DownDropped++
		return
	}
	if n.lastHeard != nil && !pkt.Corrupted() {
		n.noteHeard(pkt.Src)
	}
	if n.cfg.Reliable && pkt.Epoch != n.epoch {
		// A straggler from before a recovery rollback: the reliable
		// streams it belongs to no longer exist.  Dropping it (ACKs
		// included) keeps the fresh epoch's sequence spaces clean.
		n.StaleDropped++
		return
	}
	if pkt.Corrupted() {
		n.CorruptSeen++
	}
	if n.cfg.Reliable && !n.relAdmit(pkt) {
		return
	}
	if pkt.Tag&viTagFlag != 0 {
		// VI path: DMA the quantum into the VI region; the transfer
		// completes (becomes visible to software) when the final
		// packet's burst lands.
		_, end := n.bus.DMA(n.eng.Now(), pkt.PayloadBytes()+arctic.HeaderBytes)
		if pkt.Final {
			j := n.acquireRx()
			if pkt.Rmem {
				j.kind = rxRmem
				j.window = int(pkt.Tag) &^ viTagFlag
				j.offset = pkt.RmemOffset
				j.data = pkt.Bulk
			} else {
				j.kind = rxVI
				j.xfer = Transfer{Src: pkt.Src, Tag: int(pkt.Tag &^ viTagFlag), Data: pkt.Bulk}
			}
			n.eng.ScheduleAt(end+n.cfg.RxLatency, j.fn)
		}
		return
	}
	j := n.acquireRx()
	j.kind = rxPIO
	j.hi = pkt.Pri == arctic.High
	j.msg = Message{Src: pkt.Src, Tag: int(pkt.Tag), Words: pkt.Payload, Corrupt: pkt.Corrupted()}
	n.eng.Schedule(n.cfg.RxLatency, j.fn)
}

// ---- Remote-memory mechanism ----
//
// StarT-X's third message-passing mechanism [Hoe 98] is a one-sided
// remote-memory operation: the initiator's DMA engine moves a block
// directly into a window of the target node's pinned memory, with no
// receiving process involved; completion is observed by polling a
// cached flag.  The GCM's primitives do not use it (the paper's
// exchange is built on VI mode), but the mechanism is part of the NIU
// and is exercised by the tests and available for extensions.

// rmemWindow is one registered remote-memory region.
type rmemWindow struct {
	data    []byte
	version int64
}

// RegisterWindow exposes size bytes of this node's pinned memory as
// remote-memory window id, writable by remote Put operations.
func (n *NIU) RegisterWindow(id, size int) {
	if n.windows == nil {
		n.windows = make(map[int]*rmemWindow)
	}
	n.windows[id] = &rmemWindow{data: make([]byte, size)}
}

// Window returns the current contents and version counter of a local
// window.  Reading it is a cached memory access (no cost charged);
// the version increments once per completed remote Put.
func (n *NIU) Window(id int) ([]byte, int64) {
	w := n.windows[id]
	if w == nil {
		return nil, 0
	}
	return w.data, w.version
}

// RemotePut writes data into (window, offset) on the destination node,
// one-sided: the caller pays only the DMA-invocation cost and the
// transfer streams at the VI rate; the remote processor is never
// involved.  Delivery order with respect to other Puts between the
// same pair is FIFO.
func (n *NIU) RemotePut(p *des.Proc, dst, window, offset int, data []byte, pri arctic.Priority) {
	if len(data) == 0 {
		panic("startx: empty RemotePut")
	}
	if window < 0 || window > MaxWindow {
		panic(fmt.Sprintf("startx: window %d out of range", window))
	}
	n.bus.MMapWriteN(p, 2)
	n.txQueue = append(n.txQueue, &dmaJob{
		dst: dst, tag: window, data: data, pri: pri,
		rmem: true, window: window, winOff: offset,
	})
	if !n.txActive {
		n.txActive = true
		n.pumpTx()
	}
}

// completeRemotePut lands a finished Put in the local window.
func (n *NIU) completeRemotePut(window, offset int, data []byte) {
	w := n.windows[window]
	if w == nil {
		return // unregistered window: the hardware drops the write
	}
	copy(w.data[minInt(offset, len(w.data)):], data)
	w.version++
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
