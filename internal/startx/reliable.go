// Go-back-N reliable delivery for the StarT-X NIU.
//
// The paper's cluster assumes Arctic delivers every packet ("software
// sees error-free operation"); under fault injection that assumption
// breaks, so the NIU grows the recovery protocol a real deployment of
// this interconnect class pairs with its link-level CRC.  The design is
// classic go-back-N ARQ, kept entirely inside the NIU model:
//
//   - Every data packet carries a sequence number (arctic.RelHeader —
//     the simulator's out-of-band stand-in for sequence bits in the
//     packet tag space).  Streams are per (destination, priority):
//     Arctic guarantees FIFO delivery only within one priority of one
//     path, so the two priorities must not share a sequence space.
//   - The receiver accepts exactly the next expected sequence number,
//     acknowledges cumulatively with a small high-priority ACK packet,
//     suppresses duplicates, and drops out-of-order arrivals (the gap
//     will be refilled by retransmission).
//   - The sender holds unacknowledged packets, retransmits all of them
//     when a virtual-time timeout expires, doubles the timeout on every
//     consecutive expiry (capped), and after a configurable budget of
//     fruitless retries declares the peer unreachable — loudly, via
//     OnUnreachable / Engine.Fail, never by hanging.
//
// The layer is gated by Config.Reliable: switched off (the default) it
// adds zero packets, zero events and zero virtual time, so fault-free
// runs are bit-identical to builds that predate it.
package startx

import (
	"fmt"

	"hyades/internal/arctic"
	"hyades/internal/des"
	"hyades/internal/units"
)

// Reliability defaults; overridable through Config.
const (
	DefaultRelTimeout     = 500 * units.Microsecond
	DefaultRelBackoffCap  = 4 * units.Millisecond
	DefaultRelRetryBudget = 12
	DefaultRelWindow      = 64
)

// RelStats counts reliable-channel protocol events on one NIU.
type RelStats struct {
	DataPackets    int64 // sequenced data packets first-transmitted
	Retransmits    int64 // data packets re-injected after a timeout
	Timeouts       int64 // retransmit timer expiries
	AcksSent       int64 // cumulative ACK packets injected
	DupSuppressed  int64 // duplicate data packets discarded at the receiver
	GapDropped     int64 // out-of-order data packets discarded at the receiver
	CorruptDropped int64 // CRC-failed packets discarded by the reliable layer
}

// UnreachableInfo diagnoses an exhausted retry budget.
type UnreachableInfo struct {
	Local    int             // this NIU's endpoint
	Peer     int             // the unresponsive destination endpoint
	Seq      uint64          // oldest unacknowledged sequence number
	Tag      int             // its packet tag (the software class bits)
	Pri      arctic.Priority // the stalled stream's priority
	Retries  int             // timeouts burned before giving up
	Stranded int             // packets still queued for the peer
}

func (u UnreachableInfo) String() string {
	return fmt.Sprintf("endpoint %d -> peer %d unreachable: seq %d (tag %#x, %s priority) unacked after %d retries, %d packets stranded",
		u.Local, u.Peer, u.Seq, u.Tag, u.Pri, u.Retries, u.Stranded)
}

// relStream is the sender-side state of one (destination, priority)
// go-back-N stream.
type relStream struct {
	niu     *NIU
	dst     int
	pri     arctic.Priority
	nextSeq uint64
	unacked []*arctic.Packet // in seq order; index 0 is the oldest
	backlog []*arctic.Packet // sequenced, waiting for window space
	timer   *des.Timer
	retries int
	dead    bool // retry budget exhausted; stop transmitting
}

// relRxStream is the receiver-side state of one (source, priority)
// stream: the next expected sequence number.
type relRxStream struct {
	expected uint64
}

// relTx returns (creating on demand) the sender stream for (dst, pri).
// Indexed storage, not a map: this is the event path.
func (n *NIU) relTx(dst int, pri arctic.Priority) *relStream {
	if n.relTxStreams == nil {
		n.relTxStreams = make([]*relStream, 2*n.fab.Config().Endpoints)
	}
	i := 2*dst + int(pri)
	if n.relTxStreams[i] == nil {
		n.relTxStreams[i] = &relStream{niu: n, dst: dst, pri: pri}
	}
	return n.relTxStreams[i]
}

// relRx returns the receiver stream for (src, pri).
func (n *NIU) relRx(src int, pri arctic.Priority) *relRxStream {
	if n.relRxStreams == nil {
		n.relRxStreams = make([]relRxStream, 2*n.fab.Config().Endpoints)
	}
	return &n.relRxStreams[2*src+int(pri)]
}

// inject is the single funnel between the NIU transmit paths and the
// fabric.  With the reliable channel off it is a plain injection.
func (n *NIU) inject(pkt *arctic.Packet) {
	if n.down {
		// A transmit scheduled before the crash: the NIU died under it.
		return
	}
	pkt.Epoch = n.epoch
	if !n.cfg.Reliable {
		n.fab.Inject(n.ep, pkt)
		return
	}
	st := n.relTx(pkt.Dst, pkt.Pri)
	pkt.Rel = &arctic.RelHeader{Seq: st.nextSeq, Chan: pkt.Pri}
	st.nextSeq++
	if st.dead || len(st.unacked) >= n.cfg.RelWindow {
		st.backlog = append(st.backlog, pkt)
		return
	}
	st.sendData(pkt)
}

// sendData transmits a sequenced packet for the first time.  The
// original is retained for retransmission; a pristine clone crosses the
// wire, as the NIU re-reads packet data from its queues on every send.
func (st *relStream) sendData(pkt *arctic.Packet) {
	st.unacked = append(st.unacked, pkt)
	st.niu.Rel.DataPackets++
	st.niu.fab.Inject(st.niu.ep, pkt.Clone())
	if st.timer == nil || !st.timer.Active() {
		st.armTimer()
	}
}

// rto returns the current retransmit timeout with exponential backoff.
func (st *relStream) rto() units.Time {
	d := st.niu.cfg.RelTimeout << st.retries
	if cap := st.niu.cfg.RelBackoffCap; d > cap || d <= 0 {
		d = cap
	}
	return d
}

func (st *relStream) armTimer() {
	st.timer = st.niu.eng.After(st.rto(), st.onTimeout)
}

// onTimeout fires when the oldest unacked packet has gone unanswered
// for a full RTO: retransmit the whole window (go-back-N), back off,
// and give up loudly once the retry budget is spent.
func (st *relStream) onTimeout() {
	n := st.niu
	if n.down {
		return
	}
	n.Rel.Timeouts++
	st.retries++
	if st.retries > n.cfg.RelRetryBudget {
		st.dead = true
		head := st.unacked[0]
		info := UnreachableInfo{
			Local:    n.ep,
			Peer:     st.dst,
			Seq:      head.Rel.Seq,
			Tag:      int(head.Tag),
			Pri:      st.pri,
			Retries:  st.retries - 1,
			Stranded: len(st.unacked) + len(st.backlog),
		}
		if n.OnUnreachable != nil {
			n.OnUnreachable(info)
			return
		}
		n.eng.Fail(fmt.Errorf("startx: %s", info))
		return
	}
	for _, pkt := range st.unacked {
		n.Rel.Retransmits++
		n.fab.Inject(n.ep, pkt.Clone())
	}
	st.armTimer()
}

// onAck processes a cumulative acknowledgement: everything below
// ackSeq has been received.
func (st *relStream) onAck(ackSeq uint64) {
	progressed := false
	for len(st.unacked) > 0 && st.unacked[0].Rel.Seq < ackSeq {
		st.unacked = st.unacked[1:]
		progressed = true
	}
	if !progressed {
		return
	}
	st.retries = 0
	if st.timer != nil {
		st.timer.Cancel()
	}
	// Window space freed: promote backlogged packets.
	for !st.dead && len(st.backlog) > 0 && len(st.unacked) < st.niu.cfg.RelWindow {
		pkt := st.backlog[0]
		st.backlog = st.backlog[1:]
		st.sendData(pkt)
	}
	if len(st.unacked) > 0 && (st.timer == nil || !st.timer.Active()) {
		st.armTimer()
	}
}

// relAdmit filters an arriving packet through the reliable layer.  It
// returns true if the packet should proceed to normal dispatch.
func (n *NIU) relAdmit(pkt *arctic.Packet) bool {
	if pkt.Corrupted() {
		// The NIU's CRC check rejects the packet outright; the sender's
		// retransmission recovers it.
		n.Rel.CorruptDropped++
		return false
	}
	rel := pkt.Rel
	if rel == nil {
		return true
	}
	if rel.Ack {
		n.relTx(pkt.Src, rel.Chan).onAck(rel.AckSeq)
		return false
	}
	rx := n.relRx(pkt.Src, rel.Chan)
	switch {
	case rel.Seq == rx.expected:
		rx.expected++
		n.sendAck(pkt.Src, rel.Chan, rx.expected)
		return true
	case rel.Seq < rx.expected:
		// Duplicate of something already delivered (a retransmission
		// raced the ACK).  Re-acknowledge so the sender's window moves.
		n.Rel.DupSuppressed++
		n.sendAck(pkt.Src, rel.Chan, rx.expected)
		return false
	default:
		// Gap: an earlier packet of the stream was lost.  Go-back-N
		// discards and waits for the sender to rewind.
		n.Rel.GapDropped++
		n.sendAck(pkt.Src, rel.Chan, rx.expected)
		return false
	}
}

// relAckPayload is the shared wire padding of every ACK packet.  The
// acknowledgement itself rides in the out-of-band RelHeader; the
// payload words are never read and nothing in the stack mutates packet
// payloads, so all ACKs can alias one zero buffer.
var relAckPayload = make([]uint32, arctic.MinPayloadWords)

// sendAck injects a cumulative acknowledgement for stream (dst's view:
// this endpoint, chan) as a minimal high-priority packet.  ACKs are
// themselves unsequenced and unprotected: a lost ACK is recovered by
// the next one, or by the duplicate re-ack after a retransmission.
func (n *NIU) sendAck(dst int, ch arctic.Priority, ackSeq uint64) {
	if n.down {
		return
	}
	ack := n.fab.AcquirePacket()
	ack.Pri = arctic.High
	ack.Payload = relAckPayload
	ack.Rel = &arctic.RelHeader{Ack: true, AckSeq: ackSeq, Chan: ch}
	ack.Epoch = n.epoch
	n.fab.RouteFor(ack, n.ep, dst)
	n.Rel.AcksSent++
	n.fab.Inject(n.ep, ack)
}
