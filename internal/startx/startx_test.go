package startx

import (
	"testing"

	"hyades/internal/arctic"
	"hyades/internal/des"
	"hyades/internal/pci"
	"hyades/internal/units"
)

// rig builds a two-NIU test machine.
func rig(t *testing.T) (*des.Engine, [2]*NIU) {
	t.Helper()
	eng := des.NewEngine()
	fab, err := arctic.New(eng, arctic.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var nius [2]*NIU
	for i := 0; i < 2; i++ {
		bus := pci.NewBus(eng, pci.DefaultConfig())
		nius[i] = New(eng, bus, fab, i, DefaultConfig())
	}
	return eng, nius
}

func TestPIOSendRecvDeliversPayload(t *testing.T) {
	eng, nius := rig(t)
	payload := []uint32{0xaabbccdd, 42, 7}
	var got Message
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 0x123, payload, arctic.Low)
	})
	eng.Spawn("rx", func(p *des.Proc) {
		got = nius[1].PIORecv(p, arctic.Low)
	})
	eng.Run()
	if got.Src != 0 || got.Tag != 0x123 || len(got.Words) != 3 {
		t.Fatalf("message = %+v", got)
	}
	for i, w := range payload {
		if got.Words[i] != w {
			t.Fatalf("payload[%d] = %#x", i, got.Words[i])
		}
	}
	if got.Corrupt {
		t.Fatal("spurious corruption flag")
	}
}

func TestPIOCostModel(t *testing.T) {
	_, nius := rig(t)
	// Section 2.3: an 8-byte message is one header write plus one
	// payload write (0.36 us) to send, two reads (1.86 us) to receive.
	if got := nius[0].PIOSendCost(2); got != 360*units.Nanosecond {
		t.Errorf("send cost 8B = %v", got)
	}
	if got := nius[0].PIORecvCost(2); got != 1860*units.Nanosecond {
		t.Errorf("recv cost 8B = %v", got)
	}
	// 64-byte payload: 1 + 8 accesses each way.
	if got := nius[0].PIOSendCost(16); got != 9*180*units.Nanosecond {
		t.Errorf("send cost 64B = %v", got)
	}
	if got := nius[0].PIORecvCost(16); got != 9*930*units.Nanosecond {
		t.Errorf("recv cost 64B = %v", got)
	}
}

func TestPIOPriorityQueuesIndependent(t *testing.T) {
	eng, nius := rig(t)
	var hiTag, loTag int
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 1, []uint32{0, 0}, arctic.Low)
		nius[0].PIOSend(p, 1, 2, []uint32{0, 0}, arctic.High)
	})
	eng.Spawn("rx", func(p *des.Proc) {
		// Draining the high queue first must yield the high message
		// even though the low one was sent first.
		hi := nius[1].PIORecv(p, arctic.High)
		lo := nius[1].PIORecv(p, arctic.Low)
		hiTag, loTag = hi.Tag, lo.Tag
	})
	eng.Run()
	if hiTag != 2 || loTag != 1 {
		t.Fatalf("priority dispatch: hi=%d lo=%d", hiTag, loTag)
	}
}

func TestTryPIORecvPollCost(t *testing.T) {
	eng, nius := rig(t)
	var emptyCost, fullOK bool
	eng.Spawn("rx", func(p *des.Proc) {
		t0 := p.Now()
		_, ok := nius[1].TryPIORecv(p, arctic.Low)
		emptyCost = !ok && p.Now()-t0 == 930*units.Nanosecond
		p.Delay(10 * units.Microsecond)
		_, ok = nius[1].TryPIORecv(p, arctic.Low)
		fullOK = ok
	})
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 1, []uint32{1, 2}, arctic.Low)
	})
	eng.Run()
	if !emptyCost {
		t.Error("empty poll did not cost one status read")
	}
	if !fullOK {
		t.Error("poll after arrival failed")
	}
}

func TestDMATransfersData(t *testing.T) {
	eng, nius := rig(t)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var got Transfer
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].DMASend(p, 1, 0x55, data, arctic.Low)
	})
	eng.Spawn("rx", func(p *des.Proc) {
		got = nius[1].VIRecv(p)
	})
	eng.Run()
	if got.Src != 0 || got.Tag != 0x55 {
		t.Fatalf("transfer meta = %+v", got)
	}
	if len(got.Data) != len(data) {
		t.Fatalf("got %d bytes", len(got.Data))
	}
	for i := range data {
		if got.Data[i] != data[i] {
			t.Fatalf("byte %d = %d", i, got.Data[i])
		}
	}
}

func TestDMAKickCostOnly(t *testing.T) {
	eng, nius := rig(t)
	var stall units.Time
	eng.Spawn("tx", func(p *des.Proc) {
		t0 := p.Now()
		nius[0].DMASend(p, 1, 1, make([]byte, 100_000), arctic.Low)
		stall = p.Now() - t0
	})
	eng.Spawn("rx", func(p *des.Proc) { nius[1].VIRecv(p) })
	eng.Run()
	// The caller only pays the descriptor + doorbell writes; the
	// engine streams asynchronously.
	if stall != 2*180*units.Nanosecond {
		t.Fatalf("DMA kick stalled the processor %v", stall)
	}
}

func TestDMASustainedPayloadRate(t *testing.T) {
	eng, nius := rig(t)
	const n = 512 * 1024
	var done units.Time
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].DMASend(p, 1, 1, make([]byte, n), arctic.Low)
	})
	eng.Spawn("rx", func(p *des.Proc) {
		nius[1].VIRecv(p)
		done = p.Now()
	})
	eng.Run()
	// Peak VI payload bandwidth is 88/96 of the 120 MB/s PCI rate:
	// 110 MB/s (paper §2.3).
	bw := units.Rate(n, done).MBperSec()
	if bw < 105 || bw > 112 {
		t.Fatalf("sustained VI rate = %.1f MB/s, want ~110", bw)
	}
}

func TestDMAQueuedTransfersFIFO(t *testing.T) {
	eng, nius := rig(t)
	var tags []int
	eng.Spawn("tx", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			nius[0].DMASend(p, 1, i, make([]byte, 500), arctic.Low)
		}
	})
	eng.Spawn("rx", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			tags = append(tags, nius[1].VIRecv(p).Tag)
		}
	})
	eng.Run()
	for i, tag := range tags {
		if tag != i {
			t.Fatalf("transfer order %v", tags)
		}
	}
}

func TestInvalidArgumentsPanic(t *testing.T) {
	eng, nius := rig(t)
	mustPanic := func(name string, fn func(p *des.Proc)) {
		eng.Spawn(name, func(p *des.Proc) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn(p)
		})
	}
	mustPanic("shortPayload", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 1, []uint32{1}, arctic.Low)
	})
	mustPanic("bigTag", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, MaxTag+1, []uint32{1, 2}, arctic.Low)
	})
	mustPanic("emptyDMA", func(p *des.Proc) {
		nius[0].DMASend(p, 1, 1, nil, arctic.Low)
	})
	eng.Run()
}

func TestOnPIODeliverHook(t *testing.T) {
	eng, nius := rig(t)
	fired := 0
	nius[1].OnPIODeliver = func() { fired++ }
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].PIOSend(p, 1, 1, []uint32{1, 2}, arctic.Low)
		nius[0].PIOSend(p, 1, 2, []uint32{3, 4}, arctic.Low)
	})
	eng.Run()
	if fired != 2 {
		t.Fatalf("hook fired %d times", fired)
	}
	if nius[1].VIPending() != 0 {
		t.Fatal("spurious VI transfer")
	}
}

func TestRemotePutOneSided(t *testing.T) {
	eng, nius := rig(t)
	nius[1].RegisterWindow(3, 256)
	data := []byte{1, 2, 3, 4, 5}
	var stall units.Time
	eng.Spawn("tx", func(p *des.Proc) {
		t0 := p.Now()
		nius[0].RemotePut(p, 1, 3, 10, data, arctic.Low)
		stall = p.Now() - t0
	})
	// No receiving process at all: the put is one-sided.
	eng.Run()
	buf, version := nius[1].Window(3)
	if version != 1 {
		t.Fatalf("version = %d", version)
	}
	for i, b := range data {
		if buf[10+i] != b {
			t.Fatalf("window[%d] = %d", 10+i, buf[10+i])
		}
	}
	if stall != 2*180*units.Nanosecond {
		t.Fatalf("initiator stalled %v; puts should cost only the DMA kick", stall)
	}
}

func TestRemotePutFIFOAndVersions(t *testing.T) {
	eng, nius := rig(t)
	nius[1].RegisterWindow(1, 8)
	eng.Spawn("tx", func(p *des.Proc) {
		for i := byte(1); i <= 4; i++ {
			nius[0].RemotePut(p, 1, 1, 0, []byte{i}, arctic.Low)
		}
	})
	eng.Run()
	buf, version := nius[1].Window(1)
	if version != 4 {
		t.Fatalf("version = %d", version)
	}
	if buf[0] != 4 {
		t.Fatalf("last writer = %d, want 4 (FIFO order)", buf[0])
	}
}

func TestRemotePutUnregisteredWindowDropped(t *testing.T) {
	eng, nius := rig(t)
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].RemotePut(p, 1, 9, 0, []byte{1}, arctic.Low)
	})
	eng.Run()
	if buf, v := nius[1].Window(9); buf != nil || v != 0 {
		t.Fatal("write to unregistered window was not dropped")
	}
}

func TestRemotePutDoesNotDisturbVI(t *testing.T) {
	eng, nius := rig(t)
	nius[1].RegisterWindow(2, 16)
	var tr Transfer
	eng.Spawn("tx", func(p *des.Proc) {
		nius[0].RemotePut(p, 1, 2, 0, []byte{7}, arctic.Low)
		nius[0].DMASend(p, 1, 5, []byte{8, 9}, arctic.Low)
	})
	eng.Spawn("rx", func(p *des.Proc) {
		tr = nius[1].VIRecv(p)
	})
	eng.Run()
	if tr.Tag != 5 || len(tr.Data) != 2 {
		t.Fatalf("VI transfer corrupted by interleaved put: %+v", tr)
	}
	if buf, _ := nius[1].Window(2); buf[0] != 7 {
		t.Fatal("put lost")
	}
}
