// Dead-peer detection and crash/restart state for the StarT-X NIU.
//
// A crashed node cannot tell anyone it died — its NIU simply goes
// silent.  Survivors detect this the way real clusters do: every NIU
// broadcasts a small high-priority heartbeat packet on a fixed
// virtual-time period, refreshes a per-peer lease on *any* arrival from
// that peer (data or heartbeat), and declares the peer dead once the
// lease lapses.  Everything runs on engine timers in virtual time, so
// detection instants — and therefore the whole recovery timeline — are
// a deterministic function of the fault plan.
//
// Epochs make rollback safe.  When the recovery controller rolls the
// cluster back to a checkpoint it advances every NIU to a new epoch via
// ResetComm; traffic still in flight from the old epoch (data, ACKs,
// retransmissions) is discarded at the receivers, so the fresh
// go-back-N sequence spaces can never be polluted by pre-crash
// stragglers.  Heartbeats are deliberately epoch-blind: liveness is a
// property of the node, not of the communication incarnation.

package startx

import (
	"hyades/internal/arctic"
	"hyades/internal/units"
)

// Dead-peer detection defaults; overridable through Config.  The lease
// spans several heartbeats so one dropped heartbeat never kills a live
// peer, and it sits below the go-back-N retry horizon so recovery is
// driven by the lease, not by an exhausted retransmit budget.
const (
	DefaultHeartbeat = 100 * units.Microsecond
	DefaultPeerLease = 400 * units.Microsecond
)

// hbPayload is the shared wire padding of every heartbeat packet; like
// ACKs, heartbeats carry no readable payload.
var hbPayload = make([]uint32, arctic.MinPayloadWords)

// StartPeerMonitor arms heartbeat transmission and lease checking.
// Must be called at most once, before the simulation runs hot; the
// monitor keeps ticking across crashes of this NIU (a downed NIU stays
// silent but its timer chain survives, so a restart resumes heartbeats
// without re-arming).
func (n *NIU) StartPeerMonitor() {
	if n.cfg.Heartbeat <= 0 {
		n.cfg.Heartbeat = DefaultHeartbeat
	}
	if n.cfg.PeerLease <= 0 {
		n.cfg.PeerLease = DefaultPeerLease
	}
	eps := n.fab.Config().Endpoints
	n.lastHeard = make([]units.Time, eps)
	n.peerDead = make([]bool, eps)
	n.refreshLeases()
	n.hbTimer = n.eng.After(n.cfg.Heartbeat, n.hbTick)
	n.lsTimer = n.eng.After(n.cfg.PeerLease, n.lsTick)
}

// StopPeerMonitor cancels the heartbeat and lease timers so the event
// queue can drain once the job completes.
func (n *NIU) StopPeerMonitor() {
	if n.hbTimer != nil {
		n.hbTimer.Cancel()
		n.hbTimer = nil
	}
	if n.lsTimer != nil {
		n.lsTimer.Cancel()
		n.lsTimer = nil
	}
}

// hbTick broadcasts one heartbeat to every peer and re-arms itself.
func (n *NIU) hbTick() {
	n.hbTimer = n.eng.After(n.cfg.Heartbeat, n.hbTick)
	if n.down {
		return
	}
	eps := n.fab.Config().Endpoints
	for p := 0; p < eps; p++ {
		if p == n.ep {
			continue
		}
		pkt := n.fab.AcquirePacket()
		pkt.Pri = arctic.High
		pkt.Payload = hbPayload
		pkt.HB = true
		pkt.Epoch = n.epoch
		n.fab.RouteFor(pkt, n.ep, p)
		n.fab.Inject(n.ep, pkt)
		n.Heartbeats++
	}
}

// lsTick checks every peer's lease and re-arms itself on the heartbeat
// period (so detection lags the lease by at most one period).
func (n *NIU) lsTick() {
	n.lsTimer = n.eng.After(n.cfg.Heartbeat, n.lsTick)
	if n.down {
		return
	}
	for p := range n.lastHeard {
		if p == n.ep || n.peerDead[p] {
			continue
		}
		if n.eng.Now()-n.lastHeard[p] > n.cfg.PeerLease {
			n.peerDead[p] = true
			if n.OnPeerDead != nil {
				n.OnPeerDead(p)
			}
		}
	}
}

// noteHeard refreshes a peer's lease.  A peer once declared dead stays
// declared until the recovery rollback clears the flag: flapping a peer
// back to life mid-recovery would make the controller's view diverge
// from the ranks'.
func (n *NIU) noteHeard(peer int) {
	if n.lastHeard == nil || peer < 0 || peer >= len(n.lastHeard) {
		return
	}
	n.lastHeard[peer] = n.eng.Now()
}

// refreshLeases restarts every peer's lease from the current instant
// and clears the dead declarations.
func (n *NIU) refreshLeases() {
	if n.lastHeard == nil {
		return
	}
	for p := range n.lastHeard {
		n.lastHeard[p] = n.eng.Now()
		n.peerDead[p] = false
	}
}

// Crash takes the NIU down at the current virtual instant, as a node
// power failure does: queued transmits vanish, received-but-unfetched
// messages are lost with the host's memory, and the go-back-N streams
// die with the protocol state.  The NIU stays attached to the fabric
// but drops every arrival until Restart.
func (n *NIU) Crash() {
	n.down = true
	n.txQueue = nil
	n.drainRx()
	n.resetRel()
}

// Restart brings a crashed NIU back up.  Its communication state was
// already cleared by Crash; leases restart from the present so the
// rejoining node does not instantly declare every peer dead after its
// blackout.  Stream state is re-synchronized cluster-wide by ResetComm
// at the recovery release.
func (n *NIU) Restart() {
	n.down = false
	n.refreshLeases()
}

// Down reports whether the NIU is crashed.
func (n *NIU) Down() bool { return n.down }

// Epoch returns the NIU's current communication incarnation.
func (n *NIU) Epoch() uint32 { return n.epoch }

// ResetComm rolls the NIU onto a new communication epoch: all queued
// and in-flight protocol state is discarded, the go-back-N sequence
// spaces restart from zero, and leases restart from the present.  The
// recovery controller applies it to every NIU of the cluster at the
// same virtual instant, which is what makes the symmetric sequence
// reset safe.
func (n *NIU) ResetComm(epoch uint32) {
	n.epoch = epoch
	n.txQueue = nil
	n.drainRx()
	n.resetRel()
	n.refreshLeases()
}

// drainRx discards every received-but-unfetched message.
func (n *NIU) drainRx() {
	for {
		if _, ok := n.rxHi.TryRecv(); !ok {
			break
		}
	}
	for {
		if _, ok := n.rxLo.TryRecv(); !ok {
			break
		}
	}
	for {
		if _, ok := n.rxVI.TryRecv(); !ok {
			break
		}
	}
}

// resetRel cancels the retransmit timers and forgets all go-back-N
// stream state, sender and receiver side.
func (n *NIU) resetRel() {
	for _, st := range n.relTxStreams {
		if st != nil && st.timer != nil {
			st.timer.Cancel()
		}
	}
	n.relTxStreams = nil
	n.relRxStreams = nil
}
