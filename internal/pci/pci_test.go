package pci

import (
	"testing"

	"hyades/internal/des"
	"hyades/internal/units"
)

func TestPublishedConstants(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MMapReadLatency != 930*units.Nanosecond {
		t.Errorf("mmap read = %v, paper 0.93us", cfg.MMapReadLatency)
	}
	if cfg.MMapWriteLatency != 180*units.Nanosecond {
		t.Errorf("mmap write = %v, paper 0.18us", cfg.MMapWriteLatency)
	}
	if cfg.DMABandwidth != 120*units.MBps {
		t.Errorf("DMA bandwidth = %v, paper 120MB/s", cfg.DMABandwidth)
	}
}

func TestMMapAccessCosts(t *testing.T) {
	eng := des.NewEngine()
	bus := NewBus(eng, DefaultConfig())
	var after units.Time
	eng.Spawn("p", func(p *des.Proc) {
		bus.MMapRead(p)
		bus.MMapWriteN(p, 2)
		bus.MMapReadN(p, 3)
		after = p.Now()
	})
	eng.Run()
	want := 930*units.Nanosecond + 2*180*units.Nanosecond + 3*930*units.Nanosecond
	if after != want {
		t.Fatalf("access cost = %v, want %v", after, want)
	}
	if bus.Reads != 4 || bus.Writes != 2 {
		t.Fatalf("counters: %d reads, %d writes", bus.Reads, bus.Writes)
	}
}

func TestDMASerializes(t *testing.T) {
	eng := des.NewEngine()
	bus := NewBus(eng, DefaultConfig())
	// Two overlapping 120-byte transfers: each takes 1us at 120 MB/s,
	// and the second must queue behind the first.
	s1, e1 := bus.DMA(0, 120)
	if s1 != 0 || e1 != units.Microsecond {
		t.Fatalf("first burst [%v,%v]", s1, e1)
	}
	s2, e2 := bus.DMA(0, 120)
	if s2 != units.Microsecond || e2 != 2*units.Microsecond {
		t.Fatalf("second burst [%v,%v], want queued", s2, e2)
	}
	if bus.DMABytes != 240 {
		t.Fatalf("DMABytes = %d", bus.DMABytes)
	}
	if bus.DMAFreeAt() != 2*units.Microsecond {
		t.Fatalf("FreeAt = %v", bus.DMAFreeAt())
	}
}

func TestDMASustainedRate(t *testing.T) {
	eng := des.NewEngine()
	bus := NewBus(eng, DefaultConfig())
	var end units.Time
	for i := 0; i < 1000; i++ {
		_, end = bus.DMA(0, 96)
	}
	rate := units.Rate(96*1000, end)
	if mb := rate.MBperSec(); mb < 119 || mb > 121 {
		t.Fatalf("sustained DMA = %.1f MB/s, want 120", mb)
	}
}
