// Package pci models the 32-bit 33-MHz PCI environment of a Hyades SMP
// node (paper §2.1).
//
// The paper identifies three host I/O characteristics that "directly
// govern the performance of interprocessor communication":
//
//   - the latency of an 8-byte read of an uncached memory-mapped PCI
//     device register: 0.93 us;
//   - the minimum latency between back-to-back 8-byte writes: 0.18 us;
//   - sustained DMA by a PCI device: over 120 MByte/sec.
//
// Processor-side accesses (MMapRead/MMapWrite) stall the calling
// simulated processor.  Device-side DMA claims the bus as a serially
// reusable resource, so concurrent DMA streams on one node share the
// 120 MB/s.
package pci

import (
	"hyades/internal/des"
	"hyades/internal/units"
)

// Config holds the host I/O cost parameters.
type Config struct {
	MMapReadLatency  units.Time      // uncached 8-byte register read
	MMapWriteLatency units.Time      // back-to-back 8-byte register write
	DMABandwidth     units.Bandwidth // sustained device DMA rate
}

// DefaultConfig returns the published Hyades host parameters.
func DefaultConfig() Config {
	return Config{
		MMapReadLatency:  930 * units.Nanosecond,
		MMapWriteLatency: 180 * units.Nanosecond,
		DMABandwidth:     120 * units.MBps,
	}
}

// Bus is one node's PCI bus.
type Bus struct {
	eng *des.Engine
	cfg Config
	dma des.Resource

	// Counters for tests and reports.
	Reads, Writes int64
	DMABytes      int64
}

// NewBus creates a bus on engine e.
func NewBus(e *des.Engine, cfg Config) *Bus {
	return &Bus{eng: e, cfg: cfg}
}

// Config returns the bus parameters.
func (b *Bus) Config() Config { return b.cfg }

// MMapRead stalls the calling processor for one uncached 8-byte register
// read and returns.
func (b *Bus) MMapRead(p *des.Proc) {
	b.Reads++
	p.Delay(b.cfg.MMapReadLatency)
}

// MMapReadN performs n back-to-back register reads.
func (b *Bus) MMapReadN(p *des.Proc, n int) {
	b.Reads += int64(n)
	p.Delay(units.Time(n) * b.cfg.MMapReadLatency)
}

// MMapWrite stalls the calling processor for one 8-byte register write.
func (b *Bus) MMapWrite(p *des.Proc) {
	b.Writes++
	p.Delay(b.cfg.MMapWriteLatency)
}

// MMapWriteN performs n back-to-back register writes.
func (b *Bus) MMapWriteN(p *des.Proc, n int) {
	b.Writes += int64(n)
	p.Delay(units.Time(n) * b.cfg.MMapWriteLatency)
}

// DMA reserves the bus for a device transfer of n bytes that becomes
// ready at the given time, returning when the burst starts and ends.
// It never blocks; device models chain events from the returned times.
func (b *Bus) DMA(ready units.Time, n int) (start, end units.Time) {
	b.DMABytes += int64(n)
	return b.dma.Claim(ready, b.cfg.DMABandwidth.Transfer(n))
}

// DMAFreeAt reports when the bus next becomes idle for DMA.
func (b *Bus) DMAFreeAt() units.Time { return b.dma.FreeAt() }
