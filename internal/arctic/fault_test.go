package arctic

import (
	"testing"

	"hyades/internal/des"
	"hyades/internal/fault"
	"hyades/internal/units"
)

// faultFabric builds an n-endpoint fabric under the given fault config.
func faultFabric(t *testing.T, n int, fc fault.Config) (*des.Engine, *Fabric, *[]*Packet) {
	t.Helper()
	eng := des.NewEngine()
	cfg := DefaultConfig(n)
	cfg.Faults = fault.NewPlan(fc)
	fab, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Packet
	for ep := 0; ep < n; ep++ {
		fab.Attach(ep, func(p *Packet) { got = append(got, p) })
	}
	return eng, fab, &got
}

func TestCRCRecomputedOverWireWords(t *testing.T) {
	// Regression: checkCRC used to consult only the corrupted bool, so a
	// payload mutated after sealing sailed through every router stage.
	p := &Packet{Payload: []uint32{0xdead, 0xbeef}}
	p.Seal()
	if !p.checkCRC() {
		t.Fatalf("sealed packet fails its own CRC")
	}
	p.Payload[0] ^= 1 << 7
	if p.checkCRC() {
		t.Fatalf("hand-mutated payload passed the CRC check")
	}
	p.Payload[0] ^= 1 << 7
	if !p.checkCRC() {
		t.Fatalf("restored payload fails the CRC check")
	}
	p.Corrupt()
	if p.checkCRC() {
		t.Fatalf("corrupted fast path not honoured")
	}
}

func TestCloneIsPristine(t *testing.T) {
	p := &Packet{Payload: []uint32{1, 2, 3}, Rel: &RelHeader{Seq: 7}}
	p.Seal()
	p.Corrupt()
	q := p.Clone()
	if !q.checkCRC() || q.Corrupted() {
		t.Fatalf("clone of a corrupted packet is not pristine")
	}
	if q.Rel == p.Rel || q.Rel.Seq != 7 {
		t.Fatalf("Rel header not deep-copied")
	}
}

func TestMutatedPayloadDroppedAtRouter(t *testing.T) {
	eng, fab, got := faultFabric(t, 16, fault.Config{})
	p := mkPacket(fab, 0, 13, 4, 1)
	fab.Inject(0, p)
	p.Payload[2] ^= 0xffff // in-flight bit rot, no Corrupt() call
	eng.Run()
	if len(*got) != 0 {
		t.Fatalf("mutated packet was delivered")
	}
	if fab.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", fab.Stats().Dropped)
	}
}

func TestInjectedCorruptionCountsAndDrops(t *testing.T) {
	eng, fab, got := faultFabric(t, 16, fault.Config{Seed: 3, CorruptRate: 1})
	fab.Inject(0, mkPacket(fab, 0, 13, 4, 1))
	eng.Run()
	if len(*got) != 0 {
		t.Fatalf("corrupted packet was delivered")
	}
	s := fab.Stats()
	if s.FaultCorrupted == 0 {
		t.Fatalf("FaultCorrupted = 0, want > 0")
	}
	if s.Dropped == 0 {
		t.Fatalf("corruption did not trip a router CRC check")
	}
	if ls := fab.LinkStats(); len(ls) == 0 {
		t.Fatalf("no per-link counters for a corrupting link")
	}
}

func TestInjectedDropIsSilent(t *testing.T) {
	eng, fab, got := faultFabric(t, 16, fault.Config{Seed: 3, DropRate: 1})
	fab.Inject(0, mkPacket(fab, 0, 13, 4, 1))
	eng.Run()
	if len(*got) != 0 {
		t.Fatalf("dropped packet was delivered")
	}
	s := fab.Stats()
	if s.FaultDropped == 0 {
		t.Fatalf("FaultDropped = 0, want > 0")
	}
	if s.Dropped != 0 {
		t.Fatalf("a silent drop must not look like a CRC drop (Dropped = %d)", s.Dropped)
	}
}

func TestUpLinkOutageFailsOver(t *testing.T) {
	// Endpoint 0 -> 13 needs two up hops.  Taking 0's deterministic
	// first up-link down forces the leaf router to pick another up port;
	// the fat-tree property says the packet still arrives.
	eng, fab, got := faultFabric(t, 16, fault.Config{
		Outages: []fault.Outage{{Link: "up(s0,0,p0)", From: 0}},
	})
	fab.Inject(0, mkPacket(fab, 0, 13, 4, 1))
	eng.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1 (fail-over did not mask the outage)", len(*got))
	}
	s := fab.Stats()
	if s.FailedOver == 0 {
		t.Fatalf("FailedOver = 0, want > 0")
	}
	if s.OutageDropped != 0 {
		t.Fatalf("OutageDropped = %d, want 0", s.OutageDropped)
	}
}

func TestAllUpLinksDownIsLoss(t *testing.T) {
	eng, fab, got := faultFabric(t, 16, fault.Config{
		Outages: []fault.Outage{{Link: "up(s0,0,*", From: 0}},
	})
	fab.Inject(0, mkPacket(fab, 0, 13, 4, 1))
	eng.Run()
	if len(*got) != 0 {
		t.Fatalf("packet delivered with every up-link down")
	}
	if fab.Stats().OutageDropped == 0 {
		t.Fatalf("OutageDropped = 0, want > 0")
	}
}

func TestDownLinkOutageIsLossNotMisroute(t *testing.T) {
	// The down path is deterministic, so an outage on it surfaces as
	// loss.  deliverToEndpoint panics on misrouting, so a quiet run with
	// zero deliveries is exactly the asserted behaviour.
	eng, fab, got := faultFabric(t, 16, fault.Config{
		Outages: []fault.Outage{{Link: "down(s1,*", From: 0}},
	})
	fab.Inject(0, mkPacket(fab, 0, 13, 4, 1))
	eng.Run()
	if len(*got) != 0 {
		t.Fatalf("packet delivered through a downed down-link")
	}
	s := fab.Stats()
	if s.OutageDropped == 0 {
		t.Fatalf("OutageDropped = 0, want > 0")
	}
	if s.FailedOver != 0 {
		t.Fatalf("down-phase must never fail over (FailedOver = %d)", s.FailedOver)
	}
}

func TestOutageWindowEndsAndTrafficResumes(t *testing.T) {
	eng, fab, got := faultFabric(t, 16, fault.Config{
		Outages: []fault.Outage{{Link: "inject(0)", From: 0, Until: 10 * units.Microsecond}},
	})
	fab.Inject(0, mkPacket(fab, 0, 13, 4, 1)) // lost in the window
	eng.Schedule(20*units.Microsecond, func() {
		fab.Inject(0, mkPacket(fab, 0, 13, 4, 2)) // after the window
	})
	eng.Run()
	if len(*got) != 1 || (*got)[0].Tag != 2 {
		t.Fatalf("got %d deliveries, want exactly the post-window packet", len(*got))
	}
}

func TestDegradationSlowsDelivery(t *testing.T) {
	mk := func(fc fault.Config) units.Time {
		eng, fab, got := faultFabric(t, 16, fc)
		fab.Inject(0, mkPacket(fab, 0, 13, 4, 1))
		eng.Run()
		if len(*got) != 1 {
			t.Fatalf("degraded link lost the packet")
		}
		return eng.Now()
	}
	healthy := mk(fault.Config{})
	degraded := mk(fault.Config{Degradations: []fault.Degradation{
		{Link: "*", From: 0, BandwidthScale: 0.5, LatencyScale: 2},
	}})
	if degraded <= healthy {
		t.Fatalf("degraded delivery (%v) not slower than healthy (%v)", degraded, healthy)
	}
}

func TestFaultFreePlanChangesNothing(t *testing.T) {
	// A present-but-empty fault plan must leave the timing and event
	// count of a run bit-identical to one with no plan at all.
	run := func(withPlan bool) (units.Time, uint64, int) {
		eng := des.NewEngine()
		cfg := DefaultConfig(16)
		if withPlan {
			cfg.Faults = fault.NewPlan(fault.Config{})
		}
		fab, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for ep := 0; ep < 16; ep++ {
			fab.Attach(ep, func(*Packet) { n++ })
		}
		for src := 0; src < 16; src++ {
			fab.Inject(src, mkPacket(fab, src, (src+5)%16, 8, uint16(src)))
		}
		eng.Run()
		return eng.Now(), eng.Events(), n
	}
	t1, e1, n1 := run(false)
	t2, e2, n2 := run(true)
	if t1 != t2 || e1 != e2 || n1 != n2 {
		t.Fatalf("empty plan perturbed the run: (%v,%d,%d) vs (%v,%d,%d)", t1, e1, n1, t2, e2, n2)
	}
}
