package arctic

import (
	"fmt"
	"testing"
	"testing/quick"

	"hyades/internal/des"
	"hyades/internal/units"
)

// testFabric builds an n-endpoint fabric that records deliveries.
func testFabric(t *testing.T, n int) (*des.Engine, *Fabric, *[]*Packet) {
	t.Helper()
	eng := des.NewEngine()
	fab, err := New(eng, DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	var got []*Packet
	for ep := 0; ep < n; ep++ {
		fab.Attach(ep, func(p *Packet) { got = append(got, p) })
	}
	return eng, fab, &got
}

func mkPacket(f *Fabric, src, dst int, words int, tag uint16) *Packet {
	p := &Packet{Tag: tag, Payload: make([]uint32, words)}
	for i := range p.Payload {
		p.Payload[i] = uint32(i) ^ uint32(tag)<<8
	}
	f.RouteFor(p, src, dst)
	return p
}

func TestAllPairsDelivery16(t *testing.T) {
	eng, fab, got := testFabric(t, 16)
	want := 0
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			fab.Inject(src, mkPacket(fab, src, dst, 2, uint16(src)))
			want++
		}
	}
	eng.Run()
	if len(*got) != want {
		t.Fatalf("delivered %d of %d packets", len(*got), want)
	}
	// deliverToEndpoint panics on misrouting, so arrival implies routing
	// correctness; double-check Dst anyway.
	for _, p := range *got {
		if p.Dst < 0 || p.Dst >= 16 {
			t.Fatalf("bad dst %d", p.Dst)
		}
	}
}

func TestAllPairsDeliveryProperty(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			f := func(srcRaw, dstRaw uint8, randomUp bool) bool {
				src, dst := int(srcRaw)%n, int(dstRaw)%n
				if src == dst {
					return true
				}
				eng := des.NewEngine()
				fab, err := New(eng, DefaultConfig(n))
				if err != nil {
					return false
				}
				delivered := false
				fab.Attach(dst, func(p *Packet) { delivered = p.Src == src })
				p := &Packet{RandomUp: randomUp, Payload: []uint32{1, 2}}
				fab.RouteFor(p, src, dst)
				fab.Inject(src, p)
				eng.Run()
				return delivered
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFIFOOrderingSamePair(t *testing.T) {
	eng, fab, got := testFabric(t, 16)
	const n = 50
	for i := 0; i < n; i++ {
		fab.Inject(3, mkPacket(fab, 3, 12, 2+i%21, uint16(i)))
	}
	eng.Run()
	if len(*got) != n {
		t.Fatalf("delivered %d of %d", len(*got), n)
	}
	for i, p := range *got {
		if int(p.Tag) != i {
			t.Fatalf("FIFO violated: packet %d arrived in slot %d", p.Tag, i)
		}
	}
}

func TestHighPriorityOvertakesLow(t *testing.T) {
	eng, fab, got := testFabric(t, 16)
	// Saturate the src->dst path with low-priority packets, then inject
	// one high-priority packet: it must not be blocked behind all of
	// them at the queues.
	for i := 0; i < 20; i++ {
		fab.Inject(0, mkPacket(fab, 0, 5, MaxPayloadWords, uint16(i)))
	}
	hi := mkPacket(fab, 0, 5, 2, 999)
	hi.Pri = High
	fab.Inject(0, hi)
	eng.Run()
	pos := -1
	for i, p := range *got {
		if p.Tag == 999 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("high-priority packet lost")
	}
	if pos > 2 {
		t.Fatalf("high-priority packet delivered in slot %d; should overtake the low-priority backlog", pos)
	}
}

func TestLatencyMatchesCutThroughModel(t *testing.T) {
	eng, fab, _ := testFabric(t, 16)
	var arrived units.Time
	fab.Attach(13, func(p *Packet) { arrived = eng.Now() })
	p := mkPacket(fab, 0, 13, 2, 1) // 8-byte payload, 20 wire bytes
	fab.Inject(0, p)
	eng.Run()
	cfg := fab.Config()
	hops := fab.HopsBetween(0, 13)
	want := units.Time(hops-1)*(cfg.RouterLatency+cfg.LinkBandwidth.Transfer(HeaderBytes)) +
		cfg.RouterLatency + cfg.LinkBandwidth.Transfer(p.WireBytes())
	if arrived != want {
		t.Fatalf("latency = %v, want %v (hops=%d)", arrived, want, hops)
	}
	if arrived > 2*units.Microsecond {
		t.Fatalf("small-packet latency %v is implausibly high", arrived)
	}
}

func TestLinkBandwidthLimitsThroughput(t *testing.T) {
	eng, fab, got := testFabric(t, 16)
	// Stream 1000 max-size packets between one pair: sustained payload
	// rate is bounded by the 150 MB/s link and the 12/100 header+CRC
	// overhead: 88/100 * 150 = 132 MB/s payload.
	const n = 1000
	for i := 0; i < n; i++ {
		fab.Inject(2, mkPacket(fab, 2, 9, MaxPayloadWords, uint16(i%2048)))
	}
	eng.Run()
	if len(*got) != n {
		t.Fatalf("delivered %d", len(*got))
	}
	elapsed := eng.Now()
	payload := n * MaxPayloadBytes
	bw := units.Rate(payload, elapsed)
	if bw.MBperSec() < 125 || bw.MBperSec() > 135 {
		t.Fatalf("sustained payload bandwidth %.1f MB/s, want ~132", bw.MBperSec())
	}
}

func TestDisjointPairsDoNotContend(t *testing.T) {
	// Paper §4.1: the fat tree handles multiple simultaneous transfers
	// with undiminished pair-wise bandwidth.  Endpoints under distinct
	// leaf routers with distinct up paths must each see full bandwidth.
	timeFor := func(pairs [][2]int) units.Time {
		eng := des.NewEngine()
		fab, err := New(eng, DefaultConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		for ep := 0; ep < 16; ep++ {
			fab.Attach(ep, func(p *Packet) {})
		}
		for _, pr := range pairs {
			for i := 0; i < 200; i++ {
				fab.Inject(pr[0], mkPacket(fab, pr[0], pr[1], MaxPayloadWords, 7))
			}
		}
		eng.Run()
		return eng.Now()
	}
	single := timeFor([][2]int{{0, 4}})
	quad := timeFor([][2]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}})
	// Within-pair bandwidth must be essentially unchanged; allow a tiny
	// margin for path-length differences.
	if quad > single*5/4 {
		t.Fatalf("four disjoint pairs took %v vs %v for one: fabric contends where it should not", quad, single)
	}
}

func TestCorruptPacketDroppedAtRouter(t *testing.T) {
	eng, fab, got := testFabric(t, 16)
	p := mkPacket(fab, 0, 13, 4, 1)
	p.Corrupt()
	fab.Inject(0, p)
	good := mkPacket(fab, 0, 13, 4, 2)
	fab.Inject(0, good)
	eng.Run()
	if len(*got) != 1 || (*got)[0].Tag != 2 {
		t.Fatalf("expected only the good packet, got %d packets", len(*got))
	}
	if fab.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", fab.Stats().Dropped)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, fab, _ := testFabric(t, 16)
	fab.Inject(1, mkPacket(fab, 1, 2, 10, 0))
	fab.Inject(2, mkPacket(fab, 2, 3, 22, 0))
	eng.Run()
	s := fab.Stats()
	if s.Packets != 2 {
		t.Fatalf("Packets = %d", s.Packets)
	}
	if s.PayloadBytes != 40+88 {
		t.Fatalf("PayloadBytes = %d", s.PayloadBytes)
	}
	if s.WireBytes != (2+10+1)*4+(2+22+1)*4 {
		t.Fatalf("WireBytes = %d", s.WireBytes)
	}
}

func TestHopsBetween(t *testing.T) {
	eng := des.NewEngine()
	fab, err := New(eng, DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if got := fab.HopsBetween(0, 1); got != 2 {
		t.Fatalf("same-leaf hops = %d, want 2 (inject+eject)", got)
	}
	if got := fab.HopsBetween(0, 15); got != 4 {
		t.Fatalf("cross-tree hops = %d, want 4", got)
	}
	_ = eng
}

func TestSameLeafPacketStaysLocal(t *testing.T) {
	// Endpoints 0 and 1 share a leaf router: no up hops, so the root
	// stage must see no traffic.  We verify via latency: one router
	// stage cheaper than a cross-tree route.
	eng, fab, _ := testFabric(t, 16)
	var local, far units.Time
	fab.Attach(1, func(p *Packet) { local = eng.Now() })
	fab.Attach(15, func(p *Packet) { far = eng.Now() })
	fab.Inject(0, mkPacket(fab, 0, 1, 2, 1))
	eng.Run()
	start := eng.Now()
	fab.Inject(0, mkPacket(fab, 0, 15, 2, 2))
	eng.Run()
	far -= start
	if local >= far {
		t.Fatalf("same-leaf latency %v not below cross-tree latency %v", local, far)
	}
}

func TestInvalidConfigs(t *testing.T) {
	eng := des.NewEngine()
	if _, err := New(eng, DefaultConfig(0)); err == nil {
		t.Fatal("0 endpoints accepted")
	}
	cfg := DefaultConfig(16)
	cfg.Levels = 1 // capacity 4 < 16
	if _, err := New(eng, cfg); err == nil {
		t.Fatal("over-capacity config accepted")
	}
	cfg = DefaultConfig(5000) // needs 6 levels > header capacity
	if _, err := New(eng, cfg); err == nil {
		t.Fatal("oversized tree accepted")
	}
}

func TestRouteForDeterministicPerPair(t *testing.T) {
	eng := des.NewEngine()
	fab, _ := New(eng, DefaultConfig(16))
	a := &Packet{Payload: []uint32{1, 2}}
	b := &Packet{Payload: []uint32{3, 4}}
	fab.RouteFor(a, 3, 14)
	fab.RouteFor(b, 3, 14)
	if a.UpDigits != b.UpDigits || a.UpSteps != b.UpSteps {
		t.Fatal("same pair produced different paths; FIFO guarantee would break")
	}
}

// TestRandomUpRouteSpreadsHotspot compares deterministic source-digit
// up-routing against the hardware's adaptive random mode under a
// traffic pattern engineered to collide on an up-link: many flows from
// the same source to distinct far destinations.  Random routing must
// not be catastrophically worse, and both must deliver everything.
func TestRandomUpRouteSpreadsHotspot(t *testing.T) {
	run := func(random bool) units.Time {
		eng := des.NewEngine()
		fab, err := New(eng, DefaultConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		delivered := 0
		for ep := 0; ep < 16; ep++ {
			fab.Attach(ep, func(p *Packet) { delivered++ })
		}
		// Four sources on one leaf each blast a far destination.
		for burst := 0; burst < 100; burst++ {
			for src := 0; src < 4; src++ {
				p := &Packet{RandomUp: random, Payload: make([]uint32, MaxPayloadWords)}
				fab.RouteFor(p, src, 12+src)
				fab.Inject(src, p)
			}
		}
		eng.Run()
		if delivered != 400 {
			t.Fatalf("delivered %d of 400", delivered)
		}
		return eng.Now()
	}
	det := run(false)
	rnd := run(true)
	t.Logf("hotspot drain: deterministic=%v random=%v", det, rnd)
	// Deterministic source-digit routing is conflict-free here; random
	// suffers some collisions but must stay within ~3x.
	if rnd > det*3 {
		t.Fatalf("random up-routing degraded %.1fx over deterministic", float64(rnd)/float64(det))
	}
}

// TestPriorityUnderSaturation: with the low-priority plane saturated
// end to end, a stream of high-priority packets must maintain bounded
// latency (the §2.2 guarantee the library's control messages rely on).
func TestPriorityUnderSaturation(t *testing.T) {
	eng := des.NewEngine()
	fab, err := New(eng, DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	var hiLat []units.Time
	sent := map[*Packet]units.Time{}
	for ep := 0; ep < 16; ep++ {
		fab.Attach(ep, func(p *Packet) {
			if p.Pri == High {
				hiLat = append(hiLat, eng.Now()-sent[p])
			}
		})
	}
	// Saturate 0->15 with low-priority bulk.
	for i := 0; i < 500; i++ {
		p := &Packet{Payload: make([]uint32, MaxPayloadWords)}
		fab.RouteFor(p, 0, 15)
		fab.Inject(0, p)
	}
	// Inject high-priority probes along the same path, spaced out.
	for i := 0; i < 20; i++ {
		i := i
		eng.Schedule(units.Time(i)*20*units.Microsecond, func() {
			p := &Packet{Pri: High, Payload: []uint32{1, 2}}
			fab.RouteFor(p, 0, 15)
			sent[p] = eng.Now()
			fab.Inject(0, p)
		})
	}
	eng.Run()
	if len(hiLat) != 20 {
		t.Fatalf("high-priority probes delivered: %d", len(hiLat))
	}
	for i, l := range hiLat {
		// Worst case: one max-size packet in transmission per hop ahead
		// of the probe, not the whole 500-packet backlog.
		if l > 10*units.Microsecond {
			t.Fatalf("probe %d latency %v under low-priority saturation", i, l)
		}
	}
}
